module Tree = Pax_xml.Tree

exception Corrupt of string

let manifest_name = "MANIFEST"
let fragment_file fid = Printf.sprintf "fragment_%d.xml" fid

let save (ft : Fragment.t) ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let manifest = Buffer.create 256 in
  Buffer.add_string manifest
    (Printf.sprintf "pax-store 1 fragments=%d\n" (Array.length ft.Fragment.fragments));
  Array.iter
    (fun (f : Fragment.fragment) ->
      Buffer.add_string manifest
        (Printf.sprintf "fragment %d parent=%s ann=%s\n" f.Fragment.fid
           (match f.Fragment.parent with
           | Some p -> string_of_int p
           | None -> "-")
           (String.concat "/" f.Fragment.ann));
      let oc = open_out (Filename.concat dir (fragment_file f.Fragment.fid)) in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Pax_xml.Printer.to_string ~indent:true f.Fragment.root)))
    ft.Fragment.fragments;
  let oc = open_out (Filename.concat dir manifest_name) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents manifest))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_manifest_line fid line =
  match String.split_on_char ' ' line with
  | [ "fragment"; id; parent; ann ] -> (
      (match int_of_string_opt id with
      | Some id when id = fid -> ()
      | _ -> raise (Corrupt (Printf.sprintf "manifest: expected fragment %d" fid)));
      let parent =
        match String.split_on_char '=' parent with
        | [ "parent"; "-" ] -> None
        | [ "parent"; p ] -> (
            match int_of_string_opt p with
            | Some p -> Some p
            | None -> raise (Corrupt ("manifest: bad parent " ^ p)))
        | _ -> raise (Corrupt ("manifest: bad field " ^ parent))
      in
      let ann =
        match String.split_on_char '=' ann with
        | [ "ann"; "" ] -> []
        | [ "ann"; path ] -> String.split_on_char '/' path
        | _ -> raise (Corrupt ("manifest: bad field " ^ ann))
      in
      (parent, ann))
  | _ -> raise (Corrupt ("manifest: bad line " ^ line))

let load ~dir : Fragment.t =
  let manifest = read_file (Filename.concat dir manifest_name) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' manifest)
  in
  let header, entries =
    match lines with
    | h :: rest -> (h, rest)
    | [] -> raise (Corrupt "empty manifest")
  in
  let n_fragments =
    match String.split_on_char ' ' header with
    | [ "pax-store"; "1"; count ] -> (
        match String.split_on_char '=' count with
        | [ "fragments"; n ] -> (
            match int_of_string_opt n with
            | Some n when n > 0 -> n
            | _ -> raise (Corrupt "manifest: bad fragment count"))
        | _ -> raise (Corrupt "manifest: bad header"))
    | _ -> raise (Corrupt "manifest: not a pax store")
  in
  if List.length entries <> n_fragments then
    raise (Corrupt "manifest: fragment count mismatch");
  (* One builder across all files keeps node ids globally unique. *)
  let builder = Tree.builder () in
  let fragments =
    Array.of_list
      (List.mapi
         (fun fid line ->
           let parent, ann = parse_manifest_line fid line in
           let path = Filename.concat dir (fragment_file fid) in
           let doc =
             try Pax_xml.Parser.parse_file ~builder path
             with Pax_xml.Parser.Parse_error { pos; msg } ->
               raise
                 (Corrupt (Printf.sprintf "%s: parse error at %d: %s" path pos msg))
           in
           { Fragment.fid; root = doc.Tree.root; parent; ann })
         entries)
  in
  let children = Array.make n_fragments [] in
  Array.iter
    (fun (f : Fragment.fragment) ->
      match f.Fragment.parent with
      | Some p when p >= 0 && p < n_fragments ->
          children.(p) <- f.Fragment.fid :: children.(p)
      | Some p -> raise (Corrupt (Printf.sprintf "bad parent %d" p))
      | None ->
          if f.Fragment.fid <> 0 then
            raise (Corrupt "only fragment 0 may lack a parent"))
    fragments;
  Array.iteri (fun i l -> children.(i) <- List.rev l) children;
  let ft =
    Fragment.make ~fragments ~children
      ~doc_node_count:
        (Array.fold_left
           (fun acc f -> acc + Fragment.fragment_node_count f)
           0 fragments)
  in
  (match Fragment.check ft with
  | Ok () -> ()
  | Error e -> raise (Corrupt e));
  ft

let is_store path =
  Sys.file_exists path && Sys.is_directory path
  && Sys.file_exists (Filename.concat path manifest_name)

(** Tree fragmentation (paper §2.1).

    A document is decomposed into disjoint subtrees — {e fragments} —
    each of which may live on a different site.  Inside a fragment, a
    missing sub-fragment is represented by a {e virtual node} labelled
    with the sub-fragment's id.  The fragmentation induces the
    {e fragment tree} [FT]; the fragment holding the document root is
    the {e root fragment} (always id 0 here).  No constraint is placed
    on nesting, sizes or placement — the paper's fully generic setting.

    Every fragment-tree edge [(Fj, Fk)] carries its {e XPath annotation}
    (§5): the tag path from just below [root(Fj)] down to and including
    [root(Fk)] — e.g. [client/broker] when the root of [Fk] is a
    [broker] grandchild of [root(Fj)] via a [client] node.  Annotations
    are computed at fragmentation time; algorithms may ignore them (the
    "NA" configurations of §6). *)

type fragment = {
  fid : int;
  root : Pax_xml.Tree.node;  (** subtree with [Virtual] placeholders *)
  parent : int option;  (** [None] only for the root fragment *)
  ann : string list;
      (** tags from below the parent fragment's root to this root,
          inclusive; [[]] for the root fragment *)
}

(** Per-fragment generation-stamped {!Pax_xml.Flat} images; opaque —
    read through {!flat}. *)
type flat_cache

type t = {
  fragments : fragment array;  (** indexed by fid; parents precede children *)
  children : int list array;  (** fragment-tree adjacency *)
  doc_node_count : int;
  generations : int array;
      (** per-fragment update generation, bumped by {!Update.apply} on
          every successful mutation of the fragment — cache keys derived
          from a fragment's content must embed its generation so an
          update invalidates exactly the touched fragment's entries
          (docs/SERVING.md) *)
  intern : Pax_xml.Intern.t;
      (** the store-wide tag/attribute-key symbol table shared by all
          flat images (docs/FLATTREE.md) *)
  flat_images : flat_cache;
}

(** {1 Construction} *)

(** [make ~fragments ~children ~doc_node_count] assembles a store,
    creating its intern table and prewarming every fragment's flat
    image.  {!fragmentize} and {!Store.load} go through this. *)
val make :
  fragments:fragment array ->
  children:int list array ->
  doc_node_count:int ->
  t

(** [fragmentize doc ~cuts] splits [doc] at the nodes whose ids are in
    [cuts] (each becomes the root of its own fragment).  The document
    root must not be a cut; duplicate and unknown ids are ignored.  The
    input document is not modified. *)
val fragmentize : Pax_xml.Tree.doc -> cuts:int list -> t

(** A whole document as a single (root) fragment. *)
val trivial : Pax_xml.Tree.doc -> t

(** {1 Cut strategies} *)

(** [cuts_by_size doc ~budget] chooses cut points so that every fragment
    has at most roughly [budget] nodes (a post-order greedy sweep). *)
val cuts_by_size : Pax_xml.Tree.doc -> budget:int -> int list

(** [cuts_by_tag doc ~tag] cuts at every node labelled [tag] (except the
    root). *)
val cuts_by_tag : Pax_xml.Tree.doc -> tag:string -> int list

(** {1 Access} *)

val fragment : t -> int -> fragment
val n_fragments : t -> int
val root_fragment : t -> fragment

(** Current update generation of a fragment (0 at construction). *)
val generation : t -> int -> int

(** Advance a fragment's generation; {!Update.apply} calls this on every
    successful operation, so callers normally never need to. *)
val bump_generation : t -> int -> unit

(** [merge_generation t fid gen] raises the fragment's generation to
    [gen] if it is behind (monotone max; a no-op otherwise).  How a
    coordinator learns about {e another} coordinator's updates: the
    coherence feed (docs/SERVING.md) delivers remote generation
    counters, and merging them here makes the stage cache's generation
    check treat the affected entries as stale. *)
val merge_generation : t -> int -> int -> unit

(** The store's shared symbol table. *)
val intern : t -> Pax_xml.Intern.t

(** [flat t fid] — the fragment's flat image at its current
    generation, rebuilt lazily after an update.  Safe from any domain
    (the stamped image is published atomically). *)
val flat : t -> int -> Pax_xml.Flat.t

(** [spine t fid] is the tag path from the document's root element
    (inclusive) down to [root(fid)] (inclusive) — the concatenation of
    the annotations along the fragment tree.  For the root fragment this
    is just the root tag. *)
val spine : t -> int -> string list

(** Fragment ids in bottom-up (children before parents) order. *)
val bottom_up : t -> int list

(** Fragment ids in top-down (parents before children) order. *)
val top_down : t -> int list

(** {1 Reassembly and checking} *)

(** [reassemble t] splices all fragments back into a complete tree
    (fresh copy, original node ids). *)
val reassemble : t -> Pax_xml.Tree.node

(** [check t] verifies the structural invariants: virtual nodes match
    the fragment-tree edges, annotations describe real paths, fragments
    are disjoint and cover the document.  Returns an error description
    on failure. *)
val check : t -> (unit, string) result

(** {1 Measures} *)

(** Nodes per fragment (virtual placeholders excluded). *)
val fragment_node_count : fragment -> int

(** Serialized bytes per fragment (the paper's "fragment size"). *)
val fragment_byte_size : fragment -> int

val pp : Format.formatter -> t -> unit

(** Graphviz rendering of the (annotated) fragment tree — the picture of
    the paper's Fig. 2/Fig. 6. *)
val to_dot : t -> string

module Tree = Pax_xml.Tree
module Iset = Set.Make (Int)

type fragment = {
  fid : int;
  root : Tree.node;
  parent : int option;
  ann : string list;
}

(* Per-fragment flat image, stamped with the generation it was built
   at.  The pair travels in one [Atomic] cell so a concurrent reader
   (serve-layer scheduler threads, worker domains) sees either the old
   or the new (stamp, image) — never a torn mix. *)
type flat_cache = (int * Pax_xml.Flat.t) option Atomic.t array

type t = {
  fragments : fragment array;
  children : int list array;
  doc_node_count : int;
  generations : int array;
  intern : Pax_xml.Intern.t;
  flat_images : flat_cache;
}

(* All construction funnels through [make]: one shared intern table
   per store, and every fragment's flat image prewarmed at load time
   (generation 0) so the first query never pays the build. *)
let make ~fragments ~children ~doc_node_count : t =
  let n = Array.length fragments in
  let intern = Pax_xml.Intern.create () in
  let flat_images =
    Array.init n (fun fid ->
        Atomic.make
          (Some (0, Pax_xml.Flat.of_tree ~intern fragments.(fid).root)))
  in
  {
    fragments;
    children;
    doc_node_count;
    generations = Array.make n 0;
    intern;
    flat_images;
  }

let intern t = t.intern

(* The flat image of a fragment at its current generation, rebuilding
   lazily after an update bumped the generation.  Two racing rebuilds
   both produce equivalent images; last write wins. *)
let flat t fid =
  let gen = t.generations.(fid) in
  match Atomic.get t.flat_images.(fid) with
  | Some (g, f) when g = gen -> f
  | _ ->
      let f = Pax_xml.Flat.of_tree ~intern:t.intern t.fragments.(fid).root in
      Atomic.set t.flat_images.(fid) (Some (gen, f));
      f

type pending = {
  p_fid : int;
  p_parent : int option;
  p_ann : string list;
  p_orig : Tree.node;
}

let fragmentize (doc : Tree.doc) ~cuts : t =
  let cutset = Iset.remove doc.root.id (Iset.of_list cuts) in
  let vb = Tree.builder_from doc.node_count in
  let next_fid = ref 0 in
  let queue = Queue.create () in
  let enqueue ~parent ~ann orig =
    let fid = !next_fid in
    incr next_fid;
    Queue.add { p_fid = fid; p_parent = parent; p_ann = ann; p_orig = orig } queue;
    fid
  in
  ignore (enqueue ~parent:None ~ann:[] doc.root);
  let done_frags = ref [] in
  (* [clone fid path_rev n] copies node [n] of fragment [fid], replacing
     each cut descendant by a virtual node and queueing it as a new
     fragment.  [path_rev] is the reversed tag path from below the
     fragment root to [n] inclusive. *)
  let rec clone fid path_rev (n : Tree.node) : Tree.node =
    let clone_child (c : Tree.node) =
      if Iset.mem c.id cutset then begin
        let ann = List.rev (c.tag :: path_rev) in
        let child_fid = enqueue ~parent:(Some fid) ~ann c in
        Tree.virtual_node vb child_fid
      end
      else clone fid (c.tag :: path_rev) c
    in
    { n with children = List.map clone_child n.children }
  in
  while not (Queue.is_empty queue) do
    let p = Queue.pop queue in
    let root = clone p.p_fid [] p.p_orig in
    done_frags :=
      { fid = p.p_fid; root; parent = p.p_parent; ann = p.p_ann } :: !done_frags
  done;
  let fragments = Array.make !next_fid (List.hd !done_frags) in
  List.iter (fun f -> fragments.(f.fid) <- f) !done_frags;
  let children = Array.make !next_fid [] in
  Array.iter
    (fun f ->
      match f.parent with
      | Some p -> children.(p) <- f.fid :: children.(p)
      | None -> ())
    fragments;
  Array.iteri (fun i l -> children.(i) <- List.rev l) children;
  make ~fragments ~children ~doc_node_count:doc.node_count

let trivial doc = fragmentize doc ~cuts:[]

let cuts_by_size (doc : Tree.doc) ~budget =
  let budget = max 2 budget in
  let cuts = ref [] in
  let rec residual (n : Tree.node) =
    let s = List.fold_left (fun acc c -> acc + residual c) 1 n.children in
    if s > budget && n.id <> doc.root.id then begin
      cuts := n.id :: !cuts;
      1
    end
    else s
  in
  ignore (residual doc.root);
  List.rev !cuts

let cuts_by_tag (doc : Tree.doc) ~tag =
  let cuts = ref [] in
  Tree.iter
    (fun n -> if n.tag = tag && n.id <> doc.root.id then cuts := n.id :: !cuts)
    doc.root;
  List.rev !cuts

let fragment t fid = t.fragments.(fid)
let n_fragments t = Array.length t.fragments
let root_fragment t = t.fragments.(0)
let generation t fid = t.generations.(fid)
let bump_generation t fid = t.generations.(fid) <- t.generations.(fid) + 1

let merge_generation t fid gen =
  if gen > t.generations.(fid) then t.generations.(fid) <- gen

let spine t fid =
  let rec go fid acc =
    let f = t.fragments.(fid) in
    match f.parent with
    | None -> f.root.Tree.tag :: acc
    | Some p -> go p (f.ann @ acc)
  in
  go fid []

let top_down t = List.init (Array.length t.fragments) Fun.id
let bottom_up t = List.rev (top_down t)

let rec splice t (n : Tree.node) : Tree.node =
  match n.kind with
  | Tree.Virtual fid -> splice t t.fragments.(fid).root
  | Tree.Element -> { n with children = List.map (splice t) n.children }

let reassemble t = splice t t.fragments.(0).root

let fragment_node_count f =
  Tree.fold
    (fun acc n -> if Tree.is_virtual n then acc else acc + 1)
    0 f.root

let fragment_byte_size f = Tree.byte_size f.root

let check t =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  (* Virtual nodes of each fragment are exactly its fragment-tree
     children, and the annotations describe the real paths. *)
  let check_fragment f =
    let virtuals = ref [] in
    Tree.iter
      (fun n ->
        match Tree.virtual_fragment n with
        | Some fid -> virtuals := fid :: !virtuals
        | None -> ())
      f.root;
    let virtuals = List.sort compare !virtuals in
    let declared = List.sort compare t.children.(f.fid) in
    let* () =
      if virtuals = declared then Ok ()
      else err "fragment %d: virtual nodes do not match fragment-tree children" f.fid
    in
    (* Follow each child's annotation inside this fragment: all tags but
       the last must label real nodes, and the last must sit where the
       virtual node is. *)
    let rec follow fid (n : Tree.node) = function
      | [] -> err "fragment %d: empty annotation for child %d" f.fid fid
      | [ last ] ->
          if
            last = t.fragments.(fid).root.Tree.tag
            && List.exists
                 (fun (c : Tree.node) -> Tree.virtual_fragment c = Some fid)
                 n.children
          then Ok ()
          else err "fragment %d: annotation of child %d ends away from it" f.fid fid
      | tag :: rest -> (
          let candidates =
            List.filter (fun (c : Tree.node) -> c.tag = tag) n.children
          in
          match candidates with
          | [] -> err "fragment %d: annotation tag %s not found" f.fid tag
          | cs ->
              if List.exists (fun c -> Result.is_ok (follow fid c rest)) cs then
                Ok ()
              else err "fragment %d: annotation path mismatch" f.fid)
    in
    List.fold_left
      (fun acc child ->
        let* () = acc in
        follow child f.root t.fragments.(child).ann)
      (Ok ()) t.children.(f.fid)
  in
  let* () =
    Array.fold_left
      (fun acc f ->
        let* () = acc in
        check_fragment f)
      (Ok ()) t.fragments
  in
  let total = Array.fold_left (fun acc f -> acc + fragment_node_count f) 0 t.fragments in
  if total = t.doc_node_count then Ok ()
  else err "fragments cover %d nodes, document has %d" total t.doc_node_count

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph fragment_tree {\n  node [shape=box];\n";
  Array.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  F%d [label=\"F%d\\n%s: %d nodes\"];\n" f.fid f.fid
           f.root.Tree.tag (fragment_node_count f));
      match f.parent with
      | Some p ->
          Buffer.add_string buf
            (Printf.sprintf "  F%d -> F%d [label=\"%s\"];\n" p f.fid
               (String.concat "/" f.ann))
      | None -> ())
    t.fragments;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun f ->
      Format.fprintf ppf "F%d: %d nodes, parent %s, ann %s@,"
        f.fid (fragment_node_count f)
        (match f.parent with Some p -> Printf.sprintf "F%d" p | None -> "-")
        (String.concat "/" f.ann))
    t.fragments;
  Format.fprintf ppf "@]"

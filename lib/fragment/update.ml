module Tree = Pax_xml.Tree

type op =
  | Insert of int * Tree.node
  | Delete of int
  | Set_text of int * string

type error =
  | Node_not_found of int
  | Would_detach_fragments of int
  | Is_fragment_root of int
  | Duplicate_ids of int

let error_to_string = function
  | Node_not_found id -> Printf.sprintf "node %d not found" id
  | Would_detach_fragments id ->
      Printf.sprintf "the subtree of node %d spans other fragments" id
  | Is_fragment_root id ->
      Printf.sprintf "node %d is a fragment root (or the document root)" id
  | Duplicate_ids id -> Printf.sprintf "inserted subtree reuses node id %d" id

(* Routing an update to its fragment is an id-table probe per
   fragment, not a tree scan: each fragment's flat image carries a
   lazily built id index ({!Pax_xml.Flat.find_index}).  Virtual-node
   ids are allocated past the document range, so a hit on a virtual
   slot means the id names a placeholder, which [locate] never
   returns. *)
let locate (ft : Fragment.t) node_id =
  let n = Array.length ft.Fragment.fragments in
  let rec go fid =
    if fid >= n then None
    else
      let fl = Fragment.flat ft fid in
      match Pax_xml.Flat.find_index fl node_id with
      | Some i when not (Pax_xml.Flat.is_virtual fl i) ->
          Some (fid, Pax_xml.Flat.orig fl i)
      | _ -> go (fid + 1)
  in
  go 0

let is_fragment_root (ft : Fragment.t) node_id =
  Array.exists
    (fun (f : Fragment.fragment) -> f.Fragment.root.Tree.id = node_id)
    ft.Fragment.fragments

let spans_fragments (n : Tree.node) =
  let spans = ref false in
  Tree.iter (fun m -> if Tree.is_virtual m then spans := true) n;
  !spans

let existing_ids (ft : Fragment.t) =
  let ids = Hashtbl.create 1024 in
  Array.iter
    (fun (f : Fragment.fragment) ->
      Tree.iter (fun n -> Hashtbl.replace ids n.Tree.id ()) f.Fragment.root)
    ft.Fragment.fragments;
  ids

let apply_op (ft : Fragment.t) (op : op) : (int, error) result =
  match op with
  | Set_text (node_id, text) -> (
      match locate ft node_id with
      | Some (fid, n) ->
          n.Tree.text <- (if text = "" then None else Some text);
          Ok fid
      | None -> Error (Node_not_found node_id))
  | Insert (parent_id, subtree) -> (
      if spans_fragments subtree then
        Error (Would_detach_fragments subtree.Tree.id)
      else
        match locate ft parent_id with
        | None -> Error (Node_not_found parent_id)
        | Some (fid, parent) -> (
            let ids = existing_ids ft in
            let clash = ref None in
            Tree.iter
              (fun n ->
                if !clash = None && Hashtbl.mem ids n.Tree.id then
                  clash := Some n.Tree.id)
              subtree;
            match !clash with
            | Some id -> Error (Duplicate_ids id)
            | None ->
                parent.Tree.children <- parent.Tree.children @ [ subtree ];
                Ok fid))
  | Delete node_id -> (
      if is_fragment_root ft node_id then Error (Is_fragment_root node_id)
      else
        match locate ft node_id with
        | None -> Error (Node_not_found node_id)
        | Some (fid, n) ->
            if spans_fragments n then Error (Would_detach_fragments node_id)
            else begin
              (* The flat image gives the parent in O(1). *)
              let fl = Fragment.flat ft fid in
              match Pax_xml.Flat.find_index fl node_id with
              | None -> Error (Node_not_found node_id)
              | Some slot ->
                  let p = Pax_xml.Flat.parent fl slot in
                  if p < 0 then Error (Is_fragment_root node_id)
                  else begin
                    let parent = Pax_xml.Flat.orig fl p in
                    parent.Tree.children <-
                      List.filter
                        (fun (c : Tree.node) -> c.Tree.id <> node_id)
                        parent.Tree.children;
                    Ok fid
                  end
            end)

(* Every successful mutation advances the touched fragment's update
   generation, so caches keyed by (fragment, generation) are invalidated
   by exactly the fragments an update touched. *)
let apply (ft : Fragment.t) (op : op) : (int, error) result =
  match apply_op ft op with
  | Ok fid ->
      Fragment.bump_generation ft fid;
      (* In-place mutation: drop the Tree.find_by_id memo too. *)
      Tree.invalidate_id_index ();
      Ok fid
  | Error _ as e -> e

let node_count (ft : Fragment.t) =
  Array.fold_left
    (fun acc f -> acc + Fragment.fragment_node_count f)
    0 ft.Fragment.fragments

(** On-disk fragment stores.

    A fragmented document persists as a directory:
    {v
    store/
      MANIFEST          one line per fragment: id, parent, annotation
      fragment_0.xml    the root fragment (virtual nodes serialized as
      fragment_1.xml     <?fragment id="N"?> processing instructions)
      ...
    v}

    In a real deployment each site would hold its own fragment files and
    only the coordinator the manifest; keeping a whole store in one
    directory is the laptop-friendly equivalent.  Node ids are assigned
    afresh on load (globally unique across fragments); the structure,
    annotations and fragment tree are preserved exactly. *)

(** [save ft ~dir] writes the store (creates [dir] if needed).
    @raise Sys_error on IO failure. *)
val save : Fragment.t -> dir:string -> unit

exception Corrupt of string

(** [load ~dir] reads a store back.
    @raise Corrupt when the manifest and fragment files disagree.
    @raise Sys_error on IO failure. *)
val load : dir:string -> Fragment.t

(** [is_store path] — does [path] look like a fragment store? *)
val is_store : string -> bool

(** Updates on a fragmented tree — the paper's first future-work topic
    (§8): "the application of partial evaluation to processing XML
    updates … in distributed systems".

    Updates are routed to the single site holding the target node (one
    visit, no data movement of other fragments); the fragment tree's
    structural invariants are maintained, so queries keep working
    unchanged afterwards.

    Three primitive operations:
    - [Insert (parent_id, subtree)] — append a new subtree under an
      existing node (new node ids must be fresh, use
      {!Pax_xml.Tree.builder_from});
    - [Delete node_id] — remove a subtree; refused if the subtree spans
      other fragments (contains virtual nodes), if the node is the
      document root, or a fragment root (those would change the
      fragmentation itself);
    - [Set_text (node_id, text)] — replace the character data.

    All operations mutate the fragment store in place and return the
    fragment id that was touched. *)

type op =
  | Insert of int * Pax_xml.Tree.node
  | Delete of int
  | Set_text of int * string

type error =
  | Node_not_found of int
  | Would_detach_fragments of int  (** subtree spans other fragments *)
  | Is_fragment_root of int
  | Duplicate_ids of int  (** inserted subtree reuses an existing id *)

val error_to_string : error -> string

(** [apply ft op] performs the update; on success returns the id of the
    fragment that was modified and bumps that fragment's
    {!Fragment.generation}, invalidating any cache entries keyed by the
    old generation (see {!Fragment.t} and docs/SERVING.md). *)
val apply : Fragment.t -> op -> (int, error) result

(** [locate ft node_id] — which fragment holds a node. *)
val locate : Fragment.t -> int -> (int * Pax_xml.Tree.node) option

(** [node_count ft] — current number of (non-virtual) nodes, recomputed
    after updates. *)
val node_count : Fragment.t -> int

(** One-stop query handle: source text, AST, normal form and compiled
    form together. *)

type t = {
  source : string;
  ast : Ast.t;
  normal : Normal.t;
  compiled : Compile.t;
}

(** [of_string s] parses, normalizes and compiles.
    @raise Parse.Syntax_error on bad input. *)
val of_string : string -> t

val of_ast : ?source:string -> Ast.t -> t

(** Query size [|Q|]. *)
val size : t -> int

val has_qualifiers : t -> bool

(** Does the selection path contain a descendant-or-self step?  (Drives
    how much the annotation optimization can prune, cf. Exp. 2.) *)
val has_dos : t -> bool

val pp : Format.formatter -> t -> unit

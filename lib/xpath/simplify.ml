(* The normal form has no Boolean constants, but the grammar can spell
   them: [ε] (the empty path, always satisfiable) is true and its
   negation is false. *)
let qtrue : Normal.qual = Normal.Path []
let qfalse : Normal.qual = Normal.Not (Normal.Path [])

let rec static_qual (q : Normal.qual) : bool option =
  match q with
  | Normal.Path [] -> Some true
  | Normal.Path _ | Normal.Text _ | Normal.Val _ | Normal.Attr _ -> None
  | Normal.Not q -> Option.map not (static_qual q)
  | Normal.And (a, b) -> (
      match (static_qual a, static_qual b) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None)
  | Normal.Or (a, b) -> (
      match (static_qual a, static_qual b) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None)

let of_bool b = if b then qtrue else qfalse

(* Flatten nested conjunctions/disjunctions into a clause list. *)
let rec conjuncts = function
  | Normal.And (a, b) -> conjuncts a @ conjuncts b
  | q -> [ q ]

let rec disjuncts = function
  | Normal.Or (a, b) -> disjuncts a @ disjuncts b
  | q -> [ q ]

let complement a b =
  match (a, b) with
  | Normal.Not x, y | y, Normal.Not x -> x = y
  | _ -> false

let rebuild ~join ~unit = function
  | [] -> unit
  | [ q ] -> q
  | q :: rest -> List.fold_left (fun acc r -> join acc r) q rest

let rec simp_qual (q : Normal.qual) : Normal.qual =
  match q with
  | Normal.Path steps -> Normal.Path (simp_steps steps)
  | Normal.Text _ | Normal.Val _ | Normal.Attr _ -> q
  | Normal.Not inner -> (
      match simp_qual inner with
      | Normal.Not r -> r
      | r -> (
          match static_qual r with
          | Some b -> of_bool (not b)
          | None -> Normal.Not r))
  | Normal.And (a, b) -> (
      let clauses = List.concat_map conjuncts [ simp_qual a; simp_qual b ] in
      (* Drop true clauses and duplicates; detect q ∧ ¬q. *)
      let clauses =
        List.filter (fun c -> static_qual c <> Some true) clauses
      in
      let rec dedup seen = function
        | [] -> List.rev seen
        | c :: rest ->
            if List.mem c seen then dedup seen rest else dedup (c :: seen) rest
      in
      let clauses = dedup [] clauses in
      if List.exists (fun c -> static_qual c = Some false) clauses then qfalse
      else if
        List.exists
          (fun c -> List.exists (fun d -> complement c d && c <> d) clauses)
          clauses
      then qfalse
      else
        match clauses with
        | [] -> qtrue
        | cs -> rebuild ~join:(fun x y -> Normal.And (x, y)) ~unit:qtrue cs)
  | Normal.Or (a, b) -> (
      let clauses = List.concat_map disjuncts [ simp_qual a; simp_qual b ] in
      let clauses =
        List.filter (fun c -> static_qual c <> Some false) clauses
      in
      let rec dedup seen = function
        | [] -> List.rev seen
        | c :: rest ->
            if List.mem c seen then dedup seen rest else dedup (c :: seen) rest
      in
      let clauses = dedup [] clauses in
      if List.exists (fun c -> static_qual c = Some true) clauses then qtrue
      else if
        List.exists
          (fun c -> List.exists (fun d -> complement c d && c <> d) clauses)
          clauses
      then qtrue
      else
        match clauses with
        | [] -> qfalse
        | cs -> rebuild ~join:(fun x y -> Normal.Or (x, y)) ~unit:qfalse cs)

and simp_steps (steps : Normal.step list) : Normal.step list =
  let simplified =
    List.filter_map
      (fun (s : Normal.step) ->
        match s with
        | Normal.Label _ | Normal.Any | Normal.Dos -> Some s
        | Normal.Cond q -> (
            let q = simp_qual q in
            match static_qual q with
            | Some true -> None (* ε[true] is the identity step *)
            | Some false | None -> Some (Normal.Cond q)))
      steps
  in
  (* Re-merge adjacent conditions and collapse //, as normalize does. *)
  let rec fuse = function
    | Normal.Cond q1 :: Normal.Cond q2 :: rest ->
        fuse (Normal.Cond (simp_qual (Normal.And (q1, q2))) :: rest)
    | Normal.Dos :: Normal.Dos :: rest -> fuse (Normal.Dos :: rest)
    | s :: rest -> s :: fuse rest
    | [] -> []
  in
  fuse simplified

let normal (n : Normal.t) : Normal.t =
  { n with Normal.steps = simp_steps n.Normal.steps }

let query s =
  let ast = Parse.query s in
  let simplified = normal (Normal.normalize ast) in
  let compiled = Compile.compile simplified in
  { Query.source = s; ast; normal = simplified; compiled }

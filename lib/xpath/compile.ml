type test = TLabel of string | TAny

type qual =
  | Sat of int
  | Text_eq of string
  | Val_cmp of Ast.cmp * float
  | Attr_test of string * string option
  | Qnot of qual
  | Qand of qual * qual
  | Qor of qual * qual

type item = Move of test | Dos_item | Filter of qual

type cpath = {
  items : item array;
  sat : int array;
  step : int array;
  desc : int array;
}

type t = {
  absolute : bool;
  sel : item array;
  n_sel : int;
  paths : cpath array;
  n_qual : int;
  normal : Normal.t;
}

type state = { mutable paths_rev : cpath list; mutable n_paths : int; mutable entries : int }

let fresh st =
  let e = st.entries in
  st.entries <- e + 1;
  e

(* Nested qualifier paths are registered before the paths that reference
   them, so a single bottom-up node computation can process the table in
   index order. *)
let rec compile_items st (steps : Normal.step list) : item array =
  let compile_step = function
    | Normal.Label a -> Move (TLabel a)
    | Normal.Any -> Move TAny
    | Normal.Dos -> Dos_item
    | Normal.Cond q -> Filter (compile_qual st q)
  in
  Array.of_list (List.map compile_step steps)

and compile_qual st : Normal.qual -> qual = function
  | Normal.Text s -> Text_eq s
  | Normal.Val (op, n) -> Val_cmp (op, n)
  | Normal.Attr (name, v) -> Attr_test (name, v)
  | Normal.Not q -> Qnot (compile_qual st q)
  | Normal.And (a, b) -> Qand (compile_qual st a, compile_qual st b)
  | Normal.Or (a, b) -> Qor (compile_qual st a, compile_qual st b)
  | Normal.Path steps ->
      let items = compile_items st steps in
      let k = Array.length items in
      let sat = Array.init k (fun _ -> fresh st) in
      let step =
        Array.map (function Move _ -> fresh st | Dos_item | Filter _ -> -1) items
      in
      let desc = Array.make (k + 1) (-1) in
      Array.iteri
        (fun j item ->
          match item with
          | Dos_item when j + 1 < k && desc.(j + 1) < 0 ->
              desc.(j + 1) <- fresh st
          | Dos_item | Move _ | Filter _ -> ())
        items;
      let index = st.n_paths in
      st.paths_rev <- { items; sat; step; desc } :: st.paths_rev;
      st.n_paths <- index + 1;
      Sat index

let compile (normal : Normal.t) : t =
  let st = { paths_rev = []; n_paths = 0; entries = 0 } in
  let sel = compile_items st normal.Normal.steps in
  {
    absolute = normal.Normal.absolute;
    sel;
    n_sel = Array.length sel + 1;
    paths = Array.of_list (List.rev st.paths_rev);
    n_qual = st.entries;
    normal;
  }

let matches test tag =
  match test with TLabel a -> String.equal a tag | TAny -> true

let no_qualifiers t = t.n_qual = 0

let pp ppf t =
  Format.fprintf ppf "@[<v>selection items: %d (vector %d)@,qualifier paths: %d (vector %d)@]"
    (Array.length t.sel) t.n_sel (Array.length t.paths) t.n_qual

(** The paper's normal form (§2.2): a query becomes a sequence
    [β1/…/βn] where each [βi] is a label [A], a wildcard [*], the
    descendant-or-self axis [//], or a qualifier step [ε\[q\]].
    Qualifiers are themselves normalized, with [text()]/[val()] tests
    pushed into trailing [ε\[…\]] steps, and consecutive [ε] steps merged
    into a single conjunction (the last rule of [normalize]).

    Striking out the [Cond] steps yields the {e selection path} of the
    query. *)

type step =
  | Label of string  (** [A] *)
  | Any  (** [*] *)
  | Dos  (** [//] *)
  | Cond of qual  (** [ε\[q\]] *)

and qual =
  | Path of step list  (** ∃-path, e.g. [market/name/ε\[text()="nasdaq"\]] *)
  | Text of string  (** [text() = "str"] — applies to the current node *)
  | Val of Ast.cmp * float  (** [val() op num] *)
  | Attr of string * string option  (** [@name] / [@name = "str"] *)
  | Not of qual
  | And of qual * qual
  | Or of qual * qual

type t = { absolute : bool; steps : step list }

(** [normalize q] implements the paper's linear-time rewriting. *)
val normalize : Ast.t -> t

val normalize_path : Ast.path -> step list
val normalize_qual : Ast.qual -> qual

(** The selection path: the normalized steps with all [Cond]s struck
    out, e.g. [//broker/name] for query Q1 of §2.2. *)
val selection_path : t -> step list

(** True when the query has no qualifiers at all (drives the
    stage-skipping optimizations of §5/§6). *)
val has_no_qualifiers : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_step : Format.formatter -> step -> unit
val pp_qual : Format.formatter -> qual -> unit
val to_string : t -> string

(** Abstract syntax of the query class [X] (paper §2.2):

    {v
    Q := ε | A | * | Q//Q | Q/Q | Q[q]
    q := Q | q/text() = str | q/val() op num | ¬q | q ∧ q | q ∨ q
    v}

    with [op] one of [=, ≠, <, ≤, >, ≥].  [X] subsumes twig queries and
    the Boolean XPath of ParBoX. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type path =
  | Empty  (** ε — self *)
  | Tag of string  (** label test [A] *)
  | Wildcard  (** [*] *)
  | Slash of path * path  (** [Q/Q] — child *)
  | Dslash of path * path  (** [Q//Q] — descendant-or-self *)
  | Qualified of path * qual  (** [Q\[q\]] *)

and qual =
  | QPath of path  (** existential: [val(Q, v) ≠ ∅] *)
  | QText of path * string  (** [Q/text() = "str"] *)
  | QVal of path * cmp * float  (** [Q/val() op num] *)
  | QAttr of path * string * string option
      (** [Q/@name] (existence) or [Q/@name = "str"] — an extension
          beyond the paper's grammar, needed in practice because XMark
          data is attribute-rich *)
  | QNot of qual
  | QAnd of qual * qual
  | QOr of qual * qual

(** A query: [absolute] queries are anchored above the root element (a
    leading [/] or [//]); relative queries are evaluated with the root
    element as context node. *)
type t = { absolute : bool; path : path }

val compare_num : cmp -> float -> float -> bool
val cmp_to_string : cmp -> string

(** Query size [|Q|] (number of AST constructors), the unit of the
    paper's communication bound [O(|Q| |FT|)]. *)
val size : t -> int

val size_path : path -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_path : Format.formatter -> path -> unit
val pp_qual : Format.formatter -> qual -> unit
val to_string : t -> string

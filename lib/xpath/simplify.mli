(** Sound algebraic simplification of normalized queries — a small
    static optimizer in the spirit of the XPath minimization work the
    paper cites as complementary (§7, Ramanan 2002).

    Every rewrite preserves [val(Q, v)] on all trees (checked by
    property tests against the reference semantics):

    - [¬¬q → q]
    - [q ∧ q → q], [q ∨ q → q] (syntactic duplicates, any nesting order)
    - [q ∧ ¬q → false], [q ∨ ¬q → true]
    - the trivial qualifier ([ε], an empty path) is [true]: it is erased
      from conjunctions and eliminates disjunctions; an always-false /
      always-true qualifier step is dropped or collapses the query to
      the empty result
    - nested [ε\[…ε\[q\]…\]] chains flatten where the grammar allows. *)

(** Simplified normal form. *)
val normal : Normal.t -> Normal.t

(** A qualifier that is statically [true]/[false], if decidable. *)
val static_qual : Normal.qual -> bool option

(** Convenience: parse → normalize → simplify → compile. *)
val query : string -> Query.t

type t = {
  source : string;
  ast : Ast.t;
  normal : Normal.t;
  compiled : Compile.t;
}

let of_ast ?source ast =
  let normal = Normal.normalize ast in
  let compiled = Compile.compile normal in
  let source = match source with Some s -> s | None -> Ast.to_string ast in
  { source; ast; normal; compiled }

let of_string s = of_ast ~source:s (Parse.query s)
let size t = Ast.size t.ast
let has_qualifiers t = not (Normal.has_no_qualifiers t.normal)

let has_dos t =
  Array.exists
    (function Compile.Dos_item -> true | Compile.Move _ | Compile.Filter _ -> false)
    t.compiled.Compile.sel

let pp ppf t = Format.fprintf ppf "%s" t.source

type step = Label of string | Any | Dos | Cond of qual

and qual =
  | Path of step list
  | Text of string
  | Val of Ast.cmp * float
  | Attr of string * string option
  | Not of qual
  | And of qual * qual
  | Or of qual * qual

type t = { absolute : bool; steps : step list }

(* Merge runs of consecutive ε[q] steps into a single conjunction and
   collapse repeated '//' (descendant-or-self is idempotent). *)
let rec fuse = function
  | Cond q1 :: Cond q2 :: rest -> fuse (Cond (And (q1, q2)) :: rest)
  | Dos :: Dos :: rest -> fuse (Dos :: rest)
  | s :: rest -> s :: fuse rest
  | [] -> []

let rec normalize_path : Ast.path -> step list = function
  | Ast.Empty -> []
  | Ast.Tag a -> [ Label a ]
  | Ast.Wildcard -> [ Any ]
  | Ast.Slash (p, q) -> fuse (normalize_path p @ normalize_path q)
  | Ast.Dslash (p, q) -> fuse (normalize_path p @ (Dos :: normalize_path q))
  | Ast.Qualified (p, q) -> fuse (normalize_path p @ [ Cond (normalize_qual q) ])

and normalize_qual : Ast.qual -> qual = function
  | Ast.QPath p -> Path (normalize_path p)
  | Ast.QText (p, s) -> Path (fuse (normalize_path p @ [ Cond (Text s) ]))
  | Ast.QVal (p, op, n) -> Path (fuse (normalize_path p @ [ Cond (Val (op, n)) ]))
  | Ast.QAttr (p, name, v) ->
      Path (fuse (normalize_path p @ [ Cond (Attr (name, v)) ]))
  | Ast.QNot q -> Not (normalize_qual q)
  | Ast.QAnd (a, b) -> And (normalize_qual a, normalize_qual b)
  | Ast.QOr (a, b) -> Or (normalize_qual a, normalize_qual b)

let normalize (q : Ast.t) : t =
  { absolute = q.absolute; steps = normalize_path q.path }

let selection_path t =
  List.filter (function Cond _ -> false | Label _ | Any | Dos -> true) t.steps

let steps_have_qual steps =
  List.exists (function Cond _ -> true | Label _ | Any | Dos -> false) steps

let has_no_qualifiers t = not (steps_have_qual t.steps)

let equal (a : t) (b : t) = a = b

let rec pp_step ppf = function
  | Label a -> Format.pp_print_string ppf a
  | Any -> Format.pp_print_char ppf '*'
  | Dos -> Format.pp_print_string ppf "//"
  | Cond q -> Format.fprintf ppf "e[%a]" pp_qual q

and pp_qual ppf = function
  | Path [] -> Format.pp_print_char ppf '.'
  | Path steps -> pp_steps ppf steps
  | Text s -> Format.fprintf ppf "text() = \"%s\"" s
  | Val (op, n) -> Format.fprintf ppf "val() %s %g" (Ast.cmp_to_string op) n
  | Attr (name, None) -> Format.fprintf ppf "@%s" name
  | Attr (name, Some v) -> Format.fprintf ppf "@%s = \"%s\"" name v
  | Not q -> Format.fprintf ppf "not(%a)" pp_qual q
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp_qual a pp_qual b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_qual a pp_qual b

and pp_steps ppf steps =
  (* '/' separates steps except around '//', which is its own separator. *)
  let rec go first = function
    | [] -> ()
    | Dos :: rest ->
        Format.pp_print_string ppf "//";
        go true rest
    | s :: rest ->
        if not first then Format.pp_print_char ppf '/';
        pp_step ppf s;
        go false rest
  in
  go true steps

let pp ppf t =
  if t.absolute then Format.pp_print_char ppf '/';
  pp_steps ppf t.steps

let to_string t = Format.asprintf "%a" pp t

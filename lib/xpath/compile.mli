(** Compiled queries: the vector layout behind [SVect]/[QVect] (§2.2).

    A normalized query is compiled into
    - a {e selection item array} — the [βi] of the normal form: child
      moves [Move], descendant-or-self closures [Dos] and qualifier
      filters [Filter]; the selection vector [SVect] has one entry per
      {e prefix} of this array (entry 0 = the context node itself);
    - a table of {e qualifier paths} — every path appearing inside a
      qualifier, nested paths first.  For a path [p] with items
      [0..k-1], the qualifier vector [QVect] holds, per tree node [v]:

    {ul
    {- [sat.(j)] — the entry for [A_v(p, j)]: "the suffix of [p]
       starting at item [j] is satisfiable with context [v]", i.e. some
       instantiation of items [j..k-1] exists below [v];}
    {- [step.(j)] (for [Move] items) — the entry for [B_v(p, j)]: "[v]
       itself matches item [j] and the rest of the suffix is satisfiable
       from [v]"; the parent's ∃-child rule reads this (paper: the role
       of [QCV]);}
    {- [desc.(j)] (for targets of [Dos] items) — the entry for
       [D_v(p, j)]: the descendant-or-self closure
       [A_v(p, j) ∨ ∃ descendant d. A_d(p, j)] (paper: the role of
       [QDV]).}}

    Recurrences, evaluated bottom-up with children's vectors available:

    {v
    Move t at j :  B_v(j) = t(v) ∧ A_v(j+1)      A_v(j) = ∃ child c. B_c(j)
    Dos at j    :  A_v(j) = D_v(j+1)             D_v(j) = A_v(j) ∨ ∃ child c. D_c(j)
    Filter q at j: A_v(j) = Sat_v(q) ∧ A_v(j+1)
    v}

    with [A_v(k) = true] (empty suffix) and [Sat_v] the obvious Boolean
    evaluation of the filter, where [Sat_v(path p') = A_v(p', 0)].

    All entries share one flat index space of size {!field:t.n_qual}, so a
    per-node qualifier vector is a single array — one vector per node,
    [O(|Q|)] entries, exactly the paper's space budget. *)

type test = TLabel of string | TAny

type qual =
  | Sat of int  (** satisfiability of qualifier path [i] at this node *)
  | Text_eq of string
  | Val_cmp of Ast.cmp * float
  | Attr_test of string * string option
  | Qnot of qual
  | Qand of qual * qual
  | Qor of qual * qual

type item = Move of test | Dos_item | Filter of qual

type cpath = {
  items : item array;
  sat : int array;  (** [sat.(j)] = flat entry of [A(p, j)]; length [k] *)
  step : int array;  (** [step.(j)] = entry of [B(p, j)], or [-1] *)
  desc : int array;  (** [desc.(j)] = entry of [D(p, j)], or [-1]; length [k+1] *)
}

type t = {
  absolute : bool;
  sel : item array;  (** selection-path items *)
  n_sel : int;  (** selection-vector length = [Array.length sel + 1] *)
  paths : cpath array;  (** qualifier paths, nested before nesting *)
  n_qual : int;  (** flat qualifier-vector length *)
  normal : Normal.t;  (** the normal form this was compiled from *)
}

val compile : Normal.t -> t

(** [matches test tag] — label test on an element tag. *)
val matches : test -> string -> bool

(** True when there are no qualifier entries at all. *)
val no_qualifiers : t -> bool

(** Entry count summary, for sanity checks: [n_qual] is linear in the
    query size. *)
val pp : Format.formatter -> t -> unit

(** Concrete syntax parser for the query class [X].

    Accepted syntax, close to standard XPath:
    - steps: [name], [*], [.] (ε), separated by [/] (child) or [//]
      (descendant-or-self); a leading [/] or [//] makes the query
      absolute.
    - qualifiers: [\[...\]] after any step, containing paths, the tests
      [p/text() = "str"] and [p/val() op num] (and their sugar
      [p = "str"], [p op num]), combined with [and]/[or]/[not(...)]
      (also [&&], [||], [!]).
    - numbers are decimal; strings are single- or double-quoted.

    Examples from the paper, all accepted verbatim (modulo ASCII
    connectives):
    - [//broker\[//stock/code/text() = "goog"\]/name]
    - [/sites/site/people/person\[profile/age > 20 and
       address/country = "US"\]/creditcard] *)

exception Syntax_error of { pos : int; msg : string }

val query : string -> Ast.t

(** [qual s] parses a bare qualifier expression (useful for Boolean
    queries in the ParBoX style, e.g. ["//stock/code/text() = \"goog\""]). *)
val qual : string -> Ast.qual

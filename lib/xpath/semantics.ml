module Tree = Pax_xml.Tree

(* Node sets are kept as id-keyed maps to preserve set semantics; the
   final answer is sorted by id, which is document order for trees built
   in document order. *)
module Iset = Map.Make (Int)

let to_set nodes =
  List.fold_left (fun s (n : Tree.node) -> Iset.add n.id n s) Iset.empty nodes

let of_set s = List.map snd (Iset.bindings s)

let children_of (n : Tree.node) = n.children

let rec descendants_or_self acc (n : Tree.node) =
  List.fold_left descendants_or_self (Iset.add n.id n acc) n.children

let rec eval_path_set (p : Ast.path) (ctx : Tree.node Iset.t) : Tree.node Iset.t =
  match p with
  | Ast.Empty -> ctx
  | Ast.Tag a ->
      Iset.fold
        (fun _ n acc ->
          List.fold_left
            (fun acc (c : Tree.node) ->
              if c.tag = a then Iset.add c.id c acc else acc)
            acc (children_of n))
        ctx Iset.empty
  | Ast.Wildcard ->
      Iset.fold
        (fun _ n acc ->
          List.fold_left
            (fun acc (c : Tree.node) -> Iset.add c.id c acc)
            acc (children_of n))
        ctx Iset.empty
  | Ast.Slash (p1, p2) -> eval_path_set p2 (eval_path_set p1 ctx)
  | Ast.Dslash (p1, p2) ->
      let mid = eval_path_set p1 ctx in
      let widened = Iset.fold (fun _ n acc -> descendants_or_self acc n) mid Iset.empty in
      eval_path_set p2 widened
  | Ast.Qualified (p1, q) ->
      Iset.filter (fun _ n -> holds q n) (eval_path_set p1 ctx)

and holds (q : Ast.qual) (v : Tree.node) : bool =
  match q with
  | Ast.QPath p -> not (Iset.is_empty (eval_path_set p (Iset.singleton v.id v)))
  | Ast.QText (p, s) ->
      Iset.exists
        (fun _ (u : Tree.node) -> Tree.text_of u = s)
        (eval_path_set p (Iset.singleton v.id v))
  | Ast.QVal (p, op, num) ->
      Iset.exists
        (fun _ (u : Tree.node) ->
          match Tree.float_of u with
          | Some f -> Ast.compare_num op f num
          | None -> false)
        (eval_path_set p (Iset.singleton v.id v))
  | Ast.QAttr (p, name, value) ->
      Iset.exists
        (fun _ (u : Tree.node) ->
          match (Tree.attr u name, value) with
          | Some _, None -> true
          | Some actual, Some expected -> actual = expected
          | None, _ -> false)
        (eval_path_set p (Iset.singleton v.id v))
  | Ast.QNot q -> not (holds q v)
  | Ast.QAnd (a, b) -> holds a v && holds b v
  | Ast.QOr (a, b) -> holds a v || holds b v

let eval_path p contexts = of_set (eval_path_set p (to_set contexts))

let document_node root : Tree.node =
  { id = -1; tag = "#document"; text = None; attrs = []; children = [ root ];
    kind = Tree.Element }

let eval (q : Ast.t) (root : Tree.node) : Tree.node list =
  let context = if q.absolute then document_node root else root in
  let result = eval_path_set q.path (Iset.singleton context.id context) in
  (* The implicit document node is never part of an answer. *)
  of_set (Iset.remove (-1) result)

let eval_ids q root = List.map (fun (n : Tree.node) -> n.id) (eval q root)

(** Direct, set-based denotational semantics of the query class [X] —
    deliberately naive and independent of the vector machinery, to serve
    as the ground-truth oracle in tests.

    [val(Q, v)] is the set of nodes reachable from context [v] via [Q];
    a qualifier [q] holds at [v] when its obvious Boolean semantics says
    so ([QPath p] ⇔ [val(p, v) ≠ ∅], etc.). *)

(** [eval q root] evaluates [q] with the conventions of the paper:
    relative queries have the root element as context node; absolute
    queries are anchored at an implicit document node above it.  The
    result is in document order (increasing node id), without
    duplicates.  The tree must not contain virtual nodes. *)
val eval : Ast.t -> Pax_xml.Tree.node -> Pax_xml.Tree.node list

(** [eval_path p contexts] — the raw path semantics over a context set. *)
val eval_path : Ast.path -> Pax_xml.Tree.node list -> Pax_xml.Tree.node list

(** [holds q v] — qualifier satisfaction at a node. *)
val holds : Ast.qual -> Pax_xml.Tree.node -> bool

(** Answer as a sorted list of node ids (convenient for comparisons). *)
val eval_ids : Ast.t -> Pax_xml.Tree.node -> int list

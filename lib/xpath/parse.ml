exception Syntax_error of { pos : int; msg : string }

type token =
  | SLASH
  | DSLASH
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | STAR
  | DOT
  | NAME of string
  | TEXT_FN  (* text() *)
  | VAL_FN  (* val() *)
  | STR of string
  | NUM of float
  | CMP of Ast.cmp
  | AT
  | AND
  | OR
  | NOT
  | BANG
  | EOF

let token_to_string = function
  | SLASH -> "/"
  | DSLASH -> "//"
  | LBRACK -> "["
  | RBRACK -> "]"
  | LPAREN -> "("
  | RPAREN -> ")"
  | STAR -> "*"
  | DOT -> "."
  | NAME s -> s
  | TEXT_FN -> "text()"
  | VAL_FN -> "val()"
  | STR s -> Printf.sprintf "%S" s
  | NUM f -> Printf.sprintf "%g" f
  | CMP op -> Ast.cmp_to_string op
  | AT -> "@"
  | AND -> "and"
  | OR -> "or"
  | NOT -> "not"
  | BANG -> "!"
  | EOF -> "<eof>"

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type lexer = { src : string; mutable pos : int; mutable tok : token; mutable tok_pos : int }

let error lx msg = raise (Syntax_error { pos = lx.tok_pos; msg })

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | _ -> false

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let rec scan lx =
  let n = String.length lx.src in
  if lx.pos >= n then EOF
  else
    let c = lx.src.[lx.pos] in
    match c with
    | ' ' | '\t' | '\n' | '\r' ->
        lx.pos <- lx.pos + 1;
        scan lx
    | '/' ->
        if lx.pos + 1 < n && lx.src.[lx.pos + 1] = '/' then begin
          lx.pos <- lx.pos + 2;
          DSLASH
        end
        else begin
          lx.pos <- lx.pos + 1;
          SLASH
        end
    | '[' -> lx.pos <- lx.pos + 1; LBRACK
    | ']' -> lx.pos <- lx.pos + 1; RBRACK
    | '(' -> lx.pos <- lx.pos + 1; LPAREN
    | ')' -> lx.pos <- lx.pos + 1; RPAREN
    | '*' -> lx.pos <- lx.pos + 1; STAR
    | '@' -> lx.pos <- lx.pos + 1; AT
    | '.' when not (lx.pos + 1 < n && is_digit lx.src.[lx.pos + 1]) ->
        lx.pos <- lx.pos + 1;
        DOT
    | '=' -> lx.pos <- lx.pos + 1; CMP Ast.Eq
    | '!' ->
        if lx.pos + 1 < n && lx.src.[lx.pos + 1] = '=' then begin
          lx.pos <- lx.pos + 2;
          CMP Ast.Neq
        end
        else begin
          lx.pos <- lx.pos + 1;
          BANG
        end
    | '<' ->
        if lx.pos + 1 < n && lx.src.[lx.pos + 1] = '=' then begin
          lx.pos <- lx.pos + 2;
          CMP Ast.Le
        end
        else begin
          lx.pos <- lx.pos + 1;
          CMP Ast.Lt
        end
    | '>' ->
        if lx.pos + 1 < n && lx.src.[lx.pos + 1] = '=' then begin
          lx.pos <- lx.pos + 2;
          CMP Ast.Ge
        end
        else begin
          lx.pos <- lx.pos + 1;
          CMP Ast.Gt
        end
    | '&' ->
        if lx.pos + 1 < n && lx.src.[lx.pos + 1] = '&' then begin
          lx.pos <- lx.pos + 2;
          AND
        end
        else raise (Syntax_error { pos = lx.pos; msg = "expected &&" })
    | '|' ->
        if lx.pos + 1 < n && lx.src.[lx.pos + 1] = '|' then begin
          lx.pos <- lx.pos + 2;
          OR
        end
        else raise (Syntax_error { pos = lx.pos; msg = "expected ||" })
    | '"' | '\'' ->
        let quote = c in
        let start = lx.pos + 1 in
        let rec find i =
          if i >= n then
            raise (Syntax_error { pos = lx.pos; msg = "unterminated string" })
          else if lx.src.[i] = quote then i
          else find (i + 1)
        in
        let stop = find start in
        lx.pos <- stop + 1;
        STR (String.sub lx.src start (stop - start))
    | c when is_digit c || c = '.' || c = '-' ->
        let start = lx.pos in
        if c = '-' then lx.pos <- lx.pos + 1;
        while
          lx.pos < n
          && (is_digit lx.src.[lx.pos] || lx.src.[lx.pos] = '.'
             || lx.src.[lx.pos] = 'e' || lx.src.[lx.pos] = 'E')
        do
          lx.pos <- lx.pos + 1
        done;
        let lit = String.sub lx.src start (lx.pos - start) in
        (match float_of_string_opt lit with
        | Some f -> NUM f
        | None -> raise (Syntax_error { pos = start; msg = "bad number " ^ lit }))
    | c when is_name_start c ->
        let start = lx.pos in
        while lx.pos < n && is_name_char lx.src.[lx.pos] do
          lx.pos <- lx.pos + 1
        done;
        let name = String.sub lx.src start (lx.pos - start) in
        let followed_by_parens =
          lx.pos + 1 < n && lx.src.[lx.pos] = '(' && lx.src.[lx.pos + 1] = ')'
        in
        (match name with
        | "and" -> AND
        | "or" -> OR
        | "not" -> NOT
        | "text" when followed_by_parens ->
            lx.pos <- lx.pos + 2;
            TEXT_FN
        | "val" when followed_by_parens ->
            lx.pos <- lx.pos + 2;
            VAL_FN
        | _ -> NAME name)
    | c ->
        raise
          (Syntax_error
             { pos = lx.pos; msg = Printf.sprintf "unexpected character %C" c })

let next lx =
  lx.tok_pos <- lx.pos;
  lx.tok <- scan lx

let make_lexer src =
  let lx = { src; pos = 0; tok = EOF; tok_pos = 0 } in
  next lx;
  lx

let expect lx tok =
  if lx.tok = tok then next lx
  else
    error lx
      (Printf.sprintf "expected %s but found %s" (token_to_string tok)
         (token_to_string lx.tok))

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

(* A parsed path may end in text()/val(); the trailing function is only
   legal directly before a comparison inside a qualifier. *)
type path_end = Plain | Ends_text | Ends_val | Ends_attr of string

let seq p q = if p = Ast.Empty then q else Ast.Slash (p, q)

(* seg := '*' | '.' | NAME, followed by zero or more qualifiers *)
let rec parse_seg lx : Ast.path =
  let base =
    match lx.tok with
    | STAR ->
        next lx;
        Ast.Wildcard
    | DOT ->
        next lx;
        Ast.Empty
    | NAME n ->
        next lx;
        Ast.Tag n
    | t -> error lx ("expected a step but found " ^ token_to_string t)
  in
  let rec quals acc =
    if lx.tok = LBRACK then begin
      next lx;
      let q = parse_qual lx in
      expect lx RBRACK;
      quals (Ast.Qualified (acc, q))
    end
    else acc
  in
  quals base

(* relpath := seg (('/'|'//') seg)*, allowing text()/val() as the last
   segment when [in_qual]. *)
and parse_relpath lx ~in_qual : Ast.path * path_end =
  let rec go acc =
    match lx.tok with
    | SLASH ->
        next lx;
        continue acc ~dslash:false
    | DSLASH ->
        next lx;
        continue acc ~dslash:true
    | _ -> (acc, Plain)
  and continue acc ~dslash =
    match lx.tok with
    (* p/text() is the text of val(p, ·): no extra step needed;
       p//text() genuinely widens to descendants-or-self. *)
    | TEXT_FN when in_qual ->
        next lx;
        ((if dslash then Ast.Dslash (acc, Ast.Empty) else acc), Ends_text)
    | VAL_FN when in_qual ->
        next lx;
        ((if dslash then Ast.Dslash (acc, Ast.Empty) else acc), Ends_val)
    | AT when in_qual ->
        next lx;
        let name =
          match lx.tok with
          | NAME n ->
              next lx;
              n
          | t -> error lx ("expected an attribute name, found " ^ token_to_string t)
        in
        ((if dslash then Ast.Dslash (acc, Ast.Empty) else acc), Ends_attr name)
    | _ ->
        let s = parse_seg lx in
        go (if dslash then Ast.Dslash (acc, s) else seq acc s)
  in
  match lx.tok with
  | TEXT_FN when in_qual ->
      next lx;
      (Ast.Empty, Ends_text)
  | VAL_FN when in_qual ->
      next lx;
      (Ast.Empty, Ends_val)
  | AT when in_qual ->
      next lx;
      let name =
        match lx.tok with
        | NAME n ->
            next lx;
            n
        | t -> error lx ("expected an attribute name, found " ^ token_to_string t)
      in
      (Ast.Empty, Ends_attr name)
  | _ ->
      let s = parse_seg lx in
      go s

and parse_qual lx : Ast.qual = parse_or lx

and parse_or lx =
  let left = parse_and lx in
  if lx.tok = OR then begin
    next lx;
    Ast.QOr (left, parse_or lx)
  end
  else left

and parse_and lx =
  let left = parse_unary lx in
  if lx.tok = AND then begin
    next lx;
    Ast.QAnd (left, parse_and lx)
  end
  else left

and parse_unary lx =
  match lx.tok with
  | NOT ->
      next lx;
      expect lx LPAREN;
      let q = parse_qual lx in
      expect lx RPAREN;
      Ast.QNot q
  | BANG ->
      next lx;
      Ast.QNot (parse_unary lx)
  | LPAREN ->
      next lx;
      let q = parse_qual lx in
      expect lx RPAREN;
      q
  | _ -> parse_pred lx

(* pred := path [('/text()'|'/val()')] [op rhs]; a string RHS without an
   explicit function is sugar for text(), a numeric RHS for val(). *)
and parse_pred lx =
  (* Tolerate a leading '/' or '//' inside qualifiers (the paper writes
     [/profile/age > 20]); it is interpreted relative to the context. *)
  let path, ending =
    match lx.tok with
    | DSLASH ->
        next lx;
        let p, e = parse_relpath lx ~in_qual:true in
        (Ast.Dslash (Ast.Empty, p), e)
    | SLASH ->
        next lx;
        parse_relpath lx ~in_qual:true
    | _ -> parse_relpath lx ~in_qual:true
  in
  match (ending, lx.tok) with
  | Ends_text, CMP Ast.Eq ->
      next lx;
      string_rhs lx path
  | Ends_text, CMP Ast.Neq ->
      next lx;
      let q = string_rhs lx path in
      Ast.QNot q
  | Ends_text, t ->
      error lx ("text() must be compared with = or !=, found " ^ token_to_string t)
  | Ends_val, CMP op ->
      next lx;
      num_rhs lx path op
  | Ends_val, t -> error lx ("val() must be compared, found " ^ token_to_string t)
  | Ends_attr name, CMP Ast.Eq -> (
      next lx;
      match lx.tok with
      | STR v ->
          next lx;
          Ast.QAttr (path, name, Some v)
      | t -> error lx ("expected a string literal, found " ^ token_to_string t))
  | Ends_attr name, CMP Ast.Neq -> (
      next lx;
      match lx.tok with
      | STR v ->
          next lx;
          Ast.QNot (Ast.QAttr (path, name, Some v))
      | t -> error lx ("expected a string literal, found " ^ token_to_string t))
  | Ends_attr _, CMP _ ->
      error lx "attributes compare with = or != only"
  | Ends_attr name, _ -> Ast.QAttr (path, name, None)
  | Plain, CMP op -> (
      next lx;
      match lx.tok with
      | STR _ when op = Ast.Eq -> string_rhs lx path
      | STR _ when op = Ast.Neq -> Ast.QNot (string_rhs lx path)
      | STR _ -> error lx "strings compare with = or != only"
      | NUM _ -> num_rhs lx path op
      | t -> error lx ("expected a literal after comparison, found " ^ token_to_string t))
  | Plain, _ -> Ast.QPath path

and string_rhs lx path =
  match lx.tok with
  | STR s ->
      next lx;
      Ast.QText (path, s)
  | t -> error lx ("expected a string literal, found " ^ token_to_string t)

and num_rhs lx path op =
  match lx.tok with
  | NUM f ->
      next lx;
      Ast.QVal (path, op, f)
  | t -> error lx ("expected a number, found " ^ token_to_string t)

let query src : Ast.t =
  let lx = make_lexer src in
  let absolute, path =
    match lx.tok with
    | SLASH ->
        next lx;
        let p, _ = parse_relpath lx ~in_qual:false in
        (true, p)
    | DSLASH ->
        next lx;
        let p, _ = parse_relpath lx ~in_qual:false in
        (true, Ast.Dslash (Ast.Empty, p))
    | _ ->
        let p, _ = parse_relpath lx ~in_qual:false in
        (false, p)
  in
  if lx.tok <> EOF then
    error lx ("trailing input: " ^ token_to_string lx.tok);
  { Ast.absolute; path }

let qual src : Ast.qual =
  let lx = make_lexer src in
  let q = parse_qual lx in
  if lx.tok <> EOF then error lx ("trailing input: " ^ token_to_string lx.tok);
  q

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type path =
  | Empty
  | Tag of string
  | Wildcard
  | Slash of path * path
  | Dslash of path * path
  | Qualified of path * qual

and qual =
  | QPath of path
  | QText of path * string
  | QVal of path * cmp * float
  | QAttr of path * string * string option
  | QNot of qual
  | QAnd of qual * qual
  | QOr of qual * qual

type t = { absolute : bool; path : path }

let compare_num op a b =
  match op with
  | Eq -> a = b
  | Neq -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec size_path = function
  | Empty | Tag _ | Wildcard -> 1
  | Slash (p, q) | Dslash (p, q) -> 1 + size_path p + size_path q
  | Qualified (p, q) -> 1 + size_path p + size_qual q

and size_qual = function
  | QPath p -> size_path p
  | QText (p, _) | QVal (p, _, _) | QAttr (p, _, _) -> 1 + size_path p
  | QNot q -> 1 + size_qual q
  | QAnd (a, b) | QOr (a, b) -> 1 + size_qual a + size_qual b

let size t = 1 + size_path t.path
let equal (a : t) (b : t) = a = b

(* Printing re-parses to the same AST (modulo ε placement); used by the
   CLI and by parser round-trip tests. *)
let rec pp_path ppf = function
  | Empty -> Format.pp_print_string ppf "."
  | Tag a -> Format.pp_print_string ppf a
  | Wildcard -> Format.pp_print_char ppf '*'
  | Slash (Empty, q) -> pp_path ppf q
  | Slash (p, Empty) -> pp_path ppf p
  | Slash (p, q) -> Format.fprintf ppf "%a/%a" pp_path p pp_path q
  | Dslash (Empty, q) -> Format.fprintf ppf ".//%a" pp_path q
  | Dslash (p, q) -> Format.fprintf ppf "%a//%a" pp_path p pp_path q
  | Qualified (p, q) -> Format.fprintf ppf "%a[%a]" pp_path p pp_qual q

and pp_qual ppf = function
  | QPath p -> pp_path ppf p
  | QText (Empty, s) -> Format.fprintf ppf "text() = \"%s\"" s
  | QText (p, s) -> Format.fprintf ppf "%a/text() = \"%s\"" pp_path p s
  | QVal (Empty, op, n) -> Format.fprintf ppf "val() %s %g" (cmp_to_string op) n
  | QVal (p, op, n) ->
      Format.fprintf ppf "%a/val() %s %g" pp_path p (cmp_to_string op) n
  | QAttr (Empty, name, None) -> Format.fprintf ppf "@%s" name
  | QAttr (Empty, name, Some v) -> Format.fprintf ppf "@%s = \"%s\"" name v
  | QAttr (p, name, None) -> Format.fprintf ppf "%a/@%s" pp_path p name
  | QAttr (p, name, Some v) ->
      Format.fprintf ppf "%a/@%s = \"%s\"" pp_path p name v
  | QNot q -> Format.fprintf ppf "not(%a)" pp_qual q
  | QAnd (a, b) -> Format.fprintf ppf "(%a and %a)" pp_qual a pp_qual b
  | QOr (a, b) -> Format.fprintf ppf "(%a or %a)" pp_qual a pp_qual b

let pp ppf t =
  if t.absolute then begin
    match t.path with
    | Dslash (Empty, q) -> Format.fprintf ppf "//%a" pp_path q
    | p -> Format.fprintf ppf "/%a" pp_path p
  end
  else pp_path ppf t.path

let to_string t = Format.asprintf "%a" pp t

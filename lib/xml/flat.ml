(* The flat, succinct fragment image (docs/FLATTREE.md).

   A [Flat.t] is a structure-of-arrays re-encoding of one fragment's
   [Tree.node] tree in preorder: slot [i] holds node [i] of the
   document-order traversal, and all structure is int vectors —
   [parent], [first_child], [next_sibling], [subtree_size].  Tags and
   attribute keys are interned ({!Intern}); character data and
   attribute values live as offsets into one shared [Bytes] buffer.
   Virtual nodes carry their fragment id in [vfid] ([-1] for
   elements).

   The image is immutable after construction, so it is shareable
   across OCaml 5 domains without copying: a stage pass is a tight
   loop over int reads, never a heap walk.  [orig] maps each slot back
   to the pointer node it was built from — answers must be the
   physical document nodes, so materialization is one array read.

   Updates never mutate an image: {!Pax_frag.Fragment} rebuilds the
   fragment's image under a generation bump (the same invalidation
   that covers the stage cache). *)

type t = {
  n : int;  (* number of slots (preorder positions), >= 1 *)
  ids : int array;  (* slot -> document node id *)
  parent : int array;  (* slot -> parent slot; -1 at the root *)
  first_child : int array;  (* slot -> first child slot; -1 if leaf *)
  next_sibling : int array;  (* slot -> next sibling slot; -1 if last *)
  subtree_size : int array;  (* slot -> slots in its subtree, itself included *)
  tag : int array;  (* slot -> intern code of the tag *)
  vfid : int array;  (* slot -> virtual fragment id; -1 for elements *)
  text_off : int array;  (* slot -> offset into [buf]; -1 encodes None *)
  text_len : int array;
  attr_start : int array;  (* slot -> first row in the attr columns *)
  attr_count : int array;
  attr_key : int array;  (* attr row -> intern code of the key *)
  attr_off : int array;  (* attr row -> value offset into [buf] *)
  attr_len : int array;
  buf : Bytes.t;  (* all character data and attribute values *)
  num_some : bool array;  (* slot -> [Tree.float_of] succeeded *)
  num_val : float array;
  intern : Intern.t;
  orig : Tree.node array;  (* slot -> the pointer node this slot encodes *)
  by_id : (int, int) Hashtbl.t option Atomic.t;  (* lazy id -> slot *)
  by_id_lock : Mutex.t;
}

let length t = t.n
let intern t = t.intern
let node_id t i = t.ids.(i)
let root t = t.orig.(0)
let orig t i = t.orig.(i)
let parent t i = t.parent.(i)
let first_child t i = t.first_child.(i)
let next_sibling t i = t.next_sibling.(i)
let subtree_size t i = t.subtree_size.(i)
let tag_code t i = t.tag.(i)
let tag_name t i = Intern.name t.intern t.tag.(i)
let virtual_fid t i = t.vfid.(i)
let is_virtual t i = t.vfid.(i) >= 0

let n_children t i =
  let rec go c acc = if c < 0 then acc else go t.next_sibling.(c) (acc + 1) in
  go t.first_child.(i) 0

(* ------------------------------------------------------------------ *)
(* construction                                                       *)
(* ------------------------------------------------------------------ *)

let of_tree ?(intern = Intern.create ()) (root : Tree.node) =
  let n = Tree.size root in
  let n_attrs =
    Tree.fold (fun acc nd -> acc + List.length nd.Tree.attrs) 0 root
  in
  let ids = Array.make n 0
  and parent = Array.make n (-1)
  and first_child = Array.make n (-1)
  and next_sibling = Array.make n (-1)
  and subtree_size = Array.make n 1
  and tag = Array.make n 0
  and vfid = Array.make n (-1)
  and text_off = Array.make n (-1)
  and text_len = Array.make n 0
  and attr_start = Array.make n 0
  and attr_count = Array.make n 0
  and attr_key = Array.make (max n_attrs 1) 0
  and attr_off = Array.make (max n_attrs 1) 0
  and attr_len = Array.make (max n_attrs 1) 0
  and num_some = Array.make n false
  and num_val = Array.make n 0.
  and orig = Array.make n root in
  let bbuf = Buffer.create 1024 in
  let slot = ref 0 and attr_ix = ref 0 in
  let rec go p (nd : Tree.node) =
    let i = !slot in
    incr slot;
    ids.(i) <- nd.Tree.id;
    parent.(i) <- p;
    tag.(i) <- Intern.intern intern nd.Tree.tag;
    (match nd.Tree.kind with
    | Tree.Virtual f -> vfid.(i) <- f
    | Tree.Element -> ());
    (match nd.Tree.text with
    | None -> ()
    | Some s ->
        text_off.(i) <- Buffer.length bbuf;
        text_len.(i) <- String.length s;
        Buffer.add_string bbuf s);
    (match Tree.float_of nd with
    | Some f ->
        num_some.(i) <- true;
        num_val.(i) <- f
    | None -> ());
    attr_start.(i) <- !attr_ix;
    attr_count.(i) <- List.length nd.Tree.attrs;
    List.iter
      (fun (k, v) ->
        let j = !attr_ix in
        incr attr_ix;
        attr_key.(j) <- Intern.intern intern k;
        attr_off.(j) <- Buffer.length bbuf;
        attr_len.(j) <- String.length v;
        Buffer.add_string bbuf v)
      nd.Tree.attrs;
    orig.(i) <- nd;
    let prev = ref (-1) in
    List.iter
      (fun c ->
        let ci = go i c in
        if !prev < 0 then first_child.(i) <- ci
        else next_sibling.(!prev) <- ci;
        prev := ci)
      nd.Tree.children;
    subtree_size.(i) <- !slot - i;
    i
  in
  ignore (go (-1) root);
  {
    n;
    ids;
    parent;
    first_child;
    next_sibling;
    subtree_size;
    tag;
    vfid;
    text_off;
    text_len;
    attr_start;
    attr_count;
    attr_key;
    attr_off;
    attr_len;
    buf = Buffer.to_bytes bbuf;
    num_some;
    num_val;
    intern;
    orig;
    by_id = Atomic.make None;
    by_id_lock = Mutex.create ();
  }

(* Materialize fresh pointer nodes from the columns alone, reverse
   preorder so children exist before their parent (preorder guarantees
   child slots > parent slot).  Shared by [to_tree] and [decode]. *)
let materialize ~intern ~n ~ids ~first_child ~next_sibling ~tag ~vfid ~text_off
    ~text_len ~attr_start ~attr_count ~attr_key ~attr_off ~attr_len ~buf =
  let dummy : Tree.node =
    { Tree.id = -1; tag = ""; text = None; attrs = []; children = [];
      kind = Tree.Element }
  in
  let nodes = Array.make n dummy in
  for i = n - 1 downto 0 do
    let rec kids c acc =
      if c < 0 then List.rev acc else kids next_sibling.(c) (nodes.(c) :: acc)
    in
    let rec attrs j k acc =
      if k = 0 then List.rev acc
      else
        attrs (j + 1) (k - 1)
          ( ( Intern.name intern attr_key.(j),
              Bytes.sub_string buf attr_off.(j) attr_len.(j) )
          :: acc )
    in
    nodes.(i) <-
      {
        Tree.id = ids.(i);
        tag = Intern.name intern tag.(i);
        text =
          (if text_off.(i) < 0 then None
           else Some (Bytes.sub_string buf text_off.(i) text_len.(i)));
        attrs = attrs attr_start.(i) attr_count.(i) [];
        children = kids first_child.(i) [];
        kind = (if vfid.(i) >= 0 then Tree.Virtual vfid.(i) else Tree.Element);
      }
  done;
  nodes

let to_tree t =
  let nodes =
    materialize ~intern:t.intern ~n:t.n ~ids:t.ids ~first_child:t.first_child
      ~next_sibling:t.next_sibling ~tag:t.tag ~vfid:t.vfid
      ~text_off:t.text_off ~text_len:t.text_len ~attr_start:t.attr_start
      ~attr_count:t.attr_count ~attr_key:t.attr_key ~attr_off:t.attr_off
      ~attr_len:t.attr_len ~buf:t.buf
  in
  nodes.(0)

(* ------------------------------------------------------------------ *)
(* content accessors (allocation-free comparisons)                    *)
(* ------------------------------------------------------------------ *)

(* [vtext] semantics of the qualifier view: a missing text is [""]. *)
let text_equals t i s =
  String.length s = t.text_len.(i)
  &&
  let off = t.text_off.(i) in
  off < 0
  ||
  let rec eq j =
    j = t.text_len.(i)
    || (Bytes.unsafe_get t.buf (off + j) = String.unsafe_get s j && eq (j + 1))
  in
  eq 0

let text t i =
  if t.text_off.(i) < 0 then None
  else Some (Bytes.sub_string t.buf t.text_off.(i) t.text_len.(i))

let num t i = if t.num_some.(i) then Some t.num_val.(i) else None

(* First attribute row whose key has code [key]; -1 when absent or the
   key was never interned ([key] = -1 matches nothing). *)
let attr_row t i key =
  if key < 0 then -1
  else
    let stop = t.attr_start.(i) + t.attr_count.(i) in
    let rec go j =
      if j >= stop then -1 else if t.attr_key.(j) = key then j else go (j + 1)
    in
    go t.attr_start.(i)

(* The qualifier view's attribute test, allocation-free: [expected]
   [None] asks only for presence. *)
let attr_test t i ~key ~expected =
  let j = attr_row t i key in
  j >= 0
  &&
  match expected with
  | None -> true
  | Some s ->
      String.length s = t.attr_len.(j)
      &&
      let off = t.attr_off.(j) in
      let rec eq k =
        k = t.attr_len.(j)
        || Bytes.unsafe_get t.buf (off + k) = String.unsafe_get s k
           && eq (k + 1)
      in
      eq 0

let attr_value t i ~key =
  let j = attr_row t i key in
  if j < 0 then None
  else Some (Bytes.sub_string t.buf t.attr_off.(j) t.attr_len.(j))

(* ------------------------------------------------------------------ *)
(* id index                                                           *)
(* ------------------------------------------------------------------ *)

(* Lazily built id -> slot table.  The [Atomic] publication means a
   racing reader either sees [None] (and builds under the lock, where
   the second check deduplicates) or a fully constructed table. *)
let index t =
  match Atomic.get t.by_id with
  | Some h -> h
  | None ->
      Mutex.lock t.by_id_lock;
      let h =
        match Atomic.get t.by_id with
        | Some h -> h
        | None ->
            let h = Hashtbl.create (2 * t.n) in
            for i = 0 to t.n - 1 do
              Hashtbl.replace h t.ids.(i) i
            done;
            Atomic.set t.by_id (Some h);
            h
      in
      Mutex.unlock t.by_id_lock;
      h

let find_index t id = Hashtbl.find_opt (index t) id
let find_by_id t id = Option.map (fun i -> t.orig.(i)) (find_index t id)

(* ------------------------------------------------------------------ *)
(* wire image                                                         *)
(* ------------------------------------------------------------------ *)

(* The serialized image is columns, not nodes: a fixed header, an
   intern dictionary (only the codes this fragment uses), the int
   columns as little-endian u32 rows, and one blit of [buf].  Codes
   are remapped through the receiver's intern on decode, so two stores
   never need to agree on code assignment.  [num_*] is derived state
   and recomputed ([Tree.float_of] is a pure function of the text). *)

let add_i32 b v = Buffer.add_int32_le b (Int32.of_int v)

let add_col b arr n =
  for i = 0 to n - 1 do
    add_i32 b arr.(i)
  done

let encode t =
  let b = Buffer.create (64 * t.n) in
  (* dictionary: every code that appears in tag or attr_key columns *)
  let used = Hashtbl.create 64 in
  Array.iter (fun c -> Hashtbl.replace used c ()) t.tag;
  for j = 0 to t.attr_start.(t.n - 1) + t.attr_count.(t.n - 1) - 1 do
    Hashtbl.replace used t.attr_key.(j) ()
  done;
  let codes = List.sort compare (Hashtbl.fold (fun c () l -> c :: l) used []) in
  add_i32 b t.n;
  let n_attrs = t.attr_start.(t.n - 1) + t.attr_count.(t.n - 1) in
  add_i32 b n_attrs;
  add_i32 b (List.length codes);
  add_i32 b (Bytes.length t.buf);
  List.iter
    (fun c ->
      let s = Intern.name t.intern c in
      add_i32 b c;
      add_i32 b (String.length s);
      Buffer.add_string b s)
    codes;
  add_col b t.ids t.n;
  add_col b t.parent t.n;
  add_col b t.first_child t.n;
  add_col b t.next_sibling t.n;
  add_col b t.subtree_size t.n;
  add_col b t.tag t.n;
  add_col b t.vfid t.n;
  add_col b t.text_off t.n;
  add_col b t.text_len t.n;
  add_col b t.attr_start t.n;
  add_col b t.attr_count t.n;
  add_col b t.attr_key n_attrs;
  add_col b t.attr_off n_attrs;
  add_col b t.attr_len n_attrs;
  Buffer.add_bytes b t.buf;
  Buffer.contents b

exception Corrupt

let decode ?(intern = Intern.create ()) s =
  let pos = ref 0 in
  let len = String.length s in
  let get_i32 () =
    if !pos + 4 > len then raise Corrupt;
    let v = Int32.to_int (String.get_int32_le s !pos) in
    pos := !pos + 4;
    v
  in
  let get_col n =
    let a = Array.make (max n 1) 0 in
    for i = 0 to n - 1 do
      a.(i) <- get_i32 ()
    done;
    a
  in
  match
    let n = get_i32 () in
    if n < 1 || n > len then raise Corrupt;
    let n_attrs = get_i32 () in
    if n_attrs < 0 || n_attrs > len then raise Corrupt;
    let n_codes = get_i32 () in
    if n_codes < 0 || n_codes > len then raise Corrupt;
    let buf_len = get_i32 () in
    if buf_len < 0 || buf_len > len then raise Corrupt;
    (* remote code -> local code *)
    let remap = Hashtbl.create (2 * n_codes) in
    for _ = 1 to n_codes do
      let c = get_i32 () in
      let slen = get_i32 () in
      if slen < 0 || !pos + slen > len then raise Corrupt;
      let name = String.sub s !pos slen in
      pos := !pos + slen;
      Hashtbl.replace remap c (Intern.intern intern name)
    done;
    let local c =
      match Hashtbl.find_opt remap c with Some l -> l | None -> raise Corrupt
    in
    let ids = get_col n in
    let parent = get_col n in
    let first_child = get_col n in
    let next_sibling = get_col n in
    let subtree_size = get_col n in
    let tag = Array.map local (get_col n) in
    let vfid = get_col n in
    let text_off = get_col n in
    let text_len = get_col n in
    let attr_start = get_col n in
    let attr_count = get_col n in
    (* [get_col 0] yields a 1-slot dummy array; only real entries go
       through the dictionary (the padding is no code at all). *)
    let attr_key =
      Array.mapi
        (fun j c -> if j < n_attrs then local c else 0)
        (get_col n_attrs)
    in
    let attr_off = get_col n_attrs in
    let attr_len = get_col n_attrs in
    if !pos + buf_len <> len then raise Corrupt;
    let buf = Bytes.of_string (String.sub s !pos buf_len) in
    (* structural sanity: every slot reference in range, offsets in
       the buffer, so accessors cannot escape their arrays *)
    let slot_ok v = v >= -1 && v < n in
    Array.iter (fun v -> if not (slot_ok v) then raise Corrupt) parent;
    Array.iter (fun v -> if not (slot_ok v) then raise Corrupt) first_child;
    Array.iter (fun v -> if not (slot_ok v) then raise Corrupt) next_sibling;
    for i = 0 to n - 1 do
      if subtree_size.(i) < 1 || i + subtree_size.(i) > n then raise Corrupt;
      if text_off.(i) < -1 || text_len.(i) < 0 then raise Corrupt;
      if text_off.(i) >= 0 && text_off.(i) + text_len.(i) > buf_len then
        raise Corrupt;
      if
        attr_start.(i) < 0 || attr_count.(i) < 0
        || attr_start.(i) + attr_count.(i) > n_attrs
      then raise Corrupt
    done;
    for j = 0 to n_attrs - 1 do
      if attr_off.(j) < 0 || attr_len.(j) < 0 then raise Corrupt;
      if attr_off.(j) + attr_len.(j) > buf_len then raise Corrupt
    done;
    let orig =
      materialize ~intern ~n ~ids ~first_child ~next_sibling ~tag ~vfid
        ~text_off ~text_len ~attr_start ~attr_count ~attr_key ~attr_off
        ~attr_len ~buf
    in
    let num_some = Array.make n false and num_val = Array.make n 0. in
    for i = 0 to n - 1 do
      match Tree.float_of orig.(i) with
      | Some f ->
          num_some.(i) <- true;
          num_val.(i) <- f
      | None -> ()
    done;
    {
      n;
      ids;
      parent;
      first_child;
      next_sibling;
      subtree_size;
      tag;
      vfid;
      text_off;
      text_len;
      attr_start;
      attr_count;
      attr_key;
      attr_off;
      attr_len;
      buf;
      num_some;
      num_val;
      intern;
      orig;
      by_id = Atomic.make None;
      by_id_lock = Mutex.create ();
    }
  with
  | t -> Some t
  | exception Corrupt -> None
  | exception Invalid_argument _ -> None

(** The flat, succinct fragment image: one fragment's {!Tree.node}
    tree re-encoded as preorder-indexed structure-of-arrays — int
    vectors for structure ([parent], [first_child], [next_sibling],
    [subtree_size]), interned tags and attribute keys ({!Intern}),
    character data and attribute values as offsets into one shared
    byte buffer, and virtual-node slots carrying their fragment id.

    Built once from the pointer tree, immutable afterwards, and
    therefore shareable across OCaml 5 domains without copying; stage
    passes traverse it as tight loops over int reads.  Layout,
    invariants and sharing rules: docs/FLATTREE.md. *)

type t

(** {1 Construction} *)

(** [of_tree ?intern root] builds the image, interning every tag and
    attribute key into [intern] (fresh by default; a fragment store
    passes its shared table). *)
val of_tree : ?intern:Intern.t -> Tree.node -> t

(** Reconstruct fresh pointer nodes — same ids, tags, text,
    attributes, children order and virtual fragment ids.  Inverse of
    {!of_tree} up to physical identity. *)
val to_tree : t -> Tree.node

(** {1 Structure}

    Slots are preorder positions: slot [0] is the root, a node's
    subtree occupies slots [i .. i + subtree_size i - 1]. *)

val length : t -> int

val intern : t -> Intern.t

val node_id : t -> int -> int
val parent : t -> int -> int  (** [-1] at the root *)

val first_child : t -> int -> int  (** [-1] for a leaf *)

val next_sibling : t -> int -> int  (** [-1] for a last child *)

val subtree_size : t -> int -> int
val n_children : t -> int -> int
val tag_code : t -> int -> int
val tag_name : t -> int -> string
val virtual_fid : t -> int -> int  (** [-1] for elements *)

val is_virtual : t -> int -> bool

(** The pointer node slot [i] was built from (or a materialized
    equivalent after {!decode}) — answers ship physical nodes. *)
val orig : t -> int -> Tree.node

(** [orig t 0]. *)
val root : t -> Tree.node

(** {1 Content}

    The comparison accessors are allocation-free: they compare against
    the shared byte buffer in place. *)

(** [text_equals t i s] — does slot [i]'s character data (missing text
    reads as [""], matching the qualifier view) equal [s]? *)
val text_equals : t -> int -> string -> bool

val text : t -> int -> string option

(** Numeric value of the character data, exactly {!Tree.float_of}
    (precomputed at build time). *)
val num : t -> int -> float option

(** [attr_test t i ~key ~expected] — slot [i] has an attribute whose
    key has intern code [key] (first occurrence wins, as
    [List.assoc_opt]); with [expected = Some v] its value must equal
    [v].  A [key] of [-1] (never interned) matches nothing. *)
val attr_test : t -> int -> key:int -> expected:string option -> bool

val attr_value : t -> int -> key:int -> string option

(** {1 Id lookup}

    Backed by a lazily built id→slot table (satellite of ISSUE 7: no
    more linear scans).  Thread-safe: the table is built once under a
    lock and published atomically. *)

val find_index : t -> int -> int option

val find_by_id : t -> int -> Tree.node option

(** {1 Wire image}

    Columns, not nodes: a fixed header, the intern dictionary slice
    this fragment uses, the int columns as little-endian [u32] rows
    and one blit of the byte buffer.  {!decode} remaps codes through
    the receiver's intern table and validates every slot reference and
    buffer offset; [None] on corrupt input. *)

val encode : t -> string

val decode : ?intern:Intern.t -> string -> t option

(** A self-contained XML parser producing {!Tree.node} values.

    Supports the subset needed for data trees: elements, attributes,
    character data (with the five predefined entities and numeric
    character references), CDATA sections, comments, processing
    instructions and the XML declaration.  Character data directly under
    an element is whitespace-trimmed and concatenated into the node's
    [text] field; whitespace-only segments are dropped.  DTDs are
    skipped, namespaces are kept verbatim in tag names. *)

exception Parse_error of { pos : int; msg : string }

(** [parse_string ?builder s] parses a complete document.  When
    [builder] is given, node ids continue from it (useful when several
    documents must not collide). *)
val parse_string : ?builder:Tree.builder -> string -> Tree.doc

(** [parse_file ?builder path] reads and parses a file. *)
val parse_file : ?builder:Tree.builder -> string -> Tree.doc

(** [decode_entities s] decodes the five predefined entities and numeric
    character references (shared with the event scanner). *)
val decode_entities : string -> string

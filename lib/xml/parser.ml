exception Parse_error of { pos : int; msg : string }

type state = { src : string; mutable pos : int; b : Tree.builder }

let error st msg = raise (Parse_error { pos = st.pos; msg })
let eof st = st.pos >= String.length st.src
let peek st = st.src.[st.pos]
let advance st = st.pos <- st.pos + 1

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then st.pos <- st.pos + String.length prefix
  else error st (Printf.sprintf "expected %S" prefix)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name st =
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  if st.pos = start then error st "expected a name";
  String.sub st.src start (st.pos - start)

(* Decode the predefined entities and numeric character references.
   Unknown entities are kept verbatim, which is lenient but safe. *)
let decode_entities s =
  if not (String.contains s '&') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] <> '&' then begin
        Buffer.add_char buf s.[!i];
        incr i
      end
      else begin
        let semi = try String.index_from s !i ';' with Not_found -> -1 in
        if semi < 0 || semi - !i > 10 then begin
          Buffer.add_char buf '&';
          incr i
        end
        else begin
          let entity = String.sub s (!i + 1) (semi - !i - 1) in
          (match entity with
          | "lt" -> Buffer.add_char buf '<'
          | "gt" -> Buffer.add_char buf '>'
          | "amp" -> Buffer.add_char buf '&'
          | "quot" -> Buffer.add_char buf '"'
          | "apos" -> Buffer.add_char buf '\''
          | _ ->
              let coded =
                if String.length entity > 1 && entity.[0] = '#' then
                  let num = String.sub entity 1 (String.length entity - 1) in
                  let value =
                    if String.length num > 1 && (num.[0] = 'x' || num.[0] = 'X')
                    then
                      int_of_string_opt
                        ("0x" ^ String.sub num 1 (String.length num - 1))
                    else int_of_string_opt num
                  in
                  match value with
                  | Some c when c >= 0 && c < 128 ->
                      Buffer.add_char buf (Char.chr c);
                      true
                  | Some c when c < 0x110000 ->
                      Buffer.add_string buf (Printf.sprintf "\\u{%X}" c);
                      true
                  | Some _ | None -> false
                else false
              in
              if not coded then begin
                Buffer.add_char buf '&';
                Buffer.add_string buf entity;
                Buffer.add_char buf ';'
              end);
          i := semi + 1
        end
      end
    done;
    Buffer.contents buf
  end

let read_until st stop =
  match
    let stop0 = stop.[0] in
    let limit = String.length st.src in
    let rec find i =
      if i >= limit then None
      else if st.src.[i] = stop0 && looking_at { st with pos = i } stop then
        Some i
      else find (i + 1)
    in
    find st.pos
  with
  | None -> error st (Printf.sprintf "unterminated construct, expected %S" stop)
  | Some i ->
      let s = String.sub st.src st.pos (i - st.pos) in
      st.pos <- i + String.length stop;
      s

let rec skip_misc st =
  skip_spaces st;
  if looking_at st "<?" then begin
    expect st "<?";
    ignore (read_until st "?>");
    skip_misc st
  end
  else if looking_at st "<!--" then begin
    expect st "<!--";
    ignore (read_until st "-->");
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" || looking_at st "<!doctype" then begin
    (* Skip to the matching '>'; internal subsets use brackets. *)
    let depth = ref 0 in
    let stop = ref false in
    while not !stop do
      if eof st then error st "unterminated DOCTYPE";
      (match peek st with
      | '[' -> incr depth
      | ']' -> decr depth
      | '>' when !depth = 0 -> stop := true
      | _ -> ());
      advance st
    done;
    skip_misc st
  end

(* Recognize the serializer's <?fragment id="N"?> placeholder. *)
let fragment_pi pi =
  let pi = String.trim pi in
  let prefix = "fragment id=\"" in
  let plen = String.length prefix in
  if String.length pi > plen && String.sub pi 0 plen = prefix then
    let rest = String.sub pi plen (String.length pi - plen) in
    match String.index_opt rest '"' with
    | Some stop -> int_of_string_opt (String.sub rest 0 stop)
    | None -> None
  else None

let read_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then error st "expected a quoted value";
  advance st;
  let raw = read_until st (String.make 1 quote) in
  decode_entities raw

let read_attrs st =
  let rec go acc =
    skip_spaces st;
    if eof st then error st "unterminated start tag"
    else if peek st = '>' || looking_at st "/>" then List.rev acc
    else begin
      let name = read_name st in
      skip_spaces st;
      expect st "=";
      skip_spaces st;
      let value = read_attr_value st in
      go ((name, value) :: acc)
    end
  in
  go []

let rec read_element st =
  expect st "<";
  let tag = read_name st in
  let attrs = read_attrs st in
  skip_spaces st;
  if looking_at st "/>" then begin
    expect st "/>";
    Tree.elem st.b ~attrs tag []
  end
  else begin
    expect st ">";
    let children, text = read_content st tag in
    let text = if text = "" then None else Some text in
    Tree.elem st.b ?text ~attrs tag children
  end

and read_content st tag =
  let children = ref [] in
  let text = Buffer.create 16 in
  let rec go () =
    if eof st then error st (Printf.sprintf "unterminated element <%s>" tag)
    else if looking_at st "</" then begin
      expect st "</";
      let closing = read_name st in
      if closing <> tag then
        error st (Printf.sprintf "mismatched tag: <%s> closed by </%s>" tag closing);
      skip_spaces st;
      expect st ">"
    end
    else if looking_at st "<!--" then begin
      expect st "<!--";
      ignore (read_until st "-->");
      go ()
    end
    else if looking_at st "<![CDATA[" then begin
      expect st "<![CDATA[";
      Buffer.add_string text (read_until st "]]>");
      go ()
    end
    else if looking_at st "<?" then begin
      expect st "<?";
      let pi = read_until st "?>" in
      (* A fragment placeholder PI round-trips to a virtual node. *)
      (match fragment_pi pi with
      | Some fid -> children := Tree.virtual_node st.b fid :: !children
      | None -> ());
      go ()
    end
    else if peek st = '<' then begin
      children := read_element st :: !children;
      go ()
    end
    else begin
      let start = st.pos in
      while (not (eof st)) && peek st <> '<' do
        advance st
      done;
      let segment =
        String.trim (decode_entities (String.sub st.src start (st.pos - start)))
      in
      Buffer.add_string text segment;
      go ()
    end
  in
  go ();
  (List.rev !children, Buffer.contents text)

let parse_string ?builder s =
  let b = match builder with Some b -> b | None -> Tree.builder () in
  let st = { src = s; pos = 0; b } in
  skip_misc st;
  if eof st || peek st <> '<' then error st "expected a root element";
  let root = read_element st in
  skip_misc st;
  if not (eof st) then error st "trailing content after the root element";
  Tree.doc_of_root root

let parse_file ?builder path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      parse_string ?builder (really_input_string ic n))

let escape buf ~quotes s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quotes -> Buffer.add_string buf "&quot;"
      | '\'' when quotes -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s

let escape_to buf s = escape buf ~quotes:false s

let escape_text s =
  let buf = Buffer.create (String.length s) in
  escape buf ~quotes:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  escape buf ~quotes:true s;
  Buffer.contents buf

let to_buffer ?(indent = false) buf node =
  let pad level = if indent then Buffer.add_string buf (String.make (2 * level) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  let rec go level (n : Tree.node) =
    match n.kind with
    | Tree.Virtual fid ->
        pad level;
        Buffer.add_string buf (Printf.sprintf "<?fragment id=\"%d\"?>" fid);
        newline ()
    | Tree.Element ->
        pad level;
        Buffer.add_char buf '<';
        Buffer.add_string buf n.tag;
        List.iter
          (fun (k, v) ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf k;
            Buffer.add_string buf "=\"";
            escape buf ~quotes:true v;
            Buffer.add_char buf '"')
          n.attrs;
        if n.children = [] && n.text = None then begin
          Buffer.add_string buf "/>";
          newline ()
        end
        else begin
          Buffer.add_char buf '>';
          (match n.text with Some t -> escape_to buf t | None -> ());
          if n.children <> [] then begin
            newline ();
            List.iter (go (level + 1)) n.children;
            pad level
          end;
          Buffer.add_string buf "</";
          Buffer.add_string buf n.tag;
          Buffer.add_char buf '>';
          newline ()
        end
  in
  go 0 node

let to_string ?indent node =
  let buf = Buffer.create 1024 in
  to_buffer ?indent buf node;
  Buffer.contents buf

(** Event-based (SAX-style) XML scanning: the substrate for single-pass
    streaming evaluation, where no tree is ever materialized.

    Events follow the conventions of {!Parser}: character data is
    whitespace-trimmed per segment, whitespace-only segments are
    dropped, CDATA is passed through raw, comments / PIs / prolog are
    skipped (fragment placeholder PIs are {e not} supported in streams —
    a stream is a complete document). *)

type event =
  | Open of string * (string * string) list  (** tag, attributes *)
  | Text of string
  | Close of string

exception Parse_error of { pos : int; msg : string }

(** [fold_string s ~init ~f] scans the document once, threading the
    accumulator through every event.  Raises {!Parse_error} on malformed
    input (including mismatched tags). *)
val fold_string : string -> init:'a -> f:('a -> event -> 'a) -> 'a

(** [iter_string s ~f] — imperative variant. *)
val iter_string : string -> f:(event -> unit) -> unit

(** All events as a list (testing convenience; defeats streaming). *)
val events_of_string : string -> event list

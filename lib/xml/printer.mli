(** XML serialization of {!Tree.node} values.

    Virtual nodes serialize as processing instructions
    [<?fragment id="N"?>] so that a fragment written to disk remains a
    well-formed document and the placeholders survive a round trip. *)

(** [to_buffer ?indent buf n] appends the serialization of [n]. *)
val to_buffer : ?indent:bool -> Buffer.t -> Tree.node -> unit

val to_string : ?indent:bool -> Tree.node -> string

(** [escape_text s] escapes [&], [<] and [>]. *)
val escape_text : string -> string

(** [escape_attr s] additionally escapes quotes. *)
val escape_attr : string -> string

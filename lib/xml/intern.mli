(** A string <-> small-int symbol table, one per fragment store.

    Tags and attribute keys are interned once when a flat fragment
    image ({!Flat}) is built; stage passes then compare tags by int
    code.  Every operation is mutex-guarded and safe to call from any
    domain; the hot loops never call in here — they carry pre-resolved
    codes (see docs/FLATTREE.md). *)

type t

val create : unit -> t

(** [intern t s] — the code for [s], assigning a fresh one on first
    sight.  Codes are dense, starting at 0. *)
val intern : t -> string -> int

(** [find t s] — the code for [s], or [-1] if it was never interned.
    Used when compiling a query against a store: a tag the store has
    never seen matches no node, and [-1] encodes exactly that. *)
val find : t -> string -> int

(** [name t c] — inverse of {!intern}.
    @raise Invalid_argument on an unknown code. *)
val name : t -> int -> string

val size : t -> int

(** The XML tree model.

    Nodes are elements carrying a tag, optional character data (the
    concatenation of text directly under the element), attributes, and
    children in document order.  A node is identified by an integer id
    that is unique within its document; fragmentation preserves ids, so a
    query answer can be compared across evaluation strategies as a set of
    ids.

    A node whose [kind] is [Virtual fid] stands for a missing
    sub-fragment: its subtree lives in fragment [fid] on some other site
    (paper §2.1).  Complete documents contain no virtual nodes. *)

type kind = Element | Virtual of int

type node = {
  id : int;
  tag : string;
  mutable text : string option;
  attrs : (string * string) list;
  mutable children : node list;
  kind : kind;
}

type doc = { root : node; node_count : int }

(** {1 Construction} *)

(** A builder hands out fresh node ids. *)
type builder

val builder : unit -> builder

(** [builder_from n] hands out ids starting at [n]; used to keep the ids
    of freshly created virtual nodes disjoint from document ids. *)
val builder_from : int -> builder

(** [elem b tag ?text ?attrs children] creates an element node. *)
val elem :
  builder -> ?text:string -> ?attrs:(string * string) list -> string ->
  node list -> node

(** [leaf b tag text] is an element with character data and no children. *)
val leaf : builder -> string -> string -> node

(** [virtual_node b fid] creates a placeholder for fragment [fid]. *)
val virtual_node : builder -> int -> node

(** [doc_of_root root] packages a tree, computing its node count. *)
val doc_of_root : node -> doc

(** Number of ids the builder has handed out so far. *)
val allocated : builder -> int

(** {1 Predicates and access} *)

val is_virtual : node -> bool

(** [virtual_fragment n] is [Some fid] when [n] is a virtual node. *)
val virtual_fragment : node -> int option

(** Character data of [n], or [""]. *)
val text_of : node -> string

(** [float_of n] parses the character data as a number ([val()] in the
    paper's query class); [None] when absent or non-numeric. *)
val float_of : node -> float option

val attr : node -> string -> string option

(** {1 Traversal} *)

(** Pre-order iteration (document order), including virtual nodes. *)
val iter : (node -> unit) -> node -> unit

val fold : ('a -> node -> 'a) -> 'a -> node -> 'a

(** Post-order iteration: children before parents. *)
val iter_post : (node -> unit) -> node -> unit

(** [find_by_id root id] finds a node by id.  Backed by a memoized
    id table keyed by (physical) [root] — repeated lookups against one
    tree are O(1); a different root rebuilds the table in one pass.
    Callers that mutate a tree in place must call
    {!invalidate_id_index} afterwards ({!Pax_frag.Update} does). *)
val find_by_id : node -> int -> node option

(** Drop the {!find_by_id} memo (after an in-place mutation). *)
val invalidate_id_index : unit -> unit

(** All nodes satisfying [p], in document order. *)
val select : (node -> bool) -> node -> node list

(** {1 Measures} *)

(** Number of nodes in the subtree (virtual nodes count as one). *)
val size : node -> int

val depth : node -> int

(** Estimated serialized size in bytes, the unit of the paper's network
    traffic and "fragment size (MB)" axes. *)
val byte_size : node -> int

(** Estimated bytes for shipping a single answer node (id, tag, text) —
    the per-element cost of the [O(|ans|)] term. *)
val answer_byte_size : node -> int

(** {1 Structural comparison} *)

(** Equality up to node ids (tags, text, attrs, structure, virtual ids). *)
val equal_structure : node -> node -> bool

(** Deep copy with identical ids, fresh mutable spine. *)
val copy : node -> node

val pp : Format.formatter -> node -> unit

type event =
  | Open of string * (string * string) list
  | Text of string
  | Close of string

exception Parse_error of { pos : int; msg : string }

(* A small re-implementation of the scanner rather than a shim over
   Parser: the tree parser's recursion is exactly what streaming must
   avoid. *)
type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error { pos = st.pos; msg })
let eof st = st.pos >= String.length st.src
let peek st = st.src.[st.pos]

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then st.pos <- st.pos + String.length prefix
  else error st (Printf.sprintf "expected %S" prefix)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    st.pos <- st.pos + 1
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name st =
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected a name";
  String.sub st.src start (st.pos - start)

let read_until st stop =
  let stop0 = stop.[0] in
  let limit = String.length st.src in
  let rec find i =
    if i >= limit then error st (Printf.sprintf "unterminated, expected %S" stop)
    else if st.src.[i] = stop0 && looking_at { st with pos = i } stop then i
    else find (i + 1)
  in
  let i = find st.pos in
  let s = String.sub st.src st.pos (i - st.pos) in
  st.pos <- i + String.length stop;
  s

let read_attrs st =
  let rec go acc =
    skip_spaces st;
    if eof st then error st "unterminated start tag"
    else if peek st = '>' || looking_at st "/>" then List.rev acc
    else begin
      let name = read_name st in
      skip_spaces st;
      expect st "=";
      skip_spaces st;
      let quote = peek st in
      if quote <> '"' && quote <> '\'' then error st "expected a quoted value";
      st.pos <- st.pos + 1;
      let value = Parser.decode_entities (read_until st (String.make 1 quote)) in
      go ((name, value) :: acc)
    end
  in
  go []

let fold_string src ~init ~f =
  let st = { src; pos = 0 } in
  let acc = ref init in
  let emit e = acc := f !acc e in
  let depth = ref 0 in
  let seen_root = ref false in
  let stack = ref [] in
  let finished () = !seen_root && !depth = 0 in
  while not (eof st) do
    if looking_at st "<!--" then begin
      expect st "<!--";
      ignore (read_until st "-->")
    end
    else if looking_at st "<![CDATA[" then begin
      expect st "<![CDATA[";
      if !depth = 0 then error st "character data outside the root";
      emit (Text (read_until st "]]>"))
    end
    else if looking_at st "<?" then begin
      expect st "<?";
      ignore (read_until st "?>")
    end
    else if looking_at st "<!" then begin
      (* DOCTYPE: skip to the matching '>'. *)
      let d = ref 0 in
      let stop = ref false in
      while not !stop do
        if eof st then error st "unterminated declaration";
        (match peek st with
        | '[' -> incr d
        | ']' -> decr d
        | '>' when !d = 0 -> stop := true
        | _ -> ());
        st.pos <- st.pos + 1
      done
    end
    else if looking_at st "</" then begin
      expect st "</";
      let tag = read_name st in
      skip_spaces st;
      expect st ">";
      (match !stack with
      | top :: rest when top = tag ->
          stack := rest;
          decr depth;
          emit (Close tag)
      | top :: _ -> error st (Printf.sprintf "<%s> closed by </%s>" top tag)
      | [] -> error st "close tag without open")
    end
    else if peek st = '<' then begin
      if finished () then error st "content after the root element";
      st.pos <- st.pos + 1;
      let tag = read_name st in
      let attrs = read_attrs st in
      skip_spaces st;
      if looking_at st "/>" then begin
        expect st "/>";
        seen_root := true;
        emit (Open (tag, attrs));
        emit (Close tag)
      end
      else begin
        expect st ">";
        seen_root := true;
        stack := tag :: !stack;
        incr depth;
        emit (Open (tag, attrs))
      end
    end
    else begin
      let start = st.pos in
      while (not (eof st)) && peek st <> '<' do
        st.pos <- st.pos + 1
      done;
      let segment =
        String.trim
          (Parser.decode_entities (String.sub st.src start (st.pos - start)))
      in
      if segment <> "" then begin
        if !depth = 0 then error st "character data outside the root";
        emit (Text segment)
      end
    end
  done;
  if !depth <> 0 then error st "unterminated element";
  if not !seen_root then error st "expected a root element";
  !acc

let iter_string src ~f = fold_string src ~init:() ~f:(fun () e -> f e)

let events_of_string src =
  List.rev (fold_string src ~init:[] ~f:(fun acc e -> e :: acc))

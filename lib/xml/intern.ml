(* A mutex-guarded string <-> small-int symbol table.

   One table per fragment store: every tag (and attribute key) that
   appears in any fragment is interned once, so the flat representation
   ({!Flat}) stores int codes and stage passes compare tags with [=] on
   ints.  The lock makes every operation safe to call from any domain —
   OCaml 5 [Hashtbl] is not safe under concurrent read + resize, and
   the serving layer rebuilds flat images from scheduler threads.  The
   hot loops never touch this module: they carry pre-resolved codes. *)

type t = {
  mutable names : string array;  (* code -> string; replaced on grow *)
  mutable n : int;
  codes : (string, int) Hashtbl.t;  (* string -> code *)
  lock : Mutex.t;
}

let create () =
  { names = Array.make 16 ""; n = 0; codes = Hashtbl.create 64; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let intern t s =
  locked t (fun () ->
      match Hashtbl.find_opt t.codes s with
      | Some c -> c
      | None ->
          let c = t.n in
          if c = Array.length t.names then begin
            let grown = Array.make (2 * c) "" in
            Array.blit t.names 0 grown 0 c;
            t.names <- grown
          end;
          t.names.(c) <- s;
          t.n <- c + 1;
          Hashtbl.add t.codes s c;
          c)

let find t s =
  locked t (fun () ->
      match Hashtbl.find_opt t.codes s with Some c -> c | None -> -1)

let name t c =
  locked t (fun () ->
      if c < 0 || c >= t.n then invalid_arg "Intern.name: unknown code";
      t.names.(c))

let size t = locked t (fun () -> t.n)

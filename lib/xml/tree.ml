type kind = Element | Virtual of int

type node = {
  id : int;
  tag : string;
  mutable text : string option;
  attrs : (string * string) list;
  mutable children : node list;
  kind : kind;
}

type doc = { root : node; node_count : int }
type builder = { mutable next : int }

let builder () = { next = 0 }
let builder_from n = { next = n }

let fresh b =
  let id = b.next in
  b.next <- id + 1;
  id

let allocated b = b.next

let elem b ?text ?(attrs = []) tag children =
  { id = fresh b; tag; text; attrs; children; kind = Element }

let leaf b tag text = elem b ~text tag []

let virtual_node b fid =
  { id = fresh b; tag = "@virtual"; text = None; attrs = []; children = [];
    kind = Virtual fid }

let is_virtual n = match n.kind with Virtual _ -> true | Element -> false
let virtual_fragment n = match n.kind with Virtual fid -> Some fid | Element -> None
let text_of n = match n.text with Some s -> s | None -> ""

let float_of n =
  match n.text with
  | None -> None
  | Some s -> ( match float_of_string_opt (String.trim s) with Some f -> Some f | None -> None)

let attr n name = List.assoc_opt name n.attrs

let rec iter f n =
  f n;
  List.iter (iter f) n.children

let rec fold f acc n = List.fold_left (fold f) (f acc n) n.children

let rec iter_post f n =
  List.iter (iter_post f) n.children;
  f n

let size n = fold (fun acc _ -> acc + 1) 0 n

let rec depth n =
  1 + List.fold_left (fun d c -> max d (depth c)) 0 n.children

let doc_of_root root = { root; node_count = size root }

(* [find_by_id] used to be a linear scan; repeated lookups against the
   same root (answer materialization, update routing) now hit a
   one-slot memoized id table.  The slot is keyed by physical root, so
   a different tree rebuilds (one O(n) pass — the cost of the scan it
   replaces); the mutex makes it safe from any domain.  Mutation
   invalidates wholesale via [invalidate_id_index] (see
   Pax_frag.Update). *)
let id_index_lock = Mutex.create ()
let id_index : (node * (int, node) Hashtbl.t) option ref = ref None

let invalidate_id_index () =
  Mutex.lock id_index_lock;
  id_index := None;
  Mutex.unlock id_index_lock

let find_by_id root id =
  Mutex.lock id_index_lock;
  let h =
    match !id_index with
    | Some (r, h) when r == root -> h
    | _ ->
        let h = Hashtbl.create 256 in
        iter (fun n -> Hashtbl.replace h n.id n) root;
        id_index := Some (root, h);
        h
  in
  let r = Hashtbl.find_opt h id in
  Mutex.unlock id_index_lock;
  r

let select p root =
  List.rev (fold (fun acc n -> if p n then n :: acc else acc) [] root)

(* Serialized size: open+close tags, attributes, text.  This is the byte
   count an actual XML serialization would take, used as the "MB" unit of
   the paper's data-size axes. *)
let node_bytes n =
  let tag_len = String.length n.tag in
  let attr_len =
    List.fold_left (fun acc (k, v) -> acc + String.length k + String.length v + 4)
      0 n.attrs
  in
  let text_len = match n.text with Some s -> String.length s | None -> 0 in
  (2 * tag_len) + 5 + attr_len + text_len

let byte_size n = fold (fun acc m -> acc + node_bytes m) 0 n
let answer_byte_size n = 8 + node_bytes n

let rec equal_structure a b =
  a.tag = b.tag && a.text = b.text && a.attrs = b.attrs && a.kind = b.kind
  && List.length a.children = List.length b.children
  && List.for_all2 equal_structure a.children b.children

let rec copy n = { n with children = List.map copy n.children }

let rec pp ppf n =
  match n.kind with
  | Virtual fid -> Format.fprintf ppf "@[<h>⟨F%d⟩@]" fid
  | Element -> (
      match (n.children, n.text) with
      | [], None -> Format.fprintf ppf "<%s/>" n.tag
      | [], Some t -> Format.fprintf ppf "<%s>%s</%s>" n.tag t n.tag
      | cs, t ->
          Format.fprintf ppf "@[<v 2><%s>%s@,%a@]@,</%s>" n.tag
            (match t with Some t -> t | None -> "")
            (Format.pp_print_list pp) cs n.tag)

(** The concurrent serving coordinator (docs/SERVING.md): accepts many
    simultaneous query submissions, admits them through a bounded
    {!Sched}, and runs each on its own {!Pax_dist.Cluster} — over the
    {e shared} multiplexed socket connections of a {!Pax_net.Client}
    (each run gets its own handle and run id) or over per-run
    in-process clusters.

    Every run is independent: answers, visit counts and audit verdicts
    are bit-identical to running the same query alone (asserted by
    [test/test_serve.ml]'s differential).  An optional {!Cache} is
    shared across runs; it only changes {e which} visits happen, never
    answers. *)

type t

type engine = Pax2 | Pax3

val engine_name : engine -> string

type backend =
  | In_process of (unit -> Pax_dist.Cluster.t)
      (** a fresh cluster per admitted run (its fault plan and retry
          policy are the factory's business); runs stay in-process *)
  | Sockets of {
      mux : Pax_net.Client.t;
      ftree : Pax_frag.Fragment.t;
      n_sites : int;
      assign : int -> int;
    }
      (** per-run clusters over shared multiplexed site connections;
          the caller owns the mux (and its shutdown) *)

(** [create backend] — see {!Sched.create} for [max_inflight] /
    [max_queue].  [cache] enables cross-query stage-result caching;
    [sink] observes the serving layer (scheduler + cache; per-run
    clusters run with the no-op sink — the collectors are not built
    for concurrent writers). *)
val create :
  ?max_inflight:int ->
  ?max_queue:int ->
  ?cache:Cache.t ->
  ?sink:Pax_obs.Sink.t ->
  backend ->
  t

val cache : t -> Cache.t option

(** Non-blocking admission: a ticket to {!await}, or a typed
    {!Sched.rejection}.  [engine] defaults to [Pax2], [source] (for
    fair scheduling) to ["default"]. *)
val submit :
  ?engine:engine ->
  ?annotations:bool ->
  ?source:string ->
  t ->
  Pax_xpath.Query.t ->
  (Pax_core.Run_result.t Sched.ticket, Sched.rejection) result

val await : 'a Sched.ticket -> ('a, exn) result

(** Submit and block for the result; re-raises the run's exception. *)
val run :
  ?engine:engine ->
  ?annotations:bool ->
  ?source:string ->
  t ->
  Pax_xpath.Query.t ->
  (Pax_core.Run_result.t, Sched.rejection) result

val queue_depth : t -> int
val inflight : t -> int

(** Drain admitted runs and stop the workers (see {!Sched.close}).
    Does not touch the socket mux — its owner shuts the sites down. *)
val close : t -> unit

(** The concurrent serving coordinator (docs/SERVING.md): accepts many
    simultaneous query submissions, admits them through a bounded
    {!Sched}, and runs each on its own {!Pax_dist.Cluster} — over the
    {e shared} multiplexed socket connections of a {!Pax_net.Client}
    (each run gets its own handle and run id) or in-process.

    The coordinator is {e engine-blind}: it speaks only the
    {!Pax_engine.Pe} seam (docs/ENGINES.md).  Engines are {e mounted}
    by name — any mix of XPath engines ({!Pax_core.Engines}) and the
    graph reachability engine ({!Pax_graph.Reach}) — and queries are
    routed to a mount by its stable name.  Placement is baked into
    each mounted engine, so this layer never sees fragment trees or
    graph partitions.

    Every run is independent: answers, visit counts and audit verdicts
    are bit-identical to running the same query alone (asserted by
    [test/test_serve.ml]'s differential, for both query families).  An
    optional {!Cache} is shared across runs; it only changes {e which}
    visits happen, never answers. *)

module Pe = Pax_engine.Pe

type t

type backend =
  | In_process
      (** each admitted run gets a fresh in-process cluster from its
          engine's [make_cluster] *)
  | Sockets of Pax_net.Client.t
      (** per-run clusters over shared multiplexed site connections;
          the caller owns the mux (and its shutdown) *)

(** A mounted engine.  [tune] runs on each fresh per-run cluster
    before evaluation (fault plans, gates for tests, service delay);
    the coordinator's cache, when present, is installed first.

    [table] attaches a placement table (docs/SHARDING.md): each
    admitted run is stamped with the table's epoch — over sockets the
    run's client handle carries it, so servers fence stale routing —
    and after the run its per-fragment touch counts are harvested into
    the table, feeding the rebalancer and the [pax admin placement]
    dump.  Build the mounted engine over [Ptable.assign table] so new
    runs snapshot the live placement; admission stays rejection-free
    during moves because a run simply snapshots whichever placement is
    current when its cluster is created. *)
type mount

val mount :
  ?tune:(Pax_dist.Cluster.t -> unit) ->
  ?table:Pax_shard.Ptable.t ->
  Pe.packed ->
  mount

type error =
  | Rejected of Sched.rejection  (** admission control said no *)
  | Unknown_engine of string  (** no mount with that name *)
  | Bad_query of string  (** the mount's parser said no; not scheduled *)

val error_message : error -> string

(** [create backend mounts] — see {!Sched.create} for [max_inflight] /
    [max_queue].  The first mount is the default engine.  [cache]
    enables cross-query stage-result caching (consulted only by
    engines that use stage caches); [admit] supplies the admission
    cost predictor (default: a fresh {!Admit.t} over [sink]); [sink]
    observes the serving layer (scheduler + cache + predictor; per-run
    clusters run with the no-op sink — the collectors are not built
    for concurrent writers).
    @raise Invalid_argument on an empty or duplicate-name mount
    list. *)
val create :
  ?max_inflight:int ->
  ?max_queue:int ->
  ?cache:Cache.t ->
  ?admit:Admit.t ->
  ?sink:Pax_obs.Sink.t ->
  backend ->
  mount list ->
  t

val cache : t -> Cache.t option

(** The admission cost predictor, calibrated by every finished run. *)
val admit : t -> Admit.t

(** Mounted engine names, default first. *)
val engines : t -> string list

(** Set a submission source's QoS share (see {!Sched.configure_source}):
    [weight] consecutive dispatches per rotation turn, strict
    [priority] between classes. *)
val configure_source :
  t -> source:string -> ?weight:int -> ?priority:int -> unit -> unit

(** Non-blocking admission of query text: a ticket to {!await}, or a
    typed {!error}.  Malformed queries are rejected here — before
    scheduling — via the mount's parser.  [engine] defaults to the
    first mount's name, [source] (for fair scheduling) to ["default"].
    [deadline] (absolute {!Pax_obs.Clock} time) sheds the query at
    admission — typed [Rejected (Deadline_infeasible _)] — when the
    predicted cost (the paper's comp bound, calibrated by the cost
    ledger) plus the current queue estimate says it cannot finish in
    time. *)
val submit :
  ?engine:string ->
  ?source:string ->
  ?deadline:float ->
  t ->
  string ->
  (Pe.outcome Sched.ticket, error) result

val await : 'a Sched.ticket -> ('a, exn) result

(** Submit and block for the outcome; re-raises the run's exception. *)
val run :
  ?engine:string ->
  ?source:string ->
  ?deadline:float ->
  t ->
  string ->
  (Pe.outcome, error) result

val queue_depth : t -> int
val inflight : t -> int

(** Drain admitted runs and stop the workers (see {!Sched.close}).
    Does not touch the socket mux — its owner shuts the sites down. *)
val close : t -> unit

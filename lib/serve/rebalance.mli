(** The hot-shard rebalancer (docs/SHARDING.md): a greedy
    move-or-split policy over one placement table's per-fragment visit
    counters, executing moves through {!Pax_shard.Migrate}.

    Each step pairs the hottest site (by summed fragment visits) with
    the lightest and moves the hottest cooled-down fragment whose
    transfer lowers the pair's max load by at least [min_gain].  A
    fragment so hot that moving it would merely relocate the hotspot
    is skipped in favor of the site's next-hottest — fragments are
    indivisible (their boundaries are the paper's fixed
    fragmentation), so "split" is approximated by moving the other
    fragments off the site one at a time.  A per-fragment [cooldown]
    stops a fragment from ping-ponging between sites on noisy
    counters.

    One rebalancer per table; run it for the tree table and the graph
    table separately when serving both families. *)

type policy = {
  min_gain : int;
      (** minimum drop in the hot/cold pair's max load for a move to
          be worth it (and the minimum hot/cold imbalance to act at
          all) *)
  cooldown : float;  (** seconds a fragment rests after a move *)
  max_moves : int;  (** per-{!run} cap *)
}

(** [{ min_gain = 1; cooldown = 30.; max_moves = 8 }] *)
val default : policy

type move = { rb_fid : int; rb_from : int; rb_to : int }

type t

(** [sink] counts executed moves as [pax_rebalance_moves_total]. *)
val create : ?policy:policy -> ?sink:Pax_obs.Sink.t -> Pax_shard.Ptable.t -> t

(** The next move the policy would make at time [now], if any.  Pure —
    no migration is executed, no cooldown stamped. *)
val plan_one : t -> now:float -> move option

(** Plan and execute one move ([mux]/[ft] as {!Pax_shard.Migrate.move}).
    [Ok None] = balanced (or everything hot is cooling down). *)
val step :
  ?mux:Pax_net.Client.t ->
  ?ft:Pax_frag.Fragment.t ->
  t ->
  now:float ->
  (Pax_shard.Migrate.outcome option, string) result

(** Step until balanced or [max_moves] reached. *)
val run :
  ?mux:Pax_net.Client.t ->
  ?ft:Pax_frag.Fragment.t ->
  t ->
  now:float ->
  (Pax_shard.Migrate.outcome list, string) result

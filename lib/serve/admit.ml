(* The admission cost predictor (docs/SERVING.md): turns the paper's
   pre-run-predictable computation bound into seconds the scheduler can
   weigh against a deadline.

   The auditor's comp bound |Q|·|T| is known before a query executes —
   that is the paper's point — and the PR 9 cost ledger shows its
   predicted/actual ratio is stable per deployment.  So the predictor
   keeps, per (engine, query): the comp-bound op budget from the last
   audited run, and globally: an EWMA of observed seconds-per-op (the
   deployment's calibration constant).  Predicted cost = ops × sec/op.
   A query never seen before falls back to the EWMA of whole-run
   seconds; a completely cold predictor predicts nothing (cost 0 — the
   deadline is then checked against queue depth alone, which is the
   only honest estimate available). *)

type t = {
  lock : Mutex.t;
  alpha : float;  (* EWMA weight of the newest observation *)
  sink : Pax_obs.Sink.t;
  known : (string * string, float) Hashtbl.t;
      (* (engine, query) -> comp-bound op budget from the last audit *)
  mutable sec_per_op : float;
  mutable mean_seconds : float;
  mutable runs : int;
}

let create ?(alpha = 0.2) ?(sink = Pax_obs.Sink.noop) () =
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Admit.create: need 0 < alpha <= 1";
  {
    lock = Mutex.create ();
    alpha;
    sink;
    known = Hashtbl.create 64;
    sec_per_op = 0.;
    mean_seconds = 0.;
    runs = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let comp_ops (report : Pax_obs.Audit.report) =
  List.find_map
    (fun (b : Pax_obs.Audit.bound) ->
      if b.Pax_obs.Audit.b_name = "comp" then Some b.Pax_obs.Audit.b_limit
      else None)
    report.Pax_obs.Audit.bounds

let ewma ~alpha ~first old x = if first then x else (alpha *. x) +. ((1. -. alpha) *. old)

let observe t ~engine ~query ~(audit : Pax_obs.Audit.report) ~seconds =
  if seconds >= 0. then
    locked t (fun () ->
        let first = t.runs = 0 in
        t.runs <- t.runs + 1;
        t.mean_seconds <- ewma ~alpha:t.alpha ~first t.mean_seconds seconds;
        (match comp_ops audit with
        | Some ops when ops > 0. ->
            Hashtbl.replace t.known (engine, query) ops;
            let spo = seconds /. ops in
            t.sec_per_op <-
              ewma ~alpha:t.alpha ~first:(t.sec_per_op = 0.) t.sec_per_op spo
        | _ -> ());
        Pax_obs.Sink.set t.sink "pax_admit_sec_per_op" t.sec_per_op;
        Pax_obs.Sink.set t.sink "pax_admit_runs" (float_of_int t.runs))

let predict t ~engine ~query =
  locked t (fun () ->
      match Hashtbl.find_opt t.known (engine, query) with
      | Some ops when t.sec_per_op > 0. -> Some (ops *. t.sec_per_op)
      | _ -> if t.runs > 0 then Some t.mean_seconds else None)

let runs t = locked t (fun () -> t.runs)
let sec_per_op t = locked t (fun () -> t.sec_per_op)

(** Admission control and QoS scheduling for the serving coordinator:
    a bounded queue of submitted jobs drained by a fixed pool of worker
    threads, with strict priority between classes, weighted round-robin
    across submission {e sources} within a class (one source per client
    connection, say — a chatty source cannot starve the rest), and
    deadline-based shedding at admission (docs/SERVING.md).

    Contract: {!submit} never blocks — a full queue or an unmeetable
    deadline is a typed {!rejection}, returned immediately with the
    scheduler's queue-inclusive latency estimate.  {!await} never
    hangs — every admitted job runs to completion (worker threads drain
    the queue, and {!close} joins them only after it is drained), and a
    job's exception is deposited in its ticket, not swallowed.

    With an enabled sink: gauge [pax_serve_queue_depth], counters
    [pax_serve_admitted_total], [pax_serve_rejected_total{reason}],
    [pax_sched_shed_total{reason}], [pax_serve_completed_total],
    histogram [pax_serve_latency_seconds] (submit-to-completion), and a
    span per job on the ["scheduler"] track. *)

type t

(** Why a submission was not admitted.  Every variant that sheds work
    carries [est_latency] — the scheduler's queue-inclusive latency
    estimate (seconds) at rejection time, so callers can log what the
    queue looked like when they were turned away. *)
type rejection =
  | Overloaded of { queued : int; max_queue : int; est_latency : float }
      (** the admission queue is full — retry later *)
  | Deadline_infeasible of { deadline : float; est_latency : float }
      (** the estimate says the job cannot finish by [deadline] —
          retrying does not help; relax the deadline or shed load.
          Checked {e before} the queue bound: an infeasible deadline is
          the more actionable verdict when both hold. *)
  | Closed  (** {!close} was called *)

val pp_rejection : Format.formatter -> rejection -> unit

type 'a ticket
(** An admitted job's mailbox. *)

(** [create ()] starts [max_inflight] worker threads (default 4:
    concurrent runs in flight) over a queue of at most [max_queue]
    waiting jobs (default 64). *)
val create :
  ?max_inflight:int -> ?max_queue:int -> ?sink:Pax_obs.Sink.t -> unit -> t

(** Set a source's QoS share.  [weight] (default 1, >= 1) is how many
    consecutive dispatches the source may take before the rotation
    moves on; [priority] (default 0, any int) picks its class — a
    class with pending work starves every lower class.  May be called
    before the source ever submits; a priority change for a source
    with queued work takes effect as the queue drains. *)
val configure_source :
  t -> source:string -> ?weight:int -> ?priority:int -> unit -> unit

(** [submit t ~source f] enqueues [f] under [source]'s FIFO and
    returns its ticket, or a {!rejection} without side effects.
    [label] names the job's span.  [deadline] (absolute
    {!Pax_obs.Clock} time) sheds the job at admission if the latency
    estimate says it cannot finish in time; [cost] (predicted seconds,
    default 0 — see {!Admit}) feeds both that estimate and the queue's
    pending-cost total. *)
val submit :
  t ->
  source:string ->
  ?label:string ->
  ?deadline:float ->
  ?cost:float ->
  (unit -> 'a) ->
  ('a ticket, rejection) result

(** Block until the job finishes; its exception, if it raised, is
    returned (not re-raised). *)
val await : 'a ticket -> ('a, exn) result

val queue_depth : t -> int
val inflight : t -> int

(** The queue-wait term of the admission estimate: summed predicted
    cost of queued jobs over the worker pool (seconds). *)
val est_wait : t -> float

(** Stop admitting, drain the queue, join the workers.  Every ticket
    already admitted completes. *)
val close : t -> unit

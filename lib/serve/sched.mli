(** Admission control for the serving coordinator: a bounded queue of
    submitted jobs drained by a fixed pool of worker threads, with fair
    round-robin rotation across submission {e sources} (one per client
    connection, say) so a chatty source cannot starve the rest
    (docs/SERVING.md).

    Contract: {!submit} never blocks — a full queue is a typed
    {!rejection}, returned immediately.  {!await} never hangs — every
    admitted job runs to completion (worker threads drain the queue,
    and {!close} joins them only after it is drained), and a job's
    exception is deposited in its ticket, not swallowed.

    With an enabled sink: gauge [pax_serve_queue_depth], counters
    [pax_serve_admitted_total], [pax_serve_rejected_total{reason}],
    [pax_serve_completed_total], histogram [pax_serve_latency_seconds]
    (submit-to-completion), and a span per job on the ["scheduler"]
    track. *)

type t

(** Why a submission was not admitted. *)
type rejection =
  | Overloaded of { queued : int; max_queue : int }
      (** the admission queue is full — retry later *)
  | Closed  (** {!close} was called *)

val pp_rejection : Format.formatter -> rejection -> unit

type 'a ticket
(** An admitted job's mailbox. *)

(** [create ()] starts [max_inflight] worker threads (default 4:
    concurrent runs in flight) over a queue of at most [max_queue]
    waiting jobs (default 64). *)
val create :
  ?max_inflight:int -> ?max_queue:int -> ?sink:Pax_obs.Sink.t -> unit -> t

(** [submit t ~source f] enqueues [f] under [source]'s FIFO and
    returns its ticket, or a {!rejection} without side effects.
    [label] names the job's span. *)
val submit :
  t -> source:string -> ?label:string -> (unit -> 'a) ->
  ('a ticket, rejection) result

(** Block until the job finishes; its exception, if it raised, is
    returned (not re-raised). *)
val await : 'a ticket -> ('a, exn) result

val queue_depth : t -> int
val inflight : t -> int

(** Stop admitting, drain the queue, join the workers.  Every ticket
    already admitted completes. *)
val close : t -> unit

(* Cross-query stage-result cache: the serving-layer implementation of
   the Pax_dist.Stage_cache seam.  Entries are keyed by (query key,
   fragment id) and stamped with the fragment's generation counter;
   Fragment.Update.apply bumps the counter, so entries for an edited
   fragment silently stop matching and are swept on the next lookup. *)

module Wire = Pax_wire.Wire
module Fragment = Pax_frag.Fragment

type entry = { e_gen : int; e_fr : Wire.frag_result }

type t = {
  ft : Fragment.t;
  lock : Mutex.t;
  tbl : (string * int, entry) Hashtbl.t;
  mutable sink : Pax_obs.Sink.t;
}

let create ?(sink = Pax_obs.Sink.noop) ft =
  { ft; lock = Mutex.create (); tbl = Hashtbl.create 256; sink }

let set_sink t s = t.sink <- s

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let gauge t =
  Pax_obs.Sink.set t.sink "pax_cache_entries"
    (float_of_int (Hashtbl.length t.tbl))

let lookup t ~qkey ~fid =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl (qkey, fid) with
      | Some e when e.e_gen = Fragment.generation t.ft fid ->
          Pax_obs.Sink.count t.sink "pax_cache_hits_total";
          Some e.e_fr
      | Some _ ->
          (* Stored under an older generation: the fragment was edited
             since.  Sweep the entry and miss. *)
          Hashtbl.remove t.tbl (qkey, fid);
          Pax_obs.Sink.count t.sink "pax_cache_invalidated_total";
          Pax_obs.Sink.count t.sink "pax_cache_misses_total";
          gauge t;
          None
      | None ->
          Pax_obs.Sink.count t.sink "pax_cache_misses_total";
          None)

let store t ~qkey ~fid (fr : Wire.frag_result) =
  locked t (fun () ->
      Hashtbl.replace t.tbl (qkey, fid)
        { e_gen = Fragment.generation t.ft fid; e_fr = fr };
      gauge t)

let size t = locked t (fun () -> Hashtbl.length t.tbl)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      gauge t)

let to_stage_cache t =
  {
    Pax_dist.Stage_cache.describe = "serve-cache";
    lookup = (fun ~qkey ~fid -> lookup t ~qkey ~fid);
    store = (fun ~qkey ~fid fr -> store t ~qkey ~fid fr);
  }

(** The cache-coherence feed (docs/SERVING.md): keeps N coordinators'
    stage caches coherent through the site servers' generation-vector
    relay.

    Each coordinator {!attach}es its socket mux to its local fragment
    tree: every [Gen_event] the servers push is max-merged into the
    tree's generation counters, and the {!Cache}'s per-lookup
    generation check then treats the affected entries as stale — no
    cache surgery, staleness stays exact.  A coordinator that mutates
    a fragment ({!Pax_frag.Update.apply}, a migration) calls
    {!publish}; the servers acknowledge, merge, and fan the event out
    to every live connection.

    With an enabled sink: counters [pax_feed_events_total],
    [pax_feed_invalidations_total], [pax_feed_publishes_total]. *)

type t

(** Hook the mux's [Gen_event] stream (replacing any previous hook)
    and merge every delivered tree-fragment generation into [ft].  The
    hook runs on the mux's receiver threads. *)
val attach :
  ?sink:Pax_obs.Sink.t -> mux:Pax_net.Client.t -> Pax_frag.Fragment.t -> t

(** Announce the listed fragments' current local generations to every
    site (best-effort per site).  Call after {!Pax_frag.Update.apply}
    (with the touched fid) or after a migration. *)
val publish : t -> fids:int list -> unit

(** {!publish} every fragment whose local generation is nonzero —
    what a coordinator calls after a bulk change (rebalance). *)
val publish_all : t -> unit

(** Pull and merge every site's generation vector — startup sync for
    a coordinator joining after updates have happened. *)
val sync : t -> unit

(** Push fragment [fid]'s current local image to [site] at placement
    [epoch] (the migration install, reused): how an updating
    coordinator propagates post-[Update.apply] {e data} (not just
    invalidation) to the server that evaluates stages on it. *)
val push_fragment :
  t -> site:int -> fid:int -> epoch:int -> (string, string) result

(* The serving coordinator: glue between the admission scheduler, the
   cross-query cache and the per-run engine machinery, speaking only
   the Pe seam.  Each admitted query gets its own Cluster (and, over
   sockets, its own Client handle on the shared multiplexed
   connections), so concurrent runs share nothing but the cache and
   the sockets — both designed for concurrent use. *)

module Cluster = Pax_dist.Cluster
module Pe = Pax_engine.Pe

type backend = In_process | Sockets of Pax_net.Client.t

type mount = {
  m_pe : Pe.packed;
  m_tune : Cluster.t -> unit;
  (* Elastic sharding (docs/SHARDING.md): when a placement table backs
     this mount, every admitted run is stamped with the table's epoch
     (so servers can fence stale routing) and the run's per-fragment
     touch counts are harvested back into the table (the rebalancer's
     hotness signal).  The mount's engine should be built over
     [Ptable.assign table] so new runs snapshot the live placement. *)
  m_table : Pax_shard.Ptable.t option;
}

let mount ?(tune = ignore) ?table pe = { m_pe = pe; m_tune = tune; m_table = table }

type error =
  | Rejected of Sched.rejection
  | Unknown_engine of string
  | Bad_query of string

let error_message = function
  | Rejected r -> Format.asprintf "%a" Sched.pp_rejection r
  | Unknown_engine name -> Printf.sprintf "unknown engine %S" name
  | Bad_query msg -> msg

type t = {
  sched : Sched.t;
  cache : Cache.t option;
  admit : Admit.t;
  backend : backend;
  mounts : (string * mount) list;  (* first = default *)
  sink : Pax_obs.Sink.t;
}

let create ?max_inflight ?max_queue ?cache ?admit
    ?(sink = Pax_obs.Sink.noop) backend mounts =
  if mounts = [] then invalid_arg "Coordinator.create: no engines mounted";
  let named = List.map (fun m -> (Pe.name m.m_pe, m)) mounts in
  let names = List.map fst named in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Coordinator.create: duplicate engine names";
  {
    sched = Sched.create ?max_inflight ?max_queue ~sink ();
    cache;
    admit =
      (match admit with Some a -> a | None -> Admit.create ~sink ());
    backend;
    mounts = named;
    sink;
  }

let cache t = t.cache
let admit t = t.admit
let engines t = List.map fst t.mounts
let configure_source t ~source = Sched.configure_source t.sched ~source

(* One run, on the calling (worker) thread.  Per-run clusters carry the
   no-op sink: the span/metrics collectors are not built for concurrent
   writers, and the serving-level sink already observes what the layer
   promises (queue depth, latency, cache traffic). *)
let run_one t m text =
  let admitted_epoch =
    Option.map Pax_shard.Ptable.epoch m.m_table
  in
  let transport, cleanup =
    match t.backend with
    | In_process -> (None, Fun.id)
    | Sockets mux ->
        let handle = Pax_net.Client.handle mux in
        Option.iter (Pax_net.Client.set_epoch handle) admitted_epoch;
        let tr = Pax_net.Client.handle_transport handle in
        (Some tr, fun () -> tr.Pax_dist.Transport.close ())
  in
  let run_cluster = ref None in
  let tune cl =
    run_cluster := Some cl;
    Option.iter (Cluster.set_epoch cl) admitted_epoch;
    Option.iter
      (fun c -> Cluster.set_stage_cache cl (Cache.to_stage_cache c))
      t.cache;
    m.m_tune cl
  in
  Fun.protect ~finally:cleanup (fun () ->
      let t0 = Pax_obs.Clock.now () in
      let r = Pe.run_text m.m_pe ?transport ~tune text in
      let seconds = Pax_obs.Clock.now () -. t0 in
      (* Harvest the run's per-fragment touches into the placement
         table — the hotness counters the rebalancer and the
         [pax admin placement] dump read. *)
      (match (m.m_table, !run_cluster) with
      | Some table, Some cl ->
          Pax_shard.Ptable.record_touches table (Cluster.frag_touches cl)
      | _ -> ());
      (* Cost ledger: every admitted run records the auditor's
         predicted bounds next to its actuals (the queue-inclusive
         latency lands in [pax_serve_latency_seconds] from the
         scheduler). *)
      Pax_obs.Audit.ledger t.sink ~engine:r.Pe.engine r.Pe.audit;
      (* Calibrate the admission predictor: the audited comp-bound op
         budget against measured execution seconds (queue wait
         excluded — the scheduler estimates that term itself). *)
      Admit.observe t.admit ~engine:r.Pe.engine ~query:text
        ~audit:r.Pe.audit ~seconds;
      r)

let submit ?engine ?(source = "default") ?deadline t text =
  let m =
    match engine with
    | None -> Ok (snd (List.hd t.mounts))
    | Some name -> (
        match List.assoc_opt name t.mounts with
        | Some m -> Ok m
        | None -> Error (Unknown_engine name))
  in
  match m with
  | Error e -> Error e
  | Ok m -> (
      (* Parse-check before burning a scheduler slot: a malformed query
         must not count against admission or reach a worker. *)
      match Pe.validate m.m_pe text with
      | Error msg -> Error (Bad_query msg)
      | Ok () -> (
          Pax_obs.Sink.count t.sink
            ~labels:[ ("engine", Pe.name m.m_pe) ]
            "pax_serve_queries_total";
          (* The deadline check runs against predicted cost: the
             paper's comp bound, calibrated by the cost ledger.  A
             cold predictor predicts 0 and the deadline is checked
             against queue depth alone. *)
          let cost =
            Option.value ~default:0.
              (Admit.predict t.admit ~engine:(Pe.name m.m_pe) ~query:text)
          in
          match
            Sched.submit t.sched ~source ~label:text ?deadline ~cost
              (fun () -> run_one t m text)
          with
          | Ok tk -> Ok tk
          | Error r -> Error (Rejected r)))

let await = Sched.await

(* Submit + await: only useful from a thread that may block. *)
let run ?engine ?source ?deadline t text =
  match submit ?engine ?source ?deadline t text with
  | Error e -> Error e
  | Ok tk -> ( match await tk with Ok r -> Ok r | Error e -> raise e)

let queue_depth t = Sched.queue_depth t.sched
let inflight t = Sched.inflight t.sched
let close t = Sched.close t.sched

(* The serving coordinator: glue between the admission scheduler, the
   cross-query cache and the per-run engine machinery.  Each admitted
   query gets its own Cluster (and, over sockets, its own Client
   handle on the shared multiplexed connections), so concurrent runs
   share nothing but the cache and the sockets — both designed for
   concurrent use. *)

module Cluster = Pax_dist.Cluster
module Query = Pax_xpath.Query

type engine = Pax2 | Pax3

let engine_name = function Pax2 -> "pax2" | Pax3 -> "pax3"

type backend =
  | In_process of (unit -> Cluster.t)
  | Sockets of {
      mux : Pax_net.Client.t;
      ftree : Pax_frag.Fragment.t;
      n_sites : int;
      assign : int -> int;
    }

type t = {
  sched : Sched.t;
  cache : Cache.t option;
  backend : backend;
  sink : Pax_obs.Sink.t;
}

let create ?max_inflight ?max_queue ?cache ?(sink = Pax_obs.Sink.noop) backend
    =
  { sched = Sched.create ?max_inflight ?max_queue ~sink (); cache; backend;
    sink }

let cache t = t.cache

(* One run, on the calling (worker) thread.  Per-run clusters carry the
   no-op sink: the span/metrics collectors are not built for concurrent
   writers, and the serving-level sink already observes what the layer
   promises (queue depth, latency, cache traffic). *)
let run_one t ~engine ~annotations (q : Query.t) =
  let cl, cleanup =
    match t.backend with
    | In_process mk -> (mk (), Fun.id)
    | Sockets { mux; ftree; n_sites; assign } ->
        let handle = Pax_net.Client.handle mux in
        let tr = Pax_net.Client.handle_transport handle in
        let cl = Cluster.create ~transport:tr ~ftree ~n_sites ~assign () in
        (cl, fun () -> tr.Pax_dist.Transport.close ())
  in
  Option.iter
    (fun c -> Cluster.set_stage_cache cl (Cache.to_stage_cache c))
    t.cache;
  Fun.protect ~finally:cleanup (fun () ->
      match engine with
      | Pax2 -> Pax_core.Pax2.run ~annotations cl q
      | Pax3 -> Pax_core.Pax3.run ~annotations cl q)

let submit ?(engine = Pax2) ?(annotations = false) ?(source = "default") t
    (q : Query.t) =
  Pax_obs.Sink.count t.sink
    ~labels:[ ("engine", engine_name engine) ]
    "pax_serve_queries_total";
  Sched.submit t.sched ~source ~label:q.Query.source (fun () ->
      run_one t ~engine ~annotations q)

let await = Sched.await

(* Submit + await: only useful from a thread that may block. *)
let run ?engine ?annotations ?source t q =
  match submit ?engine ?annotations ?source t q with
  | Error r -> Error r
  | Ok tk -> (
      match await tk with Ok r -> Ok r | Error e -> raise e)

let queue_depth t = Sched.queue_depth t.sched
let inflight t = Sched.inflight t.sched
let close t = Sched.close t.sched

(* Admission control and QoS scheduling for the serving coordinator: a
   bounded queue of submitted jobs, a fixed pool of worker threads (max
   in-flight runs), weighted-fair rotation over submission sources
   within priority classes, and deadline-based shedding driven by the
   paper's predictable per-query cost (docs/SERVING.md).

   Dispatch order: strict priority between classes (a higher class
   with pending work always dispatches first), weighted round-robin
   within a class (a source with weight [w] gets up to [w] consecutive
   dispatches before the rotation moves on), FIFO within a source.
   Every source defaults to weight 1 / priority 0, which reproduces
   the plain fair round-robin this scheduler started as. *)

type rejection =
  | Overloaded of { queued : int; max_queue : int; est_latency : float }
  | Deadline_infeasible of { deadline : float; est_latency : float }
  | Closed

let pp_rejection ppf = function
  | Overloaded { queued; max_queue; est_latency } ->
      Format.fprintf ppf "overloaded (%d queued, max %d, est latency %.0fms)"
        queued max_queue (1000. *. est_latency)
  | Deadline_infeasible { deadline = _; est_latency } ->
      Format.fprintf ppf "deadline infeasible (est latency %.0fms)"
        (1000. *. est_latency)
  | Closed -> Format.fprintf ppf "closed"

type 'a state = Waiting | Finished of ('a, exn) result

type 'a ticket = {
  tk_lock : Mutex.t;
  tk_cond : Condition.t;
  mutable tk_state : 'a state;
}

(* j_run never raises: it catches and deposits into its ticket. *)
type job = {
  j_run : unit -> unit;
  j_label : string;
  j_submitted : float;
  j_cost : float;  (* predicted seconds; 0 when the predictor is cold *)
}

(* A submission source: its FIFO plus its QoS configuration.  The
   record persists across empty periods so [configure_source] settings
   survive bursts. *)
type src = {
  s_name : string;
  s_q : job Queue.t;
  mutable s_weight : int;
  mutable s_priority : int;
  mutable s_listed : bool;
      (* somewhere in a level's rotation or current slot; sources are
         listed iff their FIFO is nonempty *)
}

(* One priority class: its rotation of listed sources plus the source
   currently holding the dispatch slot with its remaining credit. *)
type level = {
  l_prio : int;
  l_rr : src Queue.t;
  mutable l_cur : (src * int) option;
}

type t = {
  max_inflight : int;
  max_queue : int;
  lock : Mutex.t;
  cond : Condition.t;
  sources : (string, src) Hashtbl.t;
  levels : (int, level) Hashtbl.t;
  mutable queued : int;
  mutable pending_cost : float;
      (* summed predicted cost of queued jobs — the queue-depth term of
         the admission latency estimate *)
  mutable inflight : int;
  mutable closed : bool;
  mutable workers : Thread.t list;
  sink : Pax_obs.Sink.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let depth_gauge t =
  Pax_obs.Sink.set t.sink "pax_serve_queue_depth" (float_of_int t.queued)

let src_for_locked t source =
  match Hashtbl.find_opt t.sources source with
  | Some s -> s
  | None ->
      let s =
        {
          s_name = source;
          s_q = Queue.create ();
          s_weight = 1;
          s_priority = 0;
          s_listed = false;
        }
      in
      Hashtbl.replace t.sources source s;
      s

let level_for_locked t prio =
  match Hashtbl.find_opt t.levels prio with
  | Some lvl -> lvl
  | None ->
      let lvl = { l_prio = prio; l_rr = Queue.create (); l_cur = None } in
      Hashtbl.replace t.levels prio lvl;
      lvl

(* List a source (nonempty FIFO, not yet listed) into its class's
   rotation. *)
let list_src_locked t s =
  s.s_listed <- true;
  Queue.push s (level_for_locked t s.s_priority).l_rr

let took_locked t job =
  t.queued <- t.queued - 1;
  t.pending_cost <- Float.max 0. (t.pending_cost -. job.j_cost);
  depth_gauge t;
  job

(* Pop the next job: strict priority between classes, weighted
   round-robin within the chosen class, FIFO within the source.
   Caller holds the lock and has checked queued > 0. *)
let rec take_locked t =
  let best = ref None in
  Hashtbl.iter
    (fun prio lvl ->
      if lvl.l_cur <> None || not (Queue.is_empty lvl.l_rr) then
        match !best with
        | Some (p, _) when p >= prio -> ()
        | _ -> best := Some (prio, lvl))
    t.levels;
  match !best with
  | None -> assert false (* queued > 0 implies a level has work *)
  | Some (_, lvl) -> (
      match lvl.l_cur with
      | Some (s, credit) ->
          (* The slot holder spends one credit per dispatch; it yields
             the slot when drained or out of credit. *)
          let job = Queue.pop s.s_q in
          if Queue.is_empty s.s_q then begin
            s.s_listed <- false;
            lvl.l_cur <- None
          end
          else if credit <= 1 then begin
            lvl.l_cur <- None;
            Queue.push s lvl.l_rr
          end
          else lvl.l_cur <- Some (s, credit - 1);
          took_locked t job
      | None ->
          let s = Queue.pop lvl.l_rr in
          if s.s_priority <> lvl.l_prio then begin
            (* The source was reconfigured while listed here; migrate
               it to its current class and re-pick. *)
            Queue.push s (level_for_locked t s.s_priority).l_rr;
            take_locked t
          end
          else begin
            let job = Queue.pop s.s_q in
            if Queue.is_empty s.s_q then s.s_listed <- false
            else if s.s_weight > 1 then lvl.l_cur <- Some (s, s.s_weight - 1)
            else Queue.push s lvl.l_rr;
            took_locked t job
          end)

let worker t =
  let rec loop () =
    let job =
      locked t (fun () ->
          while (not t.closed) && t.queued = 0 do
            Condition.wait t.cond t.lock
          done;
          if t.queued = 0 then None (* closed and drained *)
          else begin
            t.inflight <- t.inflight + 1;
            Some (take_locked t)
          end)
    in
    match job with
    | None -> ()
    | Some job ->
        Pax_obs.Sink.span t.sink ~track:"scheduler" ~cat:"job" job.j_label
          job.j_run;
        (* End-to-end latency including queue wait (submit → finish),
           through the injectable clock so the cost ledger is
           deterministic under [Clock.Fake]. *)
        Pax_obs.Sink.observe t.sink "pax_serve_latency_seconds"
          (Pax_obs.Clock.now () -. job.j_submitted);
        Pax_obs.Sink.count t.sink "pax_serve_completed_total";
        locked t (fun () ->
            t.inflight <- t.inflight - 1;
            Condition.broadcast t.cond);
        loop ()
  in
  loop ()

let create ?(max_inflight = 4) ?(max_queue = 64) ?(sink = Pax_obs.Sink.noop) ()
    =
  if max_inflight < 1 then invalid_arg "Sched.create: need max_inflight >= 1";
  if max_queue < 1 then invalid_arg "Sched.create: need max_queue >= 1";
  let t =
    {
      max_inflight;
      max_queue;
      lock = Mutex.create ();
      cond = Condition.create ();
      sources = Hashtbl.create 16;
      levels = Hashtbl.create 4;
      queued = 0;
      pending_cost = 0.;
      inflight = 0;
      closed = false;
      workers = [];
      sink;
    }
  in
  t.workers <- List.init max_inflight (fun _ -> Thread.create worker t);
  t

let configure_source t ~source ?weight ?priority () =
  (match weight with
  | Some w when w < 1 -> invalid_arg "Sched.configure_source: need weight >= 1"
  | _ -> ());
  locked t (fun () ->
      let s = src_for_locked t source in
      Option.iter (fun w -> s.s_weight <- w) weight;
      (* A priority change takes effect as the queue drains: a source
         listed under its old class migrates lazily at its next
         dispatch turn. *)
      Option.iter (fun p -> s.s_priority <- p) priority)

let finish tk result =
  Mutex.lock tk.tk_lock;
  tk.tk_state <- Finished result;
  Condition.broadcast tk.tk_cond;
  Mutex.unlock tk.tk_lock

let shed t ~reason rejection =
  Pax_obs.Sink.count t.sink ~labels:[ ("reason", reason) ]
    "pax_serve_rejected_total";
  Pax_obs.Sink.count t.sink ~labels:[ ("reason", reason) ]
    "pax_sched_shed_total";
  Error rejection

let submit t ~source ?(label = "query") ?deadline ?(cost = 0.) f =
  let tk =
    { tk_lock = Mutex.create (); tk_cond = Condition.create ();
      tk_state = Waiting }
  in
  let now = Pax_obs.Clock.now () in
  let job =
    {
      j_run =
        (fun () ->
          finish tk (match f () with v -> Ok v | exception e -> Error e));
      j_label = label;
      j_submitted = now;
      j_cost = cost;
    }
  in
  locked t (fun () ->
      (* The admission latency estimate: queued predicted work spread
         over the worker pool, plus this job's own predicted cost.  The
         paper makes the cost term available *before* execution — the
         auditor's |Q|·|T| bound, calibrated by the cost ledger
         (docs/SERVING.md). *)
      let est_latency =
        (t.pending_cost /. float_of_int t.max_inflight) +. cost
      in
      if t.closed then shed t ~reason:"closed" Closed
      else
        match deadline with
        (* Infeasibility wins over queue-full: `Overloaded` invites a
           retry, but a deadline this estimate cannot meet stays
           unmeetable however often the client resubmits. *)
        | Some d when now +. est_latency > d ->
            shed t ~reason:"deadline"
              (Deadline_infeasible { deadline = d; est_latency })
        | _ ->
            if t.queued >= t.max_queue then
              shed t ~reason:"overloaded"
                (Overloaded
                   { queued = t.queued; max_queue = t.max_queue; est_latency })
            else begin
              let s = src_for_locked t source in
              if not s.s_listed then list_src_locked t s;
              Queue.push job s.s_q;
              t.queued <- t.queued + 1;
              t.pending_cost <- t.pending_cost +. cost;
              depth_gauge t;
              Pax_obs.Sink.count t.sink "pax_serve_admitted_total";
              Condition.signal t.cond;
              Ok tk
            end)

let await tk =
  Mutex.lock tk.tk_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock tk.tk_lock)
    (fun () ->
      let rec wait () =
        match tk.tk_state with
        | Waiting ->
            Condition.wait tk.tk_cond tk.tk_lock;
            wait ()
        | Finished r -> r
      in
      wait ())

let queue_depth t = locked t (fun () -> t.queued)
let inflight t = locked t (fun () -> t.inflight)
let est_wait t = locked t (fun () -> t.pending_cost /. float_of_int t.max_inflight)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.cond);
  List.iter Thread.join t.workers

(* Admission control and fair scheduling for the serving coordinator:
   a bounded queue of submitted jobs, a fixed pool of worker threads
   (max in-flight runs), and round-robin rotation over submission
   sources so one chatty client cannot starve the rest. *)

type rejection =
  | Overloaded of { queued : int; max_queue : int }
  | Closed

let pp_rejection ppf = function
  | Overloaded { queued; max_queue } ->
      Format.fprintf ppf "overloaded (%d queued, max %d)" queued max_queue
  | Closed -> Format.fprintf ppf "closed"

type 'a state = Waiting | Finished of ('a, exn) result

type 'a ticket = {
  tk_lock : Mutex.t;
  tk_cond : Condition.t;
  mutable tk_state : 'a state;
}

(* j_run never raises: it catches and deposits into its ticket. *)
type job = { j_run : unit -> unit; j_label : string; j_submitted : float }

type t = {
  max_inflight : int;
  max_queue : int;
  lock : Mutex.t;
  cond : Condition.t;
  queues : (string, job Queue.t) Hashtbl.t;
  rr : string Queue.t;
      (* rotation of sources with pending jobs, each exactly once;
         a source popped for dispatch re-enters at the back, so
         dispatch order round-robins across sources while staying FIFO
         within one *)
  mutable queued : int;
  mutable inflight : int;
  mutable closed : bool;
  mutable workers : Thread.t list;
  sink : Pax_obs.Sink.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let depth_gauge t =
  Pax_obs.Sink.set t.sink "pax_serve_queue_depth" (float_of_int t.queued)

(* Pop the next job fairly: head of the source rotation, head of that
   source's FIFO.  Caller holds the lock and has checked queued > 0. *)
let take_locked t =
  let src = Queue.pop t.rr in
  let q = Hashtbl.find t.queues src in
  let job = Queue.pop q in
  if Queue.is_empty q then Hashtbl.remove t.queues src
  else Queue.push src t.rr;
  t.queued <- t.queued - 1;
  depth_gauge t;
  job

let worker t =
  let rec loop () =
    let job =
      locked t (fun () ->
          while (not t.closed) && t.queued = 0 do
            Condition.wait t.cond t.lock
          done;
          if t.queued = 0 then None (* closed and drained *)
          else begin
            t.inflight <- t.inflight + 1;
            Some (take_locked t)
          end)
    in
    match job with
    | None -> ()
    | Some job ->
        Pax_obs.Sink.span t.sink ~track:"scheduler" ~cat:"job" job.j_label
          job.j_run;
        (* End-to-end latency including queue wait (submit → finish),
           through the injectable clock so the cost ledger is
           deterministic under [Clock.Fake]. *)
        Pax_obs.Sink.observe t.sink "pax_serve_latency_seconds"
          (Pax_obs.Clock.now () -. job.j_submitted);
        Pax_obs.Sink.count t.sink "pax_serve_completed_total";
        locked t (fun () ->
            t.inflight <- t.inflight - 1;
            Condition.broadcast t.cond);
        loop ()
  in
  loop ()

let create ?(max_inflight = 4) ?(max_queue = 64) ?(sink = Pax_obs.Sink.noop) ()
    =
  if max_inflight < 1 then invalid_arg "Sched.create: need max_inflight >= 1";
  if max_queue < 1 then invalid_arg "Sched.create: need max_queue >= 1";
  let t =
    {
      max_inflight;
      max_queue;
      lock = Mutex.create ();
      cond = Condition.create ();
      queues = Hashtbl.create 16;
      rr = Queue.create ();
      queued = 0;
      inflight = 0;
      closed = false;
      workers = [];
      sink;
    }
  in
  t.workers <- List.init max_inflight (fun _ -> Thread.create worker t);
  t

let finish tk result =
  Mutex.lock tk.tk_lock;
  tk.tk_state <- Finished result;
  Condition.broadcast tk.tk_cond;
  Mutex.unlock tk.tk_lock

let submit t ~source ?(label = "query") f =
  let tk =
    { tk_lock = Mutex.create (); tk_cond = Condition.create ();
      tk_state = Waiting }
  in
  let job =
    {
      j_run =
        (fun () ->
          finish tk (match f () with v -> Ok v | exception e -> Error e));
      j_label = label;
      j_submitted = Pax_obs.Clock.now ();
    }
  in
  locked t (fun () ->
      if t.closed then begin
        Pax_obs.Sink.count t.sink ~labels:[ ("reason", "closed") ]
          "pax_serve_rejected_total";
        Error Closed
      end
      else if t.queued >= t.max_queue then begin
        Pax_obs.Sink.count t.sink ~labels:[ ("reason", "overloaded") ]
          "pax_serve_rejected_total";
        Error (Overloaded { queued = t.queued; max_queue = t.max_queue })
      end
      else begin
        let q =
          match Hashtbl.find_opt t.queues source with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.replace t.queues source q;
              Queue.push source t.rr;
              q
        in
        Queue.push job q;
        t.queued <- t.queued + 1;
        depth_gauge t;
        Pax_obs.Sink.count t.sink "pax_serve_admitted_total";
        Condition.signal t.cond;
        Ok tk
      end)

let await tk =
  Mutex.lock tk.tk_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock tk.tk_lock)
    (fun () ->
      let rec wait () =
        match tk.tk_state with
        | Waiting ->
            Condition.wait tk.tk_cond tk.tk_lock;
            wait ()
        | Finished r -> r
      in
      wait ())

let queue_depth t = locked t (fun () -> t.queued)
let inflight t = locked t (fun () -> t.inflight)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.cond);
  List.iter Thread.join t.workers

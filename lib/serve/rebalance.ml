module Ptable = Pax_shard.Ptable
module Migrate = Pax_shard.Migrate

type policy = {
  min_gain : int;
  cooldown : float;
  max_moves : int;
}

let default = { min_gain = 1; cooldown = 30.; max_moves = 8 }

type move = { rb_fid : int; rb_from : int; rb_to : int }

type t = {
  table : Ptable.t;
  policy : policy;
  last_move : float array;  (* per-fid time of last move; -inf = never *)
  sink : Pax_obs.Sink.t;
}

let create ?(policy = default) ?(sink = Pax_obs.Sink.noop) table =
  {
    table;
    policy;
    last_move = Array.make (Ptable.n_frags table) neg_infinity;
    sink;
  }

let argmax a =
  let best = ref 0 in
  Array.iteri (fun i v -> if v > a.(!best) then best := i) a;
  !best

let argmin a =
  let best = ref 0 in
  Array.iteri (fun i v -> if v < a.(!best) then best := i) a;
  !best

(* Greedy move-or-split: take the hottest site and the lightest, and
   move the hottest cooled-down fragment whose transfer actually
   lowers the pair's max load.  When the hottest fragment alone
   carries so much load that moving it would just relocate the hotspot
   (the "this shard needs a split" case — fragments are indivisible
   here, their boundaries are the paper's fixed fragmentation), fall
   through to the next-hottest: moving the site's {e other} fragments
   off is the split, approximated one move at a time. *)
let plan_one t ~now =
  let loads = Ptable.site_loads t.table in
  if Array.length loads < 2 then None
  else
    let hot = argmax loads and cold = argmin loads in
    if loads.(hot) - loads.(cold) <= t.policy.min_gain then None
    else
      let candidates =
        List.filter
          (fun (fid, site, _, visits) ->
            site = hot && visits > 0
            && now -. t.last_move.(fid) >= t.policy.cooldown)
          (Ptable.to_list t.table)
      in
      let by_heat =
        List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a) candidates
      in
      (* A move helps iff the pair's max load drops by at least
         [min_gain]: the hot site sheds [visits], and the recipient
         must stay below the old hot load by that margin. *)
      List.find_map
        (fun (fid, _, _, visits) ->
          if
            visits >= t.policy.min_gain
            && loads.(cold) + visits <= loads.(hot) - t.policy.min_gain
          then Some { rb_fid = fid; rb_from = hot; rb_to = cold }
          else None)
        by_heat

let step ?mux ?ft t ~now =
  match plan_one t ~now with
  | None -> Ok None
  | Some mv -> (
      match
        Migrate.move ?mux ?ft ~table:t.table ~fid:mv.rb_fid ~dst:mv.rb_to ()
      with
      | Error e -> Error e
      | Ok outcome ->
          t.last_move.(mv.rb_fid) <- now;
          Pax_obs.Sink.count t.sink "pax_rebalance_moves_total";
          Ok (Some outcome))

let run ?mux ?ft t ~now =
  let rec loop acc n =
    if n >= t.policy.max_moves then Ok (List.rev acc)
    else
      match step ?mux ?ft t ~now with
      | Error e -> Error e
      | Ok None -> Ok (List.rev acc)
      | Ok (Some outcome) -> loop (outcome :: acc) (n + 1)
  in
  loop [] 0

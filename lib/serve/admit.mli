(** The admission cost predictor (docs/SERVING.md): turns the paper's
    {e pre-run-predictable} computation bound — the auditor's [|Q|·|T|]
    op budget, which is known before a query executes — into the
    seconds estimate the {!Sched} weighs against a deadline.

    Per (engine, query) it remembers the comp-bound op budget from the
    last audited run; globally it keeps an EWMA of observed
    seconds-per-op (the deployment's calibration constant, the same
    predicted/actual ratio the cost ledger charts).  Prediction is
    [ops × sec/op]; an unseen query falls back to the EWMA of whole-run
    seconds; a cold predictor returns [None] (the deadline is then
    checked against queue depth alone).

    Thread-safe: [observe] is called from scheduler workers, [predict]
    from submitting threads.  With an enabled sink: gauges
    [pax_admit_sec_per_op] and [pax_admit_runs]. *)

type t

(** [alpha] (default 0.2) weights the newest observation in both
    EWMAs. *)
val create : ?alpha:float -> ?sink:Pax_obs.Sink.t -> unit -> t

(** Feed one finished run: its audit report (the comp bound's limit is
    the op budget) and its measured execution seconds (queue wait
    excluded — the scheduler adds the queue term itself). *)
val observe :
  t ->
  engine:string ->
  query:string ->
  audit:Pax_obs.Audit.report ->
  seconds:float ->
  unit

(** Predicted execution seconds for this query, or [None] when the
    predictor has seen no runs at all. *)
val predict : t -> engine:string -> query:string -> float option

val runs : t -> int
val sec_per_op : t -> float

(* The coherence feed (docs/SERVING.md): the glue between a
   coordinator's local fragment tree and the generation-vector relay
   the site servers run.

   Receiving side: [attach] hooks the mux's [Gen_event] stream and
   max-merges every delivered (fid, generation) pair into the local
   Fragment.t — the stage cache checks generations on every lookup, so
   the merge *is* the invalidation.  Publishing side: after a local
   Update.apply or migration, [publish] announces the touched
   fragments' generations to every site; each site acknowledges,
   max-merges, and fans a [Gen_event] back out to every live
   connection — including other coordinators', which is the point. *)

module Wire = Pax_wire.Wire
module Client = Pax_net.Client
module Fragment = Pax_frag.Fragment

type t = {
  mux : Client.t;
  ft : Fragment.t;
  lock : Mutex.t;
      (* receiver threads of different sites may deliver events
         concurrently; the fragment tree's generation array is plain
         mutable state, so the read-modify-write max is serialized *)
  sink : Pax_obs.Sink.t;
}

let merge t gens =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let invalidated = ref 0 in
      List.iter
        (fun (fid, gen) ->
          if fid >= 0 && fid < Fragment.n_fragments t.ft then begin
            if gen > Fragment.generation t.ft fid then incr invalidated;
            Fragment.merge_generation t.ft fid gen
          end)
        gens;
      !invalidated)

let attach ?(sink = Pax_obs.Sink.noop) ~mux ft =
  let t = { mux; ft; lock = Mutex.create (); sink } in
  Client.on_gen_event mux (fun kind gens ->
      match kind with
      | Wire.Tree_frag ->
          Pax_obs.Sink.count t.sink "pax_feed_events_total";
          let invalidated = merge t gens in
          if invalidated > 0 then
            Pax_obs.Sink.count t.sink
              ~by:(float_of_int invalidated)
              "pax_feed_invalidations_total"
      | Wire.Graph_frag ->
          (* Graph fragments carry no generation-checked cache yet;
             count and drop. *)
          Pax_obs.Sink.count t.sink "pax_feed_events_total");
  t

(* Announce to every site (any one would relay to all connected
   coordinators, but coordinators connect to all sites, and a site
   down for one publish must still learn the generation for its own
   [Gen_fetch] answers).  Best-effort per site: an unreachable site
   misses the publish; its next [Gen_fetch] from any coordinator that
   heard it resyncs nothing — the publisher's own ft stays the
   authority and re-publishing is idempotent (max-merge). *)
let publish t ~fids =
  let gens =
    List.filter_map
      (fun fid ->
        if fid >= 0 && fid < Fragment.n_fragments t.ft then
          Some (fid, Fragment.generation t.ft fid)
        else None)
      (List.sort_uniq compare fids)
  in
  if gens <> [] then begin
    Pax_obs.Sink.count t.sink "pax_feed_publishes_total";
    for site = 0 to Client.n_sites t.mux - 1 do
      try ignore (Client.publish_gens t.mux ~site ~kind:Wire.Tree_frag gens)
      with _ -> ()
    done
  end

let publish_all t =
  let fids = ref [] in
  for fid = Fragment.n_fragments t.ft - 1 downto 0 do
    if Fragment.generation t.ft fid > 0 then fids := fid :: !fids
  done;
  publish t ~fids:!fids

(* Startup sync: pull every site's generation vector and merge — a
   coordinator joining after updates have happened starts coherent
   instead of serving stale cache entries until the first event. *)
let sync t =
  for site = 0 to Client.n_sites t.mux - 1 do
    match Client.fetch_gens t.mux ~site ~kind:Wire.Tree_frag with
    | gens -> ignore (merge t gens)
    | exception _ -> ()
  done

(* Update propagation for replicated stores: after a local
   Update.apply, push the fragment's new image to the site that owns
   it (the servers evaluate stages on their own copy — without this
   they would keep answering from pre-update data).  Reuses the
   migration install at the current placement epoch: idempotent, and
   it clears no fence it shouldn't (install only clears [fid]'s). *)
let push_fragment t ~site ~fid ~epoch =
  let image =
    {
      Wire.fi_kind = Wire.Tree_frag;
      fi_bytes = Pax_xml.Flat.encode (Fragment.flat t.ft fid);
    }
  in
  Client.frag_install t.mux ~site ~fid ~epoch ~image

(** The coordinator's cross-query result cache — the serving-layer
    implementation of the {!Pax_dist.Stage_cache} seam
    (docs/SERVING.md).

    Memoizes fully-resolved per-(query, fragment) stage-1 results
    across runs over one fragment tree.  Every entry is stamped with
    the fragment's {e generation counter}
    ({!Pax_frag.Fragment.generation}); {!Pax_frag.Update.apply} bumps
    the counter, so a lookup after an edit finds a stale stamp, sweeps
    the entry and reports a miss — no explicit invalidation calls, no
    way to serve pre-edit results.

    Thread-safe (one mutex; entries are immutable once stored).
    Exactness caveat: [store] stamps the generation read at store time,
    so edits must not race in-flight runs — the serving coordinator
    guarantees this by construction because nothing applies updates
    while queries are in flight.

    With an enabled sink, counters [pax_cache_hits_total],
    [pax_cache_misses_total], [pax_cache_invalidated_total] and the
    gauge [pax_cache_entries] track effectiveness. *)

type t

(** A cache over one fragment tree; entries validate against this
    tree's generation counters.  [sink] defaults to no-op. *)
val create : ?sink:Pax_obs.Sink.t -> Pax_frag.Fragment.t -> t

val set_sink : t -> Pax_obs.Sink.t -> unit

(** A stored, generation-fresh result, or [None] (stale entries are
    swept on the way). *)
val lookup : t -> qkey:string -> fid:int -> Pax_wire.Wire.frag_result option

val store : t -> qkey:string -> fid:int -> Pax_wire.Wire.frag_result -> unit

(** Live entry count (stale entries linger until looked up). *)
val size : t -> int

val clear : t -> unit

(** The {!Pax_dist.Stage_cache.t} view, to install with
    {!Pax_dist.Cluster.set_stage_cache}. *)
val to_stage_cache : t -> Pax_dist.Stage_cache.t

module Codec = Pax_bool.Codec
module Formula = Pax_bool.Formula
module Tree = Pax_xml.Tree

let version = 2
let max_section = 0xFFFFFF

type answer = {
  a_id : int;
  a_tag : string;
  a_text : string option;
  a_attrs : (string * string) list;
}

let answer_of_node (n : Tree.node) =
  { a_id = n.Tree.id; a_tag = n.Tree.tag; a_text = n.Tree.text; a_attrs = n.Tree.attrs }

let node_of_answer a : Tree.node =
  {
    Tree.id = a.a_id;
    tag = a.a_tag;
    text = a.a_text;
    attrs = a.a_attrs;
    children = [];
    kind = Tree.Element;
  }

type section =
  | Query of string
  | Vectors of Formula.t array
  | Resolution of bool array
  | Answers of answer list
  | Tree_data of string
  | Frag_flat of Pax_xml.Flat.t

type frag_eval = {
  fe_fid : int;
  fe_is_root : bool;
  fe_init : Formula.t array option;
}

type sub_resolution = (int * bool array) list

type call =
  | Pax2_stage1 of { query : string; frags : frag_eval list }
  | Pax2_stage2 of { frags : (int * bool array * sub_resolution) list }
  | Pax3_stage1 of { query : string; fids : int list }
  | Pax3_stage2 of { query : string; frags : (frag_eval * sub_resolution) list }
  | Pax3_stage3 of { frags : (int * bool array) list }
  | Reach_stage1 of { query : string; fids : int list }

type frag_result = {
  fr_fid : int;
  fr_vec : Formula.t array option;
  fr_ctxs : (int * Formula.t array) list;
  fr_answers : answer list;
  fr_cands : int;
  fr_ops : int;
}

type reply =
  | Frag_results of frag_result list
  | Final_answers of { answers : answer list; ops : int }

type frag_kind = Tree_frag | Graph_frag

type frag_image = { fi_kind : frag_kind; fi_bytes : string }

(* The stale-epoch rejection is a *typed* error carried in the reply's
   error string: both ends recognize it by this prefix, so the client
   can route it through the retry budget instead of treating it as a
   permanent remote failure. *)
let stale_epoch_prefix = "stale-epoch:"

let stale_epoch_error ~fid ~retired ~epoch =
  Printf.sprintf "%s fragment %d retired at epoch %d (request epoch %d)"
    stale_epoch_prefix fid retired epoch

let is_stale_epoch m =
  String.length m >= String.length stale_epoch_prefix
  && String.sub m 0 (String.length stale_epoch_prefix) = stale_epoch_prefix

type msg =
  | Visit_request of {
      run : int;
      round : int;
      site : int;
      epoch : int;
      label : string;
      call : call;
      parent : int option;
    }
  | Visit_reply of { run : int; round : int; reply : (reply, string) result }
  | Ping
  | Pong
  | Shutdown
  | Stats_request
  | Stats_reply of (string * float) list
  | Run_done of { run : int }
  | Frag_fetch of { fid : int; kind : frag_kind; parent : int option }
  | Frag_image of { fid : int; image : (frag_image, string) result }
  | Frag_install of { fid : int; epoch : int; image : frag_image; parent : int option }
  | Frag_retire of { fid : int; epoch : int; kind : frag_kind; parent : int option }
  | Admin_reply of { reply : (string, string) result }
  | Spans_fetch
  | Spans_reply of { server_now : float; spans : Pax_obs.Span.span list }
  | Gen_publish of {
      kind : frag_kind;
      gens : (int * int) list;
      parent : int option;
    }
  | Gen_event of { kind : frag_kind; gens : (int * int) list }
  | Gen_fetch of { kind : frag_kind; parent : int option }
  | Gen_reply of { kind : frag_kind; gens : (int * int) list }

type error = Truncated | Bad_version of int | Corrupt of string

let pp_error ppf = function
  | Truncated -> Format.fprintf ppf "truncated frame"
  | Bad_version v -> Format.fprintf ppf "unsupported protocol version %d" v
  | Corrupt msg -> Format.fprintf ppf "corrupt frame: %s" msg

(* ------------------------------------------------------------------ *)
(* primitives                                                         *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let fail msg = raise (Bad msg)
let add_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xFF))
let add_varint = Codec.encode_varint

let add_str buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let get_u8 s ~pos =
  if pos >= String.length s then fail "truncated byte";
  (Char.code s.[pos], pos + 1)

let get_varint s ~pos =
  match Codec.decode_varint s ~pos with
  | v -> v
  | exception Codec.Decode_error m -> fail m

let get_str s ~pos =
  let n, pos = get_varint s ~pos in
  if n < 0 || n > String.length s - pos then fail "truncated string";
  (String.sub s pos n, pos + n)

(* ------------------------------------------------------------------ *)
(* sections                                                           *)
(* ------------------------------------------------------------------ *)

let k_query = 1
let k_vectors = 2
let k_resolution = 3
let k_answers = 4
let k_tree = 5
let k_flat = 6

let answer_payload_bytes a =
  Codec.varint_bytes a.a_id
  + Codec.varint_bytes (String.length a.a_tag)
  + String.length a.a_tag + 1
  + (match a.a_text with
    | None -> 0
    | Some t -> Codec.varint_bytes (String.length t) + String.length t)
  + Codec.varint_bytes (List.length a.a_attrs)
  + List.fold_left
      (fun acc (k, v) ->
        acc
        + Codec.varint_bytes (String.length k)
        + String.length k
        + Codec.varint_bytes (String.length v)
        + String.length v)
      0 a.a_attrs

let answers_payload_bytes answers =
  List.fold_left
    (fun acc a -> acc + answer_payload_bytes a)
    (Codec.varint_bytes (List.length answers))
    answers

let add_answer buf a =
  add_varint buf a.a_id;
  add_str buf a.a_tag;
  (match a.a_text with
  | None -> add_u8 buf 0
  | Some t ->
      add_u8 buf 1;
      add_str buf t);
  add_varint buf (List.length a.a_attrs);
  List.iter
    (fun (k, v) ->
      add_str buf k;
      add_str buf v)
    a.a_attrs

let get_answer s ~pos =
  let a_id, pos = get_varint s ~pos in
  let a_tag, pos = get_str s ~pos in
  let flag, pos = get_u8 s ~pos in
  let a_text, pos =
    if flag = 0 then (None, pos)
    else
      let t, pos = get_str s ~pos in
      (Some t, pos)
  in
  let n, pos = get_varint s ~pos in
  if n > String.length s - pos then fail "bad attr count";
  let rec attrs k pos acc =
    if k = 0 then (List.rev acc, pos)
    else
      let key, pos = get_str s ~pos in
      let v, pos = get_str s ~pos in
      attrs (k - 1) pos ((key, v) :: acc)
  in
  let a_attrs, pos = attrs n pos [] in
  ({ a_id; a_tag; a_text; a_attrs }, pos)

let section_payload = function
  | Query q -> q
  | Vectors fs -> Codec.formula_array_to_string fs
  | Resolution bs -> Codec.bool_array_to_string bs
  | Answers answers ->
      let buf = Buffer.create 128 in
      add_varint buf (List.length answers);
      List.iter (add_answer buf) answers;
      Buffer.contents buf
  | Tree_data xml -> xml
  | Frag_flat fl -> Pax_xml.Flat.encode fl

let section_kind = function
  | Query _ -> k_query
  | Vectors _ -> k_vectors
  | Resolution _ -> k_resolution
  | Answers _ -> k_answers
  | Tree_data _ -> k_tree
  | Frag_flat _ -> k_flat

(* A section costs exactly 4 + payload bytes: kind byte + u24 length,
   matching the "+4 header" of the Measure model. *)
let add_section buf sec =
  let payload = section_payload sec in
  let n = String.length payload in
  if n > max_section then invalid_arg "Wire: section exceeds 16 MiB";
  add_u8 buf (section_kind sec);
  add_u8 buf (n lsr 16);
  add_u8 buf (n lsr 8);
  add_u8 buf n;
  Buffer.add_string buf payload

let get_section s ~pos =
  let kind, pos = get_u8 s ~pos in
  let b2, pos = get_u8 s ~pos in
  let b1, pos = get_u8 s ~pos in
  let b0, pos = get_u8 s ~pos in
  let n = (b2 lsl 16) lor (b1 lsl 8) lor b0 in
  if n > String.length s - pos then fail "truncated section";
  let payload = String.sub s pos n in
  let pos = pos + n in
  let sec =
    if kind = k_query then Query payload
    else if kind = k_vectors then
      match Codec.formula_array_of_string_opt payload with
      | Some fs -> Vectors fs
      | None -> fail "bad vectors payload"
    else if kind = k_resolution then
      match Codec.bool_array_of_string_opt payload with
      | Some bs -> Resolution bs
      | None -> fail "bad resolution payload"
    else if kind = k_answers then begin
      let n, p = get_varint payload ~pos:0 in
      if n > String.length payload - p then fail "bad answer count";
      let rec go k p acc =
        if k = 0 then
          if p = String.length payload then List.rev acc
          else fail "trailing answer bytes"
        else
          let a, p = get_answer payload ~pos:p in
          go (k - 1) p (a :: acc)
      in
      Answers (go n p [])
    end
    else if kind = k_tree then Tree_data payload
    else if kind = k_flat then
      match Pax_xml.Flat.decode payload with
      | Some fl -> Frag_flat fl
      | None -> fail "bad flat-fragment payload"
    else fail "unknown section kind"
  in
  (sec, pos)

let expect_vectors s ~pos =
  match get_section s ~pos with
  | Vectors fs, pos -> (fs, pos)
  | _ -> fail "expected a vectors section"

let expect_resolution s ~pos =
  match get_section s ~pos with
  | Resolution bs, pos -> (bs, pos)
  | _ -> fail "expected a resolution section"

let expect_query s ~pos =
  match get_section s ~pos with
  | Query q, pos -> (q, pos)
  | _ -> fail "expected a query section"

let expect_answers s ~pos =
  match get_section s ~pos with
  | Answers a, pos -> (a, pos)
  | _ -> fail "expected an answers section"

let section_bytes sec = 4 + String.length (section_payload sec)
let query_section_bytes q = 4 + String.length q
let vectors_section_bytes fs = 4 + Codec.formula_array_bytes fs
let resolution_section_bytes bs = 4 + Codec.bool_array_bytes bs

let answers_section_bytes nodes =
  4 + answers_payload_bytes (List.map answer_of_node nodes)

let tree_to_section n = Tree_data (Pax_xml.Printer.to_string n)

let tree_of_section = function
  | Tree_data xml -> (
      match Pax_xml.Parser.parse_string xml with
      | doc -> Some doc.Tree.root
      | exception Pax_xml.Parser.Parse_error _ -> None)
  | _ -> None

let section_to_string sec =
  let buf = Buffer.create 128 in
  add_section buf sec;
  Buffer.contents buf

let section_of_string s =
  match get_section s ~pos:0 with
  | sec, pos -> if pos = String.length s then Some sec else None
  | exception Bad _ -> None
  | exception Codec.Decode_error _ -> None

(* ------------------------------------------------------------------ *)
(* calls                                                              *)
(* ------------------------------------------------------------------ *)

let c_pax2_stage1 = 1
let c_pax2_stage2 = 2
let c_pax3_stage1 = 3
let c_pax3_stage2 = 4
let c_pax3_stage3 = 5
let c_reach_stage1 = 6

let add_counted buf xs add =
  add_varint buf (List.length xs);
  List.iter (add buf) xs

let get_counted s ~pos get =
  let n, pos = get_varint s ~pos in
  if n > String.length s - pos then fail "bad list count";
  let rec go k pos acc =
    if k = 0 then (List.rev acc, pos)
    else
      let x, pos = get s ~pos in
      go (k - 1) pos (x :: acc)
  in
  go n pos []

let add_frag_eval buf fe =
  add_varint buf fe.fe_fid;
  add_u8 buf
    ((if fe.fe_is_root then 1 else 0)
    lor match fe.fe_init with Some _ -> 2 | None -> 0);
  match fe.fe_init with Some init -> add_section buf (Vectors init) | None -> ()

let get_frag_eval s ~pos =
  let fe_fid, pos = get_varint s ~pos in
  let flags, pos = get_u8 s ~pos in
  let fe_init, pos =
    if flags land 2 <> 0 then
      let fs, pos = expect_vectors s ~pos in
      (Some fs, pos)
    else (None, pos)
  in
  ({ fe_fid; fe_is_root = flags land 1 <> 0; fe_init }, pos)

let add_subs buf (subs : sub_resolution) =
  add_counted buf subs (fun buf (sub, bs) ->
      add_varint buf sub;
      add_section buf (Resolution bs))

let get_subs s ~pos : sub_resolution * int =
  get_counted s ~pos (fun s ~pos ->
      let sub, pos = get_varint s ~pos in
      let bs, pos = expect_resolution s ~pos in
      ((sub, bs), pos))

let add_call buf = function
  | Pax2_stage1 { query; frags } ->
      add_u8 buf c_pax2_stage1;
      add_section buf (Query query);
      add_counted buf frags add_frag_eval
  | Pax2_stage2 { frags } ->
      add_u8 buf c_pax2_stage2;
      add_counted buf frags (fun buf (fid, ctx, subs) ->
          add_varint buf fid;
          add_section buf (Resolution ctx);
          add_subs buf subs)
  | Pax3_stage1 { query; fids } ->
      add_u8 buf c_pax3_stage1;
      add_section buf (Query query);
      add_counted buf fids (fun buf fid -> add_varint buf fid)
  | Pax3_stage2 { query; frags } ->
      add_u8 buf c_pax3_stage2;
      add_section buf (Query query);
      add_counted buf frags (fun buf (fe, subs) ->
          add_frag_eval buf fe;
          add_subs buf subs)
  | Pax3_stage3 { frags } ->
      add_u8 buf c_pax3_stage3;
      add_counted buf frags (fun buf (fid, ctx) ->
          add_varint buf fid;
          add_section buf (Resolution ctx))
  | Reach_stage1 { query; fids } ->
      add_u8 buf c_reach_stage1;
      add_section buf (Query query);
      add_counted buf fids (fun buf fid -> add_varint buf fid)

let get_call s ~pos =
  let tag, pos = get_u8 s ~pos in
  if tag = c_pax2_stage1 then
    let query, pos = expect_query s ~pos in
    let frags, pos = get_counted s ~pos get_frag_eval in
    (Pax2_stage1 { query; frags }, pos)
  else if tag = c_pax2_stage2 then
    let frags, pos =
      get_counted s ~pos (fun s ~pos ->
          let fid, pos = get_varint s ~pos in
          let ctx, pos = expect_resolution s ~pos in
          let subs, pos = get_subs s ~pos in
          ((fid, ctx, subs), pos))
    in
    (Pax2_stage2 { frags }, pos)
  else if tag = c_pax3_stage1 then
    let query, pos = expect_query s ~pos in
    let fids, pos = get_counted s ~pos (fun s ~pos -> get_varint s ~pos) in
    (Pax3_stage1 { query; fids }, pos)
  else if tag = c_pax3_stage2 then
    let query, pos = expect_query s ~pos in
    let frags, pos =
      get_counted s ~pos (fun s ~pos ->
          let fe, pos = get_frag_eval s ~pos in
          let subs, pos = get_subs s ~pos in
          ((fe, subs), pos))
    in
    (Pax3_stage2 { query; frags }, pos)
  else if tag = c_pax3_stage3 then
    let frags, pos =
      get_counted s ~pos (fun s ~pos ->
          let fid, pos = get_varint s ~pos in
          let ctx, pos = expect_resolution s ~pos in
          ((fid, ctx), pos))
    in
    (Pax3_stage3 { frags }, pos)
  else if tag = c_reach_stage1 then
    let query, pos = expect_query s ~pos in
    let fids, pos = get_counted s ~pos (fun s ~pos -> get_varint s ~pos) in
    (Reach_stage1 { query; fids }, pos)
  else fail "unknown call tag"

(* ------------------------------------------------------------------ *)
(* replies                                                            *)
(* ------------------------------------------------------------------ *)

let r_frag_results = 1
let r_final = 2

let add_frag_result buf fr =
  add_varint buf fr.fr_fid;
  add_u8 buf
    ((match fr.fr_vec with Some _ -> 1 | None -> 0)
    lor if fr.fr_answers <> [] then 2 else 0);
  (match fr.fr_vec with Some vec -> add_section buf (Vectors vec) | None -> ());
  add_counted buf fr.fr_ctxs (fun buf (sub, vec) ->
      add_varint buf sub;
      add_section buf (Vectors vec));
  if fr.fr_answers <> [] then add_section buf (Answers fr.fr_answers);
  add_varint buf fr.fr_cands;
  add_varint buf fr.fr_ops

let get_frag_result s ~pos =
  let fr_fid, pos = get_varint s ~pos in
  let flags, pos = get_u8 s ~pos in
  let fr_vec, pos =
    if flags land 1 <> 0 then
      let fs, pos = expect_vectors s ~pos in
      (Some fs, pos)
    else (None, pos)
  in
  let fr_ctxs, pos =
    get_counted s ~pos (fun s ~pos ->
        let sub, pos = get_varint s ~pos in
        let vec, pos = expect_vectors s ~pos in
        ((sub, vec), pos))
  in
  let fr_answers, pos =
    if flags land 2 <> 0 then expect_answers s ~pos else ([], pos)
  in
  let fr_cands, pos = get_varint s ~pos in
  let fr_ops, pos = get_varint s ~pos in
  ({ fr_fid; fr_vec; fr_ctxs; fr_answers; fr_cands; fr_ops }, pos)

let add_reply buf = function
  | Frag_results frs ->
      add_u8 buf r_frag_results;
      add_counted buf frs add_frag_result
  | Final_answers { answers; ops } ->
      add_u8 buf r_final;
      if answers <> [] then begin
        add_u8 buf 1;
        add_section buf (Answers answers)
      end
      else add_u8 buf 0;
      add_varint buf ops

let get_reply s ~pos =
  let tag, pos = get_u8 s ~pos in
  if tag = r_frag_results then
    let frs, pos = get_counted s ~pos get_frag_result in
    (Frag_results frs, pos)
  else if tag = r_final then begin
    let flag, pos = get_u8 s ~pos in
    let answers, pos = if flag = 1 then expect_answers s ~pos else ([], pos) in
    let ops, pos = get_varint s ~pos in
    (Final_answers { answers; ops }, pos)
  end
  else fail "unknown reply tag"

(* ------------------------------------------------------------------ *)
(* messages                                                           *)
(* ------------------------------------------------------------------ *)

let m_request = 1
let m_reply = 2
let m_ping = 3
let m_pong = 4
let m_shutdown = 5
let m_stats_request = 6
let m_stats_reply = 7
let m_run_done = 8
let m_frag_fetch = 9
let m_frag_image = 10
let m_frag_install = 11
let m_frag_retire = 12
let m_admin_reply = 13
let m_spans_request = 14
let m_spans_reply = 15
let m_gen_publish = 16
let m_gen_event = 17
let m_gen_fetch = 18
let m_gen_reply = 19

(* Fragment images are opaque byte strings at this layer: tree images
   are {!Pax_xml.Flat.encode} output (total-decoding, intern-remapping
   at the receiver), graph images are [Gfrag.encode] output.  pax_wire
   cannot depend on pax_graph, so validation happens at install time,
   not decode time. *)
let kind_code = function Tree_frag -> 1 | Graph_frag -> 2

let get_kind s ~pos =
  let k, pos = get_u8 s ~pos in
  match k with
  | 1 -> (Tree_frag, pos)
  | 2 -> (Graph_frag, pos)
  | _ -> fail "unknown fragment kind"

let add_image buf { fi_kind; fi_bytes } =
  add_u8 buf (kind_code fi_kind);
  add_str buf fi_bytes

let get_image s ~pos =
  let fi_kind, pos = get_kind s ~pos in
  let fi_bytes, pos = get_str s ~pos in
  ({ fi_kind; fi_bytes }, pos)

(* Metric values travel as IEEE-754 bits, big-endian, so the reply is
   byte-exact (counters compare with [=] across the wire). *)
let add_f64 buf f =
  let bits = Int64.bits_of_float f in
  for i = 7 downto 0 do
    add_u8 buf (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF)
  done

let get_f64 s ~pos =
  if pos + 8 > String.length s then fail "truncated f64";
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code s.[pos + i]))
  done;
  (Int64.float_of_bits !bits, pos + 8)

(* Harvested spans (Spans_reply).  Pure telemetry like stats traffic —
   no sections, excluded from accounted traffic — but the clock
   readings must survive byte-exactly for offset alignment, hence
   IEEE-754 bits like metric values. *)
let add_span buf (sp : Pax_obs.Span.span) =
  add_str buf sp.Pax_obs.Span.sp_name;
  add_str buf sp.Pax_obs.Span.sp_cat;
  add_str buf sp.Pax_obs.Span.sp_track;
  add_f64 buf sp.Pax_obs.Span.sp_begin;
  add_f64 buf sp.Pax_obs.Span.sp_dur;
  add_varint buf sp.Pax_obs.Span.sp_seq;
  add_varint buf sp.Pax_obs.Span.sp_id;
  (match sp.Pax_obs.Span.sp_parent with
  | None -> add_u8 buf 0
  | Some p ->
      add_u8 buf 1;
      add_varint buf p);
  add_varint buf (List.length sp.Pax_obs.Span.sp_args);
  List.iter
    (fun (k, v) ->
      add_str buf k;
      add_str buf v)
    sp.Pax_obs.Span.sp_args

let get_span s ~pos =
  let sp_name, pos = get_str s ~pos in
  let sp_cat, pos = get_str s ~pos in
  let sp_track, pos = get_str s ~pos in
  let sp_begin, pos = get_f64 s ~pos in
  let sp_dur, pos = get_f64 s ~pos in
  if Float.is_nan sp_begin then fail "bad span begin";
  if not (sp_dur >= 0.) then fail "bad span duration";
  let sp_seq, pos = get_varint s ~pos in
  let sp_id, pos = get_varint s ~pos in
  let flag, pos = get_u8 s ~pos in
  let sp_parent, pos =
    if flag = 0 then (None, pos)
    else if flag = 1 then
      let p, pos = get_varint s ~pos in
      (Some p, pos)
    else fail "bad span parent flag"
  in
  let n, pos = get_varint s ~pos in
  if n > String.length s - pos then fail "bad span arg count";
  let rec args k pos acc =
    if k = 0 then (List.rev acc, pos)
    else
      let key, pos = get_str s ~pos in
      let v, pos = get_str s ~pos in
      args (k - 1) pos ((key, v) :: acc)
  in
  let sp_args, pos = args n pos [] in
  ( {
      Pax_obs.Span.sp_name;
      sp_cat;
      sp_track;
      sp_begin;
      sp_dur;
      sp_args;
      sp_seq;
      sp_id;
      sp_parent;
    },
    pos )

(* The optional trace-context extension: a single trailing varint
   (the coordinator-side parent span id) appended to the body of visit
   and migration requests when the sender is tracing.  Absent when
   tracing is off — those frames are byte-identical to pre-extension
   builds — and decoders accept both forms, so the extension is a
   pure control-plane add-on: it never enters [tally], only the
   per-frame overhead allowance. *)
let add_parent buf = function None -> () | Some p -> add_varint buf p

let get_parent s ~pos =
  if pos < String.length s then
    let p, pos = get_varint s ~pos in
    (Some p, pos)
  else (None, pos)

(* The v2 envelope carries a correlation id right after the version
   byte, on every message: the coordinator stamps each request with a
   fresh id and the server echoes it back, so many in-flight runs can
   share one socket and the client can demultiplex replies without
   inspecting bodies.  [corr] is envelope, not a section: it never
   enters [tally], only the per-frame framing-overhead allowance
   ({!frame_overhead}).  0 means "uncorrelated" (pings, shutdowns,
   unsolicited frames). *)
let encode_payload ?(corr = 0) msg =
  let buf = Buffer.create 256 in
  add_u8 buf version;
  add_varint buf corr;
  (match msg with
  | Visit_request { run; round; site; epoch; label; call; parent } ->
      add_u8 buf m_request;
      add_varint buf run;
      add_varint buf round;
      add_varint buf site;
      add_varint buf epoch;
      add_str buf label;
      add_call buf call;
      add_parent buf parent
  | Visit_reply { run; round; reply } ->
      add_u8 buf m_reply;
      add_varint buf run;
      add_varint buf round;
      (match reply with
      | Ok r ->
          add_u8 buf 0;
          add_reply buf r
      | Error e ->
          add_u8 buf 1;
          Buffer.add_string buf e)
  | Ping -> add_u8 buf m_ping
  | Pong -> add_u8 buf m_pong
  | Shutdown -> add_u8 buf m_shutdown
  | Stats_request -> add_u8 buf m_stats_request
  | Stats_reply pairs ->
      add_u8 buf m_stats_reply;
      add_varint buf (List.length pairs);
      List.iter
        (fun (name, v) ->
          add_str buf name;
          add_f64 buf v)
        pairs
  | Run_done { run } ->
      add_u8 buf m_run_done;
      add_varint buf run
  | Frag_fetch { fid; kind; parent } ->
      add_u8 buf m_frag_fetch;
      add_varint buf fid;
      add_u8 buf (kind_code kind);
      add_parent buf parent
  | Frag_image { fid; image } ->
      add_u8 buf m_frag_image;
      add_varint buf fid;
      (match image with
      | Ok img ->
          add_u8 buf 0;
          add_image buf img
      | Error e ->
          add_u8 buf 1;
          Buffer.add_string buf e)
  | Frag_install { fid; epoch; image; parent } ->
      add_u8 buf m_frag_install;
      add_varint buf fid;
      add_varint buf epoch;
      add_image buf image;
      add_parent buf parent
  | Frag_retire { fid; epoch; kind; parent } ->
      add_u8 buf m_frag_retire;
      add_varint buf fid;
      add_varint buf epoch;
      add_u8 buf (kind_code kind);
      add_parent buf parent
  | Admin_reply { reply } ->
      (add_u8 buf m_admin_reply;
       match reply with
       | Ok detail ->
           add_u8 buf 0;
           Buffer.add_string buf detail
       | Error e ->
           add_u8 buf 1;
           Buffer.add_string buf e)
  | Spans_fetch -> add_u8 buf m_spans_request
  | Spans_reply { server_now; spans } ->
      add_u8 buf m_spans_reply;
      add_f64 buf server_now;
      add_varint buf (List.length spans);
      List.iter (add_span buf) spans
  (* Generation-vector coherence frames (docs/SERVING.md): each entry
     is a (fid, generation) pair; receivers max-merge, so replay and
     reordering are harmless. *)
  | Gen_publish { kind; gens; parent } ->
      add_u8 buf m_gen_publish;
      add_u8 buf (kind_code kind);
      add_counted buf gens (fun buf (fid, gen) ->
          add_varint buf fid;
          add_varint buf gen);
      add_parent buf parent
  | Gen_event { kind; gens } ->
      add_u8 buf m_gen_event;
      add_u8 buf (kind_code kind);
      add_counted buf gens (fun buf (fid, gen) ->
          add_varint buf fid;
          add_varint buf gen)
  | Gen_fetch { kind; parent } ->
      add_u8 buf m_gen_fetch;
      add_u8 buf (kind_code kind);
      add_parent buf parent
  | Gen_reply { kind; gens } ->
      add_u8 buf m_gen_reply;
      add_u8 buf (kind_code kind);
      add_counted buf gens (fun buf (fid, gen) ->
          add_varint buf fid;
          add_varint buf gen));
  Buffer.contents buf

let encode ?corr msg =
  let payload = encode_payload ?corr msg in
  let n = String.length payload in
  let buf = Buffer.create (n + 4) in
  add_u8 buf (n lsr 24);
  add_u8 buf (n lsr 16);
  add_u8 buf (n lsr 8);
  add_u8 buf n;
  Buffer.add_string buf payload;
  Buffer.contents buf

let decode_payload_corr s =
  match
    let ver, pos = get_u8 s ~pos:0 in
    if ver <> version then Error (Bad_version ver)
    else
      let corr, pos = get_varint s ~pos in
      if corr < 0 then Error (Corrupt "negative correlation id")
      else
        let tag, pos = get_u8 s ~pos in
        let finish msg pos =
          if pos = String.length s then Ok (corr, msg)
          else Error (Corrupt "trailing bytes")
        in
        if tag = m_ping then finish Ping pos
        else if tag = m_pong then finish Pong pos
        else if tag = m_shutdown then finish Shutdown pos
        else if tag = m_stats_request then finish Stats_request pos
        else if tag = m_stats_reply then begin
          let pairs, pos =
            get_counted s ~pos (fun s ~pos ->
                let name, pos = get_str s ~pos in
                let v, pos = get_f64 s ~pos in
                ((name, v), pos))
          in
          finish (Stats_reply pairs) pos
        end
        else if tag = m_run_done then begin
          let run, pos = get_varint s ~pos in
          finish (Run_done { run }) pos
        end
        else if tag = m_request then begin
          let run, pos = get_varint s ~pos in
          let round, pos = get_varint s ~pos in
          let site, pos = get_varint s ~pos in
          let epoch, pos = get_varint s ~pos in
          let label, pos = get_str s ~pos in
          let call, pos = get_call s ~pos in
          let parent, pos = get_parent s ~pos in
          finish
            (Visit_request { run; round; site; epoch; label; call; parent })
            pos
        end
        else if tag = m_frag_fetch then begin
          let fid, pos = get_varint s ~pos in
          let kind, pos = get_kind s ~pos in
          let parent, pos = get_parent s ~pos in
          finish (Frag_fetch { fid; kind; parent }) pos
        end
        else if tag = m_frag_image then begin
          let fid, pos = get_varint s ~pos in
          let status, pos = get_u8 s ~pos in
          if status = 0 then
            let image, pos = get_image s ~pos in
            finish (Frag_image { fid; image = Ok image }) pos
          else if status = 1 then
            let e = String.sub s pos (String.length s - pos) in
            Ok (corr, Frag_image { fid; image = Error e })
          else Error (Corrupt "bad fragment-image status")
        end
        else if tag = m_frag_install then begin
          let fid, pos = get_varint s ~pos in
          let epoch, pos = get_varint s ~pos in
          let image, pos = get_image s ~pos in
          let parent, pos = get_parent s ~pos in
          finish (Frag_install { fid; epoch; image; parent }) pos
        end
        else if tag = m_frag_retire then begin
          let fid, pos = get_varint s ~pos in
          let epoch, pos = get_varint s ~pos in
          let kind, pos = get_kind s ~pos in
          let parent, pos = get_parent s ~pos in
          finish (Frag_retire { fid; epoch; kind; parent }) pos
        end
        else if tag = m_admin_reply then begin
          let status, pos = get_u8 s ~pos in
          let rest = String.sub s pos (String.length s - pos) in
          if status = 0 then Ok (corr, Admin_reply { reply = Ok rest })
          else if status = 1 then Ok (corr, Admin_reply { reply = Error rest })
          else Error (Corrupt "bad admin-reply status")
        end
        else if tag = m_gen_publish then begin
          let kind, pos = get_kind s ~pos in
          let gens, pos =
            get_counted s ~pos (fun s ~pos ->
                let fid, pos = get_varint s ~pos in
                let gen, pos = get_varint s ~pos in
                ((fid, gen), pos))
          in
          let parent, pos = get_parent s ~pos in
          finish (Gen_publish { kind; gens; parent }) pos
        end
        else if tag = m_gen_event then begin
          let kind, pos = get_kind s ~pos in
          let gens, pos =
            get_counted s ~pos (fun s ~pos ->
                let fid, pos = get_varint s ~pos in
                let gen, pos = get_varint s ~pos in
                ((fid, gen), pos))
          in
          finish (Gen_event { kind; gens }) pos
        end
        else if tag = m_gen_fetch then begin
          let kind, pos = get_kind s ~pos in
          let parent, pos = get_parent s ~pos in
          finish (Gen_fetch { kind; parent }) pos
        end
        else if tag = m_gen_reply then begin
          let kind, pos = get_kind s ~pos in
          let gens, pos =
            get_counted s ~pos (fun s ~pos ->
                let fid, pos = get_varint s ~pos in
                let gen, pos = get_varint s ~pos in
                ((fid, gen), pos))
          in
          finish (Gen_reply { kind; gens }) pos
        end
        else if tag = m_spans_request then finish Spans_fetch pos
        else if tag = m_spans_reply then begin
          let server_now, pos = get_f64 s ~pos in
          let spans, pos = get_counted s ~pos get_span in
          finish (Spans_reply { server_now; spans }) pos
        end
        else if tag = m_reply then begin
          let run, pos = get_varint s ~pos in
          let round, pos = get_varint s ~pos in
          let status, pos = get_u8 s ~pos in
          if status = 0 then
            let reply, pos = get_reply s ~pos in
            finish (Visit_reply { run; round; reply = Ok reply }) pos
          else if status = 1 then
            let e = String.sub s pos (String.length s - pos) in
            Ok (corr, Visit_reply { run; round; reply = Error e })
          else Error (Corrupt "bad reply status")
        end
        else Error (Corrupt "unknown message tag")
  with
  | result -> result
  | exception Bad m -> Error (Corrupt m)
  | exception Codec.Decode_error m -> Error (Corrupt m)

let decode_payload s = Result.map snd (decode_payload_corr s)

let decode_frame s =
  if String.length s < 4 then Error Truncated
  else
    let n =
      (Char.code s.[0] lsl 24)
      lor (Char.code s.[1] lsl 16)
      lor (Char.code s.[2] lsl 8)
      lor Char.code s.[3]
    in
    if String.length s - 4 < n then Error Truncated
    else if String.length s - 4 > n then Error (Corrupt "bytes beyond frame")
    else Ok (String.sub s 4 n)

let decode s = Result.join (Result.map decode_payload (decode_frame s))
let decode_corr s = Result.join (Result.map decode_payload_corr (decode_frame s))

(* ------------------------------------------------------------------ *)
(* accounting                                                         *)
(* ------------------------------------------------------------------ *)

type tally = { sections : int; section_bytes : int; frag_entries : int }

let empty_tally = { sections = 0; section_bytes = 0; frag_entries = 0 }

let t_add t sec =
  {
    t with
    sections = t.sections + 1;
    section_bytes = t.section_bytes + section_bytes sec;
  }

let t_frag t = { t with frag_entries = t.frag_entries + 1 }

let tally_subs t subs =
  List.fold_left (fun t (_, bs) -> t_add t (Resolution bs)) t subs

let tally_call t = function
  | Pax2_stage1 { query; frags } ->
      List.fold_left
        (fun t fe ->
          let t = t_frag t in
          match fe.fe_init with
          | Some init -> t_add t (Vectors init)
          | None -> t)
        (t_add t (Query query))
        frags
  | Pax2_stage2 { frags } ->
      List.fold_left
        (fun t (_, ctx, subs) ->
          tally_subs (t_add (t_frag t) (Resolution ctx)) subs)
        t frags
  | Pax3_stage1 { query; fids } | Reach_stage1 { query; fids } ->
      List.fold_left (fun t _ -> t_frag t) (t_add t (Query query)) fids
  | Pax3_stage2 { query; frags } ->
      List.fold_left
        (fun t (fe, subs) ->
          let t = t_frag t in
          let t =
            match fe.fe_init with Some init -> t_add t (Vectors init) | None -> t
          in
          tally_subs t subs)
        (t_add t (Query query))
        frags
  | Pax3_stage3 { frags } ->
      List.fold_left
        (fun t (_, ctx) -> t_add (t_frag t) (Resolution ctx))
        t frags

let tally_reply t = function
  | Frag_results frs ->
      List.fold_left
        (fun t fr ->
          let t = t_frag t in
          let t =
            match fr.fr_vec with Some vec -> t_add t (Vectors vec) | None -> t
          in
          let t =
            List.fold_left (fun t (_, vec) -> t_add t (Vectors vec)) t fr.fr_ctxs
          in
          if fr.fr_answers <> [] then t_add t (Answers fr.fr_answers) else t)
        t frs
  | Final_answers { answers; ops = _ } ->
      if answers <> [] then t_add t (Answers answers) else t

let tally = function
  | Visit_request { call; _ } -> tally_call empty_tally call
  | Visit_reply { reply = Ok r; _ } -> tally_reply empty_tally r
  | Visit_reply { reply = Error _; _ }
  | Ping | Pong | Shutdown
  (* Run_done is session control (server-side state eviction); like
     stats traffic it carries no sections.  Its frame still crosses the
     wire, covered by the per-frame overhead allowance. *)
  | Run_done _
  (* Stats and span-harvest traffic is telemetry, not query
     evaluation: it carries no sections and is excluded from accounted
     traffic entirely. *)
  | Stats_request | Stats_reply _ | Spans_fetch | Spans_reply _ -> empty_tally
  (* Migration traffic is control plane, not query evaluation: a
     fragment image crossing the wire belongs to no run, so it never
     enters per-query guarantee accounting.  The admin byte volume is
     surfaced through pax_obs counters instead (docs/SHARDING.md). *)
  | Frag_fetch _ | Frag_image _ | Frag_install _ | Frag_retire _
  | Admin_reply _ -> empty_tally
  (* Cache-coherence traffic is likewise control plane: generation
     vectors belong to no run, so they never enter per-query guarantee
     accounting (docs/SERVING.md). *)
  | Gen_publish _ | Gen_event _ | Gen_fetch _ | Gen_reply _ -> empty_tally

(* Worst-case structure bytes (docs/NETWORK.md derives these): frame
   header + version + correlation id + tags + envelope varints and
   label; per fragment entry its identifiers, flags and counters; per
   section one adjacent varint identifier.  v2 raised the per-frame
   constant from 96 by the worst-case 8-byte correlation-id varint;
   elastic sharding adds a worst-case 10-byte placement-epoch varint
   to every visit request; distributed tracing adds a worst-case
   10-byte parent-span-id varint (the trace-context extension,
   present only when the coordinator traces). *)
let frame_overhead = 124
let frag_overhead = 48
let section_overhead = 12

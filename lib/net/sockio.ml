type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  match String.index_opt s ':' with
  | _ when s = "" -> Error "empty address"
  | _ when s.[0] = '/' || s.[0] = '.' -> Ok (Unix_path s)
  | Some 4 when String.sub s 0 4 = "unix" ->
      let path = String.sub s 5 (String.length s - 5) in
      if path = "" then Error "empty unix socket path" else Ok (Unix_path path)
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | _ -> Error (Printf.sprintf "bad port in %S" s))
  | None -> Error (Printf.sprintf "bad address %S (want unix:PATH or HOST:PORT)" s)

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(* A peer closing mid-write must surface as EPIPE (mapped to a retry),
   not kill the process.  An atomic flag rather than a lazy cell:
   Lazy.force from concurrent threads can raise Undefined, and sockets
   are opened from scheduler workers. *)
let sigpipe_ignored = Atomic.make false

let ignore_sigpipe () =
  if not (Atomic.exchange sigpipe_ignored true) then
    if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.ADDR_INET (ip, port)

let domain_of = function
  | Unix_path _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let listen ?(backlog = 16) addr =
  ignore_sigpipe ();
  (match addr with
  | Unix_path p when Sys.file_exists p -> ( try Unix.unlink p with _ -> ())
  | _ -> ());
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  (match addr with
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix_path _ -> ());
  Unix.bind fd (sockaddr_of addr);
  Unix.listen fd backlog;
  fd

let connect addr =
  ignore_sigpipe ();
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of addr)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  fd

exception Timeout

let max_frame = 64 * 1024 * 1024

(* Deadlines are computed on the monotonic clock, so a wall-clock step
   (NTP, VM migration) can neither fire a timeout early nor postpone it
   indefinitely. *)
let wait_readable fd deadline =
  match deadline with
  | None -> ()
  | Some dl ->
      let remaining = dl -. Pax_obs.Clock.now () in
      if remaining <= 0. then raise Timeout
      else
        let r, _, _ = Unix.select [ fd ] [] [] remaining in
        if r = [] then raise Timeout

(* Wait until [fd] is readable for at most [timeout] seconds; [false]
   on timeout, with nothing consumed from the stream — unlike a
   mid-frame [read_frame] timeout, a [false] here is always safe to
   retry.  The demultiplexing client's receiver loops on this so its
   per-request deadlines never desynchronize the shared stream. *)
let poll_readable fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* EINTR-safe exact read into [b.[0..n-1]]; [false] iff EOF at offset 0
   and [eof_ok].  Writing into a caller-owned buffer lets a connection
   reuse its header buffer across frames instead of allocating one per
   read. *)
let read_into ~deadline fd b n ~eof_ok =
  let rec go off =
    if off = n then true
    else begin
      wait_readable fd deadline;
      match Unix.read fd b off (n - off) with
      | 0 ->
          if off = 0 && eof_ok then false
          else failwith "Sockio: connection closed mid-frame"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0

(* Per-connection read state: the 4-byte length-header buffer, reused
   for every frame on the connection.  The payload buffer is still
   allocated per frame at exactly the payload size and frozen with
   [unsafe_to_string] (single allocation, no copy): the {!Wire} decoders
   bound everything by [String.length], so handing them a slice of a
   larger reused buffer is not an option. *)
type reader = { rd_fd : Unix.file_descr; rd_hdr : Bytes.t }

let reader fd = { rd_fd = fd; rd_hdr = Bytes.create 4 }

let read_frame_r ?timeout r =
  let deadline = Option.map (fun t -> Pax_obs.Clock.now () +. t) timeout in
  let fd = r.rd_fd in
  if not (read_into ~deadline fd r.rd_hdr 4 ~eof_ok:true) then None
  else begin
    let hdr = r.rd_hdr in
    let n =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if n > max_frame then failwith "Sockio: oversized frame"
    else begin
      let b = Bytes.create n in
      ignore (read_into ~deadline fd b n ~eof_ok:false : bool);
      Some (Bytes.unsafe_to_string b)
    end
  end

let read_frame ?timeout fd = read_frame_r ?timeout (reader fd)

(* Zero-copy frame write: the 4-byte header from a small scratch
   buffer, then the payload written straight from the string — no
   [n + 4] assembly copy.  Two writes on a stream socket are safe here
   because every writer of a shared connection already serializes whole
   frames (the client's per-site send lock, the server's per-connection
   loop). *)
let write_all fd b off len =
  let stop = off + len in
  let rec go off =
    if off < stop then
      match Unix.write fd b off (stop - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let write_frame fd payload =
  let n = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set hdr 3 (Char.chr (n land 0xFF));
  write_all fd hdr 0 4;
  let rec go off =
    if off < n then
      match Unix.write_substring fd payload off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

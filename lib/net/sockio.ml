type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  match String.index_opt s ':' with
  | _ when s = "" -> Error "empty address"
  | _ when s.[0] = '/' || s.[0] = '.' -> Ok (Unix_path s)
  | Some 4 when String.sub s 0 4 = "unix" ->
      let path = String.sub s 5 (String.length s - 5) in
      if path = "" then Error "empty unix socket path" else Ok (Unix_path path)
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | _ -> Error (Printf.sprintf "bad port in %S" s))
  | None -> Error (Printf.sprintf "bad address %S (want unix:PATH or HOST:PORT)" s)

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(* A peer closing mid-write must surface as EPIPE (mapped to a retry),
   not kill the process. *)
let ignore_sigpipe =
  lazy (if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.ADDR_INET (ip, port)

let domain_of = function
  | Unix_path _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let listen ?(backlog = 16) addr =
  Lazy.force ignore_sigpipe;
  (match addr with
  | Unix_path p when Sys.file_exists p -> ( try Unix.unlink p with _ -> ())
  | _ -> ());
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  (match addr with
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix_path _ -> ());
  Unix.bind fd (sockaddr_of addr);
  Unix.listen fd backlog;
  fd

let connect addr =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of addr)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  fd

exception Timeout

let max_frame = 64 * 1024 * 1024

(* Deadlines are computed on the monotonic clock, so a wall-clock step
   (NTP, VM migration) can neither fire a timeout early nor postpone it
   indefinitely. *)
let wait_readable fd deadline =
  match deadline with
  | None -> ()
  | Some dl ->
      let remaining = dl -. Pax_obs.Clock.now () in
      if remaining <= 0. then raise Timeout
      else
        let r, _, _ = Unix.select [ fd ] [] [] remaining in
        if r = [] then raise Timeout

(* Wait until [fd] is readable for at most [timeout] seconds; [false]
   on timeout, with nothing consumed from the stream — unlike a
   mid-frame [read_frame] timeout, a [false] here is always safe to
   retry.  The demultiplexing client's receiver loops on this so its
   per-request deadlines never desynchronize the shared stream. *)
let poll_readable fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* EINTR-safe exact read; [None] iff EOF at offset 0 and [eof_ok]. *)
let read_exact ?timeout fd n ~eof_ok =
  let deadline = Option.map (fun t -> Pax_obs.Clock.now () +. t) timeout in
  let b = Bytes.create n in
  let rec go off =
    if off = n then Some (Bytes.unsafe_to_string b)
    else begin
      wait_readable fd deadline;
      match Unix.read fd b off (n - off) with
      | 0 ->
          if off = 0 && eof_ok then None
          else failwith "Sockio: connection closed mid-frame"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0

let read_frame ?timeout fd =
  match read_exact ?timeout fd 4 ~eof_ok:true with
  | None -> None
  | Some hdr ->
      let n =
        (Char.code hdr.[0] lsl 24)
        lor (Char.code hdr.[1] lsl 16)
        lor (Char.code hdr.[2] lsl 8)
        lor Char.code hdr.[3]
      in
      if n > max_frame then failwith "Sockio: oversized frame"
      else read_exact ?timeout fd n ~eof_ok:false

let write_frame fd payload =
  let n = String.length payload in
  let b = Bytes.create (n + 4) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.blit_string payload 0 b 4 n;
  let rec go off =
    if off < n + 4 then
      match Unix.write fd b off (n + 4 - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

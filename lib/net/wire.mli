(** The binary wire protocol spoken between the coordinator and site
    servers (docs/NETWORK.md).

    A {e frame} is a big-endian [u32] payload length followed by the
    payload; a payload is a version byte, a varint {e correlation id},
    a message tag and a tag-specific body.  The correlation id (new in
    protocol v2, see docs/SERVING.md) is stamped on requests and echoed
    on replies so many in-flight runs can share one socket; [0] means
    uncorrelated.  Inside bodies, every quantity the simulator's
    cost model charges for travels as a {e section}: a kind byte (one
    per {!Pax_dist.Cluster.msg_kind}), a [u24] payload length and the
    payload — exactly [4 + payload] bytes, the same "+4 header" the
    {!Pax_dist.Measure} model uses, so summed section bytes of a run
    equal its accounted traffic to the byte.  All remaining bytes
    (frame header, envelope fields, per-fragment structure) are
    {e framing overhead}, bounded by {!frame_overhead},
    {!frag_overhead} and {!section_overhead}.

    {!decode} is total: truncated or corrupt input yields [Error _],
    never an exception. *)

module Formula = Pax_bool.Formula
module Tree = Pax_xml.Tree

val version : int

(** {1 Answers}

    Answer elements ship shallow: id, tag, character data and
    attributes of the answer node itself — the per-element unit of the
    paper's [O(|ans|)] term (children are part of other answers or not
    part of the answer at all). *)

type answer = {
  a_id : int;
  a_tag : string;
  a_text : string option;
  a_attrs : (string * string) list;
}

val answer_of_node : Tree.node -> answer

(** A childless [Element] node carrying the shipped fields; the id is
    the server-assigned one, so answer sets compare across transports. *)
val node_of_answer : answer -> Tree.node

(** {1 Sections} *)

type section =
  | Query of string  (** query source text *)
  | Vectors of Formula.t array  (** residual-formula vectors *)
  | Resolution of bool array  (** unified ground vectors *)
  | Answers of answer list  (** shipped answer elements *)
  | Tree_data of string  (** a printed XML (sub)document *)
  | Frag_flat of Pax_xml.Flat.t
      (** a flat fragment image ({!Pax_xml.Flat.encode}): the columnar
          buffers blitted as-is, for shipping prebuilt fragments
          between processes.  No engine stage ships one — visit traffic
          and its byte accounting are unchanged by the flat hot path. *)

(** Serialized size of a section including its 4-byte header — the
    byte count {!Pax_dist.Measure} charges. *)
val section_bytes : section -> int

val query_section_bytes : string -> int
val vectors_section_bytes : Formula.t array -> int
val resolution_section_bytes : bool array -> int
val answers_section_bytes : Tree.node list -> int

(** Print / parse a subtree for [Tree_data] sections (node ids are
    reassigned on parse, as with {!Pax_frag.Store} round trips). *)
val tree_to_section : Tree.node -> section

val tree_of_section : section -> Tree.node option

(** Standalone section round trip (used by fuzz tests; the envelope
    codecs embed sections with the same representation). *)
val section_to_string : section -> string

val section_of_string : string -> section option

(** {1 Visit calls}

    One request per (site, round): the engine-stage payload for every
    fragment the site holds.  [fe_init] is [None] when the site can
    derive the initial vector itself (blank for the root fragment,
    symbolic otherwise); annotated runs ship the pruned vector
    explicitly. *)

type frag_eval = {
  fe_fid : int;
  fe_is_root : bool;
  fe_init : Formula.t array option;
}

(** Unified qualifier values for a fragment's sub-fragments. *)
type sub_resolution = (int * bool array) list

type call =
  | Pax2_stage1 of { query : string; frags : frag_eval list }
  | Pax2_stage2 of { frags : (int * bool array * sub_resolution) list }
  | Pax3_stage1 of { query : string; fids : int list }
  | Pax3_stage2 of { query : string; frags : (frag_eval * sub_resolution) list }
  | Pax3_stage3 of { frags : (int * bool array) list }
  | Reach_stage1 of { query : string; fids : int list }
      (** distributed graph reachability ([lib/graph/]): one local
          partial evaluation per listed graph fragment; the reply is
          [Frag_results] with one residual-formula vector per fragment
          (one formula per boundary in-node, plus one for the source
          when the fragment owns it) *)

(** Per-fragment stage result.  [fr_vec] is the root qualifier (or
    selection) vector when the stage ships one; [fr_cands] the number
    of unresolved candidates kept at the site. *)
type frag_result = {
  fr_fid : int;
  fr_vec : Formula.t array option;
  fr_ctxs : (int * Formula.t array) list;
  fr_answers : answer list;
  fr_cands : int;
  fr_ops : int;
}

type reply =
  | Frag_results of frag_result list
  | Final_answers of { answers : answer list; ops : int }

(** {1 Fragment images}

    Elastic sharding ships whole fragments between sites as opaque,
    kind-tagged byte strings: tree fragments as their
    {!Pax_xml.Flat.encode} image (total-decoding, intern-remapping at
    the receiver), graph fragments as their [Gfrag.encode] image.
    pax_wire cannot depend on pax_graph, so image payloads are
    validated at install time by the receiving server, not here. *)

type frag_kind = Tree_frag | Graph_frag

type frag_image = { fi_kind : frag_kind; fi_bytes : string }

(** Prefix of the typed stale-epoch rejection carried in a
    [Visit_reply] error string: a visit stamped with a placement epoch
    at or past the fragment's retirement is refused with this marker,
    and the client routes it through the retry budget (the placement
    table may still be converging) instead of raising a permanent
    remote failure. *)
val stale_epoch_prefix : string

val stale_epoch_error : fid:int -> retired:int -> epoch:int -> string
val is_stale_epoch : string -> bool

(** {1 Messages} *)

type msg =
  | Visit_request of {
      run : int;
      round : int;
      site : int;
      epoch : int;
          (** coordinator's placement epoch when the run was admitted;
              lets a site that retired a fragment refuse visits routed
              under metadata the sender should already have seen
              ({!stale_epoch_prefix}) while still serving older
              in-flight runs from kept data *)
      label : string;
      call : call;
      parent : int option;
          (** trace context: the coordinator's rpc-span id, appended
              as a single trailing varint when (and only when) the
              sender traces — the site parent-links its own spans to
              it.  Control plane: never tallied, absent frames are
              byte-identical to pre-extension builds, and decoders
              accept both forms (back-compat). *)
    }
  | Visit_reply of { run : int; round : int; reply : (reply, string) result }
  | Ping
  | Pong
  | Shutdown
  | Stats_request
      (** ask a site server for its telemetry counters *)
  | Stats_reply of (string * float) list
      (** sorted [(series, value)] pairs as {!Pax_obs.Metrics.pairs}
          flattens them; values travel as IEEE-754 bits, so counters
          compare byte-exactly across the wire.  Stats frames carry no
          sections and are excluded from accounted traffic. *)
  | Run_done of { run : int }
      (** the coordinator is finished with a run: the server may evict
          every per-run state it kept (stage vectors, reply memos).
          Best-effort session control — no reply, no sections; losing it
          only delays eviction until the server's LRU bound kicks in. *)
  | Frag_fetch of { fid : int; kind : frag_kind; parent : int option }
      (** ask the site holding [fid] for its wire image; answered by
          [Frag_image].  [parent] is the trace-context extension, as
          on [Visit_request]. *)
  | Frag_image of { fid : int; image : (frag_image, string) result }
  | Frag_install of {
      fid : int;
      epoch : int;
      image : frag_image;
      parent : int option;
    }
      (** install [image] as fragment [fid] at the receiving site,
          effective at placement epoch [epoch]; idempotent (replaying
          an install is a no-op in effect), clears any retirement fence
          for [fid]; answered by [Admin_reply] *)
  | Frag_retire of {
      fid : int;
      epoch : int;
      kind : frag_kind;
      parent : int option;
    }
      (** fence fragment [fid] at the source site: visits stamped with
          an epoch [>= epoch] are refused with the typed stale-epoch
          error, while older in-flight runs keep being served from the
          retained data (drain-free migration); answered by
          [Admin_reply] *)
  | Admin_reply of { reply : (string, string) result }
      (** acknowledgment for [Frag_install]/[Frag_retire].  Migration
          frames are control plane: like stats traffic they carry no
          sections and are excluded from per-query accounted traffic
          (the admin byte volume is surfaced via pax_obs counters). *)
  | Spans_fetch
      (** drain a site server's span ring (answered by [Spans_reply]);
          raw telemetry IO like [Stats_request] — never counted, never
          tallied *)
  | Spans_reply of { server_now : float; spans : Pax_obs.Span.span list }
      (** the drained spans plus the server's {!Pax_obs.Clock.now}
          reading taken while building the reply: paired with the
          client's send/receive readings it yields the per-site clock
          offset used to align tracks in the merged Perfetto export
          (docs/OBSERVABILITY.md).  Clock readings travel as IEEE-754
          bits so alignment is byte-exact and deterministic under
          [Clock.Fake]. *)
  | Gen_publish of {
      kind : frag_kind;
      gens : (int * int) list;
      parent : int option;
    }
      (** a coordinator announces fragment generation counters
          ([(fid, generation)] pairs) after a local [Update.apply] or
          migration: the site max-merges them into its own table,
          answers [Admin_reply], and pushes a [Gen_event] to every
          live connection — the streamed invalidation feed that keeps
          every coordinator's stage cache coherent (docs/SERVING.md).
          Control plane like the migration frames: empty tally,
          [parent] is the trace-context extension. *)
  | Gen_event of { kind : frag_kind; gens : (int * int) list }
      (** server→client push (correlation id 0, no reply expected):
          fragment generations changed — receivers max-merge into
          their local {!Pax_fragment.Fragment.t}, which the existing
          cache generation check then treats as invalidation.
          Max-merging makes duplicates and reordering harmless. *)
  | Gen_fetch of { kind : frag_kind; parent : int option }
      (** pull the site's full generation vector (answered by
          [Gen_reply]) — startup sync for a coordinator that joins
          after updates have happened *)
  | Gen_reply of { kind : frag_kind; gens : (int * int) list }
      (** every [(fid, generation)] the site knows with a nonzero
          generation *)

type error =
  | Truncated
  | Bad_version of int
  | Corrupt of string

val pp_error : Format.formatter -> error -> unit

(** Encode a full frame (length prefix included).  [corr] defaults to
    [0] (uncorrelated). *)
val encode : ?corr:int -> msg -> string

(** Payload only — what travels after the [u32] length prefix. *)
val encode_payload : ?corr:int -> msg -> string

(** Total decoder over a complete frame.  Never raises: short input is
    [Error Truncated], anything malformed [Error (Corrupt _)]. *)
val decode : string -> (msg, error) result

val decode_payload : string -> (msg, error) result

(** Like {!decode}/{!decode_payload} but also return the envelope
    correlation id — what the demultiplexing client reads first. *)
val decode_corr : string -> (int * msg, error) result

val decode_payload_corr : string -> (int * msg, error) result

(** {1 Accounting}

    [tally] splits a message into accounted section bytes and counts
    of the structures that generate framing overhead. *)

type tally = { sections : int; section_bytes : int; frag_entries : int }

val tally : msg -> tally

(** Worst-case framing overhead (structure bytes outside sections):
    per frame, per fragment entry, and per section (the varint
    identifiers adjacent to a section).  docs/NETWORK.md derives the
    constants; the differential test holds measured traffic to
    [accounted + frames·frame + frags·frag + sections·section]. *)

val frame_overhead : int

val frag_overhead : int
val section_overhead : int

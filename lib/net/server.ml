module Wire = Pax_wire.Wire
module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var
module Qual_pass = Pax_core.Qual_pass
module Sel_pass = Pax_core.Sel_pass
module Flat_pass = Pax_core.Flat_pass
module Combined = Pax_core.Pax2.Combined

(* Per-run visit state.  Stage-1 results feed the later stages of the
   same run; replies are memoized by round so a retransmitted request
   (lost reply, client reconnect) is answered identically without
   re-execution — [Qual_pass.resolve] mutates stage-1 vectors in place,
   so re-execution would corrupt them. *)
type run_state = {
  rs_run : int;
  mutable rs_query : (string * Query.t) option;
  rs_pax2 : (int, Combined.outcome) Hashtbl.t;
  rs_qp : (int, Qual_pass.t) Hashtbl.t;
  rs_fq : (int, Flat_pass.qual) Hashtbl.t;  (* flat twin of rs_qp *)
  rs_sel : (int, Sel_pass.outcome) Hashtbl.t;
  rs_replies : (int, Wire.reply) Hashtbl.t;  (* round -> reply *)
  mutable rs_touch : int;  (* recency stamp for LRU eviction *)
}

(* A live accepted connection: its socket plus the write lock that
   serializes reply frames with unsolicited [Gen_event] pushes sharing
   the same socket. *)
type conn_entry = { c_id : int; c_fd : Unix.file_descr; c_wlock : Mutex.t }

type t = {
  frags : (int, Tree.node) Hashtbl.t;
  (* The flat hot path (docs/FLATTREE.md): one site-wide intern table
     and one flat image per held fragment, both built at server
     creation.  Servers never mutate their fragments, so the images
     stay valid for the server's lifetime. *)
  flat : bool;
  intern : Pax_xml.Intern.t;
  flat_imgs : (int, Pax_xml.Flat.t) Hashtbl.t;
  (* Graph fragments for the reachability engine (docs/ENGINES.md).  A
     site may hold tree fragments, graph fragments or both — the
     mixed-workload serving tests run XPath and reachability through
     the same servers. *)
  gfrags : (int, Pax_graph.Gfrag.fragment) Hashtbl.t;
  (* Elastic sharding (docs/SHARDING.md): a migrated-away fragment is
     fenced, not deleted — [(kind, fid) → epoch] records the placement
     epoch at which it was retired.  Visits stamped with that epoch or
     later are refused with the typed stale-epoch error; older
     in-flight runs keep being served from the retained data, which is
     immutable, so the migration window is drain-free.  [Frag_install]
     clears the fence. *)
  retired : (Wire.frag_kind * int, int) Hashtbl.t;
  (* Many runs interleave on one multiplexed connection, so state is a
     table keyed by run id, not a single slot.  Its size is bounded two
     ways: the coordinator announces finished runs ([Run_done] →
     eviction), and — since that frame is best-effort — an LRU cap of
     [max_runs] sheds the stalest run when a new one arrives.  Evicting
     a live run is safe for correctness (its next request rebuilds
     stage-1 state lazily only for stage-1 calls; later-stage calls on
     evicted state fail as typed [Error] replies and the client run
     fails over its retry budget) but [max_runs] should comfortably
     exceed the coordinator's max in-flight runs. *)
  states : (int, run_state) Hashtbl.t;
  max_runs : int;
  (* Simulated per-visit service latency.  Loopback sockets have no
     network delay, so a bench or test that wants the paper's setting —
     one machine per site, a WAN between them — asks each site to
     sleep this long before computing a visit reply.  Sleeps at
     different sites (and queued requests behind them) overlap in wall
     clock without consuming CPU, which is exactly what distinguishes
     them from compute. *)
  service_delay : float;
  (* Planned flakiness: every [flake]-th visit request is answered by
     closing the connection instead of replying — the recoverable
     fault the accept loop already tolerates (EOF → client reconnects
     and resends; the reply memo keeps the retry idempotent).  At most
     once per (run, round) so a retried request always makes progress.
     0 = never. *)
  flake : int;
  mutable flake_tick : int;
  flaked : (int * int, unit) Hashtbl.t;
  mutable clock : int;
  (* Always-on telemetry: a server exists to be queried, so its sink is
     enabled from the start and its counters are served on
     [Stats_request].  Only visit traffic is counted (not stats or ping
     frames), mirroring the client's counters — see
     [Client.fetch_stats]. *)
  obs : Pax_obs.Sink.t;
  (* N coordinators hold their multiplexed connections open
     concurrently, so [serve] runs one thread per accepted connection.
     [lock] guards every piece of shared state above (fragments, run
     states, fences, the sink — its collectors are single-writer) plus
     the tables below; the [service_delay] sleep and all socket IO
     happen outside it. *)
  lock : Mutex.t;
  conns : (int, conn_entry) Hashtbl.t;
  mutable conn_seq : int;
  (* Fragment generation counters, max-merged from [Gen_publish]
     frames and fanned back out as [Gen_event] — the relay that makes
     one coordinator's update invalidate every coordinator's stage
     cache (docs/SERVING.md). *)
  gens : (Wire.frag_kind * int, int) Hashtbl.t;
  mutable stopping : bool;
}

let default_max_runs = 64

let create ?(max_runs = default_max_runs) ?(service_delay = 0.) ?(flake = 0)
    ?(gfrags = []) ?flat ~frags () =
  if max_runs < 1 then invalid_arg "Server.create: need max_runs >= 1";
  if service_delay < 0. then
    invalid_arg "Server.create: negative service_delay";
  if flake < 0 then invalid_arg "Server.create: negative flake period";
  let flat = match flat with Some b -> b | None -> Flat_pass.enabled () in
  let tbl = Hashtbl.create 8 in
  List.iter (fun (fid, root) -> Hashtbl.replace tbl fid root) frags;
  let gtbl = Hashtbl.create 8 in
  List.iter (fun (fid, frag) -> Hashtbl.replace gtbl fid frag) gfrags;
  let intern = Pax_xml.Intern.create () in
  let flat_imgs = Hashtbl.create 8 in
  if flat then
    List.iter
      (fun (fid, root) ->
        Hashtbl.replace flat_imgs fid (Pax_xml.Flat.of_tree ~intern root))
      frags;
  {
    frags = tbl;
    flat;
    intern;
    flat_imgs;
    gfrags = gtbl;
    retired = Hashtbl.create 8;
    states = Hashtbl.create 16;
    max_runs;
    service_delay;
    flake;
    flake_tick = 0;
    flaked = Hashtbl.create 16;
    clock = 0;
    obs = Pax_obs.Sink.create ();
    lock = Mutex.create ();
    conns = Hashtbl.create 8;
    conn_seq = 0;
    gens = Hashtbl.create 16;
    stopping = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let fresh_state run =
  {
    rs_run = run;
    rs_query = None;
    rs_pax2 = Hashtbl.create 8;
    rs_qp = Hashtbl.create 8;
    rs_fq = Hashtbl.create 8;
    rs_sel = Hashtbl.create 8;
    rs_replies = Hashtbl.create 8;
    rs_touch = 0;
  }

let n_run_states t = Hashtbl.length t.states
let evict_run t run = Hashtbl.remove t.states run

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun run st ->
      match !victim with
      | Some (_, touch) when touch <= st.rs_touch -> ()
      | _ -> victim := Some (run, st.rs_touch))
    t.states;
  match !victim with
  | Some (run, _) ->
      evict_run t run;
      Pax_obs.Sink.count t.obs "pax_srv_runs_evicted_total"
  | None -> ()

let state_for t run =
  t.clock <- t.clock + 1;
  let st =
    match Hashtbl.find_opt t.states run with
    | Some st -> st
    | None ->
        if Hashtbl.length t.states >= t.max_runs then evict_lru t;
        let st = fresh_state run in
        Hashtbl.replace t.states run st;
        st
  in
  st.rs_touch <- t.clock;
  st

let frag_root t fid =
  match Hashtbl.find_opt t.frags fid with
  | Some root -> root
  | None -> failwith (Printf.sprintf "site server holds no fragment %d" fid)

let frag_flat t fid =
  match Hashtbl.find_opt t.flat_imgs fid with
  | Some fl -> fl
  | None -> failwith (Printf.sprintf "site server holds no fragment %d" fid)

let gfrag_of t fid =
  match Hashtbl.find_opt t.gfrags fid with
  | Some frag -> frag
  | None ->
      failwith (Printf.sprintf "site server holds no graph fragment %d" fid)

(* All stages of one run evaluate the same query; compile it once. *)
let query_of st source =
  match st.rs_query with
  | Some (src, q) when src = source -> q
  | _ ->
      let q = Query.of_string source in
      st.rs_query <- Some (source, q);
      q

let eval_root compiled ~is_root root =
  if is_root then fst (Sel_pass.context_root compiled root) else root

let init_of compiled ~fid ~is_root = function
  | Some vec -> vec
  | None ->
      if is_root then Sel_pass.blank_init compiled
      else Sel_pass.symbolic_init compiled ~fid

(* A candidate formula of fragment [fid] only mentions
   [Sel_ctx (fid, _)] and [Qual (sub, _)] for direct sub-fragments, so
   the per-fragment resolutions in a request are a complete
   substitution source. *)
let lookup_of ~ctxs ~quals = function
  | Var.Sel_ctx (f, i) ->
      Option.map (fun (a : bool array) -> Formula.bool a.(i))
        (Hashtbl.find_opt ctxs f)
  | Var.Qual (f, e) ->
      Option.map (fun (a : bool array) -> Formula.bool a.(e))
        (Hashtbl.find_opt quals f)
  | Var.Qual_at _ -> None

let resolve_candidates cands lookup ~ops =
  List.filter_map
    (fun ((v : Tree.node), f) ->
      incr ops;
      match Formula.to_bool (Formula.subst lookup f) with
      | Some true when v.Tree.id >= 0 -> Some v
      | Some _ -> None
      | None -> failwith "site server: candidate failed to resolve")
    cands

let handle_call t ~run call =
  let st = state_for t run in
  match call with
  | Wire.Pax2_stage1 { query; frags } ->
      let q = query_of st query in
      let compiled = q.Query.compiled in
      Wire.Frag_results
        (List.map
           (fun (fe : Wire.frag_eval) ->
             let fid = fe.Wire.fe_fid in
             let is_root = fe.Wire.fe_is_root in
             let init = init_of compiled ~fid ~is_root fe.Wire.fe_init in
             let oc =
               if t.flat then
                 Flat_pass.combined_run
                   (Flat_pass.make_plan compiled t.intern)
                   (frag_flat t fid) ~init ~is_root
               else
                 Combined.run compiled ~init ~root_is_context:is_root
                   (eval_root compiled ~is_root (frag_root t fid))
             in
             Hashtbl.replace st.rs_pax2 fid oc;
             {
               Wire.fr_fid = fid;
               fr_vec =
                 (if compiled.Compile.n_qual > 0 then
                    Some oc.Combined.root_qvec
                  else None);
               fr_ctxs = oc.Combined.contexts;
               fr_answers = List.map Wire.answer_of_node oc.Combined.answers;
               fr_cands = List.length oc.Combined.candidates;
               fr_ops = oc.Combined.ops;
             })
           frags)
  | Wire.Pax2_stage2 { frags } ->
      let ctxs = Hashtbl.create 8 and quals = Hashtbl.create 8 in
      List.iter
        (fun (fid, ctx, subs) ->
          Hashtbl.replace ctxs fid ctx;
          List.iter (fun (sub, vec) -> Hashtbl.replace quals sub vec) subs)
        frags;
      let lookup = lookup_of ~ctxs ~quals in
      let ops = ref 0 in
      let answers =
        List.concat_map
          (fun (fid, _, _) ->
            match Hashtbl.find_opt st.rs_pax2 fid with
            | Some oc -> resolve_candidates oc.Combined.candidates lookup ~ops
            | None ->
                failwith
                  (Printf.sprintf "no stage-1 state for fragment %d" fid))
          frags
      in
      Wire.Final_answers
        { answers = List.map Wire.answer_of_node answers; ops = !ops }
  | Wire.Pax3_stage1 { query; fids } ->
      let q = query_of st query in
      let compiled = q.Query.compiled in
      Wire.Frag_results
        (List.map
           (fun fid ->
             let is_root = fid = 0 in
             let vec, ops =
               if t.flat then begin
                 let fq =
                   Flat_pass.qual_run
                     (Flat_pass.make_plan compiled t.intern)
                     (frag_flat t fid) ~is_root
                 in
                 Hashtbl.replace st.rs_fq fid fq;
                 (fq.Flat_pass.q_root_vec, fq.Flat_pass.q_ops)
               end
               else begin
                 let qp =
                   Qual_pass.run compiled
                     (eval_root compiled ~is_root (frag_root t fid))
                 in
                 Hashtbl.replace st.rs_qp fid qp;
                 (qp.Qual_pass.root_vec, qp.Qual_pass.ops)
               end
             in
             {
               Wire.fr_fid = fid;
               fr_vec = Some vec;
               fr_ctxs = [];
               fr_answers = [];
               fr_cands = 0;
               fr_ops = ops;
             })
           fids)
  | Wire.Pax3_stage2 { query; frags } ->
      let q = query_of st query in
      let compiled = q.Query.compiled in
      Wire.Frag_results
        (List.map
           (fun ((fe : Wire.frag_eval), subs) ->
             let fid = fe.Wire.fe_fid in
             let is_root = fe.Wire.fe_is_root in
             let quals = Hashtbl.create 4 in
             List.iter (fun (sub, vec) -> Hashtbl.replace quals sub vec) subs;
             let lookup = lookup_of ~ctxs:(Hashtbl.create 1) ~quals in
             let init = init_of compiled ~fid ~is_root fe.Wire.fe_init in
             let resolve_ops, oc =
               if t.flat then begin
                 let plan = Flat_pass.make_plan compiled t.intern in
                 let fq = Hashtbl.find_opt st.rs_fq fid in
                 let resolve_ops =
                   match fq with
                   | Some fq -> Flat_pass.qual_resolve fq lookup
                   | None -> 0
                 in
                 ( resolve_ops,
                   Flat_pass.sel_run plan (frag_flat t fid) ~init ~is_root
                     ~qual:fq )
               end
               else begin
                 let resolve_ops =
                   match Hashtbl.find_opt st.rs_qp fid with
                   | Some qp -> Qual_pass.resolve qp lookup
                   | None -> 0
                 in
                 let sat v filter =
                   match Hashtbl.find_opt st.rs_qp fid with
                   | Some qp ->
                       Qual_pass.sat compiled
                         (Hashtbl.find qp.Qual_pass.vectors v.Tree.id)
                         v filter
                   | None -> Qual_pass.sat compiled [||] v filter
                 in
                 ( resolve_ops,
                   Sel_pass.run compiled ~init ~root_is_context:is_root ~sat
                     (eval_root compiled ~is_root (frag_root t fid)) )
               end
             in
             Hashtbl.replace st.rs_sel fid oc;
             {
               Wire.fr_fid = fid;
               fr_vec = None;
               fr_ctxs = oc.Sel_pass.contexts;
               fr_answers =
                 List.map Wire.answer_of_node
                   (Sel_pass.real_answers oc.Sel_pass.answers);
               fr_cands = List.length oc.Sel_pass.candidates;
               fr_ops = resolve_ops + oc.Sel_pass.ops;
             })
           frags)
  | Wire.Pax3_stage3 { frags } ->
      let ctxs = Hashtbl.create 8 in
      List.iter (fun (fid, ctx) -> Hashtbl.replace ctxs fid ctx) frags;
      let lookup = lookup_of ~ctxs ~quals:(Hashtbl.create 1) in
      let ops = ref 0 in
      let answers =
        List.concat_map
          (fun (fid, _) ->
            match Hashtbl.find_opt st.rs_sel fid with
            | Some oc -> resolve_candidates oc.Sel_pass.candidates lookup ~ops
            | None ->
                failwith
                  (Printf.sprintf "no stage-2 state for fragment %d" fid))
          frags
      in
      Wire.Final_answers
        { answers = List.map Wire.answer_of_node answers; ops = !ops }
  | Wire.Reach_stage1 { query; fids } -> (
      match Pax_graph.Gfrag.parse_query query with
      | None ->
          failwith
            (Printf.sprintf "site server: not a reachability query: %S" query)
      | Some (src, dst) ->
          Wire.Frag_results
            (List.map
               (fun fid ->
                 let vec, ops =
                   Pax_graph.Gfrag.local_eval (gfrag_of t fid) ~src ~dst
                 in
                 {
                   Wire.fr_fid = fid;
                   fr_vec = Some vec;
                   fr_ctxs = [];
                   fr_answers = [];
                   fr_cands = 0;
                   fr_ops = ops;
                 })
               fids))

(* The fragments a call touches, with the store they live in — what the
   retirement fence is keyed on and what the per-fragment hotness
   counters count. *)
let call_frags = function
  | Wire.Pax2_stage1 { frags; _ } ->
      List.map (fun (fe : Wire.frag_eval) -> (Wire.Tree_frag, fe.Wire.fe_fid)) frags
  | Wire.Pax2_stage2 { frags } ->
      List.map (fun (fid, _, _) -> (Wire.Tree_frag, fid)) frags
  | Wire.Pax3_stage1 { fids; _ } ->
      List.map (fun fid -> (Wire.Tree_frag, fid)) fids
  | Wire.Pax3_stage2 { frags; _ } ->
      List.map
        (fun ((fe : Wire.frag_eval), _) -> (Wire.Tree_frag, fe.Wire.fe_fid))
        frags
  | Wire.Pax3_stage3 { frags } ->
      List.map (fun (fid, _) -> (Wire.Tree_frag, fid)) frags
  | Wire.Reach_stage1 { fids; _ } ->
      List.map (fun fid -> (Wire.Graph_frag, fid)) fids

let stale_frag t ~epoch call =
  List.find_map
    (fun ((_, fid) as key) ->
      match Hashtbl.find_opt t.retired key with
      | Some retired when epoch >= retired -> Some (fid, retired)
      | _ -> None)
    (call_frags call)

let handle_request t ~run ~round ~epoch ?parent call =
  let st = state_for t run in
  match Hashtbl.find_opt st.rs_replies round with
  | Some reply ->
      (* Memo hits are worth seeing in a trace: a resent request that
         cost no kernel time renders as a sliver under its visit. *)
      Pax_obs.Sink.span t.obs ~cat:"memo" ?parent "memo hit" (fun () -> ());
      Ok reply
  | None -> (
      (* The fence check sits behind the memo: a reply computed before
         retirement stays replayable (the data is retained), while new
         work routed here under stale placement is refused with a typed
         error — never memoized, so the retried request re-checks. *)
      match stale_frag t ~epoch call with
      | Some (fid, retired) ->
          Pax_obs.Sink.count t.obs "pax_srv_stale_epoch_total";
          Error (Wire.stale_epoch_error ~fid ~retired ~epoch)
      | None -> (
          match
            Pax_obs.Sink.span t.obs ~cat:"stage" ?parent "stage kernel"
              (fun () -> handle_call t ~run call)
          with
          | reply ->
              Hashtbl.replace st.rs_replies round reply;
              List.iter
                (fun (_, fid) ->
                  Pax_obs.Sink.count t.obs
                    ~labels:[ ("fid", string_of_int fid) ]
                    "pax_site_fragment_visits_total")
                (call_frags call);
              Ok reply
          | exception e -> Error (Printexc.to_string e)))

(* ------------------------------------------------------------------ *)
(* Migration (docs/SHARDING.md)                                       *)
(* ------------------------------------------------------------------ *)

let fetch_image t ~fid ~kind =
  match kind with
  | Wire.Tree_frag -> (
      match Hashtbl.find_opt t.frags fid with
      | None -> Error (Printf.sprintf "site server holds no fragment %d" fid)
      | Some root ->
          let fl =
            match Hashtbl.find_opt t.flat_imgs fid with
            | Some fl -> fl
            | None -> Pax_xml.Flat.of_tree ~intern:t.intern root
          in
          Ok { Wire.fi_kind = kind; fi_bytes = Pax_xml.Flat.encode fl })
  | Wire.Graph_frag -> (
      match Hashtbl.find_opt t.gfrags fid with
      | None ->
          Error (Printf.sprintf "site server holds no graph fragment %d" fid)
      | Some frag ->
          Ok { Wire.fi_kind = kind; fi_bytes = Pax_graph.Gfrag.encode frag })

(* Install validates the image against the receiving server's own
   intern table (tree) or the codec's invariants (graph) before
   swapping it in; a corrupt image is refused without touching held
   state.  Replaying an install is idempotent: same image, same
   effect. *)
let install_image t ~fid ~epoch (image : Wire.frag_image) =
  match image.Wire.fi_kind with
  | Wire.Tree_frag -> (
      match Pax_xml.Flat.decode ~intern:t.intern image.Wire.fi_bytes with
      | None -> Error (Printf.sprintf "corrupt flat image for fragment %d" fid)
      | Some fl ->
          Hashtbl.replace t.frags fid (Pax_xml.Flat.to_tree fl);
          if t.flat then Hashtbl.replace t.flat_imgs fid fl;
          Hashtbl.remove t.retired (Wire.Tree_frag, fid);
          Ok (Printf.sprintf "installed fragment %d at epoch %d" fid epoch))
  | Wire.Graph_frag -> (
      match Pax_graph.Gfrag.decode image.Wire.fi_bytes with
      | None -> Error (Printf.sprintf "corrupt graph image for fragment %d" fid)
      | Some frag ->
          Hashtbl.replace t.gfrags fid frag;
          Hashtbl.remove t.retired (Wire.Graph_frag, fid);
          Ok
            (Printf.sprintf "installed graph fragment %d at epoch %d" fid epoch))

let retire_frag t ~fid ~epoch ~kind =
  let key = (kind, fid) in
  (match Hashtbl.find_opt t.retired key with
  | Some e when e > epoch -> ()  (* keep the newer fence *)
  | _ -> Hashtbl.replace t.retired key epoch);
  Ok (Printf.sprintf "retired fragment %d at epoch %d" fid epoch)

let flake_now t ~run ~round =
  t.flake > 0
  && begin
       t.flake_tick <- t.flake_tick + 1;
       t.flake_tick mod t.flake = 0
       && (not (Hashtbl.mem t.flaked (run, round)))
       && begin
            if Hashtbl.length t.flaked > 4096 then Hashtbl.reset t.flaked;
            Hashtbl.replace t.flaked (run, round) ();
            Pax_obs.Sink.count t.obs "pax_srv_flakes_total";
            true
          end
     end

let count_visit_frame t ~dir ~frame_len =
  let labels = [ ("dir", dir) ] in
  Pax_obs.Sink.count t.obs ~labels "pax_net_visit_frames_total";
  Pax_obs.Sink.count t.obs ~labels ~by:(float_of_int frame_len)
    "pax_net_visit_bytes_total"

(* Migration traffic is excluded from per-query accounting
   ([Wire.tally] returns the empty tally), so its byte volume is
   surfaced here instead — the "byte-accounted like every other
   message" ledger for the control plane. *)
let count_admin_frame t ~dir ~frame_len =
  let labels = [ ("dir", dir) ] in
  Pax_obs.Sink.count t.obs ~labels "pax_net_admin_frames_total";
  Pax_obs.Sink.count t.obs ~labels ~by:(float_of_int frame_len)
    "pax_net_admin_bytes_total"

(* ------------------------------------------------------------------ *)
(* Generation coherence (docs/SERVING.md)                             *)
(* ------------------------------------------------------------------ *)

(* Caller holds [t.lock].  Max-merge makes replayed or reordered
   publishes harmless: generations only move forward. *)
let merge_gen_locked t kind fid gen =
  let key = (kind, fid) in
  let cur = Option.value (Hashtbl.find_opt t.gens key) ~default:0 in
  if gen > cur then begin
    Hashtbl.replace t.gens key gen;
    Pax_obs.Sink.count t.obs "pax_srv_gen_merges_total"
  end

let gens_locked t kind =
  List.sort compare
    (Hashtbl.fold
       (fun (k, fid) gen acc -> if k = kind then (fid, gen) :: acc else acc)
       t.gens [])

let write_conn (c : conn_entry) payload =
  Mutex.lock c.c_wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.c_wlock)
    (fun () -> Sockio.write_frame c.c_fd payload)

(* Best-effort fan-out of a generation event to every live connection,
   the publisher included (its own merge is a no-op).  Correlation id
   0: nobody awaits these — clients route them by tag. *)
let broadcast_gens t kind gens =
  let out = Wire.encode_payload ~corr:0 (Wire.Gen_event { kind; gens }) in
  let targets =
    locked t (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
  in
  List.iter
    (fun c ->
      match write_conn c out with
      | () ->
          locked t (fun () ->
              count_admin_frame t ~dir:"sent"
                ~frame_len:(4 + String.length out))
      | exception _ -> () (* a dying connection misses the event;
                             its owner resyncs with [Gen_fetch] *))
    targets

(* Replies echo the request's correlation id, so a demultiplexing
   client can route them to the right in-flight run without inspecting
   bodies.

   One thread per accepted connection: shared state is touched only
   under [t.lock] (compute is serialized by the OCaml runtime lock
   anyway), while [service_delay] sleeps and socket writes stay
   outside it so latency overlaps across connections.  Writes go
   through the per-connection write lock — [Gen_event] pushes share
   the socket with replies. *)
let serve t fd =
  let rec conn_loop (c : conn_entry) rd =
    match Sockio.read_frame_r rd with
    | None -> `Eof
    | Some payload -> (
        let td0 = Pax_obs.Clock.now () in
        let decoded = Wire.decode_payload_corr payload in
        let td1 = Pax_obs.Clock.now () in
        match decoded with
        | Ok
            ( _,
              Wire.Visit_request
                { run; round; site = _; epoch = _; label = _; call = _; _ } )
          when locked t (fun () -> flake_now t ~run ~round) ->
            (* Planned fault: swallow the request and drop the
               connection.  The client sees EOF, reconnects and
               resends; the memo answers the retry. *)
            locked t (fun () ->
                count_visit_frame t ~dir:"recv"
                  ~frame_len:(4 + String.length payload));
            `Eof
        | Ok
            ( corr,
              Wire.Visit_request
                { run; round; site = _; epoch; label; call; parent } ) ->
            locked t (fun () ->
                count_visit_frame t ~dir:"recv"
                  ~frame_len:(4 + String.length payload));
            if t.service_delay > 0. then Thread.delay t.service_delay;
            (* The visit span carries the coordinator's rpc-span id as
               its parent (the cross-process flow arrow); decode, memo,
               kernel and reply-encode spans nest under the visit. *)
            let vid = Pax_obs.Span.alloc () in
            let out =
              locked t (fun () ->
                  Pax_obs.Sink.record t.obs ~cat:"wire" ~parent:vid
                    "decode request" ~t0:td0 ~t1:td1;
                  let reply =
                    Pax_obs.Sink.span t.obs ~cat:"visit" ~id:vid ?parent
                      ~args:(fun () ->
                        [
                          ("run", string_of_int run);
                          ("round", string_of_int round);
                        ])
                      label
                      (fun () ->
                        handle_request t ~run ~round ~epoch ~parent:vid call)
                  in
                  Pax_obs.Sink.span t.obs ~cat:"wire" ~parent:vid
                    "encode reply" (fun () ->
                      Wire.encode_payload ~corr
                        (Wire.Visit_reply { run; round; reply })))
            in
            let ts0 = Pax_obs.Clock.now () in
            write_conn c out;
            let ts1 = Pax_obs.Clock.now () in
            locked t (fun () ->
                Pax_obs.Sink.record t.obs ~cat:"wire" ~parent:vid "send frame"
                  ~t0:ts0 ~t1:ts1;
                count_visit_frame t ~dir:"sent"
                  ~frame_len:(4 + String.length out));
            conn_loop c rd
        | Ok (corr, Wire.Ping) ->
            write_conn c (Wire.encode_payload ~corr Wire.Pong);
            conn_loop c rd
        | Ok (corr, Wire.Stats_request) ->
            let out =
              locked t (fun () ->
                  Wire.encode_payload ~corr
                    (Wire.Stats_reply
                       (Pax_obs.Metrics.pairs t.obs.Pax_obs.Sink.metrics)))
            in
            write_conn c out;
            conn_loop c rd
        | Ok (corr, Wire.Spans_fetch) ->
            (* Drain the ring (atomically — concurrent visits keep
               recording) and stamp our clock while building the
               reply: the coordinator pairs the stamp with its own
               readings around this exchange to estimate this site's
               clock offset.  Telemetry like stats: no counters. *)
            let out =
              locked t (fun () ->
                  let spans = Pax_obs.Span.drain t.obs.Pax_obs.Sink.spans in
                  Wire.encode_payload ~corr
                    (Wire.Spans_reply
                       { server_now = Pax_obs.Clock.now (); spans }))
            in
            write_conn c out;
            conn_loop c rd
        | Ok (_, Wire.Run_done { run }) ->
            (* The coordinator is done with this run: shed its stage
               state and reply memos (the bounded-memory contract of
               docs/SERVING.md).  No reply. *)
            locked t (fun () -> evict_run t run);
            conn_loop c rd
        | Ok (corr, Wire.Frag_fetch { fid; kind; parent }) ->
            let out =
              locked t (fun () ->
                  count_admin_frame t ~dir:"recv"
                    ~frame_len:(4 + String.length payload);
                  let image =
                    Pax_obs.Sink.span t.obs ~cat:"admin" ?parent
                      ~args:(fun () -> [ ("fid", string_of_int fid) ])
                      "frag fetch"
                      (fun () -> fetch_image t ~fid ~kind)
                  in
                  Wire.encode_payload ~corr (Wire.Frag_image { fid; image }))
            in
            write_conn c out;
            locked t (fun () ->
                count_admin_frame t ~dir:"sent"
                  ~frame_len:(4 + String.length out));
            conn_loop c rd
        | Ok (corr, Wire.Frag_install { fid; epoch; image; parent }) ->
            let out =
              locked t (fun () ->
                  count_admin_frame t ~dir:"recv"
                    ~frame_len:(4 + String.length payload);
                  let reply =
                    Pax_obs.Sink.span t.obs ~cat:"admin" ?parent
                      ~args:(fun () -> [ ("fid", string_of_int fid) ])
                      "frag install"
                      (fun () -> install_image t ~fid ~epoch image)
                  in
                  Wire.encode_payload ~corr (Wire.Admin_reply { reply }))
            in
            write_conn c out;
            locked t (fun () ->
                count_admin_frame t ~dir:"sent"
                  ~frame_len:(4 + String.length out));
            conn_loop c rd
        | Ok (corr, Wire.Frag_retire { fid; epoch; kind; parent }) ->
            let out =
              locked t (fun () ->
                  count_admin_frame t ~dir:"recv"
                    ~frame_len:(4 + String.length payload);
                  let reply =
                    Pax_obs.Sink.span t.obs ~cat:"admin" ?parent
                      ~args:(fun () -> [ ("fid", string_of_int fid) ])
                      "frag retire"
                      (fun () -> retire_frag t ~fid ~epoch ~kind)
                  in
                  Wire.encode_payload ~corr (Wire.Admin_reply { reply }))
            in
            write_conn c out;
            locked t (fun () ->
                count_admin_frame t ~dir:"sent"
                  ~frame_len:(4 + String.length out));
            conn_loop c rd
        | Ok (corr, Wire.Gen_publish { kind; gens; parent }) ->
            locked t (fun () ->
                count_admin_frame t ~dir:"recv"
                  ~frame_len:(4 + String.length payload);
                Pax_obs.Sink.span t.obs ~cat:"admin" ?parent
                  ~args:(fun () -> [ ("n", string_of_int (List.length gens)) ])
                  "gen publish"
                  (fun () ->
                    List.iter
                      (fun (fid, gen) -> merge_gen_locked t kind fid gen)
                      gens));
            let out =
              Wire.encode_payload ~corr
                (Wire.Admin_reply
                   {
                     reply =
                       Ok
                         (Printf.sprintf "merged %d generation(s)"
                            (List.length gens));
                   })
            in
            write_conn c out;
            locked t (fun () ->
                count_admin_frame t ~dir:"sent"
                  ~frame_len:(4 + String.length out));
            broadcast_gens t kind gens;
            conn_loop c rd
        | Ok (corr, Wire.Gen_fetch { kind; parent }) ->
            let out =
              locked t (fun () ->
                  count_admin_frame t ~dir:"recv"
                    ~frame_len:(4 + String.length payload);
                  let gens =
                    Pax_obs.Sink.span t.obs ~cat:"admin" ?parent "gen fetch"
                      (fun () -> gens_locked t kind)
                  in
                  Wire.encode_payload ~corr (Wire.Gen_reply { kind; gens }))
            in
            write_conn c out;
            locked t (fun () ->
                count_admin_frame t ~dir:"sent"
                  ~frame_len:(4 + String.length out));
            conn_loop c rd
        | Ok (_, Wire.Shutdown) -> `Shutdown
        | Ok
            ( _,
              ( Wire.Visit_reply _ | Wire.Pong | Wire.Stats_reply _
              | Wire.Frag_image _ | Wire.Admin_reply _ | Wire.Spans_reply _
              | Wire.Gen_event _ | Wire.Gen_reply _ ) ) ->
            (* Not ours to receive; ignore. *)
            conn_loop c rd
        | Error err ->
            Format.eprintf "site server: bad frame: %a@." Wire.pp_error err;
            `Eof)
  in
  (* Accept loop: poll (so a Shutdown seen by any connection thread can
     stop us without closing the listening socket — that stays the
     caller's), accept, hand off to a connection thread.  Connection
     threads still running when [serve] returns die with their sockets
     (spawned servers exit; in-process callers close the client side). *)
  let conn_thread c =
    let outcome = try conn_loop c (Sockio.reader c.c_fd) with _ -> `Eof in
    locked t (fun () ->
        Hashtbl.remove t.conns c.c_id;
        if outcome = `Shutdown then t.stopping <- true);
    try Unix.close c.c_fd with _ -> ()
  in
  let rec accept_loop () =
    if locked t (fun () -> t.stopping) then ()
    else if not (Sockio.poll_readable fd 0.05) then accept_loop ()
    else
      match Unix.accept fd with
      | conn, _ ->
          let c =
            locked t (fun () ->
                t.conn_seq <- t.conn_seq + 1;
                let c =
                  { c_id = t.conn_seq; c_fd = conn; c_wlock = Mutex.create () }
                in
                Hashtbl.replace t.conns c.c_id c;
                c)
          in
          ignore (Thread.create conn_thread c);
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ()

let spawn ?max_runs ?service_delay ?flake ?gfrags ?flat ~addr ~frags () =
  (* Bind before forking so the parent can connect without racing the
     child's startup. *)
  let fd = Sockio.listen addr in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try
         serve (create ?max_runs ?service_delay ?flake ?gfrags ?flat ~frags ()) fd
       with _ -> ());
      (try Unix.close fd with _ -> ());
      Unix._exit 0
  | pid ->
      (try Unix.close fd with _ -> ());
      pid

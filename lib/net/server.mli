(** The site server: one process per site, holding that site's
    fragments and answering {!Wire} visit requests over a socket.

    A server is a faithful stand-in for the in-process site closures of
    the PaX engines: it runs the {e same} pass code
    ({!Pax_core.Pax2.Combined}, {!Pax_core.Qual_pass},
    {!Pax_core.Sel_pass}) on the same fragment trees, so answers, per
    fragment vectors and operation counts are bit-identical across
    transports.

    Visit state is kept per run (the coordinator stamps every request
    with a run id): stage-1 results are retained for the later stages,
    and every computed reply is memoized by round — a retransmitted
    request is answered from the memo, making visits idempotent exactly
    as the simulated cluster requires.  Runs are tracked concurrently
    in a bounded table: a [Run_done] frame evicts a finished run's
    state eagerly, and an LRU cap of [max_runs] bounds memory even when
    coordinators die without sending one (docs/SERVING.md).  Evicting a
    still-live run is safe — its later requests recompute, or fail with
    a typed [Error] the client retries. *)

type t

val default_max_runs : int
(** Default LRU cap on concurrently retained run states (64). *)

(** [create ~frags ()] — a server holding fragments [(fid, root)].
    Fragment 0, when present, is the document root (fragment ids are
    topological).  [max_runs] caps retained per-run state (default
    {!default_max_runs}); beyond it the least-recently-touched run is
    evicted (counted as [pax_srv_runs_evicted_total]).

    [service_delay] (seconds, default 0) sleeps before computing each
    visit reply, simulating the network/service latency of a genuinely
    remote site — loopback sockets have none, and latency is what
    concurrent serving overlaps (bench/throughput.ml, docs/SERVING.md).
    Ping, stats and [Run_done] frames are never delayed.

    [flake] (default 0 = never) injects a {e planned recoverable
    fault}: every [flake]-th visit request is swallowed and its
    connection closed without a reply — the client reconnects and
    resends, and the per-round reply memo answers the retry
    identically.  At most once per (run, round), so retries always
    make progress.  This is the socket-transport analogue of the
    simulator's fault plans, used by the differential oracles.

    [gfrags] (default none) are graph fragments for the reachability
    engine ([lib/graph/], docs/ENGINES.md); a server may hold tree
    fragments, graph fragments or both under the same fragment-id
    space.

    [flat] (default {!Pax_core.Flat_pass.enabled}) selects the flat hot
    path: fragments are flattened once at creation (one site-wide
    intern table, docs/FLATTREE.md) and visits evaluate through
    {!Pax_core.Flat_pass}; replies are bit-identical either way. *)
val create :
  ?max_runs:int ->
  ?service_delay:float ->
  ?flake:int ->
  ?gfrags:(int * Pax_graph.Gfrag.fragment) list ->
  ?flat:bool ->
  frags:(int * Pax_xml.Tree.node) list ->
  unit ->
  t

(** Number of run states currently retained — exposed so tests can
    check the memo table stays bounded. *)
val n_run_states : t -> int

(** Drop one run's state (what a [Run_done] frame does). *)
val evict_run : t -> int -> unit

(** Answer one call (exposed for tests; [serve] handles the memo and
    envelope around this).
    @raise Failure (and others) on malformed calls — [serve] turns any
    exception into an [Error] reply. *)
val handle_call : t -> run:int -> Pax_wire.Wire.call -> Pax_wire.Wire.reply

(** {1 Elastic sharding hooks (docs/SHARDING.md)}

    Exposed for tests; [serve] drives them from the
    [Frag_fetch]/[Frag_install]/[Frag_retire] frames. *)

(** The fragment's wire image: tree fragments as their
    {!Pax_xml.Flat.encode} image, graph fragments via [Gfrag.encode]. *)
val fetch_image :
  t ->
  fid:int ->
  kind:Pax_wire.Wire.frag_kind ->
  (Pax_wire.Wire.frag_image, string) result

(** Validate and swap in an image (tree images decode against the
    server's own intern table); clears any retirement fence for the
    fragment.  Idempotent.  A corrupt image is refused without touching
    held state. *)
val install_image :
  t ->
  fid:int ->
  epoch:int ->
  Pax_wire.Wire.frag_image ->
  (string, string) result

(** Fence the fragment at [epoch]: later visits stamped with an epoch
    [>= epoch] get the typed stale-epoch error, while the retained data
    keeps serving older in-flight runs (drain-free migration).
    Idempotent; an existing newer fence wins. *)
val retire_frag :
  t ->
  fid:int ->
  epoch:int ->
  kind:Pax_wire.Wire.frag_kind ->
  (string, string) result

(** [serve t fd] — accept loop on a listening socket, one thread per
    accepted connection (N coordinators hold their multiplexed
    connections open concurrently; docs/SERVING.md).  Shared state is
    guarded by one server lock; [service_delay] sleeps and socket IO
    overlap across connections.  On EOF the client may reconnect.
    [Ping] is answered with [Pong]; [Gen_publish] is max-merged,
    acknowledged, and fanned out to every live connection as a
    [Gen_event]; [Shutdown] makes [serve] return (the listening socket
    stays open for the caller to close).  Malformed frames close the
    offending connection. *)
val serve : t -> Unix.file_descr -> unit

(** [spawn ~addr ~frags ()] — fork a child serving [frags] on [addr];
    the socket is bound and listening before [spawn] returns, so a
    client may connect immediately.  Returns the child pid (the child
    never returns).  The child exits 0 after [Shutdown], or dies with
    the signal it receives — reap it with [Unix.waitpid]. *)
val spawn :
  ?max_runs:int ->
  ?service_delay:float ->
  ?flake:int ->
  ?gfrags:(int * Pax_graph.Gfrag.fragment) list ->
  ?flat:bool ->
  addr:Sockio.addr ->
  frags:(int * Pax_xml.Tree.node) list ->
  unit ->
  int

module Wire = Pax_wire.Wire
module Transport = Pax_dist.Transport

type t = {
  addrs : Sockio.addr array;
  timeout : float;
  conns : Unix.file_descr option array;
  mutable run : int;
  mutable sent_bytes : int;
  mutable received_bytes : int;
  mutable section_bytes : int;
  mutable sections : int;
  mutable frag_entries : int;
  mutable frames : int;
  mutable sink : Pax_obs.Sink.t;
}

let create ?(timeout = 30.) ~addrs () =
  {
    addrs;
    timeout;
    conns = Array.make (Array.length addrs) None;
    run = 0;
    sent_bytes = 0;
    received_bytes = 0;
    section_bytes = 0;
    sections = 0;
    frag_entries = 0;
    frames = 0;
    sink = Pax_obs.Sink.noop;
  }

let set_sink t s = t.sink <- s

let stats t =
  {
    Transport.sent_bytes = t.sent_bytes;
    received_bytes = t.received_bytes;
    section_bytes = t.section_bytes;
    sections = t.sections;
    frag_entries = t.frag_entries;
    frames = t.frames;
  }

(* A fresh run id per engine run: servers key their visit state by it,
   so stale state from an aborted run can never leak in.  The id must
   be distinct across rapid successive runs (a clock-derived hash is
   not: two runs inside one clock tick collide) and unlikely to repeat
   across coordinator processes talking to the same servers.  So: the
   low 32 bits come from a process-global monotonic counter — ids
   within a process are *guaranteed* distinct for 2^32 runs — and the
   high bits from a per-process random base read once from
   /dev/urandom (falling back to a pid+clock hash where unavailable).
   The final mask keeps the id inside the 55 bits the wire varint
   decoder accepts (and so non-negative), leaving 23 random bits above
   the counter. *)
let run_id_counter = Atomic.make 0

let run_id_base =
  lazy
    (let of_urandom () =
       let ic = open_in_bin "/dev/urandom" in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           let s = really_input_string ic 8 in
           let v = ref 0 in
           String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
           !v)
     in
     let base =
       match of_urandom () with
       | v -> v
       | exception _ -> Hashtbl.hash (Unix.getpid (), Unix.gettimeofday ())
     in
     (* Mix the pid so forked children that inherited the lazy cell
        unforced still diverge. *)
     base lxor (Unix.getpid () * 0x9E3779B9))

let fresh_run_id () =
  let c = Atomic.fetch_and_add run_id_counter 1 in
  (Lazy.force run_id_base land lnot 0xFFFFFFFF lor (c land 0xFFFFFFFF))
  land ((1 lsl 55) - 1)

let reset_run t = t.run <- fresh_run_id ()

let conn t site =
  match t.conns.(site) with
  | Some fd -> fd
  | None ->
      let fd = Sockio.connect t.addrs.(site) in
      t.conns.(site) <- Some fd;
      fd

let drop t site =
  match t.conns.(site) with
  | Some fd ->
      (try Unix.close fd with _ -> ());
      t.conns.(site) <- None
  | None -> ()

let tally_msg t msg ~payload_len =
  let y = Wire.tally msg in
  t.section_bytes <- t.section_bytes + y.Wire.section_bytes;
  t.sections <- t.sections + y.Wire.sections;
  t.frag_entries <- t.frag_entries + y.Wire.frag_entries;
  t.frames <- t.frames + 1;
  ignore payload_len

(* Telemetry for visit traffic only: Stats/Ping frames are excluded on
   both ends, so the client's counters and the sum of the servers'
   agree for a run (asserted in test_obs.ml). *)
let frame_obs t ~dir msg ~frame_len =
  if t.sink.Pax_obs.Sink.enabled then
    match msg with
    | Wire.Visit_request _ | Wire.Visit_reply _ ->
        let labels = [ ("dir", dir) ] in
        Pax_obs.Sink.count t.sink ~labels "pax_net_visit_frames_total";
        Pax_obs.Sink.count t.sink ~labels ~by:(float_of_int frame_len)
          "pax_net_visit_bytes_total"
    | _ -> ()

let send_msg t site msg =
  let payload = Wire.encode_payload msg in
  Pax_obs.Sink.span t.sink ~cat:"wire"
    ~args:(fun () ->
      [
        ("site", string_of_int site);
        ("bytes", string_of_int (4 + String.length payload));
      ])
    "send frame"
    (fun () -> Sockio.write_frame (conn t site) payload);
  t.sent_bytes <- t.sent_bytes + 4 + String.length payload;
  frame_obs t ~dir:"sent" msg ~frame_len:(4 + String.length payload);
  tally_msg t msg ~payload_len:(String.length payload)

let recv_msg t site =
  match
    Pax_obs.Sink.span t.sink ~cat:"wire"
      ~args:(fun () -> [ ("site", string_of_int site) ])
      "recv frame"
      (fun () -> Sockio.read_frame ~timeout:t.timeout (conn t site))
  with
  | None -> failwith "connection closed by site server"
  | Some payload -> (
      t.received_bytes <- t.received_bytes + 4 + String.length payload;
      match Wire.decode_payload payload with
      | Ok msg ->
          frame_obs t ~dir:"recv" msg ~frame_len:(4 + String.length payload);
          tally_msg t msg ~payload_len:(String.length payload);
          msg
      | Error err -> failwith (Format.asprintf "%a" Wire.pp_error err))

(* Send all requests first (sites start working in parallel), then
   collect replies in input order.  Any delivery failure drops the
   connection and reports to [retry] — which raises once the budget is
   gone — then reconnects and resends; the server's per-round reply
   memo makes the resend safe. *)
let visit_round t ~round ~label ~retry reqs =
  let attempts = Hashtbl.create 8 in
  let next_attempt site =
    let a = Option.value (Hashtbl.find_opt attempts site) ~default:1 in
    Hashtbl.replace attempts site (a + 1);
    a
  in
  let failed site e =
    drop t site;
    retry ~site ~attempt:(next_attempt site) ~reason:(Printexc.to_string e)
  in
  let request site call =
    Wire.Visit_request { run = t.run; round; site; label; call }
  in
  let rec send site call =
    match send_msg t site (request site call) with
    | () -> ()
    | exception ((Unix.Unix_error _ | Failure _) as e) ->
        failed site e;
        send site call
  in
  let started = Hashtbl.create 8 in
  List.iter
    (fun (site, call) ->
      Hashtbl.replace started site (Pax_obs.Clock.now ());
      send site call)
    reqs;
  let rec recv site call =
    match recv_msg t site with
    | Wire.Visit_reply { run; round = r; reply }
      when run = t.run && r = round -> (
        match reply with
        | Ok rep -> rep
        | Error message -> raise (Transport.Remote_failure { site; message }))
    | Wire.Visit_reply _ | Wire.Pong | Wire.Ping | Wire.Shutdown
    | Wire.Visit_request _ | Wire.Stats_request | Wire.Stats_reply _ ->
        (* A stale frame (earlier run or round, duplicated reply): skip. *)
        recv site call
    | exception ((Unix.Unix_error _ | Failure _ | Sockio.Timeout) as e) ->
        failed site e;
        send site call;
        recv site call
  in
  List.map
    (fun (site, call) ->
      let reply = recv site call in
      let t0 =
        Option.value (Hashtbl.find_opt started site)
          ~default:(Pax_obs.Clock.now ())
      in
      (site, reply, Pax_obs.Clock.now () -. t0))
    reqs

(* Ask one site server for its telemetry counters.  Deliberately uses
   raw Sockio instead of [send_msg]/[recv_msg]: fetching stats must not
   disturb the byte counters whose values are being fetched. *)
let fetch_stats t site =
  let fd = conn t site in
  Sockio.write_frame fd (Wire.encode_payload Wire.Stats_request);
  match Sockio.read_frame ~timeout:t.timeout fd with
  | None -> failwith "connection closed by site server"
  | Some payload -> (
      match Wire.decode_payload payload with
      | Ok (Wire.Stats_reply pairs) -> pairs
      | Ok _ -> failwith "unexpected reply to a stats request"
      | Error err -> failwith (Format.asprintf "%a" Wire.pp_error err))

let close t = Array.iteri (fun site _ -> drop t site) t.conns

let shutdown_sites t =
  Array.iteri
    (fun site _ ->
      (try Sockio.write_frame (conn t site) (Wire.encode_payload Wire.Shutdown)
       with _ -> ());
      drop t site)
    t.conns

let transport t =
  {
    Transport.describe =
      Printf.sprintf "sockets: %s"
        (String.concat ", "
           (Array.to_list (Array.map Sockio.addr_to_string t.addrs)));
    visit_round = (fun ~round ~label ~retry reqs ->
        visit_round t ~round ~label ~retry reqs);
    stats = (fun () -> stats t);
    reset_run = (fun () -> reset_run t);
    close = (fun () -> close t);
  }

module Wire = Pax_wire.Wire
module Transport = Pax_dist.Transport

(* ------------------------------------------------------------------ *)
(* Run ids                                                            *)
(* ------------------------------------------------------------------ *)

(* A fresh run id per engine run: servers key their visit state by it,
   so stale state from an aborted run can never leak in.  The id must
   be distinct across rapid successive runs (a clock-derived hash is
   not: two runs inside one clock tick collide) and unlikely to repeat
   across coordinator processes talking to the same servers.  So: the
   low 32 bits come from a process-global monotonic counter — ids
   within a process are *guaranteed* distinct for 2^32 runs — and the
   high bits from a per-process random base read once from
   /dev/urandom (falling back to a pid+clock hash where unavailable).
   The final mask keeps the id inside the 55 bits the wire varint
   decoder accepts (and so non-negative), leaving 23 random bits above
   the counter. *)
let run_id_counter = Atomic.make 0

let run_id_base =
  lazy
    (let of_urandom () =
       let ic = open_in_bin "/dev/urandom" in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           let s = really_input_string ic 8 in
           let v = ref 0 in
           String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
           !v)
     in
     let base =
       match of_urandom () with
       | v -> v
       | exception _ -> Hashtbl.hash (Unix.getpid (), Unix.gettimeofday ())
     in
     (* Mix the pid so forked children that inherited the lazy cell
        unforced still diverge. *)
     base lxor (Unix.getpid () * 0x9E3779B9))

(* Lazy.force is not thread-safe and the thunk blocks on /dev/urandom —
   a concurrent scheduler worker forcing mid-read would see
   CamlinternalLazy.Undefined — so the first force is serialized.  The
   cell stays lazy (not eager at module load) so a forked child that
   never forced it still derives its own pid-mixed base. *)
let run_id_base_lock = Mutex.create ()

let fresh_run_id () =
  let c = Atomic.fetch_and_add run_id_counter 1 in
  let base =
    if Lazy.is_val run_id_base then Lazy.force run_id_base
    else begin
      Mutex.lock run_id_base_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock run_id_base_lock)
        (fun () -> Lazy.force run_id_base)
    end
  in
  (base land lnot 0xFFFFFFFF lor (c land 0xFFFFFFFF)) land ((1 lsl 55) - 1)

(* Correlation ids are process-global too: a corr in flight is unique
   across every run sharing the process's connections, so a late reply
   to an abandoned request can never be mistaken for anyone else's. *)
let corr_counter = Atomic.make 1
let fresh_corr () = Atomic.fetch_and_add corr_counter 1 land ((1 lsl 55) - 1)

(* ------------------------------------------------------------------ *)
(* The multiplexer                                                    *)
(* ------------------------------------------------------------------ *)

(* One request in flight: registered under [lock] before its frame is
   written, filled exactly once — by the site's receiver thread (reply,
   deadline expiry or connection death) — and collected by the thread
   that sent it.  [int] alongside the message is the frame length, for
   the collector's byte accounting. *)
type pending = {
  p_site : int;
  p_deadline : float;
  mutable p_result : (Wire.msg * int, exn) result option;
}

type conn = { c_fd : Unix.file_descr; c_rd : Sockio.reader; c_gen : int }

type t = {
  addrs : Sockio.addr array;
  timeout : float;
  lock : Mutex.t;  (** guards [conns], [pending], [gen], signals [cond] *)
  cond : Condition.t;
  conns : conn option array;
  send_locks : Mutex.t array;  (** one writer at a time per socket *)
  pending : (int, pending) Hashtbl.t;  (** corr -> waiter *)
  mutable gen : int;
  mutable sink : Pax_obs.Sink.t;
  mutable default_handle : handle option;
  (* The cache-coherence hook (docs/SERVING.md): called by receiver
     threads for every unsolicited [Gen_event] push.  Typically
     [Feed.attach] installs a max-merge into the coordinator's local
     fragment tree, which the stage cache's generation check then
     treats as invalidation. *)
  mutable on_gen : (Wire.frag_kind -> (int * int) list -> unit) option;
}

(* One run's view of the shared connections: its own run id, its own
   byte counters, its own telemetry sink.  A handle is driven by one
   engine run at a time (counters are not locked); many handles
   multiplex over one [t] concurrently. *)
and handle = {
  h_mux : t;
  mutable h_run : int;
  (* Placement epoch stamped on every visit request of this handle's
     runs (docs/SHARDING.md): the coordinator sets it from its
     placement table at admission, so a site that retired a fragment
     can tell stale routing (refuse, typed error, client retries) from
     an older in-flight run it must keep serving.  0 = no placement
     table in play — before the first migration every epoch check
     passes trivially. *)
  mutable h_epoch : int;
  h_touched : bool array;  (** sites contacted during the current run *)
  mutable h_sink : Pax_obs.Sink.t option;  (** [None]: inherit the mux's *)
  mutable sent_bytes : int;
  mutable received_bytes : int;
  mutable section_bytes : int;
  mutable sections : int;
  mutable frag_entries : int;
  mutable frames : int;
}

(* How often an idle receiver re-checks deadlines.  A frame arriving
   wakes the poll immediately; this only bounds how stale an expired
   deadline can go unnoticed. *)
let poll_interval = 0.05

let create ?(timeout = 30.) ~addrs () =
  {
    addrs;
    timeout;
    lock = Mutex.create ();
    cond = Condition.create ();
    conns = Array.make (Array.length addrs) None;
    send_locks = Array.init (Array.length addrs) (fun _ -> Mutex.create ());
    pending = Hashtbl.create 32;
    gen = 0;
    sink = Pax_obs.Sink.noop;
    default_handle = None;
    on_gen = None;
  }

let set_sink t s = t.sink <- s
let n_sites t = Array.length t.addrs

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Fail every waiter of [site] that has no result yet.  Idempotent:
   results are written at most once, so a racing deadline expiry or a
   second failure sweep cannot overwrite a delivered reply. *)
let fail_waiters_locked t site e =
  Hashtbl.iter
    (fun _ p ->
      if p.p_site = site && p.p_result = None then p.p_result <- Some (Error e))
    t.pending;
  Condition.broadcast t.cond

(* Close a site's connection (requested by a sender that saw a delivery
   failure, or by the site's receiver).  The receiver notices the
   generation change and exits; in-flight waiters are failed here so
   their senders retry without waiting for the receiver's next poll. *)
let drop t site =
  locked t (fun () ->
      match t.conns.(site) with
      | Some c ->
          (try Unix.close c.c_fd with _ -> ());
          t.conns.(site) <- None;
          fail_waiters_locked t site
            (Failure "connection to site server lost")
      | None -> ())

let deposit t site payload =
  match Wire.decode_payload_corr payload with
  | Ok (_, Wire.Gen_event { kind; gens }) ->
      (* Unsolicited server push (correlation id 0 — never a waiter's
         id; the counter starts at 1): the streamed cache-invalidation
         feed.  Read the hook under the lock, run it outside — it
         merges into a fragment tree, not into mux state. *)
      let cb = locked t (fun () -> t.on_gen) in
      (match cb with
      | Some f -> ( try f kind gens with _ -> ())
      | None -> ());
      Ok ()
  | Ok (corr, msg) ->
      locked t (fun () ->
          match Hashtbl.find_opt t.pending corr with
          | Some p when p.p_site = site && p.p_result = None ->
              p.p_result <- Some (Ok (msg, 4 + String.length payload));
              Condition.broadcast t.cond
          | Some _ | None ->
              (* A reply to a request nobody waits for any more (resend
                 after timeout, abandoned run): drop it. *)
              ())
      |> fun () -> Ok ()
  | Error err -> Error (Failure (Format.asprintf "%a" Wire.pp_error err))

let expire_due t site =
  locked t (fun () ->
      let now = Pax_obs.Clock.now () in
      let fired = ref false in
      Hashtbl.iter
        (fun _ p ->
          if p.p_site = site && p.p_result = None && p.p_deadline <= now then begin
            p.p_result <- Some (Error Sockio.Timeout);
            fired := true
          end)
        t.pending;
      if !fired then Condition.broadcast t.cond)

(* The per-connection receiver: the only thread that reads this socket.
   It polls (so a per-request deadline can never abandon a half-read
   frame and desynchronize the stream) and commits to a full frame read
   only once bytes are available; a mid-frame stall longer than the
   client timeout means the stream is broken and kills the connection.
   On any exit path every in-flight waiter of the site is failed — no
   sender can be left waiting on a dead connection. *)
let receiver t site (c : conn) =
  let alive () =
    locked t (fun () ->
        match t.conns.(site) with
        | Some c' -> c'.c_gen = c.c_gen
        | None -> false)
  in
  let fail e =
    locked t (fun () ->
        (match t.conns.(site) with
        | Some c' when c'.c_gen = c.c_gen ->
            (try Unix.close c.c_fd with _ -> ());
            t.conns.(site) <- None
        | _ -> ());
        fail_waiters_locked t site e)
  in
  let rec loop () =
    if alive () then begin
      match Sockio.poll_readable c.c_fd poll_interval with
      | false ->
          expire_due t site;
          loop ()
      | true -> (
          match Sockio.read_frame_r ~timeout:t.timeout c.c_rd with
          | None -> fail (Failure "connection closed by site server")
          | Some payload -> (
              match deposit t site payload with
              | Ok () -> loop ()
              | Error e -> fail e)
          | exception e -> fail e)
      | exception e -> fail e
    end
  in
  loop ()

let ensure_conn t site =
  match locked t (fun () -> t.conns.(site)) with
  | Some c -> c
  | None -> (
      let fd = Sockio.connect t.addrs.(site) in
      match
        locked t (fun () ->
            match t.conns.(site) with
            | Some c -> `Existing c
            | None ->
                t.gen <- t.gen + 1;
                let c = { c_fd = fd; c_rd = Sockio.reader fd; c_gen = t.gen } in
                t.conns.(site) <- Some c;
                `Fresh c)
      with
      | `Existing c ->
          (try Unix.close fd with _ -> ());
          c
      | `Fresh c ->
          ignore (Thread.create (fun () -> receiver t site c) ());
          c)

(* Register the waiter *before* writing: whatever kills the connection
   after the write — even before this thread reaches [await] — sweeps
   the waiter and wakes us with the error. *)
let post t site msg =
  let corr = fresh_corr () in
  let p =
    {
      p_site = site;
      p_deadline = Pax_obs.Clock.now () +. t.timeout;
      p_result = None;
    }
  in
  locked t (fun () -> Hashtbl.replace t.pending corr p);
  let payload = Wire.encode_payload ~corr msg in
  (match
     let c = ensure_conn t site in
     Mutex.lock t.send_locks.(site);
     Fun.protect
       ~finally:(fun () -> Mutex.unlock t.send_locks.(site))
       (fun () -> Sockio.write_frame c.c_fd payload)
   with
  | () -> ()
  | exception e ->
      locked t (fun () -> Hashtbl.remove t.pending corr);
      raise e);
  (corr, p, 4 + String.length payload)

let await t corr p =
  locked t (fun () ->
      let rec wait () =
        match p.p_result with
        | Some r ->
            Hashtbl.remove t.pending corr;
            r
        | None ->
            Condition.wait t.cond t.lock;
            wait ()
      in
      wait ())

let close t =
  Array.iteri (fun site _ -> drop t site) t.conns

(* Best-effort, uncorrelated, uncounted control frame on an *existing*
   connection (Run_done, Shutdown): session control is not accounted
   traffic, and a site we have no connection to has no state to shed. *)
let post_control t site msg =
  match locked t (fun () -> t.conns.(site)) with
  | None -> ()
  | Some c -> (
      let payload = Wire.encode_payload msg in
      Mutex.lock t.send_locks.(site);
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.send_locks.(site))
        (fun () -> try Sockio.write_frame c.c_fd payload with _ -> ()))

let shutdown_sites t =
  Array.iteri
    (fun site _ ->
      (try
         let c = ensure_conn t site in
         Mutex.lock t.send_locks.(site);
         Fun.protect
           ~finally:(fun () -> Mutex.unlock t.send_locks.(site))
           (fun () ->
             Sockio.write_frame c.c_fd (Wire.encode_payload Wire.Shutdown))
       with _ -> ());
      drop t site)
    t.conns

(* Ask one site server for its telemetry counters.  The request flows
   through the multiplexer like any other (the receiver owns the
   socket) but deliberately skips every byte counter: fetching stats
   must not disturb the numbers being fetched. *)
let fetch_stats t site =
  let corr, p, _ = post t site Wire.Stats_request in
  match await t corr p with
  | Ok (Wire.Stats_reply pairs, _) -> pairs
  | Ok _ -> failwith "unexpected reply to a stats request"
  | Error e -> raise e

(* Clock alignment (docs/OBSERVABILITY.md): the server read its clock
   somewhere between our send ([t0]) and our receipt of the reply
   ([t1]); assuming symmetric transit, the midpoint of the exchange is
   the coordinator-clock instant of that reading, so the difference is
   how far the server's clock runs ahead of ours.  The error is
   bounded by half the round trip.  Pure, so the estimator is testable
   under [Clock.Fake] with known skew. *)
let estimate_offset ~t0 ~t1 ~server_now = server_now -. ((t0 +. t1) /. 2.)

(* Drain one site server's span ring.  Raw telemetry IO like
   [fetch_stats] — skips every byte counter — but additionally pairs
   its own clock readings around the exchange with the server's
   [server_now] stamp to estimate that site's clock offset, which the
   multi-process Perfetto merge subtracts from the site's track. *)
let fetch_spans t site =
  let t0 = Pax_obs.Clock.now () in
  let corr, p, _ = post t site Wire.Spans_fetch in
  match await t corr p with
  | Ok (Wire.Spans_reply { server_now; spans }, _) ->
      let t1 = Pax_obs.Clock.now () in
      (estimate_offset ~t0 ~t1 ~server_now, spans)
  | Ok _ -> failwith "unexpected reply to a spans fetch"
  | Error e -> raise e

(* Migration RPCs (docs/SHARDING.md).  Control plane like stats: they
   flow through the multiplexer (the receiver owns each socket, admin
   frames interleave freely with visit traffic — the drain-free
   window) but touch no per-run byte counters; servers ledger their
   volume under [pax_net_admin_*] instead. *)
(* Each carries the optional trace-context extension: when the mux has
   an enabled sink, the admin rpc is recorded as a coordinator span and
   its id stamped on the frame so the server's admin span parent-links
   to it (one flow arrow per migration step in the merged trace). *)
let admin_rpc t name ~site msg collect =
  let parent = Pax_obs.Sink.alloc t.sink in
  let corr, p, _ = post t site (msg ~parent) in
  Pax_obs.Sink.span t.sink ~cat:"admin" ?id:parent
    ~args:(fun () -> [ ("site", string_of_int site) ])
    name
    (fun () ->
      match await t corr p with
      | Ok (reply, _) -> collect reply
      | Error e -> raise e)

let frag_fetch t ~site ~fid ~kind =
  admin_rpc t "frag fetch" ~site
    (fun ~parent -> Wire.Frag_fetch { fid; kind; parent })
    (function
      | Wire.Frag_image { fid = f; image } when f = fid -> image
      | _ -> failwith "unexpected reply to a fragment fetch")

let frag_install t ~site ~fid ~epoch ~image =
  admin_rpc t "frag install" ~site
    (fun ~parent -> Wire.Frag_install { fid; epoch; image; parent })
    (function
      | Wire.Admin_reply { reply } -> reply
      | _ -> failwith "unexpected reply to a fragment install")

let frag_retire t ~site ~fid ~epoch ~kind =
  admin_rpc t "frag retire" ~site
    (fun ~parent -> Wire.Frag_retire { fid; epoch; kind; parent })
    (function
      | Wire.Admin_reply { reply } -> reply
      | _ -> failwith "unexpected reply to a fragment retire")

(* Generation coherence (docs/SERVING.md): same control-plane shape as
   the migration RPCs.  [on_gen_event] is the receiving side of the
   feed — the hook runs on receiver threads, once per [Gen_event]
   pushed by any site. *)
let on_gen_event t f = locked t (fun () -> t.on_gen <- Some f)

let publish_gens t ~site ~kind gens =
  admin_rpc t "gen publish" ~site
    (fun ~parent -> Wire.Gen_publish { kind; gens; parent })
    (function
      | Wire.Admin_reply { reply } -> reply
      | _ -> failwith "unexpected reply to a generation publish")

let fetch_gens t ~site ~kind =
  admin_rpc t "gen fetch" ~site
    (fun ~parent -> Wire.Gen_fetch { kind; parent })
    (function
      | Wire.Gen_reply { kind = k; gens } when k = kind -> gens
      | _ -> failwith "unexpected reply to a generation fetch")

(* ------------------------------------------------------------------ *)
(* Handles: one run's transport view                                  *)
(* ------------------------------------------------------------------ *)

let handle ?sink t =
  {
    h_mux = t;
    h_run = fresh_run_id ();
    h_epoch = 0;
    h_touched = Array.make (Array.length t.addrs) false;
    h_sink = sink;
    sent_bytes = 0;
    received_bytes = 0;
    section_bytes = 0;
    sections = 0;
    frag_entries = 0;
    frames = 0;
  }

let sink_of h = match h.h_sink with Some s -> s | None -> h.h_mux.sink
let set_handle_sink h s = h.h_sink <- Some s
let set_epoch h epoch = h.h_epoch <- epoch

let stats h =
  {
    Transport.sent_bytes = h.sent_bytes;
    received_bytes = h.received_bytes;
    section_bytes = h.section_bytes;
    sections = h.sections;
    frag_entries = h.frag_entries;
    frames = h.frames;
  }

(* Tell every site the current run touched that its state can go
   (docs/SERVING.md: the reply-memo eviction protocol).  Losing the
   frame only delays eviction until the server's LRU bound. *)
let finish_run h =
  Array.iteri
    (fun site touched ->
      if touched then begin
        h.h_touched.(site) <- false;
        post_control h.h_mux site (Wire.Run_done { run = h.h_run })
      end)
    h.h_touched

let reset_run h =
  finish_run h;
  h.h_run <- fresh_run_id ()

let tally_msg h msg =
  let y = Wire.tally msg in
  h.section_bytes <- h.section_bytes + y.Wire.section_bytes;
  h.sections <- h.sections + y.Wire.sections;
  h.frag_entries <- h.frag_entries + y.Wire.frag_entries;
  h.frames <- h.frames + 1

(* Telemetry for visit traffic only: stats/ping/control frames are
   excluded on both ends, so the client's counters and the sum of the
   servers' agree for a run (asserted in test_obs.ml). *)
let frame_obs h ~dir msg ~frame_len =
  let sink = sink_of h in
  if sink.Pax_obs.Sink.enabled then
    match msg with
    | Wire.Visit_request _ | Wire.Visit_reply _ ->
        let labels = [ ("dir", dir) ] in
        Pax_obs.Sink.count sink ~labels "pax_net_visit_frames_total";
        Pax_obs.Sink.count sink ~labels ~by:(float_of_int frame_len)
          "pax_net_visit_bytes_total"
    | _ -> ()

(* Send all requests first (sites start working in parallel), then
   collect replies in input order.  Any delivery failure drops the
   site's connection and reports to [retry] — which raises once the
   budget is gone — then reconnects and resends under a fresh
   correlation id; the server's per-round reply memo makes the resend
   safe, and a late reply to the abandoned id is dropped by the
   receiver.  Replies are matched by correlation id, so frames of other
   runs interleaved on the same socket are invisible here. *)
let visit_round h ~round ~label ~retry reqs =
  let t = h.h_mux in
  let attempts = Hashtbl.create 8 in
  let next_attempt site =
    let a = Option.value (Hashtbl.find_opt attempts site) ~default:1 in
    Hashtbl.replace attempts site (a + 1);
    a
  in
  let charge site e =
    retry ~site ~attempt:(next_attempt site) ~reason:(Printexc.to_string e)
  in
  let failed site e =
    drop t site;
    charge site e
  in
  let request site call ~parent =
    Wire.Visit_request
      { run = h.h_run; round; site; epoch = h.h_epoch; label; call; parent }
  in
  (* Each send allocates a fresh rpc-span id (None on the noop sink, so
     untraced frames carry no extension and stay byte-identical to
     pre-tracing builds), stamps it on the frame as trace context, and
     the collector below records the rpc span under that id once the
     reply lands — the site's visit span parent-links to it. *)
  let rec send site call =
    let rpc_id = Pax_obs.Sink.alloc (sink_of h) in
    let msg = request site call ~parent:rpc_id in
    match
      Pax_obs.Sink.span (sink_of h) ~cat:"wire" ?parent:rpc_id
        ~args:(fun () -> [ ("site", string_of_int site) ])
        "send frame"
        (fun () -> post t site msg)
    with
    | corr, p, frame_len ->
        h.sent_bytes <- h.sent_bytes + frame_len;
        h.h_touched.(site) <- true;
        frame_obs h ~dir:"sent" msg ~frame_len;
        tally_msg h msg;
        (corr, p, rpc_id)
    | exception ((Unix.Unix_error _ | Failure _) as e) ->
        failed site e;
        send site call
  in
  let started = Hashtbl.create 8 in
  let posted =
    List.map
      (fun (site, call) ->
        Hashtbl.replace started site (Pax_obs.Clock.now ());
        (site, call, ref (send site call)))
      reqs
  in
  let rec recv site call waiter =
    let corr, p, rpc_id = !waiter in
    match
      Pax_obs.Sink.span (sink_of h) ~cat:"wire" ?parent:rpc_id
        ~args:(fun () -> [ ("site", string_of_int site) ])
        "recv frame"
        (fun () -> await t corr p)
    with
    | Ok ((Wire.Visit_reply { run; round = r; reply } as msg), frame_len)
      when run = h.h_run && r = round -> (
        h.received_bytes <- h.received_bytes + frame_len;
        frame_obs h ~dir:"recv" msg ~frame_len;
        tally_msg h msg;
        match reply with
        | Ok rep -> rep
        | Error message when Wire.is_stale_epoch message ->
            (* The site fenced a fragment we routed to it: placement
               metadata is converging (a migration just landed).  The
               connection is healthy, so charge the retry budget
               without dropping it and resend — if routing is truly
               stale the budget runs out as the typed
               [Site_unreachable]. *)
            charge site (Failure message);
            waiter := send site call;
            recv site call waiter
        | Error message -> raise (Transport.Remote_failure { site; message }))
    | Ok _ ->
        (* The server echoed our correlation id on the wrong body:
           protocol violation — drop the connection and retry. *)
        failed site (Failure "correlated reply does not match its request");
        waiter := send site call;
        recv site call waiter
    | Error ((Unix.Unix_error _ | Failure _ | Sockio.Timeout) as e) ->
        failed site e;
        waiter := send site call;
        recv site call waiter
    | Error e -> raise e
  in
  List.map
    (fun (site, call, waiter) ->
      let reply = recv site call waiter in
      let t1 = Pax_obs.Clock.now () in
      let t0 = Option.value (Hashtbl.find_opt started site) ~default:t1 in
      (* The rpc span of the attempt that got the reply: the remote
         parent of the site's visit span in the merged trace. *)
      (match !waiter with
      | _, _, Some id ->
          Pax_obs.Sink.record (sink_of h) ~cat:"rpc" ~id
            ~args:
              [ ("site", string_of_int site); ("round", string_of_int round) ]
            label ~t0 ~t1
      | _ -> ());
      (site, reply, t1 -. t0))
    posted

let handle_transport h =
  let t = h.h_mux in
  {
    Transport.describe =
      Printf.sprintf "sockets: %s"
        (String.concat ", "
           (Array.to_list (Array.map Sockio.addr_to_string t.addrs)));
    visit_round = (fun ~round ~label ~retry reqs ->
        visit_round h ~round ~label ~retry reqs);
    stats = (fun () -> stats h);
    reset_run = (fun () -> reset_run h);
    close = (fun () -> finish_run h);
  }

(* The v1-compatible single-run view: one implicit handle per client,
   inheriting the client's sink. *)
let default_handle t =
  match t.default_handle with
  | Some h -> h
  | None ->
      let h = handle t in
      t.default_handle <- Some h;
      h

let transport t = handle_transport (default_handle t)

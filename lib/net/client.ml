module Wire = Pax_wire.Wire
module Transport = Pax_dist.Transport

type t = {
  addrs : Sockio.addr array;
  timeout : float;
  conns : Unix.file_descr option array;
  mutable run : int;
  mutable run_counter : int;
  mutable sent_bytes : int;
  mutable received_bytes : int;
  mutable section_bytes : int;
  mutable sections : int;
  mutable frag_entries : int;
  mutable frames : int;
}

let create ?(timeout = 30.) ~addrs () =
  {
    addrs;
    timeout;
    conns = Array.make (Array.length addrs) None;
    run = 0;
    run_counter = 0;
    sent_bytes = 0;
    received_bytes = 0;
    section_bytes = 0;
    sections = 0;
    frag_entries = 0;
    frames = 0;
  }

let stats t =
  {
    Transport.sent_bytes = t.sent_bytes;
    received_bytes = t.received_bytes;
    section_bytes = t.section_bytes;
    sections = t.sections;
    frag_entries = t.frag_entries;
    frames = t.frames;
  }

(* A fresh run id per engine run: servers key their visit state by it,
   so stale state from an aborted run can never leak in.  Best-effort
   unique (hash of pid, clock and a counter), non-negative for the
   varint encoding. *)
let reset_run t =
  t.run_counter <- t.run_counter + 1;
  t.run <-
    Hashtbl.hash (Unix.getpid (), Unix.gettimeofday (), t.run_counter)
    land max_int

let conn t site =
  match t.conns.(site) with
  | Some fd -> fd
  | None ->
      let fd = Sockio.connect t.addrs.(site) in
      t.conns.(site) <- Some fd;
      fd

let drop t site =
  match t.conns.(site) with
  | Some fd ->
      (try Unix.close fd with _ -> ());
      t.conns.(site) <- None
  | None -> ()

let tally_msg t msg ~payload_len =
  let y = Wire.tally msg in
  t.section_bytes <- t.section_bytes + y.Wire.section_bytes;
  t.sections <- t.sections + y.Wire.sections;
  t.frag_entries <- t.frag_entries + y.Wire.frag_entries;
  t.frames <- t.frames + 1;
  ignore payload_len

let send_msg t site msg =
  let payload = Wire.encode_payload msg in
  Sockio.write_frame (conn t site) payload;
  t.sent_bytes <- t.sent_bytes + 4 + String.length payload;
  tally_msg t msg ~payload_len:(String.length payload)

let recv_msg t site =
  match Sockio.read_frame ~timeout:t.timeout (conn t site) with
  | None -> failwith "connection closed by site server"
  | Some payload -> (
      t.received_bytes <- t.received_bytes + 4 + String.length payload;
      match Wire.decode_payload payload with
      | Ok msg ->
          tally_msg t msg ~payload_len:(String.length payload);
          msg
      | Error err -> failwith (Format.asprintf "%a" Wire.pp_error err))

(* Send all requests first (sites start working in parallel), then
   collect replies in input order.  Any delivery failure drops the
   connection and reports to [retry] — which raises once the budget is
   gone — then reconnects and resends; the server's per-round reply
   memo makes the resend safe. *)
let visit_round t ~round ~label ~retry reqs =
  let attempts = Hashtbl.create 8 in
  let next_attempt site =
    let a = Option.value (Hashtbl.find_opt attempts site) ~default:1 in
    Hashtbl.replace attempts site (a + 1);
    a
  in
  let failed site e =
    drop t site;
    retry ~site ~attempt:(next_attempt site) ~reason:(Printexc.to_string e)
  in
  let request site call =
    Wire.Visit_request { run = t.run; round; site; label; call }
  in
  let rec send site call =
    match send_msg t site (request site call) with
    | () -> ()
    | exception ((Unix.Unix_error _ | Failure _) as e) ->
        failed site e;
        send site call
  in
  let started = Hashtbl.create 8 in
  List.iter
    (fun (site, call) ->
      Hashtbl.replace started site (Unix.gettimeofday ());
      send site call)
    reqs;
  let rec recv site call =
    match recv_msg t site with
    | Wire.Visit_reply { run; round = r; reply }
      when run = t.run && r = round -> (
        match reply with
        | Ok rep -> rep
        | Error message -> raise (Transport.Remote_failure { site; message }))
    | Wire.Visit_reply _ | Wire.Pong | Wire.Ping | Wire.Shutdown
    | Wire.Visit_request _ ->
        (* A stale frame (earlier run or round, duplicated reply): skip. *)
        recv site call
    | exception ((Unix.Unix_error _ | Failure _ | Sockio.Timeout) as e) ->
        failed site e;
        send site call;
        recv site call
  in
  List.map
    (fun (site, call) ->
      let reply = recv site call in
      let t0 =
        Option.value (Hashtbl.find_opt started site)
          ~default:(Unix.gettimeofday ())
      in
      (site, reply, Unix.gettimeofday () -. t0))
    reqs

let close t = Array.iteri (fun site _ -> drop t site) t.conns

let shutdown_sites t =
  Array.iteri
    (fun site _ ->
      (try Sockio.write_frame (conn t site) (Wire.encode_payload Wire.Shutdown)
       with _ -> ());
      drop t site)
    t.conns

let transport t =
  {
    Transport.describe =
      Printf.sprintf "sockets: %s"
        (String.concat ", "
           (Array.to_list (Array.map Sockio.addr_to_string t.addrs)));
    visit_round = (fun ~round ~label ~retry reqs ->
        visit_round t ~round ~label ~retry reqs);
    stats = (fun () -> stats t);
    reset_run = (fun () -> reset_run t);
    close = (fun () -> close t);
  }

(** The coordinator's side of the socket transport: one connection per
    site, lazily opened, with visit requests pipelined across sites
    within a round and per-frame byte accounting.

    Failure semantics match the simulated cluster's: every failed
    delivery attempt (connect refusal, timeout, EOF, reset) goes
    through the round's [retry] callback, which charges the
    {!Pax_dist.Retry} budget and raises
    {!Pax_dist.Cluster.Site_unreachable} when it is exhausted.  A
    deterministic server-side error (an [Error] reply) raises
    {!Pax_dist.Transport.Remote_failure} instead — retrying cannot
    help.  Reconnect-and-resend is safe because servers memoize replies
    per (run, round). *)

type t

(** [create ~addrs] — a client for sites [0 .. n-1] at the given
    addresses.  [timeout] (seconds, default 30) bounds each wait for a
    reply frame. *)
val create : ?timeout:float -> addrs:Sockio.addr array -> unit -> t

(** The {!Pax_dist.Transport.t} view, to install with
    [Cluster.set_transport] (or pass to [Cluster.create]). *)
val transport : t -> Pax_dist.Transport.t

(** Best-effort [Shutdown] to every site (ignores delivery failures);
    then closes the connections. *)
val shutdown_sites : t -> unit

(** Close all connections (servers see EOF and await reconnection). *)
val close : t -> unit

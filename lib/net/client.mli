(** The coordinator's side of the socket transport: one persistent
    {e multiplexed} connection per site, lazily opened and shared by
    every run in the process.

    Protocol v2 stamps each request with a correlation id that the
    server echoes on the reply, so many in-flight runs share a socket:
    a dedicated receiver thread per connection reads every frame and
    deposits it into the per-request mailbox its correlation id names
    (docs/SERVING.md).  A {!handle} is one run's view of the shared
    connections — its own run id, byte counters and telemetry sink —
    and [visit_round]s of different handles interleave freely.

    Failure semantics match the simulated cluster's: every failed
    delivery attempt (connect refusal, timeout, EOF, reset) goes
    through the round's [retry] callback, which charges the
    {!Pax_dist.Retry} budget and raises
    {!Pax_dist.Cluster.Site_unreachable} when it is exhausted.  A
    deterministic server-side error (an [Error] reply) raises
    {!Pax_dist.Transport.Remote_failure} instead — retrying cannot
    help.  Reconnect-and-resend is safe because servers memoize replies
    per (run, round), and a late reply to an abandoned correlation id
    is dropped by the receiver.  Dropping a site's connection fails the
    other runs' requests in flight on it; they retry under their own
    budgets. *)

type t
(** The shared multiplexer. *)

type handle
(** One run's transport view over the shared connections.  Driven by
    one engine run at a time; create one per concurrent query. *)

(** [create ~addrs] — a client for sites [0 .. n-1] at the given
    addresses.  [timeout] (seconds, default 30) bounds each wait for a
    reply frame, enforced by the receiver threads. *)
val create : ?timeout:float -> addrs:Sockio.addr array -> unit -> t

(** Number of site servers this client multiplexes over. *)
val n_sites : t -> int

(** Install a telemetry sink (default: no-op) inherited by the default
    handle (and any {!handle} created without its own).  With an
    enabled sink every visit frame records a span (category ["wire"])
    and the counters [pax_net_visit_frames_total{dir}] /
    [pax_net_visit_bytes_total{dir}] — visit traffic only, mirroring
    the servers' counters, so the two ends agree for a run. *)
val set_sink : t -> Pax_obs.Sink.t -> unit

(** [fetch_stats t site] asks the site server for its telemetry
    counters ([Stats_request]/[Stats_reply]), returned as sorted
    [(series, value)] pairs.  Flows through the multiplexer like any
    request but touches no byte counter: fetching stats does not
    disturb the numbers being fetched.  Raises [Failure] (or the
    underlying [Unix.Unix_error]/{!Sockio.Timeout}) on connection loss
    or a malformed reply. *)
val fetch_stats : t -> int -> (string * float) list

(** [estimate_offset ~t0 ~t1 ~server_now] — how far a server clock
    that read [server_now] during an exchange sent at [t0] and
    answered by [t1] (both local readings) runs {e ahead} of the local
    clock, assuming symmetric transit: [server_now - (t0 + t1) / 2].
    The error is bounded by half the round trip.  Pure; deterministic
    under {!Pax_obs.Clock.Fake} (tested with known skews). *)
val estimate_offset : t0:float -> t1:float -> server_now:float -> float

(** [fetch_spans t site] drains the site server's span ring
    ([Spans_fetch]/[Spans_reply]) and estimates the site's clock
    offset from its own readings around the exchange ({!
    estimate_offset}).  Returns [(offset, spans)] ready to become a
    {!Pax_obs.Chrome.process} track in the merged Perfetto export.
    Raw telemetry IO like {!fetch_stats}: touches no byte counter.
    Raises on connection loss or a malformed reply. *)
val fetch_spans : t -> int -> float * Pax_obs.Span.span list

(** {1 Migration RPCs (docs/SHARDING.md)}

    Control plane like stats traffic: they flow through the
    multiplexer and interleave freely with in-flight visit rounds (the
    drain-free migration window), touch no per-run byte counters, and
    the servers ledger their volume under [pax_net_admin_*].  Each
    raises on connection loss or a malformed reply; application-level
    refusals come back as [Error _]. *)

(** Ask [site] for fragment [fid]'s wire image. *)
val frag_fetch :
  t ->
  site:int ->
  fid:int ->
  kind:Pax_wire.Wire.frag_kind ->
  (Pax_wire.Wire.frag_image, string) result

(** Install an image at [site], effective at placement [epoch];
    idempotent, clears the site's retirement fence for the fragment. *)
val frag_install :
  t ->
  site:int ->
  fid:int ->
  epoch:int ->
  image:Pax_wire.Wire.frag_image ->
  (string, string) result

(** Fence fragment [fid] at [site]: visits stamped [>= epoch] get the
    typed stale-epoch error; retained data keeps serving older runs. *)
val frag_retire :
  t ->
  site:int ->
  fid:int ->
  epoch:int ->
  kind:Pax_wire.Wire.frag_kind ->
  (string, string) result

(** {1 Generation coherence (docs/SERVING.md)}

    The streamed cache-invalidation feed: a coordinator that mutates a
    fragment ({!Pax_fragment.Update.apply}, a migration) publishes the
    fragment's new generation counter to its sites; each site
    max-merges and pushes a [Gen_event] to {e every} live connection,
    so every coordinator's stage cache sees the invalidation.  Same
    control-plane accounting as the migration RPCs. *)

(** Install the hook run (on receiver threads) for every unsolicited
    [Gen_event] push — typically [Pax_serve.Feed.attach]'s max-merge
    into the coordinator's local fragment tree.  At most one hook;
    installing again replaces it. *)
val on_gen_event :
  t -> (Pax_wire.Wire.frag_kind -> (int * int) list -> unit) -> unit

(** Announce [(fid, generation)] pairs to [site]; the site max-merges,
    acknowledges, and fans the event out to every live connection
    (publisher included — its own merge is a no-op). *)
val publish_gens :
  t ->
  site:int ->
  kind:Pax_wire.Wire.frag_kind ->
  (int * int) list ->
  (string, string) result

(** Pull [site]'s full generation vector (every fragment it has seen a
    nonzero generation for) — startup sync for a coordinator joining
    after updates have happened. *)
val fetch_gens :
  t -> site:int -> kind:Pax_wire.Wire.frag_kind -> (int * int) list

(** The {!Pax_dist.Transport.t} view of the client's {e default handle}
    — the v1-compatible single-run-at-a-time interface, to install with
    [Cluster.set_transport] (or pass to [Cluster.create]). *)
val transport : t -> Pax_dist.Transport.t

(** {1 Per-run handles} *)

(** A fresh handle with a fresh run id.  [sink] defaults to inheriting
    the client's (see {!set_sink}). *)
val handle : ?sink:Pax_obs.Sink.t -> t -> handle

val set_handle_sink : handle -> Pax_obs.Sink.t -> unit

(** Stamp the placement epoch carried on every subsequent visit request
    of this handle (default 0 = trivially fresh).  The serving layer
    sets it from its placement table at admission; a site that retired
    a fragment at epoch [e] refuses visits stamped [>= e] with the
    typed stale-epoch error, which is charged to the retry budget
    (placement may still be converging) rather than raised as a
    permanent remote failure. *)
val set_epoch : handle -> int -> unit

(** The {!Pax_dist.Transport.t} view of one handle.  Its [reset_run]
    sends best-effort [Run_done] for the finished run (servers evict
    that run's state) before drawing a fresh run id; its [close] sends
    [Run_done] without consuming the handle. *)
val handle_transport : handle -> Pax_dist.Transport.t

(** Best-effort [Run_done] for the handle's current run to every site
    it contacted — servers drop the run's stage state and reply memos.
    Idempotent; called by [handle_transport]'s [close] and [reset_run]. *)
val finish_run : handle -> unit

(** {1 Process-global ids} *)

(** A fresh run id: the low 32 bits come from a process-global
    monotonic counter (guaranteed distinct across rapid successive
    runs in one process), the bits above from a per-process random
    base ([/dev/urandom], pid-mixed), masked to the 55 bits the wire
    varint codec carries.  Exposed for the uniqueness test. *)
val fresh_run_id : unit -> int

(** {1 Teardown} *)

(** Best-effort [Shutdown] to every site (ignores delivery failures);
    then closes the connections. *)
val shutdown_sites : t -> unit

(** Close all connections (receiver threads exit, in-flight requests
    fail over to their retry budgets, servers see EOF and await
    reconnection). *)
val close : t -> unit

(** The coordinator's side of the socket transport: one connection per
    site, lazily opened, with visit requests pipelined across sites
    within a round and per-frame byte accounting.

    Failure semantics match the simulated cluster's: every failed
    delivery attempt (connect refusal, timeout, EOF, reset) goes
    through the round's [retry] callback, which charges the
    {!Pax_dist.Retry} budget and raises
    {!Pax_dist.Cluster.Site_unreachable} when it is exhausted.  A
    deterministic server-side error (an [Error] reply) raises
    {!Pax_dist.Transport.Remote_failure} instead — retrying cannot
    help.  Reconnect-and-resend is safe because servers memoize replies
    per (run, round). *)

type t

(** [create ~addrs] — a client for sites [0 .. n-1] at the given
    addresses.  [timeout] (seconds, default 30) bounds each wait for a
    reply frame. *)
val create : ?timeout:float -> addrs:Sockio.addr array -> unit -> t

(** Install a telemetry sink (default: no-op).  With an enabled sink
    every visit frame records a span (category ["wire"]) and the
    counters [pax_net_visit_frames_total{dir}] /
    [pax_net_visit_bytes_total{dir}] — visit traffic only, mirroring
    the servers' counters, so the two ends agree for a run. *)
val set_sink : t -> Pax_obs.Sink.t -> unit

(** [fetch_stats t site] asks the site server for its telemetry
    counters ([Stats_request]/[Stats_reply]), returned as sorted
    [(series, value)] pairs.  Uses raw socket IO: fetching stats does
    not disturb the client-side byte counters being compared.  Raises
    [Failure] on connection loss or a malformed reply. *)
val fetch_stats : t -> int -> (string * float) list

(** The {!Pax_dist.Transport.t} view, to install with
    [Cluster.set_transport] (or pass to [Cluster.create]). *)
val transport : t -> Pax_dist.Transport.t

(** A fresh run id: the low 32 bits come from a process-global
    monotonic counter (guaranteed distinct across rapid successive
    runs in one process), the bits above from a per-process random
    base ([/dev/urandom], pid-mixed), masked to the 55 bits the wire
    varint codec carries.  Exposed for the uniqueness test. *)
val fresh_run_id : unit -> int

(** Best-effort [Shutdown] to every site (ignores delivery failures);
    then closes the connections. *)
val shutdown_sites : t -> unit

(** Close all connections (servers see EOF and await reconnection). *)
val close : t -> unit

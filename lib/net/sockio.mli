(** Socket plumbing shared by the site server and the coordinator
    client: addresses, connect/listen, and framed reads/writes (a
    big-endian [u32] length prefix before every {!Wire} payload). *)

type addr =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp of string * int  (** host, port *)

(** ["unix:/path"], ["/abs/path"] (leading [/] or [.]), or
    ["host:port"]. *)
val addr_of_string : string -> (addr, string) result

val addr_to_string : addr -> string

(** Bind + listen (unlinking a stale Unix-socket path first).
    @raise Unix.Unix_error on failure. *)
val listen : ?backlog:int -> addr -> Unix.file_descr

val connect : addr -> Unix.file_descr

(** Raised by {!read_frame} when [timeout] elapses without a frame. *)
exception Timeout

(** [poll_readable fd t] waits at most [t] seconds for [fd] to become
    readable; [false] on timeout.  Nothing is consumed from the stream,
    so — unlike a mid-frame {!read_frame} timeout — a [false] is always
    safe to retry.  The demultiplexing {!Client} receiver polls with
    this before committing to a frame read. *)
val poll_readable : Unix.file_descr -> float -> bool

(** Per-connection read state: reuses the 4-byte length-header buffer
    across frames (the payload is still one exact-size allocation,
    frozen in place — never copied). *)
type reader

val reader : Unix.file_descr -> reader

(** [read_frame_r ?timeout r] reads one length-prefixed frame payload;
    [None] on orderly EOF before a frame starts.
    @raise Unix.Unix_error on connection errors
    @raise Timeout after [timeout] seconds (default: none)
    @raise Failure on an over-long or short frame *)
val read_frame_r : ?timeout:float -> reader -> string option

(** One-shot {!read_frame_r} with a transient {!reader}; long-lived
    connections (the server's accept loop, the client's receiver) hold
    a [reader] instead. *)
val read_frame : ?timeout:float -> Unix.file_descr -> string option

(** [write_frame fd payload] writes the length prefix and then the
    payload directly from the string — no frame-assembly copy.  Callers
    sharing a connection must serialize whole frames (they do: the
    client's per-site send lock, the server's per-connection loop).
    @raise Unix.Unix_error on connection errors (EPIPE included;
    [SIGPIPE] is disabled process-wide on first use of this module) *)
val write_frame : Unix.file_descr -> string -> unit

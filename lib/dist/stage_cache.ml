(* The cross-query cache seam: like Transport, a record of closures so
   pax_core can consult a cache without depending on the serving layer
   that implements one (lib/serve/cache.ml). *)

module Wire = Pax_wire.Wire

type t = {
  describe : string;
  lookup : qkey:string -> fid:int -> Wire.frag_result option;
  store : qkey:string -> fid:int -> Wire.frag_result -> unit;
}

let noop =
  {
    describe = "noop";
    lookup = (fun ~qkey:_ ~fid:_ -> None);
    store = (fun ~qkey:_ ~fid:_ _ -> ());
  }

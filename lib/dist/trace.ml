type endpoint = Coordinator | Site of int

type msg_kind = Query | Vectors | Resolution | Answers | Tree_data

type delivery = Delivered | Dropped | Duplicated | Delayed of float

type event =
  | Round_start of { round : int; label : string }
  | Visit of { site : int; round : int; attempt : int; replay : bool }
  | Message of {
      src : endpoint;
      dst : endpoint;
      kind : msg_kind;
      bytes : int;
      label : string;
      attempt : int;
      status : delivery;
    }
  | Retry of { site : int; round : int; attempt : int; reason : string }
  | Site_down of { site : int; round : int; attempt : int }
  | Site_restart of { site : int; round : int; attempt : int }
  | Gave_up of { site : int; round : int; attempts : int }

type t = { mutable events_rev : event list; mutable n : int }

let create () = { events_rev = []; n = 0 }

let clear t =
  t.events_rev <- [];
  t.n <- 0

let add t e =
  t.events_rev <- e :: t.events_rev;
  t.n <- t.n + 1

let events t = List.rev t.events_rev
let length t = t.n

(* (site, round) pairs the coordinator engaged, from any event that
   names a site in the context of a round. *)
let engagement = function
  | Visit { site; round; _ }
  | Retry { site; round; _ }
  | Site_down { site; round; _ }
  | Site_restart { site; round; _ }
  | Gave_up { site; round; attempts = _ } -> Some (site, round)
  | Round_start _ | Message _ -> None

let logical_pairs t =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match engagement e with
      | Some pair -> Hashtbl.replace seen pair ()
      | None -> ())
    t.events_rev;
  seen

let logical_visits t ~site =
  Hashtbl.fold
    (fun (s, _) () acc -> if s = site then acc + 1 else acc)
    (logical_pairs t) 0

let max_logical_visits t =
  let per_site = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (s, _) () ->
      Hashtbl.replace per_site s
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_site s)))
    (logical_pairs t);
  Hashtbl.fold (fun _ n acc -> max n acc) per_site 0

let physical_visits t ~site =
  List.fold_left
    (fun acc e ->
      match e with Visit v when v.site = site -> acc + 1 | _ -> acc)
    0 t.events_rev

let max_physical_visits t =
  let per_site = Hashtbl.create 16 in
  List.iter
    (function
      | Visit v ->
          Hashtbl.replace per_site v.site
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_site v.site))
      | _ -> ())
    t.events_rev;
  Hashtbl.fold (fun _ n acc -> max n acc) per_site 0

let retries t =
  List.fold_left
    (fun acc e -> match e with Retry _ -> acc + 1 | _ -> acc)
    0 t.events_rev

let rounds t =
  List.fold_left
    (fun acc e -> match e with Round_start _ -> acc + 1 | _ -> acc)
    0 t.events_rev

(* One logical message per [Cluster.send]: the attempt-1 record, however
   many retransmissions or spurious copies followed. *)
let logical_messages t =
  List.fold_left
    (fun acc e ->
      match e with Message m when m.attempt = 1 -> acc + 1 | _ -> acc)
    0 t.events_rev

(* Wire transmissions: every attempt crossed the wire (a Dropped copy
   was sent, just never arrived), and a Duplicated delivery put a
   spurious second copy on the wire. *)
let physical_of_status = function
  | Duplicated -> 2
  | Delivered | Dropped | Delayed _ -> 1

let physical_messages t =
  List.fold_left
    (fun acc e ->
      match e with
      | Message m -> acc + physical_of_status m.status
      | _ -> acc)
    0 t.events_rev

let physical_bytes t ~kind =
  List.fold_left
    (fun acc e ->
      match e with
      | Message m when m.kind = kind ->
          acc + (m.bytes * physical_of_status m.status)
      | _ -> acc)
    0 t.events_rev

let logical_bytes t ~kind =
  List.fold_left
    (fun acc e ->
      match e with
      | Message m when m.kind = kind && m.attempt = 1 -> acc + m.bytes
      | _ -> acc)
    0 t.events_rev

let logical_control_bytes t =
  logical_bytes t ~kind:Query
  + logical_bytes t ~kind:Vectors
  + logical_bytes t ~kind:Resolution

let pp_endpoint ppf = function
  | Coordinator -> Format.pp_print_string ppf "coord"
  | Site s -> Format.fprintf ppf "S%d" s

let kind_name = function
  | Query -> "query"
  | Vectors -> "vectors"
  | Resolution -> "resolution"
  | Answers -> "answers"
  | Tree_data -> "tree-data"

let status_name = function
  | Delivered -> "delivered"
  | Dropped -> "DROPPED"
  | Duplicated -> "delivered twice"
  | Delayed s -> Printf.sprintf "delayed %.4fs" s

let pp_event ppf = function
  | Round_start { round; label } ->
      Format.fprintf ppf "== round %d: %s" round label
  | Visit { site; round; attempt; replay } ->
      Format.fprintf ppf "visit S%d r%d attempt %d%s" site round attempt
        (if replay then " (replay)" else "")
  | Message { src; dst; kind; bytes; label; attempt; status } ->
      Format.fprintf ppf "%a -> %a %s %dB [%s] attempt %d: %s" pp_endpoint src
        pp_endpoint dst (kind_name kind) bytes label attempt
        (status_name status)
  | Retry { site; round; attempt; reason } ->
      Format.fprintf ppf "retry S%d r%d after attempt %d: %s" site round
        attempt reason
  | Site_down { site; round; attempt } ->
      Format.fprintf ppf "S%d DOWN (r%d attempt %d)" site round attempt
  | Site_restart { site; round; attempt } ->
      Format.fprintf ppf "S%d restarted (r%d attempt %d)" site round attempt
  | Gave_up { site; round; attempts } ->
      Format.fprintf ppf "GAVE UP on S%d r%d after %d attempts" site round
        attempts

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun e -> Format.fprintf ppf "%a@," pp_event e) (events t);
  Format.fprintf ppf "@]"

(** The cross-query result cache seam under the PaX engines.

    When a coordinator serves many queries over the same fragmented
    tree, stage-1 work repeats: the same (query, fragment) pair
    produces the same qualifier/selection vectors until that fragment
    is edited.  A [t] lets an engine consult such a cache without
    depending on the serving layer that implements it
    ({!Pax_serve.Cache} — which keys entries by the fragment's
    generation counter so {!Pax_frag.Update.apply} invalidates them;
    docs/SERVING.md).

    Correctness contract for implementations: [lookup] may return a
    {!Pax_wire.Wire.frag_result} only if it is bit-identical to what
    the site would compute fresh for that [qkey] and fragment {e now}.
    Engines only offer fully-resolved stage-1 results ([fr_cands = 0])
    to [store] — a fragment retaining unresolved candidates has
    server-side state a later stage must visit, which a cache hit would
    skip. *)

module Wire = Pax_wire.Wire

type t = {
  describe : string;  (** for banners and traces *)
  lookup : qkey:string -> fid:int -> Wire.frag_result option;
      (** [lookup ~qkey ~fid] — a previously stored, still-valid
          result, or [None]. *)
  store : qkey:string -> fid:int -> Wire.frag_result -> unit;
      (** Record a freshly computed result for later runs. *)
}

(** Never hits, never stores — the default. *)
val noop : t

(** Serialized sizes for everything the algorithms ship.

    The paper's communication bound is [O(|Q| |FT| + |ans|)]; these
    are the exact byte counts of the {!Pax_wire.Wire} sections the
    socket transport puts on the wire (payload + 4-byte section
    header), so accounted traffic and measured traffic coincide —
    see docs/NETWORK.md. *)

val query : Pax_xpath.Query.t -> int

(** A vector of residual formulas (a partial answer). *)
val formula_array : Pax_bool.Formula.t array -> int

(** A ground vector (a resolution message). *)
val bool_array : bool array -> int

(** A variable valuation sent back to a site. *)
val valuation : (Pax_bool.Var.t * bool) list -> int

(** Shipped answer elements (id + tag + text each). *)
val answers : Pax_xml.Tree.node list -> int

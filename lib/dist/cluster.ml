type endpoint = Coordinator | Site of int
type msg_kind = Query | Vectors | Resolution | Answers | Tree_data

type message = {
  src : endpoint;
  dst : endpoint;
  kind : msg_kind;
  bytes : int;
  label : string;
}

type round = { r_label : string; seconds : float array; ops : int array }

type t = {
  ft : Pax_frag.Fragment.t;
  n_sites : int;
  frag_site : int array;
  site_frags : int list array;
  mutable messages_rev : message list;
  visits : int array;
  mutable rounds_rev : round list;
  mutable current : round option;
  mutable coord_seconds : float;
  mutable coord_ops : int;
}

let create ~ftree ~n_sites ~assign =
  if n_sites < 1 then invalid_arg "Cluster.create: need at least one site";
  let n_frag = Pax_frag.Fragment.n_fragments ftree in
  let frag_site = Array.init n_frag assign in
  Array.iter
    (fun s ->
      if s < 0 || s >= n_sites then invalid_arg "Cluster.create: bad site index")
    frag_site;
  let site_frags = Array.make n_sites [] in
  for fid = n_frag - 1 downto 0 do
    site_frags.(frag_site.(fid)) <- fid :: site_frags.(frag_site.(fid))
  done;
  {
    ft = ftree;
    n_sites;
    frag_site;
    site_frags;
    messages_rev = [];
    visits = Array.make n_sites 0;
    rounds_rev = [];
    current = None;
    coord_seconds = 0.;
    coord_ops = 0;
  }

let one_site_per_fragment ftree =
  let n = Pax_frag.Fragment.n_fragments ftree in
  create ~ftree ~n_sites:n ~assign:Fun.id

let ftree t = t.ft
let n_sites t = t.n_sites
let site_of t fid = t.frag_site.(fid)
let fragments_on t site = t.site_frags.(site)

let sites_holding t fids =
  List.sort_uniq compare (List.map (fun fid -> t.frag_site.(fid)) fids)

let run_round t ~label ~sites f =
  let r = { r_label = label; seconds = Array.make t.n_sites 0.; ops = Array.make t.n_sites 0 } in
  t.current <- Some r;
  let results =
    List.map
      (fun site ->
        t.visits.(site) <- t.visits.(site) + 1;
        let t0 = Unix.gettimeofday () in
        let result = f site in
        r.seconds.(site) <- r.seconds.(site) +. (Unix.gettimeofday () -. t0);
        (site, result))
      sites
  in
  t.current <- None;
  t.rounds_rev <- r :: t.rounds_rev;
  results

let coord t ~label:_ f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  t.coord_seconds <- t.coord_seconds +. (Unix.gettimeofday () -. t0);
  result

let send t ~src ~dst ~kind ~bytes ~label =
  t.messages_rev <- { src; dst; kind; bytes; label } :: t.messages_rev

let add_ops t ~site n =
  if site < 0 then t.coord_ops <- t.coord_ops + n
  else
    match t.current with
    | Some r -> r.ops.(site) <- r.ops.(site) + n
    | None -> ()

let reset t =
  t.messages_rev <- [];
  Array.fill t.visits 0 t.n_sites 0;
  t.rounds_rev <- [];
  t.current <- None;
  t.coord_seconds <- 0.;
  t.coord_ops <- 0

type report = {
  parallel_seconds : float;
  total_seconds : float;
  coord_seconds : float;
  parallel_ops : int;
  total_ops : int;
  visits : int array;
  max_visits : int;
  rounds : string list;
  control_bytes : int;
  answer_bytes : int;
  tree_bytes : int;
  n_messages : int;
  net_seconds : float;
}

let report t =
  let rounds = List.rev t.rounds_rev in
  let fmax a = Array.fold_left max 0. a in
  let fsum a = Array.fold_left ( +. ) 0. a in
  let imax a = Array.fold_left max 0 a in
  let isum a = Array.fold_left ( + ) 0 a in
  let parallel_seconds =
    List.fold_left (fun acc r -> acc +. fmax r.seconds) t.coord_seconds rounds
  in
  let total_seconds =
    List.fold_left (fun acc r -> acc +. fsum r.seconds) t.coord_seconds rounds
  in
  let parallel_ops =
    List.fold_left (fun acc r -> acc + imax r.ops) t.coord_ops rounds
  in
  let total_ops =
    List.fold_left (fun acc r -> acc + isum r.ops) t.coord_ops rounds
  in
  let control_bytes, answer_bytes, tree_bytes =
    List.fold_left
      (fun (c, d, f) m ->
        match m.kind with
        | Answers -> (c, d + m.bytes, f)
        | Tree_data -> (c, d, f + m.bytes)
        | Query | Vectors | Resolution -> (c + m.bytes, d, f))
      (0, 0, 0) t.messages_rev
  in
  (* LAN-like wire model: 0.1 ms per message plus 100 MB/s. *)
  let net_seconds =
    List.fold_left
      (fun acc m -> acc +. 0.0001 +. (float_of_int m.bytes /. 100_000_000.))
      0. t.messages_rev
  in
  {
    parallel_seconds;
    total_seconds;
    coord_seconds = t.coord_seconds;
    parallel_ops;
    total_ops;
    visits = Array.copy t.visits;
    max_visits = imax t.visits;
    rounds = List.map (fun r -> r.r_label) rounds;
    control_bytes;
    answer_bytes;
    tree_bytes;
    n_messages = List.length t.messages_rev;
    net_seconds;
  }

let messages t = List.rev t.messages_rev

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>parallel: %.4fs (%d ops)@,total:    %.4fs (%d ops)@,\
     coordinator: %.4fs@,visits: [%s] (max %d)@,rounds: %s@,\
     traffic: %d control + %d answer + %d tree bytes in %d messages (net %.4fs)@]"
    r.parallel_seconds r.parallel_ops r.total_seconds r.total_ops
    r.coord_seconds
    (String.concat "; " (Array.to_list (Array.map string_of_int r.visits)))
    r.max_visits
    (String.concat " -> " r.rounds)
    r.control_bytes r.answer_bytes r.tree_bytes r.n_messages r.net_seconds

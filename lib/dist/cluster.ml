type endpoint = Trace.endpoint = Coordinator | Site of int

type msg_kind = Trace.msg_kind =
  | Query
  | Vectors
  | Resolution
  | Answers
  | Tree_data

type message = {
  src : endpoint;
  dst : endpoint;
  kind : msg_kind;
  bytes : int;
  label : string;
}

exception Site_unreachable of { site : int; stage : string; attempts : int }

type round = { r_label : string; seconds : float array; ops : int array }

type t = {
  (* [None] for abstract clusters ([create_abstract]): engines over
     non-tree datasets (e.g. graph fragment stores) reuse the visit /
     message / retry machinery; only the XPath engines need the
     fragment tree itself. *)
  ft : Pax_frag.Fragment.t option;
  n_frags : int;
  n_sites : int;
  frag_site : int array;
  site_frags : int list array;
  mutable messages_rev : message list;
  visits : int array;
  (* Per-fragment hotness: how many round-participations listed each
     fragment (counted in [sites_holding], the single chokepoint every
     engine routes fragment→site lookups through).  The serving layer
     harvests this into its placement table after each run; the
     rebalancer's move policy is driven by it (docs/SHARDING.md). *)
  frag_touches : int array;
  (* Placement epoch of the table this cluster's [assign] was
     snapshotted from (0 = no placement table).  Reporting only — the
     transport handle carries the epoch that servers check. *)
  mutable epoch : int;
  mutable rounds_rev : round list;
  mutable current : round option;
  mutable coord_seconds : float;
  mutable coord_ops : int;
  trace : Trace.t;
  mutable fault : Fault.t;
  mutable retry : Retry.t;
  mutable round_no : int;
  mutable retries : int;
  mutable backoff_seconds : float;
  mutable domains : int;
  mutable transport : Transport.t option;
  mutable stage_cache : Stage_cache.t;
  mutable net_base : Transport.stats;
  mutable forced_sequential : bool;
  mutable sink : Pax_obs.Sink.t;
  (* Simulated per-visit service latency (seconds), the in-process
     mirror of [Pax_net.Server]'s [service_delay]: charged into the
     visited site's round seconds once per *physical* visit execution
     (replays under a fault plan pay again), never slept.  Affects only
     the simulated-time fields of the report — answers, visit counts,
     traces and accounted traffic are bit-identical. *)
  mutable service_delay : float;
}

let site_track site = Printf.sprintf "site %d" site
let enabled t = t.sink.Pax_obs.Sink.enabled

(* ------------------------------------------------------------------ *)
(* Parallel visits: per-visit effect logs                             *)
(* ------------------------------------------------------------------ *)

(* When a round runs on the domain pool, the shared accumulators (trace,
   message list, coordinator ops) must not be touched from worker
   domains.  Instead each visit records its effects into a private log,
   installed in domain-local storage for the duration of the visit;
   [send] and [add_ops] divert to it transparently.  At the round
   barrier the logs are merged in site order, which reproduces the
   sequential event order bit for bit — a parallel run is
   distinguishable from a sequential one only by wall-clock. *)
type visit_log = {
  mutable vl_events_rev : Trace.event list;
  mutable vl_msgs_rev : message list;
  mutable vl_coord_ops : int;
  mutable vl_seconds : float;
}

let fresh_log () =
  { vl_events_rev = []; vl_msgs_rev = []; vl_coord_ops = 0; vl_seconds = 0. }

let dls_log : visit_log option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_log () = !(Domain.DLS.get dls_log)

let default_domains () =
  match Sys.getenv_opt "PAX_DOMAINS" with
  | Some s -> (
      match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

let create_gen ?domains ?transport ~ft ~n_frags ~n_sites ~assign () =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  if domains < 1 then invalid_arg "Cluster.create: need domains >= 1";
  if n_sites < 1 then invalid_arg "Cluster.create: need at least one site";
  let n_frag = n_frags in
  let frag_site = Array.init n_frag assign in
  Array.iter
    (fun s ->
      if s < 0 || s >= n_sites then invalid_arg "Cluster.create: bad site index")
    frag_site;
  let site_frags = Array.make n_sites [] in
  for fid = n_frag - 1 downto 0 do
    site_frags.(frag_site.(fid)) <- fid :: site_frags.(frag_site.(fid))
  done;
  {
    ft;
    n_frags;
    n_sites;
    frag_site;
    site_frags;
    messages_rev = [];
    visits = Array.make n_sites 0;
    frag_touches = Array.make n_frag 0;
    epoch = 0;
    rounds_rev = [];
    current = None;
    coord_seconds = 0.;
    coord_ops = 0;
    trace = Trace.create ();
    fault = Fault.none;
    retry = Retry.default;
    round_no = 0;
    retries = 0;
    backoff_seconds = 0.;
    domains;
    transport;
    stage_cache = Stage_cache.noop;
    net_base = Transport.zero_stats;
    forced_sequential = false;
    sink = Pax_obs.Sink.noop;
    service_delay = 0.;
  }

let create ?domains ?transport ~ftree ~n_sites ~assign () =
  create_gen ?domains ?transport ~ft:(Some ftree)
    ~n_frags:(Pax_frag.Fragment.n_fragments ftree)
    ~n_sites ~assign ()

let create_abstract ?domains ?transport ~n_frags ~n_sites ~assign () =
  if n_frags < 1 then
    invalid_arg "Cluster.create_abstract: need at least one fragment";
  create_gen ?domains ?transport ~ft:None ~n_frags ~n_sites ~assign ()

let one_site_per_fragment ?domains ftree =
  let n = Pax_frag.Fragment.n_fragments ftree in
  create ?domains ~ftree ~n_sites:n ~assign:Fun.id ()

let ftree t =
  match t.ft with
  | Some ft -> ft
  | None ->
      invalid_arg "Cluster.ftree: abstract cluster holds no fragment tree"

let n_frags t = t.n_frags
let n_sites t = t.n_sites
let domains t = t.domains

let set_domains t d =
  if d < 1 then invalid_arg "Cluster.set_domains: need domains >= 1";
  t.domains <- d
let site_of t fid = t.frag_site.(fid)
let fragments_on t site = t.site_frags.(site)

let sites_holding t fids =
  List.iter
    (fun fid ->
      t.frag_touches.(fid) <- t.frag_touches.(fid) + 1;
      if enabled t then
        Pax_obs.Sink.count t.sink
          ~labels:[ ("fid", string_of_int fid) ]
          "pax_site_fragment_visits_total")
    fids;
  List.sort_uniq compare (List.map (fun fid -> t.frag_site.(fid)) fids)

let frag_touches t = Array.copy t.frag_touches
let epoch t = t.epoch
let set_epoch t e = t.epoch <- e

let trace t = t.trace
let sink t = t.sink
let set_sink t s = t.sink <- s
let set_fault t plan = t.fault <- plan
let set_retry t policy = t.retry <- policy
let fault_active t = not (Fault.is_none t.fault)
let set_transport t tr = t.transport <- tr
let transport_active t = Option.is_some t.transport
let set_stage_cache t c = t.stage_cache <- c
let stage_cache t = t.stage_cache

let set_service_delay t d =
  if d < 0. then invalid_arg "Cluster.set_service_delay: negative delay";
  t.service_delay <- d

let service_delay t = t.service_delay
let cur_net_stats t = Option.map (fun tr -> tr.Transport.stats ()) t.transport

let net_stats t =
  Option.map (fun cur -> Transport.diff_stats cur t.net_base) (cur_net_stats t)

(* Back off before the next attempt (simulated time only) and record the
   retry, or raise once the policy's budget is exhausted. *)
let retry_or_give_up t ~site ~round ~stage ~attempt ~reason =
  if Retry.should_retry t.retry ~attempt then begin
    t.retries <- t.retries + 1;
    t.backoff_seconds <-
      t.backoff_seconds +. Retry.delay_before t.retry ~attempt:(attempt + 1);
    Pax_obs.Sink.count t.sink "pax_retries_total";
    Trace.add t.trace (Trace.Retry { site; round; attempt; reason })
  end
  else begin
    Trace.add t.trace (Trace.Gave_up { site; round; attempts = attempt });
    raise (Site_unreachable { site; stage; attempts = attempt })
  end

(* One (site, round) visit under the fault plan: deliver the request,
   execute, deliver the reply — any leg may fail and be retried.  A lost
   reply makes the site re-execute [f] on the next delivery, so [f] must
   be (and the engines are) idempotent per round. *)
let visit_site t r ~round ~label ~site f =
  let executed = ref false in
  let rec go ~was_down attempt =
    let restart_if_needed () =
      if was_down then
        Trace.add t.trace (Trace.Site_restart { site; round; attempt })
    in
    match Fault.on_visit t.fault ~site ~round ~attempt with
    | Fault.Down ->
        Trace.add t.trace (Trace.Site_down { site; round; attempt });
        retry_or_give_up t ~site ~round ~stage:label ~attempt
          ~reason:"site down";
        go ~was_down:true (attempt + 1)
    | Fault.Lost_request ->
        restart_if_needed ();
        retry_or_give_up t ~site ~round ~stage:label ~attempt
          ~reason:"visit request dropped";
        go ~was_down:false (attempt + 1)
    | (Fault.Visit_ok | Fault.Lost_reply) as fate ->
        restart_if_needed ();
        let replay = !executed in
        Trace.add t.trace (Trace.Visit { site; round; attempt; replay });
        executed := true;
        let t0 = Pax_obs.Clock.now () in
        let result = f site in
        let t1 = Pax_obs.Clock.now () in
        (* Each physical execution pays the simulated service latency:
           a replay forced by a lost reply is served again. *)
        r.seconds.(site) <- r.seconds.(site) +. (t1 -. t0) +. t.service_delay;
        if enabled t then
          Pax_obs.Sink.record t.sink ~cat:"visit" ~track:(site_track site)
            ~args:
              [
                ("round", string_of_int round);
                ("attempt", string_of_int attempt);
                ("replay", string_of_bool replay);
              ]
            label ~t0 ~t1;
        if fate = Fault.Lost_reply then begin
          retry_or_give_up t ~site ~round ~stage:label ~attempt
            ~reason:"visit reply dropped";
          go ~was_down:false (attempt + 1)
        end
        else result
  in
  go ~was_down:false 1

(* The parallel path: fan the visits out over the shared pool, one task
   per site, each diverting its effects into a private [visit_log]; then
   merge the logs at the barrier in input-site order.  Only taken with
   no fault plan installed, so a visit is exactly: one [Visit] event,
   then [f site].  If visits raised, the logs are still merged up to and
   including the first failing site (in site order, not completion
   order) and that site's exception is re-raised — the observable state
   matches a sequential run that died at the same site. *)
let run_round_parallel t r ~round ~label ~sites f =
  let sites_arr = Array.of_list sites in
  let n = Array.length sites_arr in
  let logs = Array.init n (fun _ -> fresh_log ()) in
  let outcomes = Array.make n None in
  let pool = Pool.shared ~domains:t.domains in
  Pool.run ~obs:t.sink pool ~n (fun i ->
      let log = logs.(i) in
      let slot = Domain.DLS.get dls_log in
      slot := Some log;
      let t0 = Pax_obs.Clock.now () in
      let out =
        match f sites_arr.(i) with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      let t1 = Pax_obs.Clock.now () in
      log.vl_seconds <- t1 -. t0;
      if enabled t then
        Pax_obs.Sink.record t.sink ~cat:"visit"
          ~track:(site_track sites_arr.(i))
          ~args:[ ("round", string_of_int round); ("attempt", "1") ]
          label ~t0 ~t1;
      slot := None;
      outcomes.(i) <- Some out);
  let results = ref [] in
  let failure = ref None in
  let i = ref 0 in
  while Option.is_none !failure && !i < n do
    let site = sites_arr.(!i) in
    let log = logs.(!i) in
    t.visits.(site) <- t.visits.(site) + 1;
    Trace.add t.trace (Trace.Visit { site; round; attempt = 1; replay = false });
    List.iter (Trace.add t.trace) (List.rev log.vl_events_rev);
    List.iter
      (fun m -> t.messages_rev <- m :: t.messages_rev)
      (List.rev log.vl_msgs_rev);
    t.coord_ops <- t.coord_ops + log.vl_coord_ops;
    r.seconds.(site) <- r.seconds.(site) +. log.vl_seconds +. t.service_delay;
    (match outcomes.(!i) with
    | Some (Ok v) -> results := (site, v) :: !results
    | Some (Error (e, bt)) -> failure := Some (e, bt)
    | None -> assert false);
    incr i
  done;
  match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> List.rev !results

type 'a remote = {
  build : int -> Pax_wire.Wire.call;
  parse : int -> Pax_wire.Wire.reply -> 'a;
}

(* The socket path: requests are built up front, the transport moves
   them (pipelined across sites), and replies are parsed over the
   domain pool when one is configured — parse callbacks only touch
   their own site's state (per-fragment view cells, per-site op
   counters, mutexed caches), so the only synchronization needed is
   the input-site-order merge of seconds and spans afterwards.
   Delivery failures come back through [retry], which shares the
   budget/trace machinery with the simulated fault path — except that
   here the backoff is physically slept, since a restarting server
   needs the wall-clock time. *)
let run_round_net t tr r ~round ~label ~sites (rm : 'a remote) =
  if not (Fault.is_none t.fault) then
    invalid_arg
      "Cluster: simulated fault plans apply to the in-process transport only";
  List.iter
    (fun site ->
      t.visits.(site) <- t.visits.(site) + 1;
      Trace.add t.trace (Trace.Visit { site; round; attempt = 1; replay = false }))
    sites;
  let reqs = List.map (fun site -> (site, rm.build site)) sites in
  let retry ~site ~attempt ~reason =
    retry_or_give_up t ~site ~round ~stage:label ~attempt ~reason;
    Unix.sleepf (Retry.delay_before t.retry ~attempt:(attempt + 1))
  in
  let replies = Array.of_list (tr.Transport.visit_round ~round ~label ~retry reqs) in
  let parsed =
    (* [Pool.map] re-raises the smallest failing index's exception
       after the barrier, so a decode failure is observed at the same
       reply as on the sequential path. *)
    if t.domains > 1 && Array.length replies > 1 then
      Pool.map
        (Pool.shared ~domains:t.domains)
        (fun (site, reply, _) -> rm.parse site reply)
        replies
    else Array.map (fun (site, reply, _) -> rm.parse site reply) replies
  in
  List.mapi
    (fun i (site, _, secs) ->
      r.seconds.(site) <- r.seconds.(site) +. secs;
      (* Remote visits run pipelined inside the transport, so spans are
         synthesized at merge time from the server-side duration: the
         interval ends "now" and lasted [secs]. *)
      if enabled t then begin
        let t1 = Pax_obs.Clock.now () in
        Pax_obs.Sink.record t.sink ~cat:"visit" ~track:(site_track site)
          ~args:[ ("round", string_of_int round); ("remote", "true") ]
          label ~t0:(t1 -. secs) ~t1
      end;
      (site, parsed.(i)))
    (Array.to_list replies)

let run_round ?remote t ~label ~sites f =
  let round = t.round_no in
  t.round_no <- round + 1;
  Trace.add t.trace (Trace.Round_start { round; label });
  let r =
    {
      r_label = label;
      seconds = Array.make t.n_sites 0.;
      ops = Array.make t.n_sites 0;
    }
  in
  t.current <- Some r;
  (* One visit per (site, round), even if a caller lists a site twice;
     results come back in this deduplicated input order. *)
  let seen = Hashtbl.create 8 in
  let sites =
    List.filter
      (fun s ->
        if Hashtbl.mem seen s then false
        else begin
          Hashtbl.add seen s ();
          true
        end)
      sites
  in
  let dispatch () =
    match (t.transport, remote) with
    | Some tr, Some rm -> run_round_net t tr r ~round ~label ~sites rm
    | Some _, None ->
        invalid_arg
          (Printf.sprintf
             "Cluster.run_round: stage %S has no remote implementation for \
              the socket transport"
             label)
    | None, _ ->
        (* Fault plans stay on the sequential path: their schedules are
           deterministic functions of the exact visit/attempt order,
           which parallel execution would scramble.  Record the forced
           downgrade so reports and trace headers can say so. *)
        if t.domains > 1 && List.length sites > 1 && Fault.is_none t.fault then
          run_round_parallel t r ~round ~label ~sites f
        else begin
          if t.domains > 1 && not (Fault.is_none t.fault) then
            t.forced_sequential <- true;
          List.map
            (fun site ->
              t.visits.(site) <- t.visits.(site) + 1;
              (site, visit_site t r ~round ~label ~site f))
            sites
        end
  in
  let results =
    if not (enabled t) then dispatch ()
    else begin
      Pax_obs.Sink.count t.sink "pax_rounds_total";
      List.iter
        (fun site ->
          Pax_obs.Sink.count t.sink
            ~labels:[ ("site", string_of_int site) ]
            "pax_visits_total")
        sites;
      let t0 = Pax_obs.Clock.now () in
      let finish () =
        let t1 = Pax_obs.Clock.now () in
        Pax_obs.Sink.record t.sink ~cat:"round"
          ~args:
            [
              ("round", string_of_int round);
              ("sites", string_of_int (List.length sites));
            ]
          ("round " ^ label) ~t0 ~t1;
        Pax_obs.Sink.observe t.sink "pax_round_seconds" (t1 -. t0)
      in
      match dispatch () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e
    end
  in
  t.current <- None;
  t.rounds_rev <- r :: t.rounds_rev;
  results

let coord t ~label f =
  let t0 = Pax_obs.Clock.now () in
  let result = f () in
  let t1 = Pax_obs.Clock.now () in
  t.coord_seconds <- t.coord_seconds +. (t1 -. t0);
  if enabled t then Pax_obs.Sink.record t.sink ~cat:"stage" label ~t0 ~t1;
  result

let send t ~src ~dst ~kind ~bytes ~label =
  if enabled t then begin
    (* One logical message per send, whatever the fault plan does to its
       delivery; the metrics mirror Trace's logical accounting. *)
    let labels = [ ("kind", Trace.kind_name kind) ] in
    Pax_obs.Sink.count t.sink ~labels "pax_messages_total";
    Pax_obs.Sink.count t.sink ~labels ~by:(float_of_int bytes)
      "pax_message_bytes_total"
  end;
  let record () = t.messages_rev <- { src; dst; kind; bytes; label } :: t.messages_rev in
  match current_log () with
  | Some log ->
      (* Inside a pooled visit: divert to the visit's private log.  The
         parallel path is only taken fault-free, so the message is
         simply delivered. *)
      log.vl_msgs_rev <- { src; dst; kind; bytes; label } :: log.vl_msgs_rev;
      log.vl_events_rev <-
        Trace.Message
          { src; dst; kind; bytes; label; attempt = 1; status = Trace.Delivered }
        :: log.vl_events_rev
  | None ->
  if Fault.is_none t.fault then begin
    record ();
    Trace.add t.trace
      (Trace.Message
         { src; dst; kind; bytes; label; attempt = 1; status = Trace.Delivered })
  end
  else begin
    (* Sends logically belong to the round just run (or 0 before any). *)
    let round = max 0 (t.round_no - 1) in
    let site =
      match (dst, src) with Site s, _ | _, Site s -> s | _ -> -1
    in
    let rec go attempt =
      let ctx =
        {
          Fault.m_src = src;
          m_dst = dst;
          m_kind = kind;
          m_label = label;
          m_round = round;
          m_attempt = attempt;
        }
      in
      let status =
        match Fault.on_message t.fault ctx with
        | Fault.Deliver -> Trace.Delivered
        | Fault.Drop -> Trace.Dropped
        | Fault.Duplicate -> Trace.Duplicated
        | Fault.Delay s -> Trace.Delayed s
      in
      record ();
      Trace.add t.trace
        (Trace.Message { src; dst; kind; bytes; label; attempt; status });
      match status with
      | Trace.Delivered -> ()
      | Trace.Duplicated ->
          (* The spurious copy also crossed the wire. *)
          record ()
      | Trace.Delayed s -> t.backoff_seconds <- t.backoff_seconds +. s
      | Trace.Dropped ->
          retry_or_give_up t ~site ~round ~stage:label ~attempt
            ~reason:("message dropped: " ^ label);
          go (attempt + 1)
    in
    go 1
  end

let add_ops t ~site n =
  if site < 0 then
    (* Coordinator ops from inside a pooled visit go to the visit log
       (the shared counter is not safe from worker domains). *)
    match current_log () with
    | Some log -> log.vl_coord_ops <- log.vl_coord_ops + n
    | None -> t.coord_ops <- t.coord_ops + n
  else
    (* Per-site ops are safe from workers as long as visit work only
       charges its own site (the engines do): distinct sites write
       distinct cells. *)
    match t.current with
    | Some r -> r.ops.(site) <- r.ops.(site) + n
    | None -> ()

let reset t =
  t.messages_rev <- [];
  Array.fill t.visits 0 t.n_sites 0;
  Array.fill t.frag_touches 0 t.n_frags 0;
  t.rounds_rev <- [];
  t.current <- None;
  t.coord_seconds <- 0.;
  t.coord_ops <- 0;
  Trace.clear t.trace;
  t.round_no <- 0;
  t.retries <- 0;
  t.backoff_seconds <- 0.;
  t.forced_sequential <- false;
  Pax_obs.Sink.clear t.sink;
  match t.transport with
  | Some tr ->
      tr.Transport.reset_run ();
      t.net_base <- tr.Transport.stats ()
  | None -> ()

type report = {
  parallel_seconds : float;
  total_seconds : float;
  coord_seconds : float;
  parallel_ops : int;
  total_ops : int;
  visits : int array;
  max_visits : int;
  retries : int;
  rounds : string list;
  control_bytes : int;
  answer_bytes : int;
  tree_bytes : int;
  n_messages : int;
  net_seconds : float;
  measured_bytes : int option;
  forced_sequential : bool;
}

let report t =
  let rounds = List.rev t.rounds_rev in
  let fmax a = Array.fold_left max 0. a in
  let fsum a = Array.fold_left ( +. ) 0. a in
  let imax a = Array.fold_left max 0 a in
  let isum a = Array.fold_left ( + ) 0 a in
  let parallel_seconds =
    List.fold_left (fun acc r -> acc +. fmax r.seconds) t.coord_seconds rounds
  in
  let total_seconds =
    List.fold_left (fun acc r -> acc +. fsum r.seconds) t.coord_seconds rounds
  in
  let parallel_ops =
    List.fold_left (fun acc r -> acc + imax r.ops) t.coord_ops rounds
  in
  let total_ops =
    List.fold_left (fun acc r -> acc + isum r.ops) t.coord_ops rounds
  in
  let control_bytes, answer_bytes, tree_bytes =
    List.fold_left
      (fun (c, d, f) m ->
        match m.kind with
        | Answers -> (c, d + m.bytes, f)
        | Tree_data -> (c, d, f + m.bytes)
        | Query | Vectors | Resolution -> (c + m.bytes, d, f))
      (0, 0, 0) t.messages_rev
  in
  (* LAN-like wire model: 0.1 ms per message plus 100 MB/s, plus any
     simulated retry backoff and injected delays. *)
  let net_seconds =
    List.fold_left
      (fun acc m -> acc +. 0.0001 +. (float_of_int m.bytes /. 100_000_000.))
      t.backoff_seconds t.messages_rev
  in
  {
    parallel_seconds;
    total_seconds;
    coord_seconds = t.coord_seconds;
    parallel_ops;
    total_ops;
    visits = Array.copy t.visits;
    max_visits = imax t.visits;
    retries = t.retries;
    rounds = List.map (fun r -> r.r_label) rounds;
    control_bytes;
    answer_bytes;
    tree_bytes;
    n_messages = List.length t.messages_rev;
    net_seconds;
    measured_bytes =
      Option.map
        (fun (s : Transport.stats) -> s.sent_bytes + s.received_bytes)
        (net_stats t);
    forced_sequential = t.forced_sequential;
  }

let messages t = List.rev t.messages_rev

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>parallel: %.4fs (%d ops)@,total:    %.4fs (%d ops)@,\
     coordinator: %.4fs@,visits: [%s] (max %d)%s@,rounds: %s%s@,\
     traffic: %d control + %d answer + %d tree bytes in %d messages (net %.4fs)%s@]"
    r.parallel_seconds r.parallel_ops r.total_seconds r.total_ops
    r.coord_seconds
    (String.concat "; " (Array.to_list (Array.map string_of_int r.visits)))
    r.max_visits
    (if r.retries > 0 then Printf.sprintf " after %d retries" r.retries else "")
    (String.concat " -> " r.rounds)
    (if r.forced_sequential then " [sequential: fault plan overrode domains]"
     else "")
    r.control_bytes r.answer_bytes r.tree_bytes r.n_messages r.net_seconds
    (match r.measured_bytes with
    | Some b -> Printf.sprintf "; measured on wire: %d bytes" b
    | None -> "")

(* Control-message sizes use the real wire codec (Pax_bool.Codec); the
   4-byte additions stand for a message header. *)

let query q = 4 + (8 * Pax_xpath.Query.size q)
let formula_array fs = 4 + Pax_bool.Codec.formula_array_bytes fs
let bool_array bs = 4 + Pax_bool.Codec.bool_array_bytes bs

let valuation vs =
  List.fold_left (fun acc (v, _) -> acc + 1 + Pax_bool.Var.byte_size v) 4 vs

let answers nodes =
  List.fold_left (fun acc n -> acc + Pax_xml.Tree.answer_byte_size n) 4 nodes

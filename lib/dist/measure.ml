(* Control-message sizes are the real wire sizes of Pax_wire: each
   message unit is one wire section, costing its encoded payload plus
   the 4-byte section header.  The simulator and the socket transport
   therefore account the same bytes (docs/NETWORK.md). *)

let query q = Pax_wire.Wire.query_section_bytes q.Pax_xpath.Query.source
let formula_array fs = Pax_wire.Wire.vectors_section_bytes fs
let bool_array bs = Pax_wire.Wire.resolution_section_bytes bs

let valuation vs =
  List.fold_left (fun acc (v, _) -> acc + 1 + Pax_bool.Var.byte_size v) 4 vs

let answers nodes = Pax_wire.Wire.answers_section_bytes nodes

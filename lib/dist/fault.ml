type visit_fate = Visit_ok | Lost_request | Lost_reply | Down

type msg_ctx = {
  m_src : Trace.endpoint;
  m_dst : Trace.endpoint;
  m_kind : Trace.msg_kind;
  m_label : string;
  m_round : int;
  m_attempt : int;
}

type action = Deliver | Drop | Duplicate | Delay of float

type t = {
  message : msg_ctx -> action;
  visit : site:int -> round:int -> attempt:int -> visit_fate;
  trivial : bool;
}

let none =
  {
    message = (fun _ -> Deliver);
    visit = (fun ~site:_ ~round:_ ~attempt:_ -> Visit_ok);
    trivial = true;
  }

let is_none t = t.trivial

let on_message t ctx = t.message ctx
let on_visit t ~site ~round ~attempt = t.visit ~site ~round ~attempt

let make ?message ?visit () =
  {
    message = Option.value ~default:none.message message;
    visit = Option.value ~default:none.visit visit;
    trivial = false;
  }

(* A decision in [0, 1) from the seed and a context tuple.  Hashtbl.hash
   is deterministic for these immediate/string tuples, which is all the
   replayability we need. *)
let roll seed salt ctx =
  let h = Hashtbl.hash (seed, salt, ctx) in
  float_of_int (h land 0xfffff) /. 1048576.

let seeded ?(drop = 0.) ?(dup = 0.) ?(delay = 0.) ?(lose = 0.) ?(crash = 0.)
    ~seed () =
  let message ctx =
    let c = (ctx.m_kind, ctx.m_label, ctx.m_src, ctx.m_dst, ctx.m_round,
             ctx.m_attempt) in
    if roll seed "msg-drop" c < drop then Drop
    else if roll seed "msg-dup" c < dup then Duplicate
    else if roll seed "msg-delay" c < delay then
      Delay (0.0001 +. (0.002 *. roll seed "msg-delay-len" c))
    else Deliver
  in
  let visit ~site ~round ~attempt =
    (* Crashes are decided per (site, round) and last one or two
       attempts, so every crashed site restarts within the default
       retry budget. *)
    let crashed = roll seed "crash" (site, round) < crash in
    let down_for = 1 + (Hashtbl.hash (seed, "crash-len", site, round) land 1) in
    if crashed && attempt <= down_for then Down
    else if roll seed "visit-req" (site, round, attempt) < lose then
      Lost_request
    else if roll seed "visit-rep" (site, round, attempt) < lose then Lost_reply
    else Visit_ok
  in
  { message; visit; trivial = false }

let drop_message ?(times = 1) pred =
  make
    ~message:(fun ctx ->
      if ctx.m_attempt <= times && pred ctx then Drop else Deliver)
    ()

let duplicate_message pred =
  make
    ~message:(fun ctx ->
      if ctx.m_attempt = 1 && pred ctx then Duplicate else Deliver)
    ()

let delay_message ~seconds pred =
  make ~message:(fun ctx -> if pred ctx then Delay seconds else Deliver) ()

let crash_site ?(down_for = max_int) ~site ~round () =
  make
    ~visit:(fun ~site:s ~round:r ~attempt ->
      if s = site && r = round && attempt <= down_for then Down else Visit_ok)
    ()

let lose_reply ?(times = 1) ~site ~round () =
  make
    ~visit:(fun ~site:s ~round:r ~attempt ->
      if s = site && r = round && attempt <= times then Lost_reply
      else Visit_ok)
    ()

let all plans =
  let plans = List.filter (fun p -> not p.trivial) plans in
  match plans with
  | [] -> none
  | plans ->
      let message ctx =
        let rec first = function
          | [] -> Deliver
          | p :: rest -> (
              match p.message ctx with
              | Deliver -> first rest
              | decision -> decision)
        in
        first plans
      in
      let visit ~site ~round ~attempt =
        let rec first = function
          | [] -> Visit_ok
          | p :: rest -> (
              match p.visit ~site ~round ~attempt with
              | Visit_ok -> first rest
              | fate -> fate)
        in
        first plans
      in
      { message; visit; trivial = false }

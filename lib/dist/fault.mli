(** Deterministic, seedable fault injection for the simulated cluster.

    A fault plan is a pure decision function consulted by {!Cluster} at
    every visit attempt and every message transmission.  Decisions
    depend only on the plan and on the (site, round, attempt) or message
    context — never on wall-clock time or global RNG state — so any
    schedule replays identically, which is what makes failing schedules
    shrinkable and reportable.

    Faults injected on attempt [n] leave later attempts alone unless the
    plan says otherwise, so a plan built from [?times:k] rules is always
    survivable by a retry policy allowing more than [k] attempts. *)

type visit_fate =
  | Visit_ok
  | Lost_request  (** the visit request never reaches the site *)
  | Lost_reply
      (** the site executes the visit, but its reply is lost — the
          coordinator re-delivers and the site {e replays} the visit *)
  | Down  (** the site is crashed; nothing executes *)

type msg_ctx = {
  m_src : Trace.endpoint;
  m_dst : Trace.endpoint;
  m_kind : Trace.msg_kind;
  m_label : string;
  m_round : int;
  m_attempt : int;  (** 1-based transmission attempt *)
}

type action = Deliver | Drop | Duplicate | Delay of float

type t

(** The empty plan: every visit succeeds, every message is delivered. *)
val none : t

(** Fast-path test used by {!Cluster} to skip fault bookkeeping. *)
val is_none : t -> bool

val on_message : t -> msg_ctx -> action
val on_visit : t -> site:int -> round:int -> attempt:int -> visit_fate

(** {1 Constructors} *)

val make :
  ?message:(msg_ctx -> action) ->
  ?visit:(site:int -> round:int -> attempt:int -> visit_fate) ->
  unit ->
  t

(** [seeded ~seed ()] draws every decision from a hash of [(seed,
    context)]: [drop]/[dup]/[delay] are per-transmission probabilities
    for messages, [lose] the probability a visit request or reply is
    lost, and [crash] the probability a (site, round) starts with the
    site down for one or two attempts.  All faults are transient, so a
    run under the default retry policy terminates (almost always with
    answers, occasionally with [Cluster.Site_unreachable] when a
    message exhausts its attempts — never with a wrong answer). *)
val seeded :
  ?drop:float ->
  ?dup:float ->
  ?delay:float ->
  ?lose:float ->
  ?crash:float ->
  seed:int ->
  unit ->
  t

(** [drop_message pred] drops the first [times] (default 1)
    transmission attempts of every message matching [pred]. *)
val drop_message : ?times:int -> (msg_ctx -> bool) -> t

(** Deliver matching messages twice (on their first attempt). *)
val duplicate_message : (msg_ctx -> bool) -> t

(** Deliver matching messages after [seconds] of simulated delay. *)
val delay_message : seconds:float -> (msg_ctx -> bool) -> t

(** [crash_site ~site ~round ()] crashes the site for the first
    [down_for] visit attempts of the given round; with the default
    [down_for = max_int] the site never restarts and the run must end
    in [Cluster.Site_unreachable]. *)
val crash_site : ?down_for:int -> site:int -> round:int -> unit -> t

(** Lose the reply of the first [times] (default 1) visit attempts of
    the given (site, round): the site executes, the coordinator
    re-delivers, the site replays. *)
val lose_reply : ?times:int -> site:int -> round:int -> unit -> t

(** First non-trivial decision wins. *)
val all : t list -> t

(** The transport seam under {!Cluster.run_round}: how a round of site
    visits is actually executed.

    The default backend is in-process — site work is an OCaml closure,
    possibly fanned over a {!Pool} of domains.  A [t] value plugs in a
    remote backend instead ({!Pax_net.Client} provides the socket one):
    the engines describe each visit as a {!Pax_wire.Wire.call} and read
    the {!Pax_wire.Wire.reply} back, and the transport moves the bytes.

    Failure contract: [visit_round] reports every delivery failure
    (connection refused, EOF, timeout) through [retry] — once per
    failed attempt — and retries the visit when [retry] returns.  The
    cluster owns the retry budget: when it is exhausted, [retry] raises
    {!Cluster.Site_unreachable}, which aborts the round.  A reply
    carrying a server-side error raises {!Remote_failure} instead
    (retrying a deterministic failure cannot help). *)

module Wire = Pax_wire.Wire

(** Cumulative byte accounting over the transport's lifetime, both
    directions.  [section_bytes]/[sections]/[frag_entries] come from
    {!Wire.tally} and tie measured traffic to the simulator's accounted
    traffic (docs/NETWORK.md). *)
type stats = {
  sent_bytes : int;
  received_bytes : int;
  section_bytes : int;
  sections : int;
  frag_entries : int;
  frames : int;
}

val zero_stats : stats

(** [diff_stats cur base] — per-field subtraction (a run's delta). *)
val diff_stats : stats -> stats -> stats

exception Remote_failure of { site : int; message : string }

type t = {
  describe : string;  (** for banners and traces, e.g. ["unix:/tmp/s0"] *)
  visit_round :
    round:int ->
    label:string ->
    retry:(site:int -> attempt:int -> reason:string -> unit) ->
    (int * Wire.call) list ->
    (int * Wire.reply * float) list;
      (** Execute one round: send every request (pipelined across
          sites), then collect replies.  Results follow the input order;
          the float is the per-site wall-clock seconds spent. *)
  stats : unit -> stats;
  reset_run : unit -> unit;
      (** Start a fresh run (new run id): called by {!Cluster.reset}. *)
  close : unit -> unit;
}

(** A fixed-size pool of worker domains for data-parallel batches.

    OCaml 5 domains map to OS threads scheduled on real cores; the pool
    makes the paper's {e parallel computation cost} — per round, the max
    over sites rather than the sum — physically true instead of merely
    accounted (see {!Cluster.run_round} and docs/PARALLELISM.md).

    A pool of {e degree} [d] executes batches with at most [d] tasks
    running at once: [d - 1] long-lived worker domains plus the calling
    domain, which participates in the batch instead of blocking idle.
    Tasks of a batch are claimed by atomic index, so uneven per-task
    workloads balance dynamically; {!run} returns only when every task
    has finished (a barrier).

    No external dependencies: [Domain] + [Mutex]/[Condition] + [Atomic]
    from the standard library.

    {b Discipline.} A pool is a batch executor, not a general scheduler:
    drive it from one domain at a time, and never submit a batch from
    inside a task of the same pool (no reentrancy — it would deadlock
    the completion barrier).  {!Cluster} obeys both by construction. *)

type t

(** [create ~domains] spawns [domains - 1] worker domains (so [degree]
    counts the caller).  [domains < 1] raises [Invalid_argument].
    [create ~domains:1] spawns nothing; its {!run}/{!map} execute
    inline. *)
val create : domains:int -> t

(** Total concurrency degree, caller included. *)
val degree : t -> int

(** [shared ~domains] returns a process-wide pool of that degree,
    creating it on first use.  Callers that churn through many clusters
    (tests, benchmarks) reuse domains instead of spawning per cluster. *)
val shared : domains:int -> t

(** [run t ~n f] executes [f 0 .. f (n-1)], each exactly once, on the
    pool plus the calling domain, and returns when all have finished.
    [f] must not raise — capture exceptions into your own results slot
    (or use {!map}).  Completion of the batch synchronizes memory: writes
    made by tasks are visible to the caller after [run] returns.

    With an enabled [obs] sink, each task records a span on its worker
    domain's track (category ["pool"]) and one
    [pax_pool_queue_wait_seconds] observation measuring publish→claim
    latency; the default no-op sink leaves [f] untouched. *)
val run : ?obs:Pax_obs.Sink.t -> t -> n:int -> (int -> unit) -> unit

(** [map t f xs] is [Array.map f xs] with the applications distributed
    over the pool, results in input order.  If one or more applications
    raise, the exception of the {e smallest} index is re-raised (with
    its backtrace) after the batch barrier, so failure is deterministic
    regardless of scheduling. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** Terminate and join the worker domains.  Only for pools you
    {!create}d yourself; {!shared} pools live for the process. *)
val shutdown : t -> unit

(* Fixed-size domain pool.  One batch at a time: the driver publishes
   {n; run_one} under the mutex and bumps [generation]; workers (and the
   driver itself) claim task indices from an atomic counter until it
   runs dry, then report how many tasks they completed.  The batch is
   done when the completion count reaches [n] — only then can every
   claimed index also have finished. *)

type batch = { n : int; run_one : int -> unit; next : int Atomic.t }

type t = {
  deg : int;
  mutex : Mutex.t;
  wake : Condition.t;  (* new batch published, or shutdown *)
  finished_cv : Condition.t;  (* completion count reached n *)
  mutable batch : batch option;
  mutable generation : int;
  mutable finished : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Claim and run tasks until the counter is exhausted, then account the
   completions in one mutex section. *)
let chew t (b : batch) =
  let rec loop k =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.n then begin
      b.run_one i;
      loop (k + 1)
    end
    else k
  in
  let k = loop 0 in
  if k > 0 then begin
    Mutex.lock t.mutex;
    t.finished <- t.finished + k;
    if t.finished = b.n then Condition.broadcast t.finished_cv;
    Mutex.unlock t.mutex
  end

let worker_loop t =
  let last_gen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = !last_gen do
      Condition.wait t.wake t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      last_gen := t.generation;
      let b = t.batch in
      Mutex.unlock t.mutex;
      (match b with Some b -> chew t b | None -> ());
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need domains >= 1";
  let t =
    {
      deg = domains;
      mutex = Mutex.create ();
      wake = Condition.create ();
      finished_cv = Condition.create ();
      batch = None;
      generation = 0;
      finished = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let degree t = t.deg

(* With an enabled sink, each task gets a span on its worker's track
   plus a queue-wait observation (publish -> claim).  The wrapper is
   built once per batch; with the no-op sink [run_one] is untouched, so
   instrumentation costs the disabled path nothing. *)
let instrument obs run_one =
  if not obs.Pax_obs.Sink.enabled then run_one
  else begin
    let published = Pax_obs.Clock.now () in
    fun i ->
      let t0 = Pax_obs.Clock.now () in
      Pax_obs.Sink.observe obs "pax_pool_queue_wait_seconds" (t0 -. published);
      let finish () =
        Pax_obs.Sink.record obs ~cat:"pool"
          ~track:(Printf.sprintf "pool worker %d" (Domain.self () :> int))
          (Printf.sprintf "task %d" i)
          ~t0
          ~t1:(Pax_obs.Clock.now ())
      in
      match run_one i with
      | () -> finish ()
      | exception e ->
          finish ();
          raise e
  end

let run ?(obs = Pax_obs.Sink.noop) t ~n run_one =
  let run_one = instrument obs run_one in
  if n > 0 then
    if t.deg = 1 || n = 1 then
      for i = 0 to n - 1 do
        run_one i
      done
    else begin
      let b = { n; run_one; next = Atomic.make 0 } in
      Mutex.lock t.mutex;
      t.batch <- Some b;
      t.finished <- 0;
      t.generation <- t.generation + 1;
      Condition.broadcast t.wake;
      Mutex.unlock t.mutex;
      chew t b;
      Mutex.lock t.mutex;
      while t.finished < n do
        Condition.wait t.finished_cv t.mutex
      done;
      t.batch <- None;
      Mutex.unlock t.mutex
    end

let map t f xs =
  let n = Array.length xs in
  if t.deg = 1 || n <= 1 then Array.map f xs
  else begin
    let out = Array.make n None in
    run t ~n (fun i ->
        out.(i) <-
          Some
            (match f xs.(i) with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())));
    (* In-order traversal re-raises the smallest failed index first. *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      out
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Process-wide pools, one per degree: tests and benchmarks create many
   short-lived clusters and must not spawn domains for each. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_mutex = Mutex.create ()

let shared ~domains =
  if domains < 1 then invalid_arg "Pool.shared: need domains >= 1";
  Mutex.lock registry_mutex;
  let pool =
    match Hashtbl.find_opt registry domains with
    | Some p -> p
    | None ->
        let p = create ~domains in
        Hashtbl.add registry domains p;
        p
  in
  Mutex.unlock registry_mutex;
  pool

type t = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
}

let default =
  { max_attempts = 8; base_delay = 0.0005; multiplier = 2.; max_delay = 0.05 }

let none = { default with max_attempts = 1 }

let should_retry t ~attempt = attempt < t.max_attempts

let delay_before t ~attempt =
  if attempt <= 1 then 0.
  else
    min t.max_delay
      (t.base_delay *. (t.multiplier ** float_of_int (attempt - 2)))

let pp ppf t =
  Format.fprintf ppf
    "retry{attempts=%d; backoff=%.4fs x%.1f <= %.4fs}" t.max_attempts
    t.base_delay t.multiplier t.max_delay

(** The simulated distributed setting: a coordinator (the query site
    [S_Q] of the paper) plus a set of sites, each holding one or more
    fragments of a document.

    The simulator runs everything in-process but accounts for exactly
    the quantities the paper's guarantees are stated in:

    - {b visits} — one per (site, communication round) in which the
      coordinator executes work at the site, irrespective of how many
      fragments the site holds {e and of how many delivery attempts the
      fault plan forces} (paper property: ≤ 3 for PaX3, ≤ 2 for PaX2,
      1 for ParBoX);
    - {b network traffic} — bytes per message, split into control
      traffic (queries, partial-answer vectors, resolutions) and data
      traffic (shipped answer elements);
    - {b computation} — per-site wall-clock spans and abstract operation
      counts; {e parallel cost} is the per-round maximum over sites
      (plus coordinator work), {e total cost} the sum over sites.

    Sites are stateful between visits, as in the paper (a site keeps the
    vectors it computed in stage 1 for use in stages 2/3).

    {2 Faults and retries}

    A {!Fault.t} plan (installed with {!set_fault}) may drop, delay or
    duplicate any message, lose a visit request or reply, or crash a
    site between visits.  The cluster transparently retries under the
    installed {!Retry.t} policy; when the budget is exhausted it raises
    {!Site_unreachable} — runs either complete with correct answers or
    fail with this typed error, never hang.  Every visit, transmission,
    retry and crash is recorded in a {!Trace.t} (see {!trace}), from
    which the paper's bounds are assertable post hoc.

    A visit whose {e reply} was lost is re-delivered, and the site
    re-executes it: site work passed to {!run_round} must therefore be
    idempotent per round (the PaX engines key their stage state by
    round for exactly this reason).

    {2 Real parallelism}

    With [domains > 1] (see {!create}, {!set_domains}, the [PAX_DOMAINS]
    environment variable and the CLI's [--domains]), the per-site visits
    of a round execute concurrently on a {!Pool} of real OCaml domains —
    the paper's parallel-cost bound [O(|Q| · max_site |F_site|)] becomes
    physical wall-clock, not just accounting.  Each pooled visit records
    its effects (trace events, {!send}s, coordinator {!add_ops}) into a
    private log, merged at the round barrier in input-site order, so
    answers, visit counts, traces and all deterministic report fields
    are identical to a [domains:1] run.  Two requirements on site work
    beyond the idempotence above: within a round it must not share
    mutable state across sites (the engines keep stage state per
    fragment, and a fragment lives on exactly one site), and it must
    charge {!add_ops} only to the site being visited.

    Rounds run under an installed fault plan always take the sequential
    path, whatever the degree: the deterministic fault schedules are
    functions of the exact visit order.  See docs/PARALLELISM.md. *)

type endpoint = Trace.endpoint = Coordinator | Site of int

type msg_kind = Trace.msg_kind =
  | Query  (** the query shipped to a site *)
  | Vectors  (** partial answers: residual-formula vectors *)
  | Resolution  (** unified (ground) values sent back to sites *)
  | Answers  (** answer elements — the only tree data PaX ships *)
  | Tree_data  (** whole fragments — what NaiveCentralized ships *)

type message = {
  src : endpoint;
  dst : endpoint;
  kind : msg_kind;
  bytes : int;
  label : string;
}

(** Raised when a visit or message exhausts the retry policy's attempt
    budget.  [stage] is the round label (or message label for a send
    outside a round). *)
exception Site_unreachable of { site : int; stage : string; attempts : int }

type t

(** [create ~ftree ~n_sites ~assign] places fragment [fid] on site
    [assign fid] (sites are [0..n_sites-1]).  The new cluster has no
    fault plan and the {!Retry.default} policy.  [domains] is the
    concurrency degree for {!run_round} (default: {!default_domains},
    i.e. [PAX_DOMAINS] or 1).  [transport] plugs in a remote backend
    ({!Pax_net.Client.transport} builds the socket one); without it
    visits run in-process. *)
val create :
  ?domains:int ->
  ?transport:Transport.t ->
  ftree:Pax_frag.Fragment.t -> n_sites:int -> assign:(int -> int) -> unit -> t

(** An {e abstract} cluster: [n_frags] fragments of some non-tree
    dataset (e.g. a graph fragment store, [lib/graph/]) placed on
    [n_sites] sites.  All visit/message/retry/trace machinery works
    identically; only {!ftree} is unavailable (it raises
    [Invalid_argument] — the XPath engines are the only callers that
    need the fragment tree itself). *)
val create_abstract :
  ?domains:int ->
  ?transport:Transport.t ->
  n_frags:int -> n_sites:int -> assign:(int -> int) -> unit -> t

(** One site per fragment. *)
val one_site_per_fragment : ?domains:int -> Pax_frag.Fragment.t -> t

(** The fragment tree.  @raise Invalid_argument on an abstract cluster
    (see {!create_abstract}). *)
val ftree : t -> Pax_frag.Fragment.t

(** Number of fragments placed, whatever the dataset. *)
val n_frags : t -> int

val n_sites : t -> int

(** Concurrency degree for rounds: 1 = sequential. *)
val domains : t -> int

(** Change the degree between runs (worker domains are pooled
    process-wide, so this is cheap). *)
val set_domains : t -> int -> unit

(** [PAX_DOMAINS] from the environment if set to a positive integer,
    else 1. *)
val default_domains : unit -> int

(** Site holding a fragment. *)
val site_of : t -> int -> int

(** Fragments held by a site, in fid order. *)
val fragments_on : t -> int -> int list

(** Sites holding at least one of the given fragments, ascending and
    duplicate-free — each site is charged at most one visit per round
    no matter how many of the fragments it holds.  Every fragment
    listed is counted as one {e touch} (see {!frag_touches}) and, with
    an enabled sink, as [pax_site_fragment_visits_total{fid}]. *)
val sites_holding : t -> int list -> int list

(** Per-fragment touch counts accumulated since the last {!reset} — the
    hotness signal the serving layer harvests into its placement table
    and the rebalancer acts on (docs/SHARDING.md).  Returns a copy. *)
val frag_touches : t -> int array

(** Placement epoch the cluster's [assign] was snapshotted from
    (default 0 = no placement table; reporting only — the transport
    handle carries the epoch servers check). *)
val epoch : t -> int

val set_epoch : t -> int -> unit

(** {1 Faults, retries, tracing} *)

(** Install a fault plan; it survives {!reset} so a plan set before a
    run applies to the whole run. *)
val set_fault : t -> Fault.t -> unit

val set_retry : t -> Retry.t -> unit

(** Is a non-trivial fault plan installed? *)
val fault_active : t -> bool

(** {1 Transports}

    Fault plans and transports are mutually exclusive: the simulated
    schedules assume in-process delivery, so a round that finds both
    installed raises [Invalid_argument].  Real delivery failures on a
    transport go through the same {!Retry} budget and raise the same
    {!Site_unreachable}. *)

(** Install or remove the remote backend. *)
val set_transport : t -> Transport.t option -> unit

(** Is a remote backend installed?  Engines consult this to decide
    whether to pass [?remote] stage implementations to {!run_round}. *)
val transport_active : t -> bool

(** {1 Cross-query cache}

    A {!Stage_cache.t} (default: {!Stage_cache.noop}) lets engines skip
    recomputing fully-resolved stage-1 results for (query, fragment)
    pairs already evaluated by an earlier run over the same fragment
    tree.  Only consulted on the transport path — a cache hit elides a
    real network visit; in-process simulated runs stay cache-free so
    their accounted costs remain the paper's.  See {!Stage_cache} for
    the correctness contract and docs/SERVING.md for the serving-layer
    implementation. *)

val set_stage_cache : t -> Stage_cache.t -> unit
val stage_cache : t -> Stage_cache.t

(** {1 Simulated service latency}

    The in-process mirror of [Pax_net.Server]'s [service_delay]: every
    {e physical} execution of a visit charges this many simulated
    seconds into the visited site's round time (a replay forced by a
    lost reply pays again), composing with fault plans and retry
    budgets.  Nothing is slept, and answers, visit counts, traces and
    accounted traffic are bit-identical with or without it — only the
    report's simulated-time fields grow.  Survives {!reset} like the
    fault plan.  Ignored on the socket transport, where the real
    server applies its own delay. *)

val set_service_delay : t -> float -> unit
val service_delay : t -> float

(** Transport byte counters accumulated since the last {!reset} (i.e.
    for the current run), or [None] without a transport. *)
val net_stats : t -> Transport.stats option

(** The structured event log of the current (or last) run.  Cleared by
    {!reset}, i.e. at the start of each engine run. *)
val trace : t -> Trace.t

(** {1 Telemetry}

    A {!Pax_obs.Sink.t} (default: the no-op sink) collects spans and
    metrics alongside — never instead of — the semantic accounting
    above.  With an enabled sink each round records a span
    (track ["coordinator"], category ["round"]) and a
    [pax_round_seconds] observation, each visit a span on its site's
    track (category ["visit"]), each {!coord} stage a span (category
    ["stage"]), and counters [pax_rounds_total],
    [pax_visits_total{site}], [pax_retries_total],
    [pax_messages_total{kind}] and [pax_message_bytes_total{kind}]
    mirror the logical accounting.  The no-op sink costs one branch per
    call site, and answers, visit counts, op counts and accounted
    traffic are bit-identical either way (asserted by
    [test/test_obs.ml]).  Cleared by {!reset} like the trace. *)

val sink : t -> Pax_obs.Sink.t
val set_sink : t -> Pax_obs.Sink.t -> unit

(** {1 Instrumented execution} *)

(** A stage's remote implementation: how to phrase a site visit as a
    wire call and read the result back from the reply. *)
type 'a remote = {
  build : int -> Pax_wire.Wire.call;
  parse : int -> Pax_wire.Wire.reply -> 'a;
}

(** [run_round t ~label ~sites f] visits each listed site once, running
    [f site] there; wall-clock spans are recorded per site, and the
    round's parallel cost is their maximum.

    {b Result order is a contract:} the returned [(site, result)] pairs
    follow the input [sites] order with duplicates removed (first
    occurrence wins) — {e not} any internal visiting or completion
    order.  The deterministic parallel merge relies on this, and callers
    may too.

    With [domains > 1] and no fault plan, the visits run concurrently on
    real domains; observable state afterwards is identical to the
    sequential run (see the {e Real parallelism} section above).  Under
    an installed fault plan each visit may take several delivery
    attempts (see {!Site_unreachable}); the per-site visit counter is
    charged once per (site, round) regardless.

    With a transport installed (see {!set_transport}), the round runs
    remotely through [remote] instead of calling [f]: [build site] is
    the wire call shipped to the site and [parse site reply] turns the
    reply into the same result [f] would have produced.  Visit counts,
    trace events and accounted messages are identical across backends;
    omitting [remote] while a transport is installed raises
    [Invalid_argument] (the stage cannot run remotely). *)
val run_round :
  ?remote:'a remote ->
  t -> label:string -> sites:int list -> (int -> 'a) -> (int * 'a) list

(** [coord t ~label f] runs coordinator-side work (e.g. [evalFT]),
    accounted in both parallel and total cost. *)
val coord : t -> label:string -> (unit -> 'a) -> 'a

(** [send t ~src ~dst ~kind ~bytes ~label] records a message.  Under a
    fault plan the transmission may be dropped (and retried, each
    physical copy recorded), duplicated or delayed. *)
val send :
  t -> src:endpoint -> dst:endpoint -> kind:msg_kind -> bytes:int ->
  label:string -> unit

(** [add_ops t ~site n] adds abstract work units (vector-entry
    operations) to a site's counters for the current round; use
    [site:(-1)] for the coordinator. *)
val add_ops : t -> site:int -> int -> unit

(** Forget all recorded costs and the trace (fragment placement, fault
    plan and retry policy stay). *)
val reset : t -> unit

(** {1 Reports} *)

type report = {
  parallel_seconds : float;
  total_seconds : float;
  coord_seconds : float;
  parallel_ops : int;
  total_ops : int;
  visits : int array;  (** per site, one per (site, round) *)
  max_visits : int;
  retries : int;  (** delivery retries forced by the fault plan *)
  rounds : string list;  (** round labels, in order *)
  control_bytes : int;
  answer_bytes : int;
  tree_bytes : int;  (** nonzero only for fragment-shipping baselines *)
  n_messages : int;  (** physical transmissions, retransmissions included *)
  net_seconds : float;
      (** simulated wire time: per-message latency + bytes/bandwidth
          under a LAN-like model (0.1 ms, 100 MB/s), plus retry backoff
          and injected delays *)
  measured_bytes : int option;
      (** actual socket bytes this run, both directions, when a
          transport is installed; [None] for in-process runs *)
  forced_sequential : bool;
      (** true when [domains > 1] was requested but an installed fault
          plan forced rounds down the sequential path *)
}

val report : t -> report
val messages : t -> message list
val pp_report : Format.formatter -> report -> unit

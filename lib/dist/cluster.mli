(** The simulated distributed setting: a coordinator (the query site
    [S_Q] of the paper) plus a set of sites, each holding one or more
    fragments of a document.

    The simulator runs everything in-process but accounts for exactly
    the quantities the paper's guarantees are stated in:

    - {b visits} — one per (site, communication round) in which the
      coordinator executes work at the site, irrespective of how many
      fragments the site holds {e and of how many delivery attempts the
      fault plan forces} (paper property: ≤ 3 for PaX3, ≤ 2 for PaX2,
      1 for ParBoX);
    - {b network traffic} — bytes per message, split into control
      traffic (queries, partial-answer vectors, resolutions) and data
      traffic (shipped answer elements);
    - {b computation} — per-site wall-clock spans and abstract operation
      counts; {e parallel cost} is the per-round maximum over sites
      (plus coordinator work), {e total cost} the sum over sites.

    Sites are stateful between visits, as in the paper (a site keeps the
    vectors it computed in stage 1 for use in stages 2/3).

    {2 Faults and retries}

    A {!Fault.t} plan (installed with {!set_fault}) may drop, delay or
    duplicate any message, lose a visit request or reply, or crash a
    site between visits.  The cluster transparently retries under the
    installed {!Retry.t} policy; when the budget is exhausted it raises
    {!Site_unreachable} — runs either complete with correct answers or
    fail with this typed error, never hang.  Every visit, transmission,
    retry and crash is recorded in a {!Trace.t} (see {!trace}), from
    which the paper's bounds are assertable post hoc.

    A visit whose {e reply} was lost is re-delivered, and the site
    re-executes it: site work passed to {!run_round} must therefore be
    idempotent per round (the PaX engines key their stage state by
    round for exactly this reason).

    {2 Real parallelism}

    With [domains > 1] (see {!create}, {!set_domains}, the [PAX_DOMAINS]
    environment variable and the CLI's [--domains]), the per-site visits
    of a round execute concurrently on a {!Pool} of real OCaml domains —
    the paper's parallel-cost bound [O(|Q| · max_site |F_site|)] becomes
    physical wall-clock, not just accounting.  Each pooled visit records
    its effects (trace events, {!send}s, coordinator {!add_ops}) into a
    private log, merged at the round barrier in input-site order, so
    answers, visit counts, traces and all deterministic report fields
    are identical to a [domains:1] run.  Two requirements on site work
    beyond the idempotence above: within a round it must not share
    mutable state across sites (the engines keep stage state per
    fragment, and a fragment lives on exactly one site), and it must
    charge {!add_ops} only to the site being visited.

    Rounds run under an installed fault plan always take the sequential
    path, whatever the degree: the deterministic fault schedules are
    functions of the exact visit order.  See docs/PARALLELISM.md. *)

type endpoint = Trace.endpoint = Coordinator | Site of int

type msg_kind = Trace.msg_kind =
  | Query  (** the query shipped to a site *)
  | Vectors  (** partial answers: residual-formula vectors *)
  | Resolution  (** unified (ground) values sent back to sites *)
  | Answers  (** answer elements — the only tree data PaX ships *)
  | Tree_data  (** whole fragments — what NaiveCentralized ships *)

type message = {
  src : endpoint;
  dst : endpoint;
  kind : msg_kind;
  bytes : int;
  label : string;
}

(** Raised when a visit or message exhausts the retry policy's attempt
    budget.  [stage] is the round label (or message label for a send
    outside a round). *)
exception Site_unreachable of { site : int; stage : string; attempts : int }

type t

(** [create ~ftree ~n_sites ~assign] places fragment [fid] on site
    [assign fid] (sites are [0..n_sites-1]).  The new cluster has no
    fault plan and the {!Retry.default} policy.  [domains] is the
    concurrency degree for {!run_round} (default: {!default_domains},
    i.e. [PAX_DOMAINS] or 1). *)
val create :
  ?domains:int ->
  ftree:Pax_frag.Fragment.t -> n_sites:int -> assign:(int -> int) -> unit -> t

(** One site per fragment. *)
val one_site_per_fragment : ?domains:int -> Pax_frag.Fragment.t -> t

val ftree : t -> Pax_frag.Fragment.t
val n_sites : t -> int

(** Concurrency degree for rounds: 1 = sequential. *)
val domains : t -> int

(** Change the degree between runs (worker domains are pooled
    process-wide, so this is cheap). *)
val set_domains : t -> int -> unit

(** [PAX_DOMAINS] from the environment if set to a positive integer,
    else 1. *)
val default_domains : unit -> int

(** Site holding a fragment. *)
val site_of : t -> int -> int

(** Fragments held by a site, in fid order. *)
val fragments_on : t -> int -> int list

(** Sites holding at least one of the given fragments, ascending and
    duplicate-free — each site is charged at most one visit per round
    no matter how many of the fragments it holds. *)
val sites_holding : t -> int list -> int list

(** {1 Faults, retries, tracing} *)

(** Install a fault plan; it survives {!reset} so a plan set before a
    run applies to the whole run. *)
val set_fault : t -> Fault.t -> unit

val set_retry : t -> Retry.t -> unit

(** Is a non-trivial fault plan installed? *)
val fault_active : t -> bool

(** The structured event log of the current (or last) run.  Cleared by
    {!reset}, i.e. at the start of each engine run. *)
val trace : t -> Trace.t

(** {1 Instrumented execution} *)

(** [run_round t ~label ~sites f] visits each listed site once, running
    [f site] there; wall-clock spans are recorded per site, and the
    round's parallel cost is their maximum.

    {b Result order is a contract:} the returned [(site, result)] pairs
    follow the input [sites] order with duplicates removed (first
    occurrence wins) — {e not} any internal visiting or completion
    order.  The deterministic parallel merge relies on this, and callers
    may too.

    With [domains > 1] and no fault plan, the visits run concurrently on
    real domains; observable state afterwards is identical to the
    sequential run (see the {e Real parallelism} section above).  Under
    an installed fault plan each visit may take several delivery
    attempts (see {!Site_unreachable}); the per-site visit counter is
    charged once per (site, round) regardless. *)
val run_round : t -> label:string -> sites:int list -> (int -> 'a) -> (int * 'a) list

(** [coord t ~label f] runs coordinator-side work (e.g. [evalFT]),
    accounted in both parallel and total cost. *)
val coord : t -> label:string -> (unit -> 'a) -> 'a

(** [send t ~src ~dst ~kind ~bytes ~label] records a message.  Under a
    fault plan the transmission may be dropped (and retried, each
    physical copy recorded), duplicated or delayed. *)
val send :
  t -> src:endpoint -> dst:endpoint -> kind:msg_kind -> bytes:int ->
  label:string -> unit

(** [add_ops t ~site n] adds abstract work units (vector-entry
    operations) to a site's counters for the current round; use
    [site:(-1)] for the coordinator. *)
val add_ops : t -> site:int -> int -> unit

(** Forget all recorded costs and the trace (fragment placement, fault
    plan and retry policy stay). *)
val reset : t -> unit

(** {1 Reports} *)

type report = {
  parallel_seconds : float;
  total_seconds : float;
  coord_seconds : float;
  parallel_ops : int;
  total_ops : int;
  visits : int array;  (** per site, one per (site, round) *)
  max_visits : int;
  retries : int;  (** delivery retries forced by the fault plan *)
  rounds : string list;  (** round labels, in order *)
  control_bytes : int;
  answer_bytes : int;
  tree_bytes : int;  (** nonzero only for fragment-shipping baselines *)
  n_messages : int;  (** physical transmissions, retransmissions included *)
  net_seconds : float;
      (** simulated wire time: per-message latency + bytes/bandwidth
          under a LAN-like model (0.1 ms, 100 MB/s), plus retry backoff
          and injected delays *)
}

val report : t -> report
val messages : t -> message list
val pp_report : Format.formatter -> report -> unit

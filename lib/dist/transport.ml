module Wire = Pax_wire.Wire

type stats = {
  sent_bytes : int;
  received_bytes : int;
  section_bytes : int;
  sections : int;
  frag_entries : int;
  frames : int;
}

let zero_stats =
  {
    sent_bytes = 0;
    received_bytes = 0;
    section_bytes = 0;
    sections = 0;
    frag_entries = 0;
    frames = 0;
  }

let diff_stats a b =
  {
    sent_bytes = a.sent_bytes - b.sent_bytes;
    received_bytes = a.received_bytes - b.received_bytes;
    section_bytes = a.section_bytes - b.section_bytes;
    sections = a.sections - b.sections;
    frag_entries = a.frag_entries - b.frag_entries;
    frames = a.frames - b.frames;
  }

exception Remote_failure of { site : int; message : string }

type t = {
  describe : string;
  visit_round :
    round:int ->
    label:string ->
    retry:(site:int -> attempt:int -> reason:string -> unit) ->
    (int * Wire.call) list ->
    (int * Wire.reply * float) list;
  stats : unit -> stats;
  reset_run : unit -> unit;
  close : unit -> unit;
}

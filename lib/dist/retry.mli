(** The coordinator's retry/timeout policy.

    Every visit and every message gets up to [max_attempts] delivery
    attempts; before attempt [n+1] the coordinator backs off
    [min (base_delay * multiplier^(n-1), max_delay)] simulated seconds
    (accounted into the report's [net_seconds], never slept for real).
    When the budget is exhausted the cluster raises
    [Cluster.Site_unreachable] — a typed, clean failure; never a wrong
    answer and never a hang. *)

type t = {
  max_attempts : int;  (** total attempts, ≥ 1 *)
  base_delay : float;  (** simulated seconds before the first retry *)
  multiplier : float;  (** exponential backoff factor *)
  max_delay : float;  (** backoff cap *)
}

(** 8 attempts, 0.5 ms base delay, doubling, capped at 50 ms. *)
val default : t

(** A single attempt: any injected fault is immediately fatal. *)
val none : t

(** May attempt [attempt + 1] be made? *)
val should_retry : t -> attempt:int -> bool

(** Simulated backoff before the given attempt (≥ 2). *)
val delay_before : t -> attempt:int -> float

val pp : Format.formatter -> t -> unit

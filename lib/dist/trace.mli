(** Structured event log of one distributed evaluation.

    Every visit, message transmission, retry and site crash/restart is
    recorded as an event, in order.  The paper's §6 cost model — visit
    counts, and the [O(|Q||FT| + |ans|)] communication bound — is then
    assertable {e post hoc} from the log instead of from live counters,
    and stays assertable when a fault plan ({!Fault}) forces
    retransmissions:

    - a {e logical} visit is one (site, round) pair the coordinator
      engaged, no matter how many delivery attempts it took; the paper's
      ≤ 2 / ≤ 3 bounds are stated over logical visits;
    - a {e logical} message is one [Cluster.send], no matter how many
      times the transport had to put it on the wire; the communication
      bound is stated over logical bytes.

    Physical counts (every attempt, every transmission) are also
    recoverable, for measuring the overhead a fault schedule induced. *)

type endpoint = Coordinator | Site of int

type msg_kind = Query | Vectors | Resolution | Answers | Tree_data

type delivery =
  | Delivered
  | Dropped  (** put on the wire, never arrived; a retry follows *)
  | Duplicated  (** delivered, plus a spurious second copy *)
  | Delayed of float  (** delivered after this many simulated seconds *)

type event =
  | Round_start of { round : int; label : string }
  | Visit of { site : int; round : int; attempt : int; replay : bool }
      (** the site actually executed the visit's work; [replay] marks a
          re-execution after a lost reply *)
  | Message of {
      src : endpoint;
      dst : endpoint;
      kind : msg_kind;
      bytes : int;
      label : string;
      attempt : int;  (** 1 = the logical transmission *)
      status : delivery;
    }
  | Retry of { site : int; round : int; attempt : int; reason : string }
  | Site_down of { site : int; round : int; attempt : int }
  | Site_restart of { site : int; round : int; attempt : int }
  | Gave_up of { site : int; round : int; attempts : int }

type t

val create : unit -> t
val clear : t -> unit
val add : t -> event -> unit

(** Events in emission order. *)
val events : t -> event list

val length : t -> int

(** {1 Post-hoc analysis} *)

(** Distinct rounds in which the coordinator engaged the site (whether
    or not any attempt succeeded). *)
val logical_visits : t -> site:int -> int

(** Max over sites of {!logical_visits} — the quantity bounded by ≤ 2
    (PaX2) / ≤ 3 (PaX3). *)
val max_logical_visits : t -> int

(** Number of times the site actually executed visit work, counting
    replays. *)
val physical_visits : t -> site:int -> int

val max_physical_visits : t -> int

(** Total [Retry] events (visit and message retries alike). *)
val retries : t -> int

(** Number of rounds started. *)
val rounds : t -> int

(** Logical message count: one per [Cluster.send] (attempt-1 records
    only), however many retransmissions or duplicate copies followed. *)
val logical_messages : t -> int

(** Wire transmissions: every attempt counts (a [Dropped] copy was
    sent, just never arrived) and a [Duplicated] delivery counts twice
    for its spurious second copy. *)
val physical_messages : t -> int

(** Bytes of the given kind that crossed the wire, weighting each
    record by its transmission count (see {!physical_messages}). *)
val physical_bytes : t -> kind:msg_kind -> int

(** Bytes of the given kind, counting each logical message once
    (attempt 1 only — retransmissions and duplicates excluded). *)
val logical_bytes : t -> kind:msg_kind -> int

(** Logical bytes of the control kinds: [Query] + [Vectors] +
    [Resolution] — everything but answers and shipped fragments. *)
val logical_control_bytes : t -> int

(** Stable lower-case name of a message kind (["query"], ["vectors"],
    …) — used as a metric label by {!Cluster} and the net client. *)
val kind_name : msg_kind -> string

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

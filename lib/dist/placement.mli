(** Fragment placement strategies.

    The paper takes placement as given ("how fragments are assigned to
    sites is determined by the system"); since the parallel-computation
    cost is [O(|Q| · max_site |F_site|)], balancing the cumulative
    fragment size per site directly improves it.  These helpers provide
    the common policies and are exercised by the bench ablations. *)

(** [round_robin ~n_sites] — fragment [i] on site [i mod n_sites]. *)
val round_robin : n_sites:int -> int -> int

(** [balanced ft ~n_sites] — longest-processing-time greedy bin packing
    by serialized fragment size: each fragment goes to the currently
    lightest site.  Minimizes (approximately) the maximum per-site
    load. *)
val balanced : Pax_frag.Fragment.t -> n_sites:int -> int -> int

(** [pack ft ~max_bytes] — first-fit-decreasing packing into as few
    sites as possible with at most [max_bytes] per site; returns the
    assignment and the number of sites used. *)
val pack : Pax_frag.Fragment.t -> max_bytes:int -> (int -> int) * int

(** Per-site cumulative serialized bytes under an assignment. *)
val loads : Pax_frag.Fragment.t -> n_sites:int -> (int -> int) -> int array

(** Convenience constructors. *)
val cluster_round_robin : Pax_frag.Fragment.t -> n_sites:int -> Cluster.t

val cluster_balanced : Pax_frag.Fragment.t -> n_sites:int -> Cluster.t

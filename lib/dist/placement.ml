module Fragment = Pax_frag.Fragment

let round_robin ~n_sites fid = fid mod n_sites

let sizes ft =
  Array.map Fragment.fragment_byte_size ft.Fragment.fragments

let balanced ft ~n_sites =
  let sz = sizes ft in
  let order =
    List.sort
      (fun a b -> compare sz.(b) sz.(a))
      (List.init (Array.length sz) Fun.id)
  in
  let load = Array.make n_sites 0 in
  let assign = Array.make (Array.length sz) 0 in
  List.iter
    (fun fid ->
      let lightest = ref 0 in
      Array.iteri (fun s l -> if l < load.(!lightest) then lightest := s) load;
      assign.(fid) <- !lightest;
      load.(!lightest) <- load.(!lightest) + sz.(fid))
    order;
  fun fid -> assign.(fid)

let pack ft ~max_bytes =
  let sz = sizes ft in
  let order =
    List.sort
      (fun a b -> compare sz.(b) sz.(a))
      (List.init (Array.length sz) Fun.id)
  in
  let bins = ref [] (* (site, load) in reverse site order *) in
  let n_bins = ref 0 in
  let assign = Array.make (Array.length sz) 0 in
  List.iter
    (fun fid ->
      let rec fit = function
        | [] ->
            let site = !n_bins in
            incr n_bins;
            bins := !bins @ [ (site, ref sz.(fid)) ];
            site
        | (site, load) :: rest ->
            if !load + sz.(fid) <= max_bytes then begin
              load := !load + sz.(fid);
              site
            end
            else fit rest
      in
      assign.(fid) <- fit !bins)
    order;
  ((fun fid -> assign.(fid)), max 1 !n_bins)

let loads ft ~n_sites assign =
  let load = Array.make n_sites 0 in
  Array.iteri
    (fun fid f -> load.(assign fid) <- load.(assign fid) + Fragment.fragment_byte_size f)
    ft.Fragment.fragments;
  load

let cluster_round_robin ft ~n_sites =
  Cluster.create ~ftree:ft ~n_sites ~assign:(round_robin ~n_sites) ()

let cluster_balanced ft ~n_sites =
  Cluster.create ~ftree:ft ~n_sites ~assign:(balanced ft ~n_sites) ()

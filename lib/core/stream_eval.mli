(** Single-pass streaming evaluation over a SAX event stream — the
    centralized cousin of PaX2's combined traversal, and the §8 remark
    about large documents taken to its limit: no tree is materialized
    at all.

    The engine keeps one frame per {e open} element (the ancestor
    stack): the frame's selection vector uses placeholder variables for
    the qualifiers of still-open ancestors, and closing an element
    computes its qualifier vector from accumulated child disjunctions
    and locally unifies the placeholders it issued — exactly the
    pre-order/post-order split of PaX2, driven by events.

    Memory: O(depth · |Q|) for the stack plus the not-yet-decidable
    answer candidates (a node can be reported only once every qualifier
    above and below it is known).

    Answers are reported as pre-order indices (the document's root
    element is index 0), since there are no node ids without a tree. *)

type result = {
  matches : int list;  (** pre-order indices of answer elements, sorted *)
  elements : int;  (** total elements seen *)
  max_depth : int;
  peak_pending : int;  (** high-water mark of undecided candidates *)
}

(** [over_string q xml] — evaluate in one pass over the serialized
    document.
    @raise Pax_xml.Sax.Parse_error on malformed input. *)
val over_string : Pax_xpath.Query.t -> string -> result

(** [over_events q events] — same, over a pre-scanned event list. *)
val over_events : Pax_xpath.Query.t -> Pax_xml.Sax.event list -> result

(** Pre-order indices of [Centralized] answers, for cross-checking. *)
val indices_of_answers :
  Pax_xml.Tree.node -> Pax_xml.Tree.node list -> int list

(** Algorithm PaX2 (paper §4): the two-stage refinement of PaX3.

    Stage 1 folds qualifier and selection evaluation into a {e single}
    depth-first traversal of each fragment: the pre-order half computes
    the selection vector using placeholder variables
    ([Var.Qual_at (node, entry)]) for qualifier values that the
    post-order half has not yet computed; once the subtree is done, the
    placeholders are resolved locally (the paper's [qz] unification,
    Examples 4.1–4.2).  What is left symbolic crosses fragment
    boundaries only: boundary qualifier variables (resolved bottom-up by
    [evalFT]) and context variables (resolved top-down).  Stage 2 sends
    the unified values to the sites still holding candidates, which
    resolve and ship the remaining answers.

    ≤ 2 visits per site; with [annotations:true] the combined pass
    skips irrelevant fragments outright — including fragments whose data
    no qualifier of a possible answer can reach — and ground contexts
    remove Stage 2 visits (a single visit for qualifier-free queries). *)

(** [?flat] selects the hot path for in-process fragment evaluation:
    flat images ({!Flat_pass}, the default per {!Flat_pass.enabled}) or
    the original pointer traversal.  Both are bit-identical through
    every observable. *)
val run :
  ?annotations:bool ->
  ?flat:bool ->
  Pax_dist.Cluster.t ->
  Pax_xpath.Query.t ->
  Run_result.t

(** The per-fragment combined traversal, exposed for testing and for the
    {!Paging} simulator. *)
module Combined : sig
  type outcome = Flat_pass.combined_outcome = {
    root_qvec : Pax_bool.Formula.t array;
    answers : Pax_xml.Tree.node list;  (** certain already *)
    candidates : (Pax_xml.Tree.node * Pax_bool.Formula.t) list;
    contexts : (int * Pax_bool.Formula.t array) list;
    ops : int;
  }

  val run :
    Pax_xpath.Compile.t ->
    init:Pax_bool.Formula.t array ->
    root_is_context:bool ->
    Pax_xml.Tree.node ->
    outcome
end

type t = {
  query : Pax_xpath.Query.t;
  answers : Pax_xml.Tree.node list;
  answer_ids : int list;
  report : Pax_dist.Cluster.report;
  trace : Pax_dist.Trace.t option;
}

let make ?trace ~query ~answers ~report () =
  let answers =
    List.sort_uniq
      (fun (a : Pax_xml.Tree.node) (b : Pax_xml.Tree.node) -> compare a.id b.id)
      answers
  in
  {
    query;
    answers;
    answer_ids = List.map (fun (n : Pax_xml.Tree.node) -> n.Pax_xml.Tree.id) answers;
    report;
    trace;
  }

let trace_exn t =
  match t.trace with
  | Some tr -> tr
  | None -> invalid_arg "Run_result.trace_exn: engine recorded no trace"

let pp ppf t =
  Format.fprintf ppf "@[<v>query: %a@,answers: %d node(s)@,%a@]"
    Pax_xpath.Query.pp t.query (List.length t.answers)
    Pax_dist.Cluster.pp_report t.report

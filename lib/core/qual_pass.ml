module Tree = Pax_xml.Tree
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var

type t = {
  vectors : (int, Formula.t array) Hashtbl.t;
  root_vec : Formula.t array;
  ops : int;
}

(* The kernel is defined over an abstract node view so that both the
   tree passes and the streaming engine share it. *)
type view = {
  vtag : string;
  vtext : string;
  vnum : float option;
  vattr : string -> string option;
}

let view_of_node (v : Tree.node) : view =
  {
    vtag = v.Tree.tag;
    vtext = Tree.text_of v;
    vnum = Tree.float_of v;
    vattr = Tree.attr v;
  }

let rec sat_view compiled vec (v : view) (q : Compile.qual) : Formula.t =
  match q with
  | Compile.Sat pi ->
      let p = compiled.Compile.paths.(pi) in
      if Array.length p.Compile.items = 0 then Formula.true_
      else vec.(p.Compile.sat.(0))
  | Compile.Text_eq s -> Formula.bool (v.vtext = s)
  | Compile.Val_cmp (op, num) ->
      Formula.bool
        (match v.vnum with
        | Some f -> Pax_xpath.Ast.compare_num op f num
        | None -> false)
  | Compile.Attr_test (name, value) ->
      Formula.bool
        (match (v.vattr name, value) with
        | Some _, None -> true
        | Some actual, Some expected -> actual = expected
        | None, _ -> false)
  | Compile.Qnot q -> Formula.not_ (sat_view compiled vec v q)
  | Compile.Qand (a, b) ->
      Formula.conj (sat_view compiled vec v a) (sat_view compiled vec v b)
  | Compile.Qor (a, b) ->
      Formula.disj (sat_view compiled vec v a) (sat_view compiled vec v b)

let sat compiled vec v q = sat_view compiled vec (view_of_node v) q

(* Compute one node's vector; [exists_child e] is the disjunction of
   entry [e] over the node's children.  Entries are filled path by path
   (nested paths first — compile order guarantees their indices are
   smaller) and, within a path, suffix-position descending, so every
   read hits an already-written entry. *)
let eval_entries compiled (v : view) ~exists_child : Formula.t array =
  let vec = Array.make compiled.Compile.n_qual Formula.false_ in
  Array.iter
    (fun (p : Compile.cpath) ->
      let k = Array.length p.Compile.items in
      for j = k - 1 downto 0 do
        let a_next =
          if j + 1 = k then Formula.true_ else vec.(p.Compile.sat.(j + 1))
        in
        match p.Compile.items.(j) with
        | Compile.Move test ->
            (* B_v(j): v matches the move, rest satisfiable below v. *)
            vec.(p.Compile.step.(j)) <-
              (if Compile.matches test v.vtag then a_next else Formula.false_);
            (* A_v(j): some child matches the move. *)
            vec.(p.Compile.sat.(j)) <- exists_child p.Compile.step.(j)
        | Compile.Dos_item ->
            (* D_v(j+1) = A_v(j+1) ∨ ∃ child. D_c(j+1); A_v(j) = D_v(j+1). *)
            let d =
              if j + 1 = k then Formula.true_
              else begin
                let e = p.Compile.desc.(j + 1) in
                vec.(e) <- Formula.disj a_next (exists_child e);
                vec.(e)
              end
            in
            vec.(p.Compile.sat.(j)) <- d
        | Compile.Filter q ->
            vec.(p.Compile.sat.(j)) <-
              (if a_next = Formula.false_ then Formula.false_
               else Formula.conj (sat_view compiled vec v q) a_next)
      done)
    compiled.Compile.paths;
  vec

let virtual_vec compiled fid =
  Array.init compiled.Compile.n_qual (fun e -> Formula.var (Var.Qual (fid, e)))

let eval_node compiled ~ops (v : Tree.node) (child_vecs : Formula.t array list) :
    Formula.t array =
  let n_qual = compiled.Compile.n_qual in
  match v.kind with
  | Tree.Virtual fid ->
      ops := !ops + n_qual;
      virtual_vec compiled fid
  | Tree.Element ->
      ops := !ops + (n_qual * (1 + List.length child_vecs));
      let exists_child e =
        List.fold_left
          (fun acc cv -> Formula.disj acc cv.(e))
          Formula.false_ child_vecs
      in
      eval_entries compiled (view_of_node v) ~exists_child

let run compiled (root : Tree.node) : t =
  let vectors = Hashtbl.create 256 in
  let ops = ref 0 in
  let rec go v =
    let child_vecs = List.map go v.Tree.children in
    let vec = eval_node compiled ~ops v child_vecs in
    Hashtbl.replace vectors v.Tree.id vec;
    vec
  in
  let root_vec = go root in
  { vectors; root_vec; ops = !ops }

let resolve t lookup =
  let n = ref 0 in
  Hashtbl.iter
    (fun _ vec ->
      n := !n + Array.length vec;
      Array.iteri (fun i f -> vec.(i) <- Formula.subst lookup f) vec)
    t.vectors;
  !n

module Tree = Pax_xml.Tree
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var

type outcome = {
  answers : Tree.node list;
  candidates : (Tree.node * Formula.t) list;
  contexts : (int * Formula.t array) list;
  ops : int;
}

(* SV recurrence for one node, given the parent's vector.  Entry 0 is
   the "is the context node" bit, filled by the caller. *)
let eval_entries compiled ~sat (v : Tree.node) (sv_p : Formula.t array)
    (sv : Formula.t array) =
  let items = compiled.Compile.sel in
  for i = 1 to Array.length items do
    match items.(i - 1) with
    | Compile.Move test ->
        sv.(i) <-
          (if Compile.matches test v.tag then sv_p.(i - 1) else Formula.false_)
    | Compile.Dos_item -> sv.(i) <- Formula.disj sv_p.(i) sv.(i - 1)
    | Compile.Filter q ->
        (* Dead prefixes never consult their qualifier. *)
        sv.(i) <-
          (if sv.(i - 1) = Formula.false_ then Formula.false_
           else Formula.conj sv.(i - 1) (sat v q))
  done

let run compiled ~init ~root_is_context ~sat (root : Tree.node) : outcome =
  let n = compiled.Compile.n_sel in
  let last = n - 1 in
  let ops = ref 0 in
  let answers = ref [] in
  let candidates = ref [] in
  let contexts = ref [] in
  let rec go (v : Tree.node) ~is_context (sv_p : Formula.t array) =
    match v.kind with
    | Tree.Virtual fid ->
        (* The parent's vector is exactly what the sub-fragment's
           Sel_ctx variables stand for (paper: returnSet). *)
        contexts := (fid, Array.copy sv_p) :: !contexts
    | Tree.Element ->
        ops := !ops + n;
        let sv = Array.make n Formula.false_ in
        sv.(0) <- Formula.bool is_context;
        eval_entries compiled ~sat v sv_p sv;
        (match Formula.to_bool sv.(last) with
        | Some true -> answers := v :: !answers
        | Some false -> ()
        | None -> candidates := (v, sv.(last)) :: !candidates);
        List.iter (fun c -> go c ~is_context:false sv) v.children
  in
  go root ~is_context:root_is_context init;
  {
    answers = List.rev !answers;
    candidates = List.rev !candidates;
    contexts = List.rev !contexts;
    ops = !ops;
  }

let blank_init compiled = Array.make compiled.Compile.n_sel Formula.false_

let symbolic_init compiled ~fid =
  Array.init compiled.Compile.n_sel (fun i ->
      Formula.var (Var.Sel_ctx (fid, i)))

let context_root compiled (root : Tree.node) =
  if compiled.Compile.absolute then
    ( { Tree.id = -1; tag = "#document"; text = None; attrs = [];
        children = [ root ]; kind = Tree.Element },
      true )
  else (root, true)

let real_answers nodes =
  List.filter (fun (n : Tree.node) -> n.Tree.id >= 0) nodes

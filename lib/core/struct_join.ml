module Tree = Pax_xml.Tree
module Compile = Pax_xpath.Compile
module Query = Pax_xpath.Query

type entry = { node : Tree.node; start : int; stop : int; level : int }

type index = {
  by_tag : (string, entry array) Hashtbl.t;
  all : entry array;  (** document order = increasing [start] *)
  root : entry;
}

let build (root : Tree.node) : index =
  let counter = ref 0 in
  let acc = ref [] in
  let rec go level (n : Tree.node) =
    let start = !counter in
    incr counter;
    List.iter (go (level + 1)) n.Tree.children;
    let stop = !counter in
    incr counter;
    acc := { node = n; start; stop; level } :: !acc
  in
  go 0 root;
  let all =
    Array.of_list (List.sort (fun a b -> compare a.start b.start) !acc)
  in
  let by_tag = Hashtbl.create 64 in
  let groups = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      let tag = e.node.Tree.tag in
      Hashtbl.replace groups tag
        (e :: (Option.value ~default:[] (Hashtbl.find_opt groups tag))))
    all;
  Hashtbl.iter
    (fun tag entries ->
      Hashtbl.replace by_tag tag (Array.of_list (List.rev entries)))
    groups;
  { by_tag; all; root = all.(0) }

let supported (q : Query.t) = Compile.no_qualifiers q.Query.compiled

(* Merge join of [candidates] against the current context set, both in
   document order.  A stack holds the context entries whose region
   encloses the candidate under consideration (a nested ancestor
   chain). *)
let structural_join ~keep (cur : entry array) (candidates : entry array) :
    entry array =
  let result = ref [] in
  let stack = ref [] in
  let i = ref 0 in
  Array.iter
    (fun d ->
      while !i < Array.length cur && cur.(!i).start <= d.start do
        (* Contexts opening before the candidate may enclose it. *)
        stack := cur.(!i) :: !stack;
        incr i
      done;
      (* Drop contexts that closed before the candidate opened. *)
      let rec prune = function
        | a :: rest when a.stop < d.start -> prune rest
        | st -> st
      in
      stack := prune !stack;
      if List.exists (fun a -> keep ~ancestor:a ~candidate:d) !stack then
        result := d :: !result)
    candidates;
  Array.of_list (List.rev !result)

let child_join cur candidates =
  structural_join cur candidates ~keep:(fun ~ancestor ~candidate ->
      ancestor.start < candidate.start
      && candidate.stop < ancestor.stop
      && candidate.level = ancestor.level + 1)

let desc_or_self_join cur candidates =
  structural_join cur candidates ~keep:(fun ~ancestor ~candidate ->
      ancestor.start <= candidate.start && candidate.stop <= ancestor.stop)

let run (idx : index) (q : Query.t) : int list =
  if not (supported q) then
    invalid_arg "Struct_join.run: query has qualifiers";
  let compiled = q.Query.compiled in
  (* The context of an absolute query is a synthetic region enclosing
     everything; a relative query starts at the root element. *)
  let context =
    if compiled.Compile.absolute then
      [| { node = idx.root.node; start = -1; stop = max_int; level = -1 } |]
    else [| idx.root |]
  in
  let candidates_for = function
    | Compile.TLabel tag ->
        Option.value ~default:[||] (Hashtbl.find_opt idx.by_tag tag)
    | Compile.TAny -> idx.all
  in
  (* dos(S) = S ∪ descendants(S).  The self part matters for entries
     that are not index candidates (the synthetic document region). *)
  let union_sorted a b =
    let out = ref [] in
    let i = ref 0 and j = ref 0 in
    while !i < Array.length a || !j < Array.length b do
      if !j >= Array.length b then begin
        out := a.(!i) :: !out;
        incr i
      end
      else if !i >= Array.length a then begin
        out := b.(!j) :: !out;
        incr j
      end
      else if a.(!i).start < b.(!j).start then begin
        out := a.(!i) :: !out;
        incr i
      end
      else if a.(!i).start > b.(!j).start then begin
        out := b.(!j) :: !out;
        incr j
      end
      else begin
        out := a.(!i) :: !out;
        incr i;
        incr j
      end
    done;
    Array.of_list (List.rev !out)
  in
  let step cur item =
    match item with
    | Compile.Move test -> child_join cur (candidates_for test)
    | Compile.Dos_item -> union_sorted cur (desc_or_self_join cur idx.all)
    | Compile.Filter _ -> assert false
  in
  let final = Array.fold_left step context compiled.Compile.sel in
  List.sort compare
    (List.filter_map
       (fun e -> if e.level >= 0 then Some e.node.Tree.id else None)
       (Array.to_list final))

let eval_ids q root = run (build root) q

module Formula = Pax_bool.Formula
module Var = Pax_bool.Var
module Fragment = Pax_frag.Fragment

let ground_exn what f =
  match Formula.to_bool f with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "evalFT: %s failed to ground (%s)" what
           (Formula.to_string f))

(* Pruned fragments have an empty resolved vector and read as false:
   the annotation analysis guarantees the value cannot matter. *)
let qual_lookup resolved = function
  | Var.Qual (fid, e) ->
      let vec = resolved.(fid) in
      Some (Formula.bool (e < Array.length vec && vec.(e)))
  | Var.Sel_ctx _ | Var.Qual_at _ -> None

let ctx_lookup resolved = function
  | Var.Sel_ctx (fid, i) ->
      let vec = resolved.(fid) in
      Some (Formula.bool (i < Array.length vec && vec.(i)))
  | Var.Qual _ | Var.Qual_at _ -> None

let resolve_quals ft ~root_vecs =
  let n = Fragment.n_fragments ft in
  let resolved = Array.make n [||] in
  let lookup = qual_lookup resolved in
  (* Children have larger ids than their parents: a reverse sweep is a
     bottom-up traversal of the fragment tree. *)
  for fid = n - 1 downto 0 do
    resolved.(fid) <-
      (match root_vecs fid with
      | None -> [||]
      | Some vec ->
          Array.map
            (fun f -> ground_exn "qualifier entry" (Formula.subst lookup f))
            vec)
  done;
  resolved

let resolve_contexts ft ~root_ctx ~ctx_of ~qual_lookup =
  let n = Fragment.n_fragments ft in
  let resolved = Array.make n [||] in
  resolved.(0) <- Array.copy root_ctx;
  let lookup v =
    match v with
    | Var.Sel_ctx _ -> ctx_lookup resolved v
    | Var.Qual _ -> qual_lookup v
    | Var.Qual_at _ -> None
  in
  (* Parents have smaller ids: a forward sweep is top-down. *)
  for fid = 1 to n - 1 do
    resolved.(fid) <-
      (match ctx_of fid with
      | None -> [||]
      | Some vec ->
          Array.map
            (fun f -> ground_exn "context entry" (Formula.subst lookup f))
            vec)
  done;
  resolved

let full_lookup ~quals ~ctxs v =
  match v with
  | Var.Qual _ -> qual_lookup quals v
  | Var.Sel_ctx _ -> ctx_lookup ctxs v
  | Var.Qual_at _ -> None

module Pe = Pax_engine.Pe
module Cluster = Pax_dist.Cluster
module Query = Pax_xpath.Query

type ctor =
  Pax_frag.Fragment.t -> n_sites:int -> assign:(int -> int) -> Pe.packed

let syntax_error pos msg = Printf.sprintf "syntax error at %d: %s" pos msg

let ids_text ids = String.concat "," (List.map string_of_int ids)

(* PaX2/PaX3, plain or annotated, share everything but the runner. *)
let xpath ~ename ~annotations ~runner : ctor =
 fun ftree ~n_sites ~assign ->
  (module struct
    type query = Query.t

    let name = ename

    let parse text =
      match Query.of_string text with
      | q -> Ok q
      | exception Pax_xpath.Parse.Syntax_error { pos; msg } ->
          Error (syntax_error pos msg)

    let make_cluster ?domains ?transport () =
      Cluster.create ?domains ?transport ~ftree ~n_sites ~assign ()

    let run cl q =
      let r = runner ~annotations cl q in
      {
        Pe.engine = ename;
        query = q.Query.source;
        answer_keys = r.Run_result.answer_ids;
        answers_text = ids_text r.Run_result.answer_ids;
        report = r.Run_result.report;
        trace = r.Run_result.trace;
        audit = Guarantee.audit ~engine:ename ~ftree r;
      }
  end)

let pax2_run ~annotations cl q = Pax2.run ~annotations cl q
let pax3_run ~annotations cl q = Pax3.run ~annotations cl q
let pax2 = xpath ~ename:"pax2" ~annotations:false ~runner:pax2_run
let pax2_xa = xpath ~ename:"pax2-xa" ~annotations:true ~runner:pax2_run
let pax3 = xpath ~ename:"pax3" ~annotations:false ~runner:pax3_run
let pax3_xa = xpath ~ename:"pax3-xa" ~annotations:true ~runner:pax3_run

let parbox : ctor =
 fun ftree ~n_sites ~assign ->
  (module struct
    (* Keep the source text: it is the canonical query the outcome
       echoes, and ParBoX's audit wraps it back into a Query.t. *)
    type query = string * Pax_xpath.Ast.qual

    let name = "parbox"

    let parse text =
      match Pax_xpath.Parse.qual text with
      | q -> Ok (text, q)
      | exception Pax_xpath.Parse.Syntax_error { pos; msg } ->
          Error (syntax_error pos msg)

    let make_cluster ?domains ?transport () =
      Cluster.create ?domains ?transport ~ftree ~n_sites ~assign ()

    let run cl (source, qual) =
      let answer, report = Parbox.eval cl qual in
      let rq =
        Query.of_ast ~source
          {
            Pax_xpath.Ast.absolute = false;
            path = Pax_xpath.Ast.Qualified (Pax_xpath.Ast.Empty, qual);
          }
      in
      let r =
        Run_result.make ~trace:(Cluster.trace cl) ~query:rq ~answers:[]
          ~report ()
      in
      {
        Pe.engine = name;
        query = source;
        answer_keys = (if answer then [ 1 ] else []);
        answers_text = string_of_bool answer;
        report;
        trace = Some (Cluster.trace cl);
        audit = Guarantee.audit ~engine:name ~ftree r;
      }
  end)

let of_name = function
  | "pax2" -> Some pax2
  | "pax2-xa" -> Some pax2_xa
  | "pax3" -> Some pax3
  | "pax3-xa" -> Some pax3_xa
  | "parbox" -> Some parbox
  | _ -> None

let names = [ "pax2"; "pax2-xa"; "pax3"; "pax3-xa"; "parbox" ]

(** The stage passes of {!Sel_pass}, {!Qual_pass} and PaX2's combined
    traversal over flat fragment images ({!Pax_xml.Flat},
    docs/FLATTREE.md).

    Same recurrences, same formula-construction order, same operation
    counting as the pointer passes — only the node representation
    changes: tag tests compare interned int codes, text/attribute tests
    read the shared byte buffer in place, traversal follows int vectors.
    A flat run is bit-identical to a pointer run through every oracle
    (answers, visit vectors, ops, trace events, audits); the engine seam
    tests assert this clean and under faults.

    The [#document] wrapper of an absolute query has no slot; it is
    evaluated through the pointer kernel on a materialized node. *)

module Formula = Pax_bool.Formula

(** Whether the flat hot path is on ([PAX_FLAT] unset or not ["0"]).
    Engines take [?flat] defaulting to this. *)
val enabled : unit -> bool

(** {1 Plans} *)

(** A compiled query lowered against one store's intern table: tag
    tests and attribute-key names as int codes.  Build once per run
    (the table is store-wide, so one plan serves every fragment). *)
type plan

(** [make_plan compiled intern] looks codes up without inserting; a
    label the store never interned matches no node. *)
val make_plan : Pax_xpath.Compile.t -> Pax_xml.Intern.t -> plan

(** {1 Qualifier pass} — {!Qual_pass.run} over a flat image. *)

type qual = {
  q_flat : Pax_xml.Flat.t;
  q_vecs : Formula.t array array;  (** slot → qualifier vector *)
  q_wrap : (Pax_xml.Tree.node * Formula.t array) option;
      (** the materialized [#document] wrapper and its vector, when the
          eval root was wrapped *)
  q_root_vec : Formula.t array;  (** eval root's vector (wrapper if any) *)
  q_ops : int;
}

(** [qual_run plan flat ~is_root] — bottom-up qualifier vectors for
    every slot; [is_root] marks fragment 0, whose root an absolute
    query wraps in a [#document] node. *)
val qual_run : plan -> Pax_xml.Flat.t -> is_root:bool -> qual

(** [qual_resolve q lookup] substitutes boundary variables in every
    stored vector in place (wrapper included), returning the operation
    count — same as {!Qual_pass.resolve}. *)
val qual_resolve : qual -> (Pax_bool.Var.t -> Formula.t option) -> int

(** {1 Selection pass} — {!Sel_pass.run} over a flat image. *)

(** [sel_run plan flat ~init ~is_root ~qual] — the top-down pass, with
    qualifier satisfaction read from a resolved [qual] (or trivially
    when [None]: no qualifier entries).  [is_root] plays the role of
    [root_is_context] and selects [#document] wrapping for absolute
    queries.  Answer and candidate nodes are the live pointer nodes
    ([Flat.orig]), so downstream resolution is unchanged. *)
val sel_run :
  plan ->
  Pax_xml.Flat.t ->
  init:Formula.t array ->
  is_root:bool ->
  qual:qual option ->
  Sel_pass.outcome

(** {1 Combined pass} — PaX2's single interleaved traversal. *)

(** Same shape as [Pax2.Combined.outcome] (re-exported there as an
    equation). *)
type combined_outcome = {
  root_qvec : Formula.t array;
  answers : Pax_xml.Tree.node list;
  candidates : (Pax_xml.Tree.node * Formula.t) list;
  contexts : (int * Formula.t array) list;
  ops : int;
}

(** The qualifier entries selection filters consult (sorted, unique). *)
val placeholder_entries : Pax_xpath.Compile.t -> int list

(** [combined_run plan flat ~init ~is_root] — pre-order selection with
    placeholder qualifiers interleaved with post-order qualifier
    vectors, local placeholders resolved before returning; mirror of
    [Pax2.Combined.run]. *)
val combined_run :
  plan ->
  Pax_xml.Flat.t ->
  init:Formula.t array ->
  is_root:bool ->
  combined_outcome

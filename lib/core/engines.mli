(** The XPath engines packaged behind the engine-agnostic seam
    (docs/ENGINES.md): each constructor bakes a placement — fragment
    tree, site count, assignment — into a {!Pax_engine.Pe.packed}
    value, so callers above the seam (serving layer, CLI coordinator,
    benches) never touch fragment trees.

    Names are stable identifiers: ["pax2"]/["pax3"] are the plain
    engines, ["pax2-xa"]/["pax3-xa"] the annotated runs (paper §5 —
    annotations only remove visits, so the same guarantee caps hold;
    see {!Guarantee.visit_limit}), ["parbox"] the Boolean special
    case.  Answer keys are sorted node ids, except ParBoX where they
    are [[1]] (true) or [[]] (false). *)

type ctor =
  Pax_frag.Fragment.t -> n_sites:int -> assign:(int -> int) ->
  Pax_engine.Pe.packed

val pax2 : ctor
val pax2_xa : ctor
val pax3 : ctor
val pax3_xa : ctor
val parbox : ctor

(** Constructor by stable name, [None] for unknown names. *)
val of_name : string -> ctor option

(** All stable names, in mounting order. *)
val names : string list

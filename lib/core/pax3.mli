(** Algorithm PaX3 (paper §3): three-stage partial evaluation of a
    data-selecting XPath query over a fragmented, distributed tree.

    - {b Stage 1} — every site partially evaluates the qualifier vectors
      of all its fragments bottom-up, in parallel, shipping the root
      vectors (residual formulas) to the coordinator, which unifies them
      over the fragment tree ([evalFT]).  Skipped entirely when the
      query has no qualifier entries.
    - {b Stage 2} — the coordinator ships the unified qualifier values
      back; every site grounds its stored vectors and runs the top-down
      selection pass, starting from symbolic context variables (or from
      annotation-derived ground entries when [annotations] is set).
      Certain answers travel back with the response; context vectors for
      sub-fragments go to the coordinator, which unifies them top-down.
    - {b Stage 3} — only sites still holding candidate answers receive
      their grounded contexts, resolve the candidates locally and ship
      the remaining answers.

    Guarantees (checked by the test-suite): ≤ 3 visits per site,
    communication [O(|Q| |FT| + |ans|)] with only answer elements as
    tree data, total computation [O(|Q| |T|)].

    With [annotations:true], Stage 2 skips fragments that provably
    cannot contain answers (§5), and fragments whose annotation-derived
    context is fully ground produce no candidates, removing their
    Stage 3 visit. *)

(** [?flat] selects the hot path for in-process fragment evaluation:
    flat images ({!Flat_pass}, the default per {!Flat_pass.enabled}) or
    the original pointer traversal.  Both are bit-identical through
    every observable. *)
val run :
  ?annotations:bool ->
  ?flat:bool ->
  Pax_dist.Cluster.t ->
  Pax_xpath.Query.t ->
  Run_result.t

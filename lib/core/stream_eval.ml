module Tree = Pax_xml.Tree
module Sax = Pax_xml.Sax
module Compile = Pax_xpath.Compile
module Query = Pax_xpath.Query
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var

type result = {
  matches : int list;
  elements : int;
  max_depth : int;
  peak_pending : int;
}

(* One frame per open element. *)
type frame = {
  index : int;  (** pre-order index; -1 for the synthetic document node *)
  tag : string;
  attrs : (string * string) list;
  text : Buffer.t;
  sv : Formula.t array;
  acc : Formula.t array;  (** OR of closed children's qualifier vectors *)
  mutable issued : bool;  (** did this frame defer any filter to close? *)
}

type state = {
  compiled : Compile.t;
  mutable stack : frame list;
  sigma : (int * int, Formula.t) Hashtbl.t;
      (** (pre-order index, n_qual + item index) → filter value *)
  mutable pending : (int * Formula.t) list;
  mutable matches : int list;  (** decided at the open tag already *)
  mutable elements : int;
  mutable max_depth : int;
  mutable peak_pending : int;
  mutable n_pending : int;
}

(* Does a filter need the element's subtree or character data?  If not
   (pure attribute logic) it is decidable at the open tag. *)
let rec needs_close compiled = function
  | Compile.Sat pi ->
      Array.length compiled.Compile.paths.(pi).Compile.items > 0
  | Compile.Text_eq _ | Compile.Val_cmp _ -> true
  | Compile.Attr_test _ -> false
  | Compile.Qnot q -> needs_close compiled q
  | Compile.Qand (a, b) | Compile.Qor (a, b) ->
      needs_close compiled a || needs_close compiled b

let open_view (fr : frame) : Qual_pass.view =
  {
    Qual_pass.vtag = fr.tag;
    vtext = "";
    vnum = None;
    vattr = (fun name -> List.assoc_opt name fr.attrs);
  }

let close_view (fr : frame) : Qual_pass.view =
  let text = Buffer.contents fr.text in
  {
    Qual_pass.vtag = fr.tag;
    vtext = text;
    vnum = float_of_string_opt (String.trim text);
    vattr = (fun name -> List.assoc_opt name fr.attrs);
  }

let open_element ?index st ~is_context tag attrs =
  let compiled = st.compiled in
  let n_sel = compiled.Compile.n_sel in
  let index =
    match index with
    | Some i -> i
    | None ->
        let i = st.elements in
        st.elements <- st.elements + 1;
        i
  in
  let parent_sv =
    match st.stack with
    | fr :: _ -> fr.sv
    | [] -> Array.make n_sel Formula.false_
  in
  let fr =
    {
      index;
      tag;
      attrs;
      text = Buffer.create 8;
      sv = Array.make n_sel Formula.false_;
      acc = Array.make compiled.Compile.n_qual Formula.false_;
      issued = false;
    }
  in
  fr.sv.(0) <- Formula.bool is_context;
  Array.iteri
    (fun j item ->
      let i = j + 1 in
      match item with
      | Compile.Move test ->
          fr.sv.(i) <-
            (if Compile.matches test tag then parent_sv.(j) else Formula.false_)
      | Compile.Dos_item -> fr.sv.(i) <- Formula.disj parent_sv.(i) fr.sv.(i - 1)
      | Compile.Filter q ->
          fr.sv.(i) <-
            (if fr.sv.(i - 1) = Formula.false_ then Formula.false_
             else if needs_close compiled q then begin
               fr.issued <- true;
               Formula.conj fr.sv.(i - 1)
                 (Formula.var
                    (Var.Qual_at (index, compiled.Compile.n_qual + j)))
             end
             else
               Formula.conj fr.sv.(i - 1)
                 (Qual_pass.sat_view compiled [||] (open_view fr) q)))
    compiled.Compile.sel;
  let last = n_sel - 1 in
  (if index >= 0 then
     match Formula.to_bool fr.sv.(last) with
     | Some true ->
         (* Decided on sight: emit without buffering. *)
         st.matches <- index :: st.matches
     | Some false -> ()
     | None ->
         st.pending <- (index, fr.sv.(last)) :: st.pending;
         st.n_pending <- st.n_pending + 1;
         st.peak_pending <- max st.peak_pending st.n_pending);
  st.stack <- fr :: st.stack;
  st.max_depth <- max st.max_depth (List.length st.stack)

let close_element st =
  let compiled = st.compiled in
  match st.stack with
  | [] -> invalid_arg "Stream_eval: close without open"
  | fr :: rest ->
      st.stack <- rest;
      let view = close_view fr in
      (* Post-order: this element's full qualifier vector, from the
         accumulated child disjunctions. *)
      let qvec =
        Qual_pass.eval_entries compiled view ~exists_child:(fun e -> fr.acc.(e))
      in
      if fr.issued then
        Array.iteri
          (fun j item ->
            match item with
            | Compile.Filter q when needs_close compiled q ->
                Hashtbl.replace st.sigma
                  (fr.index, compiled.Compile.n_qual + j)
                  (Qual_pass.sat_view compiled qvec view q)
            | Compile.Filter _ | Compile.Move _ | Compile.Dos_item -> ())
          compiled.Compile.sel;
      (* Fold this node's vector into the parent's accumulator. *)
      (match st.stack with
      | parent :: _ ->
          Array.iteri
            (fun e f -> parent.acc.(e) <- Formula.disj parent.acc.(e) f)
            qvec
      | [] -> ())

let over_events (q : Query.t) (events : Sax.event list) : result =
  let compiled = q.Query.compiled in
  let st =
    {
      compiled;
      stack = [];
      sigma = Hashtbl.create 64;
      pending = [];
      matches = [];
      elements = 0;
      max_depth = 0;
      peak_pending = 0;
      n_pending = 0;
    }
  in
  (* Absolute queries start from a synthetic document frame, processed
     like any element (its filters defer to its close at end of
     stream); the negative index keeps it out of the answers. *)
  if compiled.Compile.absolute then
    open_element ~index:(-1) st ~is_context:true "#document" [];
  let first = ref true in
  List.iter
    (fun (e : Sax.event) ->
      match e with
      | Sax.Open (tag, attrs) ->
          let is_context = !first && not compiled.Compile.absolute in
          first := false;
          open_element st ~is_context tag attrs
      | Sax.Text s -> (
          match st.stack with
          | fr :: _ -> Buffer.add_string fr.text s
          | [] -> ())
      | Sax.Close _ -> close_element st)
    events;
  if compiled.Compile.absolute then close_element st;
  let lookup = function
    | Var.Qual_at (nid, e) -> Hashtbl.find_opt st.sigma (nid, e)
    | Var.Qual _ | Var.Sel_ctx _ -> None
  in
  let late =
    List.filter_map
      (fun (index, f) ->
        match Formula.to_bool (Formula.subst lookup f) with
        | Some true -> Some index
        | Some false -> None
        | None -> invalid_arg "Stream_eval: unresolved candidate")
      st.pending
  in
  {
    matches = List.sort compare (st.matches @ late);
    elements = st.elements;
    max_depth = st.max_depth;
    peak_pending = st.peak_pending;
  }

let over_string q xml = over_events q (Sax.events_of_string xml)

let indices_of_answers root answers =
  let ids = List.map (fun (n : Tree.node) -> n.Tree.id) answers in
  let indices = ref [] in
  let counter = ref 0 in
  Tree.iter
    (fun n ->
      if List.mem n.Tree.id ids then indices := !counter :: !indices;
      incr counter)
    root;
  List.sort compare !indices

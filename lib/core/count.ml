module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Measure = Pax_dist.Measure

let spf = Printf.sprintf

(* Same protocol skeleton as PaX2, with counts in place of elements: a
   per-fragment certain count travels with the stage-1 response, and
   candidate resolutions return one integer per fragment. *)
let run ?(annotations = false) (cl : Cluster.t) (q : Query.t) :
    int * Cluster.report =
  Cluster.reset cl;
  let ft = Cluster.ftree cl in
  let n_frag = Fragment.n_fragments ft in
  let compiled = q.Query.compiled in
  let analysis = if annotations then Some (Annot.analyze compiled ft) else None in
  let relevant fid =
    match analysis with None -> true | Some a -> a.Annot.relevant.(fid)
  in
  let eval_roots =
    Array.init n_frag (fun fid ->
        let root = (Fragment.fragment ft fid).Fragment.root in
        if fid = 0 then fst (Sel_pass.context_root compiled root) else root)
  in
  let init_for fid =
    if fid = 0 then Sel_pass.blank_init compiled
    else
      match analysis with
      | Some a -> Annot.init_of_ctx compiled ~fid a.Annot.ctx.(fid)
      | None -> Sel_pass.symbolic_init compiled ~fid
  in
  let rel_fids = List.filter relevant (Fragment.top_down ft) in
  let stage1_sites = Cluster.sites_holding cl rel_fids in
  let outcomes : Pax2.Combined.outcome option array = Array.make n_frag None in
  ignore
    (Cluster.run_round cl ~label:"stage1" ~sites:stage1_sites (fun site ->
         List.iter
           (fun fid ->
             if relevant fid then begin
               let oc =
                 Pax2.Combined.run compiled ~init:(init_for fid)
                   ~root_is_context:(fid = 0) eval_roots.(fid)
               in
               outcomes.(fid) <- Some oc;
               Cluster.add_ops cl ~site oc.Pax2.Combined.ops
             end)
           (Cluster.fragments_on cl site)));
  List.iter
    (fun site ->
      Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Query
        ~bytes:(Measure.query q) ~label:"Q";
      List.iter
        (fun fid ->
          match outcomes.(fid) with
          | Some oc ->
              if compiled.Compile.n_qual > 0 then
                Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Vectors
                  ~bytes:(Measure.formula_array oc.Pax2.Combined.root_qvec)
                  ~label:(spf "QV(F%d)" fid);
              List.iter
                (fun (sub, vec) ->
                  Cluster.send cl ~src:(Site site) ~dst:Coordinator
                    ~kind:Vectors ~bytes:(Measure.formula_array vec)
                    ~label:(spf "SV(F%d)" sub))
                oc.Pax2.Combined.contexts;
              (* The certain count: one varint, not the elements. *)
              Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Vectors
                ~bytes:8 ~label:(spf "count(F%d)" fid)
          | None -> ())
        (Cluster.fragments_on cl site))
    stage1_sites;
  let resolved_quals =
    Cluster.coord cl ~label:"evalFT:quals" (fun () ->
        Eval_ft.resolve_quals ft ~root_vecs:(fun fid ->
            Option.map (fun oc -> oc.Pax2.Combined.root_qvec) outcomes.(fid)))
  in
  let qual_lookup = Eval_ft.qual_lookup resolved_quals in
  let raw_ctx = Array.make n_frag None in
  Array.iter
    (function
      | Some oc ->
          List.iter
            (fun (sub, vec) -> raw_ctx.(sub) <- Some vec)
            oc.Pax2.Combined.contexts
      | None -> ())
    outcomes;
  let resolved_ctx =
    Cluster.coord cl ~label:"evalFT:contexts" (fun () ->
        Eval_ft.resolve_contexts ft
          ~root_ctx:(Array.make compiled.Compile.n_sel false)
          ~ctx_of:(fun fid -> raw_ctx.(fid))
          ~qual_lookup)
  in
  let full_lookup = Eval_ft.full_lookup ~quals:resolved_quals ~ctxs:resolved_ctx in
  let has_candidates fid =
    match outcomes.(fid) with
    | Some oc -> oc.Pax2.Combined.candidates <> []
    | None -> false
  in
  let cand_fids = List.filter has_candidates (Fragment.top_down ft) in
  let stage2_sites = Cluster.sites_holding cl cand_fids in
  let stage2_counts =
    Cluster.run_round cl ~label:"stage2" ~sites:stage2_sites (fun site ->
        List.fold_left
          (fun acc fid ->
            match outcomes.(fid) with
            | Some oc when oc.Pax2.Combined.candidates <> [] ->
                List.fold_left
                  (fun acc ((v : Tree.node), f) ->
                    Cluster.add_ops cl ~site 1;
                    match Formula.to_bool (Formula.subst full_lookup f) with
                    | Some true when v.Tree.id >= 0 -> acc + 1
                    | Some _ -> acc
                    | None -> invalid_arg "Count: candidate failed to resolve")
                  acc oc.Pax2.Combined.candidates
            | Some _ | None -> acc)
          0
          (Cluster.fragments_on cl site))
  in
  List.iter
    (fun site ->
      List.iter
        (fun fid ->
          if has_candidates fid then begin
            Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Resolution
              ~bytes:(Measure.bool_array resolved_ctx.(fid))
              ~label:(spf "SV*(F%d)" fid);
            List.iter
              (fun sub ->
                Cluster.send cl ~src:Coordinator ~dst:(Site site)
                  ~kind:Resolution
                  ~bytes:(Measure.bool_array resolved_quals.(sub))
                  ~label:(spf "QV*(F%d)" sub))
              ft.Fragment.children.(fid)
          end)
        (Cluster.fragments_on cl site);
      Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Vectors ~bytes:8
        ~label:"count")
    stage2_sites;
  let certain =
    Array.fold_left
      (fun acc oc ->
        match oc with
        | Some oc -> acc + List.length oc.Pax2.Combined.answers
        | None -> acc)
      0 outcomes
  in
  let total = certain + List.fold_left (fun acc (_, c) -> acc + c) 0 stage2_counts in
  (total, Cluster.report cl)

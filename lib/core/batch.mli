(** Multi-query evaluation: a whole batch of queries in the same two
    communication rounds.

    Each visit is the expensive part in a WAN setting; since PaX2's
    protocol is query-independent, [n] queries can share the rounds —
    every site is still visited at most twice {e in total}, and the
    communication stays [O(Σ|Qᵢ| |FT| + Σ|ansᵢ|)]. *)

type t = {
  results : (Pax_xpath.Query.t * Pax_xml.Tree.node list) list;
      (** per query, answers sorted by node id *)
  report : Pax_dist.Cluster.report;
}

val run : ?annotations:bool -> Pax_dist.Cluster.t -> Pax_xpath.Query.t list -> t

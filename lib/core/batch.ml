module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Measure = Pax_dist.Measure

type t = {
  results : (Query.t * Tree.node list) list;
  report : Cluster.report;
}

type per_query = {
  q : Query.t;
  compiled : Compile.t;
  analysis : Annot.analysis option;
  outcomes : Pax2.Combined.outcome option array;
  mutable resolved_quals : bool array array;
  mutable resolved_ctx : bool array array;
}

let run ?(annotations = false) (cl : Cluster.t) (queries : Query.t list) : t =
  Cluster.reset cl;
  let ft = Cluster.ftree cl in
  let n_frag = Fragment.n_fragments ft in
  let states =
    List.map
      (fun q ->
        let compiled = q.Query.compiled in
        {
          q;
          compiled;
          analysis =
            (if annotations then Some (Annot.analyze compiled ft) else None);
          outcomes = Array.make n_frag None;
          resolved_quals = [||];
          resolved_ctx = [||];
        })
      queries
  in
  let relevant st fid =
    match st.analysis with None -> true | Some a -> a.Annot.relevant.(fid)
  in
  let eval_root st fid =
    let root = (Fragment.fragment ft fid).Fragment.root in
    if fid = 0 then fst (Sel_pass.context_root st.compiled root) else root
  in
  let init_for st fid =
    if fid = 0 then Sel_pass.blank_init st.compiled
    else
      match st.analysis with
      | Some a -> Annot.init_of_ctx st.compiled ~fid a.Annot.ctx.(fid)
      | None -> Sel_pass.symbolic_init st.compiled ~fid
  in

  (* ---- Round 1: every relevant (site, query) pair, one visit ------ *)
  let relevant_sites =
    Cluster.sites_holding cl
      (List.filter
         (fun fid -> List.exists (fun st -> relevant st fid) states)
         (Fragment.top_down ft))
  in
  ignore
    (Cluster.run_round cl ~label:"stage1" ~sites:relevant_sites (fun site ->
         List.iter
           (fun fid ->
             List.iter
               (fun st ->
                 if relevant st fid then begin
                   let oc =
                     Pax2.Combined.run st.compiled ~init:(init_for st fid)
                       ~root_is_context:(fid = 0) (eval_root st fid)
                   in
                   st.outcomes.(fid) <- Some oc;
                   Cluster.add_ops cl ~site oc.Pax2.Combined.ops
                 end)
               states)
           (Cluster.fragments_on cl site)));
  List.iter
    (fun site ->
      List.iter
        (fun st ->
          Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Query
            ~bytes:(Measure.query st.q) ~label:"Q";
          List.iter
            (fun fid ->
              match st.outcomes.(fid) with
              | Some oc ->
                  if st.compiled.Compile.n_qual > 0 then
                    Cluster.send cl ~src:(Site site) ~dst:Coordinator
                      ~kind:Vectors
                      ~bytes:(Measure.formula_array oc.Pax2.Combined.root_qvec)
                      ~label:"QV";
                  List.iter
                    (fun (_, vec) ->
                      Cluster.send cl ~src:(Site site) ~dst:Coordinator
                        ~kind:Vectors ~bytes:(Measure.formula_array vec)
                        ~label:"SV")
                    oc.Pax2.Combined.contexts;
                  if oc.Pax2.Combined.answers <> [] then
                    Cluster.send cl ~src:(Site site) ~dst:Coordinator
                      ~kind:Answers
                      ~bytes:(Measure.answers oc.Pax2.Combined.answers)
                      ~label:"ans"
              | None -> ())
            (Cluster.fragments_on cl site))
        states)
    relevant_sites;

  (* ---- Coordinator: unify per query --------------------------------- *)
  Cluster.coord cl ~label:"evalFT" (fun () ->
      List.iter
        (fun st ->
          st.resolved_quals <-
            Eval_ft.resolve_quals ft ~root_vecs:(fun fid ->
                Option.map (fun oc -> oc.Pax2.Combined.root_qvec) st.outcomes.(fid));
          let raw_ctx = Array.make n_frag None in
          Array.iter
            (function
              | Some oc ->
                  List.iter
                    (fun (sub, vec) -> raw_ctx.(sub) <- Some vec)
                    oc.Pax2.Combined.contexts
              | None -> ())
            st.outcomes;
          st.resolved_ctx <-
            Eval_ft.resolve_contexts ft
              ~root_ctx:(Array.make st.compiled.Compile.n_sel false)
              ~ctx_of:(fun fid -> raw_ctx.(fid))
              ~qual_lookup:(Eval_ft.qual_lookup st.resolved_quals))
        states);

  (* ---- Round 2: one visit per site holding any candidate ---------- *)
  let has_candidates st fid =
    match st.outcomes.(fid) with
    | Some oc -> oc.Pax2.Combined.candidates <> []
    | None -> false
  in
  let cand_sites =
    Cluster.sites_holding cl
      (List.filter
         (fun fid -> List.exists (fun st -> has_candidates st fid) states)
         (Fragment.top_down ft))
  in
  let resolved_answers =
    Cluster.run_round cl ~label:"stage2" ~sites:cand_sites (fun site ->
        List.map
          (fun st ->
            let lookup =
              Eval_ft.full_lookup ~quals:st.resolved_quals ~ctxs:st.resolved_ctx
            in
            let answers =
              List.concat_map
                (fun fid ->
                  match st.outcomes.(fid) with
                  | Some oc when oc.Pax2.Combined.candidates <> [] ->
                      List.filter_map
                        (fun ((v : Tree.node), f) ->
                          Cluster.add_ops cl ~site 1;
                          match Formula.to_bool (Formula.subst lookup f) with
                          | Some true when v.Tree.id >= 0 -> Some v
                          | Some _ -> None
                          | None -> invalid_arg "Batch: unresolved candidate")
                        oc.Pax2.Combined.candidates
                  | Some _ | None -> [])
                (Cluster.fragments_on cl site)
            in
            if answers <> [] then
              Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Answers
                ~bytes:(Measure.answers answers) ~label:"ans";
            answers)
          states)
  in
  List.iter
    (fun site ->
      List.iter
        (fun st ->
          List.iter
            (fun fid ->
              if has_candidates st fid then
                Cluster.send cl ~src:Coordinator ~dst:(Site site)
                  ~kind:Resolution
                  ~bytes:(Measure.bool_array st.resolved_ctx.(fid))
                  ~label:"SV*")
            (Cluster.fragments_on cl site))
        states)
    cand_sites;

  let results =
    List.mapi
      (fun qi st ->
        let certain =
          Array.to_list st.outcomes
          |> List.concat_map (function
               | Some oc -> oc.Pax2.Combined.answers
               | None -> [])
        in
        let late =
          List.concat_map (fun (_, per_q) -> List.nth per_q qi) resolved_answers
        in
        let all =
          List.sort_uniq
            (fun (a : Tree.node) (b : Tree.node) -> compare a.Tree.id b.Tree.id)
            (certain @ late)
        in
        (st.q, all))
      states
  in
  { results; report = Cluster.report cl }

module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster

let run (cl : Cluster.t) (q : Pax_xpath.Query.t) : Run_result.t =
  Cluster.reset cl;
  let ft = Cluster.ftree cl in
  let fids = Fragment.top_down ft in
  (* Every remote site ships its fragments; the root fragment is already
     at the query site. *)
  let remote = List.filter (fun fid -> fid <> 0) fids in
  let sites = Cluster.sites_holding cl remote in
  ignore
    (Cluster.run_round cl ~label:"ship" ~sites (fun site ->
         List.iter
           (fun fid ->
             if fid <> 0 then
               Cluster.send cl ~src:(Site site) ~dst:Coordinator
                 ~kind:Tree_data
                 ~bytes:(Fragment.fragment_byte_size (Fragment.fragment ft fid))
                 ~label:(Printf.sprintf "F%d" fid))
           (Cluster.fragments_on cl site)));
  let result =
    Cluster.coord cl ~label:"reassemble+evaluate" (fun () ->
        let tree = Fragment.reassemble ft in
        let r = Centralized.run q tree in
        Cluster.add_ops cl ~site:(-1) (r.Centralized.qual_ops + r.Centralized.sel_ops);
        r)
  in
  Run_result.make ~trace:(Cluster.trace cl) ~query:q
    ~answers:result.Centralized.answers
    ~report:(Cluster.report cl) ()

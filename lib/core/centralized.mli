(** Centralized two-pass evaluation on an unfragmented tree — the
    [O(|T| |Q|)] baseline the paper compares total computation against
    (Gottlob et al. style: one bottom-up qualifier pass, one top-down
    selection pass).

    This is the engine {!Naive} runs after shipping and reassembling all
    fragments, and the single-site special case of PaX. *)

type result = {
  answers : Pax_xml.Tree.node list;  (** in document order *)
  answer_ids : int list;  (** sorted ids *)
  qual_ops : int;
  sel_ops : int;
}

(** [run query root] — [root] must contain no virtual nodes.
    @raise Invalid_argument on a tree with virtual nodes. *)
val run : Pax_xpath.Query.t -> Pax_xml.Tree.node -> result

(** [eval_ids query root] — just the sorted answer ids. *)
val eval_ids : Pax_xpath.Query.t -> Pax_xml.Tree.node -> int list

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula
module Fragment = Pax_frag.Fragment

type result = {
  answer_ids : int list;
  swap_ins : int;
  bytes_loaded : int;
  n_fragments : int;
  peak_fragment_nodes : int;
}

let fragment_setup ~memory_budget (doc : Tree.doc) =
  let cuts = Fragment.cuts_by_size doc ~budget:memory_budget in
  let ft = Fragment.fragmentize doc ~cuts in
  let peak =
    Array.fold_left
      (fun acc f -> max acc (Fragment.fragment_node_count f))
      0 ft.Fragment.fragments
  in
  (ft, peak)

let eval_root compiled ft fid =
  let root = (Fragment.fragment ft fid).Fragment.root in
  if fid = 0 then fst (Sel_pass.context_root compiled root) else root

let init_for compiled fid =
  if fid = 0 then Sel_pass.blank_init compiled
  else Sel_pass.symbolic_init compiled ~fid

let finish ~answers ~swaps ~bytes ~ft ~peak =
  {
    answer_ids = List.sort_uniq compare answers;
    swap_ins = swaps;
    bytes_loaded = bytes;
    n_fragments = Fragment.n_fragments ft;
    peak_fragment_nodes = peak;
  }

let load counters ft fid =
  let swaps, bytes = counters in
  incr swaps;
  bytes := !bytes + Fragment.fragment_byte_size (Fragment.fragment ft fid)

let run ~memory_budget (q : Query.t) (doc : Tree.doc) : result =
  let compiled = q.Query.compiled in
  let ft, peak = fragment_setup ~memory_budget doc in
  let n = Fragment.n_fragments ft in
  let swaps = ref 0 and bytes = ref 0 in
  let outcomes = Array.make n None in
  (* One swap-in per fragment: the combined traversal extracts
     everything the resolution needs. *)
  List.iter
    (fun fid ->
      load (swaps, bytes) ft fid;
      let oc =
        Pax2.Combined.run compiled ~init:(init_for compiled fid)
          ~root_is_context:(fid = 0) (eval_root compiled ft fid)
      in
      outcomes.(fid) <- Some oc)
    (Fragment.top_down ft);
  let resolved_quals =
    Eval_ft.resolve_quals ft ~root_vecs:(fun fid ->
        Option.map (fun oc -> oc.Pax2.Combined.root_qvec) outcomes.(fid))
  in
  let qual_lookup = Eval_ft.qual_lookup resolved_quals in
  let raw_ctx = Array.make n None in
  Array.iter
    (function
      | Some oc ->
          List.iter
            (fun (sub, vec) -> raw_ctx.(sub) <- Some vec)
            oc.Pax2.Combined.contexts
      | None -> ())
    outcomes;
  let resolved_ctx =
    Eval_ft.resolve_contexts ft
      ~root_ctx:(Array.make compiled.Compile.n_sel false)
      ~ctx_of:(fun fid -> raw_ctx.(fid))
      ~qual_lookup
  in
  let lookup = Eval_ft.full_lookup ~quals:resolved_quals ~ctxs:resolved_ctx in
  let answers = ref [] in
  Array.iter
    (function
      | Some oc ->
          List.iter
            (fun (v : Tree.node) -> answers := v.Tree.id :: !answers)
            oc.Pax2.Combined.answers;
          List.iter
            (fun ((v : Tree.node), f) ->
              match Formula.to_bool (Formula.subst lookup f) with
              | Some true when v.Tree.id >= 0 -> answers := v.Tree.id :: !answers
              | Some _ -> ()
              | None -> invalid_arg "Paging.run: unresolved candidate")
            oc.Pax2.Combined.candidates
      | None -> ())
    outcomes;
  finish ~answers:!answers ~swaps:!swaps ~bytes:!bytes ~ft ~peak

let run_two_pass ~memory_budget (q : Query.t) (doc : Tree.doc) : result =
  let compiled = q.Query.compiled in
  let ft, peak = fragment_setup ~memory_budget doc in
  let n = Fragment.n_fragments ft in
  let swaps = ref 0 and bytes = ref 0 in
  (* Pass 1: qualifiers — every fragment paged in once. *)
  let qp_store = Array.make n None in
  if not (Compile.no_qualifiers compiled) then
    List.iter
      (fun fid ->
        load (swaps, bytes) ft fid;
        qp_store.(fid) <- Some (Qual_pass.run compiled (eval_root compiled ft fid)))
      (Fragment.bottom_up ft);
  let resolved_quals =
    Eval_ft.resolve_quals ft ~root_vecs:(fun fid ->
        Option.map (fun qp -> qp.Qual_pass.root_vec) qp_store.(fid))
  in
  let qual_lookup = Eval_ft.qual_lookup resolved_quals in
  (* Pass 2: selection — every fragment paged in again. *)
  let outcomes = Array.make n None in
  List.iter
    (fun fid ->
      load (swaps, bytes) ft fid;
      (match qp_store.(fid) with
      | Some qp -> ignore (Qual_pass.resolve qp qual_lookup)
      | None -> ());
      let sat v filter =
        match qp_store.(fid) with
        | Some qp ->
            Qual_pass.sat compiled
              (Hashtbl.find qp.Qual_pass.vectors v.Tree.id)
              v filter
        | None -> Qual_pass.sat compiled [||] v filter
      in
      outcomes.(fid) <-
        Some
          (Sel_pass.run compiled ~init:(init_for compiled fid)
             ~root_is_context:(fid = 0) ~sat (eval_root compiled ft fid)))
    (Fragment.top_down ft);
  let raw_ctx = Array.make n None in
  Array.iter
    (function
      | Some oc ->
          List.iter (fun (sub, vec) -> raw_ctx.(sub) <- Some vec) oc.Sel_pass.contexts
      | None -> ())
    outcomes;
  let resolved_ctx =
    Eval_ft.resolve_contexts ft
      ~root_ctx:(Array.make compiled.Compile.n_sel false)
      ~ctx_of:(fun fid -> raw_ctx.(fid))
      ~qual_lookup
  in
  let ctx_lookup = Eval_ft.ctx_lookup resolved_ctx in
  (* Pass 3: fragments with candidates are paged in a third time. *)
  let answers = ref [] in
  Array.iteri
    (fun fid oc ->
      match oc with
      | Some oc ->
          List.iter
            (fun (v : Tree.node) ->
              if v.Tree.id >= 0 then answers := v.Tree.id :: !answers)
            oc.Sel_pass.answers;
          if oc.Sel_pass.candidates <> [] then begin
            load (swaps, bytes) ft fid;
            List.iter
              (fun ((v : Tree.node), f) ->
                match Formula.to_bool (Formula.subst ctx_lookup f) with
                | Some true when v.Tree.id >= 0 ->
                    answers := v.Tree.id :: !answers
                | Some _ -> ()
                | None -> invalid_arg "Paging.run_two_pass: unresolved candidate")
              oc.Sel_pass.candidates
          end
      | None -> ())
    outcomes;
  finish ~answers:!answers ~swaps:!swaps ~bytes:!bytes ~ft ~peak

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula

type result = {
  answers : Tree.node list;
  answer_ids : int list;
  qual_ops : int;
  sel_ops : int;
}

let run (q : Query.t) (root : Tree.node) : result =
  Tree.iter
    (fun n ->
      if Tree.is_virtual n then
        invalid_arg "Centralized.run: tree contains virtual nodes")
    root;
  let compiled = q.Query.compiled in
  let eval_root, root_is_context = Sel_pass.context_root compiled root in
  let qp, qual_ops =
    if Compile.no_qualifiers compiled then (None, 0)
    else begin
      let qp = Qual_pass.run compiled eval_root in
      (Some qp, qp.Qual_pass.ops)
    end
  in
  let sat v filter =
    match qp with
    | None -> Qual_pass.sat compiled [||] v filter
    | Some qp ->
        Qual_pass.sat compiled
          (Hashtbl.find qp.Qual_pass.vectors v.Tree.id)
          v filter
  in
  let outcome =
    Sel_pass.run compiled ~init:(Sel_pass.blank_init compiled)
      ~root_is_context ~sat eval_root
  in
  assert (outcome.Sel_pass.candidates = []);
  let answers = Sel_pass.real_answers outcome.Sel_pass.answers in
  {
    answers;
    answer_ids = List.sort compare (List.map (fun (n : Tree.node) -> n.id) answers);
    qual_ops;
    sel_ops = outcome.Sel_pass.ops;
  }

let eval_ids q root = (run q root).answer_ids

(** Index-based evaluation by structural joins — the
    region-encoding/holistic-join line of work the paper cites as its
    centralized comparison point (Bruno–Koudas–Srivastava twig joins).

    Every node gets a region label [(start, stop, level)] from one DFS;
    a per-tag index stores nodes in document order.  A location step is
    then a merge join over sorted regions:

    - [a // d] — containment: [a.start < d.start ∧ d.stop < a.stop];
    - [a / c] — containment plus [level(c) = level(a) + 1] (the
      containing ancestor at a given level is unique, so this is exact).

    Supported queries: selection paths without qualifiers (labels,
    wildcards, [/], [//]) — the class where index-based evaluation
    shines; richer queries belong to the navigational engines.  Used as
    a cross-check oracle and in the bench ablations. *)

type index

(** [build root] — one DFS; [O(|T|)] space. *)
val build : Pax_xml.Tree.node -> index

(** [supported q] — no qualifier entries anywhere. *)
val supported : Pax_xpath.Query.t -> bool

(** [run index q] — sorted answer ids.
    @raise Invalid_argument when the query is not {!supported}. *)
val run : index -> Pax_xpath.Query.t -> int list

(** Convenience: build + run. *)
val eval_ids : Pax_xpath.Query.t -> Pax_xml.Tree.node -> int list

(* The engine hot path over flat fragment images (docs/FLATTREE.md).

   These are the same three passes as {!Sel_pass}, {!Qual_pass} and
   {!Pax2.Combined} — same recurrences, same evaluation order, same
   operation counting — re-expressed over {!Pax_xml.Flat} slots: tag
   tests compare interned int codes, text and attribute tests compare
   against the shared byte buffer in place, and traversal follows the
   [first_child]/[next_sibling] int vectors instead of chasing node
   pointers.  Every formula the pointer passes would build is built
   here in the identical construction order, so a flat run is
   bit-identical through every oracle (answers, visit vectors, ops,
   trace events, audits) — test/test_engine_seam.ml asserts exactly
   that, clean and under faults.

   The one node that has no slot is the [#document] context wrapper an
   absolute query puts above the root fragment; it is evaluated
   through the original pointer code on a materialized wrapper node
   ({!Sel_pass.context_root}), keeping parity trivially. *)

module Tree = Pax_xml.Tree
module Flat = Pax_xml.Flat
module Intern = Pax_xml.Intern
module Compile = Pax_xpath.Compile
module Ast = Pax_xpath.Ast
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var

(* The flat hot path is the default; PAX_FLAT=0 forces the pointer
   passes (the seam tests run both and compare). *)
let enabled () =
  match Sys.getenv_opt "PAX_FLAT" with Some "0" -> false | _ -> true

(* ------------------------------------------------------------------ *)
(* plans: the compiled query lowered against a store's intern table   *)
(* ------------------------------------------------------------------ *)

(* A tag test as an int: [-2] matches any tag, [-1] (a label the store
   never interned) matches none, a code matches exactly that tag. *)

type fqual =
  | FSat_empty  (* Sat of an empty path: trivially true *)
  | FSat of int  (* Sat of path [p]: entry [p.sat.(0)] *)
  | FText_eq of string
  | FVal_cmp of Ast.cmp * float
  | FAttr_test of int * string option
  | FNot of fqual
  | FAnd of fqual * fqual
  | FOr of fqual * fqual

type fitem = FMove of int | FDos | FFilter of fqual

type fpath = {
  fitems : fitem array;
  fsat : int array;
  fstep : int array;
  fdesc : int array;
}

type plan = { compiled : Compile.t; fsel : fitem array; fpaths : fpath array }

let lower_test intern = function
  | Compile.TAny -> -2
  | Compile.TLabel s -> Intern.find intern s

let make_plan (compiled : Compile.t) intern : plan =
  let rec lower_qual = function
    | Compile.Sat pi ->
        let p = compiled.Compile.paths.(pi) in
        if Array.length p.Compile.items = 0 then FSat_empty
        else FSat p.Compile.sat.(0)
    | Compile.Text_eq s -> FText_eq s
    | Compile.Val_cmp (op, num) -> FVal_cmp (op, num)
    | Compile.Attr_test (name, value) ->
        FAttr_test (Intern.find intern name, value)
    | Compile.Qnot q -> FNot (lower_qual q)
    | Compile.Qand (a, b) -> FAnd (lower_qual a, lower_qual b)
    | Compile.Qor (a, b) -> FOr (lower_qual a, lower_qual b)
  in
  let lower_item = function
    | Compile.Move test -> FMove (lower_test intern test)
    | Compile.Dos_item -> FDos
    | Compile.Filter q -> FFilter (lower_qual q)
  in
  {
    compiled;
    fsel = Array.map lower_item compiled.Compile.sel;
    fpaths =
      Array.map
        (fun (p : Compile.cpath) ->
          {
            fitems = Array.map lower_item p.Compile.items;
            fsat = p.Compile.sat;
            fstep = p.Compile.step;
            fdesc = p.Compile.desc;
          })
        compiled.Compile.paths;
  }

(* ------------------------------------------------------------------ *)
(* qualifier satisfaction over a slot                                 *)
(* ------------------------------------------------------------------ *)

(* Mirror of {!Qual_pass.sat_view} with the lowered tests. *)
let rec fsat_view flat vec i = function
  | FSat_empty -> Formula.true_
  | FSat e -> vec.(e)
  | FText_eq s -> Formula.bool (Flat.text_equals flat i s)
  | FVal_cmp (op, num) ->
      Formula.bool
        (match Flat.num flat i with
        | Some f -> Ast.compare_num op f num
        | None -> false)
  | FAttr_test (key, expected) ->
      Formula.bool (Flat.attr_test flat i ~key ~expected)
  | FNot q -> Formula.not_ (fsat_view flat vec i q)
  | FAnd (a, b) ->
      Formula.conj (fsat_view flat vec i a) (fsat_view flat vec i b)
  | FOr (a, b) -> Formula.disj (fsat_view flat vec i a) (fsat_view flat vec i b)

(* Mirror of {!Qual_pass.eval_entries}: one element slot's qualifier
   vector, path by path, suffix-position descending. *)
let feval_entries plan flat i ~exists_child : Formula.t array =
  let vec = Array.make plan.compiled.Compile.n_qual Formula.false_ in
  let tagc = Flat.tag_code flat i in
  Array.iter
    (fun (p : fpath) ->
      let k = Array.length p.fitems in
      for j = k - 1 downto 0 do
        let a_next =
          if j + 1 = k then Formula.true_ else vec.(p.fsat.(j + 1))
        in
        match p.fitems.(j) with
        | FMove code ->
            vec.(p.fstep.(j)) <-
              (if code = -2 || code = tagc then a_next else Formula.false_);
            vec.(p.fsat.(j)) <- exists_child p.fstep.(j)
        | FDos ->
            let d =
              if j + 1 = k then Formula.true_
              else begin
                let e = p.fdesc.(j + 1) in
                vec.(e) <- Formula.disj a_next (exists_child e);
                vec.(e)
              end
            in
            vec.(p.fsat.(j)) <- d
        | FFilter q ->
            vec.(p.fsat.(j)) <-
              (if a_next = Formula.false_ then Formula.false_
               else Formula.conj (fsat_view flat vec i q) a_next)
      done)
    plan.fpaths;
  vec

(* ------------------------------------------------------------------ *)
(* qualifier pass (PaX3 stage 1, ParBoX)                              *)
(* ------------------------------------------------------------------ *)

type qual = {
  q_flat : Flat.t;
  q_vecs : Formula.t array array;  (* slot -> qualifier vector *)
  q_wrap : (Tree.node * Formula.t array) option;
      (* the #document wrapper and its vector, when the eval root was
         wrapped (root fragment of an absolute query) *)
  q_root_vec : Formula.t array;  (* eval root's vector (wrapper if any) *)
  q_ops : int;
}

(* Mirror of {!Qual_pass.run} on [eval_root fid]: [is_root] says this
   is fragment 0, whose root an absolute query wraps in a materialized
   [#document] node (evaluated through the pointer kernel). *)
let qual_run plan flat ~is_root : qual =
  let compiled = plan.compiled in
  let n_qual = compiled.Compile.n_qual in
  let vecs = Array.make (Flat.length flat) [||] in
  let ops = ref 0 in
  let rec go i =
    let rec kids c acc =
      if c < 0 then List.rev acc
      else kids (Flat.next_sibling flat c) (go c :: acc)
    in
    let child_vecs = kids (Flat.first_child flat i) [] in
    let vec =
      let vfid = Flat.virtual_fid flat i in
      if vfid >= 0 then begin
        ops := !ops + n_qual;
        Qual_pass.virtual_vec compiled vfid
      end
      else begin
        ops := !ops + (n_qual * (1 + List.length child_vecs));
        let exists_child e =
          List.fold_left
            (fun acc cv -> Formula.disj acc cv.(e))
            Formula.false_ child_vecs
        in
        feval_entries plan flat i ~exists_child
      end
    in
    vecs.(i) <- vec;
    vec
  in
  let root_vec = go 0 in
  let wrap =
    if is_root && compiled.Compile.absolute then begin
      let wrapper = fst (Sel_pass.context_root compiled (Flat.root flat)) in
      let wvec = Qual_pass.eval_node compiled ~ops wrapper [ root_vec ] in
      Some (wrapper, wvec)
    end
    else None
  in
  {
    q_flat = flat;
    q_vecs = vecs;
    q_wrap = wrap;
    q_root_vec = (match wrap with Some (_, wv) -> wv | None -> root_vec);
    q_ops = !ops;
  }

(* Mirror of {!Qual_pass.resolve}: substitute in place, counting every
   entry of every stored vector (virtual slots and wrapper included). *)
let qual_resolve q lookup =
  let n = ref 0 in
  Array.iter
    (fun vec ->
      n := !n + Array.length vec;
      Array.iteri (fun e f -> vec.(e) <- Formula.subst lookup f) vec)
    q.q_vecs;
  (match q.q_wrap with
  | Some (_, wvec) ->
      n := !n + Array.length wvec;
      Array.iteri (fun e f -> wvec.(e) <- Formula.subst lookup f) wvec
  | None -> ());
  !n

(* ------------------------------------------------------------------ *)
(* selection pass (PaX3 stage 2)                                      *)
(* ------------------------------------------------------------------ *)

(* Mirror of {!Sel_pass.run} on [eval_root fid], with qualifier
   satisfaction read from a resolved flat qualifier pass ([qual]), or
   trivially (empty vectors) when the query has no qualifier entries. *)
let sel_run plan flat ~init ~is_root ~(qual : qual option) : Sel_pass.outcome =
  let compiled = plan.compiled in
  let n = compiled.Compile.n_sel in
  let last = n - 1 in
  let ops = ref 0 in
  let answers = ref [] in
  let candidates = ref [] in
  let contexts = ref [] in
  let sat_slot i q =
    let vec = match qual with Some qp -> qp.q_vecs.(i) | None -> [||] in
    fsat_view flat vec i q
  in
  let rec go i ~is_context (sv_p : Formula.t array) =
    let vfid = Flat.virtual_fid flat i in
    if vfid >= 0 then contexts := (vfid, Array.copy sv_p) :: !contexts
    else begin
      ops := !ops + n;
      let sv = Array.make n Formula.false_ in
      sv.(0) <- Formula.bool is_context;
      let tagc = Flat.tag_code flat i in
      for ix = 1 to Array.length plan.fsel do
        match plan.fsel.(ix - 1) with
        | FMove code ->
            sv.(ix) <-
              (if code = -2 || code = tagc then sv_p.(ix - 1)
               else Formula.false_)
        | FDos -> sv.(ix) <- Formula.disj sv_p.(ix) sv.(ix - 1)
        | FFilter q ->
            sv.(ix) <-
              (if sv.(ix - 1) = Formula.false_ then Formula.false_
               else Formula.conj sv.(ix - 1) (sat_slot i q))
      done;
      (match Formula.to_bool sv.(last) with
      | Some true -> answers := Flat.orig flat i :: !answers
      | Some false -> ()
      | None -> candidates := (Flat.orig flat i, sv.(last)) :: !candidates);
      let rec each c =
        if c >= 0 then begin
          go c ~is_context:false sv;
          each (Flat.next_sibling flat c)
        end
      in
      each (Flat.first_child flat i)
    end
  in
  if is_root && compiled.Compile.absolute then begin
    (* The wrapper through the pointer kernel, its vector from the
       qualifier pass (stored under the wrapper when it ran wrapped). *)
    let wrapper, wvec =
      match qual with
      | Some { q_wrap = Some (w, wv); _ } -> (w, wv)
      | _ -> (fst (Sel_pass.context_root compiled (Flat.root flat)), [||])
    in
    ops := !ops + n;
    let sv = Array.make n Formula.false_ in
    sv.(0) <- Formula.bool true;
    let items = compiled.Compile.sel in
    for ix = 1 to Array.length items do
      match items.(ix - 1) with
      | Compile.Move test ->
          sv.(ix) <-
            (if Compile.matches test wrapper.Tree.tag then init.(ix - 1)
             else Formula.false_)
      | Compile.Dos_item -> sv.(ix) <- Formula.disj init.(ix) sv.(ix - 1)
      | Compile.Filter q ->
          sv.(ix) <-
            (if sv.(ix - 1) = Formula.false_ then Formula.false_
             else
               Formula.conj sv.(ix - 1)
                 (Qual_pass.sat compiled wvec wrapper q))
    done;
    (match Formula.to_bool sv.(last) with
    | Some true -> answers := wrapper :: !answers
    | Some false -> ()
    | None -> candidates := (wrapper, sv.(last)) :: !candidates);
    go 0 ~is_context:false sv
  end
  else go 0 ~is_context:is_root init;
  {
    Sel_pass.answers = List.rev !answers;
    candidates = List.rev !candidates;
    contexts = List.rev !contexts;
    ops = !ops;
  }

(* ------------------------------------------------------------------ *)
(* combined pass (PaX2 stage 1)                                       *)
(* ------------------------------------------------------------------ *)

(* Same record as {!Pax2.Combined.outcome} (re-exported there as an
   equation, so the wire server and tests see one type). *)
type combined_outcome = {
  root_qvec : Formula.t array;
  answers : Tree.node list;
  candidates : (Tree.node * Formula.t) list;
  contexts : (int * Formula.t array) list;
  ops : int;
}

(* Qualifier entries that selection filters consult (one sorted list
   per query; identical to Pax2.Combined.placeholder_entries). *)
let placeholder_entries (compiled : Compile.t) =
  let rec refs acc = function
    | Compile.Sat pi ->
        let p = compiled.Compile.paths.(pi) in
        if Array.length p.Compile.items = 0 then acc
        else p.Compile.sat.(0) :: acc
    | Compile.Text_eq _ | Compile.Val_cmp _ | Compile.Attr_test _ -> acc
    | Compile.Qnot q -> refs acc q
    | Compile.Qand (a, b) | Compile.Qor (a, b) -> refs (refs acc a) b
  in
  Array.fold_left
    (fun acc item ->
      match item with
      | Compile.Filter q -> refs acc q
      | Compile.Move _ | Compile.Dos_item -> acc)
    [] compiled.Compile.sel
  |> List.sort_uniq compare

(* Mirror of {!Pax2.Combined.run}. *)
let combined_run plan flat ~init ~is_root : combined_outcome =
  let compiled = plan.compiled in
  let n_sel = compiled.Compile.n_sel in
  let n_qual = compiled.Compile.n_qual in
  let last = n_sel - 1 in
  let placeholders = placeholder_entries compiled in
  let sigma : (int * int, Formula.t) Hashtbl.t = Hashtbl.create 64 in
  let issued : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let pending = ref [] in
  let contexts = ref [] in
  let ops = ref 0 in
  let sat_pre_slot i q =
    let nid = Flat.node_id flat i in
    let rec go = function
      | FSat_empty -> Formula.true_
      | FSat e ->
          Hashtbl.replace issued nid ();
          Formula.var (Var.Qual_at (nid, e))
      | FText_eq s -> Formula.bool (Flat.text_equals flat i s)
      | FVal_cmp (op, num) ->
          Formula.bool
            (match Flat.num flat i with
            | Some f -> Ast.compare_num op f num
            | None -> false)
      | FAttr_test (key, expected) ->
          Formula.bool (Flat.attr_test flat i ~key ~expected)
      | FNot q -> Formula.not_ (go q)
      | FAnd (a, b) -> Formula.conj (go a) (go b)
      | FOr (a, b) -> Formula.disj (go a) (go b)
    in
    go q
  in
  (* Pre-order filter satisfaction for the wrapper node only —
     identical to the pointer pass's sat_pre. *)
  let sat_pre_node (v : Tree.node) q =
    let rec go = function
      | Compile.Sat pi ->
          let p = compiled.Compile.paths.(pi) in
          if Array.length p.Compile.items = 0 then Formula.true_
          else begin
            Hashtbl.replace issued v.Tree.id ();
            Formula.var (Var.Qual_at (v.Tree.id, p.Compile.sat.(0)))
          end
      | Compile.Text_eq s -> Formula.bool (Tree.text_of v = s)
      | Compile.Val_cmp (op, num) ->
          Formula.bool
            (match Tree.float_of v with
            | Some f -> Ast.compare_num op f num
            | None -> false)
      | Compile.Attr_test (name, value) ->
          Formula.bool
            (match (Tree.attr v name, value) with
            | Some _, None -> true
            | Some actual, Some expected -> actual = expected
            | None, _ -> false)
      | Compile.Qnot q -> Formula.not_ (go q)
      | Compile.Qand (a, b) -> Formula.conj (go a) (go b)
      | Compile.Qor (a, b) -> Formula.disj (go a) (go b)
    in
    go q
  in
  let rec go_slot i ~is_context (sv_p : Formula.t array) : Formula.t array =
    let vfid = Flat.virtual_fid flat i in
    if vfid >= 0 then begin
      contexts := (vfid, Array.copy sv_p) :: !contexts;
      Array.init n_qual (fun e -> Formula.var (Var.Qual (vfid, e)))
    end
    else begin
      ops := !ops + n_sel;
      let sv = Array.make n_sel Formula.false_ in
      sv.(0) <- Formula.bool is_context;
      let tagc = Flat.tag_code flat i in
      Array.iteri
        (fun j item ->
          let ix = j + 1 in
          match item with
          | FMove code ->
              sv.(ix) <-
                (if code = -2 || code = tagc then sv_p.(j) else Formula.false_)
          | FDos -> sv.(ix) <- Formula.disj sv_p.(ix) sv.(ix - 1)
          | FFilter q ->
              sv.(ix) <-
                (if sv.(ix - 1) = Formula.false_ then Formula.false_
                 else Formula.conj sv.(ix - 1) (sat_pre_slot i q)))
        plan.fsel;
      if sv.(last) <> Formula.false_ then
        pending := (Flat.orig flat i, sv.(last)) :: !pending;
      let rec kids c acc =
        if c < 0 then List.rev acc
        else
          kids (Flat.next_sibling flat c) (go_slot c ~is_context:false sv :: acc)
      in
      let child_vecs = kids (Flat.first_child flat i) [] in
      ops := !ops + (n_qual * (1 + List.length child_vecs));
      let exists_child e =
        List.fold_left
          (fun acc cv -> Formula.disj acc cv.(e))
          Formula.false_ child_vecs
      in
      let qvec = feval_entries plan flat i ~exists_child in
      let nid = Flat.node_id flat i in
      if Hashtbl.mem issued nid then
        List.iter (fun e -> Hashtbl.replace sigma (nid, e) qvec.(e)) placeholders;
      qvec
    end
  in
  let root_qvec =
    if is_root && compiled.Compile.absolute then begin
      let wrapper = fst (Sel_pass.context_root compiled (Flat.root flat)) in
      ops := !ops + n_sel;
      let sv = Array.make n_sel Formula.false_ in
      sv.(0) <- Formula.bool true;
      Array.iteri
        (fun j item ->
          let ix = j + 1 in
          match item with
          | Compile.Move test ->
              sv.(ix) <-
                (if Compile.matches test wrapper.Tree.tag then init.(j)
                 else Formula.false_)
          | Compile.Dos_item -> sv.(ix) <- Formula.disj init.(ix) sv.(ix - 1)
          | Compile.Filter q ->
              sv.(ix) <-
                (if sv.(ix - 1) = Formula.false_ then Formula.false_
                 else Formula.conj sv.(ix - 1) (sat_pre_node wrapper q)))
        compiled.Compile.sel;
      if sv.(last) <> Formula.false_ then
        pending := (wrapper, sv.(last)) :: !pending;
      let child_vecs = [ go_slot 0 ~is_context:false sv ] in
      let qvec = Qual_pass.eval_node compiled ~ops wrapper child_vecs in
      if Hashtbl.mem issued wrapper.Tree.id then
        List.iter
          (fun e -> Hashtbl.replace sigma (wrapper.Tree.id, e) qvec.(e))
          placeholders;
      qvec
    end
    else go_slot 0 ~is_context:is_root init
  in
  let sigma_lookup = function
    | Var.Qual_at (nid, e) -> Hashtbl.find_opt sigma (nid, e)
    | Var.Qual _ | Var.Sel_ctx _ -> None
  in
  let answers = ref [] in
  let candidates = ref [] in
  List.iter
    (fun ((v : Tree.node), f) ->
      ops := !ops + 1;
      let g = Formula.subst sigma_lookup f in
      match Formula.to_bool g with
      | Some true -> if v.Tree.id >= 0 then answers := v :: !answers
      | Some false -> ()
      | None -> candidates := (v, g) :: !candidates)
    (List.rev !pending);
  let contexts =
    List.rev_map
      (fun (fid, vec) -> (fid, Array.map (Formula.subst sigma_lookup) vec))
      !contexts
  in
  {
    root_qvec;
    answers = List.rev !answers;
    candidates = List.rev !candidates;
    contexts;
    ops = !ops;
  }

(** Aggregate evaluation: [count(Q)] over the fragmented tree.

    A natural extension in the spirit of Amer-Yahia et al.'s aggregate
    queries on distributed catalogs (the paper's §7): the same two-stage
    PaX2 protocol, but sites ship {e counts} instead of elements, so the
    total communication is [O(|Q| |FT|)] — independent of both the tree
    {e and} the answer size. *)

(** [run ?annotations cluster q] — the number of nodes in [val(Q, root)]
    plus the cost report.  ≤ 2 visits per site, zero answer bytes. *)
val run :
  ?annotations:bool -> Pax_dist.Cluster.t -> Pax_xpath.Query.t ->
  int * Pax_dist.Cluster.report

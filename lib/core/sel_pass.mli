(** Top-down selection-path evaluation over one fragment — procedure
    [topDown] of the paper (§3.2).

    A single depth-first pass computes, for every node [v], the vector
    [SV_v] of selection-path prefixes reaching [v].  The stack of the
    paper is the recursion: each call receives its parent's vector,
    which already summarizes all ancestors.  The traversal starts from
    the [init] vector — ground for the root fragment (and for annotated
    fragments whose context is certain), symbolic [Sel_ctx] variables
    otherwise.

    Outcome per fragment:
    - [answers]: nodes whose last entry is the constant [true] — certain
      answers, shipped immediately;
    - [candidates]: nodes whose last entry is a residual formula —
      resolved in the final stage;
    - [contexts]: for every virtual node, the vector of its parent (the
      information the sub-fragment's [Sel_ctx] variables stand for);
      this is the [returnSet] shipped to the coordinator. *)

module Formula = Pax_bool.Formula

type outcome = {
  answers : Pax_xml.Tree.node list;
  candidates : (Pax_xml.Tree.node * Formula.t) list;
  contexts : (int * Formula.t array) list;  (** sub-fragment fid → ctx *)
  ops : int;
}

(** [run compiled ~init ~root_is_context ~sat root]:
    - [init] — the vector of the fragment root's parent ([n_sel] long);
    - [root_is_context] — true when [root] is the query's context node
      (the root element of a relative query);
    - [sat v q] — qualifier satisfaction at [v] (ground in PaX3 Stage 2;
      placeholder variables in PaX2's pre-order). *)
val run :
  Pax_xpath.Compile.t ->
  init:Formula.t array ->
  root_is_context:bool ->
  sat:(Pax_xml.Tree.node -> Pax_xpath.Compile.qual -> Formula.t) ->
  Pax_xml.Tree.node ->
  outcome

(** All-false parent vector (used with [root_is_context:true]). *)
val blank_init : Pax_xpath.Compile.t -> Formula.t array

(** Symbolic init for fragment [fid]: [Sel_ctx (fid, i)] variables. *)
val symbolic_init : Pax_xpath.Compile.t -> fid:int -> Formula.t array

(** [context_root compiled root] — where evaluation of the root fragment
    starts: for an absolute query, a materialized document node (id -1,
    tag ["#document"]) wrapping [root]; for a relative query, [root]
    itself.  The second component is [root_is_context].  The document
    node never counts as an answer (negative id). *)
val context_root :
  Pax_xpath.Compile.t -> Pax_xml.Tree.node -> Pax_xml.Tree.node * bool

(** Keep only genuine answer nodes (drops the materialized document
    node). *)
val real_answers : Pax_xml.Tree.node list -> Pax_xml.Tree.node list

module Tree = Pax_xml.Tree
module Ast = Pax_xpath.Ast
module Query = Pax_xpath.Query
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Measure = Pax_dist.Measure

let eval (cl : Cluster.t) (qual : Ast.qual) : bool * Cluster.report =
  Cluster.reset cl;
  let ft = Cluster.ftree cl in
  let n_frag = Fragment.n_fragments ft in
  (* A Boolean query is the data-selecting query ε[q] at the root. *)
  let q =
    Query.of_ast { Ast.absolute = false; path = Ast.Qualified (Ast.Empty, qual) }
  in
  let compiled = q.Query.compiled in
  let qp_store : Qual_pass.t option array = Array.make n_frag None in
  let sites = Cluster.sites_holding cl (Fragment.top_down ft) in
  (* Keyed by fid: a replayed visit under a fault plan neither
     recomputes nor double-counts. *)
  ignore
    (Cluster.run_round cl ~label:"parbox" ~sites (fun site ->
         List.iter
           (fun fid ->
             if Option.is_none qp_store.(fid) then begin
               let root = (Fragment.fragment ft fid).Fragment.root in
               let qp = Qual_pass.run compiled root in
               qp_store.(fid) <- Some qp;
               Cluster.add_ops cl ~site qp.Qual_pass.ops
             end)
           (Cluster.fragments_on cl site)));
  List.iter
    (fun site ->
      Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Query
        ~bytes:(Measure.query q) ~label:"QVect(Q)";
      List.iter
        (fun fid ->
          match qp_store.(fid) with
          | Some qp ->
              Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Vectors
                ~bytes:(Measure.formula_array qp.Qual_pass.root_vec)
                ~label:(Printf.sprintf "QV(F%d)" fid)
          | None -> ())
        (Cluster.fragments_on cl site))
    sites;
  let answer =
    Cluster.coord cl ~label:"evalFT" (fun () ->
        Cluster.add_ops cl ~site:(-1) (n_frag * compiled.Compile.n_qual);
        let resolved =
          Eval_ft.resolve_quals ft ~root_vecs:(fun fid ->
              Option.map (fun qp -> qp.Qual_pass.root_vec) qp_store.(fid))
        in
        let root = (Fragment.root_fragment ft).Fragment.root in
        let root_vec = Array.map Formula.bool resolved.(0) in
        let filter =
          match compiled.Compile.sel with
          | [| Compile.Filter f |] -> f
          | _ -> invalid_arg "ParBoX: not a Boolean query"
        in
        match Formula.to_bool (Qual_pass.sat compiled root_vec root filter) with
        | Some b -> b
        | None -> invalid_arg "ParBoX: unresolved answer")
  in
  (answer, Cluster.report cl)

let eval_string cl s = eval cl (Pax_xpath.Parse.qual s)

module Tree = Pax_xml.Tree
module Ast = Pax_xpath.Ast
module Query = Pax_xpath.Query
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Measure = Pax_dist.Measure

let eval ?flat (cl : Cluster.t) (qual : Ast.qual) : bool * Cluster.report =
  Cluster.reset cl;
  let ft = Cluster.ftree cl in
  let n_frag = Fragment.n_fragments ft in
  (* A Boolean query is the data-selecting query ε[q] at the root. *)
  let q =
    Query.of_ast { Ast.absolute = false; path = Ast.Qualified (Ast.Empty, qual) }
  in
  let compiled = q.Query.compiled in
  let use_flat =
    match flat with Some b -> b | None -> Flat_pass.enabled ()
  in
  let fplan = lazy (Flat_pass.make_plan compiled (Fragment.intern ft)) in
  let root_vecs : Formula.t array option array = Array.make n_frag None in
  let sites = Cluster.sites_holding cl (Fragment.top_down ft) in
  (* Keyed by fid: a replayed visit under a fault plan neither
     recomputes nor double-counts. *)
  ignore
    (Cluster.run_round cl ~label:"parbox" ~sites (fun site ->
         List.iter
           (fun fid ->
             if Option.is_none root_vecs.(fid) then
               if use_flat then begin
                 (* The query is relative, so the root fragment's eval
                    root is never wrapped. *)
                 let fq =
                   Flat_pass.qual_run (Lazy.force fplan)
                     (Fragment.flat ft fid) ~is_root:false
                 in
                 root_vecs.(fid) <- Some fq.Flat_pass.q_root_vec;
                 Cluster.add_ops cl ~site fq.Flat_pass.q_ops
               end
               else begin
                 let root = (Fragment.fragment ft fid).Fragment.root in
                 let qp = Qual_pass.run compiled root in
                 root_vecs.(fid) <- Some qp.Qual_pass.root_vec;
                 Cluster.add_ops cl ~site qp.Qual_pass.ops
               end)
           (Cluster.fragments_on cl site)));
  List.iter
    (fun site ->
      Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Query
        ~bytes:(Measure.query q) ~label:"QVect(Q)";
      List.iter
        (fun fid ->
          match root_vecs.(fid) with
          | Some vec ->
              Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Vectors
                ~bytes:(Measure.formula_array vec)
                ~label:(Printf.sprintf "QV(F%d)" fid)
          | None -> ())
        (Cluster.fragments_on cl site))
    sites;
  let answer =
    Cluster.coord cl ~label:"evalFT" (fun () ->
        Cluster.add_ops cl ~site:(-1) (n_frag * compiled.Compile.n_qual);
        let resolved =
          Eval_ft.resolve_quals ft ~root_vecs:(fun fid -> root_vecs.(fid))
        in
        let root = (Fragment.root_fragment ft).Fragment.root in
        let root_vec = Array.map Formula.bool resolved.(0) in
        let filter =
          match compiled.Compile.sel with
          | [| Compile.Filter f |] -> f
          | _ -> invalid_arg "ParBoX: not a Boolean query"
        in
        match Formula.to_bool (Qual_pass.sat compiled root_vec root filter) with
        | Some b -> b
        | None -> invalid_arg "ParBoX: unresolved answer")
  in
  (answer, Cluster.report cl)

let eval_string ?flat cl s = eval ?flat cl (Pax_xpath.Parse.qual s)

module Compile = Pax_xpath.Compile
module Fragment = Pax_frag.Fragment
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var

type tri = F | T | M

let pp_tri ppf = function
  | F -> Format.pp_print_char ppf 'F'
  | T -> Format.pp_print_char ppf 'T'
  | M -> Format.pp_print_char ppf '?'

let and3 a b =
  match (a, b) with F, _ | _, F -> F | T, T -> T | M, (T | M) | T, M -> M

let or3 a b =
  match (a, b) with T, _ | _, T -> T | F, F -> F | M, (F | M) | F, M -> M

let tri_of_bool b = if b then T else F

(* Qualifier satisfaction on a spine node: the tag is known but text
   values and off-spine structure are not, so anything that looks at
   data is M. *)
let rec sat3 compiled = function
  | Compile.Sat pi ->
      if Array.length compiled.Compile.paths.(pi).Compile.items = 0 then T
      else M
  | Compile.Text_eq _ | Compile.Val_cmp _ | Compile.Attr_test _ -> M
  | Compile.Qnot q -> ( match sat3 compiled q with F -> T | T -> F | M -> M)
  | Compile.Qand (a, b) -> and3 (sat3 compiled a) (sat3 compiled b)
  | Compile.Qor (a, b) -> or3 (sat3 compiled a) (sat3 compiled b)

(* All qualifier paths a filter expression can demand, at any polarity. *)
let rec sat_refs acc = function
  | Compile.Sat pi -> pi :: acc
  | Compile.Text_eq _ | Compile.Val_cmp _ | Compile.Attr_test _ -> acc
  | Compile.Qnot q -> sat_refs acc q
  | Compile.Qand (a, b) | Compile.Qor (a, b) -> sat_refs (sat_refs acc a) b

type state = { sv : tri array; alive : bool array array }

let fresh_alive compiled =
  Array.map
    (fun (p : Compile.cpath) -> Array.make (Array.length p.Compile.items + 1) false)
    compiled.Compile.paths

(* Selection filters whose guarding prefix is not dead activate their
   qualifier paths at this node. *)
let activate_sel compiled st =
  Array.iteri
    (fun j item ->
      match item with
      | Compile.Filter q when st.sv.(j) <> F ->
          List.iter (fun pi -> st.alive.(pi).(0) <- true) (sat_refs [] q)
      | Compile.Filter _ | Compile.Move _ | Compile.Dos_item -> ())
    compiled.Compile.sel

(* Within-node closure of qualifier-path aliveness: Dos and Filter items
   advance without consuming a child edge, and filters activate their
   nested paths.  Nested paths have smaller indices, so one descending
   sweep reaches a fixpoint. *)
let closure compiled st =
  for pi = Array.length compiled.Compile.paths - 1 downto 0 do
    let p = compiled.Compile.paths.(pi) in
    let k = Array.length p.Compile.items in
    for j = 0 to k - 1 do
      if st.alive.(pi).(j) then
        match p.Compile.items.(j) with
        | Compile.Dos_item -> st.alive.(pi).(j + 1) <- true
        | Compile.Filter q ->
            st.alive.(pi).(j + 1) <- true;
            List.iter (fun pi' -> st.alive.(pi').(0) <- true) (sat_refs [] q)
        | Compile.Move _ -> ()
    done
  done

let finish compiled st =
  activate_sel compiled st;
  closure compiled st;
  st

(* The SV recurrence at a node with a known tag. *)
let sv_at compiled ~parent ~is_context tag =
  let n = compiled.Compile.n_sel in
  let sv = Array.make n F in
  sv.(0) <- tri_of_bool is_context;
  Array.iteri
    (fun j item ->
      let i = j + 1 in
      match item with
      | Compile.Move test ->
          sv.(i) <- and3 parent.(j) (tri_of_bool (Compile.matches test tag))
      | Compile.Dos_item -> sv.(i) <- or3 parent.(i) sv.(i - 1)
      | Compile.Filter q -> sv.(i) <- and3 sv.(i - 1) (sat3 compiled q))
    compiled.Compile.sel;
  sv

(* Consume one spine edge: move to a child whose tag is known. *)
let step compiled st tag =
  let sv = sv_at compiled ~parent:st.sv ~is_context:false tag in
  let alive = fresh_alive compiled in
  Array.iteri
    (fun pi per_j ->
      let p = compiled.Compile.paths.(pi) in
      let k = Array.length p.Compile.items in
      Array.iteri
        (fun j on ->
          if on && j < k then
            match p.Compile.items.(j) with
            | Compile.Move test ->
                if Compile.matches test tag then alive.(pi).(j + 1) <- true
            | Compile.Dos_item -> alive.(pi).(j) <- true
            | Compile.Filter _ -> ())
        per_j)
    st.alive;
  finish compiled { sv; alive }

let initial compiled root_tag =
  if compiled.Compile.absolute then begin
    (* State at the materialized document node, then into the root. *)
    let sv = Array.make compiled.Compile.n_sel F in
    sv.(0) <- T;
    Array.iteri
      (fun j item ->
        let i = j + 1 in
        match item with
        | Compile.Dos_item -> sv.(i) <- sv.(i - 1)
        | Compile.Move _ -> ()
        | Compile.Filter q -> sv.(i) <- and3 sv.(i - 1) (sat3 compiled q))
      compiled.Compile.sel;
    let doc = finish compiled { sv; alive = fresh_alive compiled } in
    (doc, step compiled doc root_tag)
  end
  else begin
    let blank = Array.make compiled.Compile.n_sel F in
    let sv = sv_at compiled ~parent:blank ~is_context:true root_tag in
    let root = finish compiled { sv; alive = fresh_alive compiled } in
    ({ sv = blank; alive = fresh_alive compiled }, root)
  end

type analysis = {
  ctx : tri array array;
  relevant_sel : bool array;
  relevant : bool array;
}

let is_relevant_sel st = Array.exists (fun v -> v <> F) st.sv

let has_alive st =
  Array.exists (fun per_j -> Array.exists Fun.id per_j) st.alive

let analyze compiled ft : analysis =
  let n = Fragment.n_fragments ft in
  let ctx = Array.make n [||] in
  let relevant_sel = Array.make n false in
  let relevant = Array.make n false in
  (* State at the root node of every fragment, computed by walking the
     annotation paths down the fragment tree. *)
  let root_states = Array.make n None in
  let parent_sv, root0 =
    initial compiled (Fragment.root_fragment ft).Fragment.root.Pax_xml.Tree.tag
  in
  root_states.(0) <- Some root0;
  ctx.(0) <- Array.copy parent_sv.sv;
  List.iter
    (fun fid ->
      if fid <> 0 then begin
        let f = Fragment.fragment ft fid in
        let parent_state =
          match f.Fragment.parent with
          | Some p -> (
              match root_states.(p) with
              | Some st -> st
              | None -> invalid_arg "Annot.analyze: fragment order")
          | None -> invalid_arg "Annot.analyze: non-root without parent"
        in
        (* Walk the annotation tags; the state before the last step is
           the fragment's context. *)
        let rec walk st = function
          | [] -> invalid_arg "Annot.analyze: empty annotation"
          | [ last ] ->
              ctx.(fid) <- Array.copy st.sv;
              step compiled st last
          | tag :: rest -> walk (step compiled st tag) rest
        in
        root_states.(fid) <- Some (walk parent_state f.Fragment.ann)
      end)
    (Fragment.top_down ft);
  Array.iteri
    (fun fid st_opt ->
      match st_opt with
      | Some st ->
          relevant_sel.(fid) <- is_relevant_sel st;
          relevant.(fid) <- is_relevant_sel st || has_alive st
      | None -> ())
    root_states;
  { ctx; relevant_sel; relevant }

let init_of_ctx compiled ~fid ctx3 =
  Array.init compiled.Compile.n_sel (fun i ->
      match ctx3.(i) with
      | T -> Formula.true_
      | F -> Formula.false_
      | M -> Formula.var (Var.Sel_ctx (fid, i)))

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Measure = Pax_dist.Measure
module Wire = Pax_wire.Wire

let spf = Printf.sprintf

(* Sites that hold at least one fragment from [fids]. *)
let active_sites cl fids = Cluster.sites_holding cl fids

let all_fids ft = Fragment.top_down ft

let run ?(annotations = false) ?flat (cl : Cluster.t) (q : Query.t) :
    Run_result.t =
  Cluster.reset cl;
  let ft = Cluster.ftree cl in
  let n_frag = Fragment.n_fragments ft in
  let compiled = q.Query.compiled in
  let use_flat =
    match flat with Some b -> b | None -> Flat_pass.enabled ()
  in
  let fplan =
    lazy (Flat_pass.make_plan compiled (Fragment.intern ft))
  in
  let analysis = if annotations then Some (Annot.analyze compiled ft) else None in
  let relevant_sel fid =
    match analysis with None -> true | Some a -> a.Annot.relevant_sel.(fid)
  in
  (* The root fragment evaluates from the query context (a materialized
     document node for absolute queries). *)
  let eval_roots =
    Array.init n_frag (fun fid ->
        let root = (Fragment.fragment ft fid).Fragment.root in
        if fid = 0 then fst (Sel_pass.context_root compiled root) else root)
  in
  let init_for fid =
    if fid = 0 then Sel_pass.blank_init compiled
    else
      match analysis with
      | Some a -> Annot.init_of_ctx compiled ~fid a.Annot.ctx.(fid)
      | None -> Sel_pass.symbolic_init compiled ~fid
  in
  let qp_store : Qual_pass.t option array = Array.make n_frag None in
  let fq_store : Flat_pass.qual option array = Array.make n_frag None in
  let remote_if_net rm =
    if Cluster.transport_active cl then Some rm else None
  in

  (* ---------------- Stage 1: qualifiers, all sites ---------------- *)
  let stage1_needed = not (Compile.no_qualifiers compiled) in
  (* Per-fragment views of the stage-1 result (the root qualifier
     vector), filled by the in-process pass or a wire reply; the
     accounting loop and evalFT read only these.  [qp_store] holds the
     full in-process qual-pass state for stage 2 — a remote site keeps
     the equivalent state itself between visits. *)
  let q1_seen = Array.make n_frag false in
  let q1_vec : Formula.t array array = Array.make n_frag [||] in
  let resolved_quals =
    if not stage1_needed then None
    else begin
      let sites = active_sites cl (all_fids ft) in
      (* Stage state is keyed by fid within the round: a replayed visit
         (lost reply under a fault plan) skips recomputation, so ops are
         not double-counted and stage-1 vectors are not rebuilt. *)
      let s1_local site =
        List.iter
          (fun fid ->
            if not q1_seen.(fid) then begin
              (if use_flat then begin
                 let fq =
                   Flat_pass.qual_run (Lazy.force fplan)
                     (Fragment.flat ft fid) ~is_root:(fid = 0)
                 in
                 fq_store.(fid) <- Some fq;
                 q1_vec.(fid) <- fq.Flat_pass.q_root_vec;
                 Cluster.add_ops cl ~site fq.Flat_pass.q_ops
               end
               else begin
                 let qp = Qual_pass.run compiled eval_roots.(fid) in
                 qp_store.(fid) <- Some qp;
                 q1_vec.(fid) <- qp.Qual_pass.root_vec;
                 Cluster.add_ops cl ~site qp.Qual_pass.ops
               end);
              q1_seen.(fid) <- true
            end)
          (Cluster.fragments_on cl site)
      in
      let s1_remote =
        {
          Cluster.build =
            (fun site ->
              Wire.Pax3_stage1
                { query = q.Query.source; fids = Cluster.fragments_on cl site });
          parse =
            (fun site reply ->
              match reply with
              | Wire.Frag_results frs ->
                  List.iter
                    (fun (fr : Wire.frag_result) ->
                      let fid = fr.Wire.fr_fid in
                      if not q1_seen.(fid) then begin
                        q1_vec.(fid) <-
                          (match fr.Wire.fr_vec with
                          | Some vec -> vec
                          | None ->
                              invalid_arg "PaX3: stage-1 reply lacks vector");
                        q1_seen.(fid) <- true;
                        Cluster.add_ops cl ~site fr.Wire.fr_ops
                      end)
                    frs
              | Wire.Final_answers _ ->
                  invalid_arg "PaX3: unexpected stage-1 reply");
        }
      in
      ignore
        (Cluster.run_round cl
           ?remote:(remote_if_net s1_remote)
           ~label:"stage1" ~sites s1_local);
      List.iter
        (fun site ->
          Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Query
            ~bytes:(Measure.query q) ~label:"QVect(Q)";
          List.iter
            (fun fid ->
              if q1_seen.(fid) then
                Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Vectors
                  ~bytes:(Measure.formula_array q1_vec.(fid))
                  ~label:(spf "QV(F%d)" fid))
            (Cluster.fragments_on cl site))
        sites;
      Some
        (Cluster.coord cl ~label:"evalFT:quals" (fun () ->
             Cluster.add_ops cl ~site:(-1) (n_frag * compiled.Compile.n_qual);
             Eval_ft.resolve_quals ft ~root_vecs:(fun fid ->
                 if q1_seen.(fid) then Some q1_vec.(fid) else None)))
    end
  in
  let qual_lookup =
    match resolved_quals with
    | Some r -> Eval_ft.qual_lookup r
    | None -> fun _ -> None
  in

  (* ---------------- Stage 2: selection, relevant sites ------------- *)
  let rel_fids = List.filter relevant_sel (all_fids ft) in
  let stage2_sites = active_sites cl rel_fids in
  (* Stage-2 views: context vectors, certain answers, and the number of
     candidates each site kept back for stage 3 ([local_cands] has the
     actual formulas in-process only). *)
  let s2_seen = Array.make n_frag false in
  let s2_ctxs : (int * Formula.t array) list array = Array.make n_frag [] in
  let s2_certain : Tree.node list array = Array.make n_frag [] in
  let s2_cands = Array.make n_frag 0 in
  let local_cands : (Tree.node * Formula.t) list array = Array.make n_frag [] in
  (* The [s2_seen] guard keeps replayed visits from re-running
     [Qual_pass.resolve], which substitutes into the stage-1 vectors in
     place — exactly the "corrupt stage-1 state" hazard idempotent
     visits exist to prevent. *)
  let s2_local site =
    List.iter
      (fun fid ->
        if relevant_sel fid && not s2_seen.(fid) then begin
          let oc =
            if use_flat then begin
              (match fq_store.(fid) with
              | Some fq ->
                  Cluster.add_ops cl ~site
                    (Flat_pass.qual_resolve fq qual_lookup)
              | None -> ());
              (* The same image stage 1 ran on: its slots index the
                 resolved qualifier vectors. *)
              let fl =
                match fq_store.(fid) with
                | Some fq -> fq.Flat_pass.q_flat
                | None -> Fragment.flat ft fid
              in
              Flat_pass.sel_run (Lazy.force fplan) fl ~init:(init_for fid)
                ~is_root:(fid = 0) ~qual:fq_store.(fid)
            end
            else begin
              (match qp_store.(fid) with
              | Some qp ->
                  Cluster.add_ops cl ~site (Qual_pass.resolve qp qual_lookup)
              | None -> ());
              let sat v filter =
                match qp_store.(fid) with
                | Some qp ->
                    Qual_pass.sat compiled
                      (Hashtbl.find qp.Qual_pass.vectors v.Tree.id)
                      v filter
                | None -> Qual_pass.sat compiled [||] v filter
              in
              Sel_pass.run compiled ~init:(init_for fid)
                ~root_is_context:(fid = 0) ~sat eval_roots.(fid)
            end
          in
          s2_ctxs.(fid) <- oc.Sel_pass.contexts;
          s2_certain.(fid) <- Sel_pass.real_answers oc.Sel_pass.answers;
          s2_cands.(fid) <- List.length oc.Sel_pass.candidates;
          local_cands.(fid) <- oc.Sel_pass.candidates;
          s2_seen.(fid) <- true;
          Cluster.add_ops cl ~site oc.Sel_pass.ops
        end)
      (Cluster.fragments_on cl site)
  in
  let s2_remote =
    {
      Cluster.build =
        (fun site ->
          Wire.Pax3_stage2
            {
              query = q.Query.source;
              frags =
                List.filter_map
                  (fun fid ->
                    if relevant_sel fid then
                      Some
                        ( {
                            Wire.fe_fid = fid;
                            fe_is_root = fid = 0;
                            fe_init =
                              (if annotations then Some (init_for fid)
                               else None);
                          },
                          match resolved_quals with
                          | Some r ->
                              List.map
                                (fun sub -> (sub, r.(sub)))
                                ft.Fragment.children.(fid)
                          | None -> [] )
                    else None)
                  (Cluster.fragments_on cl site);
            });
      parse =
        (fun site reply ->
          match reply with
          | Wire.Frag_results frs ->
              List.iter
                (fun (fr : Wire.frag_result) ->
                  let fid = fr.Wire.fr_fid in
                  if not s2_seen.(fid) then begin
                    s2_ctxs.(fid) <- fr.Wire.fr_ctxs;
                    s2_certain.(fid) <-
                      List.map Wire.node_of_answer fr.Wire.fr_answers;
                    s2_cands.(fid) <- fr.Wire.fr_cands;
                    s2_seen.(fid) <- true;
                    Cluster.add_ops cl ~site fr.Wire.fr_ops
                  end)
                frs
          | Wire.Final_answers _ ->
              invalid_arg "PaX3: unexpected stage-2 reply");
    }
  in
  ignore
    (Cluster.run_round cl
       ?remote:(remote_if_net s2_remote)
       ~label:"stage2" ~sites:stage2_sites s2_local);
  List.iter
    (fun site ->
      Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Query
        ~bytes:(Measure.query q) ~label:"SVect(Q)";
      List.iter
        (fun fid ->
          if relevant_sel fid then begin
            (* Unified qualifier values for the fragment's sub-fragments. *)
            (match resolved_quals with
            | Some r ->
                List.iter
                  (fun sub ->
                    Cluster.send cl ~src:Coordinator ~dst:(Site site)
                      ~kind:Resolution
                      ~bytes:(Measure.bool_array r.(sub))
                      ~label:(spf "QV*(F%d)" sub))
                  (Cluster.ftree cl).Fragment.children.(fid)
            | None -> ());
            if s2_seen.(fid) then begin
              List.iter
                (fun (sub, vec) ->
                  Cluster.send cl ~src:(Site site) ~dst:Coordinator
                    ~kind:Vectors ~bytes:(Measure.formula_array vec)
                    ~label:(spf "SV(F%d)" sub))
                s2_ctxs.(fid);
              if s2_certain.(fid) <> [] then
                Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Answers
                  ~bytes:(Measure.answers s2_certain.(fid))
                  ~label:(spf "ans(F%d)" fid)
            end
          end)
        (Cluster.fragments_on cl site))
    stage2_sites;

  (* Coordinator: unify the context vectors top-down. *)
  let raw_ctx : Formula.t array option array = Array.make n_frag None in
  Array.iteri
    (fun fid ctxs ->
      if s2_seen.(fid) then
        List.iter (fun (sub, vec) -> raw_ctx.(sub) <- Some vec) ctxs)
    s2_ctxs;
  let resolved_ctx =
    Cluster.coord cl ~label:"evalFT:contexts" (fun () ->
        Cluster.add_ops cl ~site:(-1) (n_frag * compiled.Compile.n_sel);
        Eval_ft.resolve_contexts ft
          ~root_ctx:(Array.make compiled.Compile.n_sel false)
          ~ctx_of:(fun fid -> raw_ctx.(fid))
          ~qual_lookup)
  in
  let ctx_lookup = Eval_ft.ctx_lookup resolved_ctx in

  (* ---------------- Stage 3: resolve candidates -------------------- *)
  let has_candidates fid = s2_seen.(fid) && s2_cands.(fid) > 0 in
  let cand_fids = List.filter has_candidates (all_fids ft) in
  let stage3_sites = active_sites cl cand_fids in
  (* Per-fid memo (replay idempotence under fault plans) as an array,
     not a shared hashtable: a fragment lives on exactly one site, so
     under a parallel round the worker domains write disjoint cells. *)
  let stage3_memo : Tree.node list option array = Array.make n_frag None in
  let s3_local site =
    List.concat_map
      (fun fid ->
        if has_candidates fid then
          match stage3_memo.(fid) with
          | Some answers -> answers
          | None ->
              let answers =
                List.filter_map
                  (fun ((v : Tree.node), f) ->
                    Cluster.add_ops cl ~site 1;
                    match Formula.to_bool (Formula.subst ctx_lookup f) with
                    | Some true when v.Tree.id >= 0 -> Some v
                    | Some _ -> None
                    | None -> invalid_arg "PaX3: candidate failed to resolve")
                  local_cands.(fid)
              in
              stage3_memo.(fid) <- Some answers;
              answers
        else [])
      (Cluster.fragments_on cl site)
  in
  let s3_remote =
    {
      Cluster.build =
        (fun site ->
          Wire.Pax3_stage3
            {
              frags =
                List.filter_map
                  (fun fid ->
                    if has_candidates fid then Some (fid, resolved_ctx.(fid))
                    else None)
                  (Cluster.fragments_on cl site);
            });
      parse =
        (fun site reply ->
          match reply with
          | Wire.Final_answers { answers; ops } ->
              Cluster.add_ops cl ~site ops;
              List.map Wire.node_of_answer answers
          | Wire.Frag_results _ ->
              invalid_arg "PaX3: unexpected stage-3 reply");
    }
  in
  let stage3_answers =
    Cluster.run_round cl
      ?remote:(remote_if_net s3_remote)
      ~label:"stage3" ~sites:stage3_sites s3_local
  in
  List.iter
    (fun site ->
      List.iter
        (fun fid ->
          if has_candidates fid then
            Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Resolution
              ~bytes:(Measure.bool_array resolved_ctx.(fid))
              ~label:(spf "SV*(F%d)" fid))
        (Cluster.fragments_on cl site))
    stage3_sites;
  List.iter
    (fun (site, answers) ->
      if answers <> [] then
        Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Answers
          ~bytes:(Measure.answers answers) ~label:"ans")
    stage3_answers;

  let certain = List.concat (Array.to_list s2_certain) in
  let answers = certain @ List.concat_map snd stage3_answers in
  Run_result.make ~trace:(Cluster.trace cl) ~query:q ~answers
    ~report:(Cluster.report cl) ()

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Measure = Pax_dist.Measure

let spf = Printf.sprintf

(* Sites that hold at least one fragment from [fids]. *)
let active_sites cl fids = Cluster.sites_holding cl fids

let all_fids ft = Fragment.top_down ft

let run ?(annotations = false) (cl : Cluster.t) (q : Query.t) : Run_result.t =
  Cluster.reset cl;
  let ft = Cluster.ftree cl in
  let n_frag = Fragment.n_fragments ft in
  let compiled = q.Query.compiled in
  let analysis = if annotations then Some (Annot.analyze compiled ft) else None in
  let relevant_sel fid =
    match analysis with None -> true | Some a -> a.Annot.relevant_sel.(fid)
  in
  (* The root fragment evaluates from the query context (a materialized
     document node for absolute queries). *)
  let eval_roots =
    Array.init n_frag (fun fid ->
        let root = (Fragment.fragment ft fid).Fragment.root in
        if fid = 0 then fst (Sel_pass.context_root compiled root) else root)
  in
  let init_for fid =
    if fid = 0 then Sel_pass.blank_init compiled
    else
      match analysis with
      | Some a -> Annot.init_of_ctx compiled ~fid a.Annot.ctx.(fid)
      | None -> Sel_pass.symbolic_init compiled ~fid
  in
  let qp_store : Qual_pass.t option array = Array.make n_frag None in

  (* ---------------- Stage 1: qualifiers, all sites ---------------- *)
  let stage1_needed = not (Compile.no_qualifiers compiled) in
  let resolved_quals =
    if not stage1_needed then None
    else begin
      let sites = active_sites cl (all_fids ft) in
      (* Stage state is keyed by fid within the round: a replayed visit
         (lost reply under a fault plan) skips recomputation, so ops are
         not double-counted and stage-1 vectors are not rebuilt. *)
      ignore
        (Cluster.run_round cl ~label:"stage1" ~sites (fun site ->
             List.iter
               (fun fid ->
                 if Option.is_none qp_store.(fid) then begin
                   let qp = Qual_pass.run compiled eval_roots.(fid) in
                   qp_store.(fid) <- Some qp;
                   Cluster.add_ops cl ~site qp.Qual_pass.ops
                 end)
               (Cluster.fragments_on cl site)));
      List.iter
        (fun site ->
          Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Query
            ~bytes:(Measure.query q) ~label:"QVect(Q)";
          List.iter
            (fun fid ->
              match qp_store.(fid) with
              | Some qp ->
                  Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Vectors
                    ~bytes:(Measure.formula_array qp.Qual_pass.root_vec)
                    ~label:(spf "QV(F%d)" fid)
              | None -> ())
            (Cluster.fragments_on cl site))
        sites;
      Some
        (Cluster.coord cl ~label:"evalFT:quals" (fun () ->
             Cluster.add_ops cl ~site:(-1) (n_frag * compiled.Compile.n_qual);
             Eval_ft.resolve_quals ft ~root_vecs:(fun fid ->
                 Option.map (fun qp -> qp.Qual_pass.root_vec) qp_store.(fid))))
    end
  in
  let qual_lookup =
    match resolved_quals with
    | Some r -> Eval_ft.qual_lookup r
    | None -> fun _ -> None
  in

  (* ---------------- Stage 2: selection, relevant sites ------------- *)
  let rel_fids = List.filter relevant_sel (all_fids ft) in
  let stage2_sites = active_sites cl rel_fids in
  let outcomes : Sel_pass.outcome option array = Array.make n_frag None in
  (* The [Option.is_none] guard keeps replayed visits from re-running
     [Qual_pass.resolve], which substitutes into the stage-1 vectors in
     place — exactly the "corrupt stage-1 state" hazard idempotent
     visits exist to prevent. *)
  ignore
    (Cluster.run_round cl ~label:"stage2" ~sites:stage2_sites (fun site ->
         List.iter
           (fun fid ->
             if relevant_sel fid && Option.is_none outcomes.(fid) then begin
               (match qp_store.(fid) with
               | Some qp ->
                   Cluster.add_ops cl ~site (Qual_pass.resolve qp qual_lookup)
               | None -> ());
               let sat v filter =
                 match qp_store.(fid) with
                 | Some qp ->
                     Qual_pass.sat compiled
                       (Hashtbl.find qp.Qual_pass.vectors v.Tree.id)
                       v filter
                 | None -> Qual_pass.sat compiled [||] v filter
               in
               let outcome =
                 Sel_pass.run compiled ~init:(init_for fid)
                   ~root_is_context:(fid = 0) ~sat eval_roots.(fid)
               in
               outcomes.(fid) <- Some outcome;
               Cluster.add_ops cl ~site outcome.Sel_pass.ops
             end)
           (Cluster.fragments_on cl site)));
  List.iter
    (fun site ->
      Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Query
        ~bytes:(Measure.query q) ~label:"SVect(Q)";
      List.iter
        (fun fid ->
          if relevant_sel fid then begin
            (* Unified qualifier values for the fragment's sub-fragments. *)
            (match resolved_quals with
            | Some r ->
                List.iter
                  (fun sub ->
                    Cluster.send cl ~src:Coordinator ~dst:(Site site)
                      ~kind:Resolution
                      ~bytes:(Measure.bool_array r.(sub))
                      ~label:(spf "QV*(F%d)" sub))
                  (Cluster.ftree cl).Fragment.children.(fid)
            | None -> ());
            match outcomes.(fid) with
            | Some oc ->
                List.iter
                  (fun (sub, vec) ->
                    Cluster.send cl ~src:(Site site) ~dst:Coordinator
                      ~kind:Vectors ~bytes:(Measure.formula_array vec)
                      ~label:(spf "SV(F%d)" sub))
                  oc.Sel_pass.contexts;
                let certain = Sel_pass.real_answers oc.Sel_pass.answers in
                if certain <> [] then
                  Cluster.send cl ~src:(Site site) ~dst:Coordinator
                    ~kind:Answers ~bytes:(Measure.answers certain)
                    ~label:(spf "ans(F%d)" fid)
            | None -> ()
          end)
        (Cluster.fragments_on cl site))
    stage2_sites;

  (* Coordinator: unify the context vectors top-down. *)
  let raw_ctx : Formula.t array option array = Array.make n_frag None in
  Array.iter
    (function
      | Some oc ->
          List.iter
            (fun (sub, vec) -> raw_ctx.(sub) <- Some vec)
            oc.Sel_pass.contexts
      | None -> ())
    outcomes;
  let resolved_ctx =
    Cluster.coord cl ~label:"evalFT:contexts" (fun () ->
        Cluster.add_ops cl ~site:(-1) (n_frag * compiled.Compile.n_sel);
        Eval_ft.resolve_contexts ft
          ~root_ctx:(Array.make compiled.Compile.n_sel false)
          ~ctx_of:(fun fid -> raw_ctx.(fid))
          ~qual_lookup)
  in
  let ctx_lookup = Eval_ft.ctx_lookup resolved_ctx in

  (* ---------------- Stage 3: resolve candidates -------------------- *)
  let has_candidates fid =
    match outcomes.(fid) with
    | Some oc -> oc.Sel_pass.candidates <> []
    | None -> false
  in
  let cand_fids = List.filter has_candidates (all_fids ft) in
  let stage3_sites = active_sites cl cand_fids in
  (* Per-fid memo (replay idempotence under fault plans) as an array,
     not a shared hashtable: a fragment lives on exactly one site, so
     under a parallel round the worker domains write disjoint cells. *)
  let stage3_memo : Tree.node list option array = Array.make n_frag None in
  let stage3_answers =
    Cluster.run_round cl ~label:"stage3" ~sites:stage3_sites (fun site ->
        List.concat_map
          (fun fid ->
            match outcomes.(fid) with
            | Some oc when oc.Sel_pass.candidates <> [] -> (
                match stage3_memo.(fid) with
                | Some answers -> answers
                | None ->
                    let answers =
                      List.filter_map
                        (fun ((v : Tree.node), f) ->
                          Cluster.add_ops cl ~site 1;
                          match
                            Formula.to_bool (Formula.subst ctx_lookup f)
                          with
                          | Some true when v.Tree.id >= 0 -> Some v
                          | Some _ -> None
                          | None ->
                              invalid_arg "PaX3: candidate failed to resolve")
                        oc.Sel_pass.candidates
                    in
                    stage3_memo.(fid) <- Some answers;
                    answers)
            | Some _ | None -> [])
          (Cluster.fragments_on cl site))
  in
  List.iter
    (fun site ->
      List.iter
        (fun fid ->
          if has_candidates fid then
            Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Resolution
              ~bytes:(Measure.bool_array resolved_ctx.(fid))
              ~label:(spf "SV*(F%d)" fid))
        (Cluster.fragments_on cl site))
    stage3_sites;
  List.iter
    (fun (site, answers) ->
      if answers <> [] then
        Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Answers
          ~bytes:(Measure.answers answers) ~label:"ans")
    stage3_answers;

  let certain =
    Array.to_list outcomes
    |> List.concat_map (function
         | Some oc -> Sel_pass.real_answers oc.Sel_pass.answers
         | None -> [])
  in
  let answers = certain @ List.concat_map snd stage3_answers in
  Run_result.make ~trace:(Cluster.trace cl) ~query:q ~answers
    ~report:(Cluster.report cl) ()

(** Outcome of one distributed evaluation: the answer plus the full cost
    accounting. *)

type t = {
  query : Pax_xpath.Query.t;
  answers : Pax_xml.Tree.node list;  (** sorted by node id *)
  answer_ids : int list;  (** sorted *)
  report : Pax_dist.Cluster.report;
}

val make :
  query:Pax_xpath.Query.t -> answers:Pax_xml.Tree.node list ->
  report:Pax_dist.Cluster.report -> t

val pp : Format.formatter -> t -> unit

(** Outcome of one distributed evaluation: the answer plus the full cost
    accounting, and (for the cluster engines) the structured event
    trace the run emitted. *)

type t = {
  query : Pax_xpath.Query.t;
  answers : Pax_xml.Tree.node list;  (** sorted by node id *)
  answer_ids : int list;  (** sorted *)
  report : Pax_dist.Cluster.report;
  trace : Pax_dist.Trace.t option;
      (** every visit, message, retry and crash of the run; the visit
          and communication bounds are assertable from it post hoc *)
}

val make :
  ?trace:Pax_dist.Trace.t -> query:Pax_xpath.Query.t ->
  answers:Pax_xml.Tree.node list -> report:Pax_dist.Cluster.report -> unit -> t

(** The trace, for callers that know the engine recorded one. *)
val trace_exn : t -> Pax_dist.Trace.t

val pp : Format.formatter -> t -> unit

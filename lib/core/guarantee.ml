(* Glue between a finished engine run and the Pax_obs.Audit bound
   checker: extract |Q|, |FT|, |T| and the run's logical accounting
   from the run result (preferring the trace, whose logical counters
   are immune to fault-plan retransmissions), then evaluate the
   paper's three bounds. *)

module Audit = Pax_obs.Audit

let visit_limit = function
  | "pax2" | "pax2-xa" -> Some 2
  | "pax3" | "pax3-xa" -> Some 3
  | "parbox" -> Some 1
  | _ -> None

let input ~engine ~ftree (r : Run_result.t) : Audit.input =
  let compiled = r.Run_result.query.Pax_xpath.Query.compiled in
  let report = r.Run_result.report in
  let max_visits, control_bytes =
    match r.Run_result.trace with
    | Some tr ->
        (Pax_dist.Trace.max_logical_visits tr,
         Pax_dist.Trace.logical_control_bytes tr)
    | None -> (report.Pax_dist.Cluster.max_visits, report.control_bytes)
  in
  {
    Audit.engine;
    visit_limit = visit_limit engine;
    max_visits;
    q_entries = compiled.Pax_xpath.Compile.n_sel + compiled.n_qual;
    ft_size = Pax_frag.Fragment.n_fragments ftree;
    t_size = ftree.Pax_frag.Fragment.doc_node_count;
    control_bytes;
    answer_bytes = report.answer_bytes;
    total_ops = report.total_ops;
  }

let audit ?c_comm ?c_comp ~engine ~ftree r =
  Audit.evaluate ?c_comm ?c_comp (input ~engine ~ftree r)

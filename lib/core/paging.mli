(** The paper's secondary use case (§1, §8): evaluating a query on a
    document too large for main memory by fragmenting it and swapping
    one fragment in at a time.

    Partial evaluation pays off exactly as in the distributed setting:
    the combined PaX2 traversal needs each fragment in memory {e once},
    leaving only residual formulas behind, whereas a conventional
    two-pass evaluator must page every fragment back in for the
    selection pass (and once more for candidate resolution).  Swap-ins
    and bytes paged are the costs reported. *)

type result = {
  answer_ids : int list;
  swap_ins : int;  (** how many times a fragment was brought into memory *)
  bytes_loaded : int;
  n_fragments : int;
  peak_fragment_nodes : int;  (** largest working set, in nodes *)
}

(** [run ~memory_budget q doc] — partial-evaluation strategy: fragment
    into ≤[memory_budget]-node pieces, one swap-in per fragment. *)
val run : memory_budget:int -> Pax_xpath.Query.t -> Pax_xml.Tree.doc -> result

(** [run_two_pass ~memory_budget q doc] — the conventional strategy:
    one swap-in per fragment per pass (qualifier pass, selection pass,
    candidate resolution). *)
val run_two_pass :
  memory_budget:int -> Pax_xpath.Query.t -> Pax_xml.Tree.doc -> result

(** Bottom-up qualifier evaluation over one fragment — the extension of
    ParBoX that forms Stage 1 of PaX3 (paper §3.1) and the post-order
    half of PaX2's combined traversal.

    One pass computes, for every node of the fragment, its qualifier
    vector (the [A]/[B]/[D] entries of {!Pax_xpath.Compile}).  At a
    virtual node every entry is a fresh variable [Var.Qual (fid, e)];
    those variables flow into the vectors of the node's ancestors, making
    them residual Boolean formulas that the coordinator later unifies. *)

module Formula = Pax_bool.Formula

type t = {
  vectors : (int, Formula.t array) Hashtbl.t;  (** node id → vector *)
  root_vec : Formula.t array;  (** the fragment root's vector, shipped *)
  ops : int;  (** vector-entry operations performed *)
}

(** [run compiled root] evaluates all qualifier entries bottom-up.
    Returns empty vectors when the query has no qualifier entries. *)
val run : Pax_xpath.Compile.t -> Pax_xml.Tree.node -> t

(** One node's vector from its children's vectors — the post-order step,
    exposed so PaX2's combined traversal can interleave it with the
    pre-order selection step. *)
val eval_node :
  Pax_xpath.Compile.t -> ops:int ref -> Pax_xml.Tree.node ->
  Formula.t array list -> Formula.t array

(** [sat compiled vec node q] — satisfaction of a filter at [node] given
    the node's qualifier vector.  Ground when the vector is ground. *)
val sat :
  Pax_xpath.Compile.t -> Formula.t array -> Pax_xml.Tree.node ->
  Pax_xpath.Compile.qual -> Formula.t

(** {1 Kernel over abstract node views}

    The recurrence itself does not need a materialized tree — only a
    node's tag, text, numeric value and attributes, plus the
    child-disjunction of each entry.  The streaming engine
    ({!Stream_eval}) reuses it through this interface. *)

type view = {
  vtag : string;
  vtext : string;
  vnum : float option;
  vattr : string -> string option;
}

val view_of_node : Pax_xml.Tree.node -> view

val sat_view :
  Pax_xpath.Compile.t -> Formula.t array -> view -> Pax_xpath.Compile.qual ->
  Formula.t

(** [eval_entries compiled view ~exists_child] — one node's vector,
    where [exists_child e] is the OR of entry [e] over its children. *)
val eval_entries :
  Pax_xpath.Compile.t -> view -> exists_child:(int -> Formula.t) ->
  Formula.t array

(** The all-variables vector of a virtual node for fragment [fid]. *)
val virtual_vec : Pax_xpath.Compile.t -> int -> Formula.t array

(** [resolve t lookup] substitutes boundary variables in every stored
    vector (in place), returning the operation count.  Used at the start
    of Stage 2, once the coordinator has shipped the unified values. *)
val resolve : t -> (Pax_bool.Var.t -> Formula.t option) -> int

(** The ParBoX special case (Buneman et al., VLDB 2006; paper §3.1):
    Boolean XPath queries over the fragmented tree, i.e. "does qualifier
    [q] hold at the document root?".

    This is exactly Stage 1 of PaX3 followed by the coordinator-side
    unification: a single visit per site, communication [O(|Q| |FT|)],
    no tree data shipped at all.  Our version carries the paper's
    extensions: arithmetic comparisons and arbitrarily many top-level
    qualifiers (pass a conjunction). *)

(** [eval cluster q] — truth of [q] at the root of the distributed
    document, plus the cost report.  [?flat] selects the flat or pointer
    hot path (default {!Flat_pass.enabled}); both are bit-identical. *)
val eval :
  ?flat:bool ->
  Pax_dist.Cluster.t ->
  Pax_xpath.Ast.qual ->
  bool * Pax_dist.Cluster.report

(** [eval_string cluster s] parses [s] as a qualifier first. *)
val eval_string :
  ?flat:bool -> Pax_dist.Cluster.t -> string -> bool * Pax_dist.Cluster.report

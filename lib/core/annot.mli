(** The XPath-annotation optimization (paper §5).

    Every fragment-tree edge carries the tag path between fragment
    roots, so the full tag path ("spine") from the document root to any
    fragment root is known to the coordinator without touching data.
    Two uses:

    1. {b Pruning.}  Walking a fragment's spine through the query's
       selection automaton under three-valued logic (tags on the spine
       are known; text values and off-spine data are not) tells whether
       the fragment can possibly (a) contain answer nodes, or (b) hold
       data some qualifier of a possible answer looks at.  Fragments
       that can do neither are ruled out: PaX3 skips them in Stage 2,
       PaX2 does not run its combined pass on them at all.

    2. {b Concrete stack initialization.}  When the three-valued context
       vector of a fragment contains no "maybe", the top-down pass can
       start from ground Booleans instead of [Sel_ctx] variables; every
       answer inside the fragment is then identified with certainty and
       the final resolution stage is skipped for it.  (For
       qualifier-free queries this is the paper's observation; entries
       are grounded individually, so mixed vectors still help.) *)

type tri = F | T | M

type analysis = {
  ctx : tri array array;
      (** per fid: three-valued context vector (at the fragment root's
          parent), [n_sel] entries *)
  relevant_sel : bool array;
      (** fragment can contain answer nodes (prunes PaX3 Stage 2) *)
  relevant : bool array;
      (** fragment can contain answer nodes {e or} influence a
          qualifier of one (prunes PaX2's combined pass) *)
}

val analyze : Pax_xpath.Compile.t -> Pax_frag.Fragment.t -> analysis

(** [init_of_ctx compiled ~fid ctx] — the initial vector for a
    fragment's top-down pass: ground entries where the three-valued
    context is definite, [Sel_ctx] variables where it is [M]. *)
val init_of_ctx :
  Pax_xpath.Compile.t -> fid:int -> tri array -> Pax_bool.Formula.t array

val pp_tri : Format.formatter -> tri -> unit

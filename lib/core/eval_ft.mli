(** Procedure [evalFT]: the coordinator's unification over the fragment
    tree (paper §3.1–3.3).

    Two directions:
    - {b qualifiers resolve bottom-up}: the vector a leaf fragment ships
      is ground; substituting it into the parent's vector grounds the
      parent's variables, and so on up to the root fragment;
    - {b selection contexts resolve top-down}: the root fragment's
      context is known; substituting it into the context vectors the
      root fragment shipped for its sub-fragments grounds those, and so
      on down.

    Fragments ids are topologically ordered (parents smaller), so both
    resolutions are single array sweeps.

    A fragment for which no vector is available (pruned by the
    annotation optimization, §5) resolves to all-[false]; the pruning
    analysis guarantees those values cannot influence any answer. *)

module Formula = Pax_bool.Formula

(** [resolve_quals ft ~root_vecs] — ground qualifier vector of every
    fragment root.  [root_vecs fid] is the shipped vector, [None] if the
    fragment was pruned. *)
val resolve_quals :
  Pax_frag.Fragment.t ->
  root_vecs:(int -> Formula.t array option) ->
  bool array array

(** Substitution source for [Var.Qual] variables. *)
val qual_lookup : bool array array -> Pax_bool.Var.t -> Formula.t option

(** [resolve_contexts ft ~root_ctx ~ctx_of ~qual_lookup] — ground
    context vector (the meaning of the [Sel_ctx] variables) of every
    fragment.  [root_ctx] is the root fragment's real initial vector;
    [ctx_of fid] the raw context shipped by [fid]'s parent ([None] if
    pruned); [qual_lookup] resolves any embedded [Var.Qual] (PaX2 ships
    contexts before qualifiers are unified). *)
val resolve_contexts :
  Pax_frag.Fragment.t ->
  root_ctx:bool array ->
  ctx_of:(int -> Formula.t array option) ->
  qual_lookup:(Pax_bool.Var.t -> Formula.t option) ->
  bool array array

(** Substitution source for [Var.Sel_ctx] variables. *)
val ctx_lookup : bool array array -> Pax_bool.Var.t -> Formula.t option

(** Combined lookup over both directions. *)
val full_lookup :
  quals:bool array array -> ctxs:bool array array ->
  Pax_bool.Var.t -> Formula.t option

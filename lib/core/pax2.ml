module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Measure = Pax_dist.Measure
module Wire = Pax_wire.Wire

let spf = Printf.sprintf

module Combined = struct
  (* One type with the flat pass, so the wire server and the tests can
     hold outcomes from either representation. *)
  type outcome = Flat_pass.combined_outcome = {
    root_qvec : Formula.t array;
    answers : Tree.node list;
    candidates : (Tree.node * Formula.t) list;
    contexts : (int * Formula.t array) list;
    ops : int;
  }

  (* Qualifier entries that selection filters consult: for these the
     pre-order half issues Qual_at placeholders. *)
  let placeholder_entries compiled =
    let rec refs acc = function
      | Compile.Sat pi ->
          let p = compiled.Compile.paths.(pi) in
          if Array.length p.Compile.items = 0 then acc
          else p.Compile.sat.(0) :: acc
      | Compile.Text_eq _ | Compile.Val_cmp _ | Compile.Attr_test _ -> acc
      | Compile.Qnot q -> refs acc q
      | Compile.Qand (a, b) | Compile.Qor (a, b) -> refs (refs acc a) b
    in
    Array.fold_left
      (fun acc item ->
        match item with
        | Compile.Filter q -> refs acc q
        | Compile.Move _ | Compile.Dos_item -> acc)
      [] compiled.Compile.sel
    |> List.sort_uniq compare

  let run compiled ~init ~root_is_context (root : Tree.node) : outcome =
    let n_sel = compiled.Compile.n_sel in
    let last = n_sel - 1 in
    let placeholders = placeholder_entries compiled in
    let sigma : (int * int, Formula.t) Hashtbl.t = Hashtbl.create 64 in
    (* Nodes that actually issued a placeholder; only those need a sigma
       entry at post-order. *)
    let issued : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let pending = ref [] in
    let contexts = ref [] in
    let ops = ref 0 in
    (* Pre-order filter satisfaction: data-local tests evaluate now,
       path satisfactions become placeholders resolved post-order. *)
    let sat_pre (v : Tree.node) q =
      let rec go = function
        | Compile.Sat pi ->
            let p = compiled.Compile.paths.(pi) in
            if Array.length p.Compile.items = 0 then Formula.true_
            else begin
              Hashtbl.replace issued v.Tree.id ();
              Formula.var (Var.Qual_at (v.Tree.id, p.Compile.sat.(0)))
            end
        | Compile.Text_eq s -> Formula.bool (Tree.text_of v = s)
        | Compile.Val_cmp (op, num) ->
            Formula.bool
              (match Tree.float_of v with
              | Some f -> Pax_xpath.Ast.compare_num op f num
              | None -> false)
        | Compile.Attr_test (name, value) ->
            Formula.bool
              (match (Tree.attr v name, value) with
              | Some _, None -> true
              | Some actual, Some expected -> actual = expected
              | None, _ -> false)
        | Compile.Qnot q -> Formula.not_ (go q)
        | Compile.Qand (a, b) -> Formula.conj (go a) (go b)
        | Compile.Qor (a, b) -> Formula.disj (go a) (go b)
      in
      go q
    in
    let rec go (v : Tree.node) ~is_context (sv_p : Formula.t array) :
        Formula.t array =
      match v.kind with
      | Tree.Virtual fid ->
          contexts := (fid, Array.copy sv_p) :: !contexts;
          Array.init compiled.Compile.n_qual (fun e ->
              Formula.var (Var.Qual (fid, e)))
      | Tree.Element ->
          (* Pre-order: selection entries with placeholders; dead
             prefixes never consult their qualifier. *)
          ops := !ops + n_sel;
          let sv = Array.make n_sel Formula.false_ in
          sv.(0) <- Formula.bool is_context;
          Array.iteri
            (fun j item ->
              let i = j + 1 in
              match item with
              | Compile.Move test ->
                  sv.(i) <-
                    (if Compile.matches test v.tag then sv_p.(j)
                     else Formula.false_)
              | Compile.Dos_item -> sv.(i) <- Formula.disj sv_p.(i) sv.(i - 1)
              | Compile.Filter q ->
                  sv.(i) <-
                    (if sv.(i - 1) = Formula.false_ then Formula.false_
                     else Formula.conj sv.(i - 1) (sat_pre v q)))
            compiled.Compile.sel;
          if sv.(last) <> Formula.false_ then pending := (v, sv.(last)) :: !pending;
          let child_vecs =
            List.map (fun c -> go c ~is_context:false sv) v.children
          in
          (* Post-order: qualifier vector, then local unification of the
             placeholders this node's filters introduced. *)
          let qvec = Qual_pass.eval_node compiled ~ops v child_vecs in
          if Hashtbl.mem issued v.Tree.id then
            List.iter
              (fun e -> Hashtbl.replace sigma (v.Tree.id, e) qvec.(e))
              placeholders;
          qvec
    in
    let root_qvec = go root ~is_context:root_is_context init in
    let sigma_lookup = function
      | Var.Qual_at (nid, e) -> Hashtbl.find_opt sigma (nid, e)
      | Var.Qual _ | Var.Sel_ctx _ -> None
    in
    let answers = ref [] in
    let candidates = ref [] in
    List.iter
      (fun ((v : Tree.node), f) ->
        ops := !ops + 1;
        let g = Formula.subst sigma_lookup f in
        match Formula.to_bool g with
        | Some true -> if v.Tree.id >= 0 then answers := v :: !answers
        | Some false -> ()
        | None -> candidates := (v, g) :: !candidates)
      (List.rev !pending);
    let contexts =
      List.rev_map
        (fun (fid, vec) -> (fid, Array.map (Formula.subst sigma_lookup) vec))
        !contexts
    in
    {
      root_qvec;
      answers = List.rev !answers;
      candidates = List.rev !candidates;
      contexts;
      ops = !ops;
    }
end

let run ?(annotations = false) ?flat (cl : Cluster.t) (q : Query.t) :
    Run_result.t =
  Cluster.reset cl;
  let ft = Cluster.ftree cl in
  let n_frag = Fragment.n_fragments ft in
  let compiled = q.Query.compiled in
  let use_flat =
    match flat with Some b -> b | None -> Flat_pass.enabled ()
  in
  let fplan =
    lazy (Flat_pass.make_plan compiled (Fragment.intern ft))
  in
  let analysis = if annotations then Some (Annot.analyze compiled ft) else None in
  let relevant fid =
    match analysis with None -> true | Some a -> a.Annot.relevant.(fid)
  in
  let eval_roots =
    Array.init n_frag (fun fid ->
        let root = (Fragment.fragment ft fid).Fragment.root in
        if fid = 0 then fst (Sel_pass.context_root compiled root) else root)
  in
  let init_for fid =
    if fid = 0 then Sel_pass.blank_init compiled
    else
      match analysis with
      | Some a -> Annot.init_of_ctx compiled ~fid a.Annot.ctx.(fid)
      | None -> Sel_pass.symbolic_init compiled ~fid
  in

  (* ---------------- Stage 1: combined pass, relevant sites --------- *)
  let rel_fids = List.filter relevant (Fragment.top_down ft) in
  (* Per-fragment stage-1 views, filled either by the in-process
     executor or by parsing wire replies — everything downstream
     (accounting, unification, answer assembly) reads only these, so
     both backends are observably identical.  [local_cands] holds the
     actual candidate formulas and exists only in-process; a remote
     site keeps its candidates to itself until the resolution stage. *)
  let s1_seen = Array.make n_frag false in
  let s1_qvec : Formula.t array array = Array.make n_frag [||] in
  let s1_ctxs : (int * Formula.t array) list array = Array.make n_frag [] in
  let s1_answers : Tree.node list array = Array.make n_frag [] in
  let s1_cands = Array.make n_frag 0 in
  let local_cands : (Tree.node * Formula.t) list array = Array.make n_frag [] in
  let fill_view fid (fr : Wire.frag_result) =
    s1_qvec.(fid) <-
      (match fr.Wire.fr_vec with
      | Some vec -> vec
      | None when compiled.Compile.n_qual = 0 -> [||]
      | None -> invalid_arg "PaX2: stage-1 reply lacks vector");
    s1_ctxs.(fid) <- fr.Wire.fr_ctxs;
    s1_answers.(fid) <- List.map Wire.node_of_answer fr.Wire.fr_answers;
    s1_cands.(fid) <- fr.Wire.fr_cands;
    s1_seen.(fid) <- true
  in
  (* Cross-query cache (transport path only; Stage_cache.noop unless a
     serving layer installed one).  A hit prefills the stage-1 view and
     elides the fragment from the round — no visit, no vector/answer
     traffic, no site ops, exactly as if the wire reply from the run
     that warmed the cache were replayed.  Only fully-resolved results
     (fr_cands = 0) are cached: a fragment retaining candidates has
     server-side state stage 2 must revisit. *)
  let cache = Cluster.stage_cache cl in
  let use_cache = Cluster.transport_active cl in
  let qkey =
    if use_cache then
      spf "%s|annot=%b" (Pax_xpath.Normal.to_string q.Query.normal) annotations
    else ""
  in
  let from_cache = Array.make n_frag false in
  if use_cache then
    List.iter
      (fun fid ->
        match cache.Pax_dist.Stage_cache.lookup ~qkey ~fid with
        | Some fr when fr.Wire.fr_cands = 0 && fr.Wire.fr_fid = fid ->
            fill_view fid fr;
            from_cache.(fid) <- true
        | Some _ | None -> ())
      rel_fids;
  let stage1_sites =
    Cluster.sites_holding cl
      (List.filter (fun fid -> not from_cache.(fid)) rel_fids)
  in
  (* Stage state is keyed by fid within the round: a replayed visit
     (lost reply under a fault plan) finds the view already filled
     and neither recomputes nor double-counts. *)
  let s1_local site =
    List.iter
      (fun fid ->
        if relevant fid && not s1_seen.(fid) then begin
          let oc =
            if use_flat then
              Flat_pass.combined_run (Lazy.force fplan)
                (Fragment.flat ft fid) ~init:(init_for fid)
                ~is_root:(fid = 0)
            else
              Combined.run compiled ~init:(init_for fid)
                ~root_is_context:(fid = 0) eval_roots.(fid)
          in
          s1_qvec.(fid) <- oc.Combined.root_qvec;
          s1_ctxs.(fid) <- oc.Combined.contexts;
          s1_answers.(fid) <- oc.Combined.answers;
          s1_cands.(fid) <- List.length oc.Combined.candidates;
          local_cands.(fid) <- oc.Combined.candidates;
          s1_seen.(fid) <- true;
          Cluster.add_ops cl ~site oc.Combined.ops
        end)
      (Cluster.fragments_on cl site)
  in
  let s1_remote =
    {
      Cluster.build =
        (fun site ->
          Wire.Pax2_stage1
            {
              query = q.Query.source;
              frags =
                List.filter_map
                  (fun fid ->
                    if relevant fid then
                      Some
                        {
                          Wire.fe_fid = fid;
                          fe_is_root = fid = 0;
                          (* Derivable inits stay implicit; only the
                             annotation-pruned vectors ship. *)
                          fe_init =
                            (if annotations then Some (init_for fid) else None);
                        }
                    else None)
                  (Cluster.fragments_on cl site);
            });
      parse =
        (fun site reply ->
          match reply with
          | Wire.Frag_results frs ->
              List.iter
                (fun (fr : Wire.frag_result) ->
                  let fid = fr.Wire.fr_fid in
                  if not s1_seen.(fid) then begin
                    fill_view fid fr;
                    Cluster.add_ops cl ~site fr.Wire.fr_ops;
                    if use_cache && fr.Wire.fr_cands = 0 then
                      cache.Pax_dist.Stage_cache.store ~qkey ~fid fr
                  end)
                frs
          | Wire.Final_answers _ ->
              invalid_arg "PaX2: unexpected stage-1 reply");
    }
  in
  let remote_if_net rm =
    if Cluster.transport_active cl then Some rm else None
  in
  ignore
    (Cluster.run_round cl
       ?remote:(remote_if_net s1_remote)
       ~label:"stage1" ~sites:stage1_sites s1_local);
  List.iter
    (fun site ->
      Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Query
        ~bytes:(Measure.query q) ~label:"Q";
      List.iter
        (fun fid ->
          (* Cache-hit fragments were not visited: their vectors and
             answers are already coordinator-side, so nothing travels. *)
          if s1_seen.(fid) && not from_cache.(fid) then begin
            if compiled.Compile.n_qual > 0 then
              Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Vectors
                ~bytes:(Measure.formula_array s1_qvec.(fid))
                ~label:(spf "QV(F%d)" fid);
            List.iter
              (fun (sub, vec) ->
                Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Vectors
                  ~bytes:(Measure.formula_array vec)
                  ~label:(spf "SV(F%d)" sub))
              s1_ctxs.(fid);
            if s1_answers.(fid) <> [] then
              Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Answers
                ~bytes:(Measure.answers s1_answers.(fid))
                ~label:(spf "ans(F%d)" fid)
          end)
        (Cluster.fragments_on cl site))
    stage1_sites;

  (* Coordinator: bottom-up qualifier unification, then top-down context
     unification (contexts may embed qualifier variables). *)
  let resolved_quals =
    Cluster.coord cl ~label:"evalFT:quals" (fun () ->
        Cluster.add_ops cl ~site:(-1) (n_frag * compiled.Compile.n_qual);
        Eval_ft.resolve_quals ft ~root_vecs:(fun fid ->
            if s1_seen.(fid) then Some s1_qvec.(fid) else None))
  in
  let qual_lookup = Eval_ft.qual_lookup resolved_quals in
  let raw_ctx : Formula.t array option array = Array.make n_frag None in
  Array.iteri
    (fun fid ctxs ->
      if s1_seen.(fid) then
        List.iter (fun (sub, vec) -> raw_ctx.(sub) <- Some vec) ctxs)
    s1_ctxs;
  let resolved_ctx =
    Cluster.coord cl ~label:"evalFT:contexts" (fun () ->
        Cluster.add_ops cl ~site:(-1) (n_frag * compiled.Compile.n_sel);
        Eval_ft.resolve_contexts ft
          ~root_ctx:(Array.make compiled.Compile.n_sel false)
          ~ctx_of:(fun fid -> raw_ctx.(fid))
          ~qual_lookup)
  in
  let full_lookup = Eval_ft.full_lookup ~quals:resolved_quals ~ctxs:resolved_ctx in

  (* ---------------- Stage 2: resolve candidates -------------------- *)
  let has_candidates fid = s1_seen.(fid) && s1_cands.(fid) > 0 in
  let cand_fids = List.filter has_candidates (Fragment.top_down ft) in
  let stage2_sites = Cluster.sites_holding cl cand_fids in
  (* Per-fid memo (replay idempotence under fault plans) as an array,
     not a shared hashtable: a fragment lives on exactly one site, so
     under a parallel round the worker domains write disjoint cells. *)
  let stage2_memo : Tree.node list option array = Array.make n_frag None in
  let s2_local site =
    List.concat_map
      (fun fid ->
        if has_candidates fid then
          match stage2_memo.(fid) with
          | Some answers -> answers
          | None ->
              let answers =
                List.filter_map
                  (fun ((v : Tree.node), f) ->
                    Cluster.add_ops cl ~site 1;
                    match Formula.to_bool (Formula.subst full_lookup f) with
                    | Some true when v.Tree.id >= 0 -> Some v
                    | Some _ -> None
                    | None -> invalid_arg "PaX2: candidate failed to resolve")
                  local_cands.(fid)
              in
              stage2_memo.(fid) <- Some answers;
              answers
        else [])
      (Cluster.fragments_on cl site)
  in
  let s2_remote =
    {
      Cluster.build =
        (fun site ->
          Wire.Pax2_stage2
            {
              frags =
                List.filter_map
                  (fun fid ->
                    if has_candidates fid then
                      Some
                        ( fid,
                          resolved_ctx.(fid),
                          List.map
                            (fun sub -> (sub, resolved_quals.(sub)))
                            ft.Fragment.children.(fid) )
                    else None)
                  (Cluster.fragments_on cl site);
            });
      parse =
        (fun site reply ->
          match reply with
          | Wire.Final_answers { answers; ops } ->
              Cluster.add_ops cl ~site ops;
              List.map Wire.node_of_answer answers
          | Wire.Frag_results _ ->
              invalid_arg "PaX2: unexpected stage-2 reply");
    }
  in
  let stage2_answers =
    Cluster.run_round cl
      ?remote:(remote_if_net s2_remote)
      ~label:"stage2" ~sites:stage2_sites s2_local
  in
  List.iter
    (fun site ->
      List.iter
        (fun fid ->
          if has_candidates fid then begin
            Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Resolution
              ~bytes:(Measure.bool_array resolved_ctx.(fid))
              ~label:(spf "SV*(F%d)" fid);
            List.iter
              (fun sub ->
                Cluster.send cl ~src:Coordinator ~dst:(Site site)
                  ~kind:Resolution
                  ~bytes:(Measure.bool_array resolved_quals.(sub))
                  ~label:(spf "QV*(F%d)" sub))
              ft.Fragment.children.(fid)
          end)
        (Cluster.fragments_on cl site))
    stage2_sites;
  List.iter
    (fun (site, answers) ->
      if answers <> [] then
        Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Answers
          ~bytes:(Measure.answers answers) ~label:"ans")
    stage2_answers;

  let certain = List.concat (Array.to_list s1_answers) in
  let answers = certain @ List.concat_map snd stage2_answers in
  Run_result.make ~trace:(Cluster.trace cl) ~query:q ~answers
    ~report:(Cluster.report cl) ()

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Compile = Pax_xpath.Compile
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Measure = Pax_dist.Measure

let spf = Printf.sprintf

module Combined = struct
  type outcome = {
    root_qvec : Formula.t array;
    answers : Tree.node list;
    candidates : (Tree.node * Formula.t) list;
    contexts : (int * Formula.t array) list;
    ops : int;
  }

  (* Qualifier entries that selection filters consult: for these the
     pre-order half issues Qual_at placeholders. *)
  let placeholder_entries compiled =
    let rec refs acc = function
      | Compile.Sat pi ->
          let p = compiled.Compile.paths.(pi) in
          if Array.length p.Compile.items = 0 then acc
          else p.Compile.sat.(0) :: acc
      | Compile.Text_eq _ | Compile.Val_cmp _ | Compile.Attr_test _ -> acc
      | Compile.Qnot q -> refs acc q
      | Compile.Qand (a, b) | Compile.Qor (a, b) -> refs (refs acc a) b
    in
    Array.fold_left
      (fun acc item ->
        match item with
        | Compile.Filter q -> refs acc q
        | Compile.Move _ | Compile.Dos_item -> acc)
      [] compiled.Compile.sel
    |> List.sort_uniq compare

  let run compiled ~init ~root_is_context (root : Tree.node) : outcome =
    let n_sel = compiled.Compile.n_sel in
    let last = n_sel - 1 in
    let placeholders = placeholder_entries compiled in
    let sigma : (int * int, Formula.t) Hashtbl.t = Hashtbl.create 64 in
    (* Nodes that actually issued a placeholder; only those need a sigma
       entry at post-order. *)
    let issued : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let pending = ref [] in
    let contexts = ref [] in
    let ops = ref 0 in
    (* Pre-order filter satisfaction: data-local tests evaluate now,
       path satisfactions become placeholders resolved post-order. *)
    let sat_pre (v : Tree.node) q =
      let rec go = function
        | Compile.Sat pi ->
            let p = compiled.Compile.paths.(pi) in
            if Array.length p.Compile.items = 0 then Formula.true_
            else begin
              Hashtbl.replace issued v.Tree.id ();
              Formula.var (Var.Qual_at (v.Tree.id, p.Compile.sat.(0)))
            end
        | Compile.Text_eq s -> Formula.bool (Tree.text_of v = s)
        | Compile.Val_cmp (op, num) ->
            Formula.bool
              (match Tree.float_of v with
              | Some f -> Pax_xpath.Ast.compare_num op f num
              | None -> false)
        | Compile.Attr_test (name, value) ->
            Formula.bool
              (match (Tree.attr v name, value) with
              | Some _, None -> true
              | Some actual, Some expected -> actual = expected
              | None, _ -> false)
        | Compile.Qnot q -> Formula.not_ (go q)
        | Compile.Qand (a, b) -> Formula.conj (go a) (go b)
        | Compile.Qor (a, b) -> Formula.disj (go a) (go b)
      in
      go q
    in
    let rec go (v : Tree.node) ~is_context (sv_p : Formula.t array) :
        Formula.t array =
      match v.kind with
      | Tree.Virtual fid ->
          contexts := (fid, Array.copy sv_p) :: !contexts;
          Array.init compiled.Compile.n_qual (fun e ->
              Formula.var (Var.Qual (fid, e)))
      | Tree.Element ->
          (* Pre-order: selection entries with placeholders; dead
             prefixes never consult their qualifier. *)
          ops := !ops + n_sel;
          let sv = Array.make n_sel Formula.false_ in
          sv.(0) <- Formula.bool is_context;
          Array.iteri
            (fun j item ->
              let i = j + 1 in
              match item with
              | Compile.Move test ->
                  sv.(i) <-
                    (if Compile.matches test v.tag then sv_p.(j)
                     else Formula.false_)
              | Compile.Dos_item -> sv.(i) <- Formula.disj sv_p.(i) sv.(i - 1)
              | Compile.Filter q ->
                  sv.(i) <-
                    (if sv.(i - 1) = Formula.false_ then Formula.false_
                     else Formula.conj sv.(i - 1) (sat_pre v q)))
            compiled.Compile.sel;
          if sv.(last) <> Formula.false_ then pending := (v, sv.(last)) :: !pending;
          let child_vecs =
            List.map (fun c -> go c ~is_context:false sv) v.children
          in
          (* Post-order: qualifier vector, then local unification of the
             placeholders this node's filters introduced. *)
          let qvec = Qual_pass.eval_node compiled ~ops v child_vecs in
          if Hashtbl.mem issued v.Tree.id then
            List.iter
              (fun e -> Hashtbl.replace sigma (v.Tree.id, e) qvec.(e))
              placeholders;
          qvec
    in
    let root_qvec = go root ~is_context:root_is_context init in
    let sigma_lookup = function
      | Var.Qual_at (nid, e) -> Hashtbl.find_opt sigma (nid, e)
      | Var.Qual _ | Var.Sel_ctx _ -> None
    in
    let answers = ref [] in
    let candidates = ref [] in
    List.iter
      (fun ((v : Tree.node), f) ->
        ops := !ops + 1;
        let g = Formula.subst sigma_lookup f in
        match Formula.to_bool g with
        | Some true -> if v.Tree.id >= 0 then answers := v :: !answers
        | Some false -> ()
        | None -> candidates := (v, g) :: !candidates)
      (List.rev !pending);
    let contexts =
      List.rev_map
        (fun (fid, vec) -> (fid, Array.map (Formula.subst sigma_lookup) vec))
        !contexts
    in
    {
      root_qvec;
      answers = List.rev !answers;
      candidates = List.rev !candidates;
      contexts;
      ops = !ops;
    }
end

let run ?(annotations = false) (cl : Cluster.t) (q : Query.t) : Run_result.t =
  Cluster.reset cl;
  let ft = Cluster.ftree cl in
  let n_frag = Fragment.n_fragments ft in
  let compiled = q.Query.compiled in
  let analysis = if annotations then Some (Annot.analyze compiled ft) else None in
  let relevant fid =
    match analysis with None -> true | Some a -> a.Annot.relevant.(fid)
  in
  let eval_roots =
    Array.init n_frag (fun fid ->
        let root = (Fragment.fragment ft fid).Fragment.root in
        if fid = 0 then fst (Sel_pass.context_root compiled root) else root)
  in
  let init_for fid =
    if fid = 0 then Sel_pass.blank_init compiled
    else
      match analysis with
      | Some a -> Annot.init_of_ctx compiled ~fid a.Annot.ctx.(fid)
      | None -> Sel_pass.symbolic_init compiled ~fid
  in

  (* ---------------- Stage 1: combined pass, relevant sites --------- *)
  let rel_fids = List.filter relevant (Fragment.top_down ft) in
  let stage1_sites = Cluster.sites_holding cl rel_fids in
  let outcomes : Combined.outcome option array = Array.make n_frag None in
  (* Stage state is keyed by fid within the round: a replayed visit
     (lost reply under a fault plan) finds the outcome already computed
     and neither recomputes nor double-counts. *)
  ignore
    (Cluster.run_round cl ~label:"stage1" ~sites:stage1_sites (fun site ->
         List.iter
           (fun fid ->
             if relevant fid && Option.is_none outcomes.(fid) then begin
               let outcome =
                 Combined.run compiled ~init:(init_for fid)
                   ~root_is_context:(fid = 0) eval_roots.(fid)
               in
               outcomes.(fid) <- Some outcome;
               Cluster.add_ops cl ~site outcome.Combined.ops
             end)
           (Cluster.fragments_on cl site)));
  List.iter
    (fun site ->
      Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Query
        ~bytes:(Measure.query q) ~label:"Q";
      List.iter
        (fun fid ->
          match outcomes.(fid) with
          | Some oc ->
              if compiled.Compile.n_qual > 0 then
                Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Vectors
                  ~bytes:(Measure.formula_array oc.Combined.root_qvec)
                  ~label:(spf "QV(F%d)" fid);
              List.iter
                (fun (sub, vec) ->
                  Cluster.send cl ~src:(Site site) ~dst:Coordinator
                    ~kind:Vectors ~bytes:(Measure.formula_array vec)
                    ~label:(spf "SV(F%d)" sub))
                oc.Combined.contexts;
              if oc.Combined.answers <> [] then
                Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Answers
                  ~bytes:(Measure.answers oc.Combined.answers)
                  ~label:(spf "ans(F%d)" fid)
          | None -> ())
        (Cluster.fragments_on cl site))
    stage1_sites;

  (* Coordinator: bottom-up qualifier unification, then top-down context
     unification (contexts may embed qualifier variables). *)
  let resolved_quals =
    Cluster.coord cl ~label:"evalFT:quals" (fun () ->
        Cluster.add_ops cl ~site:(-1) (n_frag * compiled.Compile.n_qual);
        Eval_ft.resolve_quals ft ~root_vecs:(fun fid ->
            Option.map (fun oc -> oc.Combined.root_qvec) outcomes.(fid)))
  in
  let qual_lookup = Eval_ft.qual_lookup resolved_quals in
  let raw_ctx : Formula.t array option array = Array.make n_frag None in
  Array.iter
    (function
      | Some oc ->
          List.iter
            (fun (sub, vec) -> raw_ctx.(sub) <- Some vec)
            oc.Combined.contexts
      | None -> ())
    outcomes;
  let resolved_ctx =
    Cluster.coord cl ~label:"evalFT:contexts" (fun () ->
        Cluster.add_ops cl ~site:(-1) (n_frag * compiled.Compile.n_sel);
        Eval_ft.resolve_contexts ft
          ~root_ctx:(Array.make compiled.Compile.n_sel false)
          ~ctx_of:(fun fid -> raw_ctx.(fid))
          ~qual_lookup)
  in
  let full_lookup = Eval_ft.full_lookup ~quals:resolved_quals ~ctxs:resolved_ctx in

  (* ---------------- Stage 2: resolve candidates -------------------- *)
  let has_candidates fid =
    match outcomes.(fid) with
    | Some oc -> oc.Combined.candidates <> []
    | None -> false
  in
  let cand_fids = List.filter has_candidates (Fragment.top_down ft) in
  let stage2_sites = Cluster.sites_holding cl cand_fids in
  (* Per-fid memo (replay idempotence under fault plans) as an array,
     not a shared hashtable: a fragment lives on exactly one site, so
     under a parallel round the worker domains write disjoint cells. *)
  let stage2_memo : Tree.node list option array = Array.make n_frag None in
  let stage2_answers =
    Cluster.run_round cl ~label:"stage2" ~sites:stage2_sites (fun site ->
        List.concat_map
          (fun fid ->
            match outcomes.(fid) with
            | Some oc when oc.Combined.candidates <> [] -> (
                match stage2_memo.(fid) with
                | Some answers -> answers
                | None ->
                    let answers =
                      List.filter_map
                        (fun ((v : Tree.node), f) ->
                          Cluster.add_ops cl ~site 1;
                          match
                            Formula.to_bool (Formula.subst full_lookup f)
                          with
                          | Some true when v.Tree.id >= 0 -> Some v
                          | Some _ -> None
                          | None ->
                              invalid_arg "PaX2: candidate failed to resolve")
                        oc.Combined.candidates
                    in
                    stage2_memo.(fid) <- Some answers;
                    answers)
            | Some _ | None -> [])
          (Cluster.fragments_on cl site))
  in
  List.iter
    (fun site ->
      List.iter
        (fun fid ->
          if has_candidates fid then begin
            Cluster.send cl ~src:Coordinator ~dst:(Site site) ~kind:Resolution
              ~bytes:(Measure.bool_array resolved_ctx.(fid))
              ~label:(spf "SV*(F%d)" fid);
            List.iter
              (fun sub ->
                Cluster.send cl ~src:Coordinator ~dst:(Site site)
                  ~kind:Resolution
                  ~bytes:(Measure.bool_array resolved_quals.(sub))
                  ~label:(spf "QV*(F%d)" sub))
              ft.Fragment.children.(fid)
          end)
        (Cluster.fragments_on cl site))
    stage2_sites;
  List.iter
    (fun (site, answers) ->
      if answers <> [] then
        Cluster.send cl ~src:(Site site) ~dst:Coordinator ~kind:Answers
          ~bytes:(Measure.answers answers) ~label:"ans")
    stage2_answers;

  let certain =
    Array.to_list outcomes
    |> List.concat_map (function
         | Some oc -> oc.Combined.answers
         | None -> [])
  in
  let answers = certain @ List.concat_map snd stage2_answers in
  Run_result.make ~trace:(Cluster.trace cl) ~query:q ~answers
    ~report:(Cluster.report cl) ()

(** The NaiveCentralized baseline (paper §3): ship every fragment to the
    query site, reassemble the tree, evaluate centrally.

    One visit per site, but the network carries the entire document
    ([Tree_data] bytes), and the query site must hold and traverse the
    whole tree alone — the two costs the paper's algorithms avoid. *)

val run : Pax_dist.Cluster.t -> Pax_xpath.Query.t -> Run_result.t

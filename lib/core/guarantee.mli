(** Audit a finished engine run against the paper's guarantees.

    Bridges {!Run_result.t} to {!Pax_obs.Audit}: visit counts and
    control bytes come from the trace when the engine recorded one
    (logical counters, immune to fault-induced retransmissions), else
    from the report; |Q| is the compiled entry count
    ([n_sel + n_qual]), |FT| the fragment count, |T| the document node
    count.  Constants default to the calibrated values in
    {!Pax_obs.Audit} (see docs/OBSERVABILITY.md). *)

(** The per-site visit cap an engine promises: [Some 2] for ["pax2"]
    and ["pax2-xa"], [Some 3] for ["pax3"] and ["pax3-xa"], [Some 1]
    for ["parbox"], [None] otherwise (no visits bound is emitted —
    e.g. the shipping baselines).  The [-xa] variants are the
    annotated runs as named by {!Engines}; annotations only remove
    visits, so the same caps hold. *)
val visit_limit : string -> int option

val input :
  engine:string -> ftree:Pax_frag.Fragment.t -> Run_result.t ->
  Pax_obs.Audit.input

val audit :
  ?c_comm:float ->
  ?c_comp:float ->
  engine:string ->
  ftree:Pax_frag.Fragment.t ->
  Run_result.t ->
  Pax_obs.Audit.report

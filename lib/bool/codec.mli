(** Binary wire codec for variables, formulas and vectors.

    The cost model of the simulator charges messages by their {e actual}
    encoded length; this module provides that encoding (and the decoder,
    so the round trip is testable).  Format: a compact tag byte per
    node, LEB128-style varints for integers. *)

(** {1 Encoding} *)

(** LEB128 unsigned varints — the integer primitive of every codec here,
    exposed for the higher-level wire protocol ({!Pax_wire}). *)
val encode_varint : Buffer.t -> int -> unit

val varint_bytes : int -> int
val encode_formula : Buffer.t -> Formula.t -> unit
val encode_formula_array : Buffer.t -> Formula.t array -> unit
val encode_bool_array : Buffer.t -> bool array -> unit

(** Encoded lengths without materializing a buffer twice. *)
val formula_bytes : Formula.t -> int

val formula_array_bytes : Formula.t array -> int
val bool_array_bytes : bool array -> int

(** {1 Decoding} *)

exception Decode_error of string

(** All decoders are {e total} up to [Decode_error]: truncated input,
    overlong varints and adversarial counts raise it (never
    [Invalid_argument] or out-of-bounds), and never allocate
    proportionally to an unvalidated count. *)

val decode_varint : string -> pos:int -> int * int

val decode_formula : string -> pos:int -> Formula.t * int
val decode_formula_array : string -> pos:int -> Formula.t array * int
val decode_bool_array : string -> pos:int -> bool array * int

(** Convenience whole-string round trips. *)
val formula_to_string : Formula.t -> string

val formula_of_string : string -> Formula.t
val formula_array_to_string : Formula.t array -> string
val formula_array_of_string : string -> Formula.t array
val bool_array_to_string : bool array -> string
val bool_array_of_string : string -> bool array

(** Total variants: [None] on any malformed, truncated or
    trailing-garbage input — no exception escapes, whatever the bytes. *)

val formula_of_string_opt : string -> Formula.t option
val formula_array_of_string_opt : string -> Formula.t array option
val bool_array_of_string_opt : string -> bool array option

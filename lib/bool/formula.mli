(** Boolean formulas with variables — the residual functions of partial
    evaluation.

    A partial answer computed over one fragment is a formula over the
    variables of its virtual nodes ({!Var.t}).  All constructors simplify
    eagerly (constant folding, flattening, involution, duplicate removal),
    so a formula with no variables is always exactly [True] or [False] and
    formula sizes stay proportional to the number of unresolved
    boundary variables. *)

type t = private
  | True
  | False
  | Var of Var.t
  | Not of t
  | And of t list  (** ≥ 2 conjuncts, none of which is [True]/[False]/[And] *)
  | Or of t list  (** ≥ 2 disjuncts, none of which is [True]/[False]/[Or] *)

val true_ : t
val false_ : t
val bool : bool -> t
val var : Var.t -> t

(** Negation; [not_ (not_ f)] is [f]. *)
val not_ : t -> t

(** N-ary conjunction with simplification; [and_ []] is [True]. *)
val and_ : t list -> t

(** N-ary disjunction with simplification; [or_ []] is [False]. *)
val or_ : t list -> t

(** Binary shortcuts. *)
val conj : t -> t -> t

val disj : t -> t -> t

(** [subst lookup f] replaces every variable [v] for which
    [lookup v = Some g] by [g], re-simplifying.  Unresolved variables are
    kept.  This is the unification step of procedure [evalFT]. *)
val subst : (Var.t -> t option) -> t -> t

(** [eval valuation f] fully evaluates [f]; every variable must be
    covered by [valuation]. *)
val eval : (Var.t -> bool) -> t -> bool

(** [to_bool f] is [Some b] when [f] is the constant [b]. *)
val to_bool : t -> bool option

val is_ground : t -> bool

(** All distinct variables occurring in [f]. *)
val vars : t -> Var.t list

(** [fold_vars f acc t] folds over variable occurrences. *)
val fold_vars : ('a -> Var.t -> 'a) -> 'a -> t -> 'a

(** Number of AST nodes; proxy for residual-function size. *)
val size : t -> int

(** Serialized size estimate in bytes for the network-cost model. *)
val byte_size : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

exception Decode_error of string

(* ------------------------------------------------------------------ *)
(* varints (LEB128, unsigned)                                         *)
(* ------------------------------------------------------------------ *)

let encode_varint buf n =
  if n < 0 then invalid_arg "Codec: negative varint";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

let varint_bytes n =
  let rec go n acc = if n < 0x80 then acc + 1 else go (n lsr 7) (acc + 1) in
  go (max n 0) 0

let decode_varint s ~pos =
  let rec go pos shift acc =
    if pos >= String.length s then raise (Decode_error "truncated varint")
    else if shift > Sys.int_size - 8 then
      (* A shift this deep would drop bits (or make [lsl] undefined):
         nothing we encode is that long, so the input is corrupt. *)
      raise (Decode_error "varint overflow")
    else
      let b = Char.code s.[pos] in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

(* An adversarial count (huge varint) must not drive a pre-sized
   allocation: every counted item occupies at least [unit] byte(s), so a
   count exceeding the bytes left is corrupt. *)
let check_count s ~pos ~unit n what =
  if n < 0 || n > (String.length s - pos) / unit then
    raise (Decode_error ("bad " ^ what ^ " count"))

(* ------------------------------------------------------------------ *)
(* tags                                                               *)
(* ------------------------------------------------------------------ *)

let t_true = 0
let t_false = 1
let t_not = 2
let t_and = 3
let t_or = 4
let t_var_qual = 5
let t_var_ctx = 6
let t_var_at = 7

let encode_var buf (v : Var.t) =
  match v with
  | Var.Qual (a, b) ->
      Buffer.add_char buf (Char.chr t_var_qual);
      encode_varint buf a;
      encode_varint buf b
  | Var.Sel_ctx (a, b) ->
      Buffer.add_char buf (Char.chr t_var_ctx);
      encode_varint buf a;
      encode_varint buf b
  | Var.Qual_at (a, b) ->
      Buffer.add_char buf (Char.chr t_var_at);
      encode_varint buf a;
      encode_varint buf b

let var_bytes (v : Var.t) =
  match v with
  | Var.Qual (a, b) | Var.Sel_ctx (a, b) | Var.Qual_at (a, b) ->
      1 + varint_bytes a + varint_bytes b

let rec encode_formula buf (f : Formula.t) =
  match f with
  | Formula.True -> Buffer.add_char buf (Char.chr t_true)
  | Formula.False -> Buffer.add_char buf (Char.chr t_false)
  | Formula.Var v -> encode_var buf v
  | Formula.Not g ->
      Buffer.add_char buf (Char.chr t_not);
      encode_formula buf g
  | Formula.And gs ->
      Buffer.add_char buf (Char.chr t_and);
      encode_varint buf (List.length gs);
      List.iter (encode_formula buf) gs
  | Formula.Or gs ->
      Buffer.add_char buf (Char.chr t_or);
      encode_varint buf (List.length gs);
      List.iter (encode_formula buf) gs

let rec formula_bytes (f : Formula.t) =
  match f with
  | Formula.True | Formula.False -> 1
  | Formula.Var v -> var_bytes v
  | Formula.Not g -> 1 + formula_bytes g
  | Formula.And gs | Formula.Or gs ->
      List.fold_left
        (fun acc g -> acc + formula_bytes g)
        (1 + varint_bytes (List.length gs))
        gs

let encode_formula_array buf fs =
  encode_varint buf (Array.length fs);
  Array.iter (encode_formula buf) fs

let formula_array_bytes fs =
  Array.fold_left
    (fun acc f -> acc + formula_bytes f)
    (varint_bytes (Array.length fs))
    fs

let encode_bool_array buf bs =
  let n = Array.length bs in
  encode_varint buf n;
  let byte = ref 0 and fill = ref 0 in
  Array.iter
    (fun b ->
      if b then byte := !byte lor (1 lsl !fill);
      incr fill;
      if !fill = 8 then begin
        Buffer.add_char buf (Char.chr !byte);
        byte := 0;
        fill := 0
      end)
    bs;
  if !fill > 0 then Buffer.add_char buf (Char.chr !byte)

let bool_array_bytes bs =
  let n = Array.length bs in
  varint_bytes n + ((n + 7) / 8)

let decode_var tag s ~pos =
  let a, pos = decode_varint s ~pos in
  let b, pos = decode_varint s ~pos in
  let v =
    if tag = t_var_qual then Var.Qual (a, b)
    else if tag = t_var_ctx then Var.Sel_ctx (a, b)
    else Var.Qual_at (a, b)
  in
  (v, pos)

(* Decoding rebuilds through the smart constructors, so a decoded
   formula is also in simplified form; encoders only ever see
   simplified formulas, making the round trip exact. *)
let rec decode_formula s ~pos : Formula.t * int =
  if pos >= String.length s then raise (Decode_error "truncated formula");
  let tag = Char.code s.[pos] in
  let pos = pos + 1 in
  if tag = t_true then (Formula.true_, pos)
  else if tag = t_false then (Formula.false_, pos)
  else if tag = t_not then
    let g, pos = decode_formula s ~pos in
    (Formula.not_ g, pos)
  else if tag = t_and || tag = t_or then begin
    let n, pos = decode_varint s ~pos in
    check_count s ~pos ~unit:1 n "connective";
    let rec go k pos acc =
      if k = 0 then (List.rev acc, pos)
      else
        let g, pos = decode_formula s ~pos in
        go (k - 1) pos (g :: acc)
    in
    let gs, pos = go n pos [] in
    ((if tag = t_and then Formula.and_ gs else Formula.or_ gs), pos)
  end
  else if tag = t_var_qual || tag = t_var_ctx || tag = t_var_at then
    let v, pos = decode_var tag s ~pos in
    (Formula.var v, pos)
  else raise (Decode_error (Printf.sprintf "bad tag %d" tag))

let decode_formula_array s ~pos =
  let n, pos = decode_varint s ~pos in
  check_count s ~pos ~unit:1 n "formula array";
  let pos = ref pos in
  let fs =
    Array.init n (fun _ ->
        let f, p = decode_formula s ~pos:!pos in
        pos := p;
        f)
  in
  (fs, !pos)

let decode_bool_array s ~pos =
  let n, pos = decode_varint s ~pos in
  let need = (n + 7) / 8 in
  if pos + need > String.length s then raise (Decode_error "truncated bools");
  let bs =
    Array.init n (fun i ->
        let byte = Char.code s.[pos + (i / 8)] in
        byte land (1 lsl (i mod 8)) <> 0)
  in
  (bs, pos + need)

let via_buffer encode x =
  let buf = Buffer.create 64 in
  encode buf x;
  Buffer.contents buf

let formula_to_string f = via_buffer encode_formula f

let formula_of_string s =
  let f, pos = decode_formula s ~pos:0 in
  if pos <> String.length s then raise (Decode_error "trailing bytes");
  f

let formula_array_to_string fs = via_buffer encode_formula_array fs

let formula_array_of_string s =
  let fs, pos = decode_formula_array s ~pos:0 in
  if pos <> String.length s then raise (Decode_error "trailing bytes");
  fs

let bool_array_to_string bs = via_buffer encode_bool_array bs

let bool_array_of_string s =
  let bs, pos = decode_bool_array s ~pos:0 in
  if pos <> String.length s then raise (Decode_error "trailing bytes");
  bs

(* Total decoders for wire exposure: any malformed, truncated or
   trailing-garbage input is [None], never an exception.  The decoders
   above raise only [Decode_error] (bounds and counts are checked before
   any indexing or allocation), so catching it here is exhaustive. *)
let total decode s = match decode s with x -> Some x | exception Decode_error _ -> None
let formula_of_string_opt s = total formula_of_string s
let formula_array_of_string_opt s = total formula_array_of_string s
let bool_array_of_string_opt s = total bool_array_of_string s

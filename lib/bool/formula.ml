type t =
  | True
  | False
  | Var of Var.t
  | Not of t
  | And of t list
  | Or of t list

let true_ = True
let false_ = False
let bool b = if b then True else False
let var v = Var v

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | (Var _ | And _ | Or _) as f -> Not f

(* [gather] flattens nested nodes of the same connective, folds the
   [absorb] constant, drops the [unit] constant and removes structural
   duplicates.  Worst-case quadratic in the conjunct count, but residual
   functions stay small (one literal per unresolved boundary variable). *)
let gather ~unit ~absorb fs =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | f :: rest -> (
        match f with
        | f when f = absorb -> None
        | f when f = unit -> go acc rest
        | And gs when unit = True -> go acc (gs @ rest)
        | Or gs when unit = False -> go acc (gs @ rest)
        | f -> if List.mem f acc then go acc rest else go (f :: acc) rest)
  in
  go [] fs

let and_ fs =
  match gather ~unit:True ~absorb:False fs with
  | None -> False
  | Some [] -> True
  | Some [ f ] -> f
  | Some fs -> And fs

let or_ fs =
  match gather ~unit:False ~absorb:True fs with
  | None -> True
  | Some [] -> False
  | Some [ f ] -> f
  | Some fs -> Or fs

(* Binary forms with fast paths: ground subformulas never allocate. *)
let conj a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, f | f, True -> f
  | a, b -> and_ [ a; b ]

let disj a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, f | f, False -> f
  | a, b -> or_ [ a; b ]

let rec subst lookup = function
  | True -> True
  | False -> False
  | Var v as f -> ( match lookup v with Some g -> g | None -> f)
  | Not f -> not_ (subst lookup f)
  | And fs -> and_ (List.map (subst lookup) fs)
  | Or fs -> or_ (List.map (subst lookup) fs)

let rec eval valuation = function
  | True -> true
  | False -> false
  | Var v -> valuation v
  | Not f -> not (eval valuation f)
  | And fs -> List.for_all (eval valuation) fs
  | Or fs -> List.exists (eval valuation) fs

let to_bool = function True -> Some true | False -> Some false | Var _ | Not _ | And _ | Or _ -> None

let rec fold_vars f acc = function
  | True | False -> acc
  | Var v -> f acc v
  | Not g -> fold_vars f acc g
  | And gs | Or gs -> List.fold_left (fold_vars f) acc gs

let is_ground f = fold_vars (fun _ _ -> false) true f

let vars f =
  Var.Set.elements (fold_vars (fun s v -> Var.Set.add v s) Var.Set.empty f)

let rec size = function
  | True | False | Var _ -> 1
  | Not f -> 1 + size f
  | And fs | Or fs -> List.fold_left (fun n f -> n + size f) 1 fs

let rec byte_size = function
  | True | False -> 1
  | Var v -> 1 + Var.byte_size v
  | Not f -> 1 + byte_size f
  | And fs | Or fs -> List.fold_left (fun n f -> n + byte_size f) 2 fs

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "T"
  | False -> Format.pp_print_string ppf "F"
  | Var v -> Var.pp ppf v
  | Not f -> Format.fprintf ppf "!%a" pp_atom f
  | And fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ") pp)
        fs
  | Or fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ") pp)
        fs

and pp_atom ppf f =
  match f with
  | True | False | Var _ | Not _ -> pp ppf f
  | And _ | Or _ -> Format.fprintf ppf "%a" pp f

let to_string f = Format.asprintf "%a" pp f

(** Boolean variables introduced by partial evaluation.

    Partial evaluation of an XPath query over a tree fragment cannot know
    the values that depend on data stored in other fragments.  Each such
    unknown is represented by a variable; the coordinator later unifies
    them against the values computed by the sites holding the missing
    fragments (procedure [evalFT] of the paper).

    - [Qual (fid, e)] — qualifier-vector entry [e] at the root of
      fragment [fid] (paper: an entry of the [(QV, QCV, QDV)] triplet of
      a virtual node), unknown to the fragment holding the matching
      virtual node; resolved bottom-up over the fragment tree.
    - [Sel_ctx (fid, i)] — the value of selection-path prefix [i] at the
      {e parent} of the root of fragment [fid]; these initialise the
      evaluation stack of the top-down pass (paper: the [SVinit] vector);
      resolved top-down over the fragment tree.
    - [Qual_at (node, e)] — a PaX2-only placeholder: qualifier entry [e]
      at tree node [node], introduced during the pre-order half of the
      combined traversal and resolved by the post-order half within the
      same visit; never crosses fragment boundaries. *)

type t =
  | Qual of int * int
  | Sel_ctx of int * int
  | Qual_at of int * int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [fragment v] is the fragment id for boundary variables, [None] for
    PaX2-local placeholders. *)
val fragment : t -> int option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Serialized size estimate in bytes, used by the network-cost model. *)
val byte_size : t -> int

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

type t =
  | Qual of int * int
  | Sel_ctx of int * int
  | Qual_at of int * int

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (v : t) = Hashtbl.hash v

let fragment = function
  | Qual (fid, _) | Sel_ctx (fid, _) -> Some fid
  | Qual_at _ -> None

let pp ppf = function
  | Qual (fid, e) -> Format.fprintf ppf "x[F%d.%d]" fid e
  | Sel_ctx (fid, i) -> Format.fprintf ppf "z[F%d.%d]" fid i
  | Qual_at (node, e) -> Format.fprintf ppf "q[n%d.%d]" node e

let to_string v = Format.asprintf "%a" pp v

(* Wire encoding: a tag byte plus two varints; 8 bytes is a fair bound. *)
let byte_size _ = 8

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Wire = Pax_wire.Wire
module Client = Pax_net.Client
module Fragment = Pax_frag.Fragment

type outcome = { mv_fid : int; mv_from : int; mv_to : int; mv_epoch : int }

(* One live migration: fetch the fragment's wire image from the source
   site, install it at the target under a freshly reserved epoch,
   commit the placement change, then fence the source.  The order
   matters:

   - the epoch is reserved *before* the install so the fence the
     source eventually gets names an epoch no admitted run carried yet;
   - the table commits only after a successful install, so a failed
     transfer leaves placement untouched (the reserved epoch is merely
     skipped — monotonicity is all replay needs);
   - the source is fenced *after* the commit, so a run admitted under
     the new table can never race into an unfenced source and compute
     against data the coordinator no longer routes to.  Runs admitted
     earlier carry older epochs and pass the fence — drain-free.

   The retire is best-effort: the move is already committed, and a
   lost fence only means the source would serve (identical, immutable)
   data to a client with stale metadata.  The generation bump
   invalidates coordinator-side stage-cache entries keyed to the
   fragment. *)
let move ?mux ?ft ~table ~fid ~dst () =
  if fid < 0 || fid >= Ptable.n_frags table then Error "fragment out of range"
  else if dst < 0 || dst >= Ptable.n_sites table then Error "site out of range"
  else
    let src = Ptable.site_of table fid in
    if src = dst then
      Ok { mv_fid = fid; mv_from = src; mv_to = dst; mv_epoch = Ptable.epoch table }
    else
      let kind = Ptable.kind table in
      let finish epoch =
        Ptable.commit_move table ~fid ~site:dst ~epoch;
        Option.iter
          (fun ft -> if kind = Wire.Tree_frag then Fragment.bump_generation ft fid)
          ft;
        Ok { mv_fid = fid; mv_from = src; mv_to = dst; mv_epoch = epoch }
      in
      match mux with
      | None ->
          (* In-process cluster: no site server holds data, placement
             is the table itself. *)
          finish (Ptable.reserve_epoch table)
      | Some mux -> (
          match Client.frag_fetch mux ~site:src ~fid ~kind with
          | Error e -> Error (Printf.sprintf "fetch from site %d: %s" src e)
          | exception e ->
              Error
                (Printf.sprintf "fetch from site %d: %s" src
                   (Printexc.to_string e))
          | Ok image -> (
              let epoch = Ptable.reserve_epoch table in
              match Client.frag_install mux ~site:dst ~fid ~epoch ~image with
              | Error e -> Error (Printf.sprintf "install at site %d: %s" dst e)
              | exception e ->
                  Error
                    (Printf.sprintf "install at site %d: %s" dst
                       (Printexc.to_string e))
              | Ok _ ->
                  let r = finish epoch in
                  (try
                     ignore (Client.frag_retire mux ~site:src ~fid ~epoch ~kind)
                   with _ -> ());
                  r))

(* Replay a loaded snapshot against live servers: for every fragment
   the snapshot places somewhere, re-issue the install at the recorded
   site under the recorded epoch.  Installs are idempotent, so
   replaying moves that already happened is a no-op in effect; moves
   the dying coordinator committed but whose installs were lost are
   re-driven from whichever site still holds the data — the fetch
   falls back across all sites because the snapshot's source knowledge
   is gone. *)
let replay ~mux ~table () =
  let errors = ref [] in
  List.iter
    (fun (fid, site, fepoch, _) ->
      if fepoch > 0 then begin
        let kind = Ptable.kind table in
        let fetched = ref None in
        let try_site s =
          if !fetched = None then
            match Client.frag_fetch mux ~site:s ~fid ~kind with
            | Ok image -> fetched := Some image
            | Error _ | (exception _) -> ()
        in
        try_site site;
        for s = 0 to Ptable.n_sites table - 1 do
          if s <> site then try_site s
        done;
        match !fetched with
        | None ->
            errors := Printf.sprintf "fragment %d: no site has it" fid :: !errors
        | Some image -> (
            match Client.frag_install mux ~site ~fid ~epoch:fepoch ~image with
            | Ok _ -> ()
            | Error e ->
                errors := Printf.sprintf "fragment %d: %s" fid e :: !errors
            | exception e ->
                errors :=
                  Printf.sprintf "fragment %d: %s" fid (Printexc.to_string e)
                  :: !errors)
      end)
    (Ptable.to_list table);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

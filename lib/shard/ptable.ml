module Wire = Pax_wire.Wire

type entry = {
  mutable e_site : int;
  mutable e_epoch : int;  (* epoch of the move that placed it here *)
  mutable e_visits : int;
}

type t = {
  kind : Wire.frag_kind;
  n_frags : int;
  n_sites : int;
  entries : entry array;
  mutable epoch : int;
  lock : Mutex.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(kind = Wire.Tree_frag) ~n_frags ~n_sites ~assign () =
  if n_frags < 1 then invalid_arg "Ptable.create: need at least one fragment";
  if n_sites < 1 then invalid_arg "Ptable.create: need at least one site";
  let entries =
    Array.init n_frags (fun fid ->
        let site = assign fid in
        if site < 0 || site >= n_sites then
          invalid_arg "Ptable.create: assign out of range";
        { e_site = site; e_epoch = 0; e_visits = 0 })
  in
  { kind; n_frags; n_sites; entries; epoch = 0; lock = Mutex.create () }

let kind t = t.kind
let n_frags t = t.n_frags
let n_sites t = t.n_sites
let epoch t = locked t (fun () -> t.epoch)

let check_fid t fid =
  if fid < 0 || fid >= t.n_frags then invalid_arg "Ptable: fragment out of range"

let site_of t fid =
  check_fid t fid;
  locked t (fun () -> t.entries.(fid).e_site)

(* The live assign closure: a cluster built over it snapshots the
   placement current at *its* creation ([Cluster.create_gen] evaluates
   assign eagerly), so every newly admitted run sees a consistent
   placement while older in-flight runs keep their own snapshot —
   exactly the drain-free semantics the retirement fence assumes. *)
let assign t fid = site_of t fid

let entry t fid =
  check_fid t fid;
  locked t (fun () ->
      let e = t.entries.(fid) in
      (e.e_site, e.e_epoch, e.e_visits))

let visits t fid =
  check_fid t fid;
  locked t (fun () -> t.entries.(fid).e_visits)

let record_touches t touches =
  if Array.length touches <> t.n_frags then
    invalid_arg "Ptable.record_touches: wrong fragment count";
  locked t (fun () ->
      Array.iteri
        (fun fid n -> t.entries.(fid).e_visits <- t.entries.(fid).e_visits + n)
        touches)

let reset_visits t =
  locked t (fun () -> Array.iter (fun e -> e.e_visits <- 0) t.entries)

let site_loads t =
  locked t (fun () ->
      let loads = Array.make t.n_sites 0 in
      Array.iter (fun e -> loads.(e.e_site) <- loads.(e.e_site) + e.e_visits)
        t.entries;
      loads)

let reserve_epoch t =
  locked t (fun () ->
      t.epoch <- t.epoch + 1;
      t.epoch)

let commit_move t ~fid ~site ~epoch =
  check_fid t fid;
  if site < 0 || site >= t.n_sites then invalid_arg "Ptable: site out of range";
  locked t (fun () ->
      let e = t.entries.(fid) in
      e.e_site <- site;
      e.e_epoch <- epoch;
      if epoch > t.epoch then t.epoch <- epoch)

let move t ~fid ~site =
  let e = reserve_epoch t in
  commit_move t ~fid ~site ~epoch:e;
  e

let to_list t =
  locked t (fun () ->
      List.init t.n_frags (fun fid ->
          let e = t.entries.(fid) in
          (fid, e.e_site, e.e_epoch, e.e_visits)))

(* ------------------------------------------------------------------ *)
(* Snapshot                                                           *)
(* ------------------------------------------------------------------ *)

let kind_name = function Wire.Tree_frag -> "tree" | Wire.Graph_frag -> "graph"

let kind_of_name = function
  | "tree" -> Some Wire.Tree_frag
  | "graph" -> Some Wire.Graph_frag
  | _ -> None

(* Plain text, one fact per line, written atomically (tmp + rename) so
   a crashed coordinator never leaves a torn snapshot behind. *)
let save t path =
  let body =
    locked t (fun () ->
        let buf = Buffer.create 256 in
        Buffer.add_string buf (Printf.sprintf "pax-placement 1 %s\n" (kind_name t.kind));
        Buffer.add_string buf
          (Printf.sprintf "frags %d sites %d epoch %d\n" t.n_frags t.n_sites
             t.epoch);
        Array.iteri
          (fun fid e ->
            Buffer.add_string buf
              (Printf.sprintf "%d %d %d %d\n" fid e.e_site e.e_epoch e.e_visits))
          t.entries;
        Buffer.contents buf)
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc body);
  Sys.rename tmp path

let load path =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  with
  | exception Sys_error m -> fail "placement snapshot: %s" m
  | [] -> fail "placement snapshot %s: empty file" path
  | header :: rest -> (
      let kind =
        match String.split_on_char ' ' header with
        | [ "pax-placement"; "1"; k ] -> kind_of_name k
        | _ -> None
      in
      match kind with
      | None -> fail "placement snapshot %s: bad header %S" path header
      | Some kind -> (
          match rest with
          | [] -> fail "placement snapshot %s: missing dimensions" path
          | dims :: entries -> (
              match String.split_on_char ' ' dims with
              | [ "frags"; nf; "sites"; ns; "epoch"; ep ] -> (
                  match
                    ( int_of_string_opt nf,
                      int_of_string_opt ns,
                      int_of_string_opt ep )
                  with
                  | Some n_frags, Some n_sites, Some epoch
                    when n_frags >= 1 && n_sites >= 1 && epoch >= 0 -> (
                      let t =
                        {
                          kind;
                          n_frags;
                          n_sites;
                          entries =
                            Array.init n_frags (fun _ ->
                                { e_site = 0; e_epoch = 0; e_visits = 0 });
                          epoch;
                          lock = Mutex.create ();
                        }
                      in
                      let seen = Array.make n_frags false in
                      let rec fill = function
                        | [] ->
                            if Array.for_all Fun.id seen then Ok t
                            else fail "placement snapshot %s: missing fragments" path
                        | "" :: rest -> fill rest
                        | line :: rest -> (
                            match
                              List.filter_map int_of_string_opt
                                (String.split_on_char ' ' line)
                            with
                            | [ fid; site; fepoch; fvisits ]
                              when fid >= 0 && fid < n_frags && site >= 0
                                   && site < n_sites && fepoch >= 0
                                   && fepoch <= epoch && fvisits >= 0
                                   && not seen.(fid) ->
                                seen.(fid) <- true;
                                let e = t.entries.(fid) in
                                e.e_site <- site;
                                e.e_epoch <- fepoch;
                                e.e_visits <- fvisits;
                                fill rest
                            | _ ->
                                fail "placement snapshot %s: bad entry %S" path
                                  line)
                      in
                      fill entries)
                  | _ -> fail "placement snapshot %s: bad dimensions %S" path dims)
              | _ -> fail "placement snapshot %s: bad dimensions %S" path dims)))

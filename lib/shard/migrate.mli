(** The live migration driver (docs/SHARDING.md): moves one fragment
    between site servers over the
    [Frag_fetch] → [Frag_install] → [Frag_retire] frames while queries
    stay in flight. *)

type outcome = { mv_fid : int; mv_from : int; mv_to : int; mv_epoch : int }

(** [move ~table ~fid ~dst ()] — migrate [fid] to [dst].

    Over sockets ([mux] given): fetch the wire image from the current
    holder, reserve a fresh epoch, install at [dst], commit the table,
    then fence the source (best-effort).  A failed fetch/install
    leaves placement untouched; the reserved epoch is skipped, which
    preserves monotonicity.  Without [mux] the move is pure metadata
    (in-process clusters read the table directly).

    [ft] given and the table governs tree fragments: the fragment's
    generation is bumped so stage-cache entries keyed to it invalidate
    (the coordinator's cache stamps entries with the generation).

    Moving a fragment onto the site already holding it is a no-op
    [Ok]. *)
val move :
  ?mux:Pax_net.Client.t ->
  ?ft:Pax_frag.Fragment.t ->
  table:Ptable.t ->
  fid:int ->
  dst:int ->
  unit ->
  (outcome, string) result

(** [replay ~mux ~table ()] — after a coordinator restart with a
    loaded snapshot: re-issue the install for every fragment the
    snapshot records as moved (epoch > 0), fetching the image from the
    recorded site or, failing that, any site still holding it.
    Installs are idempotent, so replaying completed moves is
    harmless; this re-drives moves whose installs the dying
    coordinator lost. *)
val replay :
  mux:Pax_net.Client.t -> table:Ptable.t -> unit -> (unit, string) result

(** The coordinator-side placement table: epoch-versioned fid → site,
    the explicit, persistent form of what used to be an implicit
    load-time convention (docs/SHARDING.md).

    One table per fragment-id space — tree fragments and graph
    fragments have independent placements, so a serving layer running
    both keeps two tables.  Every mutation happens under an internal
    lock; concurrent admission threads may read while an admin thread
    moves.

    {b Epochs.}  The table carries one global epoch, 0 at creation,
    bumped by every move.  A run admitted at epoch [e] carries [e] on
    its visit requests ([Client.set_epoch]); a site that retired a
    fragment at epoch [r] refuses visits stamped [>= r] (stale routing
    — the sender's table should already place the fragment elsewhere)
    and keeps serving older stamps from retained data.  Snapshots
    preserve epochs, so a restarted coordinator replaying its table
    resumes {e at least} where it left off — epoch monotonicity across
    the snapshot boundary is what makes replay against live,
    idempotent servers safe. *)

type t

(** [create ~n_frags ~n_sites ~assign ()] — a fresh table at epoch 0
    with the given initial placement.  [kind] (default [Tree_frag])
    names the fragment space the table governs.
    @raise Invalid_argument on empty dimensions or an out-of-range
    assignment. *)
val create :
  ?kind:Pax_wire.Wire.frag_kind ->
  n_frags:int ->
  n_sites:int ->
  assign:(int -> int) ->
  unit ->
  t

val kind : t -> Pax_wire.Wire.frag_kind
val n_frags : t -> int
val n_sites : t -> int

(** Current global epoch (0 until the first move). *)
val epoch : t -> int

(** Site currently holding a fragment.
    @raise Invalid_argument on an out-of-range fid. *)
val site_of : t -> int -> int

(** The {e live} assignment closure, [assign t fid = site_of t fid].
    A cluster built over it snapshots the placement current at its
    creation (clusters evaluate [assign] eagerly), so each newly
    admitted run sees one consistent placement while older in-flight
    runs keep theirs — the drain-free semantics the retirement fence
    assumes. *)
val assign : t -> int -> int

(** [(site, epoch-of-last-move, visits)] for one fragment. *)
val entry : t -> int -> int * int * int

val visits : t -> int -> int

(** Add per-fragment touch counts (from [Cluster.frag_touches]) into
    the table's hotness counters.
    @raise Invalid_argument if the array length is not [n_frags]. *)
val record_touches : t -> int array -> unit

val reset_visits : t -> unit

(** Per-site sums of fragment visit counters — the rebalancer's load
    signal. *)
val site_loads : t -> int array

(** {1 Moves}

    A live migration is two-phase: [reserve_epoch] first, then install
    the image at the target under that epoch, then [commit_move], then
    fence the source.  If the install fails, the reserved epoch is
    simply skipped — epochs stay monotonic, no placement changed.
    [move] combines both for in-process clusters (no servers holding
    data).  Admin operations are serialized by the caller (CLI admin
    lock); the table's own lock only protects readers. *)

(** Bump and return the global epoch. *)
val reserve_epoch : t -> int

(** Point [fid] at [site] as of [epoch] (also raises the global epoch
    to [epoch] if it is ahead, as when replaying). *)
val commit_move : t -> fid:int -> site:int -> epoch:int -> unit

(** [reserve_epoch] + [commit_move]; returns the new epoch. *)
val move : t -> fid:int -> site:int -> int

(** [(fid, site, epoch, visits)] for every fragment, fid-ascending —
    what [pax admin placement] dumps. *)
val to_list : t -> (int * int * int * int) list

(** {1 Snapshot}

    Plain-text, atomic (tmp + rename).  [load] is total: any
    malformed, truncated or inconsistent file yields [Error], never an
    exception or a half-filled table. *)

val save : t -> string -> unit
val load : string -> (t, string) result

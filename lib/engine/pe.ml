module Cluster = Pax_dist.Cluster

type outcome = {
  engine : string;
  query : string;
  answer_keys : int list;
  answers_text : string;
  report : Cluster.report;
  trace : Pax_dist.Trace.t option;
  audit : Pax_obs.Audit.report;
}

module type S = sig
  type query

  val name : string
  val parse : string -> (query, string) result

  val make_cluster :
    ?domains:int -> ?transport:Pax_dist.Transport.t -> unit -> Cluster.t

  val run : Cluster.t -> query -> outcome
end

type packed = (module S)

let name (module E : S) = E.name

let validate (module E : S) text =
  match E.parse text with Ok _ -> Ok () | Error e -> Error e

let run_text (module E : S) ?domains ?transport ?(tune = ignore) text =
  match E.parse text with
  | Error msg ->
      invalid_arg (Printf.sprintf "Pe.run_text: %s: %s" E.name msg)
  | Ok q ->
      let cl = E.make_cluster ?domains ?transport () in
      tune cl;
      E.run cl q

(** The engine-agnostic partial-evaluation contract (docs/ENGINES.md).

    A {e PE engine} is anything that answers queries over data
    fragmented across the sites of a {!Pax_dist.Cluster}: it parses
    query text, builds a cluster wired to its placement, evaluates by
    local partial evaluation plus coordinator unification, and states
    its own performance guarantees as an audit report.  The XPath
    engines (PaX2/PaX3/ParBoX, [lib/core/Engines]) and the graph
    reachability engine ([lib/graph/Reach]) are the two instantiations;
    the serving layer, CLI coordinator and benches depend only on this
    interface.

    The placement — which data, how many sites, which fragment lives
    where — is baked into an engine {e instance} at construction time
    (the constructors live with the engines, e.g.
    [Engines.pax3 ftree ~n_sites ~assign]).  Callers above the seam
    never see fragment trees or graph partitions. *)

module Cluster = Pax_dist.Cluster

(** What one evaluation produced, in engine-neutral terms.

    [answer_keys] identifies the answer set for bit-identity checks
    across transports and schedulers: sorted node ids for XPath
    engines, [[1]]/[[]] for Boolean engines.  [answers_text] is the
    human-facing rendering the CLI and serving layer print. *)
type outcome = {
  engine : string;
  query : string;  (** canonical query text, as the engine echoes it *)
  answer_keys : int list;
  answers_text : string;
  report : Cluster.report;
  trace : Pax_dist.Trace.t option;
  audit : Pax_obs.Audit.report;
}

module type S = sig
  type query

  val name : string
  (** stable identifier, e.g. ["pax3-xa"], ["reach"] *)

  val parse : string -> (query, string) result
  (** Total: malformed text yields [Error msg], never an exception. *)

  val make_cluster :
    ?domains:int -> ?transport:Pax_dist.Transport.t -> unit -> Cluster.t
  (** A fresh cluster over this instance's placement.  Each call is
      independent; the serving layer makes one per backend (in-process)
      or one per run (sockets). *)

  val run : Cluster.t -> query -> outcome
  (** Evaluate on a cluster obtained from {!make_cluster} (resets it
      first).  May raise {!Cluster.Site_unreachable} or
      {!Pax_dist.Transport.Remote_failure} when the transport gives
      out; never raises on valid input over a healthy cluster. *)
end

type packed = (module S)

val name : packed -> string

(** [validate e text] — parse-check without running (the serving layer
    rejects malformed queries before scheduling). *)
val validate : packed -> string -> (unit, string) result

(** [run_text e ?domains ?transport ?tune text] — the one-call path:
    parse, build a cluster, apply [tune] (stage caches, fault plans,
    service delay — anything {!Cluster} exposes), run.

    @raise Invalid_argument if [text] does not parse — callers that
    take untrusted input must {!validate} first. *)
val run_text :
  packed ->
  ?domains:int ->
  ?transport:Pax_dist.Transport.t ->
  ?tune:(Cluster.t -> unit) ->
  string ->
  outcome

(** Live guarantee auditor for the paper's three bounds (PAPER.md §6):
    per-site visit limits (≤2 PaX2 / ≤3 PaX3), communication
    [O(|Q|·|FT| + |ans|)], and total computation [O(|Q|·|T|)].

    The big-O constants default to empirically calibrated values with
    ≥4× headroom over the worst ratio observed on the example suite
    and bench workloads (see docs/OBSERVABILITY.md), so failures mean
    asymptotic regressions, not noise. *)

type input = {
  engine : string;
  visit_limit : int option;
      (** the engine's promised per-site visit cap; [None] if the
          engine makes no such promise (no visits bound emitted) *)
  max_visits : int;  (** max logical visits on any one site (Trace) *)
  q_entries : int;  (** |Q|: compiled selection + qualifier entries *)
  ft_size : int;  (** |FT|: number of fragments *)
  t_size : int;  (** |T|: document node count *)
  control_bytes : int;  (** logical non-answer traffic, Measure bytes *)
  answer_bytes : int;  (** logical answer traffic, Measure bytes *)
  total_ops : int;  (** coordinator + site operations *)
}

type bound = {
  b_name : string;  (** ["visits"], ["comm"] or ["comp"] *)
  b_formula : string;  (** instantiated human-readable formula *)
  b_actual : float;
  b_limit : float;
  b_pass : bool;
  b_margin : float;  (** [(limit - actual) / limit]; negative = violated *)
}

type report = { bounds : bound list; pass : bool }

val default_c_comm : float
val default_c_comp : float

val evaluate : ?c_comm:float -> ?c_comp:float -> input -> report

(** {1 Engine-specific bound sets}

    {!evaluate} hard-codes the XPath paper's three bounds.  An engine
    whose guarantees are stated in different terms (e.g. the
    reachability engine of [lib/graph/], whose communication bound is
    [O(|Vf|²)] over boundary nodes) builds its bounds directly and
    shares only the pass/margin/report machinery. *)

(** [bound ~name ~formula ~actual ~limit] — one checked bound;
    [b_pass] and [b_margin] are derived. *)
val bound :
  name:string -> formula:string -> actual:float -> limit:float -> bound

(** Assemble a report; [pass] is the conjunction. *)
val of_bounds : bound list -> report

(** {1 Cost ledger}

    Predicted-vs-actual accounting for every evaluated run
    (docs/OBSERVABILITY.md): each bound's actual cost lands in
    [pax_cost_actual{engine,bound}], its paper-predicted limit in the
    gauge [pax_cost_predicted_limit{engine,bound}], and their ratio in
    the calibration histogram [pax_cost_predicted_ratio{engine,bound}]
    (a ratio [>= 1] means the bound was violated, also counted into
    [pax_cost_violations_total]).  The serving coordinator records
    every admitted run here; the CLI records its one run. *)

val ratio_buckets : float array
val ledger : Sink.t -> engine:string -> report -> unit

val pp_bound : Format.formatter -> bound -> unit
val pp : Format.formatter -> report -> unit
val to_json : report -> Json.t

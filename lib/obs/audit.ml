(* Live guarantee auditor.

   The paper (§6) proves three bounds for PaX2/PaX3 over a fragmented
   tree T with fragment tree FT and query Q:

     visits:  every site is visited at most 2 (PaX2) / 3 (PaX3) times;
     comm:    total communication is O(|Q|·|FT| + |ans|);
     comp:    total computation is O(|Q|·|T|).

   This module turns a run's accounting into concrete checks.  The
   big-O constants are calibrated empirically (see
   docs/OBSERVABILITY.md "Auditor constants"): we measure the worst
   observed ratio across the example suite and the bench workloads and
   set each constant with >= 4x headroom, so the auditor fails only on
   genuine asymptotic regressions (e.g. shipping a fragment's subtree
   in a control message, or re-evaluating a stage per visit), not on
   noise.  Callers can tighten or loosen via [?c_comm]/[?c_comp].

   Units: |Q| is the compiled query's entry count (selection +
   qualifier vectors) — the quantity both engines' per-node work is
   linear in; |FT| is the number of fragments; |T| is the document
   node count; byte bounds use the accounted (Measure) sizes that the
   wire codec reproduces exactly. *)

type input = {
  engine : string; (* "pax2" | "pax3" | ... *)
  visit_limit : int option; (* None: engine makes no visit promise *)
  max_visits : int; (* max logical visits on any one site *)
  q_entries : int; (* |Q|: n_sel + n_qual *)
  ft_size : int; (* |FT|: number of fragments *)
  t_size : int; (* |T|: document node count *)
  control_bytes : int; (* logical non-answer traffic (Measure bytes) *)
  answer_bytes : int; (* logical answer traffic (Measure bytes) *)
  total_ops : int; (* coordinator + site ops *)
}

type bound = {
  b_name : string; (* "visits" | "comm" | "comp" *)
  b_formula : string; (* human-readable instantiated formula *)
  b_actual : float;
  b_limit : float;
  b_pass : bool;
  b_margin : float; (* (limit - actual) / limit; negative = violated *)
}

type report = { bounds : bound list; pass : bool }

let default_c_comm = 64.
let default_c_comp = 32.

let mk_bound name formula ~actual ~limit =
  {
    b_name = name;
    b_formula = formula;
    b_actual = actual;
    b_limit = limit;
    b_pass = actual <= limit;
    b_margin = (if limit > 0. then (limit -. actual) /. limit else neg_infinity);
  }

(* Engine-specific bound sets: a non-XPath engine (e.g. distributed
   graph reachability) states its bounds in its own paper's terms and
   only shares the report/rendering machinery. *)
let bound ~name ~formula ~actual ~limit = mk_bound name formula ~actual ~limit
let of_bounds bounds = { bounds; pass = List.for_all (fun b -> b.b_pass) bounds }

let evaluate ?(c_comm = default_c_comm) ?(c_comp = default_c_comp) (i : input) :
    report =
  let fi = float_of_int in
  let visits =
    match i.visit_limit with
    | None -> []
    | Some lim ->
        [
          mk_bound "visits"
            (Printf.sprintf "max logical visits per site <= %d (%s)" lim
               i.engine)
            ~actual:(fi i.max_visits) ~limit:(fi lim);
        ]
  in
  let comm_limit = (c_comm *. fi i.q_entries *. fi i.ft_size) +. fi i.answer_bytes in
  let comm =
    mk_bound "comm"
      (Printf.sprintf
         "control+answer bytes <= %g*|Q|*|FT| + |ans| = %g*%d*%d + %d" c_comm
         c_comm i.q_entries i.ft_size i.answer_bytes)
      ~actual:(fi (i.control_bytes + i.answer_bytes))
      ~limit:comm_limit
  in
  let comp =
    mk_bound "comp"
      (Printf.sprintf "total ops <= %g*|Q|*|T| = %g*%d*%d" c_comp c_comp
         i.q_entries i.t_size)
      ~actual:(fi i.total_ops)
      ~limit:(c_comp *. fi i.q_entries *. fi i.t_size)
  in
  let bounds = visits @ [ comm; comp ] in
  { bounds; pass = List.for_all (fun b -> b.b_pass) bounds }

(* ---------------- cost ledger ------------------------------------- *)

(* Ratio of actual cost to predicted bound: the calibration signal.
   Buckets resolve the interesting region — how far under its paper
   bound a run lands (most land a few percent in); >= 1 means the
   bound was violated (b_pass false), which the counter also tracks. *)
let ratio_buckets =
  [| 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 0.75; 1.; 2. |]

(* Raw actuals (visits, bytes, ops) span many decades across query and
   document sizes. *)
let actual_buckets = [| 1.; 10.; 100.; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8 |]

let ledger sink ~engine r =
  List.iter
    (fun b ->
      let labels = [ ("engine", engine); ("bound", b.b_name) ] in
      Sink.observe sink ~labels ~buckets:actual_buckets "pax_cost_actual"
        b.b_actual;
      Sink.set sink ~labels "pax_cost_predicted_limit" b.b_limit;
      if b.b_limit > 0. then
        Sink.observe sink ~labels ~buckets:ratio_buckets
          "pax_cost_predicted_ratio" (b.b_actual /. b.b_limit);
      if not b.b_pass then
        Sink.count sink ~labels "pax_cost_violations_total")
    r.bounds

(* ---------------- rendering --------------------------------------- *)

let pp_bound ppf b =
  Format.fprintf ppf "%-6s %s  actual=%.0f limit=%.0f margin=%.1f%%  %s"
    b.b_name
    (if b.b_pass then "PASS" else "FAIL")
    b.b_actual b.b_limit (100. *. b.b_margin) b.b_formula

let pp ppf r =
  Format.fprintf ppf "guarantee audit: %s@\n"
    (if r.pass then "PASS" else "FAIL");
  List.iter (fun b -> Format.fprintf ppf "  %a@\n" pp_bound b) r.bounds

let bound_to_json b =
  Json.Obj
    [
      ("name", Json.Str b.b_name);
      ("formula", Json.Str b.b_formula);
      ("actual", Json.Num b.b_actual);
      ("limit", Json.Num b.b_limit);
      ("pass", Json.Bool b.b_pass);
      ("margin", Json.Num b.b_margin);
    ]

let to_json r =
  Json.Obj
    [
      ("pass", Json.Bool r.pass);
      ("bounds", Json.List (List.map bound_to_json r.bounds));
    ]

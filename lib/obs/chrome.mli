(** Chrome trace-event JSON export, loadable in Perfetto
    (https://ui.perfetto.dev) and chrome://tracing.

    Emits the object form [{"traceEvents": [...]}] containing one
    ["ph":"M"] thread-name metadata event per span track followed by
    one complete ["ph":"X"] event per span, with [ts]/[dur] in
    microseconds relative to the earliest span. *)

val to_json : Span.span list -> Json.t
val to_string : Span.span list -> string
val write_file : string -> Span.span list -> unit

(** {1 Multi-process merge}

    One Perfetto file for a distributed run: the coordinator process
    plus every harvested site server, each on its own pid with
    process_name metadata, timestamps aligned onto the coordinator's
    clock, and flow arrows drawn for every span whose [sp_parent]
    resolves to a span in any process (see docs/OBSERVABILITY.md for
    the offset estimate). *)

type process = {
  pr_name : string;  (** e.g. ["coordinator"], ["site 1"] *)
  pr_offset : float;
      (** seconds this process's clock reads ahead of the reference
          (coordinator) clock; subtracted from its timestamps *)
  pr_spans : Span.span list;
}

val to_json_processes : process list -> Json.t
val to_string_processes : process list -> string
val write_file_processes : string -> process list -> unit

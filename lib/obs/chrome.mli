(** Chrome trace-event JSON export, loadable in Perfetto
    (https://ui.perfetto.dev) and chrome://tracing.

    Emits the object form [{"traceEvents": [...]}] containing one
    ["ph":"M"] thread-name metadata event per span track followed by
    one complete ["ph":"X"] event per span, with [ts]/[dur] in
    microseconds relative to the earliest span. *)

val to_json : Span.span list -> Json.t
val to_string : Span.span list -> string
val write_file : string -> Span.span list -> unit

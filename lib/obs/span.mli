(** Timed spans and their collector.

    Spans are pure telemetry: nothing in the engines or the cluster
    branches on them, so they can be collected under a simple lock
    from any domain without perturbing the deterministic observables
    (which the differential test in [test_obs.ml] pins).

    Every span carries an id unique across processes (pid-tagged
    sequence number), and an optional parent id: site servers record
    their request-handling spans parent-linked to the coordinator's
    rpc span whose id arrived in the wire frame, so the merged
    Perfetto export ({!Chrome.to_json_processes}) can draw flow
    arrows across the process boundary. *)

type span = {
  sp_name : string;
  sp_cat : string;  (** e.g. ["round"], ["visit"], ["wire"], ["stage"] *)
  sp_track : string;
      (** logical timeline, rendered as a named thread in the Chrome
          trace: ["coordinator"], ["site 3"], ["pool worker 2"], … *)
  sp_begin : float;  (** {!Clock.now} seconds *)
  sp_dur : float;  (** seconds, clamped >= 0 *)
  sp_args : (string * string) list;
  sp_seq : int;  (** process-global record order *)
  sp_id : int;  (** cross-process-unique id, varint-encodable (< 2^55) *)
  sp_parent : int option;  (** id of the parent span, possibly remote *)
}

type t

val create : ?capacity:int -> unit -> t
(** A bounded collector: once [capacity] spans (default 65536) are
    retained, each new span evicts the oldest and the eviction is
    counted (see {!drops}) — a long-running coordinator cannot grow
    the collector without limit. *)

val alloc : unit -> int
(** Pre-allocate a span id, e.g. to stamp into a wire frame before the
    span itself is recorded.  Ids are unique across processes. *)

val add :
  t ->
  ?cat:string ->
  ?track:string ->
  ?args:(string * string) list ->
  ?id:int ->
  ?parent:int ->
  string ->
  t0:float ->
  t1:float ->
  bool
(** Like {!record}, returning [true] iff a retained span was evicted
    to make room (the caller can count drops into a metric). *)

val record :
  t ->
  ?cat:string ->
  ?track:string ->
  ?args:(string * string) list ->
  ?id:int ->
  ?parent:int ->
  string ->
  t0:float ->
  t1:float ->
  unit
(** Record a closed span [t0, t1] (callers take both readings from
    {!Clock.now}; reusing readings they already made for semantic
    accounting keeps the enabled/disabled paths identical).  [track]
    defaults to ["coordinator"]; [id] defaults to a fresh {!alloc}. *)

val spans : t -> span list
(** Snapshot of the retained spans, sorted by (begin time, seq) —
    stable export order. *)

val drain : t -> span list
(** Atomically snapshot {e and} empty the retained spans (the drop
    count is kept) — what a site server does to answer a span
    harvest ([Spans_fetch]) without losing concurrently recorded
    spans between a snapshot and a clear. *)

val length : t -> int
(** Number of retained spans (evicted spans excluded). *)

val drops : t -> int
(** Number of spans evicted since creation (or the last {!clear}). *)

val clear : t -> unit

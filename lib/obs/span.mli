(** Timed spans and their collector.

    Spans are pure telemetry: nothing in the engines or the cluster
    branches on them, so they can be collected under a simple lock
    from any domain without perturbing the deterministic observables
    (which the differential test in [test_obs.ml] pins). *)

type span = {
  sp_name : string;
  sp_cat : string;  (** e.g. ["round"], ["visit"], ["wire"], ["stage"] *)
  sp_track : string;
      (** logical timeline, rendered as a named thread in the Chrome
          trace: ["coordinator"], ["site 3"], ["pool worker 2"], … *)
  sp_begin : float;  (** {!Clock.now} seconds *)
  sp_dur : float;  (** seconds, clamped >= 0 *)
  sp_args : (string * string) list;
  sp_seq : int;  (** process-global record order *)
}

type t

val create : unit -> t

val record :
  t ->
  ?cat:string ->
  ?track:string ->
  ?args:(string * string) list ->
  string ->
  t0:float ->
  t1:float ->
  unit
(** Record a closed span [t0, t1] (callers take both readings from
    {!Clock.now}; reusing readings they already made for semantic
    accounting keeps the enabled/disabled paths identical).  [track]
    defaults to ["coordinator"]. *)

val spans : t -> span list
(** Snapshot, sorted by (begin time, seq) — stable export order. *)

val length : t -> int
val clear : t -> unit

(** The instrumentation seam threaded through the stack.

    A sink bundles a span collector and a metrics registry behind an
    [enabled] flag.  With {!noop} every helper below is a single
    branch — no clock read, no allocation, no lock — and instrumented
    code must keep its semantic accounting on the same path either
    way; the differential test in [test_obs.ml] asserts answers,
    visits, op counts and accounted traffic are identical under
    {!noop} and {!create}. *)

type t = private {
  enabled : bool;
  spans : Span.t;
  metrics : Metrics.t;
}

val noop : t
(** The shared disabled sink (the default everywhere). *)

val create : ?capacity:int -> unit -> t
(** A fresh enabled sink with empty collectors.  [capacity] bounds the
    span ring (see {!Span.create}); evictions are counted into the
    [pax_obs_spans_dropped_total] metric by every recording helper. *)

val dropped_total : string
(** The metric name under which span-ring evictions are counted. *)

val alloc : t -> int option
(** Pre-allocate a span id to propagate (e.g. stamp into a wire frame
    as trace context) before the span is recorded.  [None] on the noop
    sink — so disabled runs put no trace context on the wire and their
    frames stay byte-identical to pre-tracing builds. *)

val span :
  t ->
  ?cat:string ->
  ?track:string ->
  ?args:(unit -> (string * string) list) ->
  ?id:int ->
  ?parent:int ->
  string ->
  (unit -> 'a) ->
  'a
(** [span t name f] times [f ()] and records it; on the noop sink it
    is exactly [f ()].  [args] is a thunk so attribute building costs
    nothing when disabled.  The span is recorded even if [f] raises. *)

val record :
  t ->
  ?cat:string ->
  ?track:string ->
  ?args:(string * string) list ->
  ?id:int ->
  ?parent:int ->
  string ->
  t0:float ->
  t1:float ->
  unit
(** Record a span from clock readings the caller already took for its
    own (semantic) timing — zero extra clock reads when enabled. *)

val count : t -> ?labels:Metrics.labels -> ?by:float -> string -> unit
val observe : t -> ?labels:Metrics.labels -> ?buckets:float array -> string -> float -> unit
val set : t -> ?labels:Metrics.labels -> string -> float -> unit

val clear : t -> unit
(** Empty both collectors (no-op on {!noop}). *)

(** The instrumentation seam threaded through the stack.

    A sink bundles a span collector and a metrics registry behind an
    [enabled] flag.  With {!noop} every helper below is a single
    branch — no clock read, no allocation, no lock — and instrumented
    code must keep its semantic accounting on the same path either
    way; the differential test in [test_obs.ml] asserts answers,
    visits, op counts and accounted traffic are identical under
    {!noop} and {!create}. *)

type t = private {
  enabled : bool;
  spans : Span.t;
  metrics : Metrics.t;
}

val noop : t
(** The shared disabled sink (the default everywhere). *)

val create : unit -> t
(** A fresh enabled sink with empty collectors. *)

val span :
  t ->
  ?cat:string ->
  ?track:string ->
  ?args:(unit -> (string * string) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [span t name f] times [f ()] and records it; on the noop sink it
    is exactly [f ()].  [args] is a thunk so attribute building costs
    nothing when disabled.  The span is recorded even if [f] raises. *)

val record :
  t ->
  ?cat:string ->
  ?track:string ->
  ?args:(string * string) list ->
  string ->
  t0:float ->
  t1:float ->
  unit
(** Record a span from clock readings the caller already took for its
    own (semantic) timing — zero extra clock reads when enabled. *)

val count : t -> ?labels:Metrics.labels -> ?by:float -> string -> unit
val observe : t -> ?labels:Metrics.labels -> ?buckets:float array -> string -> float -> unit
val set : t -> ?labels:Metrics.labels -> string -> float -> unit

val clear : t -> unit
(** Empty both collectors (no-op on {!noop}). *)

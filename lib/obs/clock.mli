(** Monotonic time source.

    [now ()] returns seconds from an arbitrary origin (the Unix epoch
    under the default wall source), guaranteed non-decreasing within
    the process even if the wall clock is stepped backwards.  All
    duration and deadline math in the repo goes through this module so
    that a single injection point ([set_source] / [with_source]) makes
    timing deterministic in tests. *)

type source = unit -> float

val wall : source
(** The default source: [Unix.gettimeofday]. *)

val now : unit -> float
(** Current time from the installed source, monotonized: never less
    than any value previously returned by [now] in this process. *)

val monotonize : float -> float
(** Clamp a raw reading against the process-global high-water mark and
    advance the mark.  [now] is [monotonize (source ())]. *)

val set_source : source -> unit
(** Install a replacement time source (process-global) and start a
    fresh monotonic epoch, so a fake clock running behind the wall
    clock is not clamped up to earlier wall readings.  The
    non-decreasing guarantee therefore holds per installed source, not
    across installs. *)

val use_wall : unit -> unit
(** Restore the default wall source (also a fresh epoch). *)

val with_source : source -> (unit -> 'a) -> 'a
(** Run [f] with a temporary source; restores the previous source even
    on exceptions. *)

(** Hand-cranked clock for deterministic tests. *)
module Fake : sig
  type t

  val create : ?at:float -> unit -> t
  val source : t -> source
  val advance : t -> float -> unit
  val set : t -> float -> unit
end

(** Minimal JSON used by the telemetry exporters and their tests.

    Not a general-purpose JSON library: emit is stable-ordered, parse
    is strict (no trailing bytes) and ASCII-oriented — exactly enough
    to write Chrome trace-event files and schema-check them back. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
(** [int n] is [Num (float_of_int n)]. *)

val to_string : t -> string
(** Compact single-line rendering with keys in the order given. *)

exception Parse_error of string

val parse_exn : string -> t
(** Parse a complete JSON document; raises {!Parse_error}. *)

val parse : string -> (t, string) result

(** {2 Accessors} *)

val member : string -> t -> t option
val as_num : t -> float option
val as_str : t -> string option
val as_bool : t -> bool option
val as_list : t -> t list option
val as_obj : t -> (string * t) list option

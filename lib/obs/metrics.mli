(** Thread-safe counter / gauge / histogram registry.

    Series are keyed by name + labels (label order is irrelevant).
    Exports ({!pairs}, {!dump}) are sorted, so two registries holding
    the same series compare equal regardless of update order — used by
    the client/server stats-agreement test. *)

type t
type labels = (string * string) list

val create : unit -> t

val incr : t -> ?labels:labels -> ?by:float -> string -> unit
(** Bump a counter (creates it at 0 on first touch).  [by] must be
    non-negative.  Raises [Invalid_argument] if [name]+[labels] was
    already registered as a different kind. *)

val set : t -> ?labels:labels -> string -> float -> unit
(** Set a gauge. *)

val observe : t -> ?labels:labels -> ?buckets:float array -> string -> float -> unit
(** Record one histogram observation.  [buckets] are strictly
    increasing upper bounds, fixed at first touch (later values are
    ignored); defaults to {!latency_buckets}. *)

val latency_buckets : float array
(** Seconds-scale defaults: 10µs … 10s, roughly half-decade steps. *)

val value : t -> ?labels:labels -> string -> float option
(** Current value of a counter or gauge; a histogram's sum. *)

val pairs : t -> (string * float) list
(** Flatten to sorted [(series, value)] pairs.  Histograms expand to
    cumulative [_bucket{le="..."}] series plus [_sum] and [_count].
    This is the payload of the [Stats] wire reply. *)

val of_pairs : (string * float) list -> (string * float) list
(** Sort a received pair list into the {!pairs} order so both sides of
    the wire compare canonically. *)

val dump : t -> string
(** Prometheus-style text exposition: one ["series value"] line per
    {!pairs} entry, sorted. *)

val clear : t -> unit

(* The instrumentation seam.

   Every instrumented call site in the cluster, engines, pool and
   socket code takes a [Sink.t] and is written so that with [noop] the
   site costs one branch on [enabled] — no clock reads, no allocation,
   no lock — and the semantic accounting (answers, visit counts, op
   counts, traffic) takes the *same* code path either way.  The
   differential test in test_obs.ml holds that contract. *)

type t = {
  enabled : bool;
  spans : Span.t;
  metrics : Metrics.t;
}

let dropped_total = "pax_obs_spans_dropped_total"

(* One shared disabled sink: collectors exist (so the record type has
   no options to match on) but are never touched because every
   instrumentation helper checks [enabled] first. *)
let noop =
  { enabled = false; spans = Span.create (); metrics = Metrics.create () }

let create ?capacity () =
  { enabled = true; spans = Span.create ?capacity (); metrics = Metrics.create () }

let alloc t = if t.enabled then Some (Span.alloc ()) else None

let add t ?cat ?track ?args ?id ?parent name ~t0 ~t1 =
  if Span.add t.spans ?cat ?track ?args ?id ?parent name ~t0 ~t1 then
    Metrics.incr t.metrics dropped_total

let span t ?cat ?track ?(args = fun () -> []) ?id ?parent name f =
  if not t.enabled then f ()
  else begin
    let t0 = Clock.now () in
    let finish () =
      add t ?cat ?track ~args:(args ()) ?id ?parent name ~t0 ~t1:(Clock.now ())
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* For call sites that already hold t0/t1 readings for semantic timing:
   reuse them so enabled runs take zero extra clock reads on that path. *)
let record t ?cat ?track ?(args = []) ?id ?parent name ~t0 ~t1 =
  if t.enabled then add t ?cat ?track ~args ?id ?parent name ~t0 ~t1

let count t ?labels ?by name =
  if t.enabled then Metrics.incr t.metrics ?labels ?by name

let observe t ?labels ?buckets name v =
  if t.enabled then Metrics.observe t.metrics ?labels ?buckets name v

let set t ?labels name v = if t.enabled then Metrics.set t.metrics ?labels name v

let clear t =
  if t.enabled then begin
    Span.clear t.spans;
    Metrics.clear t.metrics
  end

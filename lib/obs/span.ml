(* Timed spans.

   A span is a closed interval on a named track ("coordinator",
   "site 3", "pool worker 1", ...) with a category, free-form string
   attributes, a process-global sequence number, and an id usable as a
   parent link from other spans — possibly recorded in *another*
   process (site servers parent-link their request spans to the
   coordinator's rpc span whose id travels in the wire frame).

   Collection is a mutex-protected bounded ring: spans may be recorded
   concurrently from pool domains, a long-running process cannot grow
   the collector without limit (the oldest span is evicted once
   [capacity] is reached, and evictions are counted), and [spans]
   returns the retained spans sorted by (begin time, seq) so export
   order is stable.  Note this differs from the PR-2 visit-log pattern
   (DLS buffers merged at barriers): spans are non-semantic — nothing
   downstream branches on them — so the differential test pins the
   *observables* (answers, visits, ops, traffic) instead of span
   order, and a simple lock keeps the collector reusable from code
   that has no barrier to merge at (sockets, CLI). *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_track : string; (* rendered as a thread in the Chrome trace *)
  sp_begin : float; (* Clock.now seconds *)
  sp_dur : float; (* seconds, >= 0 *)
  sp_args : (string * string) list;
  sp_seq : int;
  sp_id : int;
  sp_parent : int option;
}

type t = {
  mu : Mutex.t;
  buf : span option array; (* circular; [head] is the next write slot *)
  cap : int;
  mutable head : int;
  mutable len : int;
  mutable dropped : int;
}

let seq = Atomic.make 0

(* Span ids must stay unique across the coordinator and every forked
   site server (parent links cross the process boundary), without any
   coordination.  Tag the process-local sequence number with the pid in
   the low bits: Linux pids fit 22 bits (kernel.pid_max <= 4194304),
   and 55 bits total keeps the id a single-allocation OCaml int that
   round-trips through the wire varint encoder. *)
let pid_bits = 22
let id_mask = (1 lsl 55) - 1

let alloc () =
  let s = Atomic.fetch_and_add seq 1 in
  (((s + 1) lsl pid_bits) lor (Unix.getpid () land ((1 lsl pid_bits) - 1)))
  land id_mask

let default_capacity = 65_536

let create ?(capacity = default_capacity) () =
  let cap = max 1 capacity in
  {
    mu = Mutex.create ();
    buf = Array.make cap None;
    cap;
    head = 0;
    len = 0;
    dropped = 0;
  }

(* Returns [true] iff recording evicted a retained span (ring full). *)
let add t ?(cat = "") ?(track = "coordinator") ?(args = []) ?id ?parent name
    ~t0 ~t1 =
  let sq = Atomic.fetch_and_add seq 1 in
  let sp =
    {
      sp_name = name;
      sp_cat = cat;
      sp_track = track;
      sp_begin = t0;
      sp_dur = Float.max 0. (t1 -. t0);
      sp_args = args;
      sp_seq = sq;
      sp_id = (match id with Some i -> i | None -> alloc ());
      sp_parent = parent;
    }
  in
  Mutex.lock t.mu;
  let evicted = t.len = t.cap in
  t.buf.(t.head) <- Some sp;
  t.head <- (t.head + 1) mod t.cap;
  if evicted then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  Mutex.unlock t.mu;
  evicted

let record t ?cat ?track ?args ?id ?parent name ~t0 ~t1 =
  ignore (add t ?cat ?track ?args ?id ?parent name ~t0 ~t1)

let sort_spans xs =
  List.sort
    (fun a b ->
      match compare a.sp_begin b.sp_begin with
      | 0 -> compare a.sp_seq b.sp_seq
      | c -> c)
    xs

let snapshot_locked t =
  let xs = ref [] in
  for i = 0 to t.len - 1 do
    match t.buf.((t.head - 1 - i + (2 * t.cap)) mod t.cap) with
    | Some sp -> xs := sp :: !xs
    | None -> ()
  done;
  !xs

let spans t =
  Mutex.lock t.mu;
  let xs = snapshot_locked t in
  Mutex.unlock t.mu;
  sort_spans xs

let drain t =
  Mutex.lock t.mu;
  let xs = snapshot_locked t in
  Array.fill t.buf 0 t.cap None;
  t.head <- 0;
  t.len <- 0;
  Mutex.unlock t.mu;
  sort_spans xs

let length t =
  Mutex.lock t.mu;
  let n = t.len in
  Mutex.unlock t.mu;
  n

let drops t =
  Mutex.lock t.mu;
  let n = t.dropped in
  Mutex.unlock t.mu;
  n

let clear t =
  Mutex.lock t.mu;
  Array.fill t.buf 0 t.cap None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  Mutex.unlock t.mu

(* Timed spans.

   A span is a closed interval on a named track ("coordinator",
   "site 3", "pool worker 1", ...) with a category, free-form string
   attributes, and a process-global sequence number.  Collection is a
   mutex-protected list: spans may be recorded concurrently from pool
   domains, and [spans] returns them sorted by (begin time, seq) so
   export order is stable.  Note this differs from the PR-2 visit-log
   pattern (DLS buffers merged at barriers): spans are non-semantic —
   nothing downstream branches on them — so the differential test pins
   the *observables* (answers, visits, ops, traffic) instead of span
   order, and a simple lock keeps the collector reusable from code
   that has no barrier to merge at (sockets, CLI). *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_track : string; (* rendered as a thread in the Chrome trace *)
  sp_begin : float; (* Clock.now seconds *)
  sp_dur : float; (* seconds, >= 0 *)
  sp_args : (string * string) list;
  sp_seq : int;
}

type t = { mu : Mutex.t; mutable acc : span list; mutable n : int }

let seq = Atomic.make 0

let create () = { mu = Mutex.create (); acc = []; n = 0 }

let record t ?(cat = "") ?(track = "coordinator") ?(args = []) name ~t0 ~t1 =
  let sp =
    {
      sp_name = name;
      sp_cat = cat;
      sp_track = track;
      sp_begin = t0;
      sp_dur = Float.max 0. (t1 -. t0);
      sp_args = args;
      sp_seq = Atomic.fetch_and_add seq 1;
    }
  in
  Mutex.lock t.mu;
  t.acc <- sp :: t.acc;
  t.n <- t.n + 1;
  Mutex.unlock t.mu

let spans t =
  Mutex.lock t.mu;
  let xs = t.acc in
  Mutex.unlock t.mu;
  List.sort
    (fun a b ->
      match compare a.sp_begin b.sp_begin with
      | 0 -> compare a.sp_seq b.sp_seq
      | c -> c)
    xs

let length t =
  Mutex.lock t.mu;
  let n = t.n in
  Mutex.unlock t.mu;
  n

let clear t =
  Mutex.lock t.mu;
  t.acc <- [];
  t.n <- 0;
  Mutex.unlock t.mu

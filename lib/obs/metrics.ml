(* Counter / gauge / histogram registry.

   One mutex guards a registry; instruments are keyed by
   (name, sorted labels) so the same logical series is shared no matter
   which call site touches it first.  Dumps are sorted by key, so the
   Prometheus-style text output and the [pairs] flattening are
   deterministic regardless of update order — which in turn lets the
   client/server stats-agreement test compare registries built on
   opposite ends of a socket. *)

type labels = (string * string) list

type instrument =
  | Counter of float ref
  | Gauge of float ref
  | Histogram of {
      buckets : float array; (* upper bounds, strictly increasing *)
      counts : int array; (* same length + 1 (overflow bucket) *)
      mutable sum : float;
      mutable count : int;
    }

type t = {
  mu : Mutex.t;
  tbl : (string * labels, instrument) Hashtbl.t;
}

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64 }

let norm_labels (l : labels) : labels =
  List.sort (fun (a, _) (b, _) -> compare a b) l

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Seconds-scale latency buckets: 10us .. 10s, roughly half-decade. *)
let latency_buckets =
  [| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.; 3.; 10. |]

let find t kind name labels (fresh : unit -> instrument) : instrument =
  let key = (name, norm_labels labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some i ->
      (match (kind, i) with
      | `Counter, Counter _ | `Gauge, Gauge _ | `Histogram, Histogram _ -> ()
      | _ ->
          invalid_arg
            (Printf.sprintf "Metrics: %s re-registered with a different kind"
               name));
      i
  | None ->
      let i = fresh () in
      Hashtbl.replace t.tbl key i;
      i

let incr t ?(labels = []) ?(by = 1.) name =
  if by < 0. then invalid_arg "Metrics.incr: negative increment";
  with_lock t (fun () ->
      match find t `Counter name labels (fun () -> Counter (ref 0.)) with
      | Counter r -> r := !r +. by
      | _ -> assert false)

let set t ?(labels = []) name v =
  with_lock t (fun () ->
      match find t `Gauge name labels (fun () -> Gauge (ref 0.)) with
      | Gauge r -> r := v
      | _ -> assert false)

let observe t ?(labels = []) ?(buckets = latency_buckets) name v =
  with_lock t (fun () ->
      match
        find t `Histogram name labels (fun () ->
            Histogram
              {
                buckets = Array.copy buckets;
                counts = Array.make (Array.length buckets + 1) 0;
                sum = 0.;
                count = 0;
              })
      with
      | Histogram h ->
          let n = Array.length h.buckets in
          let i = ref 0 in
          while !i < n && v > h.buckets.(!i) do
            i := !i + 1
          done;
          h.counts.(!i) <- h.counts.(!i) + 1;
          h.sum <- h.sum +. v;
          h.count <- h.count + 1
      | _ -> assert false)

let value t ?(labels = []) name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl (name, norm_labels labels) with
      | Some (Counter r) | Some (Gauge r) -> Some !r
      | Some (Histogram h) -> Some h.sum
      | None -> None)

(* ---------------- export ------------------------------------------ *)

let label_suffix = function
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) ls)
      ^ "}"

let sorted_entries t =
  let xs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [] in
  List.sort (fun (a, _) (b, _) -> compare a b) xs

(* Flatten to (series-name, value) pairs — the payload of the Stats
   wire reply.  Histograms expand to _sum / _count / _bucket{le=...}
   series, mirroring the text dump. *)
let pairs t : (string * float) list =
  with_lock t (fun () ->
      sorted_entries t
      |> List.concat_map (fun ((name, labels), inst) ->
             let base = name ^ label_suffix labels in
             match inst with
             | Counter r | Gauge r -> [ (base, !r) ]
             | Histogram h ->
                 let bucket i le =
                   ( Printf.sprintf "%s_bucket%s"
                       name
                       (label_suffix (norm_labels (("le", le) :: labels))),
                     float_of_int i )
                 in
                 let cumulative = ref 0 in
                 let bs =
                   List.init
                     (Array.length h.buckets + 1)
                     (fun i ->
                       cumulative := !cumulative + h.counts.(i);
                       let le =
                         if i = Array.length h.buckets then "+Inf"
                         else Printf.sprintf "%g" h.buckets.(i)
                       in
                       bucket !cumulative le)
                 in
                 bs
                 @ [
                     (name ^ "_sum" ^ label_suffix labels, h.sum);
                     ( name ^ "_count" ^ label_suffix labels,
                       float_of_int h.count );
                   ]))

let num s =
  if Float.is_integer s && Float.abs s < 1e15 then Printf.sprintf "%.0f" s
  else Printf.sprintf "%g" s

(* Prometheus-style text exposition (values only, no TYPE/HELP —
   enough to read and to diff in tests). *)
let dump t : string =
  let b = Buffer.create 1024 in
  List.iter
    (fun (series, v) -> Buffer.add_string b (series ^ " " ^ num v ^ "\n"))
    (pairs t);
  Buffer.contents b

let of_pairs (ps : (string * float) list) : (string * float) list =
  List.sort (fun (a, _) (b, _) -> compare a b) ps

let clear t = with_lock t (fun () -> Hashtbl.reset t.tbl)

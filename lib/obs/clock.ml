(* Monotonic time for everything that measures durations or computes
   deadlines.  OCaml's Unix module (without external packages) only
   exposes wall-clock time, so we monotonize it: a process-global
   high-water mark clamps [now] to be non-decreasing even if the wall
   clock is stepped backwards (NTP, VM migration).  Forward jumps
   still inflate one interval — documented in docs/OBSERVABILITY.md —
   but backward jumps can no longer produce negative durations or
   never-expiring socket deadlines.

   The source is swappable so tests can drive time by hand. *)

type source = unit -> float

let wall : source = Unix.gettimeofday

(* High-water mark, stored as Int64 bits because Atomic.t over floats
   would box on every set; CAS on the bits is lock-free. *)
let hwm = Atomic.make (Int64.bits_of_float 0.)

let monotonize (raw : float) : float =
  let rec bump () =
    let prev_bits = Atomic.get hwm in
    let prev = Int64.float_of_bits prev_bits in
    if raw <= prev then prev
    else if Atomic.compare_and_set hwm prev_bits (Int64.bits_of_float raw) then
      raw
    else bump ()
  in
  bump ()

let source = Atomic.make wall

(* Installing a source starts a fresh monotonic epoch; otherwise a fake
   clock starting at 0 would be clamped up to earlier wall readings. *)
let reset_mark () = Atomic.set hwm (Int64.bits_of_float neg_infinity)

let set_source s =
  Atomic.set source s;
  reset_mark ()

let use_wall () = set_source wall

let with_source s f =
  let prev = Atomic.get source in
  set_source s;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set source prev;
      reset_mark ())
    f

let now () = monotonize (Atomic.get source ())

(* A hand-cranked clock for tests. *)
module Fake = struct
  type t = float Atomic.t

  let create ?(at = 0.) () = Atomic.make at
  let source (t : t) : source = fun () -> Atomic.get t

  let advance t dt =
    let rec go () =
      let prev = Atomic.get t in
      if not (Atomic.compare_and_set t prev (prev +. dt)) then go ()
    in
    go ()

  let set t at = Atomic.set t at
end

(* Chrome trace-event JSON export (the format Perfetto and
   chrome://tracing load).  We emit the object form:

     { "traceEvents": [ ... ], "displayTimeUnit": "ms" }

   with one metadata event per track naming its thread, followed by
   one complete ("ph":"X") event per span.  Timestamps are
   microseconds relative to the earliest span so files from different
   runs line up at t=0.  Spec:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU *)

let pid = 1 (* single-process trace; tids distinguish tracks *)

let track_ids (spans : Span.span list) : (string * int) list =
  (* First-appearance order (spans arrive sorted by begin time), so the
     coordinator track — which starts first — gets tid 0 on top. *)
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (s : Span.span) ->
      if not (Hashtbl.mem seen s.Span.sp_track) then begin
        Hashtbl.add seen s.Span.sp_track (Hashtbl.length seen);
        order := s.Span.sp_track :: !order
      end)
    spans;
  List.rev !order |> List.mapi (fun i t -> (t, i))

let us_of rel = Float.round (rel *. 1e6)

let to_json (spans : Span.span list) : Json.t =
  let t_origin =
    List.fold_left
      (fun acc (s : Span.span) -> Float.min acc s.Span.sp_begin)
      infinity spans
  in
  let t_origin = if t_origin = infinity then 0. else t_origin in
  let tracks = track_ids spans in
  let tid_of track = List.assoc track tracks in
  let meta =
    List.map
      (fun (name, tid) ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.int pid);
            ("tid", Json.int tid);
            ("args", Json.Obj [ ("name", Json.Str name) ]);
          ])
      tracks
  in
  let events =
    List.map
      (fun (s : Span.span) ->
        Json.Obj
          [
            ("name", Json.Str s.Span.sp_name);
            ("cat", Json.Str (if s.Span.sp_cat = "" then "pax" else s.Span.sp_cat));
            ("ph", Json.Str "X");
            ("ts", Json.Num (us_of (s.Span.sp_begin -. t_origin)));
            ("dur", Json.Num (Float.max 1. (us_of s.Span.sp_dur)));
            ("pid", Json.int pid);
            ("tid", Json.int (tid_of s.Span.sp_track));
            ( "args",
              Json.Obj
                (List.map (fun (k, v) -> (k, Json.Str v)) s.Span.sp_args) );
          ])
      spans
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string spans = Json.to_string (to_json spans)

let write_file path spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string spans);
      output_char oc '\n')

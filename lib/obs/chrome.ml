(* Chrome trace-event JSON export (the format Perfetto and
   chrome://tracing load).  We emit the object form:

     { "traceEvents": [ ... ], "displayTimeUnit": "ms" }

   with one metadata event per track naming its thread, followed by
   one complete ("ph":"X") event per span.  Timestamps are
   microseconds relative to the earliest span so files from different
   runs line up at t=0.  Spec:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

   [to_json] is the single-process form (pid 1, tids distinguish
   tracks).  [to_json_processes] merges span sets harvested from
   several processes — the coordinator plus each site server — into
   one file: each process gets its own pid + process_name metadata,
   its timestamps are shifted by its estimated clock offset before the
   common origin is subtracted, and every span whose [sp_parent]
   resolves (in any process) gets a flow arrow ("ph":"s" at the parent
   slice, "ph":"f" at the child) so Perfetto draws the cross-process
   causality of each visit. *)

let pid = 1 (* single-process trace; tids distinguish tracks *)

let track_ids (spans : Span.span list) : (string * int) list =
  (* First-appearance order (spans arrive sorted by begin time), so the
     coordinator track — which starts first — gets tid 0 on top. *)
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (s : Span.span) ->
      if not (Hashtbl.mem seen s.Span.sp_track) then begin
        Hashtbl.add seen s.Span.sp_track (Hashtbl.length seen);
        order := s.Span.sp_track :: !order
      end)
    spans;
  List.rev !order |> List.mapi (fun i t -> (t, i))

let us_of rel = Float.round (rel *. 1e6)

let thread_meta ~pid (name, tid) =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.int pid);
      ("tid", Json.int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let x_event ~pid ~tid ~ts (s : Span.span) =
  Json.Obj
    [
      ("name", Json.Str s.Span.sp_name);
      ("cat", Json.Str (if s.Span.sp_cat = "" then "pax" else s.Span.sp_cat));
      ("ph", Json.Str "X");
      ("ts", Json.Num ts);
      ("dur", Json.Num (Float.max 1. (us_of s.Span.sp_dur)));
      ("pid", Json.int pid);
      ("tid", Json.int tid);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.Span.sp_args));
    ]

let to_json (spans : Span.span list) : Json.t =
  let t_origin =
    List.fold_left
      (fun acc (s : Span.span) -> Float.min acc s.Span.sp_begin)
      infinity spans
  in
  let t_origin = if t_origin = infinity then 0. else t_origin in
  let tracks = track_ids spans in
  let tid_of track = List.assoc track tracks in
  let meta = List.map (thread_meta ~pid) tracks in
  let events =
    List.map
      (fun (s : Span.span) ->
        x_event ~pid
          ~tid:(tid_of s.Span.sp_track)
          ~ts:(us_of (s.Span.sp_begin -. t_origin))
          s)
      spans
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ events));
      ("displayTimeUnit", Json.Str "ms");
    ]

(* ------------------------------------------------------------------ *)
(* Multi-process merge                                                *)
(* ------------------------------------------------------------------ *)

type process = {
  pr_name : string;
  pr_offset : float;
      (* seconds this process's clock reads *ahead of* the reference
         (coordinator) clock; subtracted from its timestamps on export
         (see Client.estimate_offset) *)
  pr_spans : Span.span list;
}

let to_json_processes (procs : process list) : Json.t =
  (* pids are 1-based in list order; the coordinator conventionally
     comes first so it renders on top. *)
  let procs =
    List.mapi (fun i p -> (i + 1, p, track_ids p.pr_spans)) procs
  in
  let aligned p (s : Span.span) = s.Span.sp_begin -. p.pr_offset in
  let t_origin =
    List.fold_left
      (fun acc (_, p, _) ->
        List.fold_left
          (fun acc s -> Float.min acc (aligned p s))
          acc p.pr_spans)
      infinity procs
  in
  let t_origin = if t_origin = infinity then 0. else t_origin in
  (* Where each span id landed: pid, tid, export-time start ts. *)
  let placed = Hashtbl.create 256 in
  let groups =
    List.map
      (fun (pid, p, tracks) ->
        let tid_of track = List.assoc track tracks in
        let proc_meta =
          Json.Obj
            [
              ("name", Json.Str "process_name");
              ("ph", Json.Str "M");
              ("pid", Json.int pid);
              ("args", Json.Obj [ ("name", Json.Str p.pr_name) ]);
            ]
        in
        let meta = List.map (thread_meta ~pid) tracks in
        let events =
          List.map
            (fun (s : Span.span) ->
              let tid = tid_of s.Span.sp_track in
              let ts = us_of (aligned p s -. t_origin) in
              Hashtbl.replace placed s.Span.sp_id (pid, tid, ts);
              x_event ~pid ~tid ~ts s)
            p.pr_spans
        in
        (proc_meta :: meta) @ events)
      procs
  in
  (* Flow arrows: one s/f pair per span whose parent resolved.  The
     flow id is the child's span id (unique); the "s" end binds to the
     slice enclosing the parent's start ts on the parent's thread. *)
  let flows =
    List.concat_map
      (fun (pid, p, tracks) ->
        List.concat_map
          (fun (s : Span.span) ->
            match s.Span.sp_parent with
            | None -> []
            | Some parent_id -> (
                match Hashtbl.find_opt placed parent_id with
                | None -> []
                | Some (ppid, ptid, pts) ->
                    let tid = List.assoc s.Span.sp_track tracks
                    and ts = us_of (aligned p s -. t_origin) in
                    [
                      Json.Obj
                        [
                          ("name", Json.Str "parent");
                          ("cat", Json.Str "flow");
                          ("ph", Json.Str "s");
                          ("id", Json.int s.Span.sp_id);
                          ("pid", Json.int ppid);
                          ("tid", Json.int ptid);
                          ("ts", Json.Num pts);
                        ];
                      Json.Obj
                        [
                          ("name", Json.Str "parent");
                          ("cat", Json.Str "flow");
                          ("ph", Json.Str "f");
                          ("bp", Json.Str "e");
                          ("id", Json.int s.Span.sp_id);
                          ("pid", Json.int pid);
                          ("tid", Json.int tid);
                          ("ts", Json.Num ts);
                        ];
                    ]))
          p.pr_spans)
      procs
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.concat groups @ flows));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string spans = Json.to_string (to_json spans)

let to_string_processes procs = Json.to_string (to_json_processes procs)

let write ~serialized path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc serialized;
      output_char oc '\n')

let write_file path spans = write ~serialized:(to_string spans) path

let write_file_processes path procs =
  write ~serialized:(to_string_processes procs) path

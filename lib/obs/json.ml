(* Minimal JSON for the exporters and their schema checks: emit with
   stable key order, parse back for tests.  Kept inside pax_obs so the
   telemetry layer stays zero-dependency (bench/ has its own copy for
   the same reason; neither is a public JSON library). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* ---------------- printing ---------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let to_string (v : t) : string =
  let b = Buffer.create 1024 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num f -> Buffer.add_string b (num_repr f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            go x)
          kvs;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ---------------- parsing ----------------------------------------- *)

exception Parse_error of string

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let lit word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("bad literal, wanted " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then fail "unterminated escape"
            else
              let e = s.[!pos] in
              advance ();
              match e with
              | '"' | '\\' | '/' ->
                  Buffer.add_char b e;
                  go ()
              | 'n' ->
                  Buffer.add_char b '\n';
                  go ()
              | 't' ->
                  Buffer.add_char b '\t';
                  go ()
              | 'r' ->
                  Buffer.add_char b '\r';
                  go ()
              | 'b' ->
                  Buffer.add_char b '\b';
                  go ()
              | 'f' ->
                  Buffer.add_char b '\012';
                  go ()
              | 'u' ->
                  if !pos + 4 > n then fail "short \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* ASCII pass-through only; enough for our files. *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else Buffer.add_string b (Printf.sprintf "\\u%s" hex);
                  go ()
              | _ -> fail "bad escape")
        | c ->
            Buffer.add_char b c;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let body = String.sub s start (!pos - start) in
    match float_of_string_opt body with
    | Some f -> Num f
    | None -> fail ("bad number " ^ body)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes";
  v

let parse s =
  match parse_exn s with v -> Ok v | exception Parse_error m -> Error m

(* ---------------- accessors --------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let as_num = function Num f -> Some f | _ -> None
let as_str = function Str s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | _ -> None
let as_list = function List l -> Some l | _ -> None
let as_obj = function Obj kvs -> Some kvs | _ -> None

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to a non-negative native int before reducing. *)
  let v = Int64.to_int (next t) land max_int in
  v mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L
let chance t p = float t 1.0 < p
let pick t a = a.(int t (Array.length a))
let split t = { state = next t }

module Tree = Pax_xml.Tree

let first_names =
  [| "Anna"; "Kim"; "Lisa"; "Omar"; "Wei"; "Ines"; "Raj"; "Sven"; "Mia"; "Leo" |]

let last_names =
  [| "Smith"; "Chen"; "Garcia"; "Okafor"; "Novak"; "Tanaka"; "Mueller"; "Rossi" |]

let countries =
  (* "US" is frequent so that Q3/Q4 qualifiers select a healthy slice. *)
  [| "US"; "US"; "US"; "US"; "Canada"; "Germany"; "Japan"; "France"; "Brazil"; "India" |]

let cities = [| "Seattle"; "Austin"; "Toronto"; "Berlin"; "Osaka"; "Lyon"; "Recife" |]
let streets = [| "Oak St"; "Pine Ave"; "Elm Rd"; "Maple Dr"; "Cedar Ln" |]
let interests = [| "category1"; "category7"; "category12"; "category33" |]
let educations = [| "High School"; "College"; "Graduate School"; "Other" |]
let item_names = [| "widget"; "gadget"; "sprocket"; "gizmo"; "doodad" |]
let payments = [| "Creditcard"; "Money order"; "Personal Check"; "Cash" |]
let happiness_words = [| "1"; "2"; "4"; "5"; "6"; "8"; "9"; "10" |]

let words =
  [| "page"; "rival"; "shade"; "gleam"; "metal"; "argue"; "crown"; "fancy";
     "noble"; "orbit"; "prime"; "quilt" |]

let sentence rng n =
  String.concat " " (List.init n (fun _ -> Rng.pick rng words))

(* Each generator builds one entity subtree and reports nothing; sizes
   are implicit in the structure.  The section loops below keep adding
   entities while their node budget lasts. *)

let person b rng i =
  let name =
    Printf.sprintf "%s %s" (Rng.pick rng first_names) (Rng.pick rng last_names)
  in
  let base =
    [
      Tree.leaf b "name" name;
      Tree.leaf b "emailaddress"
        (Printf.sprintf "mailto:person%d@example.net" i);
    ]
  in
  let phone =
    if Rng.chance rng 0.5 then
      [ Tree.leaf b "phone" (Printf.sprintf "+1 (%d) %d" (Rng.range rng 100 999) (Rng.range rng 1000000 9999999)) ]
    else []
  in
  let address =
    if Rng.chance rng 0.8 then
      [
        Tree.elem b "address"
          [
            Tree.leaf b "street" (Rng.pick rng streets);
            Tree.leaf b "city" (Rng.pick rng cities);
            Tree.leaf b "country" (Rng.pick rng countries);
            Tree.leaf b "zipcode" (string_of_int (Rng.range rng 10000 99999));
          ];
      ]
    else []
  in
  let homepage =
    if Rng.chance rng 0.3 then
      [ Tree.leaf b "homepage" (Printf.sprintf "http://example.net/~person%d" i) ]
    else []
  in
  let creditcard =
    if Rng.chance rng 0.7 then
      [
        Tree.leaf b "creditcard"
          (Printf.sprintf "%d %d %d %d" (Rng.range rng 1000 9999)
             (Rng.range rng 1000 9999) (Rng.range rng 1000 9999)
             (Rng.range rng 1000 9999));
      ]
    else []
  in
  let profile =
    if Rng.chance rng 0.85 then begin
      let interests =
        List.init (Rng.range rng 0 2) (fun _ ->
            Tree.elem b ~attrs:[ ("category", Rng.pick rng interests) ] "interest" [])
      in
      let education =
        if Rng.chance rng 0.5 then
          [ Tree.leaf b "education" (Rng.pick rng educations) ]
        else []
      in
      let age =
        if Rng.chance rng 0.7 then
          [ Tree.leaf b "age" (string_of_int (Rng.range rng 18 60)) ]
        else []
      in
      [
        Tree.elem b
          ~attrs:[ ("income", string_of_int (Rng.range rng 9000 99000)) ]
          "profile"
          (interests @ education
          @ [ Tree.leaf b "business" (if Rng.bool rng then "Yes" else "No") ]
          @ age);
      ]
    end
    else []
  in
  Tree.elem b
    ~attrs:[ ("id", Printf.sprintf "person%d" i) ]
    "person"
    (base @ phone @ address @ homepage @ creditcard @ profile)

let bidder b rng =
  Tree.elem b "bidder"
    [
      Tree.leaf b "date" (Printf.sprintf "%02d/%02d/2006" (Rng.range rng 1 12) (Rng.range rng 1 28));
      Tree.leaf b "time" (Printf.sprintf "%02d:%02d:%02d" (Rng.range rng 0 23) (Rng.range rng 0 59) (Rng.range rng 0 59));
      Tree.elem b ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.int rng 1000)) ] "personref" [];
      Tree.leaf b "increase" (string_of_int (Rng.range rng 1 30))
    ]

let annotation b rng =
  Tree.elem b "annotation"
    [
      Tree.elem b ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.int rng 1000)) ] "author" [];
      Tree.leaf b "happiness" (Rng.pick rng happiness_words);
      Tree.elem b "description" [ Tree.leaf b "text" (sentence rng (Rng.range rng 3 8)) ];
    ]

let open_auction b rng i =
  let bidders = List.init (Rng.range rng 0 3) (fun _ -> bidder b rng) in
  Tree.elem b
    ~attrs:[ ("id", Printf.sprintf "open_auction%d" i) ]
    "open_auction"
    ([ Tree.leaf b "initial" (Printf.sprintf "%d.%02d" (Rng.range rng 1 300) (Rng.range rng 0 99)) ]
    @ bidders
    @ [
        Tree.leaf b "current" (Printf.sprintf "%d.%02d" (Rng.range rng 1 500) (Rng.range rng 0 99));
        Tree.elem b ~attrs:[ ("item", Printf.sprintf "item%d" (Rng.int rng 1000)) ] "itemref" [];
        Tree.elem b ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.int rng 1000)) ] "seller" [];
        annotation b rng;
        Tree.leaf b "quantity" (string_of_int (Rng.range rng 1 10));
        Tree.leaf b "type" (if Rng.bool rng then "Regular" else "Featured");
        Tree.elem b "interval"
          [ Tree.leaf b "start" "01/01/2006"; Tree.leaf b "end" "12/31/2006" ];
      ])

let closed_auction b rng =
  let ann = if Rng.chance rng 0.6 then [ annotation b rng ] else [] in
  Tree.elem b "closed_auction"
    ([
       Tree.elem b ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.int rng 1000)) ] "seller" [];
       Tree.elem b ~attrs:[ ("person", Printf.sprintf "person%d" (Rng.int rng 1000)) ] "buyer" [];
       Tree.elem b ~attrs:[ ("item", Printf.sprintf "item%d" (Rng.int rng 1000)) ] "itemref" [];
       Tree.leaf b "price" (Printf.sprintf "%d.%02d" (Rng.range rng 1 400) (Rng.range rng 0 99));
       Tree.leaf b "date" (Printf.sprintf "%02d/%02d/2006" (Rng.range rng 1 12) (Rng.range rng 1 28));
       Tree.leaf b "quantity" (string_of_int (Rng.range rng 1 10));
       Tree.leaf b "type" (if Rng.bool rng then "Regular" else "Featured");
     ]
    @ ann)

let item b rng i =
  let incat =
    List.init (Rng.range rng 1 2) (fun _ ->
        Tree.elem b ~attrs:[ ("category", Rng.pick rng interests) ] "incategory" [])
  in
  Tree.elem b
    ~attrs:[ ("id", Printf.sprintf "item%d" i) ]
    "item"
    ([
       Tree.leaf b "location" (Rng.pick rng countries);
       Tree.leaf b "quantity" (string_of_int (Rng.range rng 1 10));
       Tree.leaf b "name" (Rng.pick rng item_names);
       Tree.leaf b "payment" (Rng.pick rng payments);
       Tree.elem b "description" [ Tree.leaf b "text" (sentence rng (Rng.range rng 3 10)) ];
       Tree.leaf b "shipping" "Will ship internationally";
     ]
    @ incat)

let category b rng i =
  Tree.elem b
    ~attrs:[ ("id", Printf.sprintf "category%d" i) ]
    "category"
    [
      Tree.leaf b "name" (sentence rng 2);
      Tree.elem b "description" [ Tree.leaf b "text" (sentence rng (Rng.range rng 2 6)) ];
    ]

let region_names = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

(* Fill [budget] nodes by repeatedly generating entities; stop once the
   budget is exhausted. *)
let fill budget gen =
  let used = ref 0 in
  let items = ref [] in
  let i = ref 0 in
  while !used < budget do
    let entity = gen !i in
    used := !used + Tree.size entity;
    items := entity :: !items;
    incr i
  done;
  List.rev !items

let site_custom b rng ~regions ~categories ~people ~open_auctions
    ~closed_auctions =
  let people = fill people (fun i -> person b rng i) in
  let opens = fill open_auctions (fun i -> open_auction b rng i) in
  let closeds = fill closed_auctions (fun _ -> closed_auction b rng) in
  let n_regions = Array.length region_names in
  let region_elems =
    List.init n_regions (fun r ->
        Tree.elem b region_names.(r)
          (fill (regions / n_regions) (fun i -> item b rng (i + (1000 * r)))))
  in
  let categories = fill categories (fun i -> category b rng i) in
  Tree.elem b "site"
    [
      Tree.elem b "regions" region_elems;
      Tree.elem b "categories" categories;
      Tree.elem b "people" people;
      Tree.elem b "open_auctions" opens;
      Tree.elem b "closed_auctions" closeds;
    ]

let site b rng ~nodes =
  let nodes = max 60 nodes in
  site_custom b rng
    ~regions:(nodes * 18 / 100)
    ~categories:(nodes * 5 / 100)
    ~people:(nodes * 30 / 100)
    ~open_auctions:(nodes * 30 / 100)
    ~closed_auctions:(nodes * 15 / 100)

let sites_doc ~seed ~site_nodes =
  let b = Tree.builder () in
  let rng = Rng.create ~seed in
  let sites = List.map (fun n -> site b (Rng.split rng) ~nodes:n) site_nodes in
  Tree.doc_of_root (Tree.elem b "sites" sites)

let doc ~seed ~total_nodes ~n_sites =
  let per = max 60 (total_nodes / max 1 n_sites) in
  sites_doc ~seed ~site_nodes:(List.init n_sites (fun _ -> per))

let q1 = "/sites/site/people/person"
let q2 = "/sites/site/open_auctions//annotation"

let q3 =
  "/sites/site/people/person[profile/age > 20 and address/country = \"US\"]/creditcard"

let q4 =
  "/sites//people/person[profile/age > 20 and address/country = \"US\"]/creditcard"

let queries = [ ("Q1", q1); ("Q2", q2); ("Q3", q3); ("Q4", q4) ]

(* One paper-megabyte of XMark data stands for this many tree nodes; at
   roughly 55 serialized bytes per node this keeps the figure axes
   honest while letting the full sweep run in seconds. *)
let nodes_per_mb = 1800

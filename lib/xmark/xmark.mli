(** An XMark-style synthetic document generator (Schmidt et al., VLDB
    2002), shaped like the datasets of the paper's §6: a root [sites]
    element whose children are whole XMark [site] subtrees, each with
    [regions], [categories], [people] (persons with address/country,
    profile/age, creditcard…), [open_auctions] (with bidders and
    [annotation]s) and [closed_auctions].

    Sizes are controlled in {e nodes}; the bench harness maps the
    paper's megabytes to nodes with a fixed scale factor.  Generation is
    deterministic in the seed. *)

(** [site builder rng ~nodes] — one [site] subtree of roughly [nodes]
    nodes (within a few percent). *)
val site : Pax_xml.Tree.builder -> Rng.t -> nodes:int -> Pax_xml.Tree.node

(** [site_custom builder rng ~regions ~categories ~people ~open_auctions
    ~closed_auctions] — a [site] with explicit per-section node budgets;
    used to realize the skewed fragment sizes of the paper's FT2 (the
    5 / 12 / 28 / 8 MB split of Experiment 2). *)
val site_custom :
  Pax_xml.Tree.builder -> Rng.t -> regions:int -> categories:int ->
  people:int -> open_auctions:int -> closed_auctions:int -> Pax_xml.Tree.node

(** [sites_doc ~seed ~site_nodes] — a [sites] document with one [site]
    per list element, of the given sizes. *)
val sites_doc : seed:int -> site_nodes:int list -> Pax_xml.Tree.doc

(** [doc ~seed ~total_nodes ~n_sites] — [total_nodes] split evenly. *)
val doc : seed:int -> total_nodes:int -> n_sites:int -> Pax_xml.Tree.doc

(** The queries of the paper's Fig. 7, Q1–Q4. *)
val q1 : string

val q2 : string
val q3 : string
val q4 : string
val queries : (string * string) list

(** Paper scale: nodes that stand in for one paper-megabyte of XMark
    data (the benches multiply "MB" axes by this). *)
val nodes_per_mb : int

(** A small, fast, deterministic PRNG (splitmix64), so that generated
    benchmark documents are reproducible across runs and platforms
    independently of the stdlib's [Random]. *)

type t

val create : seed:int -> t

(** Uniform in [0, bound). *)
val int : t -> int -> int

(** Uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

val float : t -> float -> float
val bool : t -> bool

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

(** Uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a

(** An independent generator split off deterministically. *)
val split : t -> t

(** Fragmented directed graphs — the reachability engine's analogue of
    {!Pax_frag.Fragment}.

    A graph over nodes [0..n-1] is partitioned by an ownership map:
    every node lives in exactly one fragment, and a {e cross edge} is
    an edge whose endpoints live in different fragments.  Following
    Fan/Wang/Wu, the target of a cross edge is an {e in-node} (here:
    {e entry}) of its owning fragment — the only nodes through which
    computation can enter a fragment, and therefore the only nodes that
    get Boolean variables.  A cross edge [u → v] is known to {e both}
    sides: the source fragment stores it in its adjacency (so local
    evaluation can emit the variable of [v]) and carries the
    [(owner, slot)] coordinates of [v] in {!type-fragment.gf_ext}; this
    mirrors the virtual-boundary-node convention of the XML fragment
    store, where a subtree link appears as a placeholder in the parent
    fragment.

    Everything here is deterministic — sorted arrays, no hash-order
    dependence — because residual vectors must be bit-identical across
    transports and schedules. *)

module Formula = Pax_bool.Formula

(** One fragment, self-contained: a site server holding only this
    value (plus the query text) can run {!local_eval}. *)
type fragment = {
  gf_id : int;
  gf_nodes : int array;  (** owned nodes, ascending *)
  gf_adj : (int * int array) array;
      (** owned node → successors (global ids, ascending); only nodes
          with at least one successor appear; node-ascending *)
  gf_entries : int array;
      (** entry (in-)nodes, ascending; a variable's slot is its index
          here *)
  gf_ext : (int * (int * int)) array;
      (** foreign successor → (owner fragment, entry slot there);
          node-ascending.  Covers every foreign node reachable in one
          step from this fragment. *)
}

type partition = {
  n_nodes : int;
  n_edges : int;  (** after deduplication *)
  owner : int array;  (** node → fragment id *)
  frags : fragment array;
  n_entries : int;  (** |Vf|: total entry nodes across fragments *)
}

(** [partition ~n ~edges ~owner] — build the fragment store.  Edges
    are deduplicated; self-loops are kept (they are harmless).
    Fragment ids are [0..max owner]; a fragment may own no nodes.
    @raise Invalid_argument on out-of-range nodes or an [owner] array
    whose length is not [n], or [n < 1]. *)
val partition : n:int -> edges:(int * int) list -> owner:int array -> partition

val n_fragments : partition -> int
val fragment : partition -> int -> fragment
val owner_of : partition -> int -> int

(** {1 Queries}

    Reachability queries travel as text — ["reach SRC DST"] — so the
    wire protocol's query sections and byte accounting apply
    unchanged. *)

val query_string : src:int -> dst:int -> string

(** Lenient parse of ["reach SRC DST"]; no range check (site servers
    do not know [n] — the coordinator-side {!Reach.parse} does). *)
val parse_query : string -> (int * int) option

(** {1 Wire image}

    Elastic sharding ships a whole graph fragment between sites inside
    a [Wire.frag_image] whose payload this codec produces.  The image
    is self-contained (exactly the {!type-fragment} record) and the
    decoder is {e total}: any byte string either decodes to a fragment
    that satisfies every sortedness invariant above, or yields
    [None] — never an exception, never a malformed fragment. *)

val encode : fragment -> string

val decode : string -> fragment option

(** {1 Local partial evaluation} *)

val owns : fragment -> int -> bool

(** Number of {e starts} — the length of the fragment's residual
    vector: one slot per entry, plus a trailing slot for [src] when
    this fragment owns it and it is not already an entry.  Both the
    coordinator and the remote site derive this layout independently
    from [(fragment, src)]; it must stay a pure function of those. *)
val n_starts : fragment -> src:int -> int

(** The slot of [src] in the fragment's vector.
    @raise Invalid_argument if the fragment does not own [src]. *)
val src_slot : fragment -> src:int -> int

(** [local_eval frag ~src ~dst] — one BFS per start over the owned
    subgraph.  A start that reaches an owned [dst] yields
    {!Formula.true_}; otherwise a disjunction of the variables
    [Qual (owner, slot)] of every foreign successor seen (sorted,
    duplicate-free), or {!Formula.false_} if the start escapes
    nowhere.  Returns the vector and the operation count (edges
    scanned plus one per start). *)
val local_eval : fragment -> src:int -> dst:int -> Formula.t array * int

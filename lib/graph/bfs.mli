(** Centralized breadth-first reachability — the reference oracle the
    distributed engine is differentially tested against
    (test/test_reach_differential.ml), playing the role
    {!Pax_core.Central} plays for the XPath engines. *)

(** [reach ~n ~edges ~src ~dst] over nodes [0..n-1]; reflexive
    ([src = dst] is reachable). *)
val reach : n:int -> edges:(int * int) list -> src:int -> dst:int -> bool

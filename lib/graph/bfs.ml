let reach ~n ~edges ~src ~dst =
  if src = dst then true
  else begin
    let succs = Array.make n [] in
    List.iter (fun (u, v) -> succs.(u) <- v :: succs.(u)) edges;
    let visited = Array.make n false in
    let q = Queue.create () in
    visited.(src) <- true;
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if v = dst then found := true
          else if not visited.(v) then (
            visited.(v) <- true;
            Queue.add v q))
        succs.(u)
    done;
    !found
  end

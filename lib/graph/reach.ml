module Cluster = Pax_dist.Cluster
module Trace = Pax_dist.Trace
module Wire = Pax_wire.Wire
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var
module Audit = Pax_obs.Audit
module Pe = Pax_engine.Pe

type query = { rq_src : int; rq_dst : int; rq_source : string }

let parse g text =
  match Gfrag.parse_query text with
  | None -> Error (Printf.sprintf "not a reachability query: %S" text)
  | Some (src, dst) ->
      if src >= g.Gfrag.n_nodes || dst >= g.Gfrag.n_nodes then
        Error
          (Printf.sprintf "node out of range (graph has %d nodes)"
             g.Gfrag.n_nodes)
      else Ok { rq_src = src; rq_dst = dst; rq_source = Gfrag.query_string ~src ~dst }

let eval g cl q =
  Cluster.reset cl;
  let n_frags = Gfrag.n_fragments g in
  let fids = List.init n_frags Fun.id in
  let sites = Cluster.sites_holding cl fids in
  let fvecs = Array.make n_frags [||] in
  (* Replay guard (pax3 idiom): a duplicated delivery re-runs the visit
     closure; charge each fragment's ops once. *)
  let seen = Array.make n_frags false in
  let account site fid vec ops =
    fvecs.(fid) <- vec;
    if not seen.(fid) then begin
      seen.(fid) <- true;
      Cluster.add_ops cl ~site ops
    end
  in
  let visit site =
    List.iter
      (fun fid ->
        let vec, ops =
          Gfrag.local_eval (Gfrag.fragment g fid) ~src:q.rq_src ~dst:q.rq_dst
        in
        account site fid vec ops)
      (Cluster.fragments_on cl site)
  in
  let remote =
    if Cluster.transport_active cl then
      Some
        {
          Cluster.build =
            (fun site ->
              Wire.Reach_stage1
                { query = q.rq_source; fids = Cluster.fragments_on cl site });
          parse =
            (fun site reply ->
              match reply with
              | Wire.Frag_results frs ->
                  List.iter
                    (fun fr ->
                      match fr.Wire.fr_vec with
                      | Some vec -> account site fr.Wire.fr_fid vec fr.Wire.fr_ops
                      | None -> failwith "reach: reply without residual vector")
                    frs
              | _ -> failwith "reach: unexpected reply kind");
        }
    else None
  in
  ignore (Cluster.run_round ?remote cl ~label:"reach:stage1" ~sites visit);
  (* Accounted traffic, coordinator-side as in pax3: the query down to
     each visited site, one residual vector up per fragment. *)
  List.iter
    (fun site ->
      Cluster.send cl ~src:Cluster.Coordinator ~dst:(Cluster.Site site)
        ~kind:Cluster.Query
        ~bytes:(Wire.query_section_bytes q.rq_source)
        ~label:"reach:query")
    sites;
  List.iter
    (fun fid ->
      Cluster.send cl ~src:(Cluster.Site (Cluster.site_of cl fid))
        ~dst:Cluster.Coordinator ~kind:Cluster.Vectors
        ~bytes:(Wire.vectors_section_bytes fvecs.(fid))
        ~label:"reach:vectors")
    fids;
  let answer =
    Cluster.coord cl ~label:"reach:fixpoint" (fun () ->
        (* Global index over vector slots: entries first, then the
           source's trailing slot when it has one. *)
        let offsets = Array.make n_frags 0 in
        let total = ref 0 in
        for fid = 0 to n_frags - 1 do
          offsets.(fid) <- !total;
          total := !total + Array.length fvecs.(fid)
        done;
        let b = !total in
        let idx fid slot = offsets.(fid) + slot in
        let value = Array.make (max b 1) false in
        let rev = Array.make (max b 1) [] in
        let ops = ref 0 in
        Array.iteri
          (fun fid vec ->
            Array.iteri
              (fun slot f ->
                incr ops;
                match Formula.to_bool f with
                | Some bv -> if bv then value.(idx fid slot) <- true
                | None ->
                    List.iter
                      (function
                        | Var.Qual (ofid, oslot) ->
                            incr ops;
                            rev.(idx ofid oslot) <-
                              idx fid slot :: rev.(idx ofid oslot)
                        | _ -> failwith "reach: unexpected variable kind")
                      (Formula.vars f))
              vec)
          fvecs;
        (* Residuals are pure disjunctions of entry variables, so the
           least fixpoint is plain reachability on the dependency
           graph: seed with the ground-true slots and flood. *)
        let wl = Queue.create () in
        for i = 0 to b - 1 do
          if value.(i) then Queue.add i wl
        done;
        while not (Queue.is_empty wl) do
          let j = Queue.pop wl in
          List.iter
            (fun i ->
              incr ops;
              if not value.(i) then begin
                value.(i) <- true;
                Queue.add i wl
              end)
            rev.(j)
        done;
        Cluster.add_ops cl ~site:(-1) !ops;
        let sfid = Gfrag.owner_of g q.rq_src in
        let sslot = Gfrag.src_slot (Gfrag.fragment g sfid) ~src:q.rq_src in
        value.(idx sfid sslot))
  in
  (answer, Cluster.report cl)

let audit g cl report =
  let tr = Cluster.trace cl in
  let bf = float_of_int (g.Gfrag.n_entries + 1) in
  let vf = float_of_int g.Gfrag.n_nodes and ef = float_of_int g.Gfrag.n_edges in
  let ff = float_of_int (Gfrag.n_fragments g) in
  let visits =
    Audit.bound ~name:"visits" ~formula:"max visits(site) <= 1"
      ~actual:(float_of_int (Trace.max_logical_visits tr))
      ~limit:1.
  in
  let c_comm = Audit.default_c_comm in
  let comm =
    Audit.bound ~name:"comm"
      ~formula:
        (Printf.sprintf "%g * (|Vf|+1) * (|Vf|+|F|+1) = %g * %g * %g" c_comm
           c_comm bf (bf +. ff +. 1.))
      ~actual:(float_of_int (Trace.logical_control_bytes tr))
      ~limit:(c_comm *. bf *. (bf +. ff +. 1.))
  in
  let c_comp = Audit.default_c_comp in
  let comp =
    Audit.bound ~name:"comp"
      ~formula:
        (Printf.sprintf "%g * (|Vf|+1) * (|V|+|E|+|Vf|+1) = %g * %g * %g"
           c_comp c_comp bf
           (vf +. ef +. bf +. 1.))
      ~actual:(float_of_int report.Cluster.total_ops)
      ~limit:(c_comp *. bf *. (vf +. ef +. bf +. 1.))
  in
  Audit.of_bounds [ visits; comm; comp ]

let engine g ~n_sites ~assign : Pe.packed =
  (module struct
    type nonrec query = query

    let name = "reach"
    let parse text = parse g text

    let make_cluster ?domains ?transport () =
      Cluster.create_abstract ?domains ?transport
        ~n_frags:(Gfrag.n_fragments g) ~n_sites ~assign ()

    let run cl q =
      let answer, report = eval g cl q in
      {
        Pe.engine = name;
        query = q.rq_source;
        answer_keys = (if answer then [ 1 ] else []);
        answers_text = string_of_bool answer;
        report;
        trace = Some (Cluster.trace cl);
        audit = audit g cl report;
      }
  end)

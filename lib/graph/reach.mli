(** The distributed reachability engine: local partial evaluation to
    Boolean residuals over boundary-node variables, one visit per
    site, coordinator least-fixpoint (docs/ENGINES.md).

    Guarantees, in the terms of Fan/Wang/Wu's partial-evaluation
    treatment of distributed reachability:
    - {b visits} — each site is visited exactly once per query;
    - {b comm}   — total traffic is [O(|Vf|²)] in the number of
      boundary (entry) nodes, independent of graph size;
    - {b comp}   — total work is [O(|V| + |E| + |Vf|²)].

    The live auditor checks all three on every run via
    {!Pax_obs.Audit.bound}. *)

module Cluster = Pax_dist.Cluster

type query = {
  rq_src : int;
  rq_dst : int;
  rq_source : string;  (** canonical ["reach SRC DST"] text *)
}

(** Parse and range-check against the partition. *)
val parse : Gfrag.partition -> string -> (query, string) result

(** [eval g cl q] — one round of {!Gfrag.local_eval} over the sites
    (in-process closure or {!Pax_wire.Wire.call.Reach_stage1} over the
    transport), accounted sends (query down, vectors up), then the
    coordinator fixpoint.  Residual vectors are pure disjunctions, so
    the fixpoint is dependency-graph reachability over entry
    variables. *)
val eval : Gfrag.partition -> Cluster.t -> query -> bool * Cluster.report

(** Audit the bounds above against a finished run's trace and
    report. *)
val audit :
  Gfrag.partition -> Cluster.t -> Cluster.report -> Pax_obs.Audit.report

(** Package as a {!Pax_engine.Pe} engine named ["reach"] over an
    abstract cluster with the given placement. *)
val engine :
  Gfrag.partition -> n_sites:int -> assign:(int -> int) -> Pax_engine.Pe.packed

module Formula = Pax_bool.Formula
module Var = Pax_bool.Var

type fragment = {
  gf_id : int;
  gf_nodes : int array;
  gf_adj : (int * int array) array;
  gf_entries : int array;
  gf_ext : (int * (int * int)) array;
}

type partition = {
  n_nodes : int;
  n_edges : int;
  owner : int array;
  frags : fragment array;
  n_entries : int;
}

let sort_uniq_array l = Array.of_list (List.sort_uniq compare l)

(* Binary search over an ascending int array. *)
let mem_sorted a x =
  let lo = ref 0 and hi = ref (Array.length a - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = x then found := true
    else if a.(mid) < x then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let index_sorted a x =
  let lo = ref 0 and hi = ref (Array.length a - 1) and idx = ref (-1) in
  while !idx < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = x then idx := mid
    else if a.(mid) < x then lo := mid + 1
    else hi := mid - 1
  done;
  !idx

(* Lookup in an ascending (key, value) array. *)
let assoc_sorted a x =
  let lo = ref 0 and hi = ref (Array.length a - 1) and r = ref None in
  while !r = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let k, v = a.(mid) in
    if k = x then r := Some v else if k < x then lo := mid + 1 else hi := mid - 1
  done;
  !r

let partition ~n ~edges ~owner =
  if n < 1 then invalid_arg "Gfrag.partition: need at least one node";
  if Array.length owner <> n then
    invalid_arg "Gfrag.partition: owner array must have one entry per node";
  let n_frags = 1 + Array.fold_left max 0 owner in
  Array.iter
    (fun f -> if f < 0 then invalid_arg "Gfrag.partition: negative owner")
    owner;
  let edges = List.sort_uniq compare edges in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Gfrag.partition: edge endpoint out of range")
    edges;
  let succs = Array.make n [] in
  List.iter (fun (u, v) -> succs.(u) <- v :: succs.(u)) (List.rev edges);
  (* Entry nodes: targets of cross edges, grouped by owning fragment. *)
  let entry_lists = Array.make n_frags [] in
  List.iter
    (fun (u, v) ->
      if owner.(u) <> owner.(v) then entry_lists.(owner.(v)) <- v :: entry_lists.(owner.(v)))
    edges;
  let entries = Array.map sort_uniq_array entry_lists in
  (* Global entry coordinates: node -> (owner fid, slot). *)
  let coord_of v =
    let fid = owner.(v) in
    (fid, index_sorted entries.(fid) v)
  in
  let frags =
    Array.init n_frags (fun fid ->
        let nodes = ref [] in
        for v = n - 1 downto 0 do
          if owner.(v) = fid then nodes := v :: !nodes
        done;
        let gf_nodes = Array.of_list !nodes in
        let adj = ref [] and ext = ref [] in
        Array.iter
          (fun u ->
            match succs.(u) with
            | [] -> ()
            | l ->
                adj := (u, Array.of_list l) :: !adj;
                List.iter (fun v -> if owner.(v) <> fid then ext := v :: !ext) l)
          gf_nodes;
        let gf_ext =
          Array.map (fun v -> (v, coord_of v)) (sort_uniq_array !ext)
        in
        {
          gf_id = fid;
          gf_nodes;
          gf_adj = Array.of_list (List.rev !adj);
          gf_entries = entries.(fid);
          gf_ext;
        })
  in
  {
    n_nodes = n;
    n_edges = List.length edges;
    owner;
    frags;
    n_entries = Array.fold_left (fun acc e -> acc + Array.length e) 0 entries;
  }

let n_fragments g = Array.length g.frags
let fragment g fid = g.frags.(fid)
let owner_of g v = g.owner.(v)
let query_string ~src ~dst = Printf.sprintf "reach %d %d" src dst

let parse_query text =
  match String.split_on_char ' ' (String.trim text) with
  | "reach" :: rest -> (
      match List.filter (fun s -> s <> "") rest with
      | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some s, Some d when s >= 0 && d >= 0 -> Some (s, d)
          | _ -> None)
      | _ -> None)
  | _ -> None

let owns frag v = mem_sorted frag.gf_nodes v

let n_starts frag ~src =
  let k = Array.length frag.gf_entries in
  if owns frag src && not (mem_sorted frag.gf_entries src) then k + 1 else k

let src_slot frag ~src =
  if not (owns frag src) then
    invalid_arg "Gfrag.src_slot: fragment does not own the source";
  let i = index_sorted frag.gf_entries src in
  if i >= 0 then i else Array.length frag.gf_entries

let local_eval frag ~src ~dst =
  let ops = ref 0 in
  let dst_owned = owns frag dst in
  let eval_from s =
    incr ops;
    let visited = Hashtbl.create 16 in
    let q = Queue.create () in
    Hashtbl.replace visited s ();
    Queue.add s q;
    let reached_dst = ref (dst_owned && s = dst) in
    let ext = ref [] in
    while (not !reached_dst) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      match assoc_sorted frag.gf_adj u with
      | None -> ()
      | Some succs ->
          Array.iter
            (fun v ->
              incr ops;
              if owns frag v then (
                if not (Hashtbl.mem visited v) then (
                  Hashtbl.replace visited v ();
                  if dst_owned && v = dst then reached_dst := true;
                  Queue.add v q))
              else
                match assoc_sorted frag.gf_ext v with
                | Some coords -> ext := coords :: !ext
                | None -> assert false)
            succs
    done;
    if !reached_dst then Formula.true_
    else
      Formula.or_
        (List.map
           (fun (fid, slot) -> Formula.var (Var.Qual (fid, slot)))
           (List.sort_uniq compare !ext))
  in
  let k = Array.length frag.gf_entries in
  let vec =
    Array.init (n_starts frag ~src) (fun i ->
        if i < k then eval_from frag.gf_entries.(i) else eval_from src)
  in
  (vec, !ops)

module Formula = Pax_bool.Formula
module Var = Pax_bool.Var

type fragment = {
  gf_id : int;
  gf_nodes : int array;
  gf_adj : (int * int array) array;
  gf_entries : int array;
  gf_ext : (int * (int * int)) array;
}

type partition = {
  n_nodes : int;
  n_edges : int;
  owner : int array;
  frags : fragment array;
  n_entries : int;
}

let sort_uniq_array l = Array.of_list (List.sort_uniq compare l)

(* Binary search over an ascending int array. *)
let mem_sorted a x =
  let lo = ref 0 and hi = ref (Array.length a - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = x then found := true
    else if a.(mid) < x then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let index_sorted a x =
  let lo = ref 0 and hi = ref (Array.length a - 1) and idx = ref (-1) in
  while !idx < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = x then idx := mid
    else if a.(mid) < x then lo := mid + 1
    else hi := mid - 1
  done;
  !idx

(* Lookup in an ascending (key, value) array. *)
let assoc_sorted a x =
  let lo = ref 0 and hi = ref (Array.length a - 1) and r = ref None in
  while !r = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let k, v = a.(mid) in
    if k = x then r := Some v else if k < x then lo := mid + 1 else hi := mid - 1
  done;
  !r

let partition ~n ~edges ~owner =
  if n < 1 then invalid_arg "Gfrag.partition: need at least one node";
  if Array.length owner <> n then
    invalid_arg "Gfrag.partition: owner array must have one entry per node";
  let n_frags = 1 + Array.fold_left max 0 owner in
  Array.iter
    (fun f -> if f < 0 then invalid_arg "Gfrag.partition: negative owner")
    owner;
  let edges = List.sort_uniq compare edges in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Gfrag.partition: edge endpoint out of range")
    edges;
  let succs = Array.make n [] in
  List.iter (fun (u, v) -> succs.(u) <- v :: succs.(u)) (List.rev edges);
  (* Entry nodes: targets of cross edges, grouped by owning fragment. *)
  let entry_lists = Array.make n_frags [] in
  List.iter
    (fun (u, v) ->
      if owner.(u) <> owner.(v) then entry_lists.(owner.(v)) <- v :: entry_lists.(owner.(v)))
    edges;
  let entries = Array.map sort_uniq_array entry_lists in
  (* Global entry coordinates: node -> (owner fid, slot). *)
  let coord_of v =
    let fid = owner.(v) in
    (fid, index_sorted entries.(fid) v)
  in
  let frags =
    Array.init n_frags (fun fid ->
        let nodes = ref [] in
        for v = n - 1 downto 0 do
          if owner.(v) = fid then nodes := v :: !nodes
        done;
        let gf_nodes = Array.of_list !nodes in
        let adj = ref [] and ext = ref [] in
        Array.iter
          (fun u ->
            match succs.(u) with
            | [] -> ()
            | l ->
                adj := (u, Array.of_list l) :: !adj;
                List.iter (fun v -> if owner.(v) <> fid then ext := v :: !ext) l)
          gf_nodes;
        let gf_ext =
          Array.map (fun v -> (v, coord_of v)) (sort_uniq_array !ext)
        in
        {
          gf_id = fid;
          gf_nodes;
          gf_adj = Array.of_list (List.rev !adj);
          gf_entries = entries.(fid);
          gf_ext;
        })
  in
  {
    n_nodes = n;
    n_edges = List.length edges;
    owner;
    frags;
    n_entries = Array.fold_left (fun acc e -> acc + Array.length e) 0 entries;
  }

let n_fragments g = Array.length g.frags
let fragment g fid = g.frags.(fid)
let owner_of g v = g.owner.(v)
let query_string ~src ~dst = Printf.sprintf "reach %d %d" src dst

let parse_query text =
  match String.split_on_char ' ' (String.trim text) with
  | "reach" :: rest -> (
      match List.filter (fun s -> s <> "") rest with
      | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some s, Some d when s >= 0 && d >= 0 -> Some (s, d)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Wire image                                                         *)
(* ------------------------------------------------------------------ *)

(* Self-contained codec so a fragment can travel inside a
   [Wire.frag_image] (pax_wire cannot depend on this library, so the
   image is an opaque string at the wire layer).  All fields are
   non-negative ints; LEB128-style varints, a 4-byte magic up front.
   The decoder is total and revalidates the sortedness invariants the
   binary searches above rely on. *)

let magic = "pgf1"

let enc_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7F in
    n := !n lsr 7;
    if !n = 0 then (
      Buffer.add_char buf (Char.chr b);
      continue := false)
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

exception Bad_image

let dec_varint s pos =
  let n = ref 0 and shift = ref 0 and pos = ref pos and fin = ref false in
  while not !fin do
    if !pos >= String.length s || !shift > 62 then raise Bad_image;
    let b = Char.code s.[!pos] in
    incr pos;
    n := !n lor ((b land 0x7F) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then fin := true
  done;
  (!n, !pos)

let enc_array buf enc a =
  enc_varint buf (Array.length a);
  Array.iter (enc buf) a

let dec_array s pos dec =
  let len, pos = dec_varint s pos in
  if len > String.length s - pos then raise Bad_image;
  let pos = ref pos in
  let a =
    Array.init len (fun _ ->
        let v, p = dec s !pos in
        pos := p;
        v)
  in
  (a, !pos)

let encode frag =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  enc_varint buf frag.gf_id;
  enc_array buf enc_varint frag.gf_nodes;
  enc_array buf
    (fun buf (u, succs) ->
      enc_varint buf u;
      enc_array buf enc_varint succs)
    frag.gf_adj;
  enc_array buf enc_varint frag.gf_entries;
  enc_array buf
    (fun buf (v, (fid, slot)) ->
      enc_varint buf v;
      enc_varint buf fid;
      enc_varint buf slot)
    frag.gf_ext;
  Buffer.contents buf

let ascending key a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if key a.(i - 1) >= key a.(i) then ok := false
  done;
  !ok

let decode s =
  match
    if
      String.length s < String.length magic
      || String.sub s 0 (String.length magic) <> magic
    then raise Bad_image;
    let pos = String.length magic in
    let gf_id, pos = dec_varint s pos in
    let gf_nodes, pos = dec_array s pos dec_varint in
    let gf_adj, pos =
      dec_array s pos (fun s pos ->
          let u, pos = dec_varint s pos in
          let succs, pos = dec_array s pos dec_varint in
          ((u, succs), pos))
    in
    let gf_entries, pos = dec_array s pos dec_varint in
    let gf_ext, pos =
      dec_array s pos (fun s pos ->
          let v, pos = dec_varint s pos in
          let fid, pos = dec_varint s pos in
          let slot, pos = dec_varint s pos in
          ((v, (fid, slot)), pos))
    in
    if pos <> String.length s then raise Bad_image;
    let frag = { gf_id; gf_nodes; gf_adj; gf_entries; gf_ext } in
    if
      ascending Fun.id gf_nodes
      && ascending fst gf_adj
      && ascending Fun.id gf_entries
      && ascending fst gf_ext
      && Array.for_all
           (fun (_, succs) -> Array.length succs > 0 && ascending Fun.id succs)
           gf_adj
    then frag
    else raise Bad_image
  with
  | frag -> Some frag
  | exception Bad_image -> None

let owns frag v = mem_sorted frag.gf_nodes v

let n_starts frag ~src =
  let k = Array.length frag.gf_entries in
  if owns frag src && not (mem_sorted frag.gf_entries src) then k + 1 else k

let src_slot frag ~src =
  if not (owns frag src) then
    invalid_arg "Gfrag.src_slot: fragment does not own the source";
  let i = index_sorted frag.gf_entries src in
  if i >= 0 then i else Array.length frag.gf_entries

let local_eval frag ~src ~dst =
  let ops = ref 0 in
  let dst_owned = owns frag dst in
  let eval_from s =
    incr ops;
    let visited = Hashtbl.create 16 in
    let q = Queue.create () in
    Hashtbl.replace visited s ();
    Queue.add s q;
    let reached_dst = ref (dst_owned && s = dst) in
    let ext = ref [] in
    while (not !reached_dst) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      match assoc_sorted frag.gf_adj u with
      | None -> ()
      | Some succs ->
          Array.iter
            (fun v ->
              incr ops;
              if owns frag v then (
                if not (Hashtbl.mem visited v) then (
                  Hashtbl.replace visited v ();
                  if dst_owned && v = dst then reached_dst := true;
                  Queue.add v q))
              else
                match assoc_sorted frag.gf_ext v with
                | Some coords -> ext := coords :: !ext
                | None -> assert false)
            succs
    done;
    if !reached_dst then Formula.true_
    else
      Formula.or_
        (List.map
           (fun (fid, slot) -> Formula.var (Var.Qual (fid, slot)))
           (List.sort_uniq compare !ext))
  in
  let k = Array.length frag.gf_entries in
  let vec =
    Array.init (n_starts frag ~src) (fun i ->
        if i < k then eval_from frag.gf_entries.(i) else eval_from src)
  in
  (vec, !ops)

(* Fragmentation invariants: disjointness, coverage, annotations,
   reassembly; plus the cut strategies.  Includes qcheck properties over
   random documents and cut sets. *)

module Tree = Pax_xml.Tree
module Parser = Pax_xml.Parser
module Fragment = Pax_frag.Fragment
module G = QCheck.Gen

let doc =
  Parser.parse_string
    "<r><a><b><c>x</c></b></a><a><b/></a><d><e><f><g/></f></e></d></r>"

let id_of_path path =
  (* Find a node by a / tag path, first match. *)
  let rec go (n : Tree.node) = function
    | [] -> Some n.Tree.id
    | tag :: rest -> (
        match List.find_opt (fun (c : Tree.node) -> c.Tree.tag = tag) n.Tree.children with
        | Some c -> go c rest
        | None -> None)
  in
  match go doc.Tree.root path with
  | Some id -> id
  | None -> Alcotest.fail ("no node at " ^ String.concat "/" path)

let test_basic_fragmentize () =
  let cuts = [ id_of_path [ "a"; "b" ]; id_of_path [ "d"; "e"; "f" ] ] in
  let ft = Fragment.fragmentize doc ~cuts in
  Alcotest.(check int) "three fragments" 3 (Fragment.n_fragments ft);
  (match Fragment.check ft with Ok () -> () | Error e -> Alcotest.fail e);
  let f1 = Fragment.fragment ft 1 in
  Alcotest.(check (list string)) "annotation a/b" [ "a"; "b" ] f1.Fragment.ann;
  let f2 = Fragment.fragment ft 2 in
  Alcotest.(check (list string)) "annotation d/e/f" [ "d"; "e"; "f" ] f2.Fragment.ann;
  Alcotest.(check (list string)) "spine includes root" [ "r"; "a"; "b" ]
    (Fragment.spine ft 1);
  Alcotest.(check bool) "reassemble" true
    (Tree.equal_structure (Fragment.reassemble ft) doc.Tree.root)

let test_nested_fragments () =
  let cuts = [ id_of_path [ "d" ]; id_of_path [ "d"; "e"; "f" ]; id_of_path [ "d"; "e"; "f"; "g" ] ] in
  let ft = Fragment.fragmentize doc ~cuts in
  Alcotest.(check int) "four fragments" 4 (Fragment.n_fragments ft);
  (match Fragment.check ft with Ok () -> () | Error e -> Alcotest.fail e);
  (* d's fragment contains the virtual for f, whose fragment contains g's. *)
  let parents =
    List.init 4 (fun fid -> (Fragment.fragment ft fid).Fragment.parent)
  in
  Alcotest.(check (list (option int))) "chain of parents"
    [ None; Some 0; Some 1; Some 2 ] parents;
  Alcotest.(check bool) "reassemble nested" true
    (Tree.equal_structure (Fragment.reassemble ft) doc.Tree.root)

let test_trivial () =
  let ft = Fragment.trivial doc in
  Alcotest.(check int) "one fragment" 1 (Fragment.n_fragments ft);
  Alcotest.(check bool) "reassemble trivial" true
    (Tree.equal_structure (Fragment.reassemble ft) doc.Tree.root)

let test_root_cut_ignored () =
  let ft = Fragment.fragmentize doc ~cuts:[ doc.Tree.root.Tree.id ] in
  Alcotest.(check int) "root cut ignored" 1 (Fragment.n_fragments ft)

let test_cuts_by_size () =
  let cuts = Fragment.cuts_by_size doc ~budget:3 in
  let ft = Fragment.fragmentize doc ~cuts in
  (match Fragment.check ft with Ok () -> () | Error e -> Alcotest.fail e);
  Array.iter
    (fun f ->
      Alcotest.(check bool) "fragments not wildly over budget" true
        (Fragment.fragment_node_count f <= 4 * 3))
    ft.Fragment.fragments;
  Alcotest.(check bool) "actually fragmented" true (Fragment.n_fragments ft > 1)

let test_cuts_by_tag () =
  let cuts = Fragment.cuts_by_tag doc ~tag:"b" in
  Alcotest.(check int) "two b cuts" 2 (List.length cuts);
  let ft = Fragment.fragmentize doc ~cuts in
  Alcotest.(check int) "three fragments" 3 (Fragment.n_fragments ft);
  match Fragment.check ft with Ok () -> () | Error e -> Alcotest.fail e

let test_measures () =
  let cuts = [ id_of_path [ "d" ] ] in
  let ft = Fragment.fragmentize doc ~cuts in
  let total =
    Array.fold_left
      (fun acc f -> acc + Fragment.fragment_node_count f)
      0 ft.Fragment.fragments
  in
  Alcotest.(check int) "counts cover the document" doc.Tree.node_count total;
  Alcotest.(check bool) "byte size positive" true
    (Fragment.fragment_byte_size (Fragment.fragment ft 1) > 0)

(* Properties over random documents and cuts. *)
let prop_scenario =
  QCheck.make
    ~print:(fun (d, cuts) ->
      Format.asprintf "%a / cuts %s" Tree.pp d.Tree.root
        (String.concat "," (List.map string_of_int cuts)))
    (fun st ->
      let d = Test_helpers.Gen.doc st in
      let cuts = Test_helpers.Gen.cuts d st in
      (d, cuts))

let props =
  [
    QCheck.Test.make ~name:"fragmentize is checkable and reassembles" ~count:500
      prop_scenario (fun (d, cuts) ->
        let ft = Fragment.fragmentize d ~cuts in
        (match Fragment.check ft with
        | Ok () -> ()
        | Error e -> QCheck.Test.fail_report e);
        Tree.equal_structure (Fragment.reassemble ft) d.Tree.root);
    QCheck.Test.make ~name:"parents precede children" ~count:300 prop_scenario
      (fun (d, cuts) ->
        let ft = Fragment.fragmentize d ~cuts in
        Array.for_all
          (fun f ->
            match f.Fragment.parent with
            | Some p -> p < f.Fragment.fid
            | None -> f.Fragment.fid = 0)
          ft.Fragment.fragments);
    QCheck.Test.make ~name:"spine ends at the fragment root tag" ~count:300
      prop_scenario (fun (d, cuts) ->
        let ft = Fragment.fragmentize d ~cuts in
        Array.for_all
          (fun f ->
            match List.rev (Fragment.spine ft f.Fragment.fid) with
            | last :: _ -> last = f.Fragment.root.Tree.tag
            | [] -> false)
          ft.Fragment.fragments);
  ]

let () =
  Alcotest.run "fragment"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_basic_fragmentize;
          Alcotest.test_case "nested" `Quick test_nested_fragments;
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "root cut ignored" `Quick test_root_cut_ignored;
          Alcotest.test_case "cuts by size" `Quick test_cuts_by_size;
          Alcotest.test_case "cuts by tag" `Quick test_cuts_by_tag;
          Alcotest.test_case "measures" `Quick test_measures;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]

(* On-disk fragment stores: save/load round trips, corruption handling,
   and query equivalence across a round trip. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Fragment = Pax_frag.Fragment
module Store = Pax_frag.Store
module H = Test_helpers

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_store_test_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let clientele_store () =
  let c = H.Data.clientele () in
  (c, H.Data.clientele_ftree c)

let test_roundtrip () =
  with_tmp_dir (fun dir ->
      let c, ft = clientele_store () in
      Store.save ft ~dir;
      Alcotest.(check bool) "looks like a store" true (Store.is_store dir);
      let loaded = Store.load ~dir in
      Alcotest.(check int) "same fragment count" (Fragment.n_fragments ft)
        (Fragment.n_fragments loaded);
      Alcotest.(check bool) "reassembly matches the original document" true
        (Tree.equal_structure (Fragment.reassemble loaded) c.H.Data.doc.Tree.root);
      (* Annotations survive. *)
      Array.iter2
        (fun (a : Fragment.fragment) (b : Fragment.fragment) ->
          Alcotest.(check (list string)) "annotation" a.Fragment.ann b.Fragment.ann;
          Alcotest.(check (option int)) "parent" a.Fragment.parent b.Fragment.parent)
        ft.Fragment.fragments loaded.Fragment.fragments)

let test_queries_survive_roundtrip () =
  with_tmp_dir (fun dir ->
      let _, ft = clientele_store () in
      Store.save ft ~dir;
      let loaded = Store.load ~dir in
      let cl = Pax_dist.Cluster.one_site_per_fragment loaded in
      List.iter
        (fun qs ->
          let q = Query.of_string qs in
          let oracle = Semantics.eval_ids q.Query.ast (Fragment.reassemble loaded) in
          let r = Pax_core.Pax2.run ~annotations:true cl q in
          Alcotest.(check (list int)) (qs ^ " on the loaded store") oracle
            r.Pax_core.Run_result.answer_ids)
        [
          "//broker[//stock/code/text() = \"GOOG\"]/name";
          "client[country/text() = \"US\"]/broker/name";
          "//stock[qt >= 75]/code";
        ])

let test_xmark_roundtrip () =
  with_tmp_dir (fun dir ->
      let doc = Pax_xmark.Xmark.doc ~seed:21 ~total_nodes:2500 ~n_sites:2 in
      let ft =
        Fragment.fragmentize doc
          ~cuts:(Fragment.cuts_by_size doc ~budget:400)
      in
      Store.save ft ~dir;
      let loaded = Store.load ~dir in
      (match Fragment.check loaded with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "xmark reassembly" true
        (Tree.equal_structure (Fragment.reassemble loaded) doc.Tree.root))

let test_not_a_store () =
  Alcotest.(check bool) "missing dir" false (Store.is_store "/nonexistent-path");
  with_tmp_dir (fun dir ->
      Sys.mkdir dir 0o755;
      Alcotest.(check bool) "empty dir" false (Store.is_store dir))

let test_corrupt_manifest () =
  with_tmp_dir (fun dir ->
      let _, ft = clientele_store () in
      Store.save ft ~dir;
      let manifest = Filename.concat dir "MANIFEST" in
      let oc = open_out manifest in
      output_string oc "pax-store 1 fragments=2\nfragment 0 parent=- ann=\n";
      close_out oc;
      match Store.load ~dir with
      | exception Store.Corrupt _ -> ()
      | _ -> Alcotest.fail "corrupt manifest must be rejected")

let test_missing_fragment_file () =
  with_tmp_dir (fun dir ->
      let _, ft = clientele_store () in
      Store.save ft ~dir;
      Sys.remove (Filename.concat dir "fragment_2.xml");
      match Store.load ~dir with
      | exception (Store.Corrupt _ | Sys_error _) -> ()
      | _ -> Alcotest.fail "missing fragment file must be rejected")

(* Attribute-rich data whose text and attribute values all need XML
   escaping — quotes, angle brackets, ampersands, entity-looking
   strings — must survive save/load byte-exactly (ids are reassigned,
   values are not). *)
let test_escaping_roundtrip () =
  with_tmp_dir (fun dir ->
      let b = Tree.builder () in
      let nasty_attrs =
        [
          ("currency", "\"USD\" & <EUR>");
          ("note", "a < b > c & d");
          ("entity-ish", "&amp; &lt; &quot; &#38;");
          ("empty", "");
          ("spaces", "  leading and trailing  ");
        ]
      in
      let item i =
        Tree.elem b "item"
          ~attrs:[ ("id", Printf.sprintf "item<%d>" i); ("featured", "\"yes\"") ]
          [
            Tree.elem b "name" ~text:"Tom & Jerry <limited \"edition\">" [];
            Tree.elem b "price" ~attrs:nasty_attrs ~text:"9.99 < 10 & > 9" [];
          ]
      in
      let root =
        Tree.elem b "regions"
          [
            Tree.elem b "africa" [ item 1; item 2 ];
            Tree.elem b "asia" [ item 3 ];
          ]
      in
      let doc = { Tree.root; node_count = Tree.allocated b } in
      let ft = Fragment.fragmentize doc ~cuts:(Fragment.cuts_by_tag doc ~tag:"item") in
      Store.save ft ~dir;
      let loaded = Store.load ~dir in
      Alcotest.(check bool) "escaped structure survives" true
        (Tree.equal_structure (Fragment.reassemble loaded) root);
      (* Spot-check one attribute value through the whole pipeline. *)
      let found = ref None in
      Tree.iter
        (fun n -> if n.Tree.tag = "price" && !found = None then found := Some n)
        (Fragment.reassemble loaded);
      match !found with
      | None -> Alcotest.fail "price node lost"
      | Some n ->
          Alcotest.(check (option string)) "nasty attribute value"
            (Some "\"USD\" & <EUR>") (Tree.attr n "currency");
          Alcotest.(check (option string)) "entity-looking value"
            (Some "&amp; &lt; &quot; &#38;") (Tree.attr n "entity-ish"))

let test_virtual_node_pi_roundtrip () =
  (* The XML layer itself round-trips the placeholder PI. *)
  let b = Tree.builder () in
  let t =
    Tree.elem b "r" [ Tree.leaf b "x" "1"; Tree.virtual_node b 3; Tree.leaf b "y" "2" ]
  in
  let printed = Pax_xml.Printer.to_string t in
  let reparsed = (Pax_xml.Parser.parse_string printed).Tree.root in
  Alcotest.(check bool) "virtual node survives print/parse" true
    (Tree.equal_structure t reparsed)

let () =
  Random.self_init ();
  Alcotest.run "store"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "save/load" `Quick test_roundtrip;
          Alcotest.test_case "queries survive" `Quick test_queries_survive_roundtrip;
          Alcotest.test_case "xmark store" `Quick test_xmark_roundtrip;
          Alcotest.test_case "escaping" `Quick test_escaping_roundtrip;
          Alcotest.test_case "virtual-node PI" `Quick test_virtual_node_pi_roundtrip;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "not a store" `Quick test_not_a_store;
          Alcotest.test_case "corrupt manifest" `Quick test_corrupt_manifest;
          Alcotest.test_case "missing fragment" `Quick test_missing_fragment_file;
        ] );
    ]

(* Regression pin for the visit-count matrix of the cost table (the
   structural content of the §3.4 guarantees): exact visit counts per
   (query class, algorithm, annotations) on the flat FT1 layout, plus a
   deep-chain stress test for all engines.  The counts are asserted
   from the structured trace (logical visits) as well as from the live
   counters, and a fault-plan section checks that retries inflate
   neither the logical visit count nor the logical traffic. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Fault = Pax_dist.Fault
module Trace = Pax_dist.Trace
module Run_result = Pax_core.Run_result
module Xmark = Pax_xmark.Xmark

(* A small FT1: root + 4 site fragments on 5 machines. *)
let cluster () =
  let doc = Xmark.doc ~seed:4 ~total_nodes:2500 ~n_sites:4 in
  let sites = Tree.select (fun n -> n.Tree.tag = "site") doc.Tree.root in
  let cuts =
    match sites with
    | _ :: rest -> List.map (fun (n : Tree.node) -> n.Tree.id) rest
    | [] -> []
  in
  Cluster.one_site_per_fragment (Fragment.fragmentize doc ~cuts)

(* Both accountings of the same quantity: the live counter and the
   post-hoc count of (site, round) pairs in the trace must agree. *)
let max_visits run annotations qs =
  let cl = cluster () in
  let r : Run_result.t = run ~annotations cl (Query.of_string qs) in
  let from_report = r.Run_result.report.Cluster.max_visits in
  let from_trace = Trace.max_logical_visits (Run_result.trace_exn r) in
  Alcotest.(check int)
    (Printf.sprintf "trace agrees with counter on %s" qs)
    from_report from_trace;
  from_report

(* The matrix, as measured and recorded in EXPERIMENTS.md. *)
let test_matrix () =
  let cases =
    [
      (* query, algo name, run, annotations, expected max visits *)
      (Xmark.q1, "PaX3-NA", Pax_core.Pax3.run, false, 2);
      (Xmark.q1, "PaX3-XA", Pax_core.Pax3.run, true, 1);
      (Xmark.q1, "PaX2-NA", Pax_core.Pax2.run, false, 2);
      (Xmark.q1, "PaX2-XA", Pax_core.Pax2.run, true, 1);
      (Xmark.q2, "PaX3-NA", Pax_core.Pax3.run, false, 2);
      (Xmark.q2, "PaX2-XA", Pax_core.Pax2.run, true, 1);
      (Xmark.q3, "PaX3-NA", Pax_core.Pax3.run, false, 3);
      (Xmark.q3, "PaX3-XA", Pax_core.Pax3.run, true, 2);
      (Xmark.q3, "PaX2-NA", Pax_core.Pax2.run, false, 2);
      (Xmark.q3, "PaX2-XA", Pax_core.Pax2.run, true, 1);
      (Xmark.q4, "PaX3-NA", Pax_core.Pax3.run, false, 3);
      (Xmark.q4, "PaX2-NA", Pax_core.Pax2.run, false, 2);
    ]
  in
  List.iter
    (fun (qs, name,
          (run :
            ?annotations:bool ->
            ?flat:bool ->
            Cluster.t ->
            Query.t ->
            Run_result.t),
          annotations, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "%s on %s" name qs)
        expected
        (max_visits (fun ~annotations cl q -> run ~annotations cl q) annotations qs))
    cases

(* A pathological 3000-deep chain: recursion depth, Dos chains and the
   streaming stack all hold up, and every engine agrees. *)
let test_deep_chain () =
  let b = Tree.builder () in
  let rec chain n = if n = 0 then Tree.leaf b "tip" "42" else Tree.elem b "link" [ chain (n - 1) ] in
  let root = Tree.elem b "root" [ chain 3000 ] in
  let doc = Tree.doc_of_root root in
  let q = Query.of_string "//link[tip]/tip" in
  let oracle = Semantics.eval_ids q.Query.ast root in
  Alcotest.(check int) "one answer at the bottom" 1 (List.length oracle);
  Alcotest.(check (list int)) "centralized" oracle (Pax_core.Centralized.eval_ids q root);
  (* Fragment the chain every ~500 nodes: a 7-deep fragment chain. *)
  let ft = Fragment.fragmentize doc ~cuts:(Fragment.cuts_by_size doc ~budget:500) in
  Alcotest.(check bool) "several fragments" true (Fragment.n_fragments ft > 3);
  let cl = Cluster.one_site_per_fragment ft in
  List.iter
    (fun (name, run) ->
      let r : Run_result.t = run cl q in
      Alcotest.(check (list int)) name oracle r.Run_result.answer_ids)
    [
      ("PaX3 deep", fun cl q -> Pax_core.Pax3.run cl q);
      ("PaX2 deep", fun cl q -> Pax_core.Pax2.run cl q);
      ("PaX2-XA deep", fun cl q -> Pax_core.Pax2.run ~annotations:true cl q);
    ];
  (* Streaming over the same chain. *)
  let stream =
    Pax_core.Stream_eval.over_string q (Pax_xml.Printer.to_string root)
  in
  Alcotest.(check int) "stream finds it too" 1
    (List.length stream.Pax_core.Stream_eval.matches);
  Alcotest.(check bool) "stream depth tracked" true
    (stream.Pax_core.Stream_eval.max_depth >= 3000)

(* Under a fault plan that forces stage-1 replays, the *logical* visit
   bound still holds — retries of a dropped reply re-deliver to the
   same (site, round) and may not inflate the count. *)
let test_bound_survives_retries () =
  let cases =
    [
      ("PaX2", (fun cl q -> Pax_core.Pax2.run cl q), 2);
      ("PaX3", (fun cl q -> Pax_core.Pax3.run cl q), 3);
    ]
  in
  List.iter
    (fun (name, run, bound) ->
      let cl = cluster () in
      Cluster.set_fault cl
        (Fault.all
           [
             Fault.lose_reply ~times:2 ~site:1 ~round:0 ();
             Fault.crash_site ~down_for:1 ~site:2 ~round:0 ();
           ]);
      let r : Run_result.t = run cl (Query.of_string Xmark.q1) in
      let tr = Run_result.trace_exn r in
      Alcotest.(check bool)
        (name ^ ": replays happened") true
        (Trace.physical_visits tr ~site:1 > Trace.logical_visits tr ~site:1);
      Alcotest.(check bool)
        (name ^ ": logical visits within bound") true
        (Trace.max_logical_visits tr <= bound);
      Alcotest.(check bool)
        (name ^ ": counter agrees") true
        (r.Run_result.report.Cluster.max_visits <= bound))
    cases

(* The communication side of the §6 cost model, asserted from the
   trace: control traffic (everything that is not Answers/Tree_data)
   stays within c·|Q|·|FT| logical bytes, tree data is never shipped,
   and an active fault plan changes the physical byte count but not
   the logical one. *)
let test_traffic_bound () =
  List.iter
    (fun (name, run) ->
      let q = Query.of_string Xmark.q3 in
      let cl = cluster () in
      let r : Run_result.t = run cl q in
      let tr = Run_result.trace_exn r in
      let budget =
        200 * Query.size q
        * Fragment.n_fragments (Cluster.ftree cl)
      in
      let clean_logical = Trace.logical_control_bytes tr in
      Alcotest.(check bool)
        (name ^ ": control bytes within c|Q||FT|") true
        (clean_logical <= budget);
      Alcotest.(check int)
        (name ^ ": no tree data shipped") 0
        (Trace.logical_bytes tr ~kind:Trace.Tree_data);
      (* Same run under dropped vectors: retransmissions are physical
         overhead only. *)
      Cluster.set_fault cl
        (Fault.drop_message (fun c -> c.Fault.m_kind = Trace.Vectors));
      let r' : Run_result.t = run cl q in
      let tr' = Run_result.trace_exn r' in
      Alcotest.(check int)
        (name ^ ": logical traffic unchanged by retries") clean_logical
        (Trace.logical_control_bytes tr');
      Alcotest.(check bool)
        (name ^ ": physical traffic grew") true
        (r'.Run_result.report.Cluster.control_bytes > clean_logical))
    [
      ("PaX2", fun cl q -> Pax_core.Pax2.run cl q);
      ("PaX3", fun cl q -> Pax_core.Pax3.run cl q);
    ]

let test_cluster_guard () =
  let c = Test_helpers.Data.clientele () in
  let ft = Test_helpers.Data.clientele_ftree c in
  match Cluster.create ~ftree:ft ~n_sites:0 ~assign:(fun _ -> 0) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero sites must be rejected"

let () =
  Alcotest.run "visits_matrix"
    [
      ( "matrix",
        [
          Alcotest.test_case "visit counts per configuration" `Quick test_matrix;
          Alcotest.test_case "bounds survive retries" `Quick
            test_bound_survives_retries;
          Alcotest.test_case "traffic bound from trace" `Quick
            test_traffic_bound;
          Alcotest.test_case "deep chains" `Quick test_deep_chain;
          Alcotest.test_case "cluster guard" `Quick test_cluster_guard;
        ] );
    ]

(* Batched evaluation: per-query answers match solo runs, and the whole
   batch still fits in two visits per site. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Cluster = Pax_dist.Cluster
module H = Test_helpers

let c = H.Data.clientele ()

let queries =
  [
    "client/name";
    "//broker[//stock/code/text() = \"GOOG\"]/name";
    "client[country/text() = \"US\"]//stock/qt";
    "//market[name/text() = \"NASDAQ\"]";
    "//nothing";
  ]

let run_batch ?annotations () =
  let qs = List.map Query.of_string queries in
  let cl = H.Data.clientele_cluster c in
  Pax_core.Batch.run ?annotations cl qs

let test_each_query_correct () =
  let batch = run_batch () in
  List.iter
    (fun (q, answers) ->
      let expected = Semantics.eval_ids q.Query.ast c.doc.Tree.root in
      Alcotest.(check (list int)) (q.Query.source ^ " in batch") expected
        (List.map (fun (n : Tree.node) -> n.Tree.id) answers))
    batch.Pax_core.Batch.results

let test_two_visits_for_whole_batch () =
  let batch = run_batch () in
  Alcotest.(check bool) "five queries, still <= 2 visits" true
    (batch.Pax_core.Batch.report.Cluster.max_visits <= 2)

let test_annotations_variant () =
  let batch = run_batch ~annotations:true () in
  List.iter
    (fun (q, answers) ->
      let expected = Semantics.eval_ids q.Query.ast c.doc.Tree.root in
      Alcotest.(check (list int)) (q.Query.source ^ " in XA batch") expected
        (List.map (fun (n : Tree.node) -> n.Tree.id) answers))
    batch.Pax_core.Batch.results;
  Alcotest.(check bool) "XA batch <= 2 visits" true
    (batch.Pax_core.Batch.report.Cluster.max_visits <= 2)

let test_batch_beats_sequential_visits () =
  let qs = List.map Query.of_string queries in
  let cl = H.Data.clientele_cluster c in
  let batch = Pax_core.Batch.run cl qs in
  let solo_visits =
    List.fold_left
      (fun acc q ->
        let r = Pax_core.Pax2.run cl q in
        acc + r.Pax_core.Run_result.report.Cluster.max_visits)
      0 qs
  in
  Alcotest.(check bool) "batch visits strictly below the sum of solo runs" true
    (batch.Pax_core.Batch.report.Cluster.max_visits < solo_visits)

let test_empty_batch () =
  let cl = H.Data.clientele_cluster c in
  let batch = Pax_core.Batch.run cl [] in
  Alcotest.(check int) "no results" 0 (List.length batch.Pax_core.Batch.results)

let prop_random =
  QCheck.Test.make ~name:"random batches agree with the oracle" ~count:150
    QCheck.(
      make
        (fun st ->
           let s = H.Gen.scenario st in
           let extra = H.Gen.query st in
           (s, extra)))
    (fun (s, extra) ->
      let q1 = Query.of_ast s.H.Gen.s_query in
      let q2 = Query.of_ast extra in
      let batch = Pax_core.Batch.run s.H.Gen.s_cluster [ q1; q2 ] in
      List.for_all2
        (fun ast (_, answers) ->
          Semantics.eval_ids ast s.H.Gen.s_doc.Tree.root
          = List.map (fun (n : Tree.node) -> n.Tree.id) answers)
        [ s.H.Gen.s_query; extra ]
        batch.Pax_core.Batch.results)

let () =
  Alcotest.run "batch"
    [
      ( "batch",
        [
          Alcotest.test_case "answers per query" `Quick test_each_query_correct;
          Alcotest.test_case "two visits total" `Quick
            test_two_visits_for_whole_batch;
          Alcotest.test_case "with annotations" `Quick test_annotations_variant;
          Alcotest.test_case "beats sequential" `Quick
            test_batch_beats_sequential_visits;
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
          QCheck_alcotest.to_alcotest prop_random;
        ] );
    ]

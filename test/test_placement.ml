(* Placement strategies: balance quality and the effect on parallel
   cost. *)

module Tree = Pax_xml.Tree
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Placement = Pax_dist.Placement
module Query = Pax_xpath.Query
module Xmark = Pax_xmark.Xmark

(* A deliberately skewed document: fragments of very different sizes. *)
let ft =
  let doc = Xmark.doc ~seed:9 ~total_nodes:12_000 ~n_sites:3 in
  let cuts = Fragment.cuts_by_size doc ~budget:900 in
  Fragment.fragmentize doc ~cuts

let test_round_robin () =
  Alcotest.(check int) "0 -> 0" 0 (Placement.round_robin ~n_sites:3 0);
  Alcotest.(check int) "4 -> 1" 1 (Placement.round_robin ~n_sites:3 4)

let test_balanced_beats_round_robin () =
  let n_sites = 4 in
  let spread assign =
    let loads = Placement.loads ft ~n_sites assign in
    Array.fold_left max 0 loads
  in
  let rr = spread (Placement.round_robin ~n_sites) in
  let bal = spread (Placement.balanced ft ~n_sites) in
  Alcotest.(check bool)
    (Printf.sprintf "balanced max load (%d) <= round robin (%d)" bal rr)
    true (bal <= rr)

let test_loads_cover_everything () =
  let n_sites = 3 in
  let assign = Placement.balanced ft ~n_sites in
  let loads = Placement.loads ft ~n_sites assign in
  let total = Array.fold_left ( + ) 0 loads in
  let expected =
    Array.fold_left
      (fun acc f -> acc + Fragment.fragment_byte_size f)
      0 ft.Fragment.fragments
  in
  Alcotest.(check int) "loads sum to the document" expected total

let test_pack_respects_capacity () =
  let biggest =
    Array.fold_left
      (fun acc f -> max acc (Fragment.fragment_byte_size f))
      0 ft.Fragment.fragments
  in
  let cap = biggest * 2 in
  let assign, n_sites = Placement.pack ft ~max_bytes:cap in
  let loads = Placement.loads ft ~n_sites assign in
  Array.iteri
    (fun s l ->
      Alcotest.(check bool) (Printf.sprintf "site %d under capacity" s) true
        (l <= cap))
    loads

let test_balanced_placement_is_correct_and_faster () =
  let n_sites = 3 in
  let q = Query.of_string Xmark.q3 in
  let cl_rr = Placement.cluster_round_robin ft ~n_sites in
  let cl_bal = Placement.cluster_balanced ft ~n_sites in
  let r_rr = Pax_core.Pax2.run cl_rr q in
  let r_bal = Pax_core.Pax2.run cl_bal q in
  Alcotest.(check (list int)) "same answers under any placement"
    r_rr.Pax_core.Run_result.answer_ids r_bal.Pax_core.Run_result.answer_ids;
  (* Identical work overall: placement only moves it between sites. *)
  Alcotest.(check int) "same total ops under any placement"
    r_rr.Pax_core.Run_result.report.Cluster.total_ops
    r_bal.Pax_core.Run_result.report.Cluster.total_ops;
  (* The byte-load bound that drives the parallel-cost guarantee. *)
  let max_load assign =
    Array.fold_left max 0 (Placement.loads ft ~n_sites assign)
  in
  Alcotest.(check bool) "balanced max byte load not larger" true
    (max_load (Placement.balanced ft ~n_sites)
    <= max_load (Placement.round_robin ~n_sites))

let () =
  Alcotest.run "placement"
    [
      ( "placement",
        [
          Alcotest.test_case "round robin" `Quick test_round_robin;
          Alcotest.test_case "balanced beats round robin" `Quick
            test_balanced_beats_round_robin;
          Alcotest.test_case "loads cover everything" `Quick
            test_loads_cover_everything;
          Alcotest.test_case "pack respects capacity" `Quick
            test_pack_respects_capacity;
          Alcotest.test_case "balanced is correct and faster" `Quick
            test_balanced_placement_is_correct_and_faster;
        ] );
    ]

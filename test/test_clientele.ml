(* End-to-end checks on the paper's running example: the clientele tree
   of Fig. 1, fragmented as in Fig. 2, placed on four sites. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Run_result = Pax_core.Run_result

let c = Test_helpers.Data.clientele ()
let ids = Alcotest.(check (list int))

let run_all_algorithms query_text =
  let q = Query.of_string query_text in
  let oracle = Semantics.eval_ids q.Query.ast c.doc.Tree.root in
  let cl = Test_helpers.Data.clientele_cluster c in
  let check_algo name result =
    ids
      (Printf.sprintf "%s agrees with the oracle on %s" name query_text)
      oracle result.Run_result.answer_ids
  in
  check_algo "PaX3-NA" (Pax_core.Pax3.run cl q);
  check_algo "PaX3-XA" (Pax_core.Pax3.run ~annotations:true cl q);
  check_algo "PaX2-NA" (Pax_core.Pax2.run cl q);
  check_algo "PaX2-XA" (Pax_core.Pax2.run ~annotations:true cl q);
  check_algo "Naive" (Pax_core.Naive.run cl q);
  ids
    (Printf.sprintf "centralized agrees on %s" query_text)
    oracle
    (Pax_core.Centralized.eval_ids q c.doc.Tree.root);
  oracle

(* Q' of the introduction: brokers through which GOOG is traded. *)
let test_intro_query () =
  let answer = run_all_algorithms "//broker[//stock/code/text() = \"GOOG\"]/name" in
  ids "all three brokers trade GOOG"
    (List.sort compare [ c.etrade_name; c.bache_name; c.cibc_name ])
    answer

(* Q1 of §2.2: GOOG but not YHOO. *)
let test_q1 () =
  let answer =
    run_all_algorithms
      "//broker[//stock/code/text() = \"GOOG\" and not(//stock/code/text() = \"YHOO\")]/name"
  in
  ids "E*trade is excluded by the negation"
    (List.sort compare [ c.bache_name; c.cibc_name ])
    answer

(* The query of Example 2.1: brokers of US clients trading on NASDAQ. *)
let test_example_2_1 () =
  let answer =
    run_all_algorithms
      "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name"
  in
  ids "E*trade and Bache serve US clients on NASDAQ"
    (List.sort compare [ c.etrade_name; c.bache_name ])
    answer

(* Example 5.1: client/name with annotations prunes F1, F2, F3. *)
let test_example_5_1 () =
  ignore (run_all_algorithms "client/name")

let test_more_queries () =
  List.iter
    (fun s -> ignore (run_all_algorithms s))
    [
      "client";
      "client/broker";
      "//market/name";
      "//stock[buy > 100]/code";
      "client[country/text() = \"Canada\"]//stock/qt";
      "//stock[code/text() = \"GOOG\" and buy >= 374]";
      "client[not(country/text() = \"US\")]/name";
      "*/*/name";
      "//name";
      ".//broker[market]";
      "client[broker/market/stock]/name";
      "//stock[qt < 50 or qt >= 90]/code";
    ]

(* The Boolean query of the introduction via ParBoX. *)
let test_parbox_intro () =
  let cl = Test_helpers.Data.clientele_cluster c in
  let answer, report = Pax_core.Parbox.eval_string cl "//stock/code/text() = \"GOOG\"" in
  Alcotest.(check bool) "someone trades GOOG" true answer;
  Alcotest.(check int) "a single visit per site" 1 report.Cluster.max_visits;
  let answer, _ = Pax_core.Parbox.eval_string cl "//stock/code/text() = \"MSFT\"" in
  Alcotest.(check bool) "nobody trades MSFT" false answer

(* Visit-count guarantees on the running example. *)
let test_visits () =
  let q = Query.of_string "client[country/text() = \"US\"]/broker/name" in
  let cl = Test_helpers.Data.clientele_cluster c in
  let r3 = Pax_core.Pax3.run cl q in
  Alcotest.(check bool) "PaX3 visits each site at most 3 times" true
    (r3.Run_result.report.Cluster.max_visits <= 3);
  let r2 = Pax_core.Pax2.run cl q in
  Alcotest.(check bool) "PaX2 visits each site at most 2 times" true
    (r2.Run_result.report.Cluster.max_visits <= 2)

let test_fragment_tree_shape () =
  let ft = Test_helpers.Data.clientele_ftree c in
  Alcotest.(check int) "five fragments" 5 (Fragment.n_fragments ft);
  (match Fragment.check ft with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "reassembly restores the document" true
    (Tree.equal_structure (Fragment.reassemble ft) c.doc.Tree.root)

let () =
  Alcotest.run "clientele"
    [
      ( "paper-example",
        [
          Alcotest.test_case "intro query Q'" `Quick test_intro_query;
          Alcotest.test_case "query Q1 (§2.2)" `Quick test_q1;
          Alcotest.test_case "Example 2.1" `Quick test_example_2_1;
          Alcotest.test_case "Example 5.1" `Quick test_example_5_1;
          Alcotest.test_case "assorted queries" `Quick test_more_queries;
          Alcotest.test_case "ParBoX Boolean query" `Quick test_parbox_intro;
          Alcotest.test_case "visit guarantees" `Quick test_visits;
          Alcotest.test_case "fragment tree" `Quick test_fragment_tree_shape;
        ] );
    ]

(* The naive set-based semantics (the oracle itself needs a ground
   truth: hand-computed answers on small trees). *)

module Tree = Pax_xml.Tree
module Parser = Pax_xml.Parser
module Parse = Pax_xpath.Parse
module Semantics = Pax_xpath.Semantics

let doc =
  Parser.parse_string
    "<r><a i=\"1\"><b>x</b><c>1</c></a><a i=\"2\"><b>y</b></a>\
     <d><a i=\"3\"><b>x</b></a></d></r>"

let root = doc.Tree.root

let eval s = Semantics.eval (Parse.query s) root

let tags s = List.map (fun (n : Tree.node) -> n.Tree.tag) (eval s)
let texts s = List.map Tree.text_of (eval s)
let count s = List.length (eval s)
let check_i = Alcotest.(check int)

let test_child_axis () =
  check_i "a selects top-level a's" 2 (count "a");
  check_i "a/b two" 2 (count "a/b");
  check_i "d/a one" 1 (count "d/a");
  check_i "no miss" 0 (count "zz")

let test_descendant_axis () =
  check_i "//a three" 3 (count "//a");
  check_i "//b three" 3 (count "//b");
  check_i "a//b two (no d)" 2 (count "a//b");
  check_i "self included: .//a counts nested" 3 (count ".//a")

let test_wildcard_and_self () =
  check_i "* is all children" 3 (count "*");
  check_i "dot is the root" 1 (count ".");
  Alcotest.(check (list string)) "root tag" [ "r" ] (tags ".");
  check_i "*/b" 2 (count "*/b")

let test_absolute () =
  check_i "/r is the root" 1 (count "/r");
  check_i "/a is nothing (root is r)" 0 (count "/a");
  check_i "//a absolute" 3 (count "//a");
  Alcotest.(check (list string)) "/r tag" [ "r" ] (tags "/r")

let test_qualifiers () =
  check_i "a[b] both" 2 (count "a[b]");
  check_i "a[c] one" 1 (count "a[c]");
  check_i "a[b='x'] one at top" 1 (count "a[b = 'x']");
  check_i "//a[b='x'] two" 2 (count "//a[b = 'x']");
  check_i "a[not(c)] one" 1 (count "a[not(c)]");
  check_i "a[b and c]" 1 (count "a[b and c]");
  check_i "a[b or c]" 2 (count "a[b or c]");
  check_i "a[c=1] numeric" 1 (count "a[c = 1]");
  check_i "a[c>=2] none" 0 (count "a[c >= 2]");
  check_i "a[c<2] one" 1 (count "a[c < 2]");
  check_i "a[c != 1] none with c" 0 (count "a[c/val() != 1]")

let test_document_order_dedup () =
  (* a//b over overlapping contexts must not duplicate nodes. *)
  check_i "no duplicates through //" 3 (count ".//b");
  let ids = Semantics.eval_ids (Parse.query ".//b") root in
  Alcotest.(check bool) "sorted ids" true
    (List.sort compare ids = ids);
  Alcotest.(check int) "distinct" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_text_access () =
  Alcotest.(check (list string)) "texts of //b" [ "x"; "y"; "x" ] (texts "//b")

let test_attributes () =
  (* The document gives each top-level a an i attribute. *)
  check_i "a[@i] selects attributed nodes" 2 (count "a[@i]");
  check_i "a[@i = '1'] selects one" 1 (count "a[@i = '1']");
  check_i "a[@i = '9'] selects none" 0 (count "a[@i = '9']");
  check_i "//a[@i = '3'] finds the nested one" 1 (count "//a[@i = '3']");
  check_i "a[@missing] selects none" 0 (count "a[@missing]");
  check_i "path-anchored attribute" 1 (count ".[d/a/@i = '3']")

let test_holds () =
  Alcotest.(check bool) "root has a" true
    (Semantics.holds (Parse.qual "a") root);
  Alcotest.(check bool) "root has no zz" false
    (Semantics.holds (Parse.qual "zz") root);
  Alcotest.(check bool) "nested path" true
    (Semantics.holds (Parse.qual "d/a/b/text() = 'x'") root)

let () =
  Alcotest.run "semantics"
    [
      ( "axes",
        [
          Alcotest.test_case "child" `Quick test_child_axis;
          Alcotest.test_case "descendant-or-self" `Quick test_descendant_axis;
          Alcotest.test_case "wildcard and self" `Quick test_wildcard_and_self;
          Alcotest.test_case "absolute anchoring" `Quick test_absolute;
        ] );
      ( "qualifiers",
        [
          Alcotest.test_case "boolean logic" `Quick test_qualifiers;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "holds" `Quick test_holds;
        ] );
      ( "sets",
        [
          Alcotest.test_case "document order, no dups" `Quick test_document_order_dedup;
          Alcotest.test_case "text access" `Quick test_text_access;
        ] );
    ]

(* The annotation analysis: Example 5.1, three-valued contexts, pruning
   soundness. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Fragment = Pax_frag.Fragment
module Annot = Pax_core.Annot
module H = Test_helpers

let c = H.Data.clientele ()
let ft = H.Data.clientele_ftree c

let analyze s = Annot.analyze (Query.of_string s).Query.compiled ft

(* Map the paper's F1..F4 to our fid numbering via fragment root ids. *)
let fid_of root_id =
  let rec find fid =
    if (Fragment.fragment ft fid).Fragment.root.Tree.id = root_id then fid
    else find (fid + 1)
  in
  find 0

let f1 = fid_of c.cut_f1 (* E*trade broker *)
let f2 = fid_of c.cut_f2 (* its NASDAQ market *)
let f3 = fid_of c.cut_f3 (* CIBC broker *)
let f4 = fid_of c.cut_f4 (* Bache's NASDAQ market *)

(* Example 5.1 analogue: client/name can only have answers in F0 (all
   our broker/market fragments hang below broker). *)
let test_example_5_1 () =
  let a = analyze "client/name" in
  Alcotest.(check bool) "F0 relevant" true a.Annot.relevant_sel.(0);
  List.iter
    (fun fid ->
      Alcotest.(check bool)
        (Printf.sprintf "F%d pruned" fid)
        false a.Annot.relevant_sel.(fid))
    [ f1; f2; f3; f4 ]

let test_broker_query_keeps_brokers () =
  let a = analyze "client/broker/name" in
  Alcotest.(check bool) "E*trade fragment kept" true a.Annot.relevant_sel.(f1);
  Alcotest.(check bool) "CIBC fragment kept" true a.Annot.relevant_sel.(f3);
  Alcotest.(check bool) "markets pruned" false a.Annot.relevant_sel.(f2);
  Alcotest.(check bool) "markets pruned (F4)" false a.Annot.relevant_sel.(f4)

let test_dos_defeats_pruning () =
  let a = analyze "//name" in
  List.iter
    (fun fid ->
      Alcotest.(check bool)
        (Printf.sprintf "F%d kept under //" fid)
        true a.Annot.relevant_sel.(fid))
    [ 0; f1; f2; f3; f4 ]

(* Qualifier reach: the selection path ends at brokers, but the
   qualifier looks into the market fragments, so they stay relevant for
   PaX2 even though they cannot contain answers. *)
let test_qualifier_relevance () =
  let a = analyze "client/broker[market/stock/code/text() = \"GOOG\"]/name" in
  Alcotest.(check bool) "market fragment not answer-relevant" false
    a.Annot.relevant_sel.(f2);
  Alcotest.(check bool) "market fragment qualifier-relevant" true
    a.Annot.relevant.(f2);
  Alcotest.(check bool) "F4 too" true a.Annot.relevant.(f4)

let test_ground_contexts_without_qualifiers () =
  let a = analyze "client/broker/name" in
  Array.iteri
    (fun fid ctx ->
      if fid <> 0 then
        Array.iter
          (fun v ->
            Alcotest.(check bool)
              (Printf.sprintf "F%d context entry definite" fid)
              true (v <> Annot.M))
          ctx)
    a.Annot.ctx

let test_maybe_contexts_with_qualifiers () =
  (* A qualifier sits on the spine prefix (client is on every spine), so
     fragment contexts must contain an M somewhere. *)
  let a = analyze "client[country/text() = \"US\"]/broker/name" in
  let has_m =
    Array.exists (fun v -> v = Annot.M) a.Annot.ctx.(f1)
  in
  Alcotest.(check bool) "qualifier on the spine leaves an M" true has_m

(* Soundness on random scenarios: pruned fragments never contain answer
   nodes, and pruning never changes the answer (already covered by the
   equivalence properties, but checked directly here). *)
let test_pruning_soundness_random () =
  let test =
    QCheck.Test.make ~name:"pruned fragments hold no answers" ~count:300
      H.Gen.arbitrary_scenario (fun s ->
        let q = Query.of_ast s.H.Gen.s_query in
        let ft = Pax_dist.Cluster.ftree s.H.Gen.s_cluster in
        let a = Annot.analyze q.Query.compiled ft in
        let answers = Semantics.eval_ids q.Query.ast s.H.Gen.s_doc.Tree.root in
        (* For every pruned fragment, none of its node ids is an answer. *)
        let ok = ref true in
        Array.iteri
          (fun fid f ->
            if not a.Annot.relevant_sel.(fid) then
              Tree.iter
                (fun n ->
                  if (not (Tree.is_virtual n)) && List.mem n.Tree.id answers
                  then ok := false)
                f.Fragment.root)
          ft.Fragment.fragments;
        !ok)
  in
  match QCheck.Test.check_exn test with
  | () -> ()
  | exception e -> Alcotest.fail (Printexc.to_string e)

let test_monotone_pruning () =
  let test =
    QCheck.Test.make ~name:"children of pruned fragments are pruned" ~count:300
      H.Gen.arbitrary_scenario (fun s ->
        let q = Query.of_ast s.H.Gen.s_query in
        let ft = Pax_dist.Cluster.ftree s.H.Gen.s_cluster in
        let a = Annot.analyze q.Query.compiled ft in
        Array.for_all
          (fun f ->
            match f.Fragment.parent with
            | Some p ->
                (not a.Annot.relevant.(f.Fragment.fid)) || a.Annot.relevant.(p)
            | None -> true)
          ft.Fragment.fragments)
  in
  match QCheck.Test.check_exn test with
  | () -> ()
  | exception e -> Alcotest.fail (Printexc.to_string e)

let () =
  Alcotest.run "annot"
    [
      ( "pruning",
        [
          Alcotest.test_case "example 5.1" `Quick test_example_5_1;
          Alcotest.test_case "broker query" `Quick test_broker_query_keeps_brokers;
          Alcotest.test_case "// defeats pruning" `Quick test_dos_defeats_pruning;
          Alcotest.test_case "qualifier relevance" `Quick test_qualifier_relevance;
        ] );
      ( "contexts",
        [
          Alcotest.test_case "ground without qualifiers" `Quick
            test_ground_contexts_without_qualifiers;
          Alcotest.test_case "maybe with qualifiers" `Quick
            test_maybe_contexts_with_qualifiers;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "pruned fragments hold no answers" `Slow
            test_pruning_soundness_random;
          Alcotest.test_case "pruning is monotone" `Slow test_monotone_pruning;
        ] );
    ]

(* PaX3-specific behaviour: stage structure, visit counts, stage
   skipping, answer shipping. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Run_result = Pax_core.Run_result
module H = Test_helpers

let c = H.Data.clientele ()

let run ?annotations query_text =
  let q = Query.of_string query_text in
  let cl = H.Data.clientele_cluster c in
  let r = Pax_core.Pax3.run ?annotations cl q in
  let expected = Semantics.eval_ids q.Query.ast c.doc.Tree.root in
  Alcotest.(check (list int)) (query_text ^ " correct") expected
    r.Run_result.answer_ids;
  r

let rounds r = r.Run_result.report.Cluster.rounds

let test_three_stages_with_qualifiers () =
  let r = run "client[country/text() = \"US\"]/broker[market]/name" in
  Alcotest.(check (list string)) "stage1 -> stage2 -> stage3"
    [ "stage1"; "stage2"; "stage3" ] (rounds r);
  Alcotest.(check bool) "max 3 visits" true
    (r.Run_result.report.Cluster.max_visits <= 3)

let test_stage1_skipped_without_qualifiers () =
  let r = run "client/broker/name" in
  Alcotest.(check (list string)) "no qualifier stage"
    [ "stage2"; "stage3" ] (rounds r);
  Alcotest.(check bool) "max 2 visits" true
    (r.Run_result.report.Cluster.max_visits <= 2)

let test_single_fragment_single_pass () =
  (* One fragment, no qualifiers: stage 2 suffices; no candidates means
     stage 3 visits nobody. *)
  let ft = Fragment.trivial c.doc in
  let cl = Cluster.one_site_per_fragment ft in
  let q = Query.of_string "client/broker/name" in
  let r = Pax_core.Pax3.run cl q in
  Alcotest.(check int) "a single visit" 1 r.Run_result.report.Cluster.max_visits

let test_annotations_skip_stage3 () =
  (* client/name with annotations: contexts are ground, so no fragment
     produces candidates and stage 3 visits no one. *)
  let r = run ~annotations:true "client/name" in
  let visits = r.Run_result.report.Cluster.visits in
  Alcotest.(check int) "no stage-3 visits: max 1 visit with XA" 1
    (r.Run_result.report.Cluster.max_visits);
  (* Sites 1, 2, 3 hold pruned fragments only: never visited at all. *)
  Alcotest.(check (list int)) "irrelevant sites untouched" [ 0; 0; 0 ]
    [ visits.(1); visits.(2); visits.(3) ]

let test_annotations_prune_markets () =
  (* //market/name: broker fragments relevant, client-level data too;
     compare total ops with and without annotations. *)
  let r_na = run "client/name" in
  let r_xa = run ~annotations:true "client/name" in
  Alcotest.(check bool) "XA does strictly less total work" true
    (r_xa.Run_result.report.Cluster.total_ops
    < r_na.Run_result.report.Cluster.total_ops)

let test_answers_as_only_tree_data () =
  let r = run "//stock/code" in
  Alcotest.(check int) "no fragment shipping" 0
    r.Run_result.report.Cluster.tree_bytes;
  Alcotest.(check bool) "answers shipped" true
    (r.Run_result.report.Cluster.answer_bytes > 0)

let test_empty_answer_no_answer_bytes () =
  let r = run "//nonexistent" in
  Alcotest.(check (list int)) "empty" [] r.Run_result.answer_ids;
  Alcotest.(check int) "nothing shipped" 0
    r.Run_result.report.Cluster.answer_bytes

let test_multi_fragment_site () =
  (* All fragments on one site: still <= 3 visits of that site. *)
  let ft = H.Data.clientele_ftree c in
  let cl = Cluster.create ~ftree:ft ~n_sites:1 ~assign:(fun _ -> 0) () in
  let q = Query.of_string "client[country/text() = \"US\"]//stock/code" in
  let r = Pax_core.Pax3.run cl q in
  Alcotest.(check (list int)) "correct"
    (Semantics.eval_ids q.Query.ast c.doc.Tree.root)
    r.Run_result.answer_ids;
  Alcotest.(check bool) "one site visited at most 3 times" true
    (r.Run_result.report.Cluster.max_visits <= 3)

let () =
  Alcotest.run "pax3"
    [
      ( "stages",
        [
          Alcotest.test_case "three stages with qualifiers" `Quick
            test_three_stages_with_qualifiers;
          Alcotest.test_case "stage 1 skipped without qualifiers" `Quick
            test_stage1_skipped_without_qualifiers;
          Alcotest.test_case "single fragment, single pass" `Quick
            test_single_fragment_single_pass;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "ground contexts skip stage 3" `Quick
            test_annotations_skip_stage3;
          Alcotest.test_case "pruning saves total work" `Quick
            test_annotations_prune_markets;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "answers are the only tree data" `Quick
            test_answers_as_only_tree_data;
          Alcotest.test_case "empty answers ship nothing" `Quick
            test_empty_answer_no_answer_bytes;
          Alcotest.test_case "many fragments on one site" `Quick
            test_multi_fragment_site;
        ] );
    ]

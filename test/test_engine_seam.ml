(* The Pe seam is a zero-cost repackaging: every XPath engine run
   through [Pax_core.Engines] must be bit-identical to calling the
   engine directly — same answer ids, same per-site visit vectors, same
   structured trace events, same audit report — on random scenarios,
   clean and under seeded fault plans.  A golden section pins the FT1
   visit-count matrix (test_visits_matrix.ml) as observed through the
   seam, so a refactor of the wrappers cannot silently change engine
   behaviour. *)

module Tree = Pax_xml.Tree
module Ast = Pax_xpath.Ast
module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Fault = Pax_dist.Fault
module Trace = Pax_dist.Trace
module Run_result = Pax_core.Run_result
module Engines = Pax_core.Engines
module Pe = Pax_engine.Pe
module Xmark = Pax_xmark.Xmark
module H = Test_helpers
module G = QCheck.Gen

let count n =
  match Sys.getenv_opt "PAX_QCHECK_COUNT" with
  | Some s -> (try int_of_string s with _ -> n)
  | None -> n

(* The deterministic projection of a run: everything except wall-clock
   seconds (which no two runs share). *)
type obs = {
  o_keys : int list;
  o_visits : int list;
  o_max_visits : int;
  o_retries : int;
  o_rounds : string list;
  o_control : int;
  o_answer : int;
  o_tree : int;
  o_messages : int;
  o_ops : int;
  o_events : Trace.event list option;
  o_audit : Pax_obs.Audit.report;
}

let obs ~keys ~(report : Cluster.report) ~trace ~audit =
  {
    o_keys = keys;
    o_visits = Array.to_list report.Cluster.visits;
    o_max_visits = report.Cluster.max_visits;
    o_retries = report.Cluster.retries;
    o_rounds = report.Cluster.rounds;
    o_control = report.Cluster.control_bytes;
    o_answer = report.Cluster.answer_bytes;
    o_tree = report.Cluster.tree_bytes;
    o_messages = report.Cluster.n_messages;
    o_ops = report.Cluster.total_ops;
    o_events = Option.map Trace.events trace;
    o_audit = audit;
  }

(* Both sides either produce an observation or fail with the typed
   [Site_unreachable]; the comparison covers which. *)
type run = Completed of obs | Unreachable

let mk_fault seed =
  Fault.seeded ~drop:0.12 ~dup:0.08 ~delay:0.05 ~lose:0.1 ~crash:0.15 ~seed ()

(* One engine three ways: its registry name, its Pe constructor, and
   the pre-seam direct call path.  The direct path is exactly what the
   code before the seam did: run, then audit the Run_result. *)
let direct_xpath ~annotations runner ~ename cl text =
  match
    let q = Query.of_string text in
    let r : Run_result.t = runner ~annotations cl q in
    obs ~keys:r.Run_result.answer_ids ~report:r.Run_result.report
      ~trace:r.Run_result.trace
      ~audit:
        (Pax_core.Guarantee.audit ~engine:ename ~ftree:(Cluster.ftree cl) r)
  with
  | o -> Completed o
  | exception Cluster.Site_unreachable _ -> Unreachable

let direct_parbox ?flat cl text =
  match
    let qual = Pax_xpath.Parse.qual text in
    let answer, report = Pax_core.Parbox.eval ?flat cl qual in
    let rq =
      Query.of_ast ~source:text
        {
          Ast.absolute = false;
          path = Ast.Qualified (Ast.Empty, qual);
        }
    in
    let r =
      Run_result.make ~trace:(Cluster.trace cl) ~query:rq ~answers:[] ~report ()
    in
    obs
      ~keys:(if answer then [ 1 ] else [])
      ~report
      ~trace:(Some (Cluster.trace cl))
      ~audit:
        (Pax_core.Guarantee.audit ~engine:"parbox" ~ftree:(Cluster.ftree cl) r)
  with
  | o -> Completed o
  | exception Cluster.Site_unreachable _ -> Unreachable

let pax2_run ~annotations cl q = Pax_core.Pax2.run ~annotations cl q
let pax3_run ~annotations cl q = Pax_core.Pax3.run ~annotations cl q

let engines =
  [
    ("pax2", Engines.pax2, direct_xpath ~annotations:false pax2_run ~ename:"pax2");
    ( "pax2-xa",
      Engines.pax2_xa,
      direct_xpath ~annotations:true pax2_run ~ename:"pax2-xa" );
    ("pax3", Engines.pax3, direct_xpath ~annotations:false pax3_run ~ename:"pax3");
    ( "pax3-xa",
      Engines.pax3_xa,
      direct_xpath ~annotations:true pax3_run ~ename:"pax3-xa" );
  ]

let pe_run pe ~placement:(ftree, n_sites, assign) ~fault text =
  let pe = pe ftree ~n_sites ~assign in
  match
    Pe.run_text pe
      ~tune:(fun cl -> Cluster.set_fault cl fault)
      text
  with
  | (o : Pe.outcome) ->
      Completed
        (obs ~keys:o.Pe.answer_keys ~report:o.Pe.report ~trace:o.Pe.trace
           ~audit:o.Pe.audit)
  | exception Cluster.Site_unreachable _ -> Unreachable

let explain ppf = function
  | Unreachable -> Format.fprintf ppf "Unreachable"
  | Completed o ->
      Format.fprintf ppf
        "keys=[%s] visits=[%s] retries=%d msgs=%d ops=%d ctrl=%d ans=%d \
         rounds=[%s] events=%s audit_pass=%b"
        (String.concat ";" (List.map string_of_int o.o_keys))
        (String.concat ";" (List.map string_of_int o.o_visits))
        o.o_retries o.o_messages o.o_ops o.o_control o.o_answer
        (String.concat ";" o.o_rounds)
        (match o.o_events with
        | None -> "-"
        | Some es -> string_of_int (List.length es))
        o.o_audit.Pax_obs.Audit.pass

(* The property: for every engine, Pe-run = direct run, bit for bit,
   on the same placement under the same (independently instantiated,
   identically seeded) fault plan. *)
let seam ~fault ((s : H.Gen.scenario), seed) =
  let cl = s.H.Gen.s_cluster in
  let ftree = Cluster.ftree cl in
  let n_sites = Cluster.n_sites cl in
  let assign fid = Cluster.site_of cl fid in
  let placement = (ftree, n_sites, assign) in
  let text = Ast.to_string s.H.Gen.s_query in
  let qual_text =
    Format.asprintf "%a" Ast.pp_qual (Ast.QPath s.H.Gen.s_query.Ast.path)
  in
  let check name via_pe direct =
    if via_pe <> direct then
      QCheck.Test.fail_reportf "%s: seam diverges@.pe:     %a@.direct: %a" name
        explain via_pe explain direct
    else true
  in
  List.for_all
    (fun (name, ctor, direct) ->
      let via_pe =
        pe_run ctor ~placement
          ~fault:(if fault then mk_fault seed else Fault.none)
          text
      in
      Cluster.set_fault cl (if fault then mk_fault seed else Fault.none);
      check name via_pe (direct cl text))
    engines
  &&
  let via_pe =
    pe_run
      (fun ftree ~n_sites ~assign -> Engines.parbox ftree ~n_sites ~assign)
      ~placement
      ~fault:(if fault then mk_fault seed else Fault.none)
      qual_text
  in
  Cluster.set_fault cl (if fault then mk_fault seed else Fault.none);
  check "parbox" via_pe (direct_parbox cl qual_text)

(* The second seam: flat structure-of-arrays kernels vs the pointer
   kernels, same projection.  [Flat_pass] promises bit-identity through
   every observable (answers, visit vectors, trace events, ops,
   audits), so the two runs must compare equal on the same placement
   under identically seeded fault plans — the fault schedule itself
   only stays aligned if the visit sequences do. *)
let flat_runners =
  [
    ("pax2", fun ~flat cl q -> Pax_core.Pax2.run ~flat cl q);
    ( "pax2-xa",
      fun ~flat cl q -> Pax_core.Pax2.run ~annotations:true ~flat cl q );
    ("pax3", fun ~flat cl q -> Pax_core.Pax3.run ~flat cl q);
    ( "pax3-xa",
      fun ~flat cl q -> Pax_core.Pax3.run ~annotations:true ~flat cl q );
  ]

let direct_obs ~ename runner ~flat cl text =
  match
    let q = Query.of_string text in
    let r : Run_result.t = runner ~flat cl q in
    obs ~keys:r.Run_result.answer_ids ~report:r.Run_result.report
      ~trace:r.Run_result.trace
      ~audit:
        (Pax_core.Guarantee.audit ~engine:ename ~ftree:(Cluster.ftree cl) r)
  with
  | o -> Completed o
  | exception Cluster.Site_unreachable _ -> Unreachable

let flat_seam ~fault ((s : H.Gen.scenario), seed) =
  let cl = s.H.Gen.s_cluster in
  let text = Ast.to_string s.H.Gen.s_query in
  let qual_text =
    Format.asprintf "%a" Ast.pp_qual (Ast.QPath s.H.Gen.s_query.Ast.path)
  in
  let plan () = if fault then mk_fault seed else Fault.none in
  let check name via_flat via_ptr =
    if via_flat <> via_ptr then
      QCheck.Test.fail_reportf "%s: flat diverges@.flat:    %a@.pointer: %a"
        name explain via_flat explain via_ptr
    else true
  in
  List.for_all
    (fun (name, runner) ->
      Cluster.set_fault cl (plan ());
      let via_ptr = direct_obs ~ename:name runner ~flat:false cl text in
      Cluster.set_fault cl (plan ());
      let via_flat = direct_obs ~ename:name runner ~flat:true cl text in
      check name via_flat via_ptr)
    flat_runners
  &&
  begin
    Cluster.set_fault cl (plan ());
    let via_ptr = direct_parbox ~flat:false cl qual_text in
    Cluster.set_fault cl (plan ());
    let via_flat = direct_parbox ~flat:true cl qual_text in
    check "parbox" via_flat via_ptr
  end

let arbitrary_faulty =
  QCheck.make
    ~print:(fun (s, seed) ->
      Printf.sprintf "fault seed %d\n%s" seed (H.Gen.print_scenario s))
    G.(pair H.Gen.scenario (int_bound 1_000_000))

(* Validation agrees with parsing: Pe.validate accepts what the engine
   parser accepts and reports errors for the rest, for every mounted
   engine name. *)
let test_validate () =
  let doc = Tree.doc_of_root (Tree.elem (Tree.builder ()) "a" []) in
  let ft = Fragment.fragmentize doc ~cuts:[] in
  List.iter
    (fun name ->
      let ctor = Option.get (Engines.of_name name) in
      let pe = ctor ft ~n_sites:1 ~assign:(fun _ -> 0) in
      Alcotest.(check string) ("name " ^ name) name (Pe.name pe);
      (match Pe.validate pe (if name = "parbox" then "a/b" else "//a[b]") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s rejected a valid query: %s" name e);
      match Pe.validate pe "//a[" with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s accepted garbage" name)
    Engines.names

(* The FT1 golden matrix, through the seam: same layout and queries as
   test_visits_matrix.ml, asserted on the outcome's trace. *)
let test_golden_matrix () =
  let doc = Xmark.doc ~seed:4 ~total_nodes:2500 ~n_sites:4 in
  let sites = Tree.select (fun n -> n.Tree.tag = "site") doc.Tree.root in
  let cuts =
    match sites with
    | _ :: rest -> List.map (fun (n : Tree.node) -> n.Tree.id) rest
    | [] -> []
  in
  let ft = Fragment.fragmentize doc ~cuts in
  let n_sites = Fragment.n_fragments ft in
  let cases =
    [
      (Xmark.q1, "pax3", 2);
      (Xmark.q1, "pax3-xa", 1);
      (Xmark.q1, "pax2", 2);
      (Xmark.q1, "pax2-xa", 1);
      (Xmark.q3, "pax3", 3);
      (Xmark.q3, "pax3-xa", 2);
      (Xmark.q3, "pax2", 2);
      (Xmark.q3, "pax2-xa", 1);
      (Xmark.q4, "pax3", 3);
      (Xmark.q4, "pax2", 2);
    ]
  in
  List.iter
    (fun (qs, name, expected) ->
      let ctor = Option.get (Engines.of_name name) in
      let pe = ctor ft ~n_sites ~assign:Fun.id in
      let o = Pe.run_text pe qs in
      let tr = Option.get o.Pe.trace in
      Alcotest.(check int)
        (Printf.sprintf "%s on %s" name qs)
        expected
        (Trace.max_logical_visits tr);
      Alcotest.(check bool)
        (Printf.sprintf "%s audit on %s" name qs)
        true o.Pe.audit.Pax_obs.Audit.pass)
    cases

let qtest name ~count:n prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(count n) arbitrary_faulty prop)

let () =
  Alcotest.run "engine_seam"
    [
      ( "seam",
        [
          Alcotest.test_case "validate = parse, all engines" `Quick
            test_validate;
          Alcotest.test_case "FT1 golden visit matrix through Pe" `Quick
            test_golden_matrix;
          qtest "Pe = direct, bit for bit (clean)" ~count:100 (seam ~fault:false);
          qtest "Pe = direct, bit for bit (faults)" ~count:150 (seam ~fault:true);
          qtest "flat = pointer, bit for bit (clean)" ~count:100
            (flat_seam ~fault:false);
          qtest "flat = pointer, bit for bit (faults)" ~count:150
            (flat_seam ~fault:true);
        ] );
    ]

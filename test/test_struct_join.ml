(* The structural-join engine against the navigational engines. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Struct_join = Pax_core.Struct_join
module H = Test_helpers

let c = H.Data.clientele ()
let root = c.H.Data.doc.Tree.root

let agree qs =
  let q = Query.of_string qs in
  Alcotest.(check (list int)) (qs ^ " via structural joins")
    (Semantics.eval_ids q.Query.ast root)
    (Struct_join.eval_ids q root)

let test_paths () =
  List.iter agree
    [
      "client";
      "client/broker/name";
      "//stock/code";
      "//name";
      "client//qt";
      "*/*/market";
      ".";
      "//market//code";
      "/clientele/client";
      "//zzz";
    ]

let test_support () =
  Alcotest.(check bool) "plain paths supported" true
    (Struct_join.supported (Query.of_string "a/b//c"));
  Alcotest.(check bool) "qualifiers unsupported" false
    (Struct_join.supported (Query.of_string "a[b]/c"));
  match Struct_join.eval_ids (Query.of_string "a[b]") root with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "must reject qualifiers"

let test_index_reuse () =
  let idx = Struct_join.build root in
  List.iter
    (fun qs ->
      let q = Query.of_string qs in
      Alcotest.(check (list int)) (qs ^ " on a shared index")
        (Semantics.eval_ids q.Query.ast root)
        (Struct_join.run idx q))
    [ "//stock"; "client/name"; "//broker/market/name" ]

let prop_label_only =
  QCheck.Test.make ~name:"structural joins = semantics (label-only paths)"
    ~count:500
    (QCheck.make
       ~print:(fun (d, q) ->
         Format.asprintf "%a over %a" Pax_xpath.Ast.pp q Tree.pp d.Tree.root)
       (fun st ->
         let d = H.Gen.doc ~max_nodes:50 st in
         let absolute = QCheck.Gen.bool st in
         let path = H.Gen.path ~qdepth:0 st in
         (d, { Pax_xpath.Ast.absolute; path })))
    (fun (d, ast) ->
      let q = Query.of_ast ast in
      Struct_join.supported q
      && Struct_join.eval_ids q d.Tree.root = Semantics.eval_ids ast d.Tree.root)

let () =
  Alcotest.run "struct_join"
    [
      ( "struct-join",
        [
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "support check" `Quick test_support;
          Alcotest.test_case "index reuse" `Quick test_index_reuse;
          QCheck_alcotest.to_alcotest prop_label_only;
        ] );
    ]

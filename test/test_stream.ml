(* The SAX scanner and the single-pass streaming evaluator, checked
   against the tree-based engines. *)

module Tree = Pax_xml.Tree
module Sax = Pax_xml.Sax
module Printer = Pax_xml.Printer
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Stream_eval = Pax_core.Stream_eval
module H = Test_helpers

(* ---------------- SAX scanner ------------------------------------- *)

let test_events () =
  let evs = Sax.events_of_string "<a x=\"1\"><b>hi</b><c/></a>" in
  match evs with
  | [ Sax.Open ("a", [ ("x", "1") ]); Open ("b", []); Text "hi"; Close "b";
      Open ("c", []); Close "c"; Close "a" ] ->
      ()
  | _ -> Alcotest.failf "unexpected event stream (%d events)" (List.length evs)

let test_events_exact () =
  Alcotest.(check int) "self-closing pairs up" 4
    (List.length (Sax.events_of_string "<a><b/></a>"));
  (match Sax.events_of_string "<a>x &amp; y</a>" with
  | [ Sax.Open _; Sax.Text "x & y"; Sax.Close _ ] -> ()
  | _ -> Alcotest.fail "entities decoded");
  match Sax.events_of_string "<a><!-- c --><?pi?>t</a>" with
  | [ Sax.Open _; Sax.Text "t"; Sax.Close _ ] -> ()
  | _ -> Alcotest.fail "comments and PIs skipped"

let test_scan_errors () =
  let fails s =
    match Sax.events_of_string s with
    | exception Sax.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not scan: " ^ s)
  in
  fails "<a><b></a>";
  fails "<a>";
  fails "text only";
  fails "<a></a><b/>"

(* Scanning a printed tree yields balanced events equal to its size. *)
let prop_events_match_tree =
  QCheck.Test.make ~name:"print + scan = node count" ~count:300
    (QCheck.make (H.Gen.doc ~max_nodes:50))
    (fun d ->
      let xml = Printer.to_string d.Tree.root in
      let opens =
        List.length
          (List.filter
             (function Sax.Open _ -> true | _ -> false)
             (Sax.events_of_string xml))
      in
      opens = d.Tree.node_count)

(* ---------------- streaming evaluation ----------------------------- *)

let stream_matches qs root =
  let q = Query.of_string qs in
  (Stream_eval.over_string q (Printer.to_string root)).Stream_eval.matches

let oracle_indices qs root =
  let q = Query.of_string qs in
  Stream_eval.indices_of_answers root (Semantics.eval q.Query.ast root)

let test_clientele_queries () =
  let c = H.Data.clientele () in
  let root = c.H.Data.doc.Tree.root in
  List.iter
    (fun qs ->
      Alcotest.(check (list int)) (qs ^ " streams correctly")
        (oracle_indices qs root) (stream_matches qs root))
    [
      "client/name";
      "//stock/code";
      "//broker[//stock/code/text() = \"GOOG\"]/name";
      "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name";
      "//stock[buy > 380]";
      "client[not(country/text() = \"US\")]//qt";
      ".";
      "//nothing";
      (* Regression: an absolute query with a filter on the document
         node must evaluate the filter at end of stream. *)
      "/.[//stock/code/text() = \"GOOG\"]//broker/name";
      "/.[//stock/code/text() = \"MSFT\"]//broker/name";
    ]

let test_xmark_queries () =
  let doc = Pax_xmark.Xmark.doc ~seed:13 ~total_nodes:2000 ~n_sites:2 in
  List.iter
    (fun (name, qs) ->
      Alcotest.(check (list int)) (name ^ " streams correctly")
        (oracle_indices qs doc.Tree.root)
        (stream_matches qs doc.Tree.root))
    Pax_xmark.Xmark.queries

let test_constant_stack () =
  (* Wide flat documents keep the stack at the tree depth. *)
  let b = Tree.builder () in
  let root =
    Tree.elem b "r" (List.init 500 (fun i -> Tree.leaf b "x" (string_of_int i)))
  in
  let q = Query.of_string "r/x" in
  let r = Stream_eval.over_string q (Printer.to_string root) in
  Alcotest.(check int) "depth 2" 2 r.Stream_eval.max_depth;
  Alcotest.(check int) "all elements seen" 501 r.Stream_eval.elements

let prop_stream_equals_tree =
  QCheck.Test.make ~name:"stream = tree on random scenarios" ~count:300
    (QCheck.make
       ~print:(fun (d, q) ->
         Format.asprintf "%a over %a" Pax_xpath.Ast.pp q Tree.pp d.Tree.root)
       (fun st ->
         let d = H.Gen.doc ~max_nodes:50 st in
         let q = H.Gen.query st in
         (d, q)))
    (fun (d, ast) ->
      let q = Query.of_ast ast in
      let expected =
        Stream_eval.indices_of_answers d.Tree.root
          (Semantics.eval ast d.Tree.root)
      in
      let got =
        (Stream_eval.over_string q (Printer.to_string d.Tree.root))
          .Stream_eval.matches
      in
      expected = got)

let () =
  Alcotest.run "stream"
    [
      ( "sax",
        [
          Alcotest.test_case "events" `Quick test_events;
          Alcotest.test_case "exact events" `Quick test_events_exact;
          Alcotest.test_case "scan errors" `Quick test_scan_errors;
          QCheck_alcotest.to_alcotest prop_events_match_tree;
        ] );
      ( "eval",
        [
          Alcotest.test_case "clientele queries" `Quick test_clientele_queries;
          Alcotest.test_case "xmark queries" `Quick test_xmark_queries;
          Alcotest.test_case "stack stays shallow" `Quick test_constant_stack;
          QCheck_alcotest.to_alcotest prop_stream_equals_tree;
        ] );
    ]

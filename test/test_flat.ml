(* The flat fragment image (lib/xml/flat.ml) is a lossless re-encoding
   of a fragment's pointer tree: structure, ids, tags, text, attributes
   and virtual placeholders must all survive the round trips —
   of_tree/to_tree, encode/decode, and a [Wire.Frag_flat] section —
   and every accessor must agree with the pointer tree it was built
   from.  Random fragmentized documents drive the properties; a few
   directed cases pin the id-index and corruption behaviour.

   Flat.t contains mutexes and atomics, so the comparisons here go
   through [Tree.equal_structure] and per-slot accessors, never
   polymorphic equality on whole images. *)

module Tree = Pax_xml.Tree
module Intern = Pax_xml.Intern
module Flat = Pax_xml.Flat
module Fragment = Pax_frag.Fragment
module Wire = Pax_wire.Wire
module H = Test_helpers
module G = QCheck.Gen

let count n =
  match Sys.getenv_opt "PAX_QCHECK_COUNT" with
  | Some s -> (try int_of_string s with _ -> n)
  | None -> n

(* Preorder node list of a pointer tree, virtual nodes included — the
   slot order the flat image promises. *)
let preorder root =
  let acc = ref [] in
  Tree.iter (fun n -> acc := n :: !acc) root;
  List.rev !acc

(* A random fragment store: every fragment root (with its virtual
   placeholders) is a flat-image test subject. *)
let store_gen : Fragment.t G.t =
 fun st ->
  let d = H.Gen.doc ~max_nodes:80 st in
  let cuts = H.Gen.cuts d st in
  Fragment.fragmentize d ~cuts

let arbitrary_store =
  QCheck.make
    ~print:(fun ft -> Format.asprintf "%a" Fragment.pp ft)
    store_gen

let fail fmt = QCheck.Test.fail_reportf fmt

(* Slot accessors vs the pointer tree: ids, tags, kinds, text, numeric
   views, attributes, child counts and the parent/sibling links. *)
let check_accessors fl root =
  let nodes = Array.of_list (preorder root) in
  if Flat.length fl <> Array.length nodes then
    fail "length %d <> %d preorder nodes" (Flat.length fl) (Array.length nodes);
  let index_of_id = Hashtbl.create 16 in
  Array.iteri (fun i (n : Tree.node) -> Hashtbl.replace index_of_id n.Tree.id i) nodes;
  Array.iteri
    (fun i (n : Tree.node) ->
      if Flat.node_id fl i <> n.Tree.id then
        fail "slot %d: id %d <> %d" i (Flat.node_id fl i) n.Tree.id;
      (match n.Tree.kind with
      | Tree.Virtual fid ->
          if not (Flat.is_virtual fl i) || Flat.virtual_fid fl i <> fid then
            fail "slot %d: virtual fid %d lost" i fid
      | Tree.Element ->
          if Flat.is_virtual fl i then fail "slot %d: spurious virtual" i;
          if Flat.tag_name fl i <> n.Tree.tag then
            fail "slot %d: tag %S <> %S" i (Flat.tag_name fl i) n.Tree.tag);
      if Flat.text fl i <> n.Tree.text then fail "slot %d: text differs" i;
      if Flat.num fl i <> Tree.float_of n then fail "slot %d: num differs" i;
      (* The qualifier view: missing text compares as "". *)
      let t = Option.value n.Tree.text ~default:"" in
      if not (Flat.text_equals fl i t) then fail "slot %d: text_equals" i;
      if Flat.text_equals fl i (t ^ "!") then fail "slot %d: text_equals false positive" i;
      if Flat.n_children fl i <> List.length n.Tree.children then
        fail "slot %d: n_children" i;
      List.iter
        (fun (k, v) ->
          let key = Intern.find (Flat.intern fl) k in
          if Flat.attr_value fl i ~key <> Some (List.assoc k n.Tree.attrs) then
            fail "slot %d: attr %S value" i k;
          if not (Flat.attr_test fl i ~key ~expected:None) then
            fail "slot %d: attr %S presence" i k;
          if
            Flat.attr_test fl i ~key ~expected:(Some (v ^ "!"))
            && List.assoc k n.Tree.attrs <> v ^ "!"
          then fail "slot %d: attr %S false positive" i k)
        n.Tree.attrs;
      if Flat.attr_test fl i ~key:(-1) ~expected:None then
        fail "slot %d: key -1 matched" i;
      (* Structure links, against the pointer tree's child lists. *)
      (match n.Tree.children with
      | [] -> if Flat.first_child fl i <> -1 then fail "slot %d: leaf child" i
      | c :: _ ->
          if Flat.first_child fl i <> Hashtbl.find index_of_id c.Tree.id then
            fail "slot %d: first_child" i);
      let rec check_kids = function
        | a :: (b : Tree.node) :: rest ->
            let ia = Hashtbl.find index_of_id a.Tree.id in
            if Flat.next_sibling fl ia <> Hashtbl.find index_of_id b.Tree.id
            then fail "slot %d: next_sibling" ia;
            if Flat.parent fl ia <> i then fail "slot %d: parent" ia;
            check_kids (b :: rest)
        | [ (a : Tree.node) ] ->
            let ia = Hashtbl.find index_of_id a.Tree.id in
            if Flat.next_sibling fl ia <> -1 then fail "slot %d: last sibling" ia;
            if Flat.parent fl ia <> i then fail "slot %d: parent" ia
        | [] -> ()
      in
      check_kids n.Tree.children;
      let size = Tree.fold (fun acc _ -> acc + 1) 0 n in
      if Flat.subtree_size fl i <> size then fail "slot %d: subtree_size" i)
    nodes;
  if Flat.parent fl 0 <> -1 then fail "root parent";
  true

let check_image fl root =
  ignore (check_accessors fl root : bool);
  let back = Flat.to_tree fl in
  if not (Tree.equal_structure root back) then fail "to_tree differs";
  (* equal_structure ignores ids; the image must also keep them. *)
  let ids r = List.map (fun (n : Tree.node) -> n.Tree.id) (preorder r) in
  if ids root <> ids back then fail "to_tree ids differ";
  (* Id lookup, present and absent. *)
  List.iter
    (fun (n : Tree.node) ->
      match Flat.find_by_id fl n.Tree.id with
      | Some m when m.Tree.id = n.Tree.id -> ()
      | _ -> fail "find_by_id %d" n.Tree.id)
    (preorder root);
  let absent = 1 + List.fold_left max (-1) (ids root) in
  if Flat.find_by_id fl absent <> None then fail "find_by_id absent id";
  true

let prop_roundtrip (ft : Fragment.t) =
  Array.for_all
    (fun (fr : Fragment.fragment) ->
      let fl = Fragment.flat ft fr.Fragment.fid in
      check_image fl fr.Fragment.root)
    ft.Fragment.fragments

(* encode/decode: the wire image rebuilds an equivalent fragment on a
   fresh intern table and on a shared (pre-populated) one. *)
let prop_wire (ft : Fragment.t) =
  Array.for_all
    (fun (fr : Fragment.fragment) ->
      let fl = Fragment.flat ft fr.Fragment.fid in
      let s = Flat.encode fl in
      (match Flat.decode s with
      | None -> fail "decode (encode fl) = None"
      | Some fl2 -> ignore (check_image fl2 fr.Fragment.root : bool));
      (match Flat.decode ~intern:(Fragment.intern ft) s with
      | None -> fail "decode ~intern = None"
      | Some fl2 -> ignore (check_image fl2 fr.Fragment.root : bool));
      (* Through a Wire section: kind survives and the payload decodes
         to the same tree. *)
      (match Wire.section_of_string (Wire.section_to_string (Wire.Frag_flat fl)) with
      | Some (Wire.Frag_flat fl2) ->
          if not (Tree.equal_structure fr.Fragment.root (Flat.to_tree fl2))
          then fail "Frag_flat section roundtrip differs"
      | _ -> fail "Frag_flat section did not survive");
      true)
    ft.Fragment.fragments

(* Decoding is total: truncations and bit flips of a valid image must
   return [None] or a valid image, never raise. *)
let prop_corrupt (ft : Fragment.t) =
  let s = Flat.encode (Fragment.flat ft 0) in
  let n = String.length s in
  for cut = 0 to min n 40 do
    ignore (Flat.decode (String.sub s 0 cut) : Flat.t option)
  done;
  for i = 0 to min (n - 1) 60 do
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
    ignore (Flat.decode (Bytes.unsafe_to_string b) : Flat.t option)
  done;
  true

(* Directed: the store's cached image is shared (same physical image
   until an update bumps the generation), and a #document wrapper never
   gets a slot — only real fragment nodes do. *)
let test_cache_identity () =
  let b = Tree.builder () in
  let doc =
    Tree.doc_of_root
      (Tree.elem b "a" [ Tree.elem b "b" []; Tree.leaf b "c" "7" ])
  in
  let ft = Fragment.trivial doc in
  let fl1 = Fragment.flat ft 0 in
  let fl2 = Fragment.flat ft 0 in
  Alcotest.(check bool) "same image" true (fl1 == fl2);
  Fragment.bump_generation ft 0;
  let fl3 = Fragment.flat ft 0 in
  Alcotest.(check bool) "rebuilt after bump" true (fl1 != fl3);
  Alcotest.(check bool)
    "rebuild equal" true
    (Tree.equal_structure (Flat.to_tree fl1) (Flat.to_tree fl3))

let test_empty_and_garbage () =
  Alcotest.(check bool) "empty" true (Flat.decode "" = None);
  Alcotest.(check bool)
    "garbage" true
    (Flat.decode (String.make 64 '\xFF') = None)

let qtest name ~count:n prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(count n) arbitrary_store prop)

let () =
  Alcotest.run "flat"
    [
      ( "flat",
        [
          Alcotest.test_case "store image cached until generation bump" `Quick
            test_cache_identity;
          Alcotest.test_case "decode rejects empty and garbage" `Quick
            test_empty_and_garbage;
          qtest "of_tree/to_tree lossless + accessors agree" ~count:200
            prop_roundtrip;
          qtest "encode/decode and Frag_flat section roundtrip" ~count:100
            prop_wire;
          qtest "decode is total on corrupt input" ~count:50 prop_corrupt;
        ] );
    ]

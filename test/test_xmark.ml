(* The XMark-style generator: determinism, size control, schema shape,
   and end-to-end agreement on the paper's Q1–Q4. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Xmark = Pax_xmark.Xmark
module Rng = Pax_xmark.Rng

let doc = Xmark.doc ~seed:42 ~total_nodes:3000 ~n_sites:3

let test_deterministic () =
  let d1 = Xmark.doc ~seed:7 ~total_nodes:1000 ~n_sites:2 in
  let d2 = Xmark.doc ~seed:7 ~total_nodes:1000 ~n_sites:2 in
  Alcotest.(check bool) "same seed, same document" true
    (Tree.equal_structure d1.Tree.root d2.Tree.root);
  let d3 = Xmark.doc ~seed:8 ~total_nodes:1000 ~n_sites:2 in
  Alcotest.(check bool) "different seed, different document" false
    (Tree.equal_structure d1.Tree.root d3.Tree.root)

let test_size_control () =
  List.iter
    (fun n ->
      let d = Xmark.doc ~seed:1 ~total_nodes:n ~n_sites:1 in
      let actual = d.Tree.node_count in
      Alcotest.(check bool)
        (Printf.sprintf "%d nodes requested, %d produced" n actual)
        true
        (actual > n * 70 / 100 && actual < n * 1300 / 1000))
    [ 500; 2000; 10000 ]

let count q = List.length (Semantics.eval (Pax_xpath.Parse.query q) doc.Tree.root)

let test_schema_shape () =
  Alcotest.(check int) "three sites" 3 (count "/sites/site");
  Alcotest.(check bool) "persons exist" true (count "/sites/site/people/person" > 10);
  Alcotest.(check bool) "persons have ages" true
    (count "//person/profile/age" > 0);
  Alcotest.(check bool) "US addresses exist" true
    (count "//person/address[country/text() = \"US\"]" > 0);
  Alcotest.(check bool) "annotations under open auctions" true
    (count "/sites/site/open_auctions//annotation" > 0);
  Alcotest.(check bool) "regions populated" true (count "//regions/*/item" > 0);
  Alcotest.(check bool) "closed auctions priced" true (count "//closed_auction/price" > 0)

let test_paper_queries_nonempty () =
  List.iter
    (fun (name, q) ->
      Alcotest.(check bool) (name ^ " selects something") true (count q > 0))
    Xmark.queries

let test_q3_subset_q1 () =
  let q1 = Semantics.eval_ids (Pax_xpath.Parse.query Xmark.q1) doc.Tree.root in
  let q3 = Semantics.eval_ids (Pax_xpath.Parse.query Xmark.q3) doc.Tree.root in
  (* Q3 selects creditcards of a subset of Q1's persons. *)
  Alcotest.(check bool) "Q3 smaller than Q1" true
    (List.length q3 < List.length q1);
  Alcotest.(check bool) "Q3 nonempty" true (q3 <> [])

let test_q4_superset_q3 () =
  let q3 = Semantics.eval_ids (Pax_xpath.Parse.query Xmark.q3) doc.Tree.root in
  let q4 = Semantics.eval_ids (Pax_xpath.Parse.query Xmark.q4) doc.Tree.root in
  (* Q4 relaxes the /site/people prefix with //people: at least Q3. *)
  Alcotest.(check bool) "Q3 ⊆ Q4" true
    (List.for_all (fun id -> List.mem id q4) q3)

let test_attribute_queries () =
  (* XMark persons carry @id; interests carry @category. *)
  Alcotest.(check bool) "persons by id attribute" true
    (count "//person[@id = \"person0\"]" >= 1);
  Alcotest.(check bool) "interest categories" true
    (count "//person[profile/interest/@category]" > 0);
  let cuts = Pax_frag.Fragment.cuts_by_tag doc ~tag:"site" in
  let ft = Pax_frag.Fragment.fragmentize doc ~cuts in
  let cl = Pax_dist.Cluster.one_site_per_fragment ft in
  let q = Query.of_string "//person[profile/interest/@category = \"category7\"]/name" in
  let r = Pax_core.Pax2.run ~annotations:true cl q in
  Alcotest.(check (list int)) "attribute query distributed"
    (Semantics.eval_ids q.Query.ast doc.Tree.root)
    r.Pax_core.Run_result.answer_ids

let test_distributed_q1_to_q4 () =
  (* Fragment by site and run the full algorithms on the generated data. *)
  let cuts = Pax_frag.Fragment.cuts_by_tag doc ~tag:"site" in
  let ft = Pax_frag.Fragment.fragmentize doc ~cuts in
  let cl = Pax_dist.Cluster.one_site_per_fragment ft in
  List.iter
    (fun (name, qs) ->
      let q = Query.of_string qs in
      let expected = Semantics.eval_ids q.Query.ast doc.Tree.root in
      List.iter
        (fun (algo, run) ->
          let r : Pax_core.Run_result.t = run cl q in
          Alcotest.(check (list int))
            (Printf.sprintf "%s via %s" name algo)
            expected r.Pax_core.Run_result.answer_ids)
        [
          ("PaX3", fun cl q -> Pax_core.Pax3.run cl q);
          ("PaX3-XA", fun cl q -> Pax_core.Pax3.run ~annotations:true cl q);
          ("PaX2", fun cl q -> Pax_core.Pax2.run cl q);
          ("PaX2-XA", fun cl q -> Pax_core.Pax2.run ~annotations:true cl q);
        ])
    Xmark.queries

let test_rng () =
  let r = Rng.create ~seed:1 in
  let xs = List.init 1000 (fun _ -> Rng.int r 10) in
  List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 10)) xs;
  (* All buckets hit over 1000 draws. *)
  for v = 0 to 9 do
    Alcotest.(check bool) (Printf.sprintf "bucket %d hit" v) true (List.mem v xs)
  done;
  let r1 = Rng.create ~seed:5 and r2 = Rng.create ~seed:5 in
  Alcotest.(check (list int)) "deterministic"
    (List.init 20 (fun _ -> Rng.int r1 1000))
    (List.init 20 (fun _ -> Rng.int r2 1000));
  let f = Rng.float (Rng.create ~seed:3) 1.0 in
  Alcotest.(check bool) "float in range" true (f >= 0. && f < 1.)

let () =
  Alcotest.run "xmark"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "size control" `Quick test_size_control;
          Alcotest.test_case "schema shape" `Quick test_schema_shape;
          Alcotest.test_case "rng" `Quick test_rng;
        ] );
      ( "queries",
        [
          Alcotest.test_case "Q1-Q4 nonempty" `Quick test_paper_queries_nonempty;
          Alcotest.test_case "Q3 subset of Q1 persons" `Quick test_q3_subset_q1;
          Alcotest.test_case "Q3 subset of Q4" `Quick test_q4_superset_q3;
          Alcotest.test_case "distributed Q1-Q4" `Quick test_distributed_q1_to_q4;
          Alcotest.test_case "attribute queries" `Quick test_attribute_queries;
        ] );
    ]

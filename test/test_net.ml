(* The socket transport, end to end over loopback Unix sockets:
   - wire codec round trips and totality under mutation;
   - differential runs: PaX2/PaX3 through forked site servers must be
     observably identical to the in-process transport (answers, visit
     counts, accounted messages), with measured socket bytes inside
     [accounted, accounted + documented framing overhead];
   - a SIGKILLed server surfaces as Site_unreachable once the retry
     budget is spent — never a hang (the suite runs under an alarm). *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Transport = Pax_dist.Transport
module Wire = Pax_wire.Wire
module Sockio = Pax_net.Sockio
module Server = Pax_net.Server
module Client = Pax_net.Client

exception Timed_out

(* Hard guard: any hang in the socket machinery kills the test, not the
   suite. *)
let with_timeout secs f =
  let old =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timed_out))
  in
  ignore (Unix.alarm secs);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm old)
    f

(* ------------------------------------------------------------------ *)
(* Wire codec units                                                   *)
(* ------------------------------------------------------------------ *)

let sample_vec =
  [|
    Formula.true_;
    Formula.false_;
    Formula.conj
      (Formula.var (Var.Qual (3, 1)))
      (Formula.not_ (Formula.var (Var.Sel_ctx (7, 0))));
  |]

let sample_answer =
  { Wire.a_id = 42; a_tag = "item"; a_text = Some "a<b&\"c\""; a_attrs = [ ("id", "i7"); ("featured", "") ] }

let sample_msgs =
  [
    Wire.Visit_request
      {
        run = 123456;
        round = 0;
        site = 2;
        epoch = 0;
        label = "stage1";
        parent = None;
        call =
          Wire.Pax2_stage1
            {
              query = "//person[profile/education]";
              frags =
                [
                  { Wire.fe_fid = 0; fe_is_root = true; fe_init = None };
                  {
                    Wire.fe_fid = 3;
                    fe_is_root = false;
                    fe_init = Some sample_vec;
                  };
                ];
            };
      };
    Wire.Visit_request
      {
        run = 1;
        round = 1;
        site = 0;
        epoch = 3;
        label = "stage2";
        (* Trace context rides as a trailing varint; exercise a large id. *)
        parent = Some ((1 lsl 54) + 77);
        call =
          Wire.Pax2_stage2
            {
              frags =
                [ (1, [| true; false; true |], [ (2, [| false |]); (3, [||]) ]) ];
            };
      };
    Wire.Visit_request
      {
        run = 9;
        round = 0;
        site = 1;
        epoch = 1;
        label = "stage1";
        parent = Some 1;
        call = Wire.Pax3_stage1 { query = "a[b]//c"; fids = [ 0; 2; 5 ] };
      };
    Wire.Visit_request
      {
        run = 9;
        round = 1;
        site = 1;
        epoch = 4096;
        label = "stage2";
        parent = None;
        call =
          Wire.Pax3_stage2
            {
              query = "a[b]//c";
              frags =
                [
                  ( { Wire.fe_fid = 2; fe_is_root = false; fe_init = None },
                    [ (4, [| true; true |]) ] );
                ];
            };
      };
    Wire.Visit_request
      {
        run = 9;
        round = 2;
        site = 1;
        epoch = 7;
        label = "stage3";
        parent = Some 4194304;
        call = Wire.Pax3_stage3 { frags = [ (2, [| false; true |]) ] };
      };
    Wire.Visit_reply
      {
        run = 9;
        round = 0;
        reply =
          Ok
            (Wire.Frag_results
               [
                 {
                   Wire.fr_fid = 2;
                   fr_vec = Some sample_vec;
                   fr_ctxs = [ (4, sample_vec); (5, [||]) ];
                   fr_answers = [ sample_answer ];
                   fr_cands = 3;
                   fr_ops = 99;
                 };
               ]);
      };
    Wire.Visit_reply
      {
        run = 9;
        round = 2;
        reply =
          Ok (Wire.Final_answers { answers = [ sample_answer ]; ops = 7 });
      };
    Wire.Visit_reply
      { run = 5; round = 1; reply = Error "no stage-1 state for fragment 9" };
    Wire.Ping;
    Wire.Pong;
    Wire.Shutdown;
    Wire.Stats_request;
    Wire.Stats_reply [ ("pax_visits_total{site=\"1\"}", 4.); ("x", 0.5) ];
    Wire.Run_done { run = 987654321 };
    (* Elastic-sharding control plane (docs/SHARDING.md).  Image bytes
       are opaque at the wire layer, so arbitrary strings round-trip. *)
    Wire.Frag_fetch { fid = 3; kind = Wire.Tree_frag; parent = None };
    Wire.Frag_fetch { fid = 0; kind = Wire.Graph_frag; parent = Some 42 };
    Wire.Frag_image
      {
        fid = 3;
        image =
          Ok { Wire.fi_kind = Wire.Tree_frag; fi_bytes = "\x00flat\xffimage" };
      };
    Wire.Frag_image { fid = 9; image = Error "site server holds no fragment 9" };
    Wire.Frag_install
      {
        fid = 3;
        epoch = 2;
        image = { Wire.fi_kind = Wire.Graph_frag; fi_bytes = "pgf1\x01" };
        parent = Some 7;
      };
    Wire.Frag_retire { fid = 3; epoch = 2; kind = Wire.Tree_frag; parent = None };
    Wire.Admin_reply { reply = Ok "installed fragment 3 at epoch 2" };
    Wire.Admin_reply { reply = Error "corrupt flat image for fragment 3" };
    (* Span harvest (docs/OBSERVABILITY.md): telemetry control plane,
       never tallied.  Floats round-trip bit-exactly (IEEE-754 bits on
       the wire), so structural equality holds. *)
    Wire.Spans_fetch;
    Wire.Spans_reply { server_now = 12.5; spans = [] };
    Wire.Spans_reply
      {
        server_now = 1754700000.125;
        spans =
          [
            {
              Pax_obs.Span.sp_name = "stage kernel";
              sp_cat = "stage";
              sp_track = "site 2";
              sp_begin = 3.0625;
              sp_dur = 0.5;
              sp_args = [ ("run", "9"); ("round", "0") ];
              sp_seq = 4;
              sp_id = (17 lsl 22) lor 1023;
              sp_parent = Some ((3 lsl 22) lor 77);
            };
            {
              Pax_obs.Span.sp_name = "decode request";
              sp_cat = "wire";
              sp_track = "site 2";
              sp_begin = 0.;
              sp_dur = 0.;
              sp_args = [];
              sp_seq = 5;
              sp_id = (18 lsl 22) lor 1023;
              sp_parent = None;
            };
          ];
      };
  ]

let test_roundtrip () =
  List.iter
    (fun msg ->
      match Wire.decode (Wire.encode msg) with
      | Ok msg' ->
          Alcotest.(check bool) "encode/decode round trip" true (msg = msg')
      | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e)
    sample_msgs

(* Protocol v2: the correlation id is an envelope field — stamped on a
   request, echoed on its reply, invisible to the v1-shaped API. *)
let test_corr_roundtrip () =
  List.iter
    (fun msg ->
      List.iter
        (fun corr ->
          match Wire.decode_corr (Wire.encode ~corr msg) with
          | Ok (corr', msg') ->
              Alcotest.(check int) "correlation id echoes" corr corr';
              Alcotest.(check bool) "message round trips" true (msg = msg')
          | Error e -> Alcotest.failf "decode_corr failed: %a" Wire.pp_error e)
        [ 0; 1; 255; 123_456; (1 lsl 54) + 3 ];
      (* The corr-blind decoder still accepts every frame. *)
      match Wire.decode (Wire.encode ~corr:99 msg) with
      | Ok msg' ->
          Alcotest.(check bool) "decode drops the corr" true (msg = msg')
      | Error e -> Alcotest.failf "corr-blind decode failed: %a" Wire.pp_error e)
    sample_msgs

let test_decode_total () =
  (* Truncations at every length, byte flips at every position, for
     every sample message: decode must return, and never misparse a
     damaged frame as a longer-than-input value. *)
  List.iter
    (fun msg ->
      let s = Wire.encode msg in
      for cut = 0 to String.length s - 1 do
        match Wire.decode (String.sub s 0 cut) with
        | Ok _ | Error _ -> ()
      done;
      for pos = 0 to String.length s - 1 do
        for byte = 0 to 255 do
          let b = Bytes.of_string s in
          Bytes.set b pos (Char.chr byte);
          match Wire.decode (Bytes.to_string b) with
          | Ok _ | Error _ -> ()
        done
      done)
    sample_msgs

let test_decode_errors () =
  (match Wire.decode "" with
  | Error Wire.Truncated -> ()
  | _ -> Alcotest.fail "empty input must be Truncated");
  (match Wire.decode "\x00\x00" with
  | Error Wire.Truncated -> ()
  | _ -> Alcotest.fail "short header must be Truncated");
  let good = Wire.encode Wire.Ping in
  (match Wire.decode (good ^ "junk") with
  | Error (Wire.Corrupt _) -> ()
  | _ -> Alcotest.fail "bytes beyond the frame must be Corrupt");
  let bad_version = Bytes.of_string good in
  Bytes.set bad_version 4 '\xee';
  match Wire.decode (Bytes.to_string bad_version) with
  | Error (Wire.Bad_version 0xee) -> ()
  | _ -> Alcotest.fail "wrong version byte must be Bad_version"

let test_section_bytes_match_measure () =
  let q = Query.of_string "//person[profile/education]/name" in
  Alcotest.(check int) "query section = Measure.query"
    (Pax_dist.Measure.query q)
    (Wire.query_section_bytes q.Query.source);
  Alcotest.(check int) "vector section = Measure.formula_array"
    (Pax_dist.Measure.formula_array sample_vec)
    (Wire.vectors_section_bytes sample_vec);
  Alcotest.(check int) "bools section = Measure.bool_array"
    (Pax_dist.Measure.bool_array [| true; false |])
    (Wire.resolution_section_bytes [| true; false |])

let test_addr_parse () =
  let ok s expected =
    match Sockio.addr_of_string s with
    | Ok a -> Alcotest.(check string) s expected (Sockio.addr_to_string a)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  ok "/tmp/x.sock" "unix:/tmp/x.sock";
  ok "./rel.sock" "unix:./rel.sock";
  ok "localhost:7000" "localhost:7000";
  ok ":7000" "127.0.0.1:7000";
  List.iter
    (fun s ->
      match Sockio.addr_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" s)
    [ ""; "host:"; "host:0"; "host:99999"; "unix:"; "noport" ]

(* ------------------------------------------------------------------ *)
(* Differential: sockets vs in-process                                *)
(* ------------------------------------------------------------------ *)

(* An Exp-2-shaped setup: an XMark document cut at its site subtrees,
   fragments round-robined over fewer machines than fragments. *)
let make_setup () =
  let doc = Pax_xmark.Xmark.doc ~seed:11 ~total_nodes:1600 ~n_sites:4 in
  let ft =
    Fragment.fragmentize doc ~cuts:(Fragment.cuts_by_tag doc ~tag:"site")
  in
  (doc, ft)

let queries =
  [
    "//person[profile/education]";
    "//person/profile/age";
    "//regions/*/item/name";
    "//person[profile/interest/@category]/name";
    "/site/open_auctions/open_auction[bidder]";
    "//item[location/text() = \"United States\"]";
  ]

let site_frags cl ft site =
  List.map
    (fun fid -> (fid, (Fragment.fragment ft fid).Fragment.root))
    (Cluster.fragments_on cl site)

let with_servers ft ~n_sites f =
  let cl = Pax_dist.Placement.cluster_round_robin ft ~n_sites in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_net_test_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  Sys.mkdir dir 0o755;
  let addrs =
    Array.init n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr -> Server.spawn ~addr ~frags:(site_frags cl ft site) ())
         addrs)
  in
  let client = Client.create ~timeout:20. ~addrs () in
  Cluster.set_transport cl (Some (Client.transport client));
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites client;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (fun a ->
          match a with
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () -> f cl client pids)

let accounted (r : Cluster.report) =
  r.Cluster.control_bytes + r.Cluster.answer_bytes + r.Cluster.tree_bytes

let check_differential engine_name engine () =
  with_timeout 120 (fun () ->
      let _, ft = make_setup () in
      let n_sites = 3 in
      let cl_ctrl = Pax_dist.Placement.cluster_round_robin ft ~n_sites in
      with_servers ft ~n_sites (fun cl_net _client _pids ->
          List.iter
            (fun qs ->
              let q = Query.of_string qs in
              let r_ctrl : Pax_core.Run_result.t = engine cl_ctrl q in
              let r_net : Pax_core.Run_result.t = engine cl_net q in
              let name what = Printf.sprintf "%s %s: %s" engine_name qs what in
              Alcotest.(check (list int))
                (name "answers")
                r_ctrl.Pax_core.Run_result.answer_ids
                r_net.Pax_core.Run_result.answer_ids;
              let rep_c = r_ctrl.Pax_core.Run_result.report in
              let rep_n = r_net.Pax_core.Run_result.report in
              Alcotest.(check (array int))
                (name "per-site visits")
                rep_c.Cluster.visits rep_n.Cluster.visits;
              Alcotest.(check (list string))
                (name "rounds")
                rep_c.Cluster.rounds rep_n.Cluster.rounds;
              Alcotest.(check int)
                (name "accounted control bytes")
                rep_c.Cluster.control_bytes rep_n.Cluster.control_bytes;
              Alcotest.(check int)
                (name "accounted answer bytes")
                rep_c.Cluster.answer_bytes rep_n.Cluster.answer_bytes;
              Alcotest.(check bool)
                (name "identical message log")
                true
                (Cluster.messages cl_ctrl = Cluster.messages cl_net);
              Alcotest.(check int)
                (name "total ops")
                rep_c.Cluster.total_ops rep_n.Cluster.total_ops;
              (* Byte honesty: what crossed the sockets this run. *)
              let stats =
                match Cluster.net_stats cl_net with
                | Some s -> s
                | None -> Alcotest.fail (name "net_stats missing")
              in
              let measured =
                stats.Transport.sent_bytes + stats.Transport.received_bytes
              in
              Alcotest.(check (option int))
                (name "report.measured_bytes")
                (Some measured) rep_n.Cluster.measured_bytes;
              let acct = accounted rep_n in
              Alcotest.(check int)
                (name "section bytes = accounted bytes")
                acct stats.Transport.section_bytes;
              if measured < acct then
                Alcotest.failf "%s: measured %d < accounted %d"
                  (name "lower bound") measured acct;
              let bound =
                acct
                + (stats.Transport.frames * Wire.frame_overhead)
                + (stats.Transport.frag_entries * Wire.frag_overhead)
                + (stats.Transport.sections * Wire.section_overhead)
              in
              if measured > bound then
                Alcotest.failf "%s: measured %d > accounted %d + overhead %d"
                  (name "upper bound") measured acct (bound - acct))
            queries))

(* Annotated runs ship explicit init vectors; answers must still agree
   (byte parity is not asserted here — fe_init is extra wire payload
   the simulator's model does not charge for). *)
let check_differential_annotated () =
  with_timeout 120 (fun () ->
      let _, ft = make_setup () in
      let n_sites = 3 in
      let cl_ctrl = Pax_dist.Placement.cluster_round_robin ft ~n_sites in
      with_servers ft ~n_sites (fun cl_net _client _pids ->
          List.iter
            (fun qs ->
              let q = Query.of_string qs in
              List.iter
                (fun (engine_name, engine) ->
                  let r_ctrl : Pax_core.Run_result.t =
                    engine ~annotations:true cl_ctrl q
                  in
                  let r_net : Pax_core.Run_result.t =
                    engine ~annotations:true cl_net q
                  in
                  Alcotest.(check (list int))
                    (Printf.sprintf "%s %s: annotated answers" engine_name qs)
                    r_ctrl.Pax_core.Run_result.answer_ids
                    r_net.Pax_core.Run_result.answer_ids;
                  Alcotest.(check (array int))
                    (Printf.sprintf "%s %s: annotated visits" engine_name qs)
                    r_ctrl.Pax_core.Run_result.report.Cluster.visits
                    r_net.Pax_core.Run_result.report.Cluster.visits)
                [
                  ("pax2", fun ~annotations cl q ->
                      Pax_core.Pax2.run ~annotations cl q);
                  ("pax3", fun ~annotations cl q ->
                      Pax_core.Pax3.run ~annotations cl q);
                ])
            [ "//person[profile/education]"; "//regions/*/item/name" ]))

(* ------------------------------------------------------------------ *)
(* Failure: a killed server is a typed error, not a hang              *)
(* ------------------------------------------------------------------ *)

let test_killed_server () =
  with_timeout 60 (fun () ->
      let _, ft = make_setup () in
      with_servers ft ~n_sites:3 (fun cl_net _client pids ->
          Cluster.set_retry cl_net
            {
              Pax_dist.Retry.max_attempts = 3;
              base_delay = 0.01;
              multiplier = 1.0;
              max_delay = 0.01;
            };
          let q = Query.of_string "//person[profile/education]" in
          (* A clean run first: connections to every site are live. *)
          let r = Pax_core.Pax2.run cl_net q in
          Alcotest.(check bool) "warm run answers" true
            (r.Pax_core.Run_result.answer_ids <> []);
          (* Kill one site's server; its connection dies under the
             client.  The next run must fail typed, after the retry
             budget, naming the dead site. *)
          let dead = List.nth pids 1 in
          Unix.kill dead Sys.sigkill;
          ignore (Unix.waitpid [] dead);
          match Pax_core.Pax2.run cl_net q with
          | _ -> Alcotest.fail "run against a dead site must not succeed"
          | exception Cluster.Site_unreachable { site; attempts; _ } ->
              Alcotest.(check int) "the killed site" 1 site;
              Alcotest.(check int) "after the retry budget" 3 attempts))

(* A server that was never started: connection refused from the very
   first attempt, same typed failure. *)
let test_refused_connection () =
  with_timeout 60 (fun () ->
      let _, ft = make_setup () in
      let cl = Pax_dist.Placement.cluster_round_robin ft ~n_sites:2 in
      let dir = Filename.get_temp_dir_name () in
      let addrs =
        [|
          Sockio.Unix_path (Filename.concat dir "pax_net_nobody_0.sock");
          Sockio.Unix_path (Filename.concat dir "pax_net_nobody_1.sock");
        |]
      in
      let client = Client.create ~timeout:5. ~addrs () in
      Cluster.set_transport cl (Some (Client.transport client));
      Cluster.set_retry cl
        {
          Pax_dist.Retry.max_attempts = 2;
          base_delay = 0.01;
          multiplier = 1.0;
          max_delay = 0.01;
        };
      let q = Query.of_string "//person" in
      match Pax_core.Pax3.run cl q with
      | _ -> Alcotest.fail "no servers: run must fail"
      | exception Cluster.Site_unreachable { attempts; _ } ->
          Alcotest.(check int) "budget spent" 2 attempts)

(* Faults and transports are mutually exclusive by contract. *)
let test_fault_plan_rejected () =
  let _, ft = make_setup () in
  with_timeout 60 (fun () ->
      with_servers ft ~n_sites:2 (fun cl_net _client _pids ->
          Cluster.set_fault cl_net
            (Pax_dist.Fault.seeded ~drop:0.5 ~dup:0. ~lose:0. ~crash:0. ~seed:1 ());
          let q = Query.of_string "//person" in
          match Pax_core.Pax2.run cl_net q with
          | _ -> Alcotest.fail "fault plan + transport must be rejected"
          | exception Invalid_argument _ -> ()))

let () =
  Random.self_init ();
  Alcotest.run "net"
    [
      ( "wire",
        [
          Alcotest.test_case "round trips" `Quick test_roundtrip;
          Alcotest.test_case "correlation ids" `Quick test_corr_roundtrip;
          Alcotest.test_case "decode is total" `Quick test_decode_total;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "sections = Measure" `Quick
            test_section_bytes_match_measure;
          Alcotest.test_case "addresses" `Quick test_addr_parse;
        ] );
      ( "differential",
        [
          Alcotest.test_case "pax2 over sockets" `Quick
            (check_differential "pax2" (fun cl q -> Pax_core.Pax2.run cl q));
          Alcotest.test_case "pax3 over sockets" `Quick
            (check_differential "pax3" (fun cl q -> Pax_core.Pax3.run cl q));
          Alcotest.test_case "annotated engines" `Quick
            check_differential_annotated;
        ] );
      ( "failures",
        [
          Alcotest.test_case "killed server" `Quick test_killed_server;
          Alcotest.test_case "refused connection" `Quick
            test_refused_connection;
          Alcotest.test_case "fault plan rejected" `Quick
            test_fault_plan_rejected;
        ] );
    ]

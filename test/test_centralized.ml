(* The vector-based centralized evaluator against the set-based oracle,
   plus the ops accounting. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module H = Test_helpers

let mini = H.Data.mini_sites ()

let agree query_text =
  let q = Query.of_string query_text in
  Alcotest.(check (list int))
    (query_text ^ " agrees with the oracle")
    (Semantics.eval_ids q.Query.ast mini.Tree.root)
    (Pax_core.Centralized.eval_ids q mini.Tree.root)

let test_xmark_queries () =
  List.iter agree
    [
      "/sites/site/people/person";
      "/sites/site/open_auctions//annotation";
      "/sites/site/people/person[profile/age > 20 and address/country = \"US\"]/creditcard";
      "/sites//people/person[profile/age > 20 and address/country = \"US\"]/creditcard";
      "//person[address/country = \"FR\"]/name";
      "//annotation[happiness >= 5]";
      "//person[not(creditcard)]/name";
      "//*[price]";
      "/sites/site/*";
      "//person[profile/age > 20 or address/country = \"FR\"]";
    ]

let test_counts () =
  let q = Query.of_string "//person[address/country = \"US\"]/creditcard" in
  let r = Pax_core.Centralized.run q mini.Tree.root in
  Alcotest.(check int) "two US persons with creditcards" 2
    (List.length r.Pax_core.Centralized.answers);
  Alcotest.(check bool) "qualifier ops counted" true
    (r.Pax_core.Centralized.qual_ops > 0);
  Alcotest.(check bool) "selection ops counted" true
    (r.Pax_core.Centralized.sel_ops > 0)

let test_no_qualifier_skips_pass () =
  let q = Query.of_string "/sites/site/people/person" in
  let r = Pax_core.Centralized.run q mini.Tree.root in
  Alcotest.(check int) "no qualifier pass" 0 r.Pax_core.Centralized.qual_ops;
  Alcotest.(check int) "four persons" 4 (List.length r.Pax_core.Centralized.answers)

let test_rejects_virtual_nodes () =
  let c = H.Data.clientele () in
  let ft = H.Data.clientele_ftree c in
  let frag_root = (Pax_frag.Fragment.fragment ft 0).Pax_frag.Fragment.root in
  let q = Query.of_string "//name" in
  match Pax_core.Centralized.run q frag_root with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "should reject trees with virtual nodes"

(* Total-computation claim: ops are O(|Q| |T|). *)
let test_ops_linear () =
  let q = Query.of_string "//person[profile/age > 20]/name" in
  let r = Pax_core.Centralized.run q mini.Tree.root in
  let budget =
    Query.size q * mini.Tree.node_count * 8 (* generous constant *)
  in
  Alcotest.(check bool) "ops within O(|Q| |T|)" true
    (r.Pax_core.Centralized.qual_ops + r.Pax_core.Centralized.sel_ops <= budget)

let () =
  Alcotest.run "centralized"
    [
      ( "evaluation",
        [
          Alcotest.test_case "xmark-shaped queries" `Quick test_xmark_queries;
          Alcotest.test_case "answer counts" `Quick test_counts;
          Alcotest.test_case "no-qualifier fast path" `Quick test_no_qualifier_skips_pass;
          Alcotest.test_case "virtual nodes rejected" `Quick test_rejects_virtual_nodes;
          Alcotest.test_case "ops linear" `Quick test_ops_linear;
        ] );
    ]

(* COUNT aggregate: correct counts, ≤2 visits, zero answer bytes even
   for huge answers. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Cluster = Pax_dist.Cluster
module H = Test_helpers

let c = H.Data.clientele ()

let count ?annotations qs =
  let q = Query.of_string qs in
  let cl = H.Data.clientele_cluster c in
  let n, report = Pax_core.Count.run ?annotations cl q in
  let expected = List.length (Semantics.eval_ids q.Query.ast c.doc.Tree.root) in
  Alcotest.(check int) (qs ^ " count") expected n;
  report

let test_counts () =
  List.iter
    (fun qs -> ignore (count qs))
    [
      "client";
      "//stock";
      "//broker[//stock/code/text() = \"GOOG\"]/name";
      "client[country/text() = \"US\"]//stock/qt";
      "//nothing";
      "//stock[buy >= 370]";
    ]

let test_no_answer_bytes () =
  let report = count "//stock/code" in
  Alcotest.(check int) "counts, not elements" 0 report.Cluster.answer_bytes;
  Alcotest.(check int) "no tree data" 0 report.Cluster.tree_bytes

let test_visits () =
  let report = count "client[country/text() = \"US\"]/broker/name" in
  Alcotest.(check bool) "two visits max" true (report.Cluster.max_visits <= 2)

let test_annotations () =
  let report = count ~annotations:true "client/name" in
  Alcotest.(check int) "single visit with XA on a local query" 1
    report.Cluster.max_visits

(* Communication independent of the answer size: count a query with a
   huge answer and compare to a tiny one. *)
let test_traffic_independent_of_answer () =
  let r_all = count "//*" in
  let r_one = count "client/name" in
  Alcotest.(check bool) "control bytes comparable despite 30x answers" true
    (r_all.Cluster.control_bytes < 3 * r_one.Cluster.control_bytes
    || r_all.Cluster.control_bytes < 2000)

let prop_random =
  QCheck.Test.make ~name:"count = |semantics| on random scenarios" ~count:300
    H.Gen.arbitrary_scenario (fun s ->
      let q = Query.of_ast s.H.Gen.s_query in
      let expected =
        List.length (Semantics.eval_ids s.H.Gen.s_query s.H.Gen.s_doc.Tree.root)
      in
      let n, _ = Pax_core.Count.run s.H.Gen.s_cluster q in
      n = expected)

let () =
  Alcotest.run "count"
    [
      ( "count",
        [
          Alcotest.test_case "exact counts" `Quick test_counts;
          Alcotest.test_case "no answer bytes" `Quick test_no_answer_bytes;
          Alcotest.test_case "visits" `Quick test_visits;
          Alcotest.test_case "annotations" `Quick test_annotations;
          Alcotest.test_case "traffic vs answer size" `Quick
            test_traffic_independent_of_answer;
          QCheck_alcotest.to_alcotest prop_random;
        ] );
    ]

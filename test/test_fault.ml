(* Fault-plan regression tests: golden fault schedules (dropped
   stage-1 vectors, a site crashing mid-stage-2, duplicated resolution
   messages, lost visit replies) must each terminate with the correct
   answers or a typed [Cluster.Site_unreachable] — never a wrong answer
   and never a hang — and the trace must account visits and retries the
   way the paper's bounds are stated: one logical visit per (site,
   round), however many deliveries it took. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Cluster = Pax_dist.Cluster
module Fault = Pax_dist.Fault
module Retry = Pax_dist.Retry
module Trace = Pax_dist.Trace
module Run_result = Pax_core.Run_result
module H = Test_helpers

(* The paper's Fig. 2 placement: S0 {F0}, S1 {F1 E*trade broker},
   S2 {F2 NASDAQ/E*trade, F4 NASDAQ/Bache}, S3 {F3 CIBC}.  The query
   matches only inside F2, whose selection context is symbolic without
   annotations, so stage 2/3 really does visit S2. *)
let qs = "//stock[qt/text()=\"40\"]/code"

let setup () =
  let c = H.Data.clientele () in
  let cl = H.Data.clientele_cluster c in
  let q = Query.of_string qs in
  let oracle = Pax_core.Centralized.eval_ids q c.H.Data.doc.Tree.root in
  Alcotest.(check bool) "query matches something" true (oracle <> []);
  (cl, q, oracle)

let check_ids name expected (r : Run_result.t) =
  Alcotest.(check (list int)) name expected r.Run_result.answer_ids

let events_with pred tr = List.exists pred (Trace.events tr)

(* ------------------------------------------------------------------ *)
(* Golden schedules                                                   *)
(* ------------------------------------------------------------------ *)

(* Every stage-1 partial-answer vector is dropped once and
   retransmitted; answers and logical visit counts are unchanged. *)
let test_drop_stage1_vectors () =
  let cl, q, oracle = setup () in
  Cluster.set_fault cl
    (Fault.drop_message (fun c ->
         c.Fault.m_kind = Trace.Vectors && c.Fault.m_round = 0));
  let r2 = Pax_core.Pax2.run cl q in
  check_ids "PaX2 under dropped vectors" oracle r2;
  let tr = Run_result.trace_exn r2 in
  Alcotest.(check bool) "vectors were dropped" true
    (events_with
       (function
         | Trace.Message { kind = Trace.Vectors; status = Trace.Dropped; _ } ->
             true
         | _ -> false)
       tr);
  Alcotest.(check bool) "retries happened" true (Trace.retries tr > 0);
  Alcotest.(check bool) "PaX2 logical visits <= 2" true
    (Trace.max_logical_visits tr <= 2);
  let r3 = Pax_core.Pax3.run cl q in
  check_ids "PaX3 under dropped vectors" oracle r3;
  Alcotest.(check bool) "PaX3 logical visits <= 3" true
    (Trace.max_logical_visits (Run_result.trace_exn r3) <= 3)

(* S2 crashes when stage 2 first knocks, restarts two attempts later;
   the visit is re-delivered and the run completes correctly. *)
let test_crash_mid_stage2 () =
  let cl, q, oracle = setup () in
  Cluster.set_fault cl (Fault.crash_site ~down_for:2 ~site:2 ~round:1 ());
  let r = Pax_core.Pax2.run cl q in
  check_ids "PaX2 with S2 crashing mid-stage-2" oracle r;
  let tr = Run_result.trace_exn r in
  Alcotest.(check bool) "crash recorded" true
    (events_with
       (function Trace.Site_down { site = 2; _ } -> true | _ -> false)
       tr);
  Alcotest.(check bool) "restart recorded" true
    (events_with
       (function Trace.Site_restart { site = 2; _ } -> true | _ -> false)
       tr);
  Alcotest.(check int) "S2 still charged one stage-2 visit" 2
    r.Run_result.report.Cluster.visits.(2)

(* A site that never restarts must surface as the typed error — with
   the answer withheld, not wrong. *)
let test_permanent_crash () =
  let cl, q, _oracle = setup () in
  Cluster.set_fault cl (Fault.crash_site ~site:2 ~round:1 ());
  (match Pax_core.Pax2.run cl q with
  | _ -> Alcotest.fail "permanently crashed site must not yield answers"
  | exception Cluster.Site_unreachable { site; attempts; _ } ->
      Alcotest.(check int) "failing site identified" 2 site;
      Alcotest.(check int) "full retry budget spent"
        Retry.default.Retry.max_attempts attempts);
  Alcotest.(check bool) "gave-up recorded" true
    (events_with
       (function Trace.Gave_up { site = 2; _ } -> true | _ -> false)
       (Cluster.trace cl))

(* Duplicated resolution messages: the replayed delivery is recorded
   (and billed) but cannot change the answer. *)
let test_duplicate_resolution () =
  let cl, q, oracle = setup () in
  let baseline = Pax_core.Pax2.run cl q in
  Cluster.set_fault cl
    (Fault.duplicate_message (fun c -> c.Fault.m_kind = Trace.Resolution));
  let r = Pax_core.Pax2.run cl q in
  check_ids "PaX2 under duplicated resolutions" oracle r;
  let tr = Run_result.trace_exn r in
  Alcotest.(check bool) "duplicate recorded" true
    (events_with
       (function
         | Trace.Message
             { kind = Trace.Resolution; status = Trace.Duplicated; _ } ->
             true
         | _ -> false)
       tr);
  Alcotest.(check bool) "the spurious copy was billed" true
    (r.Run_result.report.Cluster.n_messages
    > baseline.Run_result.report.Cluster.n_messages)

(* A lost reply makes S2 replay its stage-1 visit.  The replay must be
   idempotent: same answers, same operation count, one logical visit. *)
let test_lost_reply_replay () =
  let cl, q, oracle = setup () in
  let baseline = Pax_core.Pax2.run cl q in
  Cluster.set_fault cl (Fault.lose_reply ~times:2 ~site:2 ~round:0 ());
  let r = Pax_core.Pax2.run cl q in
  check_ids "PaX2 under lost stage-1 replies" oracle r;
  let tr = Run_result.trace_exn r in
  (* stage 1: attempts 1 and 2 execute and lose their reply, attempt 3
     succeeds; stage 2 adds one more execution. *)
  Alcotest.(check int) "S2 executed four times" 4
    (Trace.physical_visits tr ~site:2);
  Alcotest.(check int) "but is charged two logical visits" 2
    (Trace.logical_visits tr ~site:2);
  Alcotest.(check bool) "replays marked in the trace" true
    (events_with
       (function Trace.Visit { site = 2; replay = true; _ } -> true | _ -> false)
       tr);
  Alcotest.(check int) "visit counter unchanged"
    baseline.Run_result.report.Cluster.visits.(2)
    r.Run_result.report.Cluster.visits.(2);
  Alcotest.(check int) "replays don't double-count work"
    baseline.Run_result.report.Cluster.total_ops
    r.Run_result.report.Cluster.total_ops

(* Post-hoc logical-vs-physical message accounting under duplicated
   deliveries: the paper's communication bound is stated over logical
   messages and bytes, so those must be immune to a fault plan that
   duplicates every resolution message, while the physical counters
   bill every transmission. *)
let test_duplicated_accounting () =
  let cl, q, oracle = setup () in
  let clean = Pax_core.Pax2.run cl q in
  let clean_tr = Run_result.trace_exn clean in
  Cluster.set_fault cl
    (Fault.duplicate_message (fun c -> c.Fault.m_kind = Trace.Resolution));
  let r = Pax_core.Pax2.run cl q in
  check_ids "answers unchanged" oracle r;
  let tr = Run_result.trace_exn r in
  let dups =
    List.length
      (List.filter
         (function
           | Trace.Message { status = Trace.Duplicated; _ } -> true
           | _ -> false)
         (Trace.events tr))
  in
  Alcotest.(check bool) "some resolutions duplicated" true (dups > 0);
  Alcotest.(check int) "logical messages immune to duplication"
    (Trace.logical_messages clean_tr)
    (Trace.logical_messages tr);
  Alcotest.(check int) "each duplicate bills one extra transmission"
    (Trace.logical_messages tr + dups)
    (Trace.physical_messages tr);
  Alcotest.(check int) "logical resolution bytes immune"
    (Trace.logical_bytes clean_tr ~kind:Trace.Resolution)
    (Trace.logical_bytes tr ~kind:Trace.Resolution);
  Alcotest.(check bool) "physical resolution bytes billed double" true
    (Trace.physical_bytes tr ~kind:Trace.Resolution
    > Trace.logical_bytes tr ~kind:Trace.Resolution)

(* Delayed deliveries are still single transmissions: physical equals
   logical everywhere; only the delay is recorded. *)
let test_delayed_accounting () =
  let cl, q, oracle = setup () in
  Cluster.set_fault cl
    (Fault.delay_message ~seconds:0.01 (fun c ->
         c.Fault.m_kind = Trace.Vectors));
  let r = Pax_core.Pax2.run cl q in
  check_ids "answers unchanged under delays" oracle r;
  let tr = Run_result.trace_exn r in
  Alcotest.(check bool) "delays recorded" true
    (events_with
       (function
         | Trace.Message { status = Trace.Delayed _; _ } -> true | _ -> false)
       tr);
  Alcotest.(check int) "a delayed message is one transmission"
    (Trace.logical_messages tr)
    (Trace.physical_messages tr);
  List.iter
    (fun kind ->
      Alcotest.(check int)
        ("physical = logical bytes: " ^ Trace.kind_name kind)
        (Trace.logical_bytes tr ~kind)
        (Trace.physical_bytes tr ~kind))
    [ Trace.Query; Trace.Vectors; Trace.Resolution; Trace.Answers ]

(* Replayed visits (lost replies) never inflate the logical message
   log: retransmissions carry attempt > 1 and are excluded. *)
let test_replay_accounting () =
  let cl, q, oracle = setup () in
  let clean = Pax_core.Pax2.run cl q in
  let clean_tr = Run_result.trace_exn clean in
  Cluster.set_fault cl (Fault.lose_reply ~times:2 ~site:2 ~round:0 ());
  let r = Pax_core.Pax2.run cl q in
  check_ids "answers unchanged under replays" oracle r;
  let tr = Run_result.trace_exn r in
  Alcotest.(check bool) "the replay really happened" true
    (Trace.physical_visits tr ~site:2 > Trace.logical_visits tr ~site:2);
  Alcotest.(check int) "logical visits match the clean run"
    (Trace.logical_visits clean_tr ~site:2)
    (Trace.logical_visits tr ~site:2);
  Alcotest.(check int) "logical control bytes match the clean run"
    (Trace.logical_control_bytes clean_tr)
    (Trace.logical_control_bytes tr)

(* Message-level retry exhaustion is the same typed error. *)
let test_message_retry_exhaustion () =
  let cl, q, _oracle = setup () in
  Cluster.set_fault cl
    (Fault.drop_message ~times:max_int (fun c ->
         c.Fault.m_kind = Trace.Vectors));
  Cluster.set_retry cl { Retry.default with Retry.max_attempts = 3 };
  (match Pax_core.Pax3.run cl q with
  | _ -> Alcotest.fail "undeliverable vectors must not yield answers"
  | exception Cluster.Site_unreachable { attempts; _ } ->
      Alcotest.(check int) "failed at the reduced budget" 3 attempts);
  Cluster.set_retry cl Retry.default

(* ------------------------------------------------------------------ *)
(* Visit accounting under retries (the sites_holding / visits audit)  *)
(* ------------------------------------------------------------------ *)

let ft =
  let c = H.Data.clientele () in
  H.Data.clientele_ftree c

(* One visit per (site, round) even when the caller names a site twice
   — sites_holding already dedups, and run_round must too. *)
let test_duplicate_site_in_round () =
  let cl = Cluster.one_site_per_fragment ft in
  let results = Cluster.run_round cl ~label:"r" ~sites:[ 1; 1; 2; 1 ] (fun s -> s) in
  Alcotest.(check int) "each site ran once" 2 (List.length results);
  let r = Cluster.report cl in
  Alcotest.(check int) "site 1 charged once" 1 r.Cluster.visits.(1)

(* Retries re-deliver to the same site without inflating the charge. *)
let test_retry_visit_accounting () =
  let cl = Cluster.one_site_per_fragment ft in
  Cluster.set_fault cl
    (Fault.all
       [
         Fault.lose_reply ~times:2 ~site:1 ~round:0 ();
         Fault.crash_site ~down_for:1 ~site:2 ~round:0 ();
       ]);
  let executions = Array.make (Cluster.n_sites cl) 0 in
  ignore
    (Cluster.run_round cl ~label:"r" ~sites:[ 0; 1; 2 ] (fun s ->
         executions.(s) <- executions.(s) + 1));
  let r = Cluster.report cl in
  Alcotest.(check int) "site 1 re-executed" 3 executions.(1);
  Alcotest.(check int) "site 1 charged once" 1 r.Cluster.visits.(1);
  Alcotest.(check int) "site 2 charged once despite crash" 1
    r.Cluster.visits.(2);
  Alcotest.(check int) "retries surfaced in the report" 3 r.Cluster.retries;
  let tr = Cluster.trace cl in
  Alcotest.(check int) "one logical visit at site 1" 1
    (Trace.logical_visits tr ~site:1);
  Alcotest.(check int) "one logical visit at site 2" 1
    (Trace.logical_visits tr ~site:2);
  Alcotest.(check int) "three physical executions at site 1" 3
    (Trace.physical_visits tr ~site:1)

(* sites_holding charges a multi-fragment site once. *)
let test_sites_holding_dedup () =
  let cl = Cluster.create ~ftree:ft ~n_sites:2 ~assign:(fun _ -> 1) () in
  Alcotest.(check (list int)) "all fragments, one site" [ 1 ]
    (Cluster.sites_holding cl [ 0; 1; 2; 3; 4 ])

let () =
  Alcotest.run "fault"
    [
      ( "golden",
        [
          Alcotest.test_case "drop stage-1 vectors" `Quick
            test_drop_stage1_vectors;
          Alcotest.test_case "crash mid-stage-2" `Quick test_crash_mid_stage2;
          Alcotest.test_case "permanent crash" `Quick test_permanent_crash;
          Alcotest.test_case "duplicate resolution" `Quick
            test_duplicate_resolution;
          Alcotest.test_case "lost reply replay" `Quick test_lost_reply_replay;
          Alcotest.test_case "message retry exhaustion" `Quick
            test_message_retry_exhaustion;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "duplicated deliveries" `Quick
            test_duplicated_accounting;
          Alcotest.test_case "delayed deliveries" `Quick
            test_delayed_accounting;
          Alcotest.test_case "replayed visits" `Quick test_replay_accounting;
          Alcotest.test_case "duplicate site in round" `Quick
            test_duplicate_site_in_round;
          Alcotest.test_case "retries charge one visit" `Quick
            test_retry_visit_accounting;
          Alcotest.test_case "sites_holding dedups" `Quick
            test_sites_holding_dedup;
        ] );
    ]

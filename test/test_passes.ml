(* White-box tests of the evaluation passes: qualifier vectors against
   the reference semantics, context vectors against ancestry, and the
   coordinator's unification (evalFT). *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Compile = Pax_xpath.Compile
module Semantics = Pax_xpath.Semantics
module Parse = Pax_xpath.Parse
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var
module Fragment = Pax_frag.Fragment
module Qual_pass = Pax_core.Qual_pass
module Sel_pass = Pax_core.Sel_pass
module Eval_ft = Pax_core.Eval_ft
module H = Test_helpers

(* ------------------------------------------------------------------ *)
(* Qualifier pass: for every node of a complete tree, satisfaction of
   every top-level qualifier path equals the set-based oracle.         *)
(* ------------------------------------------------------------------ *)

let qual_matches_oracle_on doc_root (qual_src : string) =
  let ast_qual = Parse.qual qual_src in
  (* Compile the qualifier through a carrier query .[q]. *)
  let q =
    Query.of_ast
      { Pax_xpath.Ast.absolute = false;
        path = Pax_xpath.Ast.Qualified (Pax_xpath.Ast.Empty, ast_qual) }
  in
  let compiled = q.Query.compiled in
  let filter =
    match compiled.Compile.sel with
    | [| Compile.Filter f |] -> f
    | _ -> Alcotest.fail "expected a single filter"
  in
  let qp = Qual_pass.run compiled doc_root in
  Tree.iter
    (fun v ->
      let vec = Hashtbl.find qp.Qual_pass.vectors v.Tree.id in
      let got =
        match Formula.to_bool (Qual_pass.sat compiled vec v filter) with
        | Some b -> b
        | None -> Alcotest.fail "ground tree produced a residual"
      in
      let expected = Semantics.holds ast_qual v in
      if got <> expected then
        Alcotest.failf "qualifier %s disagrees at node %d (%s): got %b" qual_src
          v.Tree.id v.Tree.tag got)
    doc_root

let test_qual_pass_oracle () =
  let c = H.Data.clientele () in
  List.iter
    (qual_matches_oracle_on c.H.Data.doc.Tree.root)
    [
      "broker";
      "market/name";
      "//stock";
      "//stock/code/text() = \"GOOG\"";
      "country/text() = \"US\"";
      "broker/market[name/text() = \"NASDAQ\"]/stock";
      "not(//stock[buy > 380])";
      "//qt/val() >= 90";
      "name and country";
      "broker or stock";
    ]

let prop_qual_pass_random =
  QCheck.Test.make ~name:"qualifier pass = holds, random" ~count:200
    (QCheck.make
       ~print:(fun (d, q) ->
         Format.asprintf "[%a] over %a" Pax_xpath.Ast.pp_qual q Tree.pp
           d.Tree.root)
       (fun st ->
         let d = H.Gen.doc ~max_nodes:40 st in
         let q = H.Gen.qual ~qdepth:2 st in
         (d, q)))
    (fun (d, ast_qual) ->
      let q =
        Query.of_ast
          { Pax_xpath.Ast.absolute = false;
            path = Pax_xpath.Ast.Qualified (Pax_xpath.Ast.Empty, ast_qual) }
      in
      let compiled = q.Query.compiled in
      let filter =
        match compiled.Compile.sel with
        | [| Compile.Filter f |] -> f
        | _ -> assert false
      in
      let qp = Qual_pass.run compiled d.Tree.root in
      let ok = ref true in
      Tree.iter
        (fun v ->
          let vec = Hashtbl.find qp.Qual_pass.vectors v.Tree.id in
          match Formula.to_bool (Qual_pass.sat compiled vec v filter) with
          | Some b -> if b <> Semantics.holds ast_qual v then ok := false
          | None -> ok := false)
        d.Tree.root;
      !ok)

(* ------------------------------------------------------------------ *)
(* Selection pass: context vectors recorded at virtual nodes            *)
(* ------------------------------------------------------------------ *)

let test_contexts_per_virtual_node () =
  let c = H.Data.clientele () in
  let ft = H.Data.clientele_ftree c in
  let q = Query.of_string "client/broker/market/name" in
  let compiled = q.Query.compiled in
  let f0 = Fragment.fragment ft 0 in
  let outcome =
    Sel_pass.run compiled
      ~init:(Sel_pass.blank_init compiled)
      ~root_is_context:true
      ~sat:(fun _ _ -> Formula.true_)
      f0.Fragment.root
  in
  (* F0 has three virtual children in the clientele fragmentation. *)
  Alcotest.(check int) "one context per virtual node" 3
    (List.length outcome.Sel_pass.contexts);
  List.iter
    (fun (_, vec) ->
      Alcotest.(check int) "context vector length" compiled.Compile.n_sel
        (Array.length vec))
    outcome.Sel_pass.contexts

let test_symbolic_init_creates_candidates () =
  let c = H.Data.clientele () in
  let ft = H.Data.clientele_ftree c in
  (* The E*trade broker fragment: name could be an answer depending on
     the (unknown) ancestors, so it must become a candidate. *)
  let fid =
    List.hd
      (List.filter
         (fun fid ->
           (Fragment.fragment ft fid).Fragment.root.Tree.id = c.H.Data.cut_f1)
         (Fragment.top_down ft))
  in
  let q = Query.of_string "client/broker/name" in
  let compiled = q.Query.compiled in
  let outcome =
    Sel_pass.run compiled
      ~init:(Sel_pass.symbolic_init compiled ~fid)
      ~root_is_context:false
      ~sat:(fun _ _ -> Formula.true_)
      (Fragment.fragment ft fid).Fragment.root
  in
  Alcotest.(check int) "no certain answers" 0
    (List.length outcome.Sel_pass.answers);
  Alcotest.(check int) "one candidate (the broker name)" 1
    (List.length outcome.Sel_pass.candidates);
  let _, f = List.hd outcome.Sel_pass.candidates in
  Alcotest.(check bool) "candidate depends on a context variable" true
    (List.exists
       (function Var.Sel_ctx (f', _) -> f' = fid | _ -> false)
       (Formula.vars f))

(* ------------------------------------------------------------------ *)
(* evalFT                                                               *)
(* ------------------------------------------------------------------ *)

let test_resolve_quals_chain () =
  (* A three-fragment chain: F0 <- F1 <- F2; F1's root vector refers to
     F2's entries, F0's to F1's. *)
  let c = H.Data.clientele () in
  let ft = H.Data.clientele_ftree c in
  let n = Fragment.n_fragments ft in
  (* Hand-made vectors of width 2:
     entry 0: true at leaves, passed through by parents via Var;
     entry 1: conjunction of child's entries. *)
  let vec_of fid =
    let children = ft.Fragment.children.(fid) in
    match children with
    | [] -> Some [| Formula.true_; Formula.false_ |]
    | k :: _ ->
        Some
          [|
            Formula.var (Var.Qual (k, 0));
            Formula.conj
              (Formula.var (Var.Qual (k, 0)))
              (Formula.not_ (Formula.var (Var.Qual (k, 1))));
          |]
  in
  let resolved = Eval_ft.resolve_quals ft ~root_vecs:vec_of in
  Alcotest.(check int) "all fragments resolved" n (Array.length resolved);
  (* Leaves: [true; false].  Parents: entry0 = child entry0 = true;
     entry1 = child0 && not child1 = true && not _ . *)
  Array.iteri
    (fun fid vec ->
      if ft.Fragment.children.(fid) <> [] then begin
        Alcotest.(check bool) (Printf.sprintf "F%d entry0" fid) true vec.(0);
        let k = List.hd ft.Fragment.children.(fid) in
        let expected = resolved.(k).(0) && not resolved.(k).(1) in
        Alcotest.(check bool) (Printf.sprintf "F%d entry1" fid) expected vec.(1)
      end)
    resolved

let test_resolve_contexts_chain () =
  let c = H.Data.clientele () in
  let ft = H.Data.clientele_ftree c in
  (* ctx of every fragment = [not parent's entry0; parent's entry0]. *)
  let ctx_of fid =
    let f = Fragment.fragment ft fid in
    match f.Fragment.parent with
    | None -> None
    | Some p ->
        Some
          [|
            Formula.not_ (Formula.var (Var.Sel_ctx (p, 0)));
            Formula.var (Var.Sel_ctx (p, 0));
          |]
  in
  let resolved =
    Eval_ft.resolve_contexts ft ~root_ctx:[| true; false |] ~ctx_of
      ~qual_lookup:(fun _ -> None)
  in
  Alcotest.(check bool) "root kept" true resolved.(0).(0);
  Array.iteri
    (fun fid vec ->
      match (Fragment.fragment ft fid).Fragment.parent with
      | Some p ->
          Alcotest.(check bool)
            (Printf.sprintf "F%d entry0 = not parent0" fid)
            (not resolved.(p).(0))
            vec.(0)
      | None -> ())
    resolved

let test_pruned_fragments_read_false () =
  let c = H.Data.clientele () in
  let ft = H.Data.clientele_ftree c in
  (* Every non-root fragment pruned: parents' variables default to
     false rather than crashing. *)
  let vec_of fid =
    if fid <> 0 then None
    else
      Some
        [| Formula.or_ (List.map (fun k -> Formula.var (Var.Qual (k, 0)))
                          ft.Fragment.children.(0)) |]
  in
  let resolved = Eval_ft.resolve_quals ft ~root_vecs:vec_of in
  Alcotest.(check bool) "or of pruned variables is false" false resolved.(0).(0)

let () =
  Alcotest.run "passes"
    [
      ( "qual-pass",
        [
          Alcotest.test_case "matches holds (clientele)" `Quick
            test_qual_pass_oracle;
          QCheck_alcotest.to_alcotest prop_qual_pass_random;
        ] );
      ( "sel-pass",
        [
          Alcotest.test_case "contexts per virtual node" `Quick
            test_contexts_per_virtual_node;
          Alcotest.test_case "symbolic init makes candidates" `Quick
            test_symbolic_init_creates_candidates;
        ] );
      ( "evalFT",
        [
          Alcotest.test_case "qualifier chain" `Quick test_resolve_quals_chain;
          Alcotest.test_case "context chain" `Quick test_resolve_contexts_chain;
          Alcotest.test_case "pruned defaults" `Quick
            test_pruned_fragments_read_false;
        ] );
    ]

(* Differential oracle: on random trees, random fragmentations, random
   placements and random class-X queries, PaX2 (NA/XA), PaX3 (NA/XA)
   and the ParBoX-composed Boolean evaluation all agree with the
   centralized answer — both on a well-behaved network and under a
   randomly seeded fault plan, where each engine must either return the
   identical answer-id set or fail with the typed
   [Cluster.Site_unreachable]; a wrong answer is a bug either way.
   The emitted trace is checked too: logical visits within the paper's
   bound, and no tree data beyond answer elements ever shipped.

   The default counts keep `dune runtest` fast; `dune build @slow`
   reruns the suite with PAX_QCHECK_COUNT=2000 (see test/dune). *)

module Tree = Pax_xml.Tree
module Ast = Pax_xpath.Ast
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Cluster = Pax_dist.Cluster
module Fault = Pax_dist.Fault
module Trace = Pax_dist.Trace
module Run_result = Pax_core.Run_result
module H = Test_helpers
module G = QCheck.Gen

let count n =
  match Sys.getenv_opt "PAX_QCHECK_COUNT" with
  | Some s -> (try int_of_string s with _ -> n)
  | None -> n

(* A scenario plus a fault-plan seed. *)
let arbitrary_faulty =
  QCheck.make
    ~print:(fun (s, seed) ->
      Printf.sprintf "fault seed %d\n%s" seed (H.Gen.print_scenario s))
    G.(pair H.Gen.scenario (int_bound 1_000_000))

let engines =
  [
    ("PaX2-NA", (fun cl q -> Pax_core.Pax2.run cl q), 2);
    ("PaX2-XA", (fun cl q -> Pax_core.Pax2.run ~annotations:true cl q), 2);
    ("PaX3-NA", (fun cl q -> Pax_core.Pax3.run cl q), 3);
    ("PaX3-XA", (fun cl q -> Pax_core.Pax3.run ~annotations:true cl q), 3);
  ]

(* The engine result must match the centralized ids exactly; under a
   fault plan the typed failure is also legal, anything else is not.
   When a service delay is installed it must show up in the timing
   accounting — at least [delay] per logical visit — without touching
   the answer. *)
let check_engine ~fault ~delay ~expected name run bound cl q =
  match (run cl q : Run_result.t) with
  | r ->
      let report = r.Run_result.report in
      let visits = Array.fold_left ( + ) 0 report.Cluster.visits in
      if report.Cluster.total_seconds < delay *. float_of_int visits then
        QCheck.Test.fail_reportf
          "%s: service delay unaccounted: %d visits x %.3fs but total %.6fs"
          name visits delay report.Cluster.total_seconds
      else if r.Run_result.answer_ids <> expected then
        QCheck.Test.fail_reportf "%s: expected [%s], got [%s]" name
          (String.concat ";" (List.map string_of_int expected))
          (String.concat ";"
             (List.map string_of_int r.Run_result.answer_ids))
      else begin
        let tr = Run_result.trace_exn r in
        if Trace.max_logical_visits tr > bound then
          QCheck.Test.fail_reportf "%s: %d logical visits > %d" name
            (Trace.max_logical_visits tr)
            bound
        else if Trace.logical_bytes tr ~kind:Trace.Tree_data <> 0 then
          QCheck.Test.fail_reportf "%s: shipped non-answer tree data" name
        else true
      end
  | exception Cluster.Site_unreachable _ ->
      if fault then true
      else QCheck.Test.fail_reportf "%s: unreachable without faults" name

(* ParBoX composition: the query's path as a Boolean query at the root,
   checked against the set semantics of the same composed AST. *)
let check_parbox ~fault (s : H.Gen.scenario) =
  let qual = Ast.QPath s.H.Gen.s_query.Ast.path in
  let composed =
    { Ast.absolute = false; path = Ast.Qualified (Ast.Empty, qual) }
  in
  let expected = Semantics.eval_ids composed s.H.Gen.s_doc.Tree.root <> [] in
  match Pax_core.Parbox.eval s.H.Gen.s_cluster qual with
  | b, _report ->
      b = expected
      || QCheck.Test.fail_reportf "ParBoX: expected %b, got %b" expected b
  | exception Cluster.Site_unreachable _ ->
      fault
      || QCheck.Test.fail_reportf "ParBoX: unreachable without faults"

let differential ~fault (s, seed) =
  let cl = s.H.Gen.s_cluster in
  Cluster.set_fault cl
    (if fault then
       Fault.seeded ~drop:0.12 ~dup:0.08 ~delay:0.05 ~lose:0.1 ~crash:0.15
         ~seed ()
     else Fault.none);
  (* Half the faulted schedules also charge a per-visit service delay:
     the axes must compose (the delay changes timing accounting only,
     never answers or visit counts). *)
  let delay = if fault && seed mod 2 = 0 then 0.001 else 0. in
  Cluster.set_service_delay cl delay;
  let q = Query.of_ast s.H.Gen.s_query in
  let expected = Pax_core.Centralized.eval_ids q s.H.Gen.s_doc.Tree.root in
  List.for_all
    (fun (name, run, bound) ->
      check_engine ~fault ~delay ~expected name run bound cl q)
    engines
  && check_parbox ~fault s

let make_test name ~count:n ~fault =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(count n) arbitrary_faulty
       (differential ~fault))

(* ------------------------------------------------------------------ *)
(* Sockets x domains                                                  *)
(* ------------------------------------------------------------------ *)

(* With a socket transport installed, a domain pool parallelizes the
   parsing of visit replies (Cluster.run_round_net).  That must be
   invisible: a run with domains > 1 is bit-identical to the
   sequential run in every deterministic observable — answers,
   per-site visits, rounds, trace events, logical messages, ops and
   accounted bytes.  Forked servers over loopback Unix sockets, under
   an alarm so a hang kills the test, not the suite. *)

module Fragment = Pax_frag.Fragment
module Sockio = Pax_net.Sockio
module Server = Pax_net.Server
module Client = Pax_net.Client

exception Timed_out

let with_timeout secs f =
  let old =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timed_out))
  in
  ignore (Unix.alarm secs);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm old)
    f

let net_queries =
  [
    "//person[profile/education]";
    "//regions/*/item/name";
    "/site/open_auctions/open_auction[bidder]";
  ]

let with_net_cluster ~domains f =
  let doc = Pax_xmark.Xmark.doc ~seed:4 ~total_nodes:2500 ~n_sites:4 in
  let ft =
    Fragment.fragmentize doc ~cuts:(Fragment.cuts_by_tag doc ~tag:"site")
  in
  let n_sites = 4 in
  let cl = Pax_dist.Placement.cluster_round_robin ft ~n_sites in
  Cluster.set_domains cl domains;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_diff_net_%d_%d" (Unix.getpid ())
         (Random.int 100000))
  in
  Sys.mkdir dir 0o755;
  let addrs =
    Array.init n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let site_frags site =
    List.map
      (fun fid -> (fid, (Fragment.fragment ft fid).Fragment.root))
      (Cluster.fragments_on cl site)
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr -> Server.spawn ~addr ~frags:(site_frags site) ())
         addrs)
  in
  let client = Client.create ~timeout:20. ~addrs () in
  Cluster.set_transport cl (Some (Client.transport client));
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites client;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (fun a ->
          match a with
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () -> f cl)

(* Everything deterministic a run exposes; seconds excluded (and
   measured socket bytes only asserted present — run ids baked into
   frames vary across runs, so byte streams need not repeat). *)
let net_obs cl (r : Run_result.t) =
  let report = r.Run_result.report in
  if report.Cluster.measured_bytes = None then
    Alcotest.fail "run did not go over the socket transport";
  ( r.Run_result.answer_ids,
    Array.to_list report.Cluster.visits,
    report.Cluster.rounds,
    report.Cluster.total_ops,
    report.Cluster.control_bytes + report.Cluster.answer_bytes
    + report.Cluster.tree_bytes,
    Option.map Trace.events r.Run_result.trace,
    Cluster.messages cl )

let test_socket_domains () =
  with_timeout 120 (fun () ->
      let collect ~domains =
        with_net_cluster ~domains (fun cl ->
            List.concat_map
              (fun qs ->
                let q = Query.of_string qs in
                List.map
                  (fun (name, run, _) ->
                    ((name, qs), net_obs cl (run cl q)))
                  engines)
              net_queries)
      in
      let seq = collect ~domains:1 in
      let par = collect ~domains:4 in
      List.iter2
        (fun ((name, qs), o_seq) ((_, _), o_par) ->
          if o_seq <> o_par then
            Alcotest.failf "%s on %s: domains=4 diverges from sequential" name
              qs)
        seq par)

(* ------------------------------------------------------------------ *)
(* Mid-run migration axis                                             *)
(* ------------------------------------------------------------------ *)

(* A concurrent 16-query workload over forked socket servers, run as
   two 8-query waves with one fragment live-migrated between them
   (docs/SHARDING.md).  Against a no-migration control run on fresh
   identical servers:
   - the pre-move wave is bit-identical in every observable;
   - the post-move wave keeps answers and audit verdicts bit-identical
     — migration must never change what a query returns or whether the
     guarantee auditor passes;
   - the post-move wave's visit vectors match an in-process control
     run under the post-move placement: placement legitimately
     redistributes visits, the migration machinery itself must not. *)

module Coordinator = Pax_serve.Coordinator
module Engines = Pax_core.Engines
module Pe = Pax_engine.Pe
module Ptable = Pax_shard.Ptable
module Migrate = Pax_shard.Migrate

let migration_queries =
  [
    "//person[profile/education]";
    "//person/profile/age";
    "//regions/*/item/name";
    "//person[profile/interest/@category]/name";
    "/site/open_auctions/open_auction[bidder]";
    "//person/name";
    "//open_auction/bidder";
    "//person[profile/age]/name";
  ]

(* Half pax2, half pax3: both engine families cross the migration. *)
let migration_eqs =
  List.concat_map
    (fun q -> [ ("pax2", q); ("pax3", q) ])
    migration_queries

let mig_obs (o : Pe.outcome) =
  ( o.Pe.answer_keys,
    Array.to_list o.Pe.report.Cluster.visits,
    o.Pe.audit.Pax_obs.Audit.pass )

(* Submit a whole wave, then collect — the waves are concurrent. *)
let mig_wave coord eqs =
  let tickets =
    List.mapi
      (fun i (engine, q) ->
        let source = Printf.sprintf "client-%d" (i mod 4) in
        match Coordinator.submit ~engine ~source coord q with
        | Ok tk -> (q, tk)
        | Error e ->
            Alcotest.failf "%s rejected: %s" q (Coordinator.error_message e))
      eqs
  in
  List.map
    (fun (q, tk) ->
      match Coordinator.await tk with
      | Ok o -> mig_obs o
      | Error e -> Alcotest.failf "%s raised: %s" q (Printexc.to_string e))
    tickets

let mig_ft () =
  let doc = Pax_xmark.Xmark.doc ~seed:4 ~total_nodes:2500 ~n_sites:4 in
  Fragment.fragmentize doc ~cuts:(Fragment.cuts_by_tag doc ~tag:"site")

let mig_n_sites = 4

let with_mig_servers ft ~assign f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_mig_net_%d_%d" (Unix.getpid ())
         (Random.int 100000))
  in
  Sys.mkdir dir 0o755;
  let addrs =
    Array.init mig_n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let site_frags site =
    List.filter_map
      (fun fid ->
        if assign fid = site then
          Some (fid, (Fragment.fragment ft fid).Fragment.root)
        else None)
      (List.init (Fragment.n_fragments ft) Fun.id)
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr -> Server.spawn ~addr ~frags:(site_frags site) ())
         addrs)
  in
  let mux = Client.create ~timeout:20. ~addrs () in
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites mux;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (fun a ->
          match a with
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () -> f mux)

let mig_mounts ft table =
  [
    Coordinator.mount ~table
      (Engines.pax2 ft ~n_sites:mig_n_sites ~assign:(Ptable.assign table));
    Coordinator.mount ~table
      (Engines.pax3 ft ~n_sites:mig_n_sites ~assign:(Ptable.assign table));
  ]

(* Two waves over fresh servers; [migrate] moves one fragment between
   them.  Returns both waves and the post-workload placement. *)
let mig_workload ~migrate =
  let ft = mig_ft () in
  let n_frags = Fragment.n_fragments ft in
  let table =
    Ptable.create ~n_frags ~n_sites:mig_n_sites
      ~assign:(fun fid -> fid mod mig_n_sites)
      ()
  in
  with_mig_servers ft ~assign:(Ptable.assign table) (fun mux ->
      let coord =
        Coordinator.create ~max_inflight:8 (Coordinator.Sockets mux)
          (mig_mounts ft table)
      in
      let w1 = mig_wave coord migration_eqs in
      if migrate then begin
        let fid = n_frags / 2 in
        let dst = (Ptable.site_of table fid + 1) mod mig_n_sites in
        match Migrate.move ~mux ~ft ~table ~fid ~dst () with
        | Ok o ->
            Alcotest.(check int) "move bumped the epoch" 1 o.Migrate.mv_epoch
        | Error e -> Alcotest.failf "migration failed: %s" e
      end;
      let w2 = mig_wave coord migration_eqs in
      Coordinator.close coord;
      (w1, w2, Array.init n_frags (Ptable.site_of table)))

let test_migration_axis () =
  with_timeout 300 (fun () ->
      let c1, c2, _ = mig_workload ~migrate:false in
      let m1, m2, post = mig_workload ~migrate:true in
      List.iteri
        (fun i ((a_ans, a_vis, a_pass), (b_ans, b_vis, b_pass)) ->
          let _, q = List.nth migration_eqs i in
          Alcotest.(check (list int))
            (Printf.sprintf "pre-move %s: answers" q)
            a_ans b_ans;
          Alcotest.(check (list int))
            (Printf.sprintf "pre-move %s: visits" q)
            a_vis b_vis;
          Alcotest.(check bool)
            (Printf.sprintf "pre-move %s: audit" q)
            a_pass b_pass)
        (List.combine c1 m1);
      List.iteri
        (fun i ((a_ans, _, a_pass), (b_ans, _, b_pass)) ->
          let _, q = List.nth migration_eqs i in
          Alcotest.(check (list int))
            (Printf.sprintf "post-move %s: answers" q)
            a_ans b_ans;
          Alcotest.(check bool)
            (Printf.sprintf "post-move %s: audit" q)
            a_pass b_pass;
          Alcotest.(check bool)
            (Printf.sprintf "post-move %s: auditor passes" q)
            true b_pass)
        (List.combine c2 m2);
      (* The post-move visit vectors are exactly what the post-move
         placement dictates: an in-process run under that placement is
         bit-identical in every observable (transport invariance). *)
      let ft = mig_ft () in
      let table =
        Ptable.create ~n_frags:(Array.length post) ~n_sites:mig_n_sites
          ~assign:(fun fid -> post.(fid))
          ()
      in
      let ctrl =
        Coordinator.create ~max_inflight:1 Coordinator.In_process
          (mig_mounts ft table)
      in
      List.iteri
        (fun i (engine, q) ->
          match Coordinator.run ~engine ctrl q with
          | Ok o ->
              let c_ans, c_vis, c_pass = mig_obs o in
              let m_ans, m_vis, m_pass = List.nth m2 i in
              Alcotest.(check (list int))
                (Printf.sprintf "control %s: answers" q)
                c_ans m_ans;
              Alcotest.(check (list int))
                (Printf.sprintf "control %s: visits" q)
                c_vis m_vis;
              Alcotest.(check bool)
                (Printf.sprintf "control %s: audit" q)
                c_pass m_pass
          | Error e ->
              Alcotest.failf "control %s rejected: %s" q
                (Coordinator.error_message e))
        migration_eqs;
      Coordinator.close ctrl)

let () =
  Alcotest.run "differential"
    [
      ( "oracle",
        [
          make_test "all engines = centralized (clean network)" ~count:150
            ~fault:false;
          make_test "all engines = centralized or typed failure (faults)"
            ~count:250 ~fault:true;
          (* Forks servers, so it must precede the domains=4 case:
             OCaml 5 forbids Unix.fork once domains have been created. *)
          Alcotest.test_case
            "sockets: live migration between waves is invisible" `Quick
            test_migration_axis;
          Alcotest.test_case "sockets: domains=4 = sequential, bit for bit"
            `Quick test_socket_domains;
        ] );
    ]

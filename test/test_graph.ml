(* The graph fragment store and the distributed reachability engine,
   in-process: partitioning invariants, the per-fragment local partial
   evaluation, the coordinator fixpoint against the centralized BFS
   reference, and the Fan/Wang/Wu guarantee audit.  The socket side of
   the same oracle lives in test_reach_differential.ml. *)

module Formula = Pax_bool.Formula
module Var = Pax_bool.Var
module Gfrag = Pax_graph.Gfrag
module Bfs = Pax_graph.Bfs
module Reach = Pax_graph.Reach
module Cluster = Pax_dist.Cluster
module Pe = Pax_engine.Pe
module H = Test_helpers
module G = QCheck.Gen

let count n =
  match Sys.getenv_opt "PAX_QCHECK_COUNT" with
  | Some s -> (try int_of_string s with _ -> n)
  | None -> n

(* A 3-fragment chain: 0→1→2→3→4→5, two nodes per fragment.  Cross
   edges 1→2 and 3→4 make nodes 2 and 4 the only entries. *)
let chain () =
  Gfrag.partition ~n:6
    ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ]
    ~owner:[| 0; 0; 1; 1; 2; 2 |]

let test_partition_basics () =
  let g = chain () in
  Alcotest.(check int) "fragments" 3 (Gfrag.n_fragments g);
  Alcotest.(check int) "nodes" 6 g.Gfrag.n_nodes;
  Alcotest.(check int) "edges" 5 g.Gfrag.n_edges;
  Alcotest.(check int) "owner of 3" 1 (Gfrag.owner_of g 3);
  let f0 = Gfrag.fragment g 0 and f1 = Gfrag.fragment g 1 in
  Alcotest.(check (array int)) "frag0 owns" [| 0; 1 |] f0.Gfrag.gf_nodes;
  Alcotest.(check (array int)) "frag0 entries" [||] f0.Gfrag.gf_entries;
  Alcotest.(check (array int)) "frag1 entries" [| 2 |] f1.Gfrag.gf_entries;
  Alcotest.(check int) "|Vf|" 2 g.Gfrag.n_entries;
  (* The cross edge 1→2 is known to both sides: frag0 carries node 2's
     coordinates, frag1 lists it as an entry. *)
  Alcotest.(check (list (pair int (pair int int))))
    "frag0 ext" [ (2, (1, 0)) ]
    (Array.to_list f0.Gfrag.gf_ext)

let test_partition_dedup () =
  let g =
    Gfrag.partition ~n:3
      ~edges:[ (0, 1); (0, 1); (1, 1); (2, 0); (0, 1) ]
      ~owner:[| 0; 0; 1 |]
  in
  Alcotest.(check int) "deduped edges" 3 g.Gfrag.n_edges

let test_partition_invalid () =
  Alcotest.check_raises "node out of range"
    (Invalid_argument "Gfrag.partition: edge endpoint out of range")
    (fun () ->
      ignore (Gfrag.partition ~n:3 ~edges:[ (0, 7) ] ~owner:[| 0; 0; 0 |]))

let test_query_text () =
  Alcotest.(check string) "print" "reach 3 12" (Gfrag.query_string ~src:3 ~dst:12);
  Alcotest.(check (option (pair int int)))
    "parse" (Some (3, 12))
    (Gfrag.parse_query "reach 3 12");
  Alcotest.(check (option (pair int int)))
    "reject" None (Gfrag.parse_query "reach x 12")

let test_local_eval () =
  let g = chain () in
  let f0 = Gfrag.fragment g 0 in
  (* src 0 lives in frag0, is not an entry: one trailing start slot. *)
  Alcotest.(check int) "starts" 1 (Gfrag.n_starts f0 ~src:0);
  Alcotest.(check int) "src slot" 0 (Gfrag.src_slot f0 ~src:0);
  let vec, _ops = Gfrag.local_eval f0 ~src:0 ~dst:5 in
  Alcotest.(check bool)
    "escape residual is the entry variable" true
    (Formula.equal vec.(0) (Formula.var (Var.Qual (1, 0))));
  (* An owned dst short-circuits to True without any variable. *)
  let vec, _ops = Gfrag.local_eval f0 ~src:0 ~dst:1 in
  Alcotest.(check (option bool)) "owned dst" (Some true)
    (Formula.to_bool vec.(0));
  (* A start with no owned path out is constant False. *)
  let f2 = Gfrag.fragment g 2 in
  let vec, _ops = Gfrag.local_eval f2 ~src:5 ~dst:0 in
  Alcotest.(check (option bool))
    "dead end" (Some false)
    (Formula.to_bool vec.(Gfrag.src_slot f2 ~src:5))

let mk_cluster ?transport (gs : H.Gen.gscenario) =
  Cluster.create_abstract ?transport ~n_frags:gs.H.Gen.g_n_frags
    ~n_sites:gs.H.Gen.g_n_sites
    ~assign:(fun fid -> gs.H.Gen.g_assign.(fid))
    ()

let partition_of (gs : H.Gen.gscenario) =
  Gfrag.partition ~n:gs.H.Gen.g_n ~edges:gs.H.Gen.g_edges
    ~owner:gs.H.Gen.g_owner

let test_fixpoint_chain () =
  let g = chain () in
  let cl = Cluster.create_abstract ~n_frags:3 ~n_sites:3 ~assign:Fun.id () in
  let run src dst =
    let q =
      match Reach.parse g (Gfrag.query_string ~src ~dst) with
      | Ok q -> q
      | Error e -> Alcotest.fail e
    in
    Cluster.reset cl;
    fst (Reach.eval g cl q)
  in
  Alcotest.(check bool) "0 reaches 5" true (run 0 5);
  Alcotest.(check bool) "5 not back to 0" false (run 5 0);
  Alcotest.(check bool) "reflexive" true (run 4 4)

let test_parse_ranges () =
  let g = chain () in
  (match Reach.parse g "reach 0 6" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dst out of range accepted");
  match Reach.parse g "reach 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed accepted"

(* One visit per site, every run, by construction: the single
   round visits each site once and the fixpoint is coordinator-only. *)
let test_audit_chain () =
  let g = chain () in
  let cl = Cluster.create_abstract ~n_frags:3 ~n_sites:3 ~assign:Fun.id () in
  let q =
    match Reach.parse g "reach 0 5" with Ok q -> q | Error e -> Alcotest.fail e
  in
  Cluster.reset cl;
  let _ans, report = Reach.eval g cl q in
  let a = Reach.audit g cl report in
  if not a.Pax_obs.Audit.pass then
    Alcotest.failf "audit failed:@.%a" (fun ppf () ->
        Pax_obs.Audit.pp ppf a)
      ();
  Alcotest.(check int) "three bounds" 3
    (List.length a.Pax_obs.Audit.bounds)

(* The oracle, in-process: distributed answer = centralized BFS, and
   the audit passes, on every random scenario. *)
let oracle (gs : H.Gen.gscenario) =
  let g = partition_of gs in
  let cl = mk_cluster gs in
  let src = gs.H.Gen.g_src and dst = gs.H.Gen.g_dst in
  let q =
    match Reach.parse g (Gfrag.query_string ~src ~dst) with
    | Ok q -> q
    | Error e -> QCheck.Test.fail_reportf "parse: %s" e
  in
  Cluster.reset cl;
  let got, report = Reach.eval g cl q in
  let expected =
    Bfs.reach ~n:gs.H.Gen.g_n ~edges:gs.H.Gen.g_edges ~src ~dst
  in
  if got <> expected then
    QCheck.Test.fail_reportf "reach %d %d: distributed %b, BFS %b" src dst got
      expected
  else begin
    let a = Reach.audit g cl report in
    a.Pax_obs.Audit.pass
    || QCheck.Test.fail_reportf "audit failed on a correct answer"
  end

(* The same scenarios through the Pe seam: the engine's outcome must
   match a direct eval bit for bit. *)
let oracle_engine (gs : H.Gen.gscenario) =
  let g = partition_of gs in
  let pe =
    Reach.engine g ~n_sites:gs.H.Gen.g_n_sites
      ~assign:(fun fid -> gs.H.Gen.g_assign.(fid))
  in
  let text = Gfrag.query_string ~src:gs.H.Gen.g_src ~dst:gs.H.Gen.g_dst in
  let o = Pe.run_text pe text in
  let expected =
    Bfs.reach ~n:gs.H.Gen.g_n ~edges:gs.H.Gen.g_edges ~src:gs.H.Gen.g_src
      ~dst:gs.H.Gen.g_dst
  in
  if o.Pe.answer_keys <> (if expected then [ 1 ] else []) then
    QCheck.Test.fail_reportf "engine keys disagree with BFS %b" expected
  else if o.Pe.answers_text <> string_of_bool expected then
    QCheck.Test.fail_reportf "engine text %S" o.Pe.answers_text
  else
    o.Pe.audit.Pax_obs.Audit.pass
    || QCheck.Test.fail_reportf "engine audit failed"

let qtest name ~count:n prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(count n) H.Gen.arbitrary_gscenario prop)

let () =
  Alcotest.run "graph"
    [
      ( "fragment store",
        [
          Alcotest.test_case "partition basics" `Quick test_partition_basics;
          Alcotest.test_case "edge dedup" `Quick test_partition_dedup;
          Alcotest.test_case "invalid input" `Quick test_partition_invalid;
          Alcotest.test_case "query text round-trip" `Quick test_query_text;
          Alcotest.test_case "local partial evaluation" `Quick test_local_eval;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "fixpoint on the chain" `Quick test_fixpoint_chain;
          Alcotest.test_case "parse range checks" `Quick test_parse_ranges;
          Alcotest.test_case "audit on the chain" `Quick test_audit_chain;
          qtest "distributed = BFS + audit (in-process)" ~count:200 oracle;
          qtest "Pe engine = BFS (in-process)" ~count:100 oracle_engine;
        ] );
    ]

(* The central correctness property: on random documents, random
   queries, random fragmentations and random placements, every
   evaluation strategy computes exactly the answer of the naive
   set-based semantics — and the performance guarantees (visit counts,
   no tree data besides answers) hold. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Cluster = Pax_dist.Cluster
module H = Test_helpers
module Run_result = Pax_core.Run_result

let scenario_test name ~count f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count H.Gen.arbitrary_scenario f)

let oracle (s : H.Gen.scenario) =
  Semantics.eval_ids s.H.Gen.s_query s.H.Gen.s_doc.Tree.root

let agrees name run =
  scenario_test name ~count:400 (fun s ->
      let q = Query.of_ast s.H.Gen.s_query in
      let expected = oracle s in
      let result : Run_result.t = run s.H.Gen.s_cluster q in
      if expected <> result.Run_result.answer_ids then
        QCheck.Test.fail_reportf "expected [%s], got [%s]"
          (String.concat ";" (List.map string_of_int expected))
          (String.concat ";" (List.map string_of_int result.Run_result.answer_ids))
      else true)

let centralized_agrees =
  scenario_test "centralized = semantics" ~count:600 (fun s ->
      let q = Query.of_ast s.H.Gen.s_query in
      oracle s = Pax_core.Centralized.eval_ids q s.H.Gen.s_doc.Tree.root)

let visit_bound name bound run =
  scenario_test name ~count:300 (fun s ->
      let q = Query.of_ast s.H.Gen.s_query in
      let result : Run_result.t = run s.H.Gen.s_cluster q in
      result.Run_result.report.Cluster.max_visits <= bound)

(* The O(|Q| |FT| + |ans|) communication bound, with a generous
   per-unit constant: every control message is a vector of at most
   O(|Q|) small entries per fragment, per round. *)
let communication_bound name run =
  scenario_test name ~count:200 (fun s ->
      let q = Query.of_ast s.H.Gen.s_query in
      let result : Run_result.t = run s.H.Gen.s_cluster q in
      let ft = Cluster.ftree s.H.Gen.s_cluster in
      let budget =
        200 * Query.size q * Pax_frag.Fragment.n_fragments ft
      in
      result.Run_result.report.Cluster.control_bytes <= budget)

let no_tree_data name run =
  scenario_test name ~count:200 (fun s ->
      let q = Query.of_ast s.H.Gen.s_query in
      let result : Run_result.t = run s.H.Gen.s_cluster q in
      result.Run_result.report.Cluster.tree_bytes = 0)

let () =
  Alcotest.run "properties"
    [
      ( "equivalence",
        [
          centralized_agrees;
          agrees "PaX3-NA = semantics" (fun cl q -> Pax_core.Pax3.run cl q);
          agrees "PaX3-XA = semantics" (fun cl q ->
              Pax_core.Pax3.run ~annotations:true cl q);
          agrees "PaX2-NA = semantics" (fun cl q -> Pax_core.Pax2.run cl q);
          agrees "PaX2-XA = semantics" (fun cl q ->
              Pax_core.Pax2.run ~annotations:true cl q);
          agrees "Naive = semantics" (fun cl q -> Pax_core.Naive.run cl q);
        ] );
      ( "guarantees",
        [
          visit_bound "PaX3 visits <= 3" 3 (fun cl q -> Pax_core.Pax3.run cl q);
          visit_bound "PaX3-XA visits <= 3" 3 (fun cl q ->
              Pax_core.Pax3.run ~annotations:true cl q);
          visit_bound "PaX2 visits <= 2" 2 (fun cl q -> Pax_core.Pax2.run cl q);
          visit_bound "PaX2-XA visits <= 2" 2 (fun cl q ->
              Pax_core.Pax2.run ~annotations:true cl q);
          no_tree_data "PaX3 ships no tree data" (fun cl q ->
              Pax_core.Pax3.run cl q);
          no_tree_data "PaX2 ships no tree data" (fun cl q ->
              Pax_core.Pax2.run cl q);
          communication_bound "PaX3 control bytes are O(|Q||FT|)"
            (fun cl q -> Pax_core.Pax3.run cl q);
          communication_bound "PaX2 control bytes are O(|Q||FT|)"
            (fun cl q -> Pax_core.Pax2.run cl q);
        ] );
    ]

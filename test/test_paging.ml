(* Fragment-swapping evaluation of large documents (paper §1/§8): both
   strategies are exact, and partial evaluation pages each fragment in
   exactly once. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Paging = Pax_core.Paging
module Xmark = Pax_xmark.Xmark

let doc = Xmark.doc ~seed:11 ~total_nodes:4000 ~n_sites:2

let queries =
  [
    Xmark.q1;
    Xmark.q2;
    Xmark.q3;
    "//person[address/country = \"Canada\"]/name";
    "//annotation[happiness > 5]";
  ]

let test_exactness () =
  List.iter
    (fun qs ->
      let q = Query.of_string qs in
      let expected = Semantics.eval_ids q.Query.ast doc.Tree.root in
      let r1 = Paging.run ~memory_budget:700 q doc in
      let r2 = Paging.run_two_pass ~memory_budget:700 q doc in
      Alcotest.(check (list int)) (qs ^ " (partial evaluation)") expected
        r1.Paging.answer_ids;
      Alcotest.(check (list int)) (qs ^ " (two-pass)") expected
        r2.Paging.answer_ids)
    queries

let test_single_load_per_fragment () =
  let q = Query.of_string Xmark.q3 in
  let r = Paging.run ~memory_budget:700 q doc in
  Alcotest.(check int) "swap-ins = fragments" r.Paging.n_fragments
    r.Paging.swap_ins

let test_two_pass_pays_more () =
  let q = Query.of_string Xmark.q3 in
  let pe = Paging.run ~memory_budget:700 q doc in
  let tp = Paging.run_two_pass ~memory_budget:700 q doc in
  Alcotest.(check bool) "two-pass loads at least twice as much" true
    (tp.Paging.swap_ins >= 2 * pe.Paging.swap_ins);
  Alcotest.(check bool) "two-pass pages more bytes" true
    (tp.Paging.bytes_loaded > pe.Paging.bytes_loaded)

let test_memory_budget_respected () =
  List.iter
    (fun budget ->
      let q = Query.of_string Xmark.q1 in
      let r = Paging.run ~memory_budget:budget q doc in
      Alcotest.(check bool)
        (Printf.sprintf "peak fragment near budget %d" budget)
        true
        (r.Paging.peak_fragment_nodes <= budget * 6))
    [ 200; 500; 2000 ]

let test_budget_vs_fragments () =
  let q = Query.of_string Xmark.q1 in
  let small = Paging.run ~memory_budget:300 q doc in
  let large = Paging.run ~memory_budget:3000 q doc in
  Alcotest.(check bool) "smaller budget, more fragments" true
    (small.Paging.n_fragments > large.Paging.n_fragments)

let () =
  Alcotest.run "paging"
    [
      ( "paging",
        [
          Alcotest.test_case "exactness" `Quick test_exactness;
          Alcotest.test_case "one load per fragment" `Quick
            test_single_load_per_fragment;
          Alcotest.test_case "two-pass pays more" `Quick test_two_pass_pays_more;
          Alcotest.test_case "budget respected" `Quick test_memory_budget_respected;
          Alcotest.test_case "budget vs fragment count" `Quick
            test_budget_vs_fragments;
        ] );
    ]

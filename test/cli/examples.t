The deterministic examples run and produce their expected output.

  $ ../../examples/quickstart.exe | head -12
  Document: 44 nodes, 718 bytes serialized
  
  Fragment tree (6 fragments):
  F0: 10 nodes, parent -, ann 
  F1: 2 nodes, parent F0, ann client/broker
  F2: 8 nodes, parent F0, ann client/broker
  F3: 8 nodes, parent F0, ann client/broker
  F4: 10 nodes, parent F1, ann market
  F5: 6 nodes, parent F2, ann market
  
  ParBoX  [//stock/code/text() = "GOOG"]  =>  true   (max 1 visit/site, 362 control bytes)
  

  $ ../../examples/live_updates.exe
  initial state                                        brokers holding GOOG: E*trade, CIBC
    [site of F2] deleted CIBC's GOOG position
  after CIBC sells GOOG                                brokers holding GOOG: E*trade
    [site of F2] CIBC buys GOOG on NYSE
  after CIBC re-enters via NYSE                        brokers holding GOOG: E*trade, CIBC
    refused as expected: node 20 is a fragment root (or the document root)
  after a refused delete (broker is a fragment root)   brokers holding GOOG: E*trade, CIBC
  
  count(//stock) = 2  — 101 control bytes, 0 answer bytes, 2 visits max

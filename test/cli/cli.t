Generate a small deterministic document:

  $ ../../bin/pax_cli.exe gen -n 600 -s 2 --seed 7 -o doc.xml
  wrote doc.xml: 655 nodes, 26519 bytes

Inspect it:

  $ ../../bin/pax_cli.exe inspect doc.xml | head -3
  nodes: 655
  depth: 7
  bytes: 19584

Explain a query:

  $ ../../bin/pax_cli.exe explain 'a[b/text() = "x"]//c'
  source:      a[b/text() = "x"]//c
  ast:         a[b/text() = "x"]//c
  normal form: a/e[b/e[text() = "x"]]//c
  selection:   a // c 
  compiled:    selection items: 4 (vector 5)
               qualifier paths: 1 (vector 3)

Count persons, distributed by site:

  $ ../../bin/pax_cli.exe count doc.xml '/sites/site/people/person' --fragment-tag site
  17

Run the four algorithms and compare answer counts:

  $ for a in centralized naive pax3 pax2; do ../../bin/pax_cli.exe query doc.xml '//person[address/country = "US"]/name' --algo $a --fragment-tag site -q; done
  4 answer(s)
  4 answer(s)
  4 answer(s)
  4 answer(s)

Bad inputs fail with sensible errors:

  $ ../../bin/pax_cli.exe query doc.xml 'a[' -q
  query error at character 2: expected a step but found <eof>
  [1]

  $ ../../bin/pax_cli.exe explain '//'
  query error at character 2: expected a step but found <eof>
  [1]

Fragment into an on-disk store, then query the store directly:

  $ ../../bin/pax_cli.exe fragment doc.xml -o store --fragment-tag site
  wrote store: 3 fragments, 655 nodes
  F0: 1 nodes, parent -, ann 
  F1: 322 nodes, parent F0, ann site
  F2: 332 nodes, parent F0, ann site
  

  $ ../../bin/pax_cli.exe query store '//person[address/country = "US"]/name' --algo pax2 --xa -q
  4 answer(s)

  $ ../../bin/pax_cli.exe count store '//person'
  17

Telemetry: --stats prints the guarantee-auditor verdicts (the counter
and histogram values are timing-dependent, so only the audit lines are
pinned here), and --trace-out writes a Chrome trace-event file:

  $ ../../bin/pax_cli.exe query doc.xml '//person[address/country = "US"]/name' --algo pax2 --fragment-tag site -q --stats --trace-out run.json | grep -E '^(guarantee|  (visits|comm|comp)|wrote run)'
  guarantee audit: PASS
    visits PASS  actual=2 limit=2 margin=0.0%  max logical visits per site <= 2 (pax2)
    comm   PASS  actual=277 limit=2012 margin=86.2%  control+answer bytes <= 64*|Q|*|FT| + |ans| = 64*10*3 + 92
    comp   PASS  actual=9886 limit=209600 margin=95.3%  total ops <= 32*|Q|*|T| = 32*10*655
  wrote run.json: 9 span(s)

  $ grep -c traceEvents run.json
  1

--report-out writes a structured JSON run report whose audit agrees
with the --stats verdict above:

  $ ../../bin/pax_cli.exe query doc.xml '//person[address/country = "US"]/name' --algo pax2 --fragment-tag site -q --report-out report.json
  4 answer(s)
  wrote report.json

  $ grep -c '"audit":{"pass":true' report.json
  1

(* The second differential oracle (docs/ENGINES.md): on random
   fragmented digraphs, random src/dst and random placements, the
   distributed reachability engine agrees with the centralized BFS
   reference —

   - in-process on a clean network,
   - in-process under seeded fault plans crossed with a per-visit
     service delay (an axis the XPath oracle also covers), where the
     engine must either return the BFS answer or fail with the typed
     [Cluster.Site_unreachable],
   - and over real forked socket servers, with planned connection
     flakes ([Server.spawn ~flake]) and sometimes a real service
     delay, where the reply memo must make retries bit-identical.

   Every successful run's guarantee audit (one visit per site,
   O(|Vf|²) communication) must pass.  Default counts keep `dune
   runtest` fast; `dune build @slow` reruns at PAX_QCHECK_COUNT=2000,
   which drives >=500 random socket schedules. *)

module Gfrag = Pax_graph.Gfrag
module Bfs = Pax_graph.Bfs
module Reach = Pax_graph.Reach
module Cluster = Pax_dist.Cluster
module Fault = Pax_dist.Fault
module Sockio = Pax_net.Sockio
module Server = Pax_net.Server
module Client = Pax_net.Client
module H = Test_helpers
module G = QCheck.Gen

let count n =
  match Sys.getenv_opt "PAX_QCHECK_COUNT" with
  | Some s -> (try int_of_string s with _ -> n)
  | None -> n

(* Socket scenarios fork one server per site; a quarter of the sweep
   count keeps @slow within budget while still exceeding 500 schedules
   at PAX_QCHECK_COUNT=2000. *)
let socket_count n =
  match Sys.getenv_opt "PAX_QCHECK_COUNT" with
  | Some s -> (try max 1 (int_of_string s / 4) with _ -> n)
  | None -> n

let arbitrary_faulty =
  QCheck.make
    ~print:(fun (g, seed) ->
      Printf.sprintf "seed %d\n%s" seed (H.Gen.print_gscenario g))
    G.(pair H.Gen.gscenario (int_bound 1_000_000))

let partition_of (gs : H.Gen.gscenario) =
  Gfrag.partition ~n:gs.H.Gen.g_n ~edges:gs.H.Gen.g_edges
    ~owner:gs.H.Gen.g_owner

let expected (gs : H.Gen.gscenario) =
  Bfs.reach ~n:gs.H.Gen.g_n ~edges:gs.H.Gen.g_edges ~src:gs.H.Gen.g_src
    ~dst:gs.H.Gen.g_dst

let query_of g (gs : H.Gen.gscenario) =
  match
    Reach.parse g
      (Gfrag.query_string ~src:gs.H.Gen.g_src ~dst:gs.H.Gen.g_dst)
  with
  | Ok q -> q
  | Error e -> QCheck.Test.fail_reportf "parse: %s" e

let check_run ~what ~gs ~g ~cl ~got ~report =
  let want = expected gs in
  if got <> want then
    QCheck.Test.fail_reportf "%s: reach %d %d: distributed %b, BFS %b" what
      gs.H.Gen.g_src gs.H.Gen.g_dst got want
  else begin
    let a = Reach.audit g cl report in
    a.Pax_obs.Audit.pass
    || QCheck.Test.fail_reportf "%s: audit failed on a correct answer" what
  end

(* ---------------- in-process, faults x service delay ---------------- *)

let faulted ((gs : H.Gen.gscenario), seed) =
  let g = partition_of gs in
  let cl =
    Cluster.create_abstract ~n_frags:gs.H.Gen.g_n_frags
      ~n_sites:gs.H.Gen.g_n_sites
      ~assign:(fun fid -> gs.H.Gen.g_assign.(fid))
      ()
  in
  Cluster.set_fault cl
    (Fault.seeded ~drop:0.12 ~dup:0.08 ~delay:0.05 ~lose:0.1 ~crash:0.15 ~seed
       ());
  (* Half the schedules also charge a per-visit service delay — the
     axis must compose with fault plans (it changes timing accounting,
     never answers). *)
  let delay = if seed mod 2 = 0 then 0.001 else 0. in
  Cluster.set_service_delay cl delay;
  let q = query_of g gs in
  Cluster.reset cl;
  match Reach.eval g cl q with
  | got, report ->
      check_run ~what:"faulted" ~gs ~g ~cl ~got ~report
      &&
      let visits = Array.fold_left ( + ) 0 report.Cluster.visits in
      report.Cluster.total_seconds >= (delay *. float_of_int visits)
      || QCheck.Test.fail_reportf
           "service delay unaccounted: %d visits x %.3fs but total %.6fs"
           visits delay report.Cluster.total_seconds
  | exception Cluster.Site_unreachable _ -> true

(* ---------------- sockets, flakes x service delay ------------------- *)

(* Fork one server per site holding that site's graph fragments, run
   the engine over the socket transport, tear everything down. *)
let with_graph_servers (gs : H.Gen.gscenario) g ~flake ~service_delay f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_reach_test_%d_%d" (Unix.getpid ())
         (Random.int 100000))
  in
  Sys.mkdir dir 0o755;
  let addrs =
    Array.init gs.H.Gen.g_n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let gfrags site =
    List.filter_map
      (fun fid ->
        if gs.H.Gen.g_assign.(fid) = site then Some (fid, Gfrag.fragment g fid)
        else None)
      (List.init gs.H.Gen.g_n_frags Fun.id)
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr ->
           Server.spawn ~flake ~service_delay ~addr ~frags:[]
             ~gfrags:(gfrags site) ())
         addrs)
  in
  let mux = Client.create ~timeout:20. ~addrs () in
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites mux;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (fun a ->
          match a with
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () -> f mux)

let sockets ((gs : H.Gen.gscenario), seed) =
  let g = partition_of gs in
  (* Every third visit request flakes; half the schedules also sleep a
     real millisecond per visit on the server side. *)
  let flake = if seed mod 3 = 0 then 0 else 3 in
  let service_delay = if seed mod 2 = 0 then 0.001 else 0. in
  with_graph_servers gs g ~flake ~service_delay @@ fun mux ->
  let handle = Client.handle mux in
  let tr = Client.handle_transport handle in
  Fun.protect ~finally:(fun () -> tr.Pax_dist.Transport.close ())
  @@ fun () ->
  let cl =
    Cluster.create_abstract ~transport:tr ~n_frags:gs.H.Gen.g_n_frags
      ~n_sites:gs.H.Gen.g_n_sites
      ~assign:(fun fid -> gs.H.Gen.g_assign.(fid))
      ()
  in
  let q = query_of g gs in
  Cluster.reset cl;
  let got, report = Reach.eval g cl q in
  (* Proof the wire was really used: a transport run measures actual
     socket bytes, and visiting any site at all moves some. *)
  (match report.Cluster.measured_bytes with
  | Some b when b > 0 -> ()
  | Some _ | None ->
      QCheck.Test.fail_reportf "sockets: no socket traffic measured");
  check_run ~what:"sockets" ~gs ~g ~cl ~got ~report

let qtest name ~count:n prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:n arbitrary_faulty prop)

(* ---------------- mid-run migration axis ---------------------------- *)

(* The graph family's half of the elastic-sharding differential
   (docs/SHARDING.md): a concurrent 16-query reachability workload
   over forked socket servers, run as two 8-query waves with one graph
   fragment live-migrated between them.  Answers and audit verdicts
   must be bit-identical to a no-migration control (and to the
   centralized BFS); the post-move visit vectors must match an
   in-process control under the post-move placement. *)

module Coordinator = Pax_serve.Coordinator
module Pe = Pax_engine.Pe
module Ptable = Pax_shard.Ptable
module Migrate = Pax_shard.Migrate
module Wire = Pax_wire.Wire

exception Timed_out

let with_timeout secs f =
  let old =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timed_out))
  in
  ignore (Unix.alarm secs);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm old)
    f

let mig_n = 60
let mig_n_frags = 6
let mig_n_sites = 3

let mig_edges =
  let st = Random.State.make [| 0x5eed; 9 |] in
  List.init 180 (fun _ -> (Random.State.int st mig_n, Random.State.int st mig_n))

let mig_partition () =
  Gfrag.partition ~n:mig_n ~edges:mig_edges
    ~owner:(Array.init mig_n (fun v -> v mod mig_n_frags))

let mig_queries =
  List.map
    (fun (s, d) -> Gfrag.query_string ~src:s ~dst:d)
    [ (0, 59); (1, 2); (5, 5); (7, 30); (12, 3); (58, 0); (9, 44); (23, 23) ]

let mig_obs (o : Pe.outcome) =
  ( o.Pe.answer_keys,
    Array.to_list o.Pe.report.Cluster.visits,
    o.Pe.audit.Pax_obs.Audit.pass )

let mig_wave coord qs =
  let tickets =
    List.mapi
      (fun i q ->
        let source = Printf.sprintf "client-%d" (i mod 4) in
        match Coordinator.submit ~source coord q with
        | Ok tk -> (q, tk)
        | Error e ->
            Alcotest.failf "%s rejected: %s" q (Coordinator.error_message e))
      qs
  in
  List.map
    (fun (q, tk) ->
      match Coordinator.await tk with
      | Ok o -> mig_obs o
      | Error e -> Alcotest.failf "%s raised: %s" q (Printexc.to_string e))
    tickets

let with_mig_servers g ~assign f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_reach_mig_%d_%d" (Unix.getpid ())
         (Random.int 100000))
  in
  Sys.mkdir dir 0o755;
  let addrs =
    Array.init mig_n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let gfrags site =
    List.filter_map
      (fun fid ->
        if assign fid = site then Some (fid, Gfrag.fragment g fid) else None)
      (List.init mig_n_frags Fun.id)
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr ->
           Server.spawn ~addr ~frags:[] ~gfrags:(gfrags site) ())
         addrs)
  in
  let mux = Client.create ~timeout:20. ~addrs () in
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites mux;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (fun a ->
          match a with
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () -> f mux)

let mig_workload ~migrate =
  let g = mig_partition () in
  let table =
    Ptable.create ~kind:Wire.Graph_frag ~n_frags:mig_n_frags
      ~n_sites:mig_n_sites
      ~assign:(fun fid -> fid mod mig_n_sites)
      ()
  in
  with_mig_servers g ~assign:(Ptable.assign table) (fun mux ->
      let coord =
        Coordinator.create ~max_inflight:8 (Coordinator.Sockets mux)
          [
            Coordinator.mount ~table
              (Reach.engine g ~n_sites:mig_n_sites
                 ~assign:(Ptable.assign table));
          ]
      in
      let w1 = mig_wave coord mig_queries in
      if migrate then begin
        let fid = 2 in
        let dst = (Ptable.site_of table fid + 1) mod mig_n_sites in
        match Migrate.move ~mux ~table ~fid ~dst () with
        | Ok o ->
            Alcotest.(check int) "move bumped the epoch" 1 o.Migrate.mv_epoch
        | Error e -> Alcotest.failf "graph migration failed: %s" e
      end;
      let w2 = mig_wave coord mig_queries in
      Coordinator.close coord;
      (w1, w2, Array.init mig_n_frags (Ptable.site_of table)))

let test_migration_axis () =
  with_timeout 300 (fun () ->
      let c1, c2, _ = mig_workload ~migrate:false in
      let m1, m2, post = mig_workload ~migrate:true in
      List.iteri
        (fun i ((a_ans, a_vis, a_pass), (b_ans, b_vis, b_pass)) ->
          let q = List.nth mig_queries i in
          Alcotest.(check (list int))
            (Printf.sprintf "pre-move %s: answers" q)
            a_ans b_ans;
          Alcotest.(check (list int))
            (Printf.sprintf "pre-move %s: visits" q)
            a_vis b_vis;
          Alcotest.(check bool)
            (Printf.sprintf "pre-move %s: audit" q)
            a_pass b_pass)
        (List.combine c1 m1);
      List.iteri
        (fun i ((a_ans, _, a_pass), (b_ans, _, b_pass)) ->
          let q = List.nth mig_queries i in
          Alcotest.(check (list int))
            (Printf.sprintf "post-move %s: answers" q)
            a_ans b_ans;
          Alcotest.(check bool)
            (Printf.sprintf "post-move %s: audit" q)
            a_pass b_pass;
          Alcotest.(check bool)
            (Printf.sprintf "post-move %s: auditor passes" q)
            true b_pass;
          (* The distributed answer across the migration still equals
             the centralized BFS. *)
          match Gfrag.parse_query q with
          | Some (src, dst) ->
              let expect = Bfs.reach ~n:mig_n ~edges:mig_edges ~src ~dst in
              Alcotest.(check (list int))
                (Printf.sprintf "post-move %s = BFS" q)
                (if expect then [ 1 ] else [])
                b_ans
          | None -> Alcotest.fail "unparseable reach query")
        (List.combine c2 m2);
      (* Post-move visits = what the post-move placement dictates,
         transport-invariantly. *)
      let g = mig_partition () in
      let table =
        Ptable.create ~kind:Wire.Graph_frag ~n_frags:mig_n_frags
          ~n_sites:mig_n_sites
          ~assign:(fun fid -> post.(fid))
          ()
      in
      let ctrl =
        Coordinator.create ~max_inflight:1 Coordinator.In_process
          [
            Coordinator.mount ~table
              (Reach.engine g ~n_sites:mig_n_sites ~assign:(Ptable.assign table));
          ]
      in
      List.iteri
        (fun i q ->
          match Coordinator.run ctrl q with
          | Ok o ->
              let c_ans, c_vis, c_pass = mig_obs o in
              let m_ans, m_vis, m_pass = List.nth m2 i in
              Alcotest.(check (list int))
                (Printf.sprintf "control %s: answers" q)
                c_ans m_ans;
              Alcotest.(check (list int))
                (Printf.sprintf "control %s: visits" q)
                c_vis m_vis;
              Alcotest.(check bool)
                (Printf.sprintf "control %s: audit" q)
                c_pass m_pass
          | Error e ->
              Alcotest.failf "control %s rejected: %s" q
                (Coordinator.error_message e))
        mig_queries;
      Coordinator.close ctrl)

let () =
  Alcotest.run "reach_differential"
    [
      ( "oracle",
        [
          qtest "reach = BFS or typed failure (faults x delay)"
            ~count:(count 150) faulted;
          qtest "reach = BFS over sockets (flakes x delay)"
            ~count:(socket_count 15) sockets;
          Alcotest.test_case
            "sockets: live graph-fragment migration is invisible" `Quick
            test_migration_axis;
        ] );
    ]

(* The second differential oracle (docs/ENGINES.md): on random
   fragmented digraphs, random src/dst and random placements, the
   distributed reachability engine agrees with the centralized BFS
   reference —

   - in-process on a clean network,
   - in-process under seeded fault plans crossed with a per-visit
     service delay (an axis the XPath oracle also covers), where the
     engine must either return the BFS answer or fail with the typed
     [Cluster.Site_unreachable],
   - and over real forked socket servers, with planned connection
     flakes ([Server.spawn ~flake]) and sometimes a real service
     delay, where the reply memo must make retries bit-identical.

   Every successful run's guarantee audit (one visit per site,
   O(|Vf|²) communication) must pass.  Default counts keep `dune
   runtest` fast; `dune build @slow` reruns at PAX_QCHECK_COUNT=2000,
   which drives >=500 random socket schedules. *)

module Gfrag = Pax_graph.Gfrag
module Bfs = Pax_graph.Bfs
module Reach = Pax_graph.Reach
module Cluster = Pax_dist.Cluster
module Fault = Pax_dist.Fault
module Sockio = Pax_net.Sockio
module Server = Pax_net.Server
module Client = Pax_net.Client
module H = Test_helpers
module G = QCheck.Gen

let count n =
  match Sys.getenv_opt "PAX_QCHECK_COUNT" with
  | Some s -> (try int_of_string s with _ -> n)
  | None -> n

(* Socket scenarios fork one server per site; a quarter of the sweep
   count keeps @slow within budget while still exceeding 500 schedules
   at PAX_QCHECK_COUNT=2000. *)
let socket_count n =
  match Sys.getenv_opt "PAX_QCHECK_COUNT" with
  | Some s -> (try max 1 (int_of_string s / 4) with _ -> n)
  | None -> n

let arbitrary_faulty =
  QCheck.make
    ~print:(fun (g, seed) ->
      Printf.sprintf "seed %d\n%s" seed (H.Gen.print_gscenario g))
    G.(pair H.Gen.gscenario (int_bound 1_000_000))

let partition_of (gs : H.Gen.gscenario) =
  Gfrag.partition ~n:gs.H.Gen.g_n ~edges:gs.H.Gen.g_edges
    ~owner:gs.H.Gen.g_owner

let expected (gs : H.Gen.gscenario) =
  Bfs.reach ~n:gs.H.Gen.g_n ~edges:gs.H.Gen.g_edges ~src:gs.H.Gen.g_src
    ~dst:gs.H.Gen.g_dst

let query_of g (gs : H.Gen.gscenario) =
  match
    Reach.parse g
      (Gfrag.query_string ~src:gs.H.Gen.g_src ~dst:gs.H.Gen.g_dst)
  with
  | Ok q -> q
  | Error e -> QCheck.Test.fail_reportf "parse: %s" e

let check_run ~what ~gs ~g ~cl ~got ~report =
  let want = expected gs in
  if got <> want then
    QCheck.Test.fail_reportf "%s: reach %d %d: distributed %b, BFS %b" what
      gs.H.Gen.g_src gs.H.Gen.g_dst got want
  else begin
    let a = Reach.audit g cl report in
    a.Pax_obs.Audit.pass
    || QCheck.Test.fail_reportf "%s: audit failed on a correct answer" what
  end

(* ---------------- in-process, faults x service delay ---------------- *)

let faulted ((gs : H.Gen.gscenario), seed) =
  let g = partition_of gs in
  let cl =
    Cluster.create_abstract ~n_frags:gs.H.Gen.g_n_frags
      ~n_sites:gs.H.Gen.g_n_sites
      ~assign:(fun fid -> gs.H.Gen.g_assign.(fid))
      ()
  in
  Cluster.set_fault cl
    (Fault.seeded ~drop:0.12 ~dup:0.08 ~delay:0.05 ~lose:0.1 ~crash:0.15 ~seed
       ());
  (* Half the schedules also charge a per-visit service delay — the
     axis must compose with fault plans (it changes timing accounting,
     never answers). *)
  let delay = if seed mod 2 = 0 then 0.001 else 0. in
  Cluster.set_service_delay cl delay;
  let q = query_of g gs in
  Cluster.reset cl;
  match Reach.eval g cl q with
  | got, report ->
      check_run ~what:"faulted" ~gs ~g ~cl ~got ~report
      &&
      let visits = Array.fold_left ( + ) 0 report.Cluster.visits in
      report.Cluster.total_seconds >= (delay *. float_of_int visits)
      || QCheck.Test.fail_reportf
           "service delay unaccounted: %d visits x %.3fs but total %.6fs"
           visits delay report.Cluster.total_seconds
  | exception Cluster.Site_unreachable _ -> true

(* ---------------- sockets, flakes x service delay ------------------- *)

(* Fork one server per site holding that site's graph fragments, run
   the engine over the socket transport, tear everything down. *)
let with_graph_servers (gs : H.Gen.gscenario) g ~flake ~service_delay f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_reach_test_%d_%d" (Unix.getpid ())
         (Random.int 100000))
  in
  Sys.mkdir dir 0o755;
  let addrs =
    Array.init gs.H.Gen.g_n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let gfrags site =
    List.filter_map
      (fun fid ->
        if gs.H.Gen.g_assign.(fid) = site then Some (fid, Gfrag.fragment g fid)
        else None)
      (List.init gs.H.Gen.g_n_frags Fun.id)
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr ->
           Server.spawn ~flake ~service_delay ~addr ~frags:[]
             ~gfrags:(gfrags site) ())
         addrs)
  in
  let mux = Client.create ~timeout:20. ~addrs () in
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites mux;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (fun a ->
          match a with
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () -> f mux)

let sockets ((gs : H.Gen.gscenario), seed) =
  let g = partition_of gs in
  (* Every third visit request flakes; half the schedules also sleep a
     real millisecond per visit on the server side. *)
  let flake = if seed mod 3 = 0 then 0 else 3 in
  let service_delay = if seed mod 2 = 0 then 0.001 else 0. in
  with_graph_servers gs g ~flake ~service_delay @@ fun mux ->
  let handle = Client.handle mux in
  let tr = Client.handle_transport handle in
  Fun.protect ~finally:(fun () -> tr.Pax_dist.Transport.close ())
  @@ fun () ->
  let cl =
    Cluster.create_abstract ~transport:tr ~n_frags:gs.H.Gen.g_n_frags
      ~n_sites:gs.H.Gen.g_n_sites
      ~assign:(fun fid -> gs.H.Gen.g_assign.(fid))
      ()
  in
  let q = query_of g gs in
  Cluster.reset cl;
  let got, report = Reach.eval g cl q in
  (* Proof the wire was really used: a transport run measures actual
     socket bytes, and visiting any site at all moves some. *)
  (match report.Cluster.measured_bytes with
  | Some b when b > 0 -> ()
  | Some _ | None ->
      QCheck.Test.fail_reportf "sockets: no socket traffic measured");
  check_run ~what:"sockets" ~gs ~g ~cl ~got ~report

let qtest name ~count:n prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:n arbitrary_faulty prop)

let () =
  Alcotest.run "reach_differential"
    [
      ( "oracle",
        [
          qtest "reach = BFS or typed failure (faults x delay)"
            ~count:(count 150) faulted;
          qtest "reach = BFS over sockets (flakes x delay)"
            ~count:(socket_count 15) sockets;
        ] );
    ]

(* The telemetry subsystem (pax_obs), end to end:

   - Clock: the monotonized wall source and the injectable fake;
   - Metrics: counters/gauges/histograms and the Prometheus flattening;
   - Span + Chrome export: trace-event JSON schema-checked with the
     in-tree parser — spans must cover every round, site visit and
     (over sockets) wire frame;
   - Sink: the no-op default leaves every deterministic observable
     bit-identical to an instrumented run (qcheck differential over
     random scenarios in-process, fixed workloads over real sockets);
   - Audit: the paper's three bounds pass with margin on the example
     workloads, and a deliberately broken 4-visit run reports failure;
   - run ids: distinct across rapid successive runs (the clock-hash
     collision this replaces);
   - stats agreement: the client's visit-frame counters equal the sum
     of the site servers' for the same run. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Fault = Pax_dist.Fault
module Trace = Pax_dist.Trace
module Transport = Pax_dist.Transport
module Run_result = Pax_core.Run_result
module Guarantee = Pax_core.Guarantee
module Sockio = Pax_net.Sockio
module Server = Pax_net.Server
module Client = Pax_net.Client
module Clock = Pax_obs.Clock
module Metrics = Pax_obs.Metrics
module Span = Pax_obs.Span
module Chrome = Pax_obs.Chrome
module Sink = Pax_obs.Sink
module Json = Pax_obs.Json
module Audit = Pax_obs.Audit
module H = Test_helpers
module G = QCheck.Gen

let count n =
  match Sys.getenv_opt "PAX_QCHECK_COUNT" with
  | Some s -> ( try int_of_string s with _ -> n)
  | None -> n

exception Timed_out

let with_timeout secs f =
  let old =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timed_out))
  in
  ignore (Unix.alarm secs);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm old)
    f

(* ------------------------------------------------------------------ *)
(* Clock                                                              *)
(* ------------------------------------------------------------------ *)

let test_clock_wall_monotonic () =
  let prev = ref (Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Clock.now () in
    if t < !prev then Alcotest.failf "clock went backwards: %.9f < %.9f" t !prev;
    prev := t
  done

let test_clock_fake () =
  let f = Clock.Fake.create ~at:5.0 () in
  Clock.with_source (Clock.Fake.source f) (fun () ->
      Alcotest.(check (float 0.)) "starts at 5" 5.0 (Clock.now ());
      Clock.Fake.advance f 2.5;
      Alcotest.(check (float 0.)) "advances" 7.5 (Clock.now ());
      (* Stepping the source backwards must not step [now] backwards:
         the high-water mark clamps. *)
      Clock.Fake.set f 1.0;
      Alcotest.(check (float 0.)) "clamped at the high-water mark" 7.5
        (Clock.now ());
      Clock.Fake.set f 9.0;
      Alcotest.(check (float 0.)) "resumes once ahead" 9.0 (Clock.now ()));
  (* The fake epoch must not clamp the restored wall source (and vice
     versa): a fresh epoch starts per installed source. *)
  let w = Clock.now () in
  Alcotest.(check bool) "wall restored" true (w > 1e9)

let test_clock_fresh_epoch () =
  (* A fake running far behind the wall still reads its own time. *)
  let f = Clock.Fake.create ~at:0.0 () in
  Clock.with_source (Clock.Fake.source f) (fun () ->
      Alcotest.(check (float 0.)) "not clamped up to wall readings" 0.0
        (Clock.now ()))

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "pax_rounds_total";
  Metrics.incr m "pax_rounds_total";
  Metrics.incr m ~by:3. "pax_rounds_total";
  Alcotest.(check (option (float 0.))) "counter sums" (Some 5.)
    (Metrics.value m "pax_rounds_total");
  Metrics.incr m ~labels:[ ("site", "1") ] "pax_visits_total";
  Metrics.incr m ~labels:[ ("site", "0") ] "pax_visits_total";
  Alcotest.(check (option (float 0.))) "labelled series are separate"
    (Some 1.)
    (Metrics.value m ~labels:[ ("site", "0") ] "pax_visits_total");
  Alcotest.(check (option (float 0.))) "absent series" None
    (Metrics.value m ~labels:[ ("site", "9") ] "pax_visits_total");
  Metrics.set m "pax_gauge" 42.;
  Metrics.set m "pax_gauge" 17.;
  Alcotest.(check (option (float 0.))) "gauge keeps last" (Some 17.)
    (Metrics.value m "pax_gauge");
  (* pairs are sorted and stable. *)
  let names = List.map fst (Metrics.pairs m) in
  Alcotest.(check (list string)) "sorted flattening"
    (List.sort compare names) names;
  let dump = Metrics.dump m in
  Alcotest.(check bool) "dump carries the series" true
    (Astring.String.is_infix ~affix:"pax_visits_total{site=\"0\"} 1" dump)

let test_metrics_errors () =
  let m = Metrics.create () in
  (match Metrics.incr m ~by:(-1.) "c" with
  | () -> Alcotest.fail "negative counter increment must be rejected"
  | exception Invalid_argument _ -> ());
  Metrics.incr m "c";
  match Metrics.observe m "c" 1. with
  | () -> Alcotest.fail "kind mismatch must be rejected"
  | exception Invalid_argument _ -> ()

let test_metrics_histogram () =
  let m = Metrics.create () in
  let buckets = [| 0.1; 1.; 10. |] in
  List.iter
    (fun v -> Metrics.observe m ~buckets "lat" v)
    [ 0.05; 0.5; 0.5; 5.; 50. ];
  let pairs = Metrics.pairs m in
  let get k =
    match List.assoc_opt k pairs with
    | Some v -> v
    | None -> Alcotest.failf "missing series %s" k
  in
  Alcotest.(check (float 0.)) "le=0.1 cumulative" 1. (get "lat_bucket{le=\"0.1\"}");
  Alcotest.(check (float 0.)) "le=1 cumulative" 3. (get "lat_bucket{le=\"1\"}");
  Alcotest.(check (float 0.)) "le=10 cumulative" 4. (get "lat_bucket{le=\"10\"}");
  Alcotest.(check (float 0.)) "le=+Inf = count" 5. (get "lat_bucket{le=\"+Inf\"}");
  Alcotest.(check (float 1e-9)) "sum" 56.05 (get "lat_sum");
  Alcotest.(check (float 0.)) "count" 5. (get "lat_count");
  (* of_pairs (the Stats wire payload shape) canonicalizes: sorted by
     series name, idempotent, and loses no series.  ([pairs] itself
     keeps histogram buckets in ascending-le order, which is what the
     text exposition wants; the two orders differ lexicographically.) *)
  let canon = Metrics.of_pairs pairs in
  Alcotest.(check (list string)) "of_pairs sorts by series name"
    (List.sort compare (List.map fst pairs))
    (List.map fst canon);
  Alcotest.(check bool) "of_pairs is idempotent" true
    (Metrics.of_pairs canon = canon);
  Alcotest.(check bool) "of_pairs keeps every series" true
    (List.sort compare canon = List.sort compare pairs)

(* ------------------------------------------------------------------ *)
(* Spans and the Chrome trace-event export                            *)
(* ------------------------------------------------------------------ *)

let json_str k j = Option.bind (Json.member k j) Json.as_str
let json_num k j = Option.bind (Json.member k j) Json.as_num

(* Schema-check a Chrome export: the object form with thread-name
   metadata, and one well-formed "X" event per span. *)
let check_chrome_schema ~spans serialized =
  let j =
    match Json.parse serialized with
    | Ok j -> j
    | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  in
  let events =
    match Option.bind (Json.member "traceEvents" j) Json.as_list with
    | Some l -> l
    | None -> Alcotest.fail "missing traceEvents array"
  in
  let metas, xs =
    List.partition (fun e -> json_str "ph" e = Some "M") events
  in
  Alcotest.(check int) "one X event per span" (List.length spans)
    (List.length xs);
  let named_tids =
    List.map
      (fun m ->
        Alcotest.(check (option string))
          "metadata names a thread" (Some "thread_name") (json_str "name" m);
        (match Option.bind (Json.member "args" m) (json_str "name") with
        | Some _ -> ()
        | None -> Alcotest.fail "thread_name metadata without args.name");
        match json_num "tid" m with
        | Some tid -> tid
        | None -> Alcotest.fail "metadata without tid")
      metas
  in
  List.iter
    (fun x ->
      (match json_str "ph" x with
      | Some "X" -> ()
      | _ -> Alcotest.fail "event is neither M nor X");
      (match json_str "name" x with
      | Some "" | None -> Alcotest.fail "X event without a name"
      | Some _ -> ());
      (match json_str "cat" x with
      | Some "" | None -> Alcotest.fail "X event without a category"
      | Some _ -> ());
      (match json_num "ts" x with
      | Some ts when ts >= 0. -> ()
      | _ -> Alcotest.fail "X event with negative or missing ts");
      (match json_num "dur" x with
      | Some d when d >= 1. -> ()
      | _ -> Alcotest.fail "X event with dur < 1us");
      (match json_num "pid" x with
      | Some _ -> ()
      | None -> Alcotest.fail "X event without pid");
      match json_num "tid" x with
      | Some tid when List.mem tid named_tids -> ()
      | Some _ -> Alcotest.fail "X event on an unnamed tid"
      | None -> Alcotest.fail "X event without tid")
    xs;
  (events, xs)

let test_chrome_export () =
  let f = Clock.Fake.create ~at:100.0 () in
  Clock.with_source (Clock.Fake.source f) (fun () ->
      let s = Span.create () in
      let rec_span name track d =
        let t0 = Clock.now () in
        Clock.Fake.advance f d;
        Span.record s ~cat:"test" ~track ~args:[ ("k", "v") ] name ~t0
          ~t1:(Clock.now ())
      in
      rec_span "a" "coordinator" 0.001;
      rec_span "b" "site 0" 0.002;
      rec_span "c" "site 1" 0.0;
      let spans = Span.spans s in
      Alcotest.(check int) "three spans" 3 (List.length spans);
      let _, xs = check_chrome_schema ~spans (Chrome.to_string spans) in
      (* Timestamps are relative to the earliest span... *)
      Alcotest.(check (option (float 0.))) "first span at ts 0" (Some 0.)
        (json_num "ts" (List.hd xs));
      (* ... and a zero-length span still renders 1us wide. *)
      let last = List.nth xs 2 in
      Alcotest.(check (option (float 0.))) "zero duration clamps to 1us"
        (Some 1.) (json_num "dur" last))

let test_span_order () =
  let f = Clock.Fake.create ~at:0.0 () in
  Clock.with_source (Clock.Fake.source f) (fun () ->
      let s = Span.create () in
      Span.record s "late" ~t0:5.0 ~t1:6.0;
      Span.record s "early" ~t0:1.0 ~t1:2.0;
      Span.record s "tie-1" ~t0:3.0 ~t1:3.5;
      Span.record s "tie-2" ~t0:3.0 ~t1:3.5;
      Alcotest.(check (list string)) "sorted by (begin, seq)"
        [ "early"; "tie-1"; "tie-2"; "late" ]
        (List.map (fun (x : Span.span) -> x.Span.sp_name) (Span.spans s)))

(* ------------------------------------------------------------------ *)
(* Sink                                                               *)
(* ------------------------------------------------------------------ *)

let test_sink_noop () =
  let s = Sink.noop in
  Alcotest.(check bool) "disabled" false s.Sink.enabled;
  let r = Sink.span s "x" (fun () -> 41 + 1) in
  Alcotest.(check int) "span is exactly f ()" 42 r;
  Sink.count s "c";
  Sink.observe s "h" 1.;
  Alcotest.(check int) "no spans recorded" 0 (Span.length s.Sink.spans);
  Alcotest.(check (option (float 0.))) "no metrics recorded" None
    (Metrics.value s.Sink.metrics "c")

let test_sink_enabled () =
  let s = Sink.create () in
  Alcotest.(check bool) "enabled" true s.Sink.enabled;
  (match Sink.span s "boom" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "exception must propagate"
  | exception Failure _ -> ());
  Alcotest.(check int) "span recorded even on exception" 1
    (Span.length s.Sink.spans);
  Sink.count s ~labels:[ ("k", "v") ] "c";
  Alcotest.(check (option (float 0.))) "counter recorded" (Some 1.)
    (Metrics.value s.Sink.metrics ~labels:[ ("k", "v") ] "c");
  Sink.clear s;
  Alcotest.(check int) "clear empties spans" 0 (Span.length s.Sink.spans);
  Alcotest.(check (list (pair string (float 0.)))) "clear empties metrics" []
    (Metrics.pairs s.Sink.metrics)

(* ------------------------------------------------------------------ *)
(* Audit units                                                        *)
(* ------------------------------------------------------------------ *)

let sample_input =
  {
    Audit.engine = "pax2";
    visit_limit = Some 2;
    max_visits = 2;
    q_entries = 4;
    ft_size = 5;
    t_size = 1000;
    control_bytes = 200;
    answer_bytes = 100;
    total_ops = 5000;
  }

let test_audit_pass () =
  let r = Audit.evaluate sample_input in
  Alcotest.(check bool) "passes" true r.Audit.pass;
  Alcotest.(check int) "three bounds" 3 (List.length r.Audit.bounds);
  List.iter
    (fun (b : Audit.bound) ->
      Alcotest.(check bool) (b.Audit.b_name ^ " passes") true b.Audit.b_pass;
      if b.Audit.b_margin < 0. then
        Alcotest.failf "%s: negative margin on a passing bound" b.Audit.b_name)
    r.Audit.bounds;
  (* No visits bound when the engine promises none. *)
  let r' = Audit.evaluate { sample_input with Audit.visit_limit = None } in
  Alcotest.(check int) "two bounds without a visit promise" 2
    (List.length r'.Audit.bounds)

(* The acceptance criterion's deliberate violation: a 4-visit run under
   a <= 2 promise must report failure, with a negative margin. *)
let test_audit_violation () =
  let r = Audit.evaluate { sample_input with Audit.max_visits = 4 } in
  Alcotest.(check bool) "fails" false r.Audit.pass;
  let visits =
    List.find (fun (b : Audit.bound) -> b.Audit.b_name = "visits")
      r.Audit.bounds
  in
  Alcotest.(check bool) "visits bound failed" false visits.Audit.b_pass;
  Alcotest.(check bool) "negative margin" true (visits.Audit.b_margin < 0.);
  Alcotest.(check (float 0.)) "actual is 4" 4. visits.Audit.b_actual;
  (* The other two bounds fail on inflated actuals too. *)
  let r_comm =
    Audit.evaluate { sample_input with Audit.control_bytes = 10_000_000 }
  in
  Alcotest.(check bool) "comm violation fails" false r_comm.Audit.pass;
  let r_comp =
    Audit.evaluate { sample_input with Audit.total_ops = 100_000_000 }
  in
  Alcotest.(check bool) "comp violation fails" false r_comp.Audit.pass

let test_audit_json () =
  let j = Audit.to_json (Audit.evaluate sample_input) in
  (* The report serializes to parseable JSON with the verdict. *)
  match Json.parse (Json.to_string j) with
  | Error e -> Alcotest.failf "audit JSON does not parse: %s" e
  | Ok j' -> (
      match Option.bind (Json.member "pass" j') Json.as_bool with
      | Some true -> ()
      | _ -> Alcotest.fail "audit JSON without pass=true")

(* ------------------------------------------------------------------ *)
(* Audit over the example suite                                       *)
(* ------------------------------------------------------------------ *)

let xmark_ft () =
  let doc = Pax_xmark.Xmark.doc ~seed:11 ~total_nodes:1600 ~n_sites:4 in
  Fragment.fragmentize doc ~cuts:(Fragment.cuts_by_tag doc ~tag:"site")

let xmark_queries =
  [
    "//person[profile/education]";
    "//person/profile/age";
    "//regions/*/item/name";
    "/site/open_auctions/open_auction[bidder]";
  ]

let engines =
  [
    ("pax2", fun cl q -> Pax_core.Pax2.run cl q);
    ("pax2", fun cl q -> Pax_core.Pax2.run ~annotations:true cl q);
    ("pax3", fun cl q -> Pax_core.Pax3.run cl q);
    ("pax3", fun cl q -> Pax_core.Pax3.run ~annotations:true cl q);
  ]

let check_audit_pass ~what ~engine ~ftree r =
  let rep = Guarantee.audit ~engine ~ftree r in
  if not rep.Audit.pass then
    Alcotest.failf "%s: audit failed:@.%s" what
      (Format.asprintf "%a" Audit.pp rep);
  List.iter
    (fun (b : Audit.bound) ->
      if b.Audit.b_margin < 0. then
        Alcotest.failf "%s: %s margin negative" what b.Audit.b_name)
    rep.Audit.bounds

let test_audit_example_suite () =
  (* The Fig. 2 clientele example... *)
  let c = H.Data.clientele () in
  let ft = H.Data.clientele_ftree c in
  let q = Query.of_string "//stock[qt/text()=\"40\"]/code" in
  List.iter
    (fun (engine, run) ->
      let cl = H.Data.clientele_cluster c in
      check_audit_pass ~what:("clientele " ^ engine) ~engine ~ftree:ft
        (run cl q))
    engines;
  (* ... and the XMark workload at several queries. *)
  let ft = xmark_ft () in
  List.iter
    (fun qs ->
      let q = Query.of_string qs in
      List.iter
        (fun (engine, run) ->
          let cl = Pax_dist.Placement.cluster_round_robin ft ~n_sites:3 in
          check_audit_pass
            ~what:(Printf.sprintf "xmark %s %s" engine qs)
            ~engine ~ftree:ft (run cl q))
        engines)
    xmark_queries

(* ------------------------------------------------------------------ *)
(* Span coverage of an engine run                                     *)
(* ------------------------------------------------------------------ *)

let spans_with_cat cat spans =
  List.filter (fun (s : Span.span) -> s.Span.sp_cat = cat) spans

let test_span_coverage_in_process () =
  let c = H.Data.clientele () in
  let cl = H.Data.clientele_cluster c in
  let sink = Sink.create () in
  Cluster.set_sink cl sink;
  let q = Query.of_string "//stock[qt/text()=\"40\"]/code" in
  let r = Pax_core.Pax2.run cl q in
  let rep = r.Run_result.report in
  let spans = Span.spans sink.Sink.spans in
  let rounds = spans_with_cat "round" spans in
  Alcotest.(check (list string)) "one round span per round, in order"
    (List.map (fun l -> "round " ^ l) rep.Cluster.rounds)
    (List.map (fun (s : Span.span) -> s.Span.sp_name) rounds);
  let visits = spans_with_cat "visit" spans in
  Alcotest.(check int) "one visit span per charged visit"
    (Array.fold_left ( + ) 0 rep.Cluster.visits)
    (List.length visits);
  (* Visit spans live on their site's track. *)
  List.iter
    (fun (s : Span.span) ->
      if not (Astring.String.is_prefix ~affix:"site " s.Span.sp_track) then
        Alcotest.failf "visit span on track %S" s.Span.sp_track)
    visits;
  Alcotest.(check bool) "coordinator stage spans present" true
    (spans_with_cat "stage" spans <> []);
  (* The whole run exports as schema-valid Chrome JSON. *)
  ignore (check_chrome_schema ~spans (Chrome.to_string spans));
  (* And the counters agree with the report. *)
  Alcotest.(check (option (float 0.))) "rounds counter"
    (Some (float_of_int (List.length rep.Cluster.rounds)))
    (Metrics.value sink.Sink.metrics "pax_rounds_total");
  Array.iteri
    (fun site n ->
      let got =
        Option.value ~default:0.
          (Metrics.value sink.Sink.metrics
             ~labels:[ ("site", string_of_int site) ]
             "pax_visits_total")
      in
      Alcotest.(check (float 0.))
        (Printf.sprintf "visit counter site %d" site)
        (float_of_int n) got)
    rep.Cluster.visits

let test_span_coverage_pool () =
  let c = H.Data.clientele () in
  (* Baseline: sequential, uninstrumented. *)
  let cl0 = H.Data.clientele_cluster c in
  let q = Query.of_string "//stock[qt/text()=\"40\"]/code" in
  let r0 = Pax_core.Pax3.run cl0 q in
  (* Instrumented parallel run on a real domain pool. *)
  let cl = H.Data.clientele_cluster c in
  Cluster.set_domains cl 3;
  let sink = Sink.create () in
  Cluster.set_sink cl sink;
  let r = Pax_core.Pax3.run cl q in
  Alcotest.(check (list int)) "parallel instrumented answers"
    r0.Run_result.answer_ids r.Run_result.answer_ids;
  Alcotest.(check int) "parallel instrumented ops"
    r0.Run_result.report.Cluster.total_ops r.Run_result.report.Cluster.total_ops;
  let spans = Span.spans sink.Sink.spans in
  Alcotest.(check int) "visit spans still cover every visit"
    (Array.fold_left ( + ) 0 r.Run_result.report.Cluster.visits)
    (List.length (spans_with_cat "visit" spans));
  Alcotest.(check bool) "pool queue-wait spans recorded" true
    (spans_with_cat "pool" spans <> []);
  (* Histograms flatten through [pairs]. *)
  let cnt =
    Option.value ~default:0.
      (List.assoc_opt "pax_pool_queue_wait_seconds_count"
         (Metrics.pairs sink.Sink.metrics))
  in
  Alcotest.(check bool) "queue wait observed per pooled task" true (cnt > 0.)

(* ------------------------------------------------------------------ *)
(* Differential: instrumented = uninstrumented (in-process, qcheck)   *)
(* ------------------------------------------------------------------ *)

let observables (r : Run_result.t) =
  let rep = r.Run_result.report in
  ( r.Run_result.answer_ids,
    rep.Cluster.visits,
    rep.Cluster.rounds,
    rep.Cluster.total_ops,
    ( rep.Cluster.control_bytes,
      rep.Cluster.answer_bytes,
      rep.Cluster.tree_bytes,
      rep.Cluster.n_messages ) )

let diff_engines =
  [
    ("PaX2-NA", fun cl q -> Pax_core.Pax2.run cl q);
    ("PaX2-XA", fun cl q -> Pax_core.Pax2.run ~annotations:true cl q);
    ("PaX3-NA", fun cl q -> Pax_core.Pax3.run cl q);
    ("PaX3-XA", fun cl q -> Pax_core.Pax3.run ~annotations:true cl q);
  ]

let arbitrary_faulty =
  QCheck.make
    ~print:(fun (s, seed) ->
      Printf.sprintf "fault seed %d\n%s" seed (H.Gen.print_scenario s))
    G.(pair H.Gen.scenario (int_bound 1_000_000))

(* One engine, one scenario: the run's deterministic observables (and
   the full logical trace) must be identical under the no-op sink and
   under a live one.  [mk_fault] is re-applied before each run so both
   see the same schedule. *)
let check_noop_equivalence name run cl q ~mk_fault =
  let capture () =
    Cluster.set_fault cl (mk_fault ());
    match (run cl q : Run_result.t) with
    | r -> Ok (observables r, Trace.events (Cluster.trace cl))
    | exception Cluster.Site_unreachable { site; stage; attempts } ->
        Error (site, stage, attempts)
  in
  Cluster.set_sink cl Sink.noop;
  let plain = capture () in
  Cluster.set_sink cl (Sink.create ());
  let instrumented = capture () in
  Cluster.set_sink cl Sink.noop;
  plain = instrumented
  || QCheck.Test.fail_reportf
       "%s: instrumented run diverges from the no-op-sink run" name

let differential ~fault (s, seed) =
  let cl = s.H.Gen.s_cluster in
  let q = Query.of_ast s.H.Gen.s_query in
  let mk_fault () =
    if fault then
      Fault.seeded ~drop:0.12 ~dup:0.08 ~delay:0.05 ~lose:0.1 ~crash:0.15
        ~seed ()
    else Fault.none
  in
  List.for_all
    (fun (name, run) -> check_noop_equivalence name run cl q ~mk_fault)
    diff_engines

let make_diff_test name ~count:n ~fault =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(count n) arbitrary_faulty
       (differential ~fault))

(* ------------------------------------------------------------------ *)
(* Differential + coverage + stats agreement over real sockets        *)
(* ------------------------------------------------------------------ *)

let site_frags cl ft site =
  List.map
    (fun fid -> (fid, (Fragment.fragment ft fid).Fragment.root))
    (Cluster.fragments_on cl site)

let with_servers ft ~n_sites f =
  let cl = Pax_dist.Placement.cluster_round_robin ft ~n_sites in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_obs_test_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  Sys.mkdir dir 0o755;
  let addrs =
    Array.init n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr -> Server.spawn ~addr ~frags:(site_frags cl ft site) ())
         addrs)
  in
  let client = Client.create ~timeout:20. ~addrs () in
  Cluster.set_transport cl (Some (Client.transport client));
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites client;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (fun a ->
          match a with
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () -> f cl client)

let net_pair pairs ~name ~dir =
  Option.value ~default:0.
    (List.assoc_opt (Printf.sprintf "%s{dir=\"%s\"}" name dir) pairs)

let test_net_differential_and_stats () =
  with_timeout 120 (fun () ->
      let ft = xmark_ft () in
      with_servers ft ~n_sites:3 (fun cl client ->
          List.iter
            (fun qs ->
              let q = Query.of_string qs in
              List.iter
                (fun (name, run) ->
                  (* Uninstrumented... *)
                  Cluster.set_sink cl Sink.noop;
                  Client.set_sink client Sink.noop;
                  let r0 = (run cl q : Run_result.t) in
                  (* ... vs instrumented, same servers.  The servers'
                     counters are cumulative across runs, so snapshot
                     them first and compare deltas below. *)
                  let before =
                    List.init (Cluster.n_sites cl) (Client.fetch_stats client)
                  in
                  let sink = Sink.create () in
                  Cluster.set_sink cl sink;
                  Client.set_sink client sink;
                  let r1 = run cl q in
                  if observables r0 <> observables r1 then
                    Alcotest.failf "%s %s: instrumented socket run diverges"
                      name qs;
                  (* Span coverage: every round, every (synthesized)
                     site visit, every wire frame. *)
                  let rep = r1.Run_result.report in
                  let spans = Span.spans sink.Sink.spans in
                  Alcotest.(check int)
                    (qs ^ ": round spans")
                    (List.length rep.Cluster.rounds)
                    (List.length (spans_with_cat "round" spans));
                  Alcotest.(check int)
                    (qs ^ ": visit spans")
                    (Array.fold_left ( + ) 0 rep.Cluster.visits)
                    (List.length (spans_with_cat "visit" spans));
                  let stats =
                    match Cluster.net_stats cl with
                    | Some s -> s
                    | None -> Alcotest.fail "net_stats missing"
                  in
                  Alcotest.(check int)
                    (qs ^ ": one wire span per frame")
                    stats.Transport.frames
                    (List.length (spans_with_cat "wire" spans));
                  ignore (check_chrome_schema ~spans (Chrome.to_string spans));
                  (* Stats agreement: the client's visit-frame counters
                     equal the sum over the site servers', dir-flipped
                     (client "sent" arrives as server "recv"). *)
                  let cpairs = Metrics.pairs sink.Sink.metrics in
                  let servers =
                    List.init (Cluster.n_sites cl) (Client.fetch_stats client)
                  in
                  let sum ~name ~dir =
                    List.fold_left2
                      (fun acc p0 p1 ->
                        acc +. net_pair p1 ~name ~dir
                        -. net_pair p0 ~name ~dir)
                      0. before servers
                  in
                  List.iter
                    (fun series ->
                      Alcotest.(check (float 0.))
                        (Printf.sprintf "%s %s: client sent = servers recv (%s)"
                           name qs series)
                        (net_pair cpairs ~name:series ~dir:"sent")
                        (sum ~name:series ~dir:"recv");
                      Alcotest.(check (float 0.))
                        (Printf.sprintf "%s %s: client recv = servers sent (%s)"
                           name qs series)
                        (net_pair cpairs ~name:series ~dir:"recv")
                        (sum ~name:series ~dir:"sent"))
                    [ "pax_net_visit_frames_total"; "pax_net_visit_bytes_total" ];
                  (* Fetching stats twice is stable: the raw-IO fetch
                     does not disturb the counters it reads. *)
                  let again =
                    List.init (Cluster.n_sites cl) (Client.fetch_stats client)
                  in
                  Alcotest.(check bool)
                    (qs ^ ": stats fetch is read-only") true (servers = again))
                [ ("pax2", fun cl q -> Pax_core.Pax2.run cl q);
                  ("pax3", fun cl q -> Pax_core.Pax3.run cl q) ])
            [ "//person[profile/education]"; "//regions/*/item/name" ]))

(* ------------------------------------------------------------------ *)
(* Run ids                                                            *)
(* ------------------------------------------------------------------ *)

let test_run_id_uniqueness () =
  let n = 20_000 in
  let seen = Hashtbl.create (2 * n) in
  for i = 1 to n do
    let id = Client.fresh_run_id () in
    if id < 0 || id >= 1 lsl 55 then
      Alcotest.failf "run id %d outside the wire varint range" id;
    if Hashtbl.mem seen id then
      Alcotest.failf "duplicate run id %d after %d draws" id i;
    Hashtbl.add seen id ()
  done

(* ------------------------------------------------------------------ *)
(* Span ring bounds                                                   *)
(* ------------------------------------------------------------------ *)

let test_span_ring_capacity () =
  let t = Span.create ~capacity:4 () in
  for i = 1 to 6 do
    Span.record t ~cat:"c"
      (Printf.sprintf "s%d" i)
      ~t0:(float_of_int i)
      ~t1:(float_of_int i +. 0.5)
  done;
  Alcotest.(check int) "length capped" 4 (Span.length t);
  Alcotest.(check int) "drops counted" 2 (Span.drops t);
  Alcotest.(check (list string)) "oldest evicted first"
    [ "s3"; "s4"; "s5"; "s6" ]
    (List.map (fun (sp : Span.span) -> sp.Span.sp_name) (Span.spans t));
  let drained = Span.drain t in
  Alcotest.(check int) "drain returns the retained spans" 4
    (List.length drained);
  Alcotest.(check int) "empty after drain" 0 (Span.length t);
  Alcotest.(check int) "drops survive the drain" 2 (Span.drops t);
  (* The sink counts evictions into the exported metric. *)
  let s = Sink.create ~capacity:2 () in
  for i = 1 to 5 do
    Sink.record s (Printf.sprintf "m%d" i) ~t0:0. ~t1:1.
  done;
  Alcotest.(check (option (float 0.))) "pax_obs_spans_dropped_total" (Some 3.)
    (Metrics.value s.Sink.metrics Sink.dropped_total)

(* ------------------------------------------------------------------ *)
(* Clock-offset estimation                                            *)
(* ------------------------------------------------------------------ *)

let test_estimate_offset () =
  (* Symmetric transit: the skew is recovered exactly, whatever its
     sign or magnitude — simulated on a hand-cranked clock, so the
     whole estimate is deterministic. *)
  List.iter
    (fun skew ->
      List.iter
        (fun transit ->
          let f = Clock.Fake.create ~at:100. () in
          Clock.with_source (Clock.Fake.source f) (fun () ->
              let t0 = Clock.now () in
              Clock.Fake.advance f transit;
              let server_now = Clock.now () +. skew in
              Clock.Fake.advance f transit;
              let t1 = Clock.now () in
              Alcotest.(check (float 1e-9))
                (Printf.sprintf "skew %g recovered (transit %g)" skew transit)
                skew
                (Client.estimate_offset ~t0 ~t1 ~server_now)))
        [ 0.; 0.001; 0.5 ])
    [ 0.; 37.25; -12.5; 3600. ];
  (* Asymmetric transit: the error is bounded by half the round trip. *)
  let f = Clock.Fake.create ~at:0. () in
  Clock.with_source (Clock.Fake.source f) (fun () ->
      let skew = 5. in
      let t0 = Clock.now () in
      Clock.Fake.advance f 0.9;
      let server_now = Clock.now () +. skew in
      Clock.Fake.advance f 0.1;
      let t1 = Clock.now () in
      let est = Client.estimate_offset ~t0 ~t1 ~server_now in
      Alcotest.(check bool) "error bounded by rtt/2" true
        (Float.abs (est -. skew) <= ((t1 -. t0) /. 2.) +. 1e-9))

(* ------------------------------------------------------------------ *)
(* Merged multi-process Chrome export                                 *)
(* ------------------------------------------------------------------ *)

(* Schema-check a merged export: one process_name per process (pids
   1..n in list order), one X event per span across all processes, no
   negative timestamps, and flow arrows in matched s/f pairs.  Returns
   (flow starts, X events) for further assertions. *)
let check_chrome_processes_schema procs =
  let serialized = Chrome.to_string_processes procs in
  let j =
    match Json.parse serialized with
    | Ok j -> j
    | Error e -> Alcotest.failf "merged trace does not parse: %s" e
  in
  let events =
    match Option.bind (Json.member "traceEvents" j) Json.as_list with
    | Some l -> l
    | None -> Alcotest.fail "missing traceEvents array"
  in
  let proc_metas =
    List.filter
      (fun e ->
        json_str "ph" e = Some "M" && json_str "name" e = Some "process_name")
      events
  in
  Alcotest.(check int) "one process_name per process" (List.length procs)
    (List.length proc_metas);
  List.iteri
    (fun i p ->
      match
        List.find_opt
          (fun m -> json_num "pid" m = Some (float_of_int (i + 1)))
          proc_metas
      with
      | Some m ->
          Alcotest.(check (option string))
            "process named as given"
            (Some p.Chrome.pr_name)
            (Option.bind (Json.member "args" m) (json_str "name"))
      | None -> Alcotest.failf "no process_name for pid %d" (i + 1))
    procs;
  let xs = List.filter (fun e -> json_str "ph" e = Some "X") events in
  Alcotest.(check int) "one X event per span across processes"
    (List.fold_left (fun n p -> n + List.length p.Chrome.pr_spans) 0 procs)
    (List.length xs);
  List.iter
    (fun x ->
      (match json_num "ts" x with
      | Some ts when ts >= 0. -> ()
      | _ -> Alcotest.fail "X event with negative or missing ts");
      match json_num "dur" x with
      | Some d when d >= 0. -> ()
      | _ -> Alcotest.fail "X event with negative or missing dur")
    xs;
  let starts = List.filter (fun e -> json_str "ph" e = Some "s") events in
  let finishes = List.filter (fun e -> json_str "ph" e = Some "f") events in
  Alcotest.(check int) "flow starts pair with finishes"
    (List.length starts) (List.length finishes);
  let finish_ids = List.filter_map (json_num "id") finishes in
  List.iter
    (fun s ->
      match json_num "id" s with
      | Some id when List.mem id finish_ids -> ()
      | _ -> Alcotest.fail "flow start without a matching finish")
    starts;
  (starts, xs)

let test_chrome_processes_merge () =
  let sp ?parent ~id ~t0 ~t1 ~track ~cat name seqn =
    {
      Span.sp_name = name;
      sp_cat = cat;
      sp_track = track;
      sp_begin = t0;
      sp_dur = t1 -. t0;
      sp_args = [];
      sp_seq = seqn;
      sp_id = id;
      sp_parent = parent;
    }
  in
  (* Coordinator at true time 100 s; the site clock runs 50 s ahead.
     After alignment the site's visit must land 2 ms after the
     coordinator's rpc span, and the dangling parent (9999 is nowhere)
     must draw no flow arrow. *)
  let coord =
    [ sp ~id:1 ~t0:100. ~t1:100.01 ~track:"coordinator" ~cat:"rpc" "rpc S0" 0 ]
  in
  let site =
    [
      sp ~parent:1 ~id:2 ~t0:150.002 ~t1:150.008 ~track:"site 0" ~cat:"visit"
        "stage1" 1;
      sp ~parent:9999 ~id:3 ~t0:150.004 ~t1:150.005 ~track:"site 0"
        ~cat:"wire" "dangling" 2;
    ]
  in
  let procs =
    [
      { Chrome.pr_name = "coordinator"; pr_offset = 0.; pr_spans = coord };
      { Chrome.pr_name = "site S0"; pr_offset = 50.; pr_spans = site };
    ]
  in
  let starts, xs = check_chrome_processes_schema procs in
  Alcotest.(check int) "exactly one flow arrow (dangling parent skipped)" 1
    (List.length starts);
  (match starts with
  | [ s ] ->
      Alcotest.(check (option (float 0.))) "flow id is the child span's"
        (Some 2.) (json_num "id" s)
  | _ -> ());
  let ts_of name =
    match List.find_opt (fun x -> json_str "name" x = Some name) xs with
    | Some x -> json_num "ts" x
    | None -> Alcotest.failf "no X event named %s" name
  in
  Alcotest.(check (option (float 0.))) "origin at the earliest aligned span"
    (Some 0.) (ts_of "rpc S0");
  Alcotest.(check (option (float 0.5))) "site span aligned onto coord clock"
    (Some 2000.) (ts_of "stage1");
  Alcotest.(check (option (float 0.5))) "alignment preserves in-site order"
    (Some 4000.) (ts_of "dangling")

(* ------------------------------------------------------------------ *)
(* Cross-process parent links over real sockets                       *)
(* ------------------------------------------------------------------ *)

let test_parent_links_across_wire () =
  with_timeout 120 (fun () ->
      let ft = xmark_ft () in
      with_servers ft ~n_sites:2 (fun cl client ->
          (* Drain anything recorded before this run so the harvest
             below holds exactly this run's spans. *)
          for site = 0 to Cluster.n_sites cl - 1 do
            ignore (Client.fetch_spans client site)
          done;
          let sink = Sink.create () in
          Cluster.set_sink cl sink;
          Client.set_sink client sink;
          let q = Query.of_string "//person[profile/education]" in
          ignore (Pax_core.Pax2.run cl q : Run_result.t);
          let harvested =
            List.init (Cluster.n_sites cl) (Client.fetch_spans client)
          in
          let coord_spans = Span.spans sink.Sink.spans in
          Alcotest.(check bool) "coordinator recorded rpc spans" true
            (spans_with_cat "rpc" coord_spans <> []);
          let coord_ids = Hashtbl.create 64 in
          List.iter
            (fun (sp : Span.span) -> Hashtbl.replace coord_ids sp.Span.sp_id ())
            coord_spans;
          List.iter
            (fun (_offset, spans) ->
              Alcotest.(check bool) "site recorded spans" true (spans <> []);
              let site_ids = Hashtbl.create 64 in
              List.iter
                (fun (sp : Span.span) ->
                  Hashtbl.replace site_ids sp.Span.sp_id ())
                spans;
              List.iter
                (fun (sp : Span.span) ->
                  match (sp.Span.sp_cat, sp.Span.sp_parent) with
                  (* Every server visit span parent-links to the
                     coordinator rpc span whose id crossed the wire. *)
                  | "visit", Some p when Hashtbl.mem coord_ids p -> ()
                  | "visit", Some p ->
                      Alcotest.failf
                        "visit span parent %d unknown to the coordinator" p
                  | "visit", None ->
                      Alcotest.fail "server visit span without a parent"
                  (* Decode/memo/stage/encode/send spans nest under
                     their own process's visit span. *)
                  | _, Some p when Hashtbl.mem site_ids p -> ()
                  | _, Some p ->
                      Alcotest.failf "span %S: parent %d not in its process"
                        sp.Span.sp_name p
                  | _, None ->
                      Alcotest.failf "server span %S without a parent"
                        sp.Span.sp_name)
                spans)
            harvested;
          (* And the whole thing merges into a valid multi-process
             trace with at least one cross-process flow arrow. *)
          let procs =
            {
              Chrome.pr_name = "coordinator";
              pr_offset = 0.;
              pr_spans = coord_spans;
            }
            :: List.mapi
                 (fun site (offset, spans) ->
                   {
                     Chrome.pr_name = Printf.sprintf "site S%d" site;
                     pr_offset = offset;
                     pr_spans = spans;
                   })
                 harvested
          in
          let starts, _ = check_chrome_processes_schema procs in
          Alcotest.(check bool) "cross-process flow arrows drawn" true
            (starts <> [])))

(* ------------------------------------------------------------------ *)
(* Cost ledger                                                        *)
(* ------------------------------------------------------------------ *)

let test_cost_ledger () =
  let s = Sink.create () in
  let report =
    Audit.evaluate
      {
        Audit.engine = "pax2";
        visit_limit = Some 2;
        max_visits = 2;
        q_entries = 4;
        ft_size = 5;
        t_size = 100;
        control_bytes = 10;
        answer_bytes = 10;
        total_ops = 50;
      }
  in
  Audit.ledger s ~engine:"pax2" report;
  let v name bound =
    Metrics.value s.Sink.metrics
      ~labels:[ ("engine", "pax2"); ("bound", bound) ]
      name
  in
  List.iter
    (fun (b : Audit.bound) ->
      Alcotest.(check bool)
        (b.Audit.b_name ^ ": ratio histogram populated")
        true
        (v "pax_cost_predicted_ratio" b.Audit.b_name <> None);
      Alcotest.(check (option (float 1e-9)))
        (b.Audit.b_name ^ ": predicted limit gauge")
        (Some b.Audit.b_limit)
        (v "pax_cost_predicted_limit" b.Audit.b_name);
      (* A histogram's [value] is its sum — one observation here. *)
      Alcotest.(check (option (float 1e-9)))
        (b.Audit.b_name ^ ": actual recorded")
        (Some b.Audit.b_actual)
        (v "pax_cost_actual" b.Audit.b_name))
    report.Audit.bounds;
  Alcotest.(check (option (float 0.))) "no violations counted" None
    (v "pax_cost_violations_total" "visits");
  (* A violated bound is counted. *)
  let bad =
    Audit.of_bounds
      [ Audit.bound ~name:"visits" ~formula:"x" ~actual:4. ~limit:2. ]
  in
  Audit.ledger s ~engine:"pax2" bad;
  Alcotest.(check (option (float 0.))) "violation counted" (Some 1.)
    (v "pax_cost_violations_total" "visits")

let () =
  Random.self_init ();
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "wall is monotonic" `Quick
            test_clock_wall_monotonic;
          Alcotest.test_case "fake clock" `Quick test_clock_fake;
          Alcotest.test_case "fresh epoch per source" `Quick
            test_clock_fresh_epoch;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_metrics_counters;
          Alcotest.test_case "misuse is rejected" `Quick test_metrics_errors;
          Alcotest.test_case "histograms" `Quick test_metrics_histogram;
        ] );
      ( "spans",
        [
          Alcotest.test_case "chrome export schema" `Quick test_chrome_export;
          Alcotest.test_case "stable order" `Quick test_span_order;
          Alcotest.test_case "bounded ring evicts and counts" `Quick
            test_span_ring_capacity;
          Alcotest.test_case "multi-process merge aligns and flows" `Quick
            test_chrome_processes_merge;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "clock offset under known skews" `Quick
            test_estimate_offset;
        ] );
      ( "sink",
        [
          Alcotest.test_case "noop records nothing" `Quick test_sink_noop;
          Alcotest.test_case "enabled records" `Quick test_sink_enabled;
        ] );
      ( "audit",
        [
          Alcotest.test_case "bounds pass" `Quick test_audit_pass;
          Alcotest.test_case "violations fail" `Quick test_audit_violation;
          Alcotest.test_case "json report" `Quick test_audit_json;
          Alcotest.test_case "example suite passes" `Quick
            test_audit_example_suite;
          Alcotest.test_case "cost ledger metrics" `Quick test_cost_ledger;
        ] );
      ( "differential",
        [
          make_diff_test "instrumented = noop (clean network)" ~count:40
            ~fault:false;
          make_diff_test "instrumented = noop (faults)" ~count:60 ~fault:true;
        ] );
      (* The net suite forks site servers, which OCaml 5 forbids once
         any other domain has been created — so it must run before the
         pooled-coverage test below spins up the domain pool. *)
      ( "net",
        [
          Alcotest.test_case "sockets: differential + coverage + stats" `Quick
            test_net_differential_and_stats;
          Alcotest.test_case "sockets: cross-process parent links" `Quick
            test_parent_links_across_wire;
          Alcotest.test_case "run ids are unique" `Quick test_run_id_uniqueness;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "spans cover an in-process run" `Quick
            test_span_coverage_in_process;
          Alcotest.test_case "spans cover a pooled run" `Quick
            test_span_coverage_pool;
        ] );
    ]

(* Query simplification: the rewrites fire, and they never change the
   meaning (checked against the reference semantics on random trees). *)

module Ast = Pax_xpath.Ast
module Parse = Pax_xpath.Parse
module Normal = Pax_xpath.Normal
module Simplify = Pax_xpath.Simplify
module Semantics = Pax_xpath.Semantics
module Query = Pax_xpath.Query
module Tree = Pax_xml.Tree
module H = Test_helpers

let simp s = Normal.to_string (Simplify.normal (Normal.normalize (Parse.query s)))
let check = Alcotest.(check string)

let test_rewrites () =
  check "double negation" "a/e[b]" (simp "a[not(not(b))]");
  check "idempotent and" "a/e[b]" (simp "a[b and b]");
  check "idempotent or" "a/e[b]" (simp "a[b or b]");
  check "merged duplicates" "a/e[b]" (simp "a[b][b]");
  check "trivial qualifier erased" "a/b" (simp "a[.]/b");
  check "true absorbs or" "a" (simp "a[b or .]");
  check "complementary and is false" "a/e[not(.)]" (simp "a[b and not(b)]");
  check "complementary or is true" "a" (simp "a[b or not(b)]");
  check "double dos" "a//b" (simp "a//.//b");
  check "nested cleanup" "a/e[(b and c)]" (simp "a[b and (c and b)]")

let test_static_qual () =
  let sq s =
    Simplify.static_qual (Normal.normalize_qual (Parse.qual s))
  in
  Alcotest.(check (option bool)) "epsilon is true" (Some true) (sq ".");
  Alcotest.(check (option bool)) "not epsilon is false" (Some false) (sq "!.");
  Alcotest.(check (option bool)) "data test unknown" None (sq "a/text() = 'x'");
  Alcotest.(check (option bool)) "path unknown" None (sq "a/b")

let test_simplify_query_handle () =
  let q = Simplify.query "a[not(not(b))][.]/c" in
  Alcotest.(check string) "compiled from simplified normal form" "a/e[b]/c"
    (Normal.to_string q.Query.normal)

(* Soundness: simplified queries evaluate identically. *)
let prop_sound =
  QCheck.Test.make ~name:"simplification preserves val(Q, r)" ~count:500
    QCheck.(
      make
        ~print:(fun (d, q) ->
          Format.asprintf "%a on %a" Ast.pp q Tree.pp d.Tree.root)
        (fun st ->
           let d = H.Gen.doc st in
           let q = H.Gen.query st in
           (d, q)))
    (fun (d, ast) ->
      let plain = Query.of_ast ast in
      let simplified =
        let n = Simplify.normal plain.Query.normal in
        Pax_xpath.Compile.compile n
      in
      let a = Pax_core.Centralized.eval_ids plain d.Tree.root in
      let b =
        (Pax_core.Centralized.run
           { plain with Query.compiled = simplified; normal = Simplify.normal plain.Query.normal }
           d.Tree.root)
          .Pax_core.Centralized.answer_ids
      in
      a = b)

(* Simplification is idempotent. *)
let prop_idempotent =
  QCheck.Test.make ~name:"simplification is idempotent" ~count:500
    (QCheck.make ~print:Ast.to_string H.Gen.query)
    (fun ast ->
      let once = Simplify.normal (Normal.normalize ast) in
      Normal.equal once (Simplify.normal once))

let () =
  Alcotest.run "simplify"
    [
      ( "rewrites",
        [
          Alcotest.test_case "rules" `Quick test_rewrites;
          Alcotest.test_case "static qualifiers" `Quick test_static_qual;
          Alcotest.test_case "query handle" `Quick test_simplify_query_handle;
        ] );
      ( "soundness",
        [
          QCheck_alcotest.to_alcotest prop_sound;
          QCheck_alcotest.to_alcotest prop_idempotent;
        ] );
    ]
